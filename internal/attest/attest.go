// Package attest implements DeTA's two-phase authentication protocol
// (paper §4.3) on top of the simulated SEV platform:
//
//   - Phase I ("Launching Trustworthy Aggregators"): the attestation proxy
//     (AP), controlled by the parties, verifies each aggregator CVM's
//     attestation report (certificate chain + OVMF launch measurement)
//     against the vendor's RAS root, then provisions an ECDSA P-256
//     authentication token into the paused CVM's encrypted memory and
//     resumes the launch.
//
//   - Phase II ("Multi-Aggregator Authentication"): before registering,
//     each party challenges every aggregator with a fresh nonce; the
//     aggregator signs it with the token from its encrypted memory, and the
//     party verifies the signature against the token public key the AP
//     recorded at launch.
//
// The package also hosts the key-broker service that dispatches the shared
// permutation key and per-round training identifiers to parties (paper
// §4.2).
package attest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"sync"

	"deta/internal/sev"
)

// Errors returned by the authentication protocol.
var (
	ErrUnknownAggregator = errors.New("attest: aggregator not provisioned by this proxy")
	ErrBadChallenge      = errors.New("attest: challenge-response signature invalid")
	ErrShortNonce        = errors.New("attest: nonce too short (min 16 bytes)")
)

// Proxy is the attestation proxy: it holds the trusted vendor root (pulled
// from the RAS), the expected OVMF measurement, and the registry of token
// public keys for every aggregator it has provisioned.
type Proxy struct {
	root        sev.Cert
	measurement [32]byte

	mu     sync.Mutex
	tokens map[string][]byte // aggregator ID -> PKIX token public key
}

// NewProxy builds an AP trusting the given RAS root and expecting
// aggregator CVMs to boot the firmware with the given measurement.
func NewProxy(ras *sev.RAS, expectedOVMF []byte) *Proxy {
	return &Proxy{
		root:        ras.RootCert(),
		measurement: sev.Measure(expectedOVMF),
		tokens:      make(map[string][]byte),
	}
}

// ProvisionResult reports a successful Phase I launch.
type ProvisionResult struct {
	AggregatorID string
	TokenPubKey  []byte // PKIX-marshaled ECDSA public key
}

// VerifyAndIssueToken is the AP's core Phase I step, usable both locally
// and behind an RPC boundary: it verifies the attestation report against
// the trusted root, the expected measurement, and the challenge nonce;
// on success it mints a fresh ECDSA authentication token, records its
// public key under aggregatorID, and returns the serialized private key
// (the launch blob to inject into the CVM).
func (p *Proxy) VerifyAndIssueToken(aggregatorID string, report *sev.AttestationReport, nonce []byte) ([]byte, error) {
	if err := sev.VerifyReport(report, p.root, p.measurement, nonce); err != nil {
		return nil, fmt.Errorf("attest: report verification failed: %w", err)
	}
	// The paper packages an ECDSA prime256v1 key in the launch blob.
	tokenKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	priv, err := x509.MarshalECPrivateKey(tokenKey)
	if err != nil {
		return nil, err
	}
	pub, err := x509.MarshalPKIXPublicKey(&tokenKey.PublicKey)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.tokens[aggregatorID] = pub
	p.mu.Unlock()
	return priv, nil
}

// Provision performs Phase I for one aggregator CVM hosted in-process: it
// attests the paused CVM, and on success injects a fresh ECDSA
// authentication token and resumes the launch. The token public key is
// recorded under aggregatorID.
func (p *Proxy) Provision(aggregatorID string, platform *sev.Platform, cvm *sev.CVM) (*ProvisionResult, error) {
	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	report, err := platform.AttestCVM(cvm, 0, nonce)
	if err != nil {
		return nil, fmt.Errorf("attest: obtaining report: %w", err)
	}
	blob, err := p.VerifyAndIssueToken(aggregatorID, report, nonce)
	if err != nil {
		return nil, err
	}
	if err := cvm.InjectLaunchSecret(blob); err != nil {
		p.forget(aggregatorID)
		return nil, fmt.Errorf("attest: secret injection: %w", err)
	}
	if err := cvm.Resume(); err != nil {
		p.forget(aggregatorID)
		return nil, fmt.Errorf("attest: resume: %w", err)
	}
	pub, err := p.TokenPubKey(aggregatorID)
	if err != nil {
		return nil, err
	}
	return &ProvisionResult{AggregatorID: aggregatorID, TokenPubKey: pub}, nil
}

func (p *Proxy) forget(aggregatorID string) {
	p.mu.Lock()
	delete(p.tokens, aggregatorID)
	p.mu.Unlock()
}

// TokenPubKey returns the provisioned token public key for an aggregator,
// which parties fetch before running Phase II.
func (p *Proxy) TokenPubKey(aggregatorID string) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pub, ok := p.tokens[aggregatorID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAggregator, aggregatorID)
	}
	return pub, nil
}

// AggregatorIDs lists every aggregator the proxy has provisioned.
func (p *Proxy) AggregatorIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.tokens))
	for id := range p.tokens {
		out = append(out, id)
	}
	return out
}

// Token is the aggregator-side authentication token, reconstructed from the
// CVM's injected launch secret.
type Token struct {
	key *ecdsa.PrivateKey
}

// LoadToken parses the launch secret read from inside the CVM.
func LoadToken(secret []byte) (*Token, error) {
	key, err := x509.ParseECPrivateKey(secret)
	if err != nil {
		return nil, fmt.Errorf("attest: parsing token: %w", err)
	}
	return &Token{key: key}, nil
}

// SignChallenge signs a party's nonce, proving possession of the
// provisioned token.
func (t *Token) SignChallenge(nonce []byte) ([]byte, error) {
	if len(nonce) < 16 {
		return nil, ErrShortNonce
	}
	digest := sha256.Sum256(nonce)
	return ecdsa.SignASN1(rand.Reader, t.key, digest[:])
}

// NewNonce creates a fresh 32-byte challenge nonce.
func NewNonce() ([]byte, error) {
	n := make([]byte, 32)
	if _, err := rand.Read(n); err != nil {
		return nil, err
	}
	return n, nil
}

// VerifyChallenge is the party-side Phase II check: the signature over the
// nonce must verify under the token public key recorded by the AP.
func VerifyChallenge(tokenPubKey, nonce, sig []byte) error {
	if len(nonce) < 16 {
		return ErrShortNonce
	}
	k, err := x509.ParsePKIXPublicKey(tokenPubKey)
	if err != nil {
		return fmt.Errorf("attest: parsing token public key: %w", err)
	}
	pub, ok := k.(*ecdsa.PublicKey)
	if !ok {
		return errors.New("attest: token public key is not ECDSA")
	}
	digest := sha256.Sum256(nonce)
	if !ecdsa.VerifyASN1(pub, digest[:], sig) {
		return ErrBadChallenge
	}
	return nil
}
