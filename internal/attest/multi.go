package attest

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"fmt"
	"sync"

	"deta/internal/sev"
	"deta/internal/tdx"
)

// Multi-technology attestation (paper §5: supporting Intel TDX or other CC
// solutions requires only an AP-side change). EvidenceVerifier abstracts
// one confidential-computing technology's attestation check; MultiProxy
// dispatches on the technology name and issues the same ECDSA
// authentication tokens regardless of the underlying hardware.

// EvidenceVerifier validates one CC technology's attestation evidence
// against a nonce the proxy issued.
type EvidenceVerifier interface {
	// Technology names the CC stack (e.g. "amd-sev", "intel-tdx").
	Technology() string
	// Verify checks the evidence (technology-specific type) and nonce.
	Verify(evidence any, nonce []byte) error
}

// SEVVerifier adapts the AMD SEV report check.
type SEVVerifier struct {
	Root        sev.Cert
	Measurement [32]byte
}

// Technology implements EvidenceVerifier.
func (SEVVerifier) Technology() string { return "amd-sev" }

// Verify implements EvidenceVerifier; evidence must be a
// *sev.AttestationReport.
func (v SEVVerifier) Verify(evidence any, nonce []byte) error {
	report, ok := evidence.(*sev.AttestationReport)
	if !ok {
		return fmt.Errorf("attest: amd-sev evidence has type %T", evidence)
	}
	return sev.VerifyReport(report, v.Root, v.Measurement, nonce)
}

// TDXVerifier adapts the Intel TDX quote check.
type TDXVerifier struct {
	Root   tdx.Cert
	MRTD   tdx.Measurement
	MinTCB uint32
}

// Technology implements EvidenceVerifier.
func (TDXVerifier) Technology() string { return "intel-tdx" }

// Verify implements EvidenceVerifier; evidence must be a *tdx.Quote.
func (v TDXVerifier) Verify(evidence any, nonce []byte) error {
	quote, ok := evidence.(*tdx.Quote)
	if !ok {
		return fmt.Errorf("attest: intel-tdx evidence has type %T", evidence)
	}
	return tdx.VerifyQuote(quote, v.Root, v.MRTD, nonce, v.MinTCB)
}

// MultiProxy is an attestation proxy that accepts aggregators protected by
// any registered CC technology and provisions uniform authentication
// tokens, so Phase II and everything downstream are technology-agnostic.
type MultiProxy struct {
	mu        sync.Mutex
	verifiers map[string]EvidenceVerifier
	tokens    map[string][]byte
}

// NewMultiProxy builds a proxy from the given verifiers.
func NewMultiProxy(verifiers ...EvidenceVerifier) *MultiProxy {
	m := &MultiProxy{
		verifiers: make(map[string]EvidenceVerifier, len(verifiers)),
		tokens:    make(map[string][]byte),
	}
	for _, v := range verifiers {
		m.verifiers[v.Technology()] = v
	}
	return m
}

// Technologies lists the supported CC stacks.
func (m *MultiProxy) Technologies() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.verifiers))
	for name := range m.verifiers {
		out = append(out, name)
	}
	return out
}

// VerifyAndIssueToken validates evidence from the named technology and, on
// success, mints an authentication token: the private half is returned as
// the launch blob/secret for the protected environment, the public half is
// recorded for Phase II.
func (m *MultiProxy) VerifyAndIssueToken(aggregatorID, technology string, evidence any, nonce []byte) ([]byte, error) {
	m.mu.Lock()
	v, ok := m.verifiers[technology]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("attest: unsupported CC technology %q", technology)
	}
	if err := v.Verify(evidence, nonce); err != nil {
		return nil, fmt.Errorf("attest: %s evidence rejected: %w", technology, err)
	}
	tokenKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	priv, err := x509.MarshalECPrivateKey(tokenKey)
	if err != nil {
		return nil, err
	}
	pub, err := x509.MarshalPKIXPublicKey(&tokenKey.PublicKey)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.tokens[aggregatorID] = pub
	m.mu.Unlock()
	return priv, nil
}

// TokenPubKey returns the provisioned token key for an aggregator.
func (m *MultiProxy) TokenPubKey(aggregatorID string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pub, ok := m.tokens[aggregatorID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAggregator, aggregatorID)
	}
	return pub, nil
}
