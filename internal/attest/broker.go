package attest

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// KeyBroker is the trusted key-broker service of paper §4.2: it holds the
// permutation key shared by all parties and dispatches a fresh training
// identifier at the start of every round. The permutation seed for round r
// is derived from (permutation key, round ID), so the permutation changes
// every round but is identical across parties.
//
// The broker lives in a party-controlled domain; aggregators never see it.
type KeyBroker struct {
	mu       sync.Mutex
	permKey  []byte
	roundIDs map[int][]byte // round -> dispatched training identifier
	parties  map[string]bool
}

// NewKeyBroker creates a broker with a permutation key of keyBytes bytes.
// The paper makes the key size configurable by the user's security
// requirement; 32 bytes (256 bits) is the default used across this repo.
func NewKeyBroker(keyBytes int) (*KeyBroker, error) {
	if keyBytes < 16 {
		return nil, fmt.Errorf("attest: permutation key of %d bytes is below the 16-byte minimum", keyBytes)
	}
	key := make([]byte, keyBytes)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	return &KeyBroker{
		permKey:  key,
		roundIDs: make(map[int][]byte),
		parties:  make(map[string]bool),
	}, nil
}

// RegisterParty records a party as authorized to receive key material.
func (b *KeyBroker) RegisterParty(partyID string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties[partyID] = true
}

// ErrUnregisteredParty is returned when an unknown party requests keys.
var ErrUnregisteredParty = errors.New("attest: party not registered with key broker")

// PermutationKey releases the shared permutation key to a registered party.
func (b *KeyBroker) PermutationKey(partyID string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.parties[partyID] {
		return nil, fmt.Errorf("%w: %q", ErrUnregisteredParty, partyID)
	}
	return append([]byte(nil), b.permKey...), nil
}

// RoundID returns the training identifier for a round, generating it on
// first request. All parties receive the same identifier for the same
// round; identifiers are unpredictable across rounds.
func (b *KeyBroker) RoundID(round int) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if id, ok := b.roundIDs[round]; ok {
		return append([]byte(nil), id...), nil
	}
	id := make([]byte, 16)
	if _, err := rand.Read(id); err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint64(id[:8], uint64(round)) // bind the round number
	b.roundIDs[round] = id
	return append([]byte(nil), id...), nil
}
