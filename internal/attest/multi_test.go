package attest

import (
	"errors"
	"sort"
	"testing"

	"deta/internal/sev"
	"deta/internal/tdx"
)

// buildMultiProxy wires an AP that accepts both AMD SEV and Intel TDX
// aggregators — the paper's §5 portability claim.
func buildMultiProxy(t *testing.T) (*MultiProxy, *sev.Vendor, *tdx.Vendor, []byte, []byte) {
	t.Helper()
	sevVendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	tdxVendor, err := tdx.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	ovmf := []byte("sev aggregator firmware")
	tdImage := []byte("tdx aggregator TD image")
	mp := NewMultiProxy(
		SEVVerifier{Root: sevVendor.RAS().RootCert(), Measurement: sev.Measure(ovmf)},
		TDXVerifier{Root: tdxVendor.RootCert(), MRTD: tdx.MeasureTD(tdImage), MinTCB: 3},
	)
	return mp, sevVendor, tdxVendor, ovmf, tdImage
}

func TestMultiProxyTechnologies(t *testing.T) {
	mp, _, _, _, _ := buildMultiProxy(t)
	techs := mp.Technologies()
	sort.Strings(techs)
	if len(techs) != 2 || techs[0] != "amd-sev" || techs[1] != "intel-tdx" {
		t.Fatalf("technologies = %v", techs)
	}
}

func TestMultiProxyProvisionsSEVAggregator(t *testing.T) {
	mp, sevVendor, _, ovmf, _ := buildMultiProxy(t)
	platform, err := sev.NewPlatform("sev-host", sevVendor)
	if err != nil {
		t.Fatal(err)
	}
	cvm, err := platform.LaunchCVM(ovmf)
	if err != nil {
		t.Fatal(err)
	}
	nonce, _ := NewNonce()
	report, err := platform.AttestCVM(cvm, 0, nonce)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := mp.VerifyAndIssueToken("agg-sev", "amd-sev", report, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := cvm.InjectLaunchSecret(blob); err != nil {
		t.Fatal(err)
	}
	if err := cvm.Resume(); err != nil {
		t.Fatal(err)
	}
	// Phase II works identically regardless of technology.
	secret, err := cvm.GuestReadSecret()
	if err != nil {
		t.Fatal(err)
	}
	tok, err := LoadToken(secret)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := mp.TokenPubKey("agg-sev")
	if err != nil {
		t.Fatal(err)
	}
	challenge, _ := NewNonce()
	sig, err := tok.SignChallenge(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChallenge(pub, challenge, sig); err != nil {
		t.Fatalf("Phase II after SEV provisioning: %v", err)
	}
}

func TestMultiProxyProvisionsTDXAggregator(t *testing.T) {
	mp, _, tdxVendor, _, tdImage := buildMultiProxy(t)
	platform, err := tdx.NewPlatform("tdx-host", tdxVendor)
	if err != nil {
		t.Fatal(err)
	}
	td := platform.CreateTD(tdImage)
	nonce, _ := NewNonce()
	quote, err := platform.QuoteTD(td, 5, nonce)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := mp.VerifyAndIssueToken("agg-tdx", "intel-tdx", quote, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := td.ProvisionSecret(blob); err != nil {
		t.Fatal(err)
	}
	if err := td.Finalize(); err != nil {
		t.Fatal(err)
	}
	secret, err := td.GuestReadSecret()
	if err != nil {
		t.Fatal(err)
	}
	tok, err := LoadToken(secret)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := mp.TokenPubKey("agg-tdx")
	if err != nil {
		t.Fatal(err)
	}
	challenge, _ := NewNonce()
	sig, err := tok.SignChallenge(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChallenge(pub, challenge, sig); err != nil {
		t.Fatalf("Phase II after TDX provisioning: %v", err)
	}
}

func TestMultiProxyRejectsUnsupportedTech(t *testing.T) {
	mp, _, _, _, _ := buildMultiProxy(t)
	if _, err := mp.VerifyAndIssueToken("agg", "arm-cca", nil, nil); err == nil {
		t.Fatal("unsupported technology accepted")
	}
}

func TestMultiProxyRejectsWrongEvidenceType(t *testing.T) {
	mp, _, tdxVendor, _, tdImage := buildMultiProxy(t)
	platform, _ := tdx.NewPlatform("h", tdxVendor)
	td := platform.CreateTD(tdImage)
	nonce, _ := NewNonce()
	quote, _ := platform.QuoteTD(td, 5, nonce)
	// A TDX quote submitted under the SEV technology name must fail.
	if _, err := mp.VerifyAndIssueToken("agg", "amd-sev", quote, nonce); err == nil {
		t.Fatal("cross-technology evidence accepted")
	}
}

func TestMultiProxyRejectsLowTCB(t *testing.T) {
	mp, _, tdxVendor, _, tdImage := buildMultiProxy(t)
	platform, _ := tdx.NewPlatform("h", tdxVendor)
	td := platform.CreateTD(tdImage)
	nonce, _ := NewNonce()
	quote, _ := platform.QuoteTD(td, 1, nonce) // below MinTCB=3
	if _, err := mp.VerifyAndIssueToken("agg", "intel-tdx", quote, nonce); err == nil {
		t.Fatal("out-of-date TCB accepted")
	}
}

func TestMultiProxyUnknownAggregatorToken(t *testing.T) {
	mp, _, _, _, _ := buildMultiProxy(t)
	if _, err := mp.TokenPubKey("ghost"); !errors.Is(err, ErrUnknownAggregator) {
		t.Fatalf("err = %v", err)
	}
}
