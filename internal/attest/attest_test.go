package attest

import (
	"bytes"
	"errors"
	"testing"

	"deta/internal/sev"
)

var ovmf = []byte("deta aggregator firmware build 42")

func setup(t *testing.T) (*sev.Vendor, *sev.Platform, *Proxy) {
	t.Helper()
	v, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	p, err := sev.NewPlatform("host-a", v)
	if err != nil {
		t.Fatal(err)
	}
	return v, p, NewProxy(v.RAS(), ovmf)
}

// provisionOne runs Phase I for one aggregator and returns the CVM plus
// the aggregator-side token.
func provisionOne(t *testing.T, platform *sev.Platform, ap *Proxy, id string) (*sev.CVM, *Token) {
	t.Helper()
	cvm, err := platform.LaunchCVM(ovmf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Provision(id, platform, cvm); err != nil {
		t.Fatal(err)
	}
	secret, err := cvm.GuestReadSecret()
	if err != nil {
		t.Fatal(err)
	}
	tok, err := LoadToken(secret)
	if err != nil {
		t.Fatal(err)
	}
	return cvm, tok
}

func TestPhaseIProvisionsAndResumes(t *testing.T) {
	_, platform, ap := setup(t)
	cvm, _ := provisionOne(t, platform, ap, "agg-1")
	if cvm.State() != sev.StateRunning {
		t.Fatalf("CVM state = %v after provisioning", cvm.State())
	}
	pub, err := ap.TokenPubKey("agg-1")
	if err != nil || len(pub) == 0 {
		t.Fatalf("token pub key: %v", err)
	}
	ids := ap.AggregatorIDs()
	if len(ids) != 1 || ids[0] != "agg-1" {
		t.Fatalf("AggregatorIDs = %v", ids)
	}
}

func TestPhaseIRejectsTamperedFirmware(t *testing.T) {
	_, platform, ap := setup(t)
	evil := append([]byte(nil), ovmf...)
	evil[3] ^= 1
	cvm, err := platform.LaunchCVM(evil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Provision("agg-evil", platform, cvm); err == nil {
		t.Fatal("tampered aggregator provisioned")
	}
	// The CVM must still be paused: no secret, no resume.
	if cvm.State() != sev.StateLaunchPaused {
		t.Fatalf("evil CVM state = %v", cvm.State())
	}
	if _, err := ap.TokenPubKey("agg-evil"); !errors.Is(err, ErrUnknownAggregator) {
		t.Fatalf("token registered for rejected aggregator: %v", err)
	}
}

func TestPhaseIRejectsForeignPlatform(t *testing.T) {
	_, _, ap := setup(t)
	otherVendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := sev.NewPlatform("rogue-host", otherVendor)
	if err != nil {
		t.Fatal(err)
	}
	cvm, _ := foreign.LaunchCVM(ovmf)
	if _, err := ap.Provision("agg-rogue", foreign, cvm); err == nil {
		t.Fatal("aggregator on unendorsed platform provisioned")
	}
}

func TestPhaseIIChallengeResponse(t *testing.T) {
	_, platform, ap := setup(t)
	_, tok := provisionOne(t, platform, ap, "agg-1")

	pub, _ := ap.TokenPubKey("agg-1")
	nonce, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	sig, err := tok.SignChallenge(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChallenge(pub, nonce, sig); err != nil {
		t.Fatalf("genuine challenge rejected: %v", err)
	}
}

func TestPhaseIIRejectsWrongToken(t *testing.T) {
	_, platform, ap := setup(t)
	_, tok1 := provisionOne(t, platform, ap, "agg-1")
	provisionOne(t, platform, ap, "agg-2")

	// agg-1's token must not verify under agg-2's public key (a breached
	// aggregator cannot impersonate another).
	pub2, _ := ap.TokenPubKey("agg-2")
	nonce, _ := NewNonce()
	sig, _ := tok1.SignChallenge(nonce)
	if err := VerifyChallenge(pub2, nonce, sig); !errors.Is(err, ErrBadChallenge) {
		t.Fatalf("cross-aggregator signature accepted: %v", err)
	}
}

func TestPhaseIIRejectsTamperedNonce(t *testing.T) {
	_, platform, ap := setup(t)
	_, tok := provisionOne(t, platform, ap, "agg-1")
	pub, _ := ap.TokenPubKey("agg-1")
	nonce, _ := NewNonce()
	sig, _ := tok.SignChallenge(nonce)
	other := append([]byte(nil), nonce...)
	other[0] ^= 1
	if err := VerifyChallenge(pub, other, sig); !errors.Is(err, ErrBadChallenge) {
		t.Fatalf("signature over different nonce accepted: %v", err)
	}
}

func TestShortNonceRejected(t *testing.T) {
	_, platform, ap := setup(t)
	_, tok := provisionOne(t, platform, ap, "agg-1")
	if _, err := tok.SignChallenge([]byte("tiny")); !errors.Is(err, ErrShortNonce) {
		t.Fatalf("short nonce signed: %v", err)
	}
	pub, _ := ap.TokenPubKey("agg-1")
	if err := VerifyChallenge(pub, []byte("tiny"), nil); !errors.Is(err, ErrShortNonce) {
		t.Fatalf("short nonce verified: %v", err)
	}
}

func TestLoadTokenGarbage(t *testing.T) {
	if _, err := LoadToken([]byte("not a key")); err == nil {
		t.Fatal("garbage secret parsed as token")
	}
}

func TestVerifyChallengeGarbageKey(t *testing.T) {
	nonce, _ := NewNonce()
	if err := VerifyChallenge([]byte("junk"), nonce, []byte("sig")); err == nil {
		t.Fatal("garbage public key accepted")
	}
}

func TestTokensDifferPerAggregator(t *testing.T) {
	_, platform, ap := setup(t)
	provisionOne(t, platform, ap, "agg-1")
	provisionOne(t, platform, ap, "agg-2")
	p1, _ := ap.TokenPubKey("agg-1")
	p2, _ := ap.TokenPubKey("agg-2")
	if bytes.Equal(p1, p2) {
		t.Fatal("two aggregators share one token")
	}
}

func TestKeyBroker(t *testing.T) {
	b, err := NewKeyBroker(32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewKeyBroker(4); err == nil {
		t.Fatal("tiny permutation key accepted")
	}
	// Unregistered parties get nothing.
	if _, err := b.PermutationKey("p1"); !errors.Is(err, ErrUnregisteredParty) {
		t.Fatalf("unregistered party served: %v", err)
	}
	b.RegisterParty("p1")
	b.RegisterParty("p2")
	k1, err := b.PermutationKey("p1")
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := b.PermutationKey("p2")
	if !bytes.Equal(k1, k2) {
		t.Fatal("parties received different permutation keys")
	}
	// Round IDs: stable within a round, distinct across rounds.
	r1a, _ := b.RoundID(1)
	r1b, _ := b.RoundID(1)
	r2, _ := b.RoundID(2)
	if !bytes.Equal(r1a, r1b) {
		t.Fatal("round ID changed within a round")
	}
	if bytes.Equal(r1a, r2) {
		t.Fatal("round IDs repeat across rounds")
	}
}
