package nn

import "fmt"

// This file is the model zoo: faithfully shaped but width-reduced versions
// of every architecture in the paper's evaluation. The reduction is a
// documented substitution (DESIGN.md §2): DeTA manipulates flattened
// parameter vectors, so experiments need real convolutional gradients and
// trainable models, not the paper's exact FLOP counts.

// LeNetDLG builds the LeNet variant used by the DLG/iDLG attacks: three
// 5x5/12-channel convolutions with sigmoid activations (the attack needs a
// twice-differentiable model) followed by a linear classifier.
// Input is C x H x W; H and W must be divisible by 4.
func LeNetDLG(inC, inH, inW, classes int) *Network {
	if inH%4 != 0 || inW%4 != 0 {
		panic(fmt.Sprintf("nn: LeNetDLG input %dx%d must be divisible by 4", inH, inW))
	}
	const ch = 12
	c1 := NewConv2D("conv1", inC, inH, inW, ch, 5, 2, 2)
	_, h1, w1 := c1.OutDims()
	c2 := NewConv2D("conv2", ch, h1, w1, ch, 5, 2, 2)
	_, h2, w2 := c2.OutDims()
	c3 := NewConv2D("conv3", ch, h2, w2, ch, 5, 1, 2)
	_, h3, w3 := c3.OutDims()
	return MustNetwork("LeNet-DLG",
		c1, NewSigmoid("sig1", c1.OutDim()),
		c2, NewSigmoid("sig2", c2.OutDim()),
		c3, NewSigmoid("sig3", c3.OutDim()),
		NewDense("fc", ch*h3*w3, classes),
	)
}

// ConvNet8 is the eight-layer MNIST convolutional network of Figure 5.
func ConvNet8(inC, inH, inW, classes int) *Network {
	c1 := NewConv2D("conv1", inC, inH, inW, 8, 3, 1, 1)
	_, h1, w1 := c1.OutDims()
	p1 := NewMaxPool2D("pool1", 8, h1, w1, 2, 2)
	_, h2, w2 := p1.OutDims()
	c2 := NewConv2D("conv2", 8, h2, w2, 16, 3, 1, 1)
	_, h3, w3 := c2.OutDims()
	p2 := NewMaxPool2D("pool2", 16, h3, w3, 2, 2)
	_, h4, w4 := p2.OutDims()
	fcIn := 16 * h4 * w4
	return MustNetwork("ConvNet-8",
		c1, NewReLU("relu1", c1.OutDim()),
		p1,
		c2, NewReLU("relu2", c2.OutDim()),
		p2,
		NewDense("fc1", fcIn, 64),
		NewReLU("relu3", 64),
		NewDense("fc2", 64, classes),
	)
}

// ConvNet23 is the 23-layer CIFAR-10 network of Figure 6: a VGG-style stack
// of seven convolutions in three pooled stages plus a two-layer classifier.
// Input spatial dims must be divisible by 8.
func ConvNet23(inC, inH, inW, classes int) *Network {
	if inH%8 != 0 || inW%8 != 0 {
		panic(fmt.Sprintf("nn: ConvNet23 input %dx%d must be divisible by 8", inH, inW))
	}
	var layers []Layer
	addConv := func(name string, c *Conv2D) (ch, h, w int) {
		layers = append(layers, c, NewReLU(name+".relu", c.OutDim()))
		return c.OutDims()
	}
	ch, h, w := addConv("c1", NewConv2D("c1", inC, inH, inW, 8, 3, 1, 1))
	ch, h, w = addConv("c2", NewConv2D("c2", ch, h, w, 8, 3, 1, 1))
	p1 := NewMaxPool2D("p1", ch, h, w, 2, 2)
	layers = append(layers, p1)
	ch, h, w = p1.OutDims()

	ch, h, w = addConv("c3", NewConv2D("c3", ch, h, w, 16, 3, 1, 1))
	ch, h, w = addConv("c4", NewConv2D("c4", ch, h, w, 16, 3, 1, 1))
	p2 := NewMaxPool2D("p2", ch, h, w, 2, 2)
	layers = append(layers, p2)
	ch, h, w = p2.OutDims()

	ch, h, w = addConv("c5", NewConv2D("c5", ch, h, w, 32, 3, 1, 1))
	ch, h, w = addConv("c6", NewConv2D("c6", ch, h, w, 32, 3, 1, 1))
	ch, h, w = addConv("c7", NewConv2D("c7", ch, h, w, 32, 3, 1, 1))
	p3 := NewMaxPool2D("p3", ch, h, w, 2, 2)
	layers = append(layers, p3)
	ch, h, w = p3.OutDims()

	fcIn := ch * h * w
	layers = append(layers,
		NewDense("fc1", fcIn, 64),
		NewReLU("fc1.relu", 64),
		NewDense("fc2", 64, classes),
	)
	return MustNetwork("ConvNet-23", layers...)
}

// resBlock builds one basic residual block: conv-norm-relu-conv-norm with
// an optional strided 1x1 projection when dimensions change.
func resBlock(name string, inC, inH, inW, outC, stride int) *Residual {
	c1 := NewConv2D(name+".c1", inC, inH, inW, outC, 3, stride, 1)
	_, h1, w1 := c1.OutDims()
	n1 := NewChannelNorm(name+".n1", outC, h1, w1)
	r1 := NewReLU(name+".relu", c1.OutDim())
	c2 := NewConv2D(name+".c2", outC, h1, w1, outC, 3, 1, 1)
	_, h2, w2 := c2.OutDims()
	n2 := NewChannelNorm(name+".n2", outC, h2, w2)
	body := []Layer{c1, n1, r1, c2, n2}
	var skip Layer
	if stride != 1 || inC != outC {
		skip = NewConv2D(name+".proj", inC, inH, inW, outC, 1, stride, 0)
	}
	return NewResidual(name, body, skip)
}

// ResNet18Lite is the width-reduced ResNet-18 used for the Inverting
// Gradients experiment (Table 3): a stem plus four stages of two basic
// residual blocks each (the 2-2-2-2 layout of ResNet-18), global average
// pooling, and a linear classifier. widths gives the four stage widths; the
// canonical reduction is [4, 8, 16, 32] (ResNet-18 itself is
// [64, 128, 256, 512]).
func ResNet18Lite(inC, inH, inW, classes int, widths [4]int) *Network {
	stem := NewConv2D("stem", inC, inH, inW, widths[0], 3, 1, 1)
	_, h, w := stem.OutDims()
	norm := NewChannelNorm("stem.norm", widths[0], h, w)
	relu := NewReLU("stem.relu", stem.OutDim())
	layers := []Layer{stem, norm, relu}

	ch := widths[0]
	for stage := 0; stage < 4; stage++ {
		outC := widths[stage]
		stride := 1
		if stage > 0 {
			stride = 2
		}
		b1 := resBlock(fmt.Sprintf("s%d.b1", stage+1), ch, h, w, outC, stride)
		layers = append(layers, b1)
		// Track dims through the strided block.
		h = (h+2-3)/stride + 1
		w = (w+2-3)/stride + 1
		b2 := resBlock(fmt.Sprintf("s%d.b2", stage+1), outC, h, w, outC, 1)
		layers = append(layers, b2)
		ch = outC
	}
	gap := NewGlobalAvgPool("gap", ch, h, w)
	layers = append(layers, gap, NewDense("fc", ch, classes))
	return MustNetwork("ResNet-18-lite", layers...)
}

// VGG16Lite is the width-reduced VGG-16 used for the RVL-CDIP transfer
// learning experiment (Figure 7): thirteen convolutions in the canonical
// 2-2-3-3-3 blocks with max pooling, then the three fully connected layers
// that the paper replaces for transfer learning. HeadOffset (returned) is
// the index of the first classifier layer, so callers can FreezePrefix it
// to reproduce the paper's "replace the last three FC layers" setup.
// Input spatial dims must be divisible by 32.
func VGG16Lite(inC, inH, inW, classes int) (*Network, int) {
	if inH%32 != 0 || inW%32 != 0 {
		panic(fmt.Sprintf("nn: VGG16Lite input %dx%d must be divisible by 32", inH, inW))
	}
	widths := []int{4, 8, 16, 16, 16}
	blocks := []int{2, 2, 3, 3, 3}
	var layers []Layer
	ch, h, w := inC, inH, inW
	conv := 0
	for b, reps := range blocks {
		for r := 0; r < reps; r++ {
			conv++
			c := NewConv2D(fmt.Sprintf("c%d", conv), ch, h, w, widths[b], 3, 1, 1)
			layers = append(layers, c, NewReLU(fmt.Sprintf("c%d.relu", conv), c.OutDim()))
			ch, h, w = c.OutDims()
		}
		p := NewMaxPool2D(fmt.Sprintf("p%d", b+1), ch, h, w, 2, 2)
		layers = append(layers, p)
		ch, h, w = p.OutDims()
	}
	headOffset := len(layers)
	fcIn := ch * h * w
	layers = append(layers,
		NewDense("fc1", fcIn, 32),
		NewReLU("fc1.relu", 32),
		NewDense("fc2", 32, 32),
		NewReLU("fc2.relu", 32),
		NewDense("fc3", 32, classes),
	)
	return MustNetwork("VGG-16-lite", layers...), headOffset
}

// MLP builds a simple multilayer perceptron, useful for tests and the
// quickstart example.
func MLP(name string, dims ...int) *Network {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	var layers []Layer
	for i := 0; i < len(dims)-1; i++ {
		d := NewDense(fmt.Sprintf("fc%d", i+1), dims[i], dims[i+1])
		layers = append(layers, d)
		if i < len(dims)-2 {
			layers = append(layers, NewReLU(fmt.Sprintf("relu%d", i+1), dims[i+1]))
		}
	}
	return MustNetwork(name, layers...)
}
