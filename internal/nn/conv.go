package nn

import (
	"deta/internal/parallel"
	"deta/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW-flattened inputs. Spatial input
// dimensions are fixed at construction (networks here are static graphs).
//
// Forward/backward use an im2col lowering: the input patches are unrolled
// into a (inC*k*k) x (outH*outW) matrix once, and the convolution becomes
// dense matrix products with unit-stride inner loops — the conventional
// CPU implementation, several times faster than naive nested loops at the
// network sizes the experiments train.
type Conv2D struct {
	name                 string
	inC, inH, inW        int
	outC, k, stride, pad int
	outH, outW           int

	w, b   []float64 // w: [outC][inC*k*k], b: [outC]
	gw, gb []float64

	cols []float64 // im2col buffer from the last Forward, (inC*k*k) x (outH*outW)
}

// NewConv2D constructs a convolution with square kernels.
func NewConv2D(name string, inC, inH, inW, outC, k, stride, pad int) *Conv2D {
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("nn: conv output dimensions must be positive: " + name)
	}
	return &Conv2D{
		name: name,
		inC:  inC, inH: inH, inW: inW,
		outC: outC, k: k, stride: stride, pad: pad,
		outH: outH, outW: outW,
		w:  make([]float64, outC*inC*k*k),
		b:  make([]float64, outC),
		gw: make([]float64, outC*inC*k*k),
		gb: make([]float64, outC),
	}
}

func (c *Conv2D) Name() string { return c.name }
func (c *Conv2D) InDim() int   { return c.inC * c.inH * c.inW }
func (c *Conv2D) OutDim() int  { return c.outC * c.outH * c.outW }

// OutDims returns the output (channels, height, width).
func (c *Conv2D) OutDims() (ch, h, w int) { return c.outC, c.outH, c.outW }

// im2col unrolls input patches into c.cols: row q = (ic,ky,kx) holds the
// input value each output position reads through that kernel tap (zero for
// padding). Rows are disjoint slices of c.cols, filled concurrently.
func (c *Conv2D) im2col(x []float64) {
	area := c.outH * c.outW
	q2 := c.inC * c.k * c.k
	if len(c.cols) != q2*area {
		c.cols = make([]float64, q2*area)
	}
	parallel.For(q2, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			ic := q / (c.k * c.k)
			ky := (q / c.k) % c.k
			kx := q % c.k
			xBase := ic * c.inH * c.inW
			row := q * area
			for oy := 0; oy < c.outH; oy++ {
				iy := oy*c.stride - c.pad + ky
				dst := row + oy*c.outW
				if iy < 0 || iy >= c.inH {
					for ox := 0; ox < c.outW; ox++ {
						c.cols[dst+ox] = 0
					}
					continue
				}
				xRow := xBase + iy*c.inW
				for ox := 0; ox < c.outW; ox++ {
					ix := ox*c.stride - c.pad + kx
					if ix < 0 || ix >= c.inW {
						c.cols[dst+ox] = 0
					} else {
						c.cols[dst+ox] = x[xRow+ix]
					}
				}
			}
		}
	})
}

func (c *Conv2D) Forward(x []float64, _ bool) []float64 {
	checkDim(c.name, len(x), c.InDim())
	c.im2col(x)
	area := c.outH * c.outW
	q2 := c.inC * c.k * c.k
	// Output channels are independent rows of the dense product; each
	// worker owns a disjoint slice of out.
	out := make([]float64, c.OutDim())
	parallel.For(c.outC, 1, func(lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			dst := out[oc*area : (oc+1)*area]
			bias := c.b[oc]
			for i := range dst {
				dst[i] = bias
			}
			wRow := c.w[oc*q2 : (oc+1)*q2]
			for q, wq := range wRow {
				col := c.cols[q*area : (q+1)*area]
				for i, v := range col {
					dst[i] += wq * v
				}
			}
		}
	})
	return out
}

func (c *Conv2D) Backward(grad []float64) []float64 {
	checkDim(c.name+" backward", len(grad), c.OutDim())
	area := c.outH * c.outW
	q2 := c.inC * c.k * c.k

	// db: output channels are independent.
	parallel.For(c.outC, 4, func(lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			g := grad[oc*area : (oc+1)*area]
			var gb float64
			for _, v := range g {
				gb += v
			}
			c.gb[oc] += gb
		}
	})

	// dW and dcols, parallel over im2col rows q: the worker for row q owns
	// dcols row q and the gw column q of every output channel, so all
	// writes are disjoint. For each (q, i) cell the inner loop accumulates
	// over oc in ascending order — the same order as the serial oc-outer
	// loop — keeping the float result bit-identical.
	dcols := make([]float64, q2*area)
	parallel.For(q2, 1, func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			col := c.cols[q*area : (q+1)*area]
			dcol := dcols[q*area : (q+1)*area]
			for oc := 0; oc < c.outC; oc++ {
				g := grad[oc*area : (oc+1)*area]
				wq := c.w[oc*q2+q]
				var gw float64
				for i, gi := range g {
					gw += gi * col[i]
					dcol[i] += wq * gi
				}
				c.gw[oc*q2+q] += gw
			}
		}
	})

	// col2im: scatter patch gradients back to input positions. Kernel taps
	// of one input channel overlap in the input plane, so parallelism is
	// across input channels only (disjoint xBase ranges); within a channel
	// the serial tap order is preserved.
	in := make([]float64, c.InDim())
	parallel.For(c.inC, 1, func(iclo, ichi int) {
		for ic := iclo; ic < ichi; ic++ {
			xBase := ic * c.inH * c.inW
			for ky := 0; ky < c.k; ky++ {
				for kx := 0; kx < c.k; kx++ {
					row := ((ic*c.k+ky)*c.k + kx) * area
					for oy := 0; oy < c.outH; oy++ {
						iy := oy*c.stride - c.pad + ky
						if iy < 0 || iy >= c.inH {
							continue
						}
						src := row + oy*c.outW
						xRow := xBase + iy*c.inW
						for ox := 0; ox < c.outW; ox++ {
							ix := ox*c.stride - c.pad + kx
							if ix < 0 || ix >= c.inW {
								continue
							}
							in[xRow+ix] += dcols[src+ox]
						}
					}
				}
			}
		}
	})
	return in
}

func (c *Conv2D) Params() [][]float64 { return [][]float64{c.w, c.b} }
func (c *Conv2D) Grads() [][]float64  { return [][]float64{c.gw, c.gb} }

func (c *Conv2D) Shapes() []tensor.Shape {
	return []tensor.Shape{
		{Name: c.name + ".w", Dims: []int{c.outC, c.inC, c.k, c.k}},
		{Name: c.name + ".b", Dims: []int{c.outC}},
	}
}

// MaxPool2D is a max-pooling layer over CHW inputs with square windows.
type MaxPool2D struct {
	name         string
	ch, inH, inW int
	size, stride int
	outH, outW   int
	argmax       []int
}

// NewMaxPool2D constructs a max pool with the given window size and stride.
func NewMaxPool2D(name string, ch, inH, inW, size, stride int) *MaxPool2D {
	if size > inH || size > inW {
		panic("nn: maxpool window exceeds input: " + name)
	}
	outH := (inH-size)/stride + 1
	outW := (inW-size)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("nn: maxpool output dimensions must be positive: " + name)
	}
	return &MaxPool2D{
		name: name, ch: ch, inH: inH, inW: inW,
		size: size, stride: stride, outH: outH, outW: outW,
		argmax: make([]int, ch*outH*outW),
	}
}

func (p *MaxPool2D) Name() string { return p.name }
func (p *MaxPool2D) InDim() int   { return p.ch * p.inH * p.inW }
func (p *MaxPool2D) OutDim() int  { return p.ch * p.outH * p.outW }

// OutDims returns the output (channels, height, width).
func (p *MaxPool2D) OutDims() (ch, h, w int) { return p.ch, p.outH, p.outW }

func (p *MaxPool2D) Forward(x []float64, _ bool) []float64 {
	checkDim(p.name, len(x), p.InDim())
	out := make([]float64, p.OutDim())
	for c := 0; c < p.ch; c++ {
		base := c * p.inH * p.inW
		for oy := 0; oy < p.outH; oy++ {
			for ox := 0; ox < p.outW; ox++ {
				bestIdx := base + (oy*p.stride)*p.inW + ox*p.stride
				best := x[bestIdx]
				for ky := 0; ky < p.size; ky++ {
					for kx := 0; kx < p.size; kx++ {
						idx := base + (oy*p.stride+ky)*p.inW + (ox*p.stride + kx)
						if x[idx] > best {
							best = x[idx]
							bestIdx = idx
						}
					}
				}
				o := (c*p.outH+oy)*p.outW + ox
				out[o] = best
				p.argmax[o] = bestIdx
			}
		}
	}
	return out
}

func (p *MaxPool2D) Backward(grad []float64) []float64 {
	checkDim(p.name+" backward", len(grad), p.OutDim())
	in := make([]float64, p.InDim())
	for o, g := range grad {
		in[p.argmax[o]] += g
	}
	return in
}

func (p *MaxPool2D) Params() [][]float64    { return nil }
func (p *MaxPool2D) Grads() [][]float64     { return nil }
func (p *MaxPool2D) Shapes() []tensor.Shape { return nil }

// GlobalAvgPool averages each channel of a CHW input down to one value.
type GlobalAvgPool struct {
	name         string
	ch, inH, inW int
}

// NewGlobalAvgPool constructs a global average pool.
func NewGlobalAvgPool(name string, ch, inH, inW int) *GlobalAvgPool {
	return &GlobalAvgPool{name: name, ch: ch, inH: inH, inW: inW}
}

func (p *GlobalAvgPool) Name() string { return p.name }
func (p *GlobalAvgPool) InDim() int   { return p.ch * p.inH * p.inW }
func (p *GlobalAvgPool) OutDim() int  { return p.ch }

func (p *GlobalAvgPool) Forward(x []float64, _ bool) []float64 {
	checkDim(p.name, len(x), p.InDim())
	area := p.inH * p.inW
	out := make([]float64, p.ch)
	for c := 0; c < p.ch; c++ {
		var s float64
		for i := 0; i < area; i++ {
			s += x[c*area+i]
		}
		out[c] = s / float64(area)
	}
	return out
}

func (p *GlobalAvgPool) Backward(grad []float64) []float64 {
	checkDim(p.name+" backward", len(grad), p.ch)
	area := p.inH * p.inW
	in := make([]float64, p.InDim())
	for c := 0; c < p.ch; c++ {
		g := grad[c] / float64(area)
		for i := 0; i < area; i++ {
			in[c*area+i] = g
		}
	}
	return in
}

func (p *GlobalAvgPool) Params() [][]float64    { return nil }
func (p *GlobalAvgPool) Grads() [][]float64     { return nil }
func (p *GlobalAvgPool) Shapes() []tensor.Shape { return nil }
