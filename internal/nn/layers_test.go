package nn

import (
	"math"
	"testing"
)

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("r", 4)
	out := r.Forward([]float64{-1, 0, 2, -3}, true)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("forward = %v", out)
		}
	}
	grad := r.Backward([]float64{1, 1, 1, 1})
	wantG := []float64{0, 0, 1, 0}
	for i := range wantG {
		if grad[i] != wantG[i] {
			t.Fatalf("backward = %v", grad)
		}
	}
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid("s", 3)
	out := s.Forward([]float64{-100, 0, 100}, true)
	if out[0] > 1e-10 || math.Abs(out[1]-0.5) > 1e-12 || out[2] < 1-1e-10 {
		t.Fatalf("sigmoid = %v", out)
	}
}

func TestTanhOddness(t *testing.T) {
	tn := NewTanh("t", 2)
	out := tn.Forward([]float64{1.3, -1.3}, true)
	if math.Abs(out[0]+out[1]) > 1e-12 {
		t.Fatalf("tanh not odd: %v", out)
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1x3x3 input, single 3x3 kernel of ones, no padding => output is the
	// sum of the input.
	c := NewConv2D("c", 1, 3, 3, 1, 3, 1, 0)
	w := c.Params()[0]
	for i := range w {
		w[i] = 1
	}
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := c.Forward(x, true)
	if len(out) != 1 || out[0] != 45 {
		t.Fatalf("conv sum = %v", out)
	}
	// Bias adds.
	c.Params()[1][0] = 0.5
	if got := c.Forward(x, true)[0]; got != 45.5 {
		t.Fatalf("conv+bias = %v", got)
	}
}

func TestConvPadding(t *testing.T) {
	c := NewConv2D("c", 1, 2, 2, 1, 3, 1, 1)
	_, h, w := c.OutDims()
	if h != 2 || w != 2 {
		t.Fatalf("padded out dims %dx%d", h, w)
	}
}

func TestConvPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive output dims")
		}
	}()
	NewConv2D("bad", 1, 2, 2, 1, 5, 1, 0)
}

func TestMaxPoolArgmaxRouting(t *testing.T) {
	p := NewMaxPool2D("p", 1, 2, 2, 2, 2)
	out := p.Forward([]float64{1, 9, 3, 4}, true)
	if out[0] != 9 {
		t.Fatalf("max = %v", out)
	}
	grad := p.Backward([]float64{5})
	want := []float64{0, 5, 0, 0}
	for i := range want {
		if grad[i] != want[i] {
			t.Fatalf("pool backward = %v", grad)
		}
	}
}

func TestMaxPoolPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewMaxPool2D("bad", 1, 1, 1, 2, 2)
}

func TestGlobalAvgPoolValues(t *testing.T) {
	g := NewGlobalAvgPool("g", 2, 2, 2)
	x := []float64{1, 2, 3, 4, 10, 20, 30, 40}
	out := g.Forward(x, true)
	if out[0] != 2.5 || out[1] != 25 {
		t.Fatalf("gap = %v", out)
	}
	grad := g.Backward([]float64{4, 8})
	if grad[0] != 1 || grad[4] != 2 {
		t.Fatalf("gap backward = %v", grad)
	}
}

func TestChannelNormStatistics(t *testing.T) {
	n := NewChannelNorm("n", 1, 2, 2)
	out := n.Forward([]float64{1, 2, 3, 4}, true)
	var mean, variance float64
	for _, v := range out {
		mean += v
	}
	mean /= 4
	for _, v := range out {
		variance += (v - mean) * (v - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("normalized mean = %v", mean)
	}
	if math.Abs(variance-1) > 1e-3 {
		t.Fatalf("normalized variance = %v", variance)
	}
	// Learnable affine applies.
	n.Params()[0][0] = 2   // gamma
	n.Params()[1][0] = 0.5 // beta
	out = n.Forward([]float64{1, 2, 3, 4}, true)
	var mean2 float64
	for _, v := range out {
		mean2 += v
	}
	if math.Abs(mean2/4-0.5) > 1e-9 {
		t.Fatalf("affine mean = %v", mean2/4)
	}
}

func TestResidualPanics(t *testing.T) {
	cases := []func(){
		func() { NewResidual("empty", nil, nil) },
		func() {
			// Identity skip with mismatched dims.
			NewResidual("mismatch", []Layer{NewDense("d", 4, 6)}, nil)
		},
		func() {
			// Projection with wrong dims.
			NewResidual("badproj", []Layer{NewDense("d", 4, 6)}, NewDense("p", 4, 5))
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			f()
		}()
	}
}

func TestZooPanics(t *testing.T) {
	cases := []func(){
		func() { LeNetDLG(1, 10, 10, 4) },  // not divisible by 4
		func() { ConvNet23(1, 12, 12, 4) }, // not divisible by 8
		func() { VGG16Lite(1, 16, 16, 4) }, // not divisible by 32
		func() { MLP("bad", 5) },           // too few dims
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCheckDimPanics(t *testing.T) {
	d := NewDense("d", 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong input length")
		}
	}()
	d.Forward([]float64{1, 2}, true)
}

// --- micro-benchmarks -----------------------------------------------

func BenchmarkConvNet8Forward(b *testing.B) {
	net := ConvNet8(1, 28, 28, 10)
	net.Init([]byte("bench"))
	x := randInput(net.InDim(), "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkConvNet8ForwardBackward(b *testing.B) {
	net := ConvNet8(1, 28, 28, 10)
	net.Init([]byte("bench"))
	x := randInput(net.InDim(), "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		out := net.Forward(x, true)
		_, g, _ := CrossEntropy(out, 3)
		net.Backward(g)
	}
}

func BenchmarkResNet18LiteForward(b *testing.B) {
	net := ResNet18Lite(3, 16, 16, 100, [4]int{4, 8, 16, 32})
	net.Init([]byte("bench"))
	x := randInput(net.InDim(), "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkParamsRoundTrip(b *testing.B) {
	net := ConvNet23(3, 16, 16, 10)
	net.Init([]byte("bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := net.Params()
		if err := net.SetParams(p); err != nil {
			b.Fatal(err)
		}
	}
}
