package nn

import "deta/internal/tensor"

// Residual computes out = body(x) + skip(x), the basic block of ResNet. The
// body is a sequence of layers; skip is either the identity (when the body
// preserves dimensions) or a projection layer such as a strided 1x1
// convolution.
type Residual struct {
	name string
	body []Layer
	skip Layer // nil means identity
}

// NewResidual wires a residual block. If skip is nil the input is added to
// the body output directly, which requires the body to preserve dimensions.
func NewResidual(name string, body []Layer, skip Layer) *Residual {
	if len(body) == 0 {
		panic("nn: residual block with empty body: " + name)
	}
	out := body[len(body)-1].OutDim()
	in := body[0].InDim()
	if skip == nil {
		if in != out {
			panic("nn: identity residual requires matching dims: " + name)
		}
	} else if skip.InDim() != in || skip.OutDim() != out {
		panic("nn: residual projection dims mismatch: " + name)
	}
	return &Residual{name: name, body: body, skip: skip}
}

func (r *Residual) Name() string { return r.name }
func (r *Residual) InDim() int   { return r.body[0].InDim() }
func (r *Residual) OutDim() int  { return r.body[len(r.body)-1].OutDim() }

func (r *Residual) Forward(x []float64, train bool) []float64 {
	h := x
	for _, l := range r.body {
		h = l.Forward(h, train)
	}
	var s []float64
	if r.skip == nil {
		s = x
	} else {
		s = r.skip.Forward(x, train)
	}
	out := make([]float64, len(h))
	for i := range h {
		out[i] = h[i] + s[i]
	}
	return out
}

func (r *Residual) Backward(grad []float64) []float64 {
	g := grad
	for i := len(r.body) - 1; i >= 0; i-- {
		g = r.body[i].Backward(g)
	}
	var gs []float64
	if r.skip == nil {
		gs = grad
	} else {
		gs = r.skip.Backward(grad)
	}
	out := make([]float64, len(g))
	for i := range g {
		out[i] = g[i] + gs[i]
	}
	return out
}

func (r *Residual) Params() [][]float64 {
	var out [][]float64
	for _, l := range r.body {
		out = append(out, l.Params()...)
	}
	if r.skip != nil {
		out = append(out, r.skip.Params()...)
	}
	return out
}

func (r *Residual) Grads() [][]float64 {
	var out [][]float64
	for _, l := range r.body {
		out = append(out, l.Grads()...)
	}
	if r.skip != nil {
		out = append(out, r.skip.Grads()...)
	}
	return out
}

func (r *Residual) Shapes() []tensor.Shape {
	var out []tensor.Shape
	for _, l := range r.body {
		out = append(out, l.Shapes()...)
	}
	if r.skip != nil {
		out = append(out, r.skip.Shapes()...)
	}
	return out
}
