package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"deta/internal/tensor"
)

// Checkpoint is the serialized form of a network's parameters together
// with the layout they belong to, so loads can be validated against the
// receiving architecture.
type Checkpoint struct {
	Name   string
	Layout tensor.Layout
	Params tensor.Vector
}

// Save writes the network's parameters as a gob checkpoint.
func (n *Network) Save(w io.Writer) error {
	cp := Checkpoint{Name: n.Name, Layout: n.Layout(), Params: n.Params()}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: saving %s: %w", n.Name, err)
	}
	return nil
}

// Load reads a checkpoint and installs its parameters, validating that the
// layout matches this network's architecture block for block.
func (n *Network) Load(r io.Reader) error {
	var cp Checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: loading checkpoint: %w", err)
	}
	layout := n.Layout()
	if len(cp.Layout) != len(layout) {
		return fmt.Errorf("nn: checkpoint has %d parameter blocks, network %s has %d",
			len(cp.Layout), n.Name, len(layout))
	}
	for i, s := range layout {
		got := cp.Layout[i]
		if got.Name != s.Name || got.Size() != s.Size() {
			return fmt.Errorf("nn: checkpoint block %d is %v, network expects %v", i, got, s)
		}
	}
	return n.SetParams(cp.Params)
}
