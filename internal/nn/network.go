package nn

import (
	"fmt"

	"deta/internal/rng"
	"deta/internal/tensor"
)

// Network is a sequential stack of layers with flat-vector parameter access,
// which is the representation DeTA partitions and shuffles.
type Network struct {
	// Name labels the architecture (used in experiment reports).
	Name   string
	layers []Layer

	// frozen[i] marks layer i's parameters as non-trainable: gradients for
	// those blocks read as zero. Used for transfer learning (Figure 7,
	// where only the replaced VGG-16 head trains).
	frozen []bool
}

// NewNetwork assembles a network and validates that adjacent layer
// dimensions agree.
func NewNetwork(name string, layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: network %q has no layers", name)
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].OutDim() != layers[i].InDim() {
			return nil, fmt.Errorf("nn: network %q: layer %d (%s) outputs %d but layer %d (%s) expects %d",
				name, i-1, layers[i-1].Name(), layers[i-1].OutDim(), i, layers[i].Name(), layers[i].InDim())
		}
	}
	return &Network{Name: name, layers: layers, frozen: make([]bool, len(layers))}, nil
}

// MustNetwork is NewNetwork that panics on error; used by the model zoo
// where shapes are static.
func MustNetwork(name string, layers ...Layer) *Network {
	n, err := NewNetwork(name, layers...)
	if err != nil {
		panic(err)
	}
	return n
}

// InDim and OutDim give the network's input and output vector lengths.
func (n *Network) InDim() int  { return n.layers[0].InDim() }
func (n *Network) OutDim() int { return n.layers[len(n.layers)-1].OutDim() }

// NumLayers returns the number of top-level layers.
func (n *Network) NumLayers() int { return len(n.layers) }

// Forward runs one flattened sample through the network and returns the
// output logits. train selects training-mode behaviour in layers that
// distinguish it.
func (n *Network) Forward(x []float64, train bool) []float64 {
	h := x
	for _, l := range n.layers {
		h = l.Forward(h, train)
	}
	return h
}

// Backward propagates dLoss/dLogits through the network, accumulating
// parameter gradients, and returns dLoss/dInput (needed by the
// reconstruction attacks).
func (n *Network) Backward(grad []float64) []float64 {
	g := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
	return g
}

// Layout describes the flat parameter vector's block structure.
func (n *Network) Layout() tensor.Layout {
	var out tensor.Layout
	for _, l := range n.layers {
		out = append(out, l.Shapes()...)
	}
	return out
}

// NumParams returns the total parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			total += len(p)
		}
	}
	return total
}

// Params returns a copy of all parameters as one flat vector.
func (n *Network) Params() tensor.Vector {
	out := make(tensor.Vector, 0, n.NumParams())
	for _, l := range n.layers {
		for _, p := range l.Params() {
			out = append(out, p...)
		}
	}
	return out
}

// SetParams overwrites all parameters from a flat vector.
func (n *Network) SetParams(v tensor.Vector) error {
	if len(v) != n.NumParams() {
		return fmt.Errorf("nn: SetParams: got %d values, want %d", len(v), n.NumParams())
	}
	at := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			copy(p, v[at:at+len(p)])
			at += len(p)
		}
	}
	return nil
}

// Grads returns a copy of the accumulated gradients as one flat vector,
// with frozen layers reading as zero.
func (n *Network) Grads() tensor.Vector {
	out := make(tensor.Vector, 0, n.NumParams())
	for i, l := range n.layers {
		for _, g := range l.Grads() {
			if n.frozen[i] {
				out = append(out, make([]float64, len(g))...)
			} else {
				out = append(out, g...)
			}
		}
	}
	return out
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, l := range n.layers {
		for _, g := range l.Grads() {
			for i := range g {
				g[i] = 0
			}
		}
	}
}

// FreezePrefix marks the first k top-level layers as non-trainable.
func (n *Network) FreezePrefix(k int) {
	for i := range n.frozen {
		n.frozen[i] = i < k
	}
}

// Init initializes all weights deterministically from seed using He-style
// fan-in scaling for weight matrices/kernels and zeros for biases.
// ChannelNorm gains stay 1 and shifts 0.
func (n *Network) Init(seed []byte) {
	s := rng.NewStream(seed, "nn-init/"+n.Name)
	for _, l := range n.layers {
		shapes := l.Shapes()
		params := l.Params()
		for bi, p := range params {
			sh := shapes[bi]
			switch {
			case len(sh.Dims) >= 2: // weight matrix or kernel
				fanIn := 1
				for _, d := range sh.Dims[1:] {
					fanIn *= d
				}
				std := sqrt(2 / float64(fanIn))
				for i := range p {
					p[i] = s.NormFloat64() * std
				}
			default:
				// Bias-like blocks: leave at current value (zeros for
				// Dense/Conv biases, ones for norm gains set at
				// construction).
			}
		}
	}
}

// Clone builds an independent network with the same architecture and
// parameter values. The architecture is rebuilt via the provided
// constructor; prefer zoo-level Clone helpers.
func Clone(build func() *Network, src *Network) *Network {
	dst := build()
	if err := dst.SetParams(src.Params()); err != nil {
		panic(err)
	}
	return dst
}

// Predict returns the argmax class for input x.
func (n *Network) Predict(x []float64) int {
	return argmax(n.Forward(x, false))
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
