package nn

import (
	"testing"

	"deta/internal/parallel"
)

// Conv2D's im2col/forward/backward kernels are parallelized over disjoint
// rows/channels with unchanged per-cell accumulation order, so outputs,
// weight gradients, and input gradients must be bit-identical across worker
// counts. The numeric gradient checks in gradcheck_test.go pin correctness;
// this pins serial/parallel equivalence.
func TestConvParallelMatchesSerial(t *testing.T) {
	build := func() *Conv2D {
		c := NewConv2D("c", 3, 9, 9, 4, 3, 2, 1)
		s := 0.37
		for i := range c.w {
			s = s*1.9 + 0.21 - float64(int(s*1.9+0.21))
			c.w[i] = s - 0.5
		}
		for i := range c.b {
			c.b[i] = float64(i)*0.125 - 0.2
		}
		return c
	}
	x := make([]float64, 3*9*9)
	v := 0.11
	for i := range x {
		v = v*1.3 + 0.17 - float64(int(v*1.3+0.17))
		x[i] = v - 0.5
	}

	ref := build()
	prev := parallel.SetWorkers(1)
	refOut := ref.Forward(x, true)
	refGrad := make([]float64, len(refOut))
	for i := range refGrad {
		refGrad[i] = float64(i%5)*0.25 - 0.5
	}
	refIn := ref.Backward(refGrad)
	parallel.SetWorkers(prev)

	for _, workers := range []int{2, 4, 9} {
		parallel.SetWorkers(workers)
		c := build()
		out := c.Forward(x, true)
		for i := range refOut {
			if out[i] != refOut[i] {
				t.Fatalf("workers=%d: forward[%d] = %v, serial %v", workers, i, out[i], refOut[i])
			}
		}
		in := c.Backward(refGrad)
		for i := range refIn {
			if in[i] != refIn[i] {
				t.Fatalf("workers=%d: input grad[%d] = %v, serial %v", workers, i, in[i], refIn[i])
			}
		}
		for i := range ref.gw {
			if c.gw[i] != ref.gw[i] {
				t.Fatalf("workers=%d: weight grad[%d] = %v, serial %v", workers, i, c.gw[i], ref.gw[i])
			}
		}
		for i := range ref.gb {
			if c.gb[i] != ref.gb[i] {
				t.Fatalf("workers=%d: bias grad[%d] = %v, serial %v", workers, i, c.gb[i], ref.gb[i])
			}
		}
		parallel.SetWorkers(prev)
	}
}
