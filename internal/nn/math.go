package nn

import "math"

// Thin wrappers keep call sites short and make it easy to swap in faster
// approximations if profiling ever demands it.

func exp(x float64) float64  { return math.Exp(x) }
func tanh(x float64) float64 { return math.Tanh(x) }
func sqrt(x float64) float64 { return math.Sqrt(x) }
func log(x float64) float64  { return math.Log(x) }
