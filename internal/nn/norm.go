package nn

import "deta/internal/tensor"

// ChannelNorm normalizes each channel of a CHW input to zero mean and unit
// variance per sample (instance normalization) and applies a learnable
// per-channel affine transform. It stands in for batch normalization in the
// residual networks: with single-sample processing, batch statistics
// degenerate to instance statistics, which preserves the training-stability
// role the paper's models rely on.
type ChannelNorm struct {
	name         string
	ch, inH, inW int
	eps          float64

	gamma, beta   []float64
	gGamma, gBeta []float64

	lastIn []float64
	mean   []float64
	invStd []float64
	normed []float64
}

// NewChannelNorm constructs an instance-normalization layer.
func NewChannelNorm(name string, ch, inH, inW int) *ChannelNorm {
	n := &ChannelNorm{
		name: name, ch: ch, inH: inH, inW: inW, eps: 1e-5,
		gamma: make([]float64, ch), beta: make([]float64, ch),
		gGamma: make([]float64, ch), gBeta: make([]float64, ch),
		mean: make([]float64, ch), invStd: make([]float64, ch),
	}
	for i := range n.gamma {
		n.gamma[i] = 1
	}
	return n
}

func (n *ChannelNorm) Name() string { return n.name }
func (n *ChannelNorm) InDim() int   { return n.ch * n.inH * n.inW }
func (n *ChannelNorm) OutDim() int  { return n.InDim() }

func (n *ChannelNorm) Forward(x []float64, _ bool) []float64 {
	checkDim(n.name, len(x), n.InDim())
	n.lastIn = x
	area := n.inH * n.inW
	out := make([]float64, len(x))
	n.normed = make([]float64, len(x))
	for c := 0; c < n.ch; c++ {
		seg := x[c*area : (c+1)*area]
		var mu float64
		for _, v := range seg {
			mu += v
		}
		mu /= float64(area)
		var vr float64
		for _, v := range seg {
			d := v - mu
			vr += d * d
		}
		vr /= float64(area)
		inv := 1 / sqrt(vr+n.eps)
		n.mean[c] = mu
		n.invStd[c] = inv
		for i, v := range seg {
			z := (v - mu) * inv
			n.normed[c*area+i] = z
			out[c*area+i] = n.gamma[c]*z + n.beta[c]
		}
	}
	return out
}

func (n *ChannelNorm) Backward(grad []float64) []float64 {
	checkDim(n.name+" backward", len(grad), n.OutDim())
	area := n.inH * n.inW
	in := make([]float64, len(grad))
	for c := 0; c < n.ch; c++ {
		var sumG, sumGZ float64
		for i := 0; i < area; i++ {
			g := grad[c*area+i]
			z := n.normed[c*area+i]
			sumG += g
			sumGZ += g * z
			n.gGamma[c] += g * z
			n.gBeta[c] += g
		}
		// dL/dx = gamma*invStd/area * (area*g - sumG - z*sumGZ)
		k := n.gamma[c] * n.invStd[c] / float64(area)
		for i := 0; i < area; i++ {
			g := grad[c*area+i]
			z := n.normed[c*area+i]
			in[c*area+i] = k * (float64(area)*g - sumG - z*sumGZ)
		}
	}
	return in
}

func (n *ChannelNorm) Params() [][]float64 { return [][]float64{n.gamma, n.beta} }
func (n *ChannelNorm) Grads() [][]float64  { return [][]float64{n.gGamma, n.gBeta} }

func (n *ChannelNorm) Shapes() []tensor.Shape {
	return []tensor.Shape{
		{Name: n.name + ".gamma", Dims: []int{n.ch}},
		{Name: n.name + ".beta", Dims: []int{n.ch}},
	}
}
