package nn

import (
	"math"
	"testing"

	"deta/internal/rng"
	"deta/internal/tensor"
)

// numericalInputGrad estimates dLoss/dInput by central differences.
func numericalInputGrad(n *Network, x []float64, label int, eps float64) []float64 {
	grad := make([]float64, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp, _, _ := CrossEntropy(n.Forward(x, true), label)
		x[i] = orig - eps
		lm, _, _ := CrossEntropy(n.Forward(x, true), label)
		x[i] = orig
		grad[i] = (lp - lm) / (2 * eps)
	}
	return grad
}

// numericalParamGrad estimates dLoss/dParams by central differences.
func numericalParamGrad(n *Network, x []float64, label int, eps float64) tensor.Vector {
	params := n.Params()
	grad := make(tensor.Vector, len(params))
	for i := range params {
		orig := params[i]
		params[i] = orig + eps
		_ = n.SetParams(params)
		lp, _, _ := CrossEntropy(n.Forward(x, true), label)
		params[i] = orig - eps
		_ = n.SetParams(params)
		lm, _, _ := CrossEntropy(n.Forward(x, true), label)
		params[i] = orig
		grad[i] = (lp - lm) / (2 * eps)
	}
	_ = n.SetParams(params)
	return grad
}

// analyticGrads runs one forward/backward pass and returns (inputGrad,
// paramGrad).
func analyticGrads(n *Network, x []float64, label int) ([]float64, tensor.Vector) {
	n.ZeroGrads()
	out := n.Forward(x, true)
	_, g, err := CrossEntropy(out, label)
	if err != nil {
		panic(err)
	}
	inGrad := n.Backward(g)
	return inGrad, n.Grads()
}

func maxRelErr(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		scale := math.Abs(a[i]) + math.Abs(b[i]) + 1e-4
		if e := math.Abs(a[i]-b[i]) / scale; e > worst {
			worst = e
		}
	}
	return worst
}

func randInput(n int, seed string) []float64 {
	s := rng.NewStream([]byte(seed), "gradcheck-input")
	x := make([]float64, n)
	for i := range x {
		x[i] = s.NormFloat64() * 0.5
	}
	return x
}

func checkNetworkGradients(t *testing.T, net *Network, label int) {
	t.Helper()
	net.Init([]byte("gradcheck-seed"))
	x := randInput(net.InDim(), net.Name)
	anIn, anParam := analyticGrads(net, x, label)

	numIn := numericalInputGrad(net, x, label, 1e-5)
	if e := maxRelErr(anIn, numIn); e > 1e-3 {
		t.Errorf("%s: input gradient max rel err %v", net.Name, e)
	}
	numParam := numericalParamGrad(net, x, label, 1e-5)
	if e := maxRelErr(anParam, numParam); e > 1e-3 {
		t.Errorf("%s: param gradient max rel err %v", net.Name, e)
	}
}

func TestGradCheckDense(t *testing.T) {
	checkNetworkGradients(t, MLP("mlp", 6, 5, 4), 2)
}

func TestGradCheckConvSigmoid(t *testing.T) {
	c := NewConv2D("c", 2, 5, 5, 3, 3, 1, 1)
	net := MustNetwork("conv-sig",
		c, NewSigmoid("s", c.OutDim()),
		NewDense("fc", c.OutDim(), 4))
	checkNetworkGradients(t, net, 1)
}

func TestGradCheckConvStride(t *testing.T) {
	c := NewConv2D("c", 1, 6, 6, 2, 3, 2, 1)
	net := MustNetwork("conv-stride",
		c, NewTanh("t", c.OutDim()),
		NewDense("fc", c.OutDim(), 3))
	checkNetworkGradients(t, net, 0)
}

func TestGradCheckMaxPool(t *testing.T) {
	c := NewConv2D("c", 1, 6, 6, 2, 3, 1, 1)
	p := NewMaxPool2D("p", 2, 6, 6, 2, 2)
	net := MustNetwork("conv-pool",
		c, NewSigmoid("s", c.OutDim()), p,
		NewDense("fc", p.OutDim(), 3))
	checkNetworkGradients(t, net, 2)
}

func TestGradCheckChannelNorm(t *testing.T) {
	c := NewConv2D("c", 1, 5, 5, 3, 3, 1, 1)
	n := NewChannelNorm("n", 3, 5, 5)
	net := MustNetwork("conv-norm",
		c, n, NewTanh("t", n.OutDim()),
		NewDense("fc", n.OutDim(), 3))
	checkNetworkGradients(t, net, 1)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	c := NewConv2D("c", 1, 4, 4, 3, 3, 1, 1)
	g := NewGlobalAvgPool("g", 3, 4, 4)
	net := MustNetwork("conv-gap",
		c, NewSigmoid("s", c.OutDim()), g,
		NewDense("fc", 3, 3))
	checkNetworkGradients(t, net, 0)
}

func TestGradCheckResidualIdentity(t *testing.T) {
	blk := resBlock("rb", 2, 4, 4, 2, 1)
	net := MustNetwork("res-id",
		NewConv2D("stem", 1, 4, 4, 2, 3, 1, 1),
		blk,
		NewDense("fc", blk.OutDim(), 3))
	checkNetworkGradients(t, net, 1)
}

func TestGradCheckResidualProjection(t *testing.T) {
	blk := resBlock("rb", 2, 6, 6, 4, 2)
	net := MustNetwork("res-proj",
		NewConv2D("stem", 1, 6, 6, 2, 3, 1, 1),
		blk,
		NewDense("fc", blk.OutDim(), 3))
	checkNetworkGradients(t, net, 2)
}

func TestGradCheckReLUNetwork(t *testing.T) {
	// ReLU kinks can break finite differences if an activation sits at 0;
	// random inputs make that measure-zero. Use a conv+relu+fc net.
	c := NewConv2D("c", 1, 5, 5, 2, 3, 1, 1)
	net := MustNetwork("conv-relu",
		c, NewReLU("r", c.OutDim()),
		NewDense("fc", c.OutDim(), 3))
	checkNetworkGradients(t, net, 1)
}

func TestGradCheckSoftTargets(t *testing.T) {
	net := MLP("soft", 5, 6, 4)
	net.Init([]byte("seed-soft"))
	x := randInput(5, "soft")
	target := []float64{0.1, 0.2, 0.3, 0.4}

	net.ZeroGrads()
	out := net.Forward(x, true)
	_, gLogits, gTarget, err := SoftCrossEntropy(out, target)
	if err != nil {
		t.Fatal(err)
	}
	_ = net.Backward(gLogits)
	anParam := net.Grads()

	// Numerical check on params.
	params := net.Params()
	eps := 1e-5
	for _, i := range []int{0, 3, len(params) / 2, len(params) - 1} {
		orig := params[i]
		params[i] = orig + eps
		_ = net.SetParams(params)
		lp, _, _, _ := SoftCrossEntropy(net.Forward(x, true), target)
		params[i] = orig - eps
		_ = net.SetParams(params)
		lm, _, _, _ := SoftCrossEntropy(net.Forward(x, true), target)
		params[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-anParam[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("soft-target param grad %d: analytic %v numerical %v", i, anParam[i], num)
		}
	}
	_ = net.SetParams(params)

	// Numerical check on the target gradient.
	for j := range target {
		orig := target[j]
		target[j] = orig + eps
		lp, _, _, _ := SoftCrossEntropy(net.Forward(x, true), target)
		target[j] = orig - eps
		lm, _, _, _ := SoftCrossEntropy(net.Forward(x, true), target)
		target[j] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-gTarget[j]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("target grad %d: analytic %v numerical %v", j, gTarget[j], num)
		}
	}
}
