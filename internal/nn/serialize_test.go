package nn

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	src := ConvNet8(1, 8, 8, 4)
	src.Init([]byte("save-load"))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := ConvNet8(1, 8, 8, 4)
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		if sp[i] != dp[i] {
			t.Fatalf("param %d differs after load", i)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	src := ConvNet8(1, 8, 8, 4)
	src.Init([]byte("s"))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := MLP("other", 64, 10, 4)
	err := wrong.Load(&buf)
	if err == nil {
		t.Fatal("mismatched architecture accepted")
	}
	if !strings.Contains(err.Error(), "block") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	net := MLP("g", 4, 3, 2)
	if err := net.Load(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage loaded")
	}
}

func TestLoadRejectsBlockCountMismatch(t *testing.T) {
	src := MLP("small", 4, 2)
	src.Init([]byte("s"))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	big := MLP("big", 4, 5, 2)
	if err := big.Load(&buf); err == nil {
		t.Fatal("block-count mismatch accepted")
	}
}
