package nn

import (
	"math"
	"testing"
	"testing/quick"

	"deta/internal/rng"
)

func TestNewNetworkDimValidation(t *testing.T) {
	_, err := NewNetwork("bad", NewDense("a", 4, 5), NewDense("b", 6, 2))
	if err == nil {
		t.Fatal("want dimension-mismatch error")
	}
	if _, err := NewNetwork("empty"); err == nil {
		t.Fatal("want error for empty network")
	}
	if _, err := NewNetwork("ok", NewDense("a", 4, 5), NewDense("b", 5, 2)); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
}

func TestParamsRoundTrip(t *testing.T) {
	net := MLP("rt", 4, 8, 3)
	net.Init([]byte("seed"))
	p := net.Params()
	if len(p) != net.NumParams() {
		t.Fatalf("Params len %d, NumParams %d", len(p), net.NumParams())
	}
	p2 := p.Clone()
	for i := range p2 {
		p2[i] += 1.5
	}
	if err := net.SetParams(p2); err != nil {
		t.Fatal(err)
	}
	got := net.Params()
	for i := range got {
		if got[i] != p2[i] {
			t.Fatalf("param %d: got %v want %v", i, got[i], p2[i])
		}
	}
	if err := net.SetParams(p[:3]); err == nil {
		t.Fatal("want error on short vector")
	}
}

func TestLayoutMatchesParams(t *testing.T) {
	net := ConvNet8(1, 8, 8, 10)
	layout := net.Layout()
	if layout.TotalSize() != net.NumParams() {
		t.Fatalf("layout size %d != NumParams %d", layout.TotalSize(), net.NumParams())
	}
	// Every block must be named and non-empty.
	for _, s := range layout {
		if s.Name == "" || s.Size() == 0 {
			t.Errorf("bad layout entry %v", s)
		}
	}
}

func TestInitDeterminism(t *testing.T) {
	a := MLP("det", 6, 10, 4)
	b := MLP("det", 6, 10, 4)
	a.Init([]byte("same-seed"))
	b.Init([]byte("same-seed"))
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different init")
		}
	}
	c := MLP("det", 6, 10, 4)
	c.Init([]byte("other-seed"))
	pc := c.Params()
	same := 0
	for i := range pa {
		if pa[i] == pc[i] {
			same++
		}
	}
	// Biases are zero in both; weights must differ.
	if same == len(pa) {
		t.Fatal("different seeds produced identical init")
	}
}

func TestZeroGrads(t *testing.T) {
	net := MLP("zg", 3, 4, 2)
	net.Init([]byte("s"))
	x := []float64{1, 2, 3}
	out := net.Forward(x, true)
	_, g, _ := CrossEntropy(out, 0)
	net.Backward(g)
	if tensorAllZero(net.Grads()) {
		t.Fatal("grads should be nonzero after backward")
	}
	net.ZeroGrads()
	if !tensorAllZero(net.Grads()) {
		t.Fatal("grads should be zero after ZeroGrads")
	}
}

func tensorAllZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

func TestFreezePrefix(t *testing.T) {
	net := MLP("fz", 3, 4, 2)
	net.Init([]byte("s"))
	net.FreezePrefix(1) // freeze fc1
	x := []float64{1, -1, 0.5}
	out := net.Forward(x, true)
	_, g, _ := CrossEntropy(out, 1)
	net.Backward(g)
	grads := net.Grads()
	layout := net.Layout()
	offs := layout.Offsets()
	// fc1 has blocks 0 (w) and 1 (b); both must be zero.
	for i := offs[0]; i < offs[2]; i++ {
		if grads[i] != 0 {
			t.Fatalf("frozen layer grad nonzero at %d", i)
		}
	}
	// The head must have nonzero grads.
	if tensorAllZero(grads[offs[2]:]) {
		t.Fatal("unfrozen head has all-zero grads")
	}
}

func TestPredictAndSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("softmax ordering broken: %v", p)
	}
	// Stability with large logits.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Fatal("softmax overflow")
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	if _, _, err := CrossEntropy([]float64{1, 2}, 5); err == nil {
		t.Fatal("want out-of-range label error")
	}
	if _, _, err := CrossEntropy([]float64{1, 2}, -1); err == nil {
		t.Fatal("want negative label error")
	}
	loss, grad, err := CrossEntropy([]float64{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(2)) > 1e-9 {
		t.Fatalf("loss = %v, want ln 2", loss)
	}
	if math.Abs(grad[0]+0.5) > 1e-9 || math.Abs(grad[1]-0.5) > 1e-9 {
		t.Fatalf("grad = %v", grad)
	}
}

func TestMSELoss(t *testing.T) {
	loss, grad, err := MSELoss([]float64{1, 2}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-1.25) > 1e-9 {
		t.Fatalf("loss = %v", loss)
	}
	if math.Abs(grad[0]-0.5) > 1e-9 || math.Abs(grad[1]-1) > 1e-9 {
		t.Fatalf("grad = %v", grad)
	}
	if _, _, err := MSELoss([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length error")
	}
}

func TestZooShapes(t *testing.T) {
	cases := []struct {
		name string
		net  *Network
		in   int
		out  int
	}{
		{"lenet", LeNetDLG(3, 16, 16, 100), 3 * 16 * 16, 100},
		{"convnet8", ConvNet8(1, 28, 28, 10), 28 * 28, 10},
		{"convnet23", ConvNet23(3, 32, 32, 10), 3 * 32 * 32, 10},
		{"resnet", ResNet18Lite(3, 16, 16, 100, [4]int{4, 8, 16, 32}), 3 * 16 * 16, 100},
	}
	for _, c := range cases {
		if c.net.InDim() != c.in {
			t.Errorf("%s: InDim = %d, want %d", c.name, c.net.InDim(), c.in)
		}
		if c.net.OutDim() != c.out {
			t.Errorf("%s: OutDim = %d, want %d", c.name, c.net.OutDim(), c.out)
		}
		// Forward must produce finite outputs post-init.
		c.net.Init([]byte("zoo"))
		x := randInput(c.net.InDim(), c.name)
		out := c.net.Forward(x, false)
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite output", c.name)
				break
			}
		}
	}
	vgg, head := VGG16Lite(1, 32, 32, 16)
	if vgg.InDim() != 32*32 || vgg.OutDim() != 16 {
		t.Errorf("vgg dims: in %d out %d", vgg.InDim(), vgg.OutDim())
	}
	if head <= 0 || head >= vgg.NumLayers() {
		t.Errorf("vgg head offset %d out of range", head)
	}
}

// Property: SetParams(Params()) is the identity for arbitrary overwrites.
func TestParamsQuick(t *testing.T) {
	net := MLP("pq", 3, 5, 2)
	n := net.NumParams()
	f := func(vals []float64) bool {
		v := make([]float64, n)
		for i := range v {
			if i < len(vals) && !math.IsNaN(vals[i]) && !math.IsInf(vals[i], 0) {
				v[i] = vals[i]
			} else {
				v[i] = float64(i)
			}
		}
		if err := net.SetParams(v); err != nil {
			return false
		}
		got := net.Params()
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Training sanity: a small MLP must be able to fit a toy problem, proving
// the full forward/backward/update loop learns.
func TestMLPLearnsXOR(t *testing.T) {
	net := MLP("xor", 2, 8, 2)
	net.Init([]byte("xor-seed"))
	data := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	lr := 0.5
	for epoch := 0; epoch < 2000; epoch++ {
		net.ZeroGrads()
		for i, x := range data {
			out := net.Forward(x, true)
			_, g, _ := CrossEntropy(out, labels[i])
			net.Backward(g)
		}
		params := net.Params()
		grads := net.Grads()
		for i := range params {
			params[i] -= lr * grads[i] / float64(len(data))
		}
		_ = net.SetParams(params)
	}
	for i, x := range data {
		if net.Predict(x) != labels[i] {
			t.Fatalf("XOR not learned: Predict(%v) = %d, want %d", x, net.Predict(x), labels[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	src := MLP("c", 3, 4, 2)
	src.Init([]byte("clone"))
	dup := Clone(func() *Network { return MLP("c", 3, 4, 2) }, src)
	p := src.Params()
	q := dup.Params()
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("clone params differ")
		}
	}
	p[0] = 42
	_ = src.SetParams(p)
	if dup.Params()[0] == 42 {
		t.Fatal("clone shares storage")
	}
}

func TestStreamBasedInputHelper(t *testing.T) {
	// randInput must be deterministic per seed.
	a := randInput(10, "x")
	b := randInput(10, "x")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("randInput not deterministic")
		}
	}
	_ = rng.IsPerm(nil) // keep the import honest
}
