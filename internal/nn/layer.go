// Package nn is a from-scratch neural-network library sufficient to
// reproduce DeTA's experiments: sequential and residual convolutional
// networks with full backpropagation to both parameters and inputs.
//
// Model updates in DeTA are exchanged as flattened parameter vectors, so the
// package exposes Params/SetParams/Grads as flat tensor.Vectors alongside a
// tensor.Layout describing the block structure (the "model architecture"
// information that DeTA's aggregators never see).
//
// Input gradients matter because the data-reconstruction attacks (DLG, iDLG,
// IG — paper §6) optimize a dummy input by gradient descent; see
// internal/attack for how second-order terms are obtained.
//
// Networks are NOT safe for concurrent use: layers cache forward
// activations for the subsequent backward pass. Use one Network per
// goroutine (Clone is cheap at the scales used here).
package nn

import (
	"fmt"

	"deta/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward must be called
// before Backward; Backward consumes the gradient of the loss with respect
// to the layer's output and returns the gradient with respect to its input,
// accumulating parameter gradients internally.
type Layer interface {
	// Name identifies the layer for layouts and debugging.
	Name() string
	// InDim and OutDim are the flat input/output vector lengths.
	InDim() int
	OutDim() int
	// Forward computes the layer output for a single flattened sample.
	Forward(x []float64, train bool) []float64
	// Backward propagates grad (dLoss/dOut) to dLoss/dIn and accumulates
	// parameter gradients.
	Backward(grad []float64) []float64
	// Params returns the layer's parameter blocks (aliasing internal
	// storage) and Grads the matching accumulated gradient blocks. Both
	// are nil for stateless layers.
	Params() [][]float64
	Grads() [][]float64
	// Shapes describes the parameter blocks, in the same order as Params.
	Shapes() []tensor.Shape
}

// ReLU is the rectified-linear activation.
type ReLU struct {
	name string
	dim  int
	mask []bool
}

// NewReLU returns a ReLU over vectors of length dim.
func NewReLU(name string, dim int) *ReLU {
	return &ReLU{name: name, dim: dim, mask: make([]bool, dim)}
}

func (r *ReLU) Name() string { return r.name }
func (r *ReLU) InDim() int   { return r.dim }
func (r *ReLU) OutDim() int  { return r.dim }

func (r *ReLU) Forward(x []float64, _ bool) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

func (r *ReLU) Backward(grad []float64) []float64 {
	out := make([]float64, len(grad))
	for i, g := range grad {
		if r.mask[i] {
			out[i] = g
		}
	}
	return out
}

func (r *ReLU) Params() [][]float64    { return nil }
func (r *ReLU) Grads() [][]float64     { return nil }
func (r *ReLU) Shapes() []tensor.Shape { return nil }

// Sigmoid is the logistic activation, used by the DLG LeNet variant
// (the attack requires twice-differentiable activations; sigmoid is the
// activation the DLG paper uses for exactly that reason).
type Sigmoid struct {
	name string
	dim  int
	out  []float64
}

// NewSigmoid returns a Sigmoid over vectors of length dim.
func NewSigmoid(name string, dim int) *Sigmoid {
	return &Sigmoid{name: name, dim: dim}
}

func (s *Sigmoid) Name() string { return s.name }
func (s *Sigmoid) InDim() int   { return s.dim }
func (s *Sigmoid) OutDim() int  { return s.dim }

func (s *Sigmoid) Forward(x []float64, _ bool) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = 1 / (1 + exp(-v))
	}
	s.out = out
	return out
}

func (s *Sigmoid) Backward(grad []float64) []float64 {
	out := make([]float64, len(grad))
	for i, g := range grad {
		y := s.out[i]
		out[i] = g * y * (1 - y)
	}
	return out
}

func (s *Sigmoid) Params() [][]float64    { return nil }
func (s *Sigmoid) Grads() [][]float64     { return nil }
func (s *Sigmoid) Shapes() []tensor.Shape { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	name string
	dim  int
	out  []float64
}

// NewTanh returns a Tanh over vectors of length dim.
func NewTanh(name string, dim int) *Tanh { return &Tanh{name: name, dim: dim} }

func (t *Tanh) Name() string { return t.name }
func (t *Tanh) InDim() int   { return t.dim }
func (t *Tanh) OutDim() int  { return t.dim }

func (t *Tanh) Forward(x []float64, _ bool) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = tanh(v)
	}
	t.out = out
	return out
}

func (t *Tanh) Backward(grad []float64) []float64 {
	out := make([]float64, len(grad))
	for i, g := range grad {
		y := t.out[i]
		out[i] = g * (1 - y*y)
	}
	return out
}

func (t *Tanh) Params() [][]float64    { return nil }
func (t *Tanh) Grads() [][]float64     { return nil }
func (t *Tanh) Shapes() []tensor.Shape { return nil }

func checkDim(layer string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s: input length %d, want %d", layer, got, want))
	}
}
