package nn

import "deta/internal/tensor"

// Dense is a fully connected layer: out = W*x + b with W stored row-major
// as [out][in].
type Dense struct {
	name    string
	in, out int

	w, b   []float64
	gw, gb []float64

	lastIn []float64
}

// NewDense returns an uninitialized fully connected layer mapping in
// features to out features. Weights are zero until initialized by a Network.
func NewDense(name string, in, out int) *Dense {
	return &Dense{
		name: name, in: in, out: out,
		w: make([]float64, in*out), b: make([]float64, out),
		gw: make([]float64, in*out), gb: make([]float64, out),
	}
}

func (d *Dense) Name() string { return d.name }
func (d *Dense) InDim() int   { return d.in }
func (d *Dense) OutDim() int  { return d.out }

func (d *Dense) Forward(x []float64, _ bool) []float64 {
	checkDim(d.name, len(x), d.in)
	d.lastIn = x
	out := make([]float64, d.out)
	for o := 0; o < d.out; o++ {
		row := d.w[o*d.in : (o+1)*d.in]
		s := d.b[o]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s
	}
	return out
}

func (d *Dense) Backward(grad []float64) []float64 {
	checkDim(d.name+" backward", len(grad), d.out)
	in := make([]float64, d.in)
	for o := 0; o < d.out; o++ {
		g := grad[o]
		if g == 0 {
			continue
		}
		row := d.w[o*d.in : (o+1)*d.in]
		grow := d.gw[o*d.in : (o+1)*d.in]
		d.gb[o] += g
		for i, xi := range d.lastIn {
			grow[i] += g * xi
			in[i] += g * row[i]
		}
	}
	return in
}

func (d *Dense) Params() [][]float64 { return [][]float64{d.w, d.b} }
func (d *Dense) Grads() [][]float64  { return [][]float64{d.gw, d.gb} }

func (d *Dense) Shapes() []tensor.Shape {
	return []tensor.Shape{
		{Name: d.name + ".w", Dims: []int{d.out, d.in}},
		{Name: d.name + ".b", Dims: []int{d.out}},
	}
}
