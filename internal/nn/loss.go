package nn

import "fmt"

// Softmax returns the softmax of logits, computed stably.
func Softmax(logits []float64) []float64 {
	m := logits[0]
	for _, v := range logits[1:] {
		if v > m {
			m = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := exp(v - m)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// CrossEntropy computes softmax cross-entropy against a hard label and the
// gradient with respect to the logits.
func CrossEntropy(logits []float64, label int) (loss float64, grad []float64, err error) {
	if label < 0 || label >= len(logits) {
		return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", label, len(logits))
	}
	p := Softmax(logits)
	const tiny = 1e-12
	loss = -log(p[label] + tiny)
	grad = p
	grad[label] -= 1
	return loss, grad, nil
}

// SoftCrossEntropy computes cross-entropy against a soft target
// distribution (used by the DLG attack, which optimizes a dummy label).
// It returns the loss, dLoss/dLogits, and dLoss/dTarget — the last term is
// -log softmax(logits), needed when the attack differentiates with respect
// to its dummy label variable.
func SoftCrossEntropy(logits, target []float64) (loss float64, gradLogits, gradTarget []float64, err error) {
	if len(logits) != len(target) {
		return 0, nil, nil, fmt.Errorf("nn: logits/target length mismatch: %d vs %d", len(logits), len(target))
	}
	p := Softmax(logits)
	const tiny = 1e-12
	gradTarget = make([]float64, len(p))
	var tSum float64
	for i, t := range target {
		lp := log(p[i] + tiny)
		loss -= t * lp
		gradTarget[i] = -lp
		tSum += t
	}
	// dLoss/dlogit_j = p_j * sum(t) - t_j  (reduces to p - onehot when
	// target sums to 1).
	gradLogits = make([]float64, len(p))
	for j := range p {
		gradLogits[j] = p[j]*tSum - target[j]
	}
	return loss, gradLogits, gradTarget, nil
}

// MSELoss computes 0.5*||out-target||^2 / n and its gradient with respect
// to out.
func MSELoss(out, target []float64) (loss float64, grad []float64, err error) {
	if len(out) != len(target) {
		return 0, nil, fmt.Errorf("nn: out/target length mismatch: %d vs %d", len(out), len(target))
	}
	grad = make([]float64, len(out))
	n := float64(len(out))
	for i := range out {
		d := out[i] - target[i]
		loss += 0.5 * d * d / n
		grad[i] = d / n
	}
	return loss, grad, nil
}
