package tdx

import (
	"bytes"
	"errors"
	"testing"
)

var tdImage = []byte("deta aggregator TD image v1")

func vendorPlatform(t *testing.T) (*Vendor, *Platform) {
	t.Helper()
	v, err := NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform("tdx-host", v)
	if err != nil {
		t.Fatal(err)
	}
	return v, p
}

func TestChainVerifies(t *testing.T) {
	v, p := vendorPlatform(t)
	if err := p.chain.Verify(v.RootCert()); err != nil {
		t.Fatalf("genuine chain rejected: %v", err)
	}
}

func TestChainForeignRootRejected(t *testing.T) {
	_, p := vendorPlatform(t)
	other, err := NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.chain.Verify(other.RootCert()); err == nil {
		t.Fatal("foreign root accepted")
	}
}

func TestTDLifecycle(t *testing.T) {
	_, p := vendorPlatform(t)
	td := p.CreateTD(tdImage)
	if td.State() != TDBuilding {
		t.Fatalf("state = %d", td.State())
	}
	if _, err := td.GuestReadSecret(); !errors.Is(err, ErrBadState) {
		t.Fatalf("read while building: %v", err)
	}
	secret := []byte("token-material")
	if err := td.ProvisionSecret(secret); err != nil {
		t.Fatal(err)
	}
	if err := td.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := td.Finalize(); !errors.Is(err, ErrBadState) {
		t.Fatalf("double finalize: %v", err)
	}
	if err := td.ProvisionSecret(secret); !errors.Is(err, ErrBadState) {
		t.Fatalf("provision after finalize: %v", err)
	}
	got, err := td.GuestReadSecret()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("secret corrupted")
	}
}

func TestGuestReadWithoutSecret(t *testing.T) {
	_, p := vendorPlatform(t)
	td := p.CreateTD(tdImage)
	_ = td.Finalize()
	if _, err := td.GuestReadSecret(); !errors.Is(err, ErrNoSecret) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuoteVerifies(t *testing.T) {
	v, p := vendorPlatform(t)
	td := p.CreateTD(tdImage)
	nonce := []byte("tdx-nonce")
	q, err := p.QuoteTD(td, 5, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(q, v.RootCert(), MeasureTD(tdImage), nonce, 3); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
}

func TestQuoteRejectsWrongImage(t *testing.T) {
	v, p := vendorPlatform(t)
	evil := append([]byte(nil), tdImage...)
	evil[0] ^= 1
	td := p.CreateTD(evil)
	nonce := []byte("n")
	q, _ := p.QuoteTD(td, 5, nonce)
	if err := VerifyQuote(q, v.RootCert(), MeasureTD(tdImage), nonce, 0); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuoteRejectsTampering(t *testing.T) {
	v, p := vendorPlatform(t)
	td := p.CreateTD(tdImage)
	nonce := []byte("n")
	q, _ := p.QuoteTD(td, 5, nonce)
	q.TCBLevel = 99
	if err := VerifyQuote(q, v.RootCert(), MeasureTD(tdImage), nonce, 0); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuoteRejectsStaleNonce(t *testing.T) {
	v, p := vendorPlatform(t)
	td := p.CreateTD(tdImage)
	q, _ := p.QuoteTD(td, 5, []byte("old"))
	if err := VerifyQuote(q, v.RootCert(), MeasureTD(tdImage), []byte("new"), 0); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuoteRejectsLowTCB(t *testing.T) {
	v, p := vendorPlatform(t)
	td := p.CreateTD(tdImage)
	nonce := []byte("n")
	q, _ := p.QuoteTD(td, 2, nonce)
	if err := VerifyQuote(q, v.RootCert(), MeasureTD(tdImage), nonce, 5); !errors.Is(err, ErrTCBOutOfDate) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyNilQuote(t *testing.T) {
	v, _ := vendorPlatform(t)
	if err := VerifyQuote(nil, v.RootCert(), Measurement{}, nil, 0); err == nil {
		t.Fatal("nil quote accepted")
	}
}
