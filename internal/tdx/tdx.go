// Package tdx is a software simulation of Intel Trust Domain Extensions,
// the second confidential-computing technology the paper names as a
// drop-in alternative to AMD SEV (§5: "our prototype can readily integrate
// with other CC solutions, such as Intel TDX ... The only necessary
// adjustment is to modify the AP server to accommodate additional CC
// attestation").
//
// The simulation mirrors TDX's structure where it differs from SEV: trust
// domains (TDs) measure their initial contents into MRTD with SHA-384, and
// attestation evidence is a *quote* — a TD report signed by the platform's
// Provisioning Certification Key (PCK), which chains to the Intel SGX/TDX
// root CA. The attest package's multi-technology proxy consumes either SEV
// reports or TDX quotes through one interface.
package tdx

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha512"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Measurement is the SHA-384 MRTD of a TD's initial contents.
type Measurement [sha512.Size384]byte

// MeasureTD computes the MRTD for a TD image.
func MeasureTD(image []byte) Measurement { return sha512.Sum384(image) }

// Cert is a minimal certificate (subject, PKIX key, parent signature) —
// the same reduced format the sev package uses, so chain-walk logic is
// shared in spirit but keys and depths differ.
type Cert struct {
	Subject string
	PubKey  []byte
	Sig     []byte
}

func (c Cert) digest() []byte {
	h := sha512.New384()
	h.Write([]byte(c.Subject))
	h.Write([]byte{0})
	h.Write(c.PubKey)
	return h.Sum(nil)
}

func (c Cert) publicKey() (*ecdsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(c.PubKey)
	if err != nil {
		return nil, fmt.Errorf("tdx: parse %s key: %w", c.Subject, err)
	}
	pk, ok := k.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("tdx: %s key is not ECDSA", c.Subject)
	}
	return pk, nil
}

// Chain is the two-level TDX endorsement: Intel root CA signs the
// platform's PCK.
type Chain struct {
	Root Cert
	PCK  Cert
}

// Verify walks the chain against the trusted Intel root.
func (ch Chain) Verify(trustedRoot Cert) error {
	if string(ch.Root.PubKey) != string(trustedRoot.PubKey) {
		return errors.New("tdx: root does not match trusted Intel CA")
	}
	rootKey, err := ch.Root.publicKey()
	if err != nil {
		return err
	}
	if !ecdsa.VerifyASN1(rootKey, ch.Root.digest(), ch.Root.Sig) {
		return errors.New("tdx: root self-signature invalid")
	}
	if !ecdsa.VerifyASN1(rootKey, ch.PCK.digest(), ch.PCK.Sig) {
		return errors.New("tdx: PCK not signed by root")
	}
	return nil
}

// Vendor simulates Intel's provisioning certification service.
type Vendor struct {
	root    Cert
	rootKey *ecdsa.PrivateKey
}

// NewVendor generates the Intel root CA role.
func NewVendor() (*Vendor, error) {
	key, err := ecdsa.GenerateKey(elliptic.P384(), rand.Reader)
	if err != nil {
		return nil, err
	}
	pub, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, err
	}
	root := Cert{Subject: "Intel-TDX-Root", PubKey: pub}
	sig, err := ecdsa.SignASN1(rand.Reader, key, root.digest())
	if err != nil {
		return nil, err
	}
	root.Sig = sig
	return &Vendor{root: root, rootKey: key}, nil
}

// RootCert returns the trusted root distributed by Intel's PCS.
func (v *Vendor) RootCert() Cert { return v.root }

// Platform is one TDX-capable host with its PCK.
type Platform struct {
	Name   string
	chain  Chain
	pckKey *ecdsa.PrivateKey

	mu     sync.Mutex
	nextID int
}

// NewPlatform manufactures a TDX platform endorsed by the vendor.
func NewPlatform(name string, v *Vendor) (*Platform, error) {
	pckKey, err := ecdsa.GenerateKey(elliptic.P384(), rand.Reader)
	if err != nil {
		return nil, err
	}
	pub, err := x509.MarshalPKIXPublicKey(&pckKey.PublicKey)
	if err != nil {
		return nil, err
	}
	pck := Cert{Subject: "PCK/" + name, PubKey: pub}
	sig, err := ecdsa.SignASN1(rand.Reader, v.rootKey, pck.digest())
	if err != nil {
		return nil, err
	}
	pck.Sig = sig
	return &Platform{
		Name:   name,
		chain:  Chain{Root: v.root, PCK: pck},
		pckKey: pckKey,
	}, nil
}

// TDState is the trust-domain lifecycle.
type TDState int

// Trust-domain states. Secrets are injected before finalization,
// mirroring the TD build flow.
const (
	TDBuilding TDState = iota
	TDRunning
	TDTorndown
)

// Lifecycle errors.
var (
	ErrBadState = errors.New("tdx: operation invalid in current TD state")
	ErrNoSecret = errors.New("tdx: no secret provisioned")
)

// TD is one trust domain.
type TD struct {
	ID       int
	platform *Platform

	mu     sync.Mutex
	state  TDState
	mrtd   Measurement
	secret []byte
}

// CreateTD starts building a TD from the given image; it stays in the
// building state until finalized.
func (p *Platform) CreateTD(image []byte) *TD {
	p.mu.Lock()
	p.nextID++
	id := p.nextID
	p.mu.Unlock()
	return &TD{ID: id, platform: p, state: TDBuilding, mrtd: MeasureTD(image)}
}

// ProvisionSecret stores a secret in the TD while it is still building.
func (td *TD) ProvisionSecret(secret []byte) error {
	td.mu.Lock()
	defer td.mu.Unlock()
	if td.state != TDBuilding {
		return fmt.Errorf("%w: provision in state %d", ErrBadState, td.state)
	}
	td.secret = append([]byte(nil), secret...)
	return nil
}

// Finalize completes the build; the TD starts running.
func (td *TD) Finalize() error {
	td.mu.Lock()
	defer td.mu.Unlock()
	if td.state != TDBuilding {
		return fmt.Errorf("%w: finalize in state %d", ErrBadState, td.state)
	}
	td.state = TDRunning
	return nil
}

// GuestReadSecret returns the provisioned secret to code inside the TD.
func (td *TD) GuestReadSecret() ([]byte, error) {
	td.mu.Lock()
	defer td.mu.Unlock()
	if td.state != TDRunning {
		return nil, fmt.Errorf("%w: read in state %d", ErrBadState, td.state)
	}
	if td.secret == nil {
		return nil, ErrNoSecret
	}
	return append([]byte(nil), td.secret...), nil
}

// State returns the TD lifecycle state.
func (td *TD) State() TDState {
	td.mu.Lock()
	defer td.mu.Unlock()
	return td.state
}

// Quote is TDX attestation evidence: the TD report signed by the PCK.
type Quote struct {
	PlatformName string
	TDID         int
	MRTD         Measurement
	TCBLevel     uint32
	ReportData   []byte
	Chain        Chain
	Signature    []byte
}

func (q *Quote) digest() []byte {
	h := sha512.New384()
	h.Write([]byte(q.PlatformName))
	h.Write([]byte{0})
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], uint64(q.TDID))
	h.Write(id[:])
	h.Write(q.MRTD[:])
	var tcb [4]byte
	binary.BigEndian.PutUint32(tcb[:], q.TCBLevel)
	h.Write(tcb[:])
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(q.ReportData)))
	h.Write(n[:])
	h.Write(q.ReportData)
	h.Write(q.Chain.PCK.digest())
	return h.Sum(nil)
}

// QuoteTD produces a signed quote binding reportData (the verifier nonce).
func (p *Platform) QuoteTD(td *TD, tcbLevel uint32, reportData []byte) (*Quote, error) {
	td.mu.Lock()
	state, mrtd := td.state, td.mrtd
	td.mu.Unlock()
	if state == TDTorndown {
		return nil, ErrBadState
	}
	q := &Quote{
		PlatformName: p.Name,
		TDID:         td.ID,
		MRTD:         mrtd,
		TCBLevel:     tcbLevel,
		ReportData:   append([]byte(nil), reportData...),
		Chain:        p.chain,
	}
	sig, err := ecdsa.SignASN1(rand.Reader, p.pckKey, q.digest())
	if err != nil {
		return nil, err
	}
	q.Signature = sig
	return q, nil
}

// Verification errors.
var (
	ErrBadSignature   = errors.New("tdx: quote signature invalid")
	ErrBadMeasurement = errors.New("tdx: MRTD mismatch")
	ErrBadNonce       = errors.New("tdx: report data does not match nonce")
	ErrTCBOutOfDate   = errors.New("tdx: TCB level below policy minimum")
)

// VerifyQuote checks the quote end to end: chain rooted in the trusted
// Intel CA, PCK signature, MRTD, nonce binding, and a minimum TCB level.
func VerifyQuote(q *Quote, trustedRoot Cert, wantMRTD Measurement, wantNonce []byte, minTCB uint32) error {
	if q == nil {
		return errors.New("tdx: nil quote")
	}
	if err := q.Chain.Verify(trustedRoot); err != nil {
		return err
	}
	pckKey, err := q.Chain.PCK.publicKey()
	if err != nil {
		return err
	}
	if !ecdsa.VerifyASN1(pckKey, q.digest(), q.Signature) {
		return ErrBadSignature
	}
	if q.MRTD != wantMRTD {
		return ErrBadMeasurement
	}
	if string(q.ReportData) != string(wantNonce) {
		return ErrBadNonce
	}
	if q.TCBLevel < minTCB {
		return fmt.Errorf("%w: have %d, want >= %d", ErrTCBOutOfDate, q.TCBLevel, minTCB)
	}
	return nil
}
