package fl

import (
	"errors"
	"fmt"
	"io"

	"deta/internal/dataset"
	"deta/internal/nn"
	"deta/internal/tensor"
)

// ConfusionMatrix counts predictions per (true class, predicted class) —
// useful for the non-IID experiments, where skewed shards show up as
// class-level accuracy imbalance long before aggregate accuracy moves.
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int // [true][predicted]
}

// EvaluateConfusion runs the model over a test set and returns the
// confusion matrix.
func EvaluateConfusion(build func() *nn.Network, params tensor.Vector, test *dataset.Dataset) (*ConfusionMatrix, error) {
	if test.Len() == 0 {
		return nil, errors.New("fl: empty test set")
	}
	net := build()
	if err := net.SetParams(params); err != nil {
		return nil, err
	}
	classes := test.Spec.Classes
	cm := &ConfusionMatrix{Classes: classes, Counts: make([][]int, classes)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, classes)
	}
	for i := 0; i < test.Len(); i++ {
		s := test.At(i)
		pred := net.Predict(s.X)
		if s.Label < 0 || s.Label >= classes || pred < 0 || pred >= classes {
			return nil, fmt.Errorf("fl: label %d or prediction %d out of range", s.Label, pred)
		}
		cm.Counts[s.Label][pred]++
	}
	return cm, nil
}

// Accuracy returns the overall fraction of correct predictions.
func (cm *ConfusionMatrix) Accuracy() float64 {
	correct, total := 0, 0
	for c := range cm.Counts {
		for p, n := range cm.Counts[c] {
			total += n
			if p == c {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns recall (correct / support) per class; classes
// with no test samples report -1.
func (cm *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, cm.Classes)
	for c := range cm.Counts {
		support := 0
		for _, n := range cm.Counts[c] {
			support += n
		}
		if support == 0 {
			out[c] = -1
			continue
		}
		out[c] = float64(cm.Counts[c][c]) / float64(support)
	}
	return out
}

// Render writes the matrix as aligned text with per-class recall.
func (cm *ConfusionMatrix) Render(w io.Writer) {
	fmt.Fprint(w, "true\\pred")
	for p := 0; p < cm.Classes; p++ {
		fmt.Fprintf(w, " %4d", p)
	}
	fmt.Fprintln(w, "  recall")
	recall := cm.PerClassRecall()
	for c := 0; c < cm.Classes; c++ {
		fmt.Fprintf(w, "%9d", c)
		for p := 0; p < cm.Classes; p++ {
			fmt.Fprintf(w, " %4d", cm.Counts[c][p])
		}
		if recall[c] < 0 {
			fmt.Fprintln(w, "     n/a")
		} else {
			fmt.Fprintf(w, "  %6.2f\n", recall[c])
		}
	}
}
