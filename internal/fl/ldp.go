package fl

import (
	"errors"
	"fmt"
	"math"

	"deta/internal/rng"
	"deta/internal/tensor"
)

// Local differential privacy for model updates (paper §8.1: "DETA can be
// seamlessly integrated with LDP as the LDP's perturbations only apply to
// model updates on the parties' devices"). Each party clips its update to
// a bounded L2 norm and adds Gaussian noise calibrated by the
// (epsilon, delta) budget before the DeTA transform — so the perturbation
// composes with partitioning and shuffling by construction.

// LDPConfig parameterizes the Gaussian mechanism.
type LDPConfig struct {
	// Epsilon and Delta are the per-round privacy budget.
	Epsilon float64
	Delta   float64
	// ClipNorm bounds each update's L2 norm (the mechanism's sensitivity).
	ClipNorm float64
	// Seed makes the noise deterministic for reproducible experiments;
	// each (party, round) pair derives an independent stream.
	Seed []byte
}

// Validate reports configuration errors.
func (c LDPConfig) Validate() error {
	if c.Epsilon <= 0 {
		return errors.New("fl: LDP epsilon must be positive")
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return errors.New("fl: LDP delta must be in (0,1)")
	}
	if c.ClipNorm <= 0 {
		return errors.New("fl: LDP clip norm must be positive")
	}
	return nil
}

// NoiseSigma returns the Gaussian mechanism's standard deviation
// sigma = clip * sqrt(2 ln(1.25/delta)) / epsilon.
func (c LDPConfig) NoiseSigma() float64 {
	return c.ClipNorm * math.Sqrt(2*math.Log(1.25/c.Delta)) / c.Epsilon
}

// Perturb clips the update to ClipNorm and adds per-coordinate Gaussian
// noise. The input is not modified.
func (c LDPConfig) Perturb(update tensor.Vector, partyID string, round int) (tensor.Vector, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := update.Clone()
	if n := tensor.Norm(out); n > c.ClipNorm && n > 0 {
		tensor.ScaleInPlace(c.ClipNorm/n, out)
	}
	sigma := c.NoiseSigma()
	stream := rng.NewStream(rng.DeriveSeed(c.Seed, []byte(partyID)), fmt.Sprintf("ldp-round-%d", round))
	for i := range out {
		out[i] += sigma * stream.NormFloat64()
	}
	return out, nil
}
