package fl

import (
	"math"
	"testing"

	"deta/internal/agg"
	"deta/internal/dataset"
	"deta/internal/tensor"
)

func validLDP() LDPConfig {
	return LDPConfig{Epsilon: 2, Delta: 1e-5, ClipNorm: 1, Seed: []byte("ldp")}
}

func TestLDPValidate(t *testing.T) {
	bad := []LDPConfig{
		{Epsilon: 0, Delta: 1e-5, ClipNorm: 1},
		{Epsilon: 1, Delta: 0, ClipNorm: 1},
		{Epsilon: 1, Delta: 1, ClipNorm: 1},
		{Epsilon: 1, Delta: 1e-5, ClipNorm: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := validLDP().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestLDPNoiseSigma(t *testing.T) {
	c := validLDP()
	want := c.ClipNorm * math.Sqrt(2*math.Log(1.25/c.Delta)) / c.Epsilon
	if got := c.NoiseSigma(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", got, want)
	}
	// Larger epsilon => less noise.
	loose := c
	loose.Epsilon = 10
	if loose.NoiseSigma() >= c.NoiseSigma() {
		t.Fatal("sigma not decreasing in epsilon")
	}
}

func TestLDPClipping(t *testing.T) {
	c := validLDP()
	c.Epsilon = 1e9 // essentially no noise: isolate the clipping behaviour
	big := tensor.Vector{10, 0, 0}
	out, err := c.Perturb(big, "P1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := tensor.Norm(out); math.Abs(n-1) > 0.01 {
		t.Fatalf("clipped norm %v, want ~1", n)
	}
	// Inside the clip ball the update passes through (up to tiny noise).
	small := tensor.Vector{0.1, 0.1, 0}
	out, err = c.Perturb(small, "P1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.1) > 0.01 {
		t.Fatalf("unclipped value distorted: %v", out)
	}
	// Input must not be mutated.
	if big[0] != 10 {
		t.Fatal("Perturb mutated its input")
	}
}

func TestLDPNoiseStatistics(t *testing.T) {
	c := validLDP()
	n := 20000
	zero := make(tensor.Vector, n)
	out, err := c.Perturb(zero, "P1", 1)
	if err != nil {
		t.Fatal(err)
	}
	mean := tensor.Mean(out)
	std := math.Sqrt(tensor.Variance(out))
	sigma := c.NoiseSigma()
	if math.Abs(mean) > 0.05*sigma {
		t.Errorf("noise mean %v, want ~0 (sigma %v)", mean, sigma)
	}
	if math.Abs(std-sigma)/sigma > 0.05 {
		t.Errorf("noise std %v, want ~%v", std, sigma)
	}
}

func TestLDPIndependentAcrossPartiesAndRounds(t *testing.T) {
	c := validLDP()
	zero := make(tensor.Vector, 32)
	a, _ := c.Perturb(zero, "P1", 1)
	b, _ := c.Perturb(zero, "P2", 1)
	r2, _ := c.Perturb(zero, "P1", 2)
	same := func(x, y tensor.Vector) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, b) {
		t.Fatal("two parties drew identical noise")
	}
	if same(a, r2) {
		t.Fatal("two rounds drew identical noise")
	}
	aAgain, _ := c.Perturb(zero, "P1", 1)
	if !same(a, aAgain) {
		t.Fatal("noise not deterministic for fixed (party, round, seed)")
	}
}

// LDP composes with FL training: the session still converges (noise is
// bounded) and updates leaving the party are perturbed.
func TestLDPSessionRuns(t *testing.T) {
	s := tinySession(t, 2, FedAvg, agg.IterativeAverage{})
	// A very loose budget: per-coordinate noise small relative to typical
	// deltas, so training stays healthy while the mechanism runs.
	ldp := LDPConfig{Epsilon: 1e4, Delta: 1e-5, ClipNorm: 10, Seed: []byte("ldp-sess")}
	s.Cfg.LDP = &ldp
	for _, p := range s.Parties {
		p.cfg.LDP = &ldp
	}
	hist, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != s.Cfg.Rounds {
		t.Fatalf("rounds = %d", len(hist.Rounds))
	}
	final := hist.Final().TrainLoss
	if math.IsNaN(final) || math.IsInf(final, 0) {
		t.Fatalf("training produced non-finite loss under LDP: %v", final)
	}
	if final >= hist.Rounds[0].TrainLoss {
		t.Errorf("training made no progress under loose LDP: %v -> %v",
			hist.Rounds[0].TrainLoss, final)
	}
}

func TestLDPPerturbsUploadedUpdate(t *testing.T) {
	shard := dataset.Make(tinySpec, 8, []byte("ldp-shard"))
	cfgPlain := Config{Mode: FedAvg, Rounds: 1, LocalEpochs: 1, BatchSize: 4, LR: 0.05, Seed: []byte("s")}
	cfgLDP := cfgPlain
	ldp := validLDP()
	cfgLDP.LDP = &ldp

	global := tinyBuild()
	global.Init([]byte("ldp-global"))
	g := global.Params()

	plain := NewParty("P1", tinyBuild, shard, cfgPlain)
	noisy := NewParty("P1", tinyBuild, shard, cfgLDP)
	u1, _, err := plain.LocalUpdate(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	u2, _, err := noisy.LocalUpdate(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range u1 {
		if u1[i] != u2[i] {
			diff++
		}
	}
	if diff < len(u1)/2 {
		t.Fatalf("LDP left %d/%d coordinates unperturbed", len(u1)-diff, len(u1))
	}
}

func TestLDPInvalidConfigSurfacesFromLocalUpdate(t *testing.T) {
	shard := dataset.Make(tinySpec, 8, []byte("ldp-shard"))
	cfg := Config{Mode: FedAvg, Rounds: 1, LocalEpochs: 1, BatchSize: 4, LR: 0.05, Seed: []byte("s")}
	cfg.LDP = &LDPConfig{} // invalid
	p := NewParty("P1", tinyBuild, shard, cfg)
	global := tinyBuild()
	global.Init([]byte("x"))
	if _, _, err := p.LocalUpdate(global.Params(), 1); err == nil {
		t.Fatal("invalid LDP config accepted")
	}
}
