package fl

import (
	"strings"
	"testing"

	"deta/internal/agg"
	"deta/internal/dataset"
	"deta/internal/nn"
	"deta/internal/tensor"
)

var tinySpec = dataset.Spec{Name: "fl-tiny", C: 1, H: 12, W: 12, Classes: 4}

func tinyBuild() *nn.Network { return nn.ConvNet8(1, 12, 12, 4) }

func tinySession(t *testing.T, parties int, mode Mode, alg agg.Algorithm) *Session {
	t.Helper()
	train, test := dataset.TrainTest(tinySpec, 32*parties, 32, []byte("fl-data"))
	shards := dataset.SplitIID(train, parties, []byte("fl-split"))
	cfg := Config{
		Mode: mode, Rounds: 3, LocalEpochs: 2, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, Seed: []byte("fl-cfg"),
	}
	ps := make([]*Party, parties)
	for i := range ps {
		ps[i] = NewParty(partyID(i), tinyBuild, shards[i], cfg)
	}
	return &Session{
		Cfg: cfg, Algorithm: alg, Build: tinyBuild,
		Parties: ps, Test: test, InitSeed: []byte("fl-init"),
	}
}

func partyID(i int) string { return "P" + string(rune('1'+i)) }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Rounds: 1, BatchSize: 8, LR: 0.1},   // FedAvg needs epochs
		{Rounds: 1, LocalEpochs: 1, LR: 0.1}, // no batch size
		{Rounds: 1, LocalEpochs: 1, BatchSize: 8},          // no LR
		{Rounds: 0, LocalEpochs: 1, BatchSize: 8, LR: 0.1}, // no rounds
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	ok := Config{Mode: FedSGD, Rounds: 1, BatchSize: 8, LR: 0.1}
	if err := ok.Validate(); err != nil {
		t.Errorf("FedSGD without epochs rejected: %v", err)
	}
}

func TestFedAvgTrainingConverges(t *testing.T) {
	s := tinySession(t, 4, FedAvg, agg.IterativeAverage{})
	s.Cfg.Rounds = 6
	for _, p := range s.Parties {
		p.cfg.Rounds = 6
	}
	hist, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != 6 {
		t.Fatalf("recorded %d rounds", len(hist.Rounds))
	}
	first, last := hist.Rounds[0], hist.Final()
	if last.TrainLoss >= first.TrainLoss {
		t.Errorf("train loss did not decrease: %v -> %v", first.TrainLoss, last.TrainLoss)
	}
	if last.Accuracy < 0.5 {
		t.Errorf("final accuracy %.2f too low", last.Accuracy)
	}
	// Latency must be cumulative (non-decreasing).
	for i := 1; i < len(hist.Rounds); i++ {
		if hist.Rounds[i].Cumulative < hist.Rounds[i-1].Cumulative {
			t.Error("cumulative latency decreased")
		}
	}
}

func TestFedSGDRuns(t *testing.T) {
	s := tinySession(t, 2, FedSGD, agg.IterativeAverage{})
	s.Cfg.Mode = FedSGD
	s.Cfg.Rounds = 10
	s.Cfg.LR = 0.1
	for _, p := range s.Parties {
		p.cfg.Mode = FedSGD
		p.cfg.LR = 0.1
	}
	hist, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != 10 {
		t.Fatalf("rounds = %d", len(hist.Rounds))
	}
	if hist.Final().TrainLoss >= hist.Rounds[0].TrainLoss {
		t.Errorf("FedSGD loss did not decrease: %v -> %v",
			hist.Rounds[0].TrainLoss, hist.Final().TrainLoss)
	}
}

func TestCoordinateMedianSession(t *testing.T) {
	s := tinySession(t, 4, FedAvg, agg.CoordinateMedian{})
	hist, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.Final().Accuracy == 0 && hist.Final().TestLoss == 0 {
		t.Error("no evaluation recorded")
	}
}

func TestSessionNoParties(t *testing.T) {
	s := &Session{
		Cfg:       Config{Mode: FedAvg, Rounds: 1, LocalEpochs: 1, BatchSize: 4, LR: 0.1},
		Algorithm: agg.IterativeAverage{},
		Build:     tinyBuild,
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "no parties") {
		t.Fatalf("err = %v", err)
	}
}

func TestSessionInvalidConfig(t *testing.T) {
	s := tinySession(t, 2, FedAvg, agg.IterativeAverage{})
	s.Cfg.Rounds = 0
	if _, err := s.Run(); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEvaluate(t *testing.T) {
	test := dataset.Make(tinySpec, 16, []byte("eval"))
	net := tinyBuild()
	net.Init([]byte("eval-model"))
	loss, acc, err := Evaluate(tinyBuild, net.Params(), test)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Errorf("loss = %v", loss)
	}
	if acc < 0 || acc > 1 {
		t.Errorf("acc = %v", acc)
	}
	empty := &dataset.Dataset{Spec: tinySpec}
	if _, _, err := Evaluate(tinyBuild, net.Params(), empty); err == nil {
		t.Error("empty test set accepted")
	}
	if _, _, err := Evaluate(tinyBuild, net.Params()[:5], test); err == nil {
		t.Error("short params accepted")
	}
}

func TestHistoryFinalEmpty(t *testing.T) {
	h := &History{}
	if h.Final().Round != 0 {
		t.Error("empty history Final should be zero value")
	}
}

func TestLocalUpdateRejectsBadParams(t *testing.T) {
	shard := dataset.Make(tinySpec, 8, []byte("x"))
	cfg := Config{Mode: FedAvg, Rounds: 1, LocalEpochs: 1, BatchSize: 4, LR: 0.1, Seed: []byte("s")}
	p := NewParty("P1", tinyBuild, shard, cfg)
	if _, _, err := p.LocalUpdate(nil, 1); err == nil {
		t.Fatal("nil global params accepted")
	}
}

// Weighted FedAvg: a party with more data must pull the average toward
// its update proportionally.
func TestWeightedAggregationInSession(t *testing.T) {
	train, test := dataset.TrainTest(tinySpec, 48, 16, []byte("weighted"))
	// Unequal shards: P1 gets 32 samples, P2 gets 16.
	shardBig := &dataset.Dataset{Spec: tinySpec, Samples: train.Samples[:32]}
	shardSmall := &dataset.Dataset{Spec: tinySpec, Samples: train.Samples[32:]}
	cfg := Config{Mode: FedAvg, Rounds: 1, LocalEpochs: 1, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, Seed: []byte("w")}
	p1 := NewParty("P1", tinyBuild, shardBig, cfg)
	p2 := NewParty("P2", tinyBuild, shardSmall, cfg)
	s := &Session{
		Cfg: cfg, Algorithm: agg.IterativeAverage{}, Build: tinyBuild,
		Parties: []*Party{p1, p2}, Test: test, InitSeed: []byte("w-init"),
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Verify the fused model is the 2:1 weighted mean of the two updates.
	init := tinyBuild()
	init.Init([]byte("w-init"))
	g := init.Params()
	u1, _, err := NewParty("P1", tinyBuild, shardBig, cfg).LocalUpdate(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	u2, _, err := NewParty("P2", tinyBuild, shardSmall, cfg).LocalUpdate(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := agg.IterativeAverage{}.Aggregate([]tensor.Vector{u1, u2}, []float64{32, 16})
	if err != nil {
		t.Fatal(err)
	}
	unweighted, err := agg.IterativeAverage{}.Aggregate([]tensor.Vector{u1, u2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The weighted result must differ from the unweighted one (2:1 pull).
	same := true
	for i := range want {
		if want[i] != unweighted[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("weighted and unweighted aggregation coincide; weights ignored?")
	}
}

// Determinism: two identical sessions must produce identical histories
// (training is fully seeded).
func TestSessionDeterminism(t *testing.T) {
	h1, err := tinySession(t, 2, FedAvg, agg.IterativeAverage{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := tinySession(t, 2, FedAvg, agg.IterativeAverage{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Rounds {
		a, b := h1.Rounds[i], h2.Rounds[i]
		if a.TrainLoss != b.TrainLoss || a.TestLoss != b.TestLoss || a.Accuracy != b.Accuracy {
			t.Fatalf("round %d metrics differ: %+v vs %+v", i+1, a, b)
		}
	}
}
