package fl

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"deta/internal/dataset"
)

func TestEvaluateConfusion(t *testing.T) {
	test := dataset.Make(tinySpec, 16, []byte("cm"))
	net := tinyBuild()
	net.Init([]byte("cm-model"))
	cm, err := EvaluateConfusion(tinyBuild, net.Params(), test)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Classes != tinySpec.Classes {
		t.Fatalf("classes = %d", cm.Classes)
	}
	// Every test sample lands in exactly one cell.
	total := 0
	for _, row := range cm.Counts {
		for _, n := range row {
			total += n
		}
	}
	if total != 16 {
		t.Fatalf("matrix sums to %d, want 16", total)
	}
	// Accuracy must agree with Evaluate.
	_, acc, err := Evaluate(tinyBuild, net.Params(), test)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cm.Accuracy()-acc) > 1e-12 {
		t.Fatalf("confusion accuracy %v, Evaluate %v", cm.Accuracy(), acc)
	}
}

func TestConfusionEmptyTestSet(t *testing.T) {
	net := tinyBuild()
	net.Init([]byte("x"))
	empty := &dataset.Dataset{Spec: tinySpec}
	if _, err := EvaluateConfusion(tinyBuild, net.Params(), empty); err == nil {
		t.Fatal("empty test set accepted")
	}
}

func TestPerClassRecallAndRender(t *testing.T) {
	cm := &ConfusionMatrix{
		Classes: 3,
		Counts: [][]int{
			{2, 0, 0}, // class 0: perfect
			{1, 1, 0}, // class 1: half
			{0, 0, 0}, // class 2: no support
		},
	}
	r := cm.PerClassRecall()
	if r[0] != 1 || r[1] != 0.5 || r[2] != -1 {
		t.Fatalf("recall = %v", r)
	}
	if math.Abs(cm.Accuracy()-0.75) > 1e-12 {
		t.Fatalf("accuracy = %v", cm.Accuracy())
	}
	var buf bytes.Buffer
	cm.Render(&buf)
	out := buf.String()
	for _, want := range []string{"true\\pred", "recall", "n/a", "1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAccuracyEmptyMatrix(t *testing.T) {
	cm := &ConfusionMatrix{Classes: 2, Counts: [][]int{{0, 0}, {0, 0}}}
	if cm.Accuracy() != 0 {
		t.Fatal("empty matrix accuracy should be 0")
	}
}
