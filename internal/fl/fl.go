// Package fl is a from-scratch cross-silo federated-learning framework,
// playing the role of the paper's baseline FFL platform: N parties with
// private local data, a central aggregator running a pluggable aggregation
// algorithm, and a synchronous round loop that records per-round loss,
// accuracy, and cumulative latency — the quantities Figures 5-7 plot.
//
// DeTA (internal/core) reuses the Party type and the metrics machinery,
// replacing only the upload path (partition + shuffle to multiple
// aggregators) — exactly the relationship between DeTA and FFL in the
// paper's implementation (§5).
package fl

import (
	"errors"
	"fmt"
	"time"

	"deta/internal/agg"
	"deta/internal/dataset"
	"deta/internal/nn"
	"deta/internal/optim"
	"deta/internal/tensor"
)

// Mode selects the FL algorithm family.
type Mode int

// Training modes.
const (
	// FedAvg: parties run local epochs and upload model parameters; the
	// aggregator computes a weighted average.
	FedAvg Mode = iota
	// FedSGD: parties upload one batch's gradients; the aggregator
	// averages them and takes a global SGD step.
	FedSGD
)

// Config holds the hyperparameters shared by all parties and experiments.
type Config struct {
	Mode        Mode
	Rounds      int
	LocalEpochs int
	BatchSize   int
	LR          float64
	Momentum    float64
	Seed        []byte

	// LDP, when non-nil, applies local differential privacy to every
	// party's update before it leaves the device: the update delta is
	// clipped and Gaussian-perturbed (§8.1). Composes with DeTA's
	// transform, which runs afterwards.
	LDP *LDPConfig
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rounds <= 0 {
		return errors.New("fl: Rounds must be positive")
	}
	if c.Mode == FedAvg && c.LocalEpochs <= 0 {
		return errors.New("fl: LocalEpochs must be positive for FedAvg")
	}
	if c.BatchSize <= 0 {
		return errors.New("fl: BatchSize must be positive")
	}
	if c.LR <= 0 {
		return errors.New("fl: LR must be positive")
	}
	return nil
}

// Party is one training participant: its model replica, its private shard,
// and its optimizer state.
type Party struct {
	ID   string
	Net  *nn.Network
	Data *dataset.Dataset

	cfg Config
	opt *optim.SGD
}

// NewParty builds a participant. build must construct the (uninitialized)
// shared model architecture.
func NewParty(id string, build func() *nn.Network, data *dataset.Dataset, cfg Config) *Party {
	return &Party{
		ID:   id,
		Net:  build(),
		Data: data,
		cfg:  cfg,
		opt:  optim.NewMomentumSGD(cfg.LR, cfg.Momentum),
	}
}

// NumExamples returns the party's local dataset size (the FedAvg weight).
func (p *Party) NumExamples() int { return p.Data.Len() }

// LocalUpdate runs one round of local training from the given global
// parameters and returns the party's model update (new parameters for
// FedAvg; averaged batch gradients for FedSGD) plus the mean training loss
// observed.
func (p *Party) LocalUpdate(global tensor.Vector, round int) (tensor.Vector, float64, error) {
	if err := p.Net.SetParams(global); err != nil {
		return nil, 0, fmt.Errorf("fl: party %s: %w", p.ID, err)
	}
	var update tensor.Vector
	var loss float64
	var err error
	switch p.cfg.Mode {
	case FedSGD:
		update, loss, err = p.localGradient(round)
	default:
		update, loss, err = p.localEpochs(round)
	}
	if err != nil || p.cfg.LDP == nil {
		return update, loss, err
	}
	// LDP perturbs the *delta* a party reveals: the gradient itself for
	// FedSGD, or the parameter change relative to the global model for
	// FedAvg.
	if p.cfg.Mode == FedSGD {
		update, err = p.cfg.LDP.Perturb(update, p.ID, round)
		return update, loss, err
	}
	delta, err := tensor.Sub(update, global)
	if err != nil {
		return nil, 0, err
	}
	noisy, err := p.cfg.LDP.Perturb(delta, p.ID, round)
	if err != nil {
		return nil, 0, err
	}
	perturbed, err := tensor.Add(global, noisy)
	if err != nil {
		return nil, 0, err
	}
	return perturbed, loss, nil
}

func (p *Party) localEpochs(round int) (tensor.Vector, float64, error) {
	var lossSum float64
	var lossN int
	for epoch := 0; epoch < p.cfg.LocalEpochs; epoch++ {
		seed := append(append([]byte(nil), p.cfg.Seed...), []byte(fmt.Sprintf("/%s/r%d/e%d", p.ID, round, epoch))...)
		for _, batch := range dataset.Batches(p.Data.Len(), p.cfg.BatchSize, seed) {
			p.Net.ZeroGrads()
			for _, i := range batch {
				s := p.Data.At(i)
				out := p.Net.Forward(s.X, true)
				loss, g, err := nn.CrossEntropy(out, s.Label)
				if err != nil {
					return nil, 0, err
				}
				lossSum += loss
				lossN++
				p.Net.Backward(g)
			}
			params := p.Net.Params()
			grads := p.Net.Grads()
			tensor.ScaleInPlace(1/float64(len(batch)), grads)
			if err := p.opt.Step(params, grads); err != nil {
				return nil, 0, err
			}
			if err := p.Net.SetParams(params); err != nil {
				return nil, 0, err
			}
		}
	}
	if lossN == 0 {
		return nil, 0, fmt.Errorf("fl: party %s has no training data", p.ID)
	}
	return p.Net.Params(), lossSum / float64(lossN), nil
}

func (p *Party) localGradient(round int) (tensor.Vector, float64, error) {
	seed := append(append([]byte(nil), p.cfg.Seed...), []byte(fmt.Sprintf("/%s/r%d/sgd", p.ID, round))...)
	batches := dataset.Batches(p.Data.Len(), p.cfg.BatchSize, seed)
	if len(batches) == 0 {
		return nil, 0, fmt.Errorf("fl: party %s has no training data", p.ID)
	}
	batch := batches[0]
	p.Net.ZeroGrads()
	var lossSum float64
	for _, i := range batch {
		s := p.Data.At(i)
		out := p.Net.Forward(s.X, true)
		loss, g, err := nn.CrossEntropy(out, s.Label)
		if err != nil {
			return nil, 0, err
		}
		lossSum += loss
		p.Net.Backward(g)
	}
	grads := p.Net.Grads()
	tensor.ScaleInPlace(1/float64(len(batch)), grads)
	return grads, lossSum / float64(len(batch)), nil
}

// RoundMetrics records one training round's outcome, matching the series
// plotted in the paper's figures.
type RoundMetrics struct {
	Round      int
	TrainLoss  float64
	TestLoss   float64
	Accuracy   float64
	Cumulative time.Duration // accumulated wall-clock latency through this round
}

// History is the full training record.
type History struct {
	System string // "FFL" or "DETA"
	Rounds []RoundMetrics
}

// Final returns the last round's metrics.
func (h *History) Final() RoundMetrics {
	if len(h.Rounds) == 0 {
		return RoundMetrics{}
	}
	return h.Rounds[len(h.Rounds)-1]
}

// Evaluate computes mean loss and accuracy of a model with the given
// parameters over a test set.
func Evaluate(build func() *nn.Network, params tensor.Vector, test *dataset.Dataset) (loss, acc float64, err error) {
	net := build()
	if err := net.SetParams(params); err != nil {
		return 0, 0, err
	}
	var lossSum float64
	correct := 0
	for i := 0; i < test.Len(); i++ {
		s := test.At(i)
		out := net.Forward(s.X, false)
		l, _, err := nn.CrossEntropy(out, s.Label)
		if err != nil {
			return 0, 0, err
		}
		lossSum += l
		if argmax(out) == s.Label {
			correct++
		}
	}
	n := float64(test.Len())
	if n == 0 {
		return 0, 0, errors.New("fl: empty test set")
	}
	return lossSum / n, float64(correct) / n, nil
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Session is the baseline (FFL-style) training session with one central
// aggregator.
type Session struct {
	Cfg       Config
	Algorithm agg.Algorithm
	Build     func() *nn.Network
	Parties   []*Party
	Test      *dataset.Dataset

	// InitSeed seeds the shared initial model all parties start from.
	InitSeed []byte

	// FinalParams holds the global model parameters after Run completes.
	FinalParams tensor.Vector
}

// Run executes the configured number of rounds and returns the history.
func (s *Session) Run() (*History, error) {
	if err := s.Cfg.Validate(); err != nil {
		return nil, err
	}
	if len(s.Parties) == 0 {
		return nil, errors.New("fl: no parties")
	}
	global := s.initialParams()
	hist := &History{System: "FFL"}
	var cum time.Duration
	for round := 1; round <= s.Cfg.Rounds; round++ {
		start := time.Now()
		updates := make([]tensor.Vector, len(s.Parties))
		weights := make([]float64, len(s.Parties))
		var trainLoss float64
		for i, p := range s.Parties {
			u, loss, err := p.LocalUpdate(global, round)
			if err != nil {
				return nil, err
			}
			updates[i] = u
			weights[i] = float64(p.NumExamples())
			trainLoss += loss
		}
		trainLoss /= float64(len(s.Parties))

		fused, err := s.Algorithm.Aggregate(updates, weights)
		if err != nil {
			return nil, err
		}
		global = s.applyUpdate(global, fused)
		cum += time.Since(start)

		m := RoundMetrics{Round: round, TrainLoss: trainLoss, Cumulative: cum}
		if s.Test != nil {
			m.TestLoss, m.Accuracy, err = Evaluate(s.Build, global, s.Test)
			if err != nil {
				return nil, err
			}
		}
		hist.Rounds = append(hist.Rounds, m)
	}
	s.FinalParams = global
	return hist, nil
}

func (s *Session) initialParams() tensor.Vector {
	net := s.Build()
	net.Init(s.InitSeed)
	return net.Params()
}

// applyUpdate merges the aggregated update into the global model according
// to the mode: FedAvg replaces parameters; FedSGD takes a gradient step.
func (s *Session) applyUpdate(global, fused tensor.Vector) tensor.Vector {
	if s.Cfg.Mode == FedSGD {
		out := global.Clone()
		if err := tensor.AXPY(-s.Cfg.LR, out, fused); err != nil {
			panic(err) // lengths are validated upstream
		}
		return out
	}
	return fused
}
