package agg

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"deta/internal/parallel"
	"deta/internal/rng"
	"deta/internal/tensor"
)

// Serial reference implementations of every parallelized kernel in this
// package. The production code must produce bit-identical output (==, not
// approximate): chunked parallelism never splits a coordinate's computation,
// so no floating-point accumulation order changes.

func serialMedian(updates []tensor.Vector) tensor.Vector {
	n := len(updates[0])
	out := make(tensor.Vector, n)
	col := make([]float64, len(updates))
	for i := 0; i < n; i++ {
		for k, u := range updates {
			col[k] = u[i]
		}
		out[i] = median(col)
	}
	return out
}

func serialTrimmedMean(updates []tensor.Vector, trim int) tensor.Vector {
	n := len(updates[0])
	out := make(tensor.Vector, n)
	col := make([]float64, len(updates))
	for i := 0; i < n; i++ {
		for k, u := range updates {
			col[k] = u[i]
		}
		sort.Float64s(col)
		kept := col[trim : len(col)-trim]
		var s float64
		for _, v := range kept {
			s += v
		}
		out[i] = s / float64(len(kept))
	}
	return out
}

func serialKrumSelect(updates []tensor.Vector, f int) int {
	n := len(updates)
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for t := range updates[i] {
				diff := updates[i][t] - updates[j][t]
				s += diff * diff
			}
			d2[i][j], d2[j][i] = s, s
		}
	}
	best, bestScore := 0, 0.0
	for i := 0; i < n; i++ {
		ds := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ds = append(ds, d2[i][j])
			}
		}
		sort.Float64s(ds)
		var score float64
		for _, v := range ds[:n-f-2] {
			score += v
		}
		if i == 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// serialFLAME mirrors FLAMELite.Aggregate (with the corrected averaged
// even-n median) without any parallel.For calls.
func serialFLAME(updates []tensor.Vector) tensor.Vector {
	n := len(updates)
	if n < 3 {
		out, _ := IterativeAverage{}.Aggregate(updates, nil)
		return out
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, _ := tensor.CosineDistance(updates[i], updates[j])
			dist[i][j], dist[j][i] = d, d
		}
	}
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		ds := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ds = append(ds, dist[i][j])
			}
		}
		scores[i] = median(ds)
	}
	medScore := median(append([]float64(nil), scores...))
	devs := make([]float64, n)
	for i, s := range scores {
		devs[i] = math.Abs(s - medScore)
	}
	mad := median(devs)
	limit := medScore + 3*mad + 1e-12
	var admitted []tensor.Vector
	for i, s := range scores {
		if s <= limit {
			admitted = append(admitted, updates[i])
		}
	}
	if len(admitted) == 0 {
		admitted = updates
	}
	norms := make([]float64, len(admitted))
	for i, u := range admitted {
		norms[i] = tensor.Norm(u)
	}
	medNorm := median(append([]float64(nil), norms...))
	clipped := make([]tensor.Vector, len(admitted))
	for i, u := range admitted {
		if norms[i] > medNorm && norms[i] > 0 {
			clipped[i] = tensor.Scale(medNorm/norms[i], u)
		} else {
			clipped[i] = u
		}
	}
	out, _ := IterativeAverage{}.Aggregate(clipped, nil)
	return out
}

func randomUpdates(seed uint32, parties, n int) []tensor.Vector {
	s := rng.NewStream([]byte{byte(seed), byte(seed >> 8), byte(seed >> 16)}, "equiv")
	out := make([]tensor.Vector, parties)
	for p := range out {
		v := make(tensor.Vector, n)
		for i := range v {
			v[i] = s.NormFloat64()
		}
		out[p] = v
	}
	return out
}

func vecsExactlyEq(a, b tensor.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: for random sizes and worker counts (including the serial
// workers=1 case and oversubscription far beyond GOMAXPROCS), every
// aggregation kernel is bit-identical to its serial reference.
func TestParallelKernelsMatchSerial(t *testing.T) {
	f := func(seed uint32, workersRaw, partiesRaw uint8, nRaw uint16) bool {
		workers := int(workersRaw%12) + 1
		parties := int(partiesRaw%8) + 5 // 5..12: enough for Krum f=1
		n := int(nRaw%600) + 1
		updates := randomUpdates(seed, parties, n)

		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)

		got, err := (CoordinateMedian{}).Aggregate(updates, nil)
		if err != nil || !vecsExactlyEq(got, serialMedian(updates)) {
			t.Logf("median diverged (workers=%d parties=%d n=%d)", workers, parties, n)
			return false
		}
		got, err = (TrimmedMean{Trim: 1}).Aggregate(updates, nil)
		if err != nil || !vecsExactlyEq(got, serialTrimmedMean(updates, 1)) {
			t.Logf("trimmed mean diverged (workers=%d parties=%d n=%d)", workers, parties, n)
			return false
		}
		idx, err := (Krum{F: 1}).Select(updates)
		if err != nil || idx != serialKrumSelect(updates, 1) {
			t.Logf("krum selection diverged (workers=%d parties=%d n=%d)", workers, parties, n)
			return false
		}
		got, err = (FLAMELite{}).Aggregate(updates, nil)
		if err != nil || !vecsExactlyEq(got, serialFLAME(updates)) {
			t.Logf("flame diverged (workers=%d parties=%d n=%d)", workers, parties, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Grain boundaries: n right at, below, and far above the chunk grain, with
// n=1 and n=grain±1 edge cases.
func TestParallelKernelsGrainBoundaries(t *testing.T) {
	prev := parallel.SetWorkers(7)
	defer parallel.SetWorkers(prev)
	for _, n := range []int{1, 2, medianGrain - 1, medianGrain, medianGrain + 1, 4*medianGrain + 3} {
		updates := randomUpdates(uint32(n), 6, n)
		got, err := (CoordinateMedian{}).Aggregate(updates, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsExactlyEq(got, serialMedian(updates)) {
			t.Fatalf("n=%d: median diverged at grain boundary", n)
		}
		got, err = (TrimmedMean{Trim: 2}).Aggregate(updates, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !vecsExactlyEq(got, serialTrimmedMean(updates, 2)) {
			t.Fatalf("n=%d: trimmed mean diverged at grain boundary", n)
		}
	}
}

// Regression (satellite): MultiKrum ignores weights, like the other robust
// algorithms — even adversarially skewed weights must not change the output.
func TestMultiKrumIgnoresWeights(t *testing.T) {
	updates := []tensor.Vector{
		{1, 1}, {1.1, 0.9}, {0.9, 1.1}, {1.05, 0.95}, {100, 100},
	}
	unweighted, err := (MultiKrum{F: 1, M: 2}).Aggregate(updates, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A Byzantine party claiming enormous weight for the poisoned update.
	weighted, err := (MultiKrum{F: 1, M: 2}).Aggregate(updates, []float64{1, 1, 1, 1, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsExactlyEq(unweighted, weighted) {
		t.Fatalf("weights changed MultiKrum output: %v vs %v", unweighted, weighted)
	}
	// Even a mismatched weight count is ignored rather than rejected —
	// documented behavior, asserted so a change shows up here.
	short, err := (MultiKrum{F: 1, M: 2}).Aggregate(updates, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsExactlyEq(unweighted, short) {
		t.Fatal("mismatched weights changed MultiKrum output")
	}
}

// Regression (satellite): FLAMELite's overall median score must average the
// two middle values for even n (the median() helper), not take the upper
// middle. For this crafted 4-update set the upper-median rule admits the
// outlier update while the correct averaged median drops it.
func TestFLAMEEvenNMedianScore(t *testing.T) {
	updates := []tensor.Vector{
		{-1.5, -3.5, -0.5},
		{-2.5, -0.5, 1.5},
		{3, -3, 3},
		{3.5, 2, -1},
	}
	got, err := (FLAMELite{}).Aggregate(updates, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := serialFLAME(updates) // averaged even-n median semantics
	if !vecsExactlyEq(got, want) {
		t.Fatalf("FLAME even-n output %v, want %v", got, want)
	}
	// The old upper-median rule admitted all four updates; the corrected
	// band drops the last one. Distinguish the two by recomputing the
	// admitted-equals-all outcome and ensuring we did NOT produce it.
	norms := make([]float64, len(updates))
	for i, u := range updates {
		norms[i] = tensor.Norm(u)
	}
	medNorm := median(append([]float64(nil), norms...))
	clippedAll := make([]tensor.Vector, len(updates))
	for i, u := range updates {
		if norms[i] > medNorm && norms[i] > 0 {
			clippedAll[i] = tensor.Scale(medNorm/norms[i], u)
		} else {
			clippedAll[i] = u
		}
	}
	oldOut, _ := IterativeAverage{}.Aggregate(clippedAll, nil)
	if vecsExactlyEq(got, oldOut) {
		t.Fatalf("FLAME still admits the outlier (upper-median regression): %v", got)
	}
}
