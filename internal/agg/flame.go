package agg

import (
	"math"

	"deta/internal/parallel"
	"deta/internal/tensor"
)

// FLAMELite is a simplified FLAME (Nguyen et al.) defense: it clusters
// updates by pairwise cosine distance, keeps the majority cluster, clips
// the survivors to the median L2 norm, and averages. The full system uses
// HDBSCAN and adds DP noise; this reduction keeps the properties DeTA's
// analysis relies on — cosine distances and norms are invariant under
// permutation, so the defense composes with parameter shuffling, and under
// partitioning each aggregator clusters its fragment independently.
type FLAMELite struct{}

// Name implements Algorithm.
func (FLAMELite) Name() string { return "flame-lite" }

// Aggregate implements Algorithm. Weights are ignored (FLAME equal-weights
// admitted updates).
func (FLAMELite) Aggregate(updates []tensor.Vector, weights []float64) (tensor.Vector, error) {
	if _, err := validate(updates, nil); err != nil {
		return nil, err
	}
	n := len(updates)
	if n < 3 {
		return IterativeAverage{}.Aggregate(updates, nil)
	}
	// Pairwise cosine distances. As in Krum, the worker for row i owns all
	// (i,j) pairs with j > i, so every cell has exactly one writer. The
	// lengths were validated above, so CosineDistance cannot fail.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				d, err := tensor.CosineDistance(updates[i], updates[j])
				if err != nil {
					panic(err) // unreachable: lengths validated
				}
				dist[i][j], dist[j][i] = d, d
			}
		}
	})
	// An update's score is its median distance to the others; admit those
	// within the tolerance band above the overall median score. Outliers
	// (poisoned updates pointing elsewhere) score high and are dropped.
	scores := make([]float64, n)
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ds := make([]float64, 0, n-1)
			for j := 0; j < n; j++ {
				if j != i {
					ds = append(ds, dist[i][j])
				}
			}
			scores[i] = median(ds)
		}
	})
	medScore := median(append([]float64(nil), scores...))
	// Median absolute deviation for the tolerance band.
	devs := make([]float64, n)
	for i, s := range scores {
		devs[i] = math.Abs(s - medScore)
	}
	mad := median(devs)
	limit := medScore + 3*mad + 1e-12

	var admitted []tensor.Vector
	for i, s := range scores {
		if s <= limit {
			admitted = append(admitted, updates[i])
		}
	}
	if len(admitted) == 0 {
		admitted = updates
	}
	// Clip admitted updates to the median norm.
	norms := make([]float64, len(admitted))
	for i, u := range admitted {
		norms[i] = tensor.Norm(u)
	}
	medNorm := median(append([]float64(nil), norms...))
	clipped := make([]tensor.Vector, len(admitted))
	for i, u := range admitted {
		if norms[i] > medNorm && norms[i] > 0 {
			clipped[i] = tensor.Scale(medNorm/norms[i], u)
		} else {
			clipped[i] = u
		}
	}
	return IterativeAverage{}.Aggregate(clipped, nil)
}
