// Package agg implements the model-aggregation algorithms the paper
// evaluates (§3.1, §7.1): iterative (weighted) averaging — the core of
// FedAvg and FedSGD — coordinate median and trimmed mean (Byzantine-robust),
// Krum/Multi-Krum, a FLAME-style clustering defense, and Paillier-based
// fusion over additively homomorphic ciphertexts.
//
// Every algorithm here is coordinate-wise (or distance-based, which
// permutations preserve), which is precisely the structural property DeTA
// exploits: aggregating partitioned, shuffled fragments per aggregator and
// merging at the parties yields the same result as centralized aggregation.
package agg

import (
	"errors"
	"fmt"
	"sort"

	"deta/internal/parallel"
	"deta/internal/tensor"
)

// medianGrain is the minimum number of coordinates per parallel chunk for
// the per-coordinate sort kernels (median, trimmed mean). Each coordinate
// costs a k-element sort, so chunks amortize quickly.
const medianGrain = 128

// Algorithm combines one model update per party into an aggregated update.
// weights are per-party importance values (typically local dataset sizes);
// algorithms that ignore weights document so.
type Algorithm interface {
	Name() string
	Aggregate(updates []tensor.Vector, weights []float64) (tensor.Vector, error)
}

// ErrNoUpdates is returned when Aggregate receives no updates.
var ErrNoUpdates = errors.New("agg: no updates to aggregate")

func validate(updates []tensor.Vector, weights []float64) (int, error) {
	if len(updates) == 0 {
		return 0, ErrNoUpdates
	}
	if weights != nil && len(weights) != len(updates) {
		return 0, fmt.Errorf("agg: %d updates but %d weights", len(updates), len(weights))
	}
	n := len(updates[0])
	for i, u := range updates {
		if len(u) != n {
			return 0, fmt.Errorf("agg: update %d has length %d, want %d", i, len(u), n)
		}
	}
	return n, nil
}

func normWeights(k int, weights []float64) ([]float64, error) {
	if weights == nil {
		w := make([]float64, k)
		for i := range w {
			w[i] = 1 / float64(k)
		}
		return w, nil
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("agg: negative weight %v", w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, errors.New("agg: weights sum to zero")
	}
	out := make([]float64, k)
	for i, w := range weights {
		out[i] = w / sum
	}
	return out, nil
}

// IterativeAverage is the weighted-mean aggregation at the core of FedAvg
// and FedSGD: theta <- sum_i (n_i/n) theta_i.
type IterativeAverage struct{}

// Name implements Algorithm.
func (IterativeAverage) Name() string { return "iterative-averaging" }

// Aggregate implements Algorithm.
func (IterativeAverage) Aggregate(updates []tensor.Vector, weights []float64) (tensor.Vector, error) {
	if _, err := validate(updates, weights); err != nil {
		return nil, err
	}
	w, err := normWeights(len(updates), weights)
	if err != nil {
		return nil, err
	}
	return tensor.WeightedSum(updates, w)
}

// CoordinateMedian selects the per-coordinate median across parties,
// tolerating Byzantine parties (Yin et al.). Weights are ignored.
type CoordinateMedian struct{}

// Name implements Algorithm.
func (CoordinateMedian) Name() string { return "coordinate-median" }

// Aggregate implements Algorithm.
func (CoordinateMedian) Aggregate(updates []tensor.Vector, weights []float64) (tensor.Vector, error) {
	n, err := validate(updates, weights)
	if err != nil {
		return nil, err
	}
	out := make(tensor.Vector, n)
	parallel.For(n, medianGrain, func(lo, hi int) {
		col := make([]float64, len(updates))
		for i := lo; i < hi; i++ {
			for k, u := range updates {
				col[k] = u[i]
			}
			out[i] = median(col)
		}
	})
	return out, nil
}

// median computes the median of xs, mutating xs's order.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	m := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[m]
	}
	return (xs[m-1] + xs[m]) / 2
}

// TrimmedMean removes the Trim largest and Trim smallest values per
// coordinate and averages the rest. Weights are ignored.
type TrimmedMean struct {
	Trim int
}

// Name implements Algorithm.
func (t TrimmedMean) Name() string { return fmt.Sprintf("trimmed-mean-%d", t.Trim) }

// Aggregate implements Algorithm.
func (t TrimmedMean) Aggregate(updates []tensor.Vector, weights []float64) (tensor.Vector, error) {
	n, err := validate(updates, weights)
	if err != nil {
		return nil, err
	}
	if t.Trim < 0 || 2*t.Trim >= len(updates) {
		return nil, fmt.Errorf("agg: trim %d invalid for %d parties", t.Trim, len(updates))
	}
	out := make(tensor.Vector, n)
	parallel.For(n, medianGrain, func(lo, hi int) {
		col := make([]float64, len(updates))
		for i := lo; i < hi; i++ {
			for k, u := range updates {
				col[k] = u[i]
			}
			sort.Float64s(col)
			kept := col[t.Trim : len(col)-t.Trim]
			var s float64
			for _, v := range kept {
				s += v
			}
			out[i] = s / float64(len(kept))
		}
	})
	return out, nil
}

// Krum selects the single update whose summed squared distance to its
// n-f-2 nearest neighbours is smallest (Blanchard et al.), tolerating up
// to F Byzantine parties. Weights are ignored. Distances are preserved
// under permutation, so Krum composes with DeTA's shuffling; with
// partitioning enabled each aggregator runs Krum independently on its
// fragment (see the paper's FLAME discussion in §4.2).
type Krum struct {
	F int
}

// Name implements Algorithm.
func (k Krum) Name() string { return fmt.Sprintf("krum-f%d", k.F) }

// Aggregate implements Algorithm.
func (k Krum) Aggregate(updates []tensor.Vector, weights []float64) (tensor.Vector, error) {
	idx, err := k.Select(updates)
	if err != nil {
		return nil, err
	}
	return updates[idx].Clone(), nil
}

// Select returns the index of the Krum-chosen update.
func (k Krum) Select(updates []tensor.Vector) (int, error) {
	if _, err := validate(updates, nil); err != nil {
		return 0, err
	}
	n := len(updates)
	if k.F < 0 || n-k.F-2 < 1 {
		return 0, fmt.Errorf("agg: krum needs n-f-2 >= 1, have n=%d f=%d", n, k.F)
	}
	// Pairwise squared distances. Rows are independent: the worker for row
	// i owns every (i,j) pair with j > i, and each matrix cell is written by
	// exactly one worker, so the fill is race-free and bit-identical.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				var s float64
				for t := range updates[i] {
					diff := updates[i][t] - updates[j][t]
					s += diff * diff
				}
				d2[i][j], d2[j][i] = s, s
			}
		}
	})
	best, bestScore := 0, 0.0
	for i := 0; i < n; i++ {
		ds := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ds = append(ds, d2[i][j])
			}
		}
		sort.Float64s(ds)
		var score float64
		for _, v := range ds[:n-k.F-2] {
			score += v
		}
		if i == 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best, nil
}

// MultiKrum averages the M best updates under the Krum score. Weights are
// ignored (like Krum, CoordinateMedian, and TrimmedMean): the chosen
// updates are averaged equally, since Byzantine parties could inflate their
// own weights.
type MultiKrum struct {
	F int
	M int
}

// Name implements Algorithm.
func (m MultiKrum) Name() string { return fmt.Sprintf("multi-krum-f%d-m%d", m.F, m.M) }

// Aggregate implements Algorithm.
func (m MultiKrum) Aggregate(updates []tensor.Vector, weights []float64) (tensor.Vector, error) {
	if _, err := validate(updates, nil); err != nil {
		return nil, err
	}
	if m.M < 1 || m.M > len(updates) {
		return nil, fmt.Errorf("agg: multi-krum m=%d invalid for %d parties", m.M, len(updates))
	}
	remaining := make([]tensor.Vector, len(updates))
	copy(remaining, updates)
	var chosen []tensor.Vector
	for len(chosen) < m.M {
		if len(remaining)-m.F-2 < 1 {
			break // not enough parties left to score robustly; use what we have
		}
		idx, err := (Krum{F: m.F}).Select(remaining)
		if err != nil {
			return nil, err
		}
		chosen = append(chosen, remaining[idx])
		remaining = append(remaining[:idx], remaining[idx+1:]...)
	}
	if len(chosen) == 0 {
		chosen = updates
	}
	return IterativeAverage{}.Aggregate(chosen, nil)
}
