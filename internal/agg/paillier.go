package agg

import (
	"fmt"

	"deta/internal/paillier"
	"deta/internal/tensor"
)

// PaillierFusion aggregates under additively homomorphic encryption
// (Liu et al., Truex et al.): parties encrypt their updates with a shared
// public key from a trusted key broker, the aggregator sums ciphertexts
// without seeing plaintexts, and parties decrypt the fused result.
//
// Aggregate runs all three stages so it can stand in for the end-to-end
// cost in experiments — encryption/decryption dominating the latency is
// exactly the effect Figure 5f measures (and why DeTA's partitioning
// *speeds up* Paillier fusion: each aggregator's fragment is smaller and
// the per-party crypto parallelizes across partitions).
type PaillierFusion struct {
	Key *paillier.PrivateKey
}

// NewPaillierFusion creates the fusion algorithm with a fresh key pair of
// the given modulus size.
func NewPaillierFusion(bits int) (*PaillierFusion, error) {
	key, err := paillier.GenerateKey(bits)
	if err != nil {
		return nil, err
	}
	return &PaillierFusion{Key: key}, nil
}

// Name implements Algorithm.
func (*PaillierFusion) Name() string { return "paillier-fusion" }

// Aggregate implements Algorithm: encrypt each update scaled by its
// normalized weight, homomorphically sum, and decrypt the fused result.
func (p *PaillierFusion) Aggregate(updates []tensor.Vector, weights []float64) (tensor.Vector, error) {
	if _, err := validate(updates, weights); err != nil {
		return nil, err
	}
	w, err := normWeights(len(updates), weights)
	if err != nil {
		return nil, err
	}
	// Party side: encrypt weighted updates.
	encrypted := make([][]*paillier.Ciphertext, len(updates))
	for i, u := range updates {
		scaled := tensor.Scale(w[i], u)
		encrypted[i], err = p.Key.EncryptVector(scaled)
		if err != nil {
			return nil, fmt.Errorf("agg: paillier encrypt party %d: %w", i, err)
		}
	}
	// Aggregator side: ciphertext-only sum.
	fused, err := p.Key.AddVectors(encrypted...)
	if err != nil {
		return nil, err
	}
	// Party side: decrypt the fused update.
	out, err := p.Key.DecryptVector(fused)
	if err != nil {
		return nil, err
	}
	return tensor.Vector(out), nil
}

// EncryptUpdate is the party-side stage alone (for protocol-level use).
func (p *PaillierFusion) EncryptUpdate(u tensor.Vector) ([]*paillier.Ciphertext, error) {
	return p.Key.EncryptVector(u)
}

// FuseCiphertexts is the aggregator-side stage alone. It never touches
// plaintext.
func (p *PaillierFusion) FuseCiphertexts(cts ...[]*paillier.Ciphertext) ([]*paillier.Ciphertext, error) {
	return p.Key.PublicKey.AddVectors(cts...)
}

// DecryptAverage decrypts a fused ciphertext vector and divides by count.
func (p *PaillierFusion) DecryptAverage(ct []*paillier.Ciphertext, count int) (tensor.Vector, error) {
	if count <= 0 {
		return nil, fmt.Errorf("agg: count %d must be positive", count)
	}
	out, err := p.Key.DecryptVector(ct)
	if err != nil {
		return nil, err
	}
	return tensor.ScaleInPlace(1/float64(count), tensor.Vector(out)), nil
}
