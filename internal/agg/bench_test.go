package agg

import (
	"fmt"
	"testing"

	"deta/internal/parallel"
	"deta/internal/rng"
	"deta/internal/tensor"
)

func benchUpdates(parties, n int) []tensor.Vector {
	s := rng.NewStream([]byte("agg-bench"), "updates")
	out := make([]tensor.Vector, parties)
	for p := range out {
		v := make(tensor.Vector, n)
		for i := range v {
			v[i] = s.NormFloat64()
		}
		out[p] = v
	}
	return out
}

func benchAlgorithm(b *testing.B, alg Algorithm, parties, n int) {
	b.Helper()
	updates := benchUpdates(parties, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Aggregate(updates, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIterativeAverage(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchAlgorithm(b, IterativeAverage{}, 8, n)
		})
	}
}

func BenchmarkCoordinateMedian(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchAlgorithm(b, CoordinateMedian{}, 8, n)
		})
	}
}

func BenchmarkTrimmedMean(b *testing.B) {
	benchAlgorithm(b, TrimmedMean{Trim: 1}, 8, 1<<14)
}

func BenchmarkKrum(b *testing.B) {
	benchAlgorithm(b, Krum{F: 1}, 8, 1<<14)
}

func BenchmarkFLAMELite(b *testing.B) {
	benchAlgorithm(b, FLAMELite{}, 8, 1<<14)
}

func BenchmarkPaillierFusion(b *testing.B) {
	pf, err := NewPaillierFusion(256)
	if err != nil {
		b.Fatal(err)
	}
	// Small vector: each element costs a full Paillier encrypt + decrypt.
	benchAlgorithm(b, pf, 4, 64)
}

// benchWorkers runs an algorithm under explicit worker counts so the
// serial-vs-parallel kernel speedup is measurable on one binary (the
// numbers in EXPERIMENTS.md §compute-parallelism come from these).
func benchWorkers(b *testing.B, alg Algorithm, parties, n int) {
	b.Helper()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			benchAlgorithm(b, alg, parties, n)
		})
	}
}

func BenchmarkCoordinateMedianWorkers(b *testing.B) {
	benchWorkers(b, CoordinateMedian{}, 8, 1<<16)
}

func BenchmarkTrimmedMeanWorkers(b *testing.B) {
	benchWorkers(b, TrimmedMean{Trim: 1}, 8, 1<<16)
}

func BenchmarkKrumWorkers(b *testing.B) {
	benchWorkers(b, Krum{F: 1}, 16, 1<<14)
}

func BenchmarkFLAMELiteWorkers(b *testing.B) {
	benchWorkers(b, FLAMELite{}, 16, 1<<14)
}

func BenchmarkPaillierFusionWorkers(b *testing.B) {
	pf, err := NewPaillierFusion(256)
	if err != nil {
		b.Fatal(err)
	}
	benchWorkers(b, pf, 4, 64)
}
