package agg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"deta/internal/rng"
	"deta/internal/tensor"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func vecsAlmostEq(a, b tensor.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestIterativeAverageUnweighted(t *testing.T) {
	got, err := (IterativeAverage{}).Aggregate([]tensor.Vector{{1, 2}, {3, 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !vecsAlmostEq(got, tensor.Vector{2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestIterativeAverageWeighted(t *testing.T) {
	// Weight by data sizes 1:3 -> (1*1 + 3*5)/4 = 4.
	got, err := (IterativeAverage{}).Aggregate([]tensor.Vector{{1}, {5}}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got[0], 4) {
		t.Fatalf("got %v", got)
	}
}

func TestValidationErrors(t *testing.T) {
	algs := []Algorithm{
		IterativeAverage{}, CoordinateMedian{}, TrimmedMean{Trim: 0},
		Krum{F: 0}, MultiKrum{F: 0, M: 1}, FLAMELite{},
	}
	for _, a := range algs {
		if _, err := a.Aggregate(nil, nil); !errors.Is(err, ErrNoUpdates) {
			t.Errorf("%s: empty input: err = %v", a.Name(), err)
		}
		if _, err := a.Aggregate([]tensor.Vector{{1}, {1, 2}}, nil); err == nil {
			t.Errorf("%s: ragged input accepted", a.Name())
		}
	}
	if _, err := (IterativeAverage{}).Aggregate([]tensor.Vector{{1}}, []float64{1, 2}); err == nil {
		t.Error("weight-count mismatch accepted")
	}
	if _, err := (IterativeAverage{}).Aggregate([]tensor.Vector{{1}}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := (IterativeAverage{}).Aggregate([]tensor.Vector{{1}}, []float64{0}); err == nil {
		t.Error("zero weight sum accepted")
	}
}

func TestCoordinateMedianOddEven(t *testing.T) {
	got, err := (CoordinateMedian{}).Aggregate([]tensor.Vector{{1, 10}, {2, 20}, {100, -5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !vecsAlmostEq(got, tensor.Vector{2, 10}) {
		t.Fatalf("odd median got %v", got)
	}
	got, err = (CoordinateMedian{}).Aggregate([]tensor.Vector{{1}, {3}, {5}, {7}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got[0], 4) {
		t.Fatalf("even median got %v", got)
	}
}

func TestCoordinateMedianResistsOutlier(t *testing.T) {
	honest := []tensor.Vector{{1, 1}, {1.1, 0.9}, {0.9, 1.1}}
	poisoned := append(honest, tensor.Vector{1e9, -1e9})
	got, err := (CoordinateMedian{}).Aggregate(poisoned, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if math.Abs(v) > 10 {
			t.Fatalf("median influenced by outlier: %v", got)
		}
	}
}

func TestTrimmedMean(t *testing.T) {
	got, err := (TrimmedMean{Trim: 1}).Aggregate(
		[]tensor.Vector{{-100}, {1}, {2}, {3}, {100}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got[0], 2) {
		t.Fatalf("got %v", got)
	}
	if _, err := (TrimmedMean{Trim: 3}).Aggregate([]tensor.Vector{{1}, {2}, {3}}, nil); err == nil {
		t.Fatal("excessive trim accepted")
	}
	if _, err := (TrimmedMean{Trim: -1}).Aggregate([]tensor.Vector{{1}, {2}, {3}}, nil); err == nil {
		t.Fatal("negative trim accepted")
	}
}

func TestKrumPicksHonestUpdate(t *testing.T) {
	honest := []tensor.Vector{
		{1, 1, 1}, {1.1, 1, 0.9}, {0.9, 1.1, 1}, {1, 0.95, 1.05},
	}
	updates := append([]tensor.Vector{}, honest...)
	updates = append(updates, tensor.Vector{50, -50, 50}) // Byzantine
	idx, err := (Krum{F: 1}).Select(updates)
	if err != nil {
		t.Fatal(err)
	}
	if idx == len(updates)-1 {
		t.Fatal("Krum selected the Byzantine update")
	}
	out, err := (Krum{F: 1}).Aggregate(updates, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Norm(out) > 10 {
		t.Fatalf("Krum output contaminated: %v", out)
	}
}

func TestKrumParameterValidation(t *testing.T) {
	if _, err := (Krum{F: 2}).Select([]tensor.Vector{{1}, {2}, {3}}); err == nil {
		t.Fatal("krum with n-f-2 < 1 accepted")
	}
	if _, err := (Krum{F: -1}).Select([]tensor.Vector{{1}, {2}, {3}}); err == nil {
		t.Fatal("negative f accepted")
	}
}

func TestMultiKrum(t *testing.T) {
	updates := []tensor.Vector{
		{1, 1}, {1.1, 0.9}, {0.9, 1.1}, {1.05, 0.95}, {100, 100},
	}
	out, err := (MultiKrum{F: 1, M: 2}).Aggregate(updates, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.5 || math.Abs(out[1]-1) > 0.5 {
		t.Fatalf("multi-krum contaminated: %v", out)
	}
	if _, err := (MultiKrum{F: 0, M: 0}).Aggregate(updates, nil); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := (MultiKrum{F: 0, M: 9}).Aggregate(updates, nil); err == nil {
		t.Fatal("m>n accepted")
	}
}

func TestFLAMEDropsPoisonedUpdate(t *testing.T) {
	s := rng.NewStream([]byte("flame"), "updates")
	honest := make([]tensor.Vector, 6)
	for i := range honest {
		v := make(tensor.Vector, 20)
		for j := range v {
			v[j] = 1 + 0.05*s.NormFloat64()
		}
		honest[i] = v
	}
	poison := make(tensor.Vector, 20)
	for j := range poison {
		poison[j] = -5 + 0.05*s.NormFloat64() // opposite direction
	}
	updates := append(append([]tensor.Vector{}, honest...), poison)
	out, err := (FLAMELite{}).Aggregate(updates, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean := tensor.Mean(out)
	if mean < 0.5 {
		t.Fatalf("FLAME admitted poison: mean %v", mean)
	}
}

func TestFLAMESmallN(t *testing.T) {
	out, err := (FLAMELite{}).Aggregate([]tensor.Vector{{2}, {4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(out[0], 3) {
		t.Fatalf("got %v", out)
	}
}

func TestPaillierFusionMatchesAverage(t *testing.T) {
	pf, err := NewPaillierFusion(256)
	if err != nil {
		t.Fatal(err)
	}
	updates := []tensor.Vector{{0.5, -1.5, 2.25}, {1.5, 0.5, -0.25}}
	got, err := pf.Aggregate(updates, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := (IterativeAverage{}).Aggregate(updates, nil)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("paillier fusion %v, plaintext average %v", got, want)
		}
	}
}

func TestPaillierFusionStages(t *testing.T) {
	pf, err := NewPaillierFusion(256)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.Vector{1, 2}
	b := tensor.Vector{3, 4}
	ca, err := pf.EncryptUpdate(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := pf.EncryptUpdate(b)
	fused, err := pf.FuseCiphertexts(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := pf.DecryptAverage(fused, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg[0]-2) > 1e-6 || math.Abs(avg[1]-3) > 1e-6 {
		t.Fatalf("avg %v", avg)
	}
	if _, err := pf.DecryptAverage(fused, 0); err == nil {
		t.Fatal("count=0 accepted")
	}
}

// Property: averaging is permutation-equivariant — the foundation of DeTA.
// For random updates and a random permutation P, Agg(P(u_1..u_k)) ==
// P(Agg(u_1..u_k)) coordinate-wise.
func TestAggregationPermutationEquivariance(t *testing.T) {
	algs := []Algorithm{IterativeAverage{}, CoordinateMedian{}, TrimmedMean{Trim: 1}}
	f := func(seed uint32) bool {
		s := rng.NewStream([]byte{byte(seed), byte(seed >> 8)}, "equivariance")
		const n, k = 17, 5
		updates := make([]tensor.Vector, k)
		for i := range updates {
			v := make(tensor.Vector, n)
			for j := range v {
				v[j] = s.NormFloat64()
			}
			updates[i] = v
		}
		perm := s.Perm(n)
		permute := func(v tensor.Vector) tensor.Vector {
			out := make(tensor.Vector, n)
			for i, p := range perm {
				out[i] = v[p]
			}
			return out
		}
		for _, alg := range algs {
			plain, err := alg.Aggregate(updates, nil)
			if err != nil {
				return false
			}
			shuffled := make([]tensor.Vector, k)
			for i, u := range updates {
				shuffled[i] = permute(u)
			}
			aggShuffled, err := alg.Aggregate(shuffled, nil)
			if err != nil {
				return false
			}
			if !vecsAlmostEq(aggShuffled, permute(plain)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: partition-then-aggregate equals aggregate-then-partition for
// coordinate-wise algorithms — decentralized aggregation is exact.
func TestAggregationPartitionEquivariance(t *testing.T) {
	algs := []Algorithm{IterativeAverage{}, CoordinateMedian{}, TrimmedMean{Trim: 1}}
	s := rng.NewStream([]byte("partition-prop"), "x")
	const n, k = 24, 5
	updates := make([]tensor.Vector, k)
	for i := range updates {
		v := make(tensor.Vector, n)
		for j := range v {
			v[j] = s.NormFloat64()
		}
		updates[i] = v
	}
	cut := 10 // split coordinates [0,10) and [10,24)
	for _, alg := range algs {
		whole, err := alg.Aggregate(updates, nil)
		if err != nil {
			t.Fatal(err)
		}
		left := make([]tensor.Vector, k)
		right := make([]tensor.Vector, k)
		for i, u := range updates {
			left[i] = u[:cut]
			right[i] = u[cut:]
		}
		aggL, err := alg.Aggregate(left, nil)
		if err != nil {
			t.Fatal(err)
		}
		aggR, err := alg.Aggregate(right, nil)
		if err != nil {
			t.Fatal(err)
		}
		merged := append(aggL.Clone(), aggR...)
		if !vecsAlmostEq(merged, whole) {
			t.Fatalf("%s: partitioned aggregation differs from central", alg.Name())
		}
	}
}
