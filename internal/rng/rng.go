// Package rng implements the deterministic, keyed randomness DeTA depends
// on. Two properties matter:
//
//  1. Every party must derive the *same* permutation for a given
//     (permutation key, training-round identifier) pair, because aggregation
//     only works if all parties shuffle identically (paper §4.2).
//  2. An adversary without the permutation key must face the full key space:
//     the stream is a PRF (HMAC-SHA256 in counter mode), so permutations are
//     unpredictable without the key.
//
// The package provides the PRF stream, uniform integer sampling via
// rejection, Fisher-Yates permutation generation, and Gaussian sampling for
// model initialization and synthetic data.
package rng

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Stream is a deterministic pseudorandom byte/number stream keyed by an
// arbitrary-length secret and a domain-separation label. It is HMAC-SHA256
// run in counter mode: block i = HMAC(key, label || uint64(i)).
type Stream struct {
	key     []byte
	label   []byte
	counter uint64
	buf     [sha256.Size]byte
	used    int

	// Gaussian spare value (Box-Muller generates pairs).
	haveSpare bool
	spare     float64
}

// NewStream returns a stream keyed by key with the given domain-separation
// label. Distinct labels produce independent streams under the same key.
func NewStream(key []byte, label string) *Stream {
	s := &Stream{
		key:   append([]byte(nil), key...),
		label: []byte(label),
		used:  sha256.Size, // force refill on first use
	}
	return s
}

// DeriveSeed computes a 32-byte subkey from key and the concatenation of
// contexts — used, e.g., to mix a permutation key with a round identifier.
func DeriveSeed(key []byte, contexts ...[]byte) []byte {
	mac := hmac.New(sha256.New, key)
	for _, c := range contexts {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(c)))
		mac.Write(n[:])
		mac.Write(c)
	}
	return mac.Sum(nil)
}

// Fingerprint returns a short, non-invertible identifier for key
// material: the first 8 bytes of SHA-256("deta-fingerprint/v1" || key),
// hex-encoded. It is the ONLY form in which key bytes may appear in logs,
// error strings, or diagnostics (enforced by the keytaint analyzer):
// recovering the key means inverting SHA-256, and 64 bits is too short to
// substitute for the key anywhere it is actually used. Parties can still
// compare fingerprints to confirm they were issued the same key.
func Fingerprint(key []byte) string {
	h := sha256.New()
	h.Write([]byte("deta-fingerprint/v1"))
	h.Write(key)
	return hex.EncodeToString(h.Sum(nil)[:8])
}

func (s *Stream) refill() {
	mac := hmac.New(sha256.New, s.key)
	mac.Write(s.label)
	var ctr [8]byte
	binary.BigEndian.PutUint64(ctr[:], s.counter)
	mac.Write(ctr[:])
	sum := mac.Sum(nil)
	copy(s.buf[:], sum)
	s.counter++
	s.used = 0
}

// Bytes fills p with pseudorandom bytes.
func (s *Stream) Bytes(p []byte) {
	for len(p) > 0 {
		if s.used == len(s.buf) {
			s.refill()
		}
		n := copy(p, s.buf[s.used:])
		s.used += n
		p = p[n:]
	}
}

// Uint64 returns the next pseudorandom 64-bit value.
func (s *Stream) Uint64() uint64 {
	var b [8]byte
	s.Bytes(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uniformity is exact via rejection sampling.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	// Largest multiple of n that fits in a uint64; reject values above it.
	limit := math.MaxUint64 - math.MaxUint64%un
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % un)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	// 53 random mantissa bits.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal sample (Box-Muller).
func (s *Stream) NormFloat64() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	for {
		u1 := s.Float64()
		if u1 == 0 {
			continue
		}
		u2 := s.Float64()
		r := math.Sqrt(-2 * math.Log(u1))
		s.spare = r * math.Sin(2*math.Pi*u2)
		s.haveSpare = true
		return r * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a uniform pseudorandom permutation of [0, n) via
// Fisher-Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the order of n elements using swap, Fisher-Yates style.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// InversePerm returns the inverse of permutation p: out[p[i]] = i.
func InversePerm(p []int) []int {
	out := make([]int, len(p))
	for i, v := range p {
		out[v] = i
	}
	return out
}

// IsPerm reports whether p is a permutation of [0, len(p)).
func IsPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
