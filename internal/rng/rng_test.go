package rng

import (
	"bytes"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	key := []byte("permutation-key")
	a := NewStream(key, "round-7")
	b := NewStream(key, "round-7")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestStreamLabelSeparation(t *testing.T) {
	key := []byte("k")
	a := NewStream(key, "round-1")
	b := NewStream(key, "round-2")
	same := 0
	for i := 0; i < 32; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d/32 outputs collided across labels", same)
	}
}

func TestStreamKeySeparation(t *testing.T) {
	a := NewStream([]byte("key-a"), "x")
	b := NewStream([]byte("key-b"), "x")
	if a.Uint64() == b.Uint64() {
		t.Fatal("different keys produced identical first output")
	}
}

func TestDeriveSeed(t *testing.T) {
	k := []byte("master")
	s1 := DeriveSeed(k, []byte("round"), []byte("1"))
	s2 := DeriveSeed(k, []byte("round"), []byte("1"))
	if !bytes.Equal(s1, s2) {
		t.Fatal("DeriveSeed not deterministic")
	}
	s3 := DeriveSeed(k, []byte("round"), []byte("2"))
	if bytes.Equal(s1, s3) {
		t.Fatal("different contexts produced same seed")
	}
	// Length-prefixing must prevent concatenation ambiguity:
	// ("ab","c") != ("a","bc").
	x := DeriveSeed(k, []byte("ab"), []byte("c"))
	y := DeriveSeed(k, []byte("a"), []byte("bc"))
	if bytes.Equal(x, y) {
		t.Fatal("context concatenation ambiguity")
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream([]byte("k"), "intn")
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	s.Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := NewStream([]byte("k"), "uniform")
	const n, trials = 10, 20000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream([]byte("k"), "f64")
	var sum float64
	const trials = 10000
	for i := 0; i < trials; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewStream([]byte("k"), "gauss")
	const trials = 20000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream([]byte("k"), "perm")
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n || !IsPerm(p) {
			t.Fatalf("Perm(%d) = %v not a permutation", n, p)
		}
	}
}

func TestPermDeterminism(t *testing.T) {
	a := NewStream([]byte("shared"), "r1").Perm(50)
	b := NewStream([]byte("shared"), "r1").Perm(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same key+label produced different permutations")
		}
	}
	c := NewStream([]byte("shared"), "r2").Perm(50)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff < 25 {
		t.Fatalf("permutations for different rounds too similar: %d/50 positions differ", diff)
	}
}

func TestInversePermProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		s := NewStream([]byte{byte(seed), byte(seed >> 8), byte(seed >> 16), byte(seed >> 24)}, "prop")
		p := s.Perm(n)
		inv := InversePerm(p)
		if !IsPerm(inv) {
			return false
		}
		for i := 0; i < n; i++ {
			if inv[p[i]] != i || p[inv[i]] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIsPermRejects(t *testing.T) {
	bad := [][]int{
		{0, 0},
		{1, 2},
		{-1, 0},
		{0, 2},
	}
	for _, p := range bad {
		if IsPerm(p) {
			t.Errorf("IsPerm(%v) = true, want false", p)
		}
	}
	if !IsPerm(nil) {
		t.Error("IsPerm(nil) should be true (empty permutation)")
	}
}

func TestShuffleMatchesPermSemantics(t *testing.T) {
	s := NewStream([]byte("k"), "shuffle")
	vals := []int{10, 20, 30, 40, 50}
	orig := append([]int(nil), vals...)
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	// Multiset must be preserved.
	seen := map[int]int{}
	for _, v := range vals {
		seen[v]++
	}
	for _, v := range orig {
		if seen[v] != 1 {
			t.Fatalf("Shuffle lost/duplicated elements: %v", vals)
		}
	}
}

func TestBytesChunking(t *testing.T) {
	// Reading N bytes one at a time must equal reading N at once.
	one := NewStream([]byte("k"), "chunks")
	all := NewStream([]byte("k"), "chunks")
	buf := make([]byte, 100)
	all.Bytes(buf)
	for i := 0; i < 100; i++ {
		var b [1]byte
		one.Bytes(b[:])
		if b[0] != buf[i] {
			t.Fatalf("byte %d differs between chunked and bulk reads", i)
		}
	}
}

func TestFingerprintDeterministicAndShort(t *testing.T) {
	key := []byte("super-secret-permutation-key-material")
	fp := Fingerprint(key)
	if fp != Fingerprint(key) {
		t.Fatal("Fingerprint is not deterministic")
	}
	if len(fp) != 16 {
		t.Fatalf("Fingerprint is %d hex chars, want 16 (8 bytes)", len(fp))
	}
	for _, c := range fp {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("Fingerprint %q contains non-hex character %q", fp, c)
		}
	}
	if Fingerprint([]byte("other-key")) == fp {
		t.Fatal("distinct keys produced the same fingerprint")
	}
}

// TestFingerprintNeverContainsKeyBytes is the redaction regression test:
// formatted output built from a fingerprint must not contain the raw key
// in any of the encodings a log line could plausibly leak it in.
func TestFingerprintNeverContainsKeyBytes(t *testing.T) {
	key := make([]byte, 32)
	s := NewStream([]byte("fingerprint-leak-test"), "keygen")
	s.Bytes(key)

	logLine := fmt.Sprintf("party p1: permutation key received (fp %s)", Fingerprint(key))
	leaks := map[string]string{
		"raw":    string(key),
		"hex":    hex.EncodeToString(key),
		"base64": base64.StdEncoding.EncodeToString(key),
	}
	for enc, leaked := range leaks {
		if strings.Contains(logLine, leaked) {
			t.Errorf("formatted output contains the %s-encoded key", enc)
		}
	}
	// Even a prefix of the key's hex must not show up: the fingerprint is
	// a digest, not a truncation.
	if strings.Contains(logLine, hex.EncodeToString(key)[:8]) {
		t.Error("formatted output contains a hex prefix of the key")
	}
}
