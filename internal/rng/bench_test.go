package rng

import (
	"fmt"
	"testing"
)

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream([]byte("bench"), "u64")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkPerm(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewStream([]byte("bench"), "perm")
				s.Perm(n)
			}
		})
	}
}

func BenchmarkDeriveSeed(b *testing.B) {
	key := []byte("permutation-key-0123456789abcdef")
	round := []byte("round-identifier")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DeriveSeed(key, round, []byte("partition-1"))
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	s := NewStream([]byte("bench"), "gauss")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.NormFloat64()
	}
}
