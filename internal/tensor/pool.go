package tensor

// pool.go: sync.Pool-backed reusable Vector buffers for the hot
// data-plane paths (wire-codec decode, the fused transform gather). The
// pool trades a small bookkeeping cost for eliminating the per-message
// float64-slab allocation that dominated the gob-era upload path.

import "sync"

// vecPool holds *Vector so Get/Put avoid boxing a fresh slice header
// allocation on every cycle.
var vecPool sync.Pool

// GetVector returns a Vector of length n, reusing pooled backing storage
// when a large-enough buffer is available. The contents are NOT zeroed:
// callers must overwrite every element (the codec decode and the fused
// transform both do). Pass the buffer to PutVector when its lifetime
// ends; keeping it forever is also fine — the pool is best-effort.
//
//perf:hotpath
func GetVector(n int) Vector {
	if p, ok := vecPool.Get().(*Vector); ok {
		if cap(*p) >= n {
			return (*p)[:n]
		}
		// Too small for this request; drop it and let GC reclaim.
	}
	//lint:ignore allocfree pool-miss fallback: this make is the one allocation the pool exists to amortize
	return make(Vector, n)
}

// PutVector returns v's backing storage to the pool. The caller must not
// touch v afterwards: any retained alias would race with the next
// GetVector user. Nil and zero-capacity vectors are ignored.
//
//perf:hotpath
func PutVector(v Vector) {
	if cap(v) == 0 {
		return
	}
	v = v[:cap(v)]
	vecPool.Put(&v)
}
