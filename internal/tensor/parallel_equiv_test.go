package tensor

import (
	"testing"
	"testing/quick"

	"deta/internal/parallel"
)

func serialWeightedSum(vs []Vector, w []float64) Vector {
	n := len(vs[0])
	out := make(Vector, n)
	for k, v := range vs {
		for i := range v {
			out[i] += w[k] * v[i]
		}
	}
	return out
}

// Property: WeightedSum is bit-identical to the serial k-outer loop for any
// worker count, vector count, and length — including lengths straddling the
// chunk grain. Chunking splits coordinates, never a coordinate's
// accumulation, so no float ordering changes.
func TestWeightedSumParallelMatchesSerial(t *testing.T) {
	f := func(seed uint16, kRaw, workersRaw uint8, nRaw uint16) bool {
		k := int(kRaw%6) + 1
		workers := int(workersRaw%9) + 1
		n := int(nRaw%(3*parallel.DefaultGrain)) + 1
		vs := make([]Vector, k)
		w := make([]float64, k)
		x := float64(seed%97) * 0.001
		for p := range vs {
			w[p] = float64(p+1) * 0.33
			v := make(Vector, n)
			for i := range v {
				x = x*1.7 + 0.3 - float64(int(x)) // cheap deterministic wander
				v[i] = x - 0.5
			}
			vs[p] = v
		}
		want := serialWeightedSum(vs, w)
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		got, err := WeightedSum(vs, w)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWeightedSumGrainBoundaries(t *testing.T) {
	prev := parallel.SetWorkers(5)
	defer parallel.SetWorkers(prev)
	for _, n := range []int{1, parallel.DefaultGrain - 1, parallel.DefaultGrain,
		parallel.DefaultGrain + 1, 5*parallel.DefaultGrain + 7} {
		vs := []Vector{make(Vector, n), make(Vector, n), make(Vector, n)}
		for p, v := range vs {
			for i := range v {
				v[i] = float64((i*7+p*13)%101) * 0.125
			}
		}
		w := []float64{0.25, 0.5, 0.25}
		want := serialWeightedSum(vs, w)
		got, err := WeightedSum(vs, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: coordinate %d differs", n, i)
			}
		}
	}
}
