package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAddSub(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 5 || sum[1] != 7 || sum[2] != 9 {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if diff[0] != 3 || diff[1] != 3 || diff[2] != 3 {
		t.Fatalf("Sub = %v", diff)
	}
}

func TestLengthMismatch(t *testing.T) {
	a := Vector{1}
	b := Vector{1, 2}
	if _, err := Add(a, b); err == nil {
		t.Error("Add: want error on mismatched lengths")
	}
	if _, err := Sub(a, b); err == nil {
		t.Error("Sub: want error")
	}
	if _, err := Dot(a, b); err == nil {
		t.Error("Dot: want error")
	}
	if _, err := MSE(a, b); err == nil {
		t.Error("MSE: want error")
	}
	if _, err := CosineDistance(a, b); err == nil {
		t.Error("CosineDistance: want error")
	}
	if err := AddInPlace(a, b); err == nil {
		t.Error("AddInPlace: want error")
	}
	if err := AXPY(1, a, b); err == nil {
		t.Error("AXPY: want error")
	}
	if _, err := L2Distance(a, b); err == nil {
		t.Error("L2Distance: want error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Vector{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestScaleAndAXPY(t *testing.T) {
	v := Vector{1, -2, 3}
	s := Scale(2, v)
	if s[0] != 2 || s[1] != -4 || s[2] != 6 {
		t.Fatalf("Scale = %v", s)
	}
	if v[0] != 1 {
		t.Fatal("Scale mutated input")
	}
	a := Vector{1, 1, 1}
	if err := AXPY(3, a, v); err != nil {
		t.Fatal(err)
	}
	if a[0] != 4 || a[1] != -5 || a[2] != 10 {
		t.Fatalf("AXPY = %v", a)
	}
}

func TestNormDot(t *testing.T) {
	v := Vector{3, 4}
	if !almostEq(Norm(v), 5) {
		t.Fatalf("Norm = %v", Norm(v))
	}
	if !almostEq(NormSq(v), 25) {
		t.Fatalf("NormSq = %v", NormSq(v))
	}
	d, err := Dot(v, Vector{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 11) {
		t.Fatalf("Dot = %v", d)
	}
}

func TestCosineDistance(t *testing.T) {
	a := Vector{1, 0}
	cases := []struct {
		b    Vector
		want float64
	}{
		{Vector{1, 0}, 0},
		{Vector{0, 1}, 1},
		{Vector{-1, 0}, 2},
		{Vector{0, 0}, 1}, // zero vector defined as distance 1
	}
	for _, c := range cases {
		got, err := CosineDistance(a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want) {
			t.Errorf("CosineDistance(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE(Vector{0, 0}, Vector{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 12.5) {
		t.Fatalf("MSE = %v", got)
	}
	z, err := MSE(Vector{}, Vector{})
	if err != nil || z != 0 {
		t.Fatalf("MSE empty = %v, %v", z, err)
	}
}

func TestMeanVariance(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	if !almostEq(Mean(v), 2.5) {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if !almostEq(Variance(v), 1.25) {
		t.Fatalf("Variance = %v", Variance(v))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-vector stats should be 0")
	}
}

func TestClipClampSign(t *testing.T) {
	v := Vector{-5, -0.5, 0, 0.5, 5}
	Clip(v, 1)
	want := Vector{-1, -0.5, 0, 0.5, 1}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("Clip = %v", v)
		}
	}
	u := Vector{-1, 0.2, 2}
	ClampRange(u, 0, 1)
	if u[0] != 0 || u[1] != 0.2 || u[2] != 1 {
		t.Fatalf("ClampRange = %v", u)
	}
	s := Sign(Vector{-3, 0, 7})
	if s[0] != -1 || s[1] != 0 || s[2] != 1 {
		t.Fatalf("Sign = %v", s)
	}
}

func TestWeightedSum(t *testing.T) {
	vs := []Vector{{1, 2}, {3, 4}}
	out, err := WeightedSum(vs, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(out[0], 2) || !almostEq(out[1], 3) {
		t.Fatalf("WeightedSum = %v", out)
	}
	if _, err := WeightedSum(nil, nil); err == nil {
		t.Error("want error on empty input")
	}
	if _, err := WeightedSum(vs, []float64{1}); err == nil {
		t.Error("want error on weight count mismatch")
	}
	if _, err := WeightedSum([]Vector{{1}, {1, 2}}, []float64{1, 1}); err == nil {
		t.Error("want error on ragged vectors")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(Vector{1, 2, 3}) {
		t.Error("finite vector reported non-finite")
	}
	if IsFinite(Vector{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if IsFinite(Vector{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

// Property: Add is commutative and Sub(Add(a,b),b) == a.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		a := Vector(raw).Clone()
		b := make(Vector, len(a))
		for i := range b {
			b[i] = float64(i) * 0.37
		}
		sum, err := Add(a, b)
		if err != nil {
			return false
		}
		back, err := Sub(sum, b)
		if err != nil {
			return false
		}
		for i := range a {
			if math.Abs(back[i]-a[i]) > 1e-9*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MSE is symmetric and zero iff identical.
func TestMSEProperties(t *testing.T) {
	f := func(raw []float64) bool {
		a := Vector(raw)
		for _, x := range a {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip pathological float inputs
			}
		}
		self, err := MSE(a, a)
		if err != nil || self != 0 {
			return false
		}
		b := a.Clone()
		for i := range b {
			b[i] += 1
		}
		ab, err1 := MSE(a, b)
		ba, err2 := MSE(b, a)
		return err1 == nil && err2 == nil && almostEq(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLayoutFlattenSplit(t *testing.T) {
	l := Layout{
		{Name: "w1", Dims: []int{2, 3}},
		{Name: "b1", Dims: []int{3}},
	}
	if l.TotalSize() != 9 {
		t.Fatalf("TotalSize = %d", l.TotalSize())
	}
	offs := l.Offsets()
	if offs[0] != 0 || offs[1] != 6 {
		t.Fatalf("Offsets = %v", offs)
	}
	blocks := [][]float64{{1, 2, 3, 4, 5, 6}, {7, 8, 9}}
	v, err := l.Flatten(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 9 || v[6] != 7 {
		t.Fatalf("Flatten = %v", v)
	}
	back, err := l.Split(v)
	if err != nil {
		t.Fatal(err)
	}
	if back[1][2] != 9 {
		t.Fatalf("Split = %v", back)
	}
	// Error cases.
	if _, err := l.Flatten([][]float64{{1}}); err == nil {
		t.Error("Flatten: want error on block count mismatch")
	}
	if _, err := l.Flatten([][]float64{{1}, {7, 8, 9}}); err == nil {
		t.Error("Flatten: want error on block size mismatch")
	}
	if _, err := l.Split(Vector{1, 2}); err == nil {
		t.Error("Split: want error on length mismatch")
	}
}

func TestShapeSize(t *testing.T) {
	if (Shape{Name: "x", Dims: []int{4, 5}}).Size() != 20 {
		t.Error("Size of 4x5 should be 20")
	}
	if (Shape{Name: "empty"}).Size() != 0 {
		t.Error("empty shape should have size 0")
	}
	s := Shape{Name: "w", Dims: []int{2, 2}}
	if s.String() != "w[2 2]" {
		t.Errorf("String = %q", s.String())
	}
}
