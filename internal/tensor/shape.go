package tensor

import (
	"errors"
	"fmt"
)

// Shape describes the dimensions of one named parameter block inside a model
// (e.g. a conv kernel or a bias vector). DeTA aggregators never see shapes —
// fragments travel as anonymous flat vectors — but parties need them to
// flatten and rebuild their local models.
type Shape struct {
	Name string
	Dims []int
}

// Size returns the number of elements the shape spans.
func (s Shape) Size() int {
	if len(s.Dims) == 0 {
		return 0
	}
	n := 1
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

func (s Shape) String() string { return fmt.Sprintf("%s%v", s.Name, s.Dims) }

// Layout is an ordered list of parameter-block shapes. It defines how a
// model's parameter blocks map into one flat vector.
type Layout []Shape

// TotalSize returns the length of the flat vector the layout describes.
func (l Layout) TotalSize() int {
	n := 0
	for _, s := range l {
		n += s.Size()
	}
	return n
}

// Offsets returns the starting index of each block in the flat vector.
func (l Layout) Offsets() []int {
	offs := make([]int, len(l))
	n := 0
	for i, s := range l {
		offs[i] = n
		n += s.Size()
	}
	return offs
}

// Flatten concatenates blocks into one flat vector following the layout.
func (l Layout) Flatten(blocks [][]float64) (Vector, error) {
	if len(blocks) != len(l) {
		return nil, fmt.Errorf("tensor: layout has %d blocks, got %d", len(l), len(blocks))
	}
	out := make(Vector, 0, l.TotalSize())
	for i, b := range blocks {
		if len(b) != l[i].Size() {
			return nil, fmt.Errorf("tensor: block %d (%s) has %d elements, want %d",
				i, l[i].Name, len(b), l[i].Size())
		}
		out = append(out, b...)
	}
	return out, nil
}

// Split cuts a flat vector back into per-block slices. The returned slices
// alias v; callers that need independent storage must copy.
func (l Layout) Split(v Vector) ([][]float64, error) {
	if len(v) != l.TotalSize() {
		return nil, fmt.Errorf("tensor: vector length %d does not match layout size %d",
			len(v), l.TotalSize())
	}
	out := make([][]float64, len(l))
	at := 0
	for i, s := range l {
		sz := s.Size()
		out[i] = v[at : at+sz]
		at += sz
	}
	return out, nil
}

// ErrEmptyLayout is returned when an operation requires a non-empty layout.
var ErrEmptyLayout = errors.New("tensor: empty layout")
