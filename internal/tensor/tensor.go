// Package tensor provides the flat-vector math substrate used throughout
// the DeTA reproduction. Model updates in federated learning are exchanged
// as flattened parameter vectors; every aggregation algorithm in the paper
// is coordinate-wise over such vectors, so this package centers on a simple
// []float64-backed Vector type plus shape bookkeeping for reassembling
// layered models.
package tensor

import (
	"errors"
	"fmt"
	"math"

	"deta/internal/parallel"
)

// Vector is a flat slice of float64 parameters. It is the unit of exchange
// between parties and aggregators. Functions in this package treat Vectors
// as values: unless documented otherwise they allocate fresh storage.
type Vector []float64

// ErrLength is returned when two vectors that must match in length do not.
var ErrLength = errors.New("tensor: vector length mismatch")

// New returns a zero vector of length n.
func New(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x and returns v.
func (v Vector) Fill(x float64) Vector {
	for i := range v {
		v[i] = x
	}
	return v
}

// Add returns a + b.
func Add(a, b Vector) (Vector, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// Sub returns a - b.
func Sub(a, b Vector) (Vector, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b Vector) error {
	if len(a) != len(b) {
		return fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	for i := range a {
		a[i] += b[i]
	}
	return nil
}

// AXPY computes a += alpha*b in place.
func AXPY(alpha float64, a, b Vector) error {
	if len(a) != len(b) {
		return fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	for i := range a {
		a[i] += alpha * b[i]
	}
	return nil
}

// Scale returns alpha * v as a new vector.
func Scale(alpha float64, v Vector) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = alpha * v[i]
	}
	return out
}

// ScaleInPlace multiplies v by alpha in place and returns v.
func ScaleInPlace(alpha float64, v Vector) Vector {
	for i := range v {
		v[i] *= alpha
	}
	return v
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm returns the L2 norm of v.
func Norm(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormSq returns the squared L2 norm of v.
func NormSq(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// L2Distance returns ||a-b||_2.
func L2Distance(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// CosineDistance returns 1 - <a,b>/(||a|| ||b||), the cost metric of the
// Inverting Gradients attack. If either vector is all-zero the distance is
// defined as 1 (maximally dissimilar).
func CosineDistance(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1, nil
	}
	return 1 - dot/(math.Sqrt(na)*math.Sqrt(nb)), nil
}

// MSE returns the mean squared error between a and b — the reconstruction
// fidelity metric used for the DLG and iDLG evaluations (Tables 1 and 2).
func MSE(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a)), nil
}

// Mean returns the arithmetic mean of v (0 for the empty vector).
func Mean(v Vector) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v Vector) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Clip limits every element of v to [-c, c] in place and returns v.
func Clip(v Vector, c float64) Vector {
	for i, x := range v {
		if x > c {
			v[i] = c
		} else if x < -c {
			v[i] = -c
		}
	}
	return v
}

// ClampRange limits every element of v to [lo, hi] in place and returns v.
func ClampRange(v Vector, lo, hi float64) Vector {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
	return v
}

// Sign returns the elementwise sign of v as a new vector.
func Sign(v Vector) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		switch {
		case x > 0:
			out[i] = 1
		case x < 0:
			out[i] = -1
		}
	}
	return out
}

// WeightedSum returns sum_i w[i]*vs[i]. All vectors must share a length and
// len(w) must equal len(vs). Coordinates are accumulated in parallel chunks;
// within each coordinate the vectors are summed in input order, so the
// result is bit-identical to the serial loop.
func WeightedSum(vs []Vector, w []float64) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("tensor: weighted sum of zero vectors")
	}
	if len(vs) != len(w) {
		return nil, fmt.Errorf("tensor: %d vectors but %d weights", len(vs), len(w))
	}
	n := len(vs[0])
	for k, v := range vs {
		if len(v) != n {
			return nil, fmt.Errorf("%w: vector %d has length %d, want %d", ErrLength, k, len(v), n)
		}
	}
	out := make(Vector, n)
	parallel.For(n, parallel.DefaultGrain, func(lo, hi int) {
		for k, v := range vs {
			wk := w[k]
			for i := lo; i < hi; i++ {
				out[i] += wk * v[i]
			}
		}
	})
	return out, nil
}

// IsFinite reports whether every element of v is finite (no NaN/Inf).
func IsFinite(v Vector) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
