// Package journal is the durable round-state log that lets an aggregator
// survive a crash: an append-only, CRC-framed, fsync-on-commit write-ahead
// log plus snapshot+truncate compaction, built on the stdlib only.
//
// An aggregator appends one record per accepted mutation (register, upload,
// aggregate, ...) *before* acknowledging it to the caller, so any state a
// party has seen confirmed is recoverable. On restart, Open returns the
// last compaction snapshot (if any) and every committed record appended
// after it; a torn or corrupted tail — the expected artifact of a crash
// mid-append — is truncated away silently, recovering to the last committed
// record instead of erroring out.
//
// On-disk format (wal.log and snapshot.bin share it):
//
//	record = type(1) | len(4, big-endian) | crc32c(4) | data(len)
//
// where the checksum covers the type byte, the length, and the data, so a
// bit flip anywhere in a record is detected. The snapshot file holds
// exactly one record and is replaced atomically (write-temp, fsync,
// rename, fsync dir), so it is either the old or the new snapshot, never a
// mix. Compaction truncates the log only after the snapshot rename is
// durable; a crash between the two replays the (idempotent) log records on
// top of the snapshot that already contains them.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	logName      = "wal.log"
	snapName     = "snapshot.bin"
	snapTempName = "snapshot.tmp"

	headerSize = 9 // type(1) + len(4) + crc(4)

	// MaxRecord bounds a single record so a corrupted length prefix cannot
	// drive a giant allocation; model fragments fit comfortably.
	MaxRecord = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Record is one committed journal entry: an application-defined type tag
// and an opaque payload (the aggregator gob-encodes its events).
type Record struct {
	Type uint8
	Data []byte
}

// Options configures a journal.
type Options struct {
	// NoSync skips the per-append fsync. Records then survive process
	// crashes but not host crashes — acceptable for tests and benchmarks,
	// not for deployments.
	NoSync bool
}

// Recovered is what Open found on disk.
type Recovered struct {
	// Snapshot is the payload of the last compaction snapshot, nil if the
	// journal has never been compacted.
	Snapshot []byte
	// Records are the committed records appended after the snapshot, in
	// append order.
	Records []Record
	// Truncated reports that a torn or corrupted tail was discarded — the
	// normal signature of a crash mid-append, not an error.
	Truncated bool
}

// Journal is an open write-ahead log. Methods are safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	dir    string
	log    *os.File
	off    int64 // committed end of wal.log
	noSync bool
	tail   int // records appended since the last compaction
	closed bool
}

// Open opens (creating if needed) the journal in dir and recovers its
// contents. A torn tail is truncated in place so subsequent appends start
// from the last committed record.
func Open(dir string, opts Options) (*Journal, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rec := &Recovered{}

	// Snapshot: replaced atomically by Compact, so a readable file is
	// complete; anything else is real corruption worth surfacing.
	snapPath := filepath.Join(dir, snapName)
	if b, err := os.ReadFile(snapPath); err == nil {
		r, n, err := decodeRecord(b)
		if err != nil || n != len(b) {
			return nil, nil, fmt.Errorf("journal: corrupt snapshot %s", snapPath)
		}
		rec.Snapshot = r.Data
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// A leftover temp file is a compaction that never committed.
	os.Remove(filepath.Join(dir, snapTempName))

	logPath := filepath.Join(dir, logName)
	b, err := os.ReadFile(logPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	good := 0
	for good < len(b) {
		r, n, err := decodeRecord(b[good:])
		if err != nil {
			rec.Truncated = true
			break
		}
		rec.Records = append(rec.Records, r)
		good += n
	}

	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if good < len(b) {
		if err := f.Truncate(int64(good)); err != nil {
			_ = f.Close() // the truncate error is the one worth reporting
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		_ = f.Close() // the seek error is the one worth reporting
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, log: f, off: int64(good), noSync: opts.NoSync, tail: len(rec.Records)}
	return j, rec, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// TailLen returns the number of records appended since the last compaction
// (including recovered ones) — the replay work a restart would do on top
// of the snapshot. Callers compact when it grows past their threshold.
func (j *Journal) TailLen() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tail
}

// Append commits one record: framed write, then fsync (unless NoSync).
// When Append returns nil the record survives a crash; on error the log is
// rolled back to its previous committed length so later appends stay
// parseable.
func (j *Journal) Append(typ uint8, data []byte) error {
	return j.append(typ, data, !j.noSync)
}

// AppendNoSync commits one record without forcing it to disk, for advisory
// records (e.g. fetch-served events) whose loss in a crash is harmless.
func (j *Journal) AppendNoSync(typ uint8, data []byte) error {
	return j.append(typ, data, false)
}

func (j *Journal) append(typ uint8, data []byte, sync bool) error {
	if len(data) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds limit", len(data))
	}
	frame := encodeRecord(typ, data)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, err := j.log.Write(frame); err != nil {
		// Roll back a partial write so the on-disk tail stays framed.
		j.log.Truncate(j.off)
		j.log.Seek(j.off, io.SeekStart)
		return fmt.Errorf("journal: append: %w", err)
	}
	if sync {
		if err := j.log.Sync(); err != nil {
			j.log.Truncate(j.off)
			j.log.Seek(j.off, io.SeekStart)
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	j.off += int64(len(frame))
	j.tail++
	return nil
}

// Compact atomically replaces the snapshot with the given state and
// truncates the log, bounding both disk usage and restart replay time. The
// snapshot must capture every record appended so far; a crash between the
// snapshot rename and the log truncation replays the old records on top of
// it, which the aggregator's idempotent replay tolerates.
func (j *Journal) Compact(snapshot []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	tmpPath := filepath.Join(j.dir, snapTempName)
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if _, err := tmp.Write(encodeRecord(0, snapshot)); err != nil {
		_ = tmp.Close() // the write error is the one worth reporting
		os.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if !j.noSync {
		if err := tmp.Sync(); err != nil {
			_ = tmp.Close() // the fsync error is the one worth reporting
			os.Remove(tmpPath)
			return fmt.Errorf("journal: compact fsync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(j.dir, snapName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if !j.noSync {
		syncDir(j.dir)
	}
	if err := j.log.Truncate(0); err != nil {
		return fmt.Errorf("journal: compact truncate: %w", err)
	}
	if _, err := j.log.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.off = 0
	j.tail = 0
	return nil
}

// Close fsyncs (unless NoSync) and closes the log file. A failed final
// fsync is reported — records appended with AppendNoSync since the last
// sync may not have reached the disk — but the file is closed either way.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var syncErr error
	if !j.noSync {
		if err := j.log.Sync(); err != nil {
			syncErr = fmt.Errorf("journal: close fsync: %w", err)
		}
	}
	if err := j.log.Close(); err != nil && syncErr == nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return syncErr
}

// syncDir makes a rename durable; best-effort (some filesystems reject
// directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		//lint:ignore errdiscipline directory fsync is best-effort: some filesystems reject it, and the snapshot rename is already ordered by the file fsync
		d.Sync()
		//lint:ignore errdiscipline read-only directory handle; nothing buffered to lose
		d.Close()
	}
}

func encodeRecord(typ uint8, data []byte) []byte {
	frame := make([]byte, headerSize+len(data))
	frame[0] = typ
	binary.BigEndian.PutUint32(frame[1:5], uint32(len(data)))
	h := crc32.New(crcTable)
	h.Write(frame[:5])
	h.Write(data)
	binary.BigEndian.PutUint32(frame[5:9], h.Sum32())
	copy(frame[headerSize:], data)
	return frame
}

// decodeRecord parses one record from the front of b, returning the bytes
// consumed. Any framing or checksum violation — including a record cut
// short by a crash — is an error; the caller treats it as the end of the
// committed log.
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, errors.New("journal: torn header")
	}
	n := binary.BigEndian.Uint32(b[1:5])
	if n > MaxRecord {
		return Record{}, 0, errors.New("journal: corrupt length")
	}
	end := headerSize + int(n)
	if len(b) < end {
		return Record{}, 0, errors.New("journal: torn record")
	}
	h := crc32.New(crcTable)
	h.Write(b[:5])
	h.Write(b[headerSize:end])
	if h.Sum32() != binary.BigEndian.Uint32(b[5:9]) {
		return Record{}, 0, errors.New("journal: checksum mismatch")
	}
	data := make([]byte, n)
	copy(data, b[headerSize:end])
	return Record{Type: b[0], Data: data}, end, nil
}
