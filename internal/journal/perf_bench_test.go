package journal_test

import (
	"testing"

	"deta/internal/perf"
)

// BenchmarkPerfSuite runs the journal area of the tracked perf suite
// (internal/perf) under `go test -bench`, emitting the same stable bench
// names the BENCH_journal.json baseline records.
func BenchmarkPerfSuite(b *testing.B) { perf.RunAreaBenchmarks(b, "journal") }
