package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, j *Journal, typ uint8, data []byte) {
	t.Helper()
	if err := j.Append(typ, data); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Truncated {
		t.Fatalf("fresh journal recovered %+v", rec)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, j, uint8(i%3+1), []byte(fmt.Sprintf("record-%d", i)))
	}
	if got := j.TailLen(); got != 10 {
		t.Fatalf("tail = %d, want 10", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec.Records) != 10 || rec.Truncated {
		t.Fatalf("recovered %d records (truncated=%v), want 10", len(rec.Records), rec.Truncated)
	}
	for i, r := range rec.Records {
		if want := fmt.Sprintf("record-%d", i); string(r.Data) != want || r.Type != uint8(i%3+1) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, r.Type, r.Data, i%3+1, want)
		}
	}
	// Appends after recovery land after the recovered tail.
	mustAppend(t, j2, 7, []byte("post-recovery"))
	if got := j2.TailLen(); got != 11 {
		t.Fatalf("tail = %d, want 11", got)
	}
}

func TestEmptyAndZeroLengthRecords(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, 1, nil)
	mustAppend(t, j, 2, []byte{})
	j.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
}

func TestCompactSnapshotAndReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, j, 1, []byte(fmt.Sprintf("pre-%d", i)))
	}
	if err := j.Compact([]byte("state-after-5")); err != nil {
		t.Fatal(err)
	}
	if got := j.TailLen(); got != 0 {
		t.Fatalf("tail after compact = %d, want 0", got)
	}
	mustAppend(t, j, 2, []byte("post-compact"))
	j.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "state-after-5" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "post-compact" {
		t.Fatalf("records after snapshot = %+v", rec.Records)
	}
}

func TestCompactIsAtomic(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, 1, []byte("r"))
	if err := j.Compact([]byte("snap-1")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A stale temp file from a crashed compaction must not shadow the
	// committed snapshot.
	if err := os.WriteFile(filepath.Join(dir, snapTempName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "snap-1" {
		t.Fatalf("snapshot = %q, want snap-1", rec.Snapshot)
	}
	if _, err := os.Stat(filepath.Join(dir, snapTempName)); !os.IsNotExist(err) {
		t.Fatal("stale compaction temp file survived Open")
	}
}

// A crash mid-append leaves a torn tail; recovery must return every record
// up to the last committed one and let appends continue from there.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, j, 1, []byte(fmt.Sprintf("rec-%d", i)))
	}
	j.Close()

	logPath := filepath.Join(dir, logName)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, headerSize - 1, headerSize + 2} {
		// Simulate a torn append: full log plus a partial frame.
		torn := append(append([]byte{}, b...), b[:cut]...)
		if err := os.WriteFile(logPath, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(rec.Records) != 4 || !rec.Truncated {
			t.Fatalf("cut %d: recovered %d records (truncated=%v), want 4 truncated",
				cut, len(rec.Records), rec.Truncated)
		}
		// The torn bytes must be gone so the next append stays parseable.
		mustAppend(t, j2, 9, []byte("after-tear"))
		j2.Close()
		_, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if n := len(rec2.Records); n != 5 || string(rec2.Records[4].Data) != "after-tear" {
			t.Fatalf("cut %d: post-tear append lost (%d records)", cut, n)
		}
		if err := os.WriteFile(logPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// A flipped bit anywhere in the tail record must be caught by the CRC and
// recovered past, keeping every record before it.
func TestCorruptTailDetected(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, j, 1, bytes.Repeat([]byte{byte(i + 1)}, 20))
	}
	j.Close()
	logPath := filepath.Join(dir, logName)
	orig, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(orig) / 3
	for _, pos := range []int{0, 1, 5, headerSize, recLen - 1} {
		b := append([]byte{}, orig...)
		b[2*recLen+pos] ^= 0x40 // corrupt the last record
		if err := os.WriteFile(logPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		j2.Close()
		if len(rec.Records) != 2 || !rec.Truncated {
			t.Fatalf("pos %d: recovered %d records (truncated=%v), want 2 truncated",
				pos, len(rec.Records), rec.Truncated)
		}
	}
}

func TestAppendNoSyncCounts(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendNoSync(3, []byte("advisory")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || rec.Records[0].Type != 3 {
		t.Fatalf("recovered %+v", rec.Records)
	}
}

func TestClosedJournalRejectsAppends(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(1, []byte("x")); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := j.Compact(nil); err != ErrClosed {
		t.Fatalf("compact after close = %v, want ErrClosed", err)
	}
}

// FuzzRecoverTail feeds arbitrary mutations of a valid log tail into Open:
// whatever the damage, recovery must never error, never return a record
// that was not committed, and always keep the journal appendable.
func FuzzRecoverTail(f *testing.F) {
	f.Add(uint16(0), byte(0xff))
	f.Add(uint16(5), byte(0x01))
	f.Add(uint16(9), byte(0x80))
	f.Add(uint16(1000), byte(0x55))
	// Cuts landing inside the trailing churn records (types 10/11 below).
	f.Add(uint16(80), byte(0x00))
	f.Add(uint16(101), byte(0x40))
	// recTypes mirrors the record sequence a churn-heavy aggregator writes
	// — register, upload, quorum, evict, rejoin, fused round (the core
	// package's record-type values; not imported to avoid a cycle) — so
	// damaged tails are exercised against the live type set rather than a
	// synthetic 1..6 ramp.
	recTypes := []uint8{1, 8, 5, 10, 11, 9}
	f.Fuzz(func(t *testing.T, cut uint16, flip byte) {
		dir := t.TempDir()
		j, _, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, len(recTypes))
		for i := range want {
			want[i] = bytes.Repeat([]byte{byte(i)}, 10+i)
			if err := j.Append(recTypes[i], want[i]); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		logPath := filepath.Join(dir, logName)
		b, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		// Damage: truncate at cut and/or xor a byte there.
		pos := int(cut) % (len(b) + 1)
		damaged := append([]byte{}, b[:pos]...)
		if pos > 0 && flip != 0 {
			damaged[pos-1] ^= flip
		}
		if err := os.WriteFile(logPath, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rec, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("recovery errored on damaged tail: %v", err)
		}
		if len(rec.Records) > len(want) {
			t.Fatalf("recovered %d records from a log of %d", len(rec.Records), len(want))
		}
		for i, r := range rec.Records {
			// Every surviving record must be a committed prefix entry —
			// unless the flipped byte happened to keep the CRC valid,
			// which a 32-bit checksum makes effectively impossible here.
			if r.Type != recTypes[i] || !bytes.Equal(r.Data, want[i]) {
				t.Fatalf("record %d mutated: {%d %q}", i, r.Type, r.Data)
			}
		}
		if err := j2.Append(99, []byte("alive")); err != nil {
			t.Fatalf("append after damaged-tail recovery: %v", err)
		}
		j2.Close()
		_, rec2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		if n := len(rec2.Records); n != len(rec.Records)+1 {
			t.Fatalf("post-recovery append lost: %d records, want %d", n, len(rec.Records)+1)
		}
	})
}

// Regression: Close must report a failed final fsync instead of discarding
// it — AppendNoSync records are only durable once that last Sync lands, so
// a caller that sees Close() == nil is entitled to believe they survived.
func TestCloseReportsSyncError(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, 1, []byte("committed"))
	// Sabotage the handle underneath the journal: Sync on a closed file
	// fails with ErrClosed, exactly like a device-level fsync failure
	// would surface.
	if err := j.log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err == nil {
		t.Fatal("Close swallowed the final fsync error")
	}
	// The journal is closed regardless; later operations see ErrClosed.
	if err := j.Append(2, []byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after failed close: %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil", err)
	}
}
