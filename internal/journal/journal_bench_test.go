package journal

import (
	"fmt"
	"testing"
)

func benchAppend(b *testing.B, noSync bool, size int) {
	j, _, err := Open(b.TempDir(), Options{NoSync: noSync})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(1, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppend measures the committed-record cost with and without the
// per-record fsync — the durability price an upload pays before it is
// acknowledged.
func BenchmarkAppend(b *testing.B) {
	for _, size := range []int{256, 32 << 10} {
		b.Run(fmt.Sprintf("sync/%dB", size), func(b *testing.B) { benchAppend(b, false, size) })
		b.Run(fmt.Sprintf("nosync/%dB", size), func(b *testing.B) { benchAppend(b, true, size) })
	}
}
