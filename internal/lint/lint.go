// Package lint is deta's in-tree static-analysis framework: a small
// analyzer interface over go/ast + go/types (no golang.org/x/tools), the
// project-specific analyzers that enforce DeTA's security and determinism
// invariants, and the package loader that feeds them.
//
// The enforced invariants (see DESIGN.md §10):
//
//   - cryptorand:     keyed/secret randomness must never come from math/rand
//   - maporder:       no order-dependent accumulation over map iteration
//   - errdiscipline:  no silently dropped Sync/Close/Write/Commit errors on
//     the durability path
//   - ctxplumb:       RPC/fleet surfaces take a caller context, first, and
//     never mint context.Background() internally
//   - mutexcopy:      no by-value copies of lock-bearing structs
//   - keytaint:       key material never reaches logs, error strings, the
//     journal, or wire messages other than the AP PermKey response
//   - lockregion:     no network/disk I/O on any CFG path holding a mutex
//     in core (the WAL commit is the sanctioned exception)
//   - ctxflow:        exported transport/core functions that transitively
//     perform network I/O take a context.Context
//   - lockorder:      the module-wide lock-acquisition-order graph is
//     acyclic (cycles are potential deadlocks)
//   - goleak:         no goroutine is spawned into a body that can block
//     forever on channel operations with no escape edge
//   - allocfree:      functions annotated //perf:hotpath (and their
//     synchronous callees) perform no allocations beyond the sanctioned,
//     acknowledged sites
//   - waldisc:        every durable aggregator state mutation is dominated
//     on all CFG paths by a journal append of sufficient strength
//     (WAL-before-ack)
//   - replaypure:     no nondeterminism source (wall clock, global rand,
//     goroutines, observable map order) is reachable from replay roots or
//     fusion kernels
//   - clockdisc:      internal/core and cmd never read the wall clock or
//     arm timers directly — all time flows through the injectable
//     core.Clock
//
// keytaint, lockregion, ctxflow, lockorder, goleak, and allocfree are
// dataflow/summary analyzers: they run on per-function control-flow
// graphs (cfg.go, dataflow.go) with module-wide call-graph summaries
// (summary.go) computed once, up front, through the Preparer hook.
// waldisc and replaypure form the protocol-invariant tier on top of the
// must-analysis engine (dom.go, mustflow.go): dominance and
// every-path-append facts that the forward may-solver cannot express.
// One defect, one finding: a syntactic maporder hit on a line where
// replaypure also reports is aliased to the replaypure finding by Run.
//
// A finding on a line can be acknowledged — never silently — with a
// comment on that line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: an ignore without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"deta/internal/parallel"
)

// Package is one loaded, type-checked package as the analyzers see it.
// Test files (_test.go) are never included: the invariants guard
// production paths, and tests legitimately use context.Background(),
// best-effort Closes, and seeded math/rand.
type Package struct {
	Path  string // import path ("deta/internal/core")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Finding is one analyzer hit, position-resolved for file:line output.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Reporter collects findings for one (package, analyzer) run.
type Reporter struct {
	analyzer string
	pkg      *Package
	mu       sync.Mutex
	findings []Finding
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.pkg.Fset.Position(pos)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.findings = append(r.findings, Finding{
		Analyzer: r.analyzer,
		Pos:      p,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker. Run inspects a single package and
// reports findings; it must be safe to call concurrently for different
// packages.
type Analyzer interface {
	Name() string
	Doc() string
	Run(pkg *Package, r *Reporter)
}

// Preparer is implemented by analyzers that need module-wide facts: Run
// calls Prepare once with every loaded package before fanning out, so
// call-graph summaries can cross package boundaries.
type Preparer interface {
	Prepare(pkgs []*Package)
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		CryptoRand{},
		MapOrder{},
		ErrDiscipline{},
		CtxPlumb{},
		MutexCopy{},
		&KeyTaint{},
		&LockRegion{},
		&CtxFlow{},
		&LockOrder{},
		&GoLeak{},
		&AllocFree{},
		WalDisc{},
		&ReplayPure{},
		ClockDisc{},
	}
}

// Run executes the analyzers over the packages (concurrently across
// packages, after a sequential Prepare round for analyzers that need
// module-wide summaries), applies //lint:ignore suppression, and returns
// the surviving findings sorted by position. Malformed ignore directives
// (no analyzer name or no reason) are reported as findings of the
// pseudo-analyzer "lintignore".
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	for _, a := range analyzers {
		if p, ok := a.(Preparer); ok {
			p.Prepare(pkgs)
		}
	}
	// Per-package fan-out over the shared worker pool (bounded, unlike
	// the old one-goroutine-per-package spawn). Each package's findings
	// land in its own slot, so the pre-sort order is already independent
	// of scheduling; the final total-order sort (file, line, col,
	// analyzer, message) makes the output canonical byte-for-byte across
	// runs and worker counts.
	results := make([][]Finding, len(pkgs))
	parallel.For(len(pkgs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pkg := pkgs[i]
			sup, bad := suppressions(pkg)
			var local []Finding
			for _, a := range analyzers {
				r := &Reporter{analyzer: a.Name(), pkg: pkg}
				a.Run(pkg, r)
				for _, f := range r.findings {
					if sup[supKey{f.Analyzer, f.File, f.Line}] {
						continue
					}
					local = append(local, f)
				}
			}
			results[i] = append(local, bad...)
		}
	})
	var all []Finding
	for _, fs := range results {
		all = append(all, fs...)
	}
	// maporder/replaypure overlap: replaypure reruns the syntactic map-order
	// checks under reachability scoping, so a line both analyzers hit is ONE
	// defect — keep the replaypure finding (it carries replay provenance)
	// and drop the maporder duplicate.
	type fileLine struct {
		file string
		line int
	}
	replayLines := map[fileLine]bool{}
	for _, f := range all {
		if f.Analyzer == "replaypure" {
			replayLines[fileLine{f.File, f.Line}] = true
		}
	}
	if len(replayLines) > 0 {
		kept := all[:0]
		for _, f := range all {
			if f.Analyzer == "maporder" && replayLines[fileLine{f.File, f.Line}] {
				continue
			}
			kept = append(kept, f)
		}
		all = kept
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}

type supKey struct {
	analyzer string
	file     string
	line     int
}

// suppressions scans a package's comments for //lint:ignore directives.
// A directive suppresses the named analyzer on its own line and on the
// following line (the usual "comment above the statement" placement).
func suppressions(pkg *Package) (map[supKey]bool, []Finding) {
	sup := make(map[supKey]bool)
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lintignore",
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				sup[supKey{fields[0], pos.Filename, pos.Line}] = true
				sup[supKey{fields[0], pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return sup, bad
}

// exported reports whether a function declaration is part of the package's
// exported surface (exported name; for methods, an exported receiver type
// too).
func exported(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// pathIn reports whether importPath is pkg or a subpackage of pkg.
func pathIn(importPath string, pkgs ...string) bool {
	for _, p := range pkgs {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}
