package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"math/rand"
	"testing"
)

// --- hand-built graphs ------------------------------------------------

// handCFG wires a cfg directly from an adjacency list so dominator tests
// don't depend on buildCFG's shape choices. Block 0 is entry; the last
// block is exit.
func handCFG(t *testing.T, n int, edges [][2]int) *cfg {
	t.Helper()
	c := &cfg{}
	blocks := make([]*cfgBlock, n)
	for i := range blocks {
		blocks[i] = &cfgBlock{}
	}
	c.blocks = blocks
	c.entry = blocks[0]
	c.exit = blocks[n-1]
	for _, e := range edges {
		edge(blocks[e[0]], blocks[e[1]])
	}
	return c
}

func TestDomTreeDiamond(t *testing.T) {
	// 0 -> 1 -> {2,3} -> 4 -> 5(exit): classic diamond. The branch head 1
	// dominates both arms and the join; neither arm dominates the join.
	c := handCFG(t, 6, [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}})
	d := buildDomTree(c)
	b := c.blocks

	wantIdom := map[int]int{1: 0, 2: 1, 3: 1, 4: 1, 5: 4}
	for blk, want := range wantIdom {
		if got := d.idom[b[blk]]; got != b[want] {
			t.Errorf("idom[%d]: got block %d, want %d", blk, blockIndex(c, got), want)
		}
	}
	if d.idom[c.entry] != nil {
		t.Errorf("idom[entry] = %d, want nil", blockIndex(c, d.idom[c.entry]))
	}
	if d.dominates(b[2], b[4]) || d.dominates(b[3], b[4]) {
		t.Errorf("a diamond arm must not dominate the join")
	}
	if !d.dominates(b[1], b[4]) || !d.dominates(b[0], b[5]) {
		t.Errorf("branch head/entry must dominate join/exit")
	}
	if !d.dominates(b[2], b[2]) {
		t.Errorf("dominance must be reflexive")
	}
}

func TestDomTreeLoop(t *testing.T) {
	// 0 -> 1(head) -> 2(body) -> 1, 1 -> 3(exit). The back edge must not
	// disturb the head's dominance of body and exit.
	c := handCFG(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {1, 3}})
	d := buildDomTree(c)
	b := c.blocks
	if d.idom[b[1]] != b[0] || d.idom[b[2]] != b[1] || d.idom[b[3]] != b[1] {
		t.Errorf("loop idoms wrong: idom[1]=%d idom[2]=%d idom[3]=%d",
			blockIndex(c, d.idom[b[1]]), blockIndex(c, d.idom[b[2]]), blockIndex(c, d.idom[b[3]]))
	}
	if d.dominates(b[2], b[3]) {
		t.Errorf("loop body must not dominate loop exit (the zero-iteration path skips it)")
	}
}

func TestDomTreeUnreachable(t *testing.T) {
	// Block 2 is disconnected: it neither dominates nor is dominated.
	c := handCFG(t, 4, [][2]int{{0, 1}, {1, 3}})
	d := buildDomTree(c)
	b := c.blocks
	if d.reachable(b[2]) {
		t.Fatalf("disconnected block reported reachable")
	}
	if d.dominates(b[2], b[3]) || d.dominates(b[0], b[2]) || d.dominates(b[2], b[2]) {
		t.Errorf("unreachable blocks must not participate in dominance")
	}
}

func blockIndex(c *cfg, blk *cfgBlock) int {
	for i, b := range c.blocks {
		if b == blk {
			return i
		}
	}
	return -1
}

// --- built-from-source graphs ----------------------------------------

// parseBody parses src as a file and returns the CFG of the function
// named fn.
func parseBody(t *testing.T, src, fn string) *cfg {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dom_test_src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return buildCFG(fd.Body)
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil
}

// blockWithCall finds the reachable block containing a call to name.
func blockWithCall(t *testing.T, c *cfg, name string) *cfgBlock {
	t.Helper()
	for _, blk := range c.blocks {
		for _, n := range blk.nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

func TestDomTreeEarlyReturn(t *testing.T) {
	// The statement after an early return is only reached on the non-return
	// path, so the pre-return prefix dominates it but the return block's
	// continuation does not exist on all paths.
	c := parseBody(t, `package p
func f(ok bool) {
	before()
	if !ok {
		bail()
		return
	}
	after()
}
func before() {}
func bail()   {}
func after()  {}
`, "f")
	d := buildDomTree(c)
	before := blockWithCall(t, c, "before")
	bail := blockWithCall(t, c, "bail")
	after := blockWithCall(t, c, "after")
	if !d.dominates(before, after) {
		t.Errorf("prefix must dominate the post-branch statement")
	}
	if d.dominates(bail, after) {
		t.Errorf("early-return arm must not dominate the fallthrough path")
	}
	if !d.dominates(before, c.exit) {
		t.Errorf("prefix must dominate exit")
	}
}

func TestDomTreeDefer(t *testing.T) {
	// defer stays in its registration block (it runs at exit, but the CFG
	// keeps it where registered); a defer inside a branch must not be seen
	// as dominating the join.
	c := parseBody(t, `package p
func f(ok bool) {
	if ok {
		defer cleanup()
	}
	work()
}
func cleanup() {}
func work()    {}
`, "f")
	if len(c.defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(c.defers))
	}
	d := buildDomTree(c)
	deferBlk := blockWithCall(t, c, "cleanup")
	workBlk := blockWithCall(t, c, "work")
	if d.dominates(deferBlk, workBlk) {
		t.Errorf("branch-local defer must not dominate the join")
	}
	if !d.dominates(c.entry, workBlk) {
		t.Errorf("entry must dominate the join")
	}
}

// --- backward must-analysis ------------------------------------------

// callHit matches any node containing a call to name.
func callHit(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

func TestMustOnEveryPathBothBranches(t *testing.T) {
	c := parseBody(t, `package p
func f(ok bool) {
	if ok {
		hit()
	} else {
		hit()
	}
}
func hit() {}
`, "f")
	if !mustOnEveryPath(c, callHit("hit")) {
		t.Errorf("hit on both branches must hold on every path")
	}
}

func TestMustOnEveryPathEarlyReturn(t *testing.T) {
	c := parseBody(t, `package p
func f(ok bool) {
	if !ok {
		return
	}
	hit()
}
func hit() {}
`, "f")
	if mustOnEveryPath(c, callHit("hit")) {
		t.Errorf("early return bypasses hit; must-path answer should be false")
	}
}

func TestMustOnEveryPathLoopBody(t *testing.T) {
	// A hit only inside a conditional loop body is skipped on the
	// zero-iteration path.
	c := parseBody(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		hit()
	}
}
func hit() {}
`, "f")
	if mustOnEveryPath(c, callHit("hit")) {
		t.Errorf("loop body is not on every path")
	}
}

// --- property test: idoms vs naive all-paths reachability -------------

// naiveDominates: a dominates b iff b is unreachable from entry once a is
// removed (and both are reachable to begin with). Reflexive by definition.
func naiveDominates(c *cfg, a, b *cfgBlock) bool {
	if a == b {
		return reachableFrom(c.entry, b, nil)
	}
	if !reachableFrom(c.entry, a, nil) || !reachableFrom(c.entry, b, nil) {
		return false
	}
	return !reachableFrom(c.entry, b, a)
}

func reachableFrom(start, target, removed *cfgBlock) bool {
	if start == removed {
		return false
	}
	seen := map[*cfgBlock]bool{}
	stack := []*cfgBlock{start}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == removed || seen[blk] {
			continue
		}
		if blk == target {
			return true
		}
		seen[blk] = true
		stack = append(stack, blk.succs...)
	}
	return false
}

func TestDomTreePropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0xDE7A))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7) // 2..8 blocks
		var edges [][2]int
		// Random edges, biased toward forward ones so most blocks are
		// reachable, with back edges mixed in for loops.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				p := 0.35
				if j < i {
					p = 0.15 // back edge
				}
				if rng.Float64() < p {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		c := handCFG(t, n, edges)
		d := buildDomTree(c)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got := d.dominates(c.blocks[i], c.blocks[j])
				want := naiveDominates(c, c.blocks[i], c.blocks[j])
				if got != want {
					t.Fatalf("trial %d (n=%d, edges=%v): dominates(%d,%d) = %v, naive says %v",
						trial, n, edges, i, j, got, want)
				}
			}
		}
	}
}
