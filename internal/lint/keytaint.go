package lint

// KeyTaint tracks key material through the module and flags any flow into
// a place it must never appear. DeTA's separation-of-duties argument
// depends on the permutation key and attestation-token material staying
// inside the components entitled to them (paper §4): a key that leaks
// into a log line, an error string, the plaintext WAL, or any wire
// message other than the AP's own PermKey response collapses the threat
// model.
//
// Sources (by resolved callee or field object):
//   - attest.KeyBroker.PermutationKey / core.APClient.PermKey (the key)
//   - attest.Proxy.VerifyAndIssueToken (serialized token private key)
//   - sev.CVM.GuestReadSecret (injected launch secret)
//   - rng.DeriveSeed (subkeys are keys)
//   - the permKey/token fields of KeyBroker, Shuffler, Token
//
// Sinks: fmt formatting/print family, errors.New/Join, the log package,
// journal Append/AppendNoSync/Compact payloads, transport.Encode, and any
// module wire struct named *Req/*Resp — except PermKeyReq/PermKeyResp,
// the one sanctioned key-carrying message.
//
// Sanitizers: rng.Fingerprint, SHA-2 digests, HMAC construction, and the
// builtins (len of a key is not the key). Assigning a sanitized value
// over a tainted variable clears it (strong update on the CFG).
//
// The analysis is two-level: a module-wide, flow-insensitive fixpoint
// (Prepare) marks tainted struct fields, parameters, and returns so facts
// cross function boundaries; then a per-function, flow-sensitive pass
// over the CFG checks sinks with path-union (may) taint.
import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

type KeyTaint struct {
	once sync.Once
	g    *taintGlobal
}

func (*KeyTaint) Name() string { return "keytaint" }
func (*KeyTaint) Doc() string {
	return "key material must not reach logs, error strings, the journal, or non-PermKey wire messages"
}

// keyTaintSources maps resolved callees (pkgpath[.Recv].Name) to the
// label of the key material they return.
var keyTaintSources = map[string]string{
	"deta/internal/attest.KeyBroker.PermutationKey":  "permutation key",
	"deta/internal/core.APClient.PermKey":            "permutation key",
	"deta/internal/attest.Proxy.VerifyAndIssueToken": "attestation token key",
	"deta/internal/sev.CVM.GuestReadSecret":          "injected launch secret",
	"deta/internal/rng.DeriveSeed":                   "derived subkey",
}

// keyTaintFieldSpecs hardcodes the struct fields that hold key material
// at rest; stores of tainted values discover further fields dynamically.
var keyTaintFieldSpecs = map[string]string{
	"deta/internal/attest.KeyBroker.permKey": "permutation key",
	"deta/internal/core.Shuffler.permKey":    "permutation key",
	"deta/internal/attest.Token.key":         "attestation token key",
	"deta/internal/rng.Stream.key":           "stream key",
}

// keyTaintSanitizers are one-way boundaries: their results reveal nothing
// recoverable about the key.
var keyTaintSanitizers = map[string]bool{
	"deta/internal/rng.Fingerprint":     true,
	"crypto/sha256.Sum256":              true,
	"crypto/sha256.New":                 true,
	"crypto/sha512.Sum512":              true,
	"crypto/sha512.New":                 true,
	"crypto/hmac.New":                   true,
	"crypto/subtle.ConstantTimeCompare": true,
}

// keyTaintPropagators are pure reshapings: the result still contains the
// key bytes (possibly re-encoded).
var keyTaintPropagators = map[string]bool{
	"bytes.Clone": true, "bytes.Join": true, "bytes.Repeat": true,
	"slices.Clone": true, "slices.Concat": true,
	"encoding/hex.EncodeToString": true, "encoding/hex.Dump": true,
	"encoding/base64.Encoding.EncodeToString": true,
	"strings.Clone": true,
}

// wire messages allowed to carry the key: the AP PermKey exchange.
var keyTaintExemptWire = map[string]bool{
	"PermKeyReq": true, "PermKeyResp": true,
}

// Prepare runs the module-wide taint fixpoint. Run falls back to a
// single-package fixpoint if the framework did not call it.
func (a *KeyTaint) Prepare(pkgs []*Package) {
	a.once.Do(func() { a.g = computeTaint(pkgs) })
}

func (a *KeyTaint) Run(pkg *Package, r *Reporter) {
	a.Prepare([]*Package{pkg})
	env := &taintEnv{pkg: pkg, g: a.g}
	for _, u := range funcUnits(pkg) {
		if u.lit != nil && u.parent != nil {
			// Nested literals are checked in context by the enclosing
			// unit's pass (checkFuncLit), carrying captured-variable
			// taint; a second, context-free pass here would only
			// double-report or miss captures.
			continue
		}
		checkTaintUnit(env, u, r)
	}
}

// taintFact maps a variable object to the label of the key material it
// may hold.
type taintFact = fact[types.Object, string]

// taintGlobal is the module-wide summary: fields, parameters, and
// returns that carry key material.
type taintGlobal struct {
	fields  map[*types.Var]string
	params  map[*types.Var]string
	returns map[*types.Func]string
	changed bool
}

func computeTaint(pkgs []*Package) *taintGlobal {
	g := &taintGlobal{
		fields:  resolveTaintFields(pkgs),
		params:  make(map[*types.Var]string),
		returns: make(map[*types.Func]string),
	}
	var units []*funcUnit
	var envs []*taintEnv
	for _, pkg := range pkgs {
		us := funcUnits(pkg)
		units = append(units, us...)
		// One shared weak environment per package: a function literal
		// resolves captured variables to the very objects its enclosing
		// function defined, so sharing the (object-keyed, no-kill) local
		// environment is what lets the fixpoint see taint flow into and
		// out of closures. Distinct functions cannot pollute each other —
		// their locals are distinct objects.
		env := &taintEnv{pkg: pkg, g: g, weak: true, local: make(taintFact)}
		for range us {
			envs = append(envs, env)
		}
	}
	for round := 0; round < 10; round++ {
		g.changed = false
		for i, u := range units {
			scanTaintUnit(envs[i], u)
		}
		if !g.changed {
			break
		}
	}
	return g
}

// resolveTaintFields turns keyTaintFieldSpecs into field objects for the
// packages actually loaded.
func resolveTaintFields(pkgs []*Package) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for spec, label := range keyTaintFieldSpecs {
		dot := strings.LastIndex(spec, ".")
		fieldName := spec[dot+1:]
		rest := spec[:dot]
		dot = strings.LastIndex(rest, ".")
		pkgPath, typeName := rest[:dot], rest[dot+1:]
		for _, pkg := range pkgs {
			if pkg.Path != pkgPath || pkg.Types == nil {
				continue
			}
			obj := pkg.Types.Scope().Lookup(typeName)
			if obj == nil {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if f := st.Field(i); f.Name() == fieldName {
					out[f] = label
				}
			}
		}
	}
	return out
}

// scanTaintUnit is one flow-insensitive sweep of a function body for the
// global fixpoint: it grows a persistent weak (no-kill) local environment
// and records tainted parameters, field stores, and returns.
func scanTaintUnit(env *taintEnv, u *funcUnit) {
	body := u.body()
	if body == nil {
		return
	}
	if env.local == nil {
		env.local = make(taintFact)
	}
	seedParams(env, u, env.local)
	// Inner sweeps so short def-use chains converge within one round.
	for pass := 0; pass < 4; pass++ {
		env.localChanged = false
		syncWalk(body, func(n ast.Node) { env.transfer(env.local, n) })
		if !env.localChanged {
			break
		}
	}
	syncWalk(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			env.recordArgTaint(env.local, x)
		case *ast.ReturnStmt:
			if u.obj == nil {
				return
			}
			for _, res := range x.Results {
				if label, ok := env.exprTaint(env.local, res); ok {
					if _, seen := env.g.returns[u.obj]; !seen {
						env.g.returns[u.obj] = label
						env.g.changed = true
					}
				}
			}
		}
	})
}

// seedParams marks parameters the global fixpoint found tainted.
func seedParams(env *taintEnv, u *funcUnit, f taintFact) {
	params := u.ftype().Params
	if params == nil {
		return
	}
	for _, field := range params.List {
		for _, name := range field.Names {
			if pv, ok := env.pkg.Info.Defs[name].(*types.Var); ok {
				if label, ok := env.g.params[pv]; ok {
					f[pv] = label
				}
			}
		}
	}
}

// checkTaintUnit is the precise, flow-sensitive pass: solve taint over
// the CFG with strong updates, then report sink reaches.
func checkTaintUnit(env *taintEnv, u *funcUnit, r *Reporter) {
	body := u.body()
	if body == nil {
		return
	}
	entry := make(taintFact)
	seedParams(env, u, entry)
	checkTaintBody(env, body, entry, r)
}

// checkTaintBody solves taint over one body's CFG from the given entry
// fact and reports sink reaches — shared by declared units (empty entry
// plus parameter seeds) and closures (the enclosing fact at creation).
func checkTaintBody(env *taintEnv, body *ast.BlockStmt, entry taintFact, r *Reporter) {
	c := buildCFG(body)
	transfer := func(f taintFact, n ast.Node) { env.transfer(f, n) }
	in := solveForward(c, entry, transfer)
	for _, blk := range reachableBlocks(c, in) {
		f := cloneFact(in[blk])
		for _, n := range blk.nodes {
			env.checkSinks(f, n, r)
			env.transfer(f, n)
		}
	}
	// Deferred calls run at exit with whatever may be tainted there.
	if exitFact, ok := in[c.exit]; ok {
		for _, d := range c.defers {
			env.checkSinks(exitFact, d, r)
		}
	}
}

// checkFuncLit recurses into a function literal at its creation point,
// seeding the closure body with a clone of the fact that holds where the
// literal is built: captured variables carry their taint in (key material
// laundered through a closure is still key material), and — because the
// seed is the flow-sensitive fact, not a may-union — a variable strongly
// updated to a sanitized value before the literal stays clean inside it.
// Nested literals recurse naturally.
func (env *taintEnv) checkFuncLit(f taintFact, lit *ast.FuncLit, r *Reporter) {
	if lit.Body == nil {
		return
	}
	u := &funcUnit{pkg: env.pkg, lit: lit}
	entry := cloneFact(f)
	seedParams(env, u, entry)
	checkTaintBody(env, lit.Body, entry, r)
}

// taintEnv carries the shared context of the taint passes. weak mode
// (global fixpoint) never kills facts; strong mode (CFG pass) does.
type taintEnv struct {
	pkg          *Package
	g            *taintGlobal
	local        taintFact // persistent env for weak mode only
	weak         bool
	localChanged bool
}

// transfer applies one node's effect on the taint fact.
func (env *taintEnv) transfer(f taintFact, n ast.Node) {
	switch st := n.(type) {
	case *ast.AssignStmt:
		env.assign(f, st.Lhs, st.Rhs)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, name := range vs.Names {
				lhs[i] = name
			}
			env.assign(f, lhs, vs.Values)
		}
	case *ast.RangeStmt:
		label, tainted := env.exprTaint(f, st.X)
		for _, e := range []ast.Expr{st.Key, st.Value} {
			if e != nil {
				env.setObj(f, e, label, tainted)
			}
		}
	case *ast.ExprStmt:
		env.sideEffects(f, st.X)
	}
}

// sideEffects models value-free statements that still move taint:
// copy(dst, src) taints dst.
func (env *taintEnv) sideEffects(f taintFact, e ast.Expr) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "copy" {
		return
	}
	if _, isBuiltin := env.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if label, tainted := env.exprTaint(f, call.Args[1]); tainted {
		env.setObj(f, call.Args[0], label, true)
	}
}

func (env *taintEnv) assign(f taintFact, lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		label, tainted := env.exprTaint(f, rhs[0])
		for _, l := range lhs {
			env.setObj(f, l, label, tainted)
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		label, tainted := env.exprTaint(f, rhs[i])
		env.setObj(f, l, label, tainted)
		env.recordFieldStore(f, l, rhs[i])
	}
}

// setObj marks (or, in strong mode, clears) the object behind a simple
// identifier target. Non-carrier types (numerics, bools, errors) never
// hold taint — they cannot smuggle key bytes into a sink.
func (env *taintEnv) setObj(f taintFact, target ast.Expr, label string, tainted bool) {
	id, ok := unparen(target).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := env.pkg.Info.Defs[id]
	if obj == nil {
		obj = env.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if tainted && carrierType(obj.Type()) {
		if _, seen := f[obj]; !seen {
			f[obj] = label
			env.localChanged = true
		}
		return
	}
	if !env.weak {
		delete(f, obj) // strong update: a clean value overwrites the taint
	}
}

// recordFieldStore notes `x.field = tainted` in the global field map so
// every later read of the field is tainted, module-wide.
func (env *taintEnv) recordFieldStore(f taintFact, target, value ast.Expr) {
	sel, ok := unparen(target).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := env.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok || !carrierType(fv.Type()) {
		return
	}
	if label, tainted := env.exprTaint(f, value); tainted {
		if _, seen := env.g.fields[fv]; !seen {
			env.g.fields[fv] = label
			env.g.changed = true
		}
	}
}

// recordArgTaint propagates tainted arguments into callee parameter
// summaries for module functions.
func (env *taintEnv) recordArgTaint(f taintFact, call *ast.CallExpr) {
	callee := calleeFunc(env.pkg, call)
	if callee == nil || callee.Pkg() == nil || !strings.HasPrefix(callee.Pkg().Path(), "deta/") {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		label, tainted := env.exprTaint(f, arg)
		if !tainted {
			continue
		}
		pi := i
		if pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1 // variadic tail
		}
		pv := sig.Params().At(pi)
		if !carrierType(pv.Type()) {
			continue
		}
		if _, seen := env.g.params[pv]; !seen {
			env.g.params[pv] = label
			env.g.changed = true
		}
	}
}

// exprTaint reports whether e may evaluate to key material, and which.
func (env *taintEnv) exprTaint(f taintFact, e ast.Expr) (string, bool) {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := env.pkg.Info.Uses[x]
		if obj == nil {
			obj = env.pkg.Info.Defs[x]
		}
		if obj == nil {
			return "", false
		}
		if label, ok := f[obj]; ok {
			return label, true
		}
		if pv, ok := obj.(*types.Var); ok {
			if label, ok := env.g.params[pv]; ok {
				return label, true
			}
		}
		return "", false
	case *ast.SelectorExpr:
		if s, ok := env.pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if fv, ok := s.Obj().(*types.Var); ok {
				if label, ok := env.g.fields[fv]; ok {
					return label, true
				}
				if !carrierType(fv.Type()) {
					// A non-carrier field (int, bool, ...) of a tainted
					// struct cannot hold key bytes: m.n of a key-derived
					// mapper is a length, not the key.
					return "", false
				}
			}
		}
		return env.exprTaint(f, x.X)
	case *ast.CallExpr:
		return env.callTaint(f, x)
	case *ast.IndexExpr:
		return env.exprTaint(f, x.X)
	case *ast.SliceExpr:
		return env.exprTaint(f, x.X)
	case *ast.StarExpr:
		return env.exprTaint(f, x.X)
	case *ast.UnaryExpr:
		return env.exprTaint(f, x.X)
	case *ast.BinaryExpr:
		if x.Op == token.ADD { // concatenation keeps the bytes
			if label, ok := env.exprTaint(f, x.X); ok {
				return label, true
			}
			return env.exprTaint(f, x.Y)
		}
		return "", false // comparisons and arithmetic produce clean values
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if label, ok := env.exprTaint(f, v); ok {
				return label, true
			}
		}
		return "", false
	case *ast.TypeAssertExpr:
		return env.exprTaint(f, x.X)
	}
	return "", false
}

func (env *taintEnv) callTaint(f taintFact, call *ast.CallExpr) (string, bool) {
	// Conversions keep the bytes: string(key), []byte(s).
	if tv, ok := env.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return env.exprTaint(f, call.Args[0])
		}
		return "", false
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := env.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				for _, a := range call.Args {
					if label, ok := env.exprTaint(f, a); ok {
						return label, true
					}
				}
			}
			return "", false // len(key) is not the key
		}
	}
	callee := calleeFunc(env.pkg, call)
	if callee == nil {
		return "", false
	}
	key := funcKey(callee)
	if label, ok := keyTaintSources[key]; ok {
		return label, true
	}
	if keyTaintSanitizers[key] {
		return "", false
	}
	if label, ok := env.g.returns[callee]; ok {
		return label, true
	}
	if keyTaintPropagators[key] {
		for _, a := range call.Args {
			if label, ok := env.exprTaint(f, a); ok {
				return label, true
			}
		}
	}
	return "", false
}

// checkSinks inspects one CFG node for sink reaches with the fact that
// holds on entry to the node. Function-literal bodies are checked by
// recursion with the current fact (checkFuncLit) — captured key material
// must not escape through a closure; goroutine argument expressions ARE
// evaluated here, so go/defer statements are inspected too.
func (env *taintEnv) checkSinks(f taintFact, n ast.Node, r *Reporter) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch node := x.(type) {
		case *ast.FuncLit:
			env.checkFuncLit(f, node, r)
			return false
		case *ast.CallExpr:
			env.checkSinkCall(f, node, r)
		case *ast.CompositeLit:
			env.checkWireComposite(f, node, r)
		case *ast.AssignStmt:
			env.checkWireFieldStore(f, node, r)
		}
		return true
	})
}

func (env *taintEnv) checkSinkCall(f taintFact, call *ast.CallExpr, r *Reporter) {
	callee := calleeFunc(env.pkg, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	path, name := callee.Pkg().Path(), callee.Name()
	var sink, kind string
	switch {
	case path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Sprint") ||
		strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Append") || name == "Errorf"):
		sink, kind = "fmt."+name, "format"
	case path == "errors" && (name == "New" || name == "Join"):
		sink, kind = "errors."+name, "format"
	case path == "log":
		sink, kind = "log."+name, "format"
	case path == journalPath && (name == "Append" || name == "AppendNoSync" || name == "Compact"):
		sink, kind = "journal."+name, "journal"
	case path == "deta/internal/transport" && name == "Encode":
		sink, kind = "transport.Encode", "wire"
	default:
		return
	}
	for _, arg := range call.Args {
		label, tainted := env.exprTaint(f, arg)
		if !tainted {
			continue
		}
		switch kind {
		case "format":
			r.Reportf(call.Pos(),
				"key material (%s) reaches %s: key bytes must never be formatted or logged — use rng.Fingerprint for a loggable digest", label, sink)
		case "journal":
			r.Reportf(call.Pos(),
				"key material (%s) reaches %s: the WAL is plaintext on disk and must never record key bytes", label, sink)
		case "wire":
			r.Reportf(call.Pos(),
				"key material (%s) reaches %s: only the AP PermKey response may carry key bytes", label, sink)
		}
		return
	}
}

// wireStructName returns the message name if t is a module wire struct
// (*Req/*Resp outside the PermKey exemption).
func wireStructName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), "deta/") {
		return ""
	}
	name := obj.Name()
	if !strings.HasSuffix(name, "Req") && !strings.HasSuffix(name, "Resp") {
		return ""
	}
	if keyTaintExemptWire[name] {
		return ""
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	return name
}

func (env *taintEnv) checkWireComposite(f taintFact, cl *ast.CompositeLit, r *Reporter) {
	tv, ok := env.pkg.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	name := wireStructName(tv.Type)
	if name == "" {
		return
	}
	for _, el := range cl.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if label, tainted := env.exprTaint(f, v); tainted {
			r.Reportf(v.Pos(),
				"key material (%s) in wire message %s: only the AP PermKey response may carry key bytes", label, name)
			return
		}
	}
}

func (env *taintEnv) checkWireFieldStore(f taintFact, st *ast.AssignStmt, r *Reporter) {
	for i, l := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		sel, ok := unparen(l).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		s, ok := env.pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			continue
		}
		name := wireStructName(s.Recv())
		if name == "" {
			continue
		}
		if label, tainted := env.exprTaint(f, st.Rhs[i]); tainted {
			r.Reportf(l.Pos(),
				"key material (%s) stored into wire message %s: only the AP PermKey response may carry key bytes", label, name)
		}
	}
}

// funcKey names a function for the source/sanitizer/propagator tables:
// pkgpath[.ReceiverType].Name.
func funcKey(f *types.Func) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Pkg().Path() + "." + f.Name()
}

var errorType = types.Universe.Lookup("error").Type()

// carrierType reports whether a value of type t can hold key bytes.
// Numerics, bools, channels, funcs, and error values cannot — treating
// them as carriers would only breed noise.
func carrierType(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Identical(t, errorType) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Signature, *types.Chan:
		return false
	}
	return true
}
