package lint

// waldisc enforces the WAL-before-ack protocol on the aggregator: a crash
// between acknowledging state and making it durable would let recovery
// resurrect a node that remembers less than its peers were told, so every
// mutation of AggregatorNode durable state must already be covered by a
// journal append on EVERY control-flow path reaching it. "Every path" is
// a must-property the forward may-solver cannot express; this analyzer is
// the first client of dom.go's dominator tree (an append guards a
// mutation iff it precedes it in the same block or strictly dominates the
// mutation's block) and of mustflow.go's backward must-solver (an
// unexported helper that appends on every path through its body is a
// guard wrapper at its call sites).
//
// Two guard strengths, matching the recovery protocol:
//
//   - strength 2, "checked durable append": logFragmentDurable or
//     Journal.Append with the returned error consumed. Required for the
//     payload-bearing state replay rebuilds record-by-record — round
//     creation and the per-party fragment/weight/aggregate maps.
//   - strength 1, any journal append (logEvent*, AppendNoSync, Compact,
//     or an unchecked strength-2 call). Enough for membership flags and
//     counters that a snapshot re-captures, and for ALL deletes: dropping
//     state early at worst forgets what replay can rebuild, it never
//     acknowledges phantom data (the rollback `delete` after a failed
//     append is the canonical guarded delete).
//
// Mutations reached through unexported helpers propagate to call sites via
// summaries, so `a.admit(p)` is as visible as `a.parties[p] = true`.
// Findings are reported only in exported functions — the package's ack
// surface; unexported functions contribute summaries instead. Replay
// itself (RecoverAggregatorNode, applyRecord, restoreSnapshot) is exempt:
// it mutates state FROM the journal. Mutations through aliased maps
// (`m := a.parties; m[p] = true`) and inside function literals are out of
// scope — neither shape occurs in the tree.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type WalDisc struct{}

func (WalDisc) Name() string { return "waldisc" }
func (WalDisc) Doc() string {
	return "require a dominating journal append before every durable aggregator state mutation (WAL-before-ack)"
}

// walDurableFields maps owner type -> field -> append strength required
// for a write (deletes always need only strength 1; see package comment).
var walDurableFields = map[string]map[string]int{
	"AggregatorNode": {
		"parties":        1,
		"rounds":         2,
		"evicted":        1,
		"quorum":         1,
		"retention":      1,
		"lastAggregated": 1,
	},
	"roundState": {
		"fragments":  2,
		"weights":    2,
		"aggregated": 2,
	},
}

// walExemptFuncs are the replay side of the protocol: they mutate durable
// state from journal records, so demanding an append first would be
// circular.
var walExemptFuncs = map[string]bool{
	"RecoverAggregatorNode": true,
	"applyRecord":           true,
	"restoreSnapshot":       true,
}

// walMut is one durable-state mutation: the strength its guard needs, a
// human-readable target (with the helper chain when propagated), and the
// position the finding anchors to.
type walMut struct {
	need int
	desc string
	pos  token.Pos
}

type walFunc struct {
	decl *ast.FuncDecl
	obj  *types.Func
	c    *cfg
	d    *domTree
}

func (WalDisc) Run(pkg *Package, r *Reporter) {
	if pkg.Path != "deta/internal/core" {
		return
	}
	var fns []*walFunc
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || walExemptFuncs[fd.Name.Name] {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			c := buildCFG(fd.Body)
			fns = append(fns, &walFunc{decl: fd, obj: obj, c: c, d: buildDomTree(c)})
		}
	}

	// Wrapper strengths: a function that appends (at strength s) on every
	// path through its body transfers an s-strength guard to call sites.
	// Wrappers may call wrappers, so iterate to a fixpoint; the call graph
	// is shallow, 10 rounds is plenty.
	ws := map[*types.Func]int{}
	for iter := 0; iter < 10; iter++ {
		next := map[*types.Func]int{}
		for _, wf := range fns {
			if wf.obj == nil {
				continue
			}
			if s := walWrapperStrength(pkg, wf, ws); s > 0 {
				next[wf.obj] = s
			}
		}
		if walIntMapEqual(ws, next) {
			break
		}
		ws = next
	}

	// Unguarded-mutation summaries for unexported helpers, to the same
	// fixpoint discipline: a helper's unguarded mutations surface at its
	// call sites (where a dominating append CAN still guard them).
	sums := map[*types.Func][]walMut{}
	for iter := 0; iter < 10; iter++ {
		next := map[*types.Func][]walMut{}
		for _, wf := range fns {
			if wf.obj == nil || exported(wf.decl) {
				continue
			}
			if ms := walUnguarded(pkg, wf, ws, sums); len(ms) > 0 {
				next[wf.obj] = ms
			}
		}
		if walMutMapEqual(sums, next) {
			break
		}
		sums = next
	}

	for _, wf := range fns {
		if !exported(wf.decl) {
			continue
		}
		for _, m := range walUnguarded(pkg, wf, ws, sums) {
			guard := "a journal append"
			if m.need >= 2 {
				guard = "a checked durable journal append"
			}
			r.Reportf(m.pos,
				"durable state write to %s is not preceded by %s on every path to it (WAL-before-ack)",
				m.desc, guard)
		}
	}
}

// walUnguarded returns wf's durable mutations (own and propagated from
// helper summaries) that no append of sufficient strength guards: same
// block at an earlier-or-equal node, or a strictly dominating block.
func walUnguarded(pkg *Package, wf *walFunc, ws map[*types.Func]int, sums map[*types.Func][]walMut) []walMut {
	type walAppend struct {
		blk      *cfgBlock
		idx      int
		strength int
	}
	var appends []walAppend
	for _, blk := range wf.c.blocks {
		if !wf.d.reachable(blk) {
			continue
		}
		for i, n := range blk.nodes {
			if s := walAppendStrength(pkg, n, ws); s > 0 {
				appends = append(appends, walAppend{blk, i, s})
			}
		}
	}
	var out []walMut
	for _, blk := range wf.c.blocks {
		if !wf.d.reachable(blk) {
			continue
		}
		for i, n := range blk.nodes {
			for _, m := range walMutsInNode(pkg, n, sums) {
				guarded := false
				for _, ap := range appends {
					if ap.strength < m.need {
						continue
					}
					if (ap.blk == blk && ap.idx <= i) || (ap.blk != blk && wf.d.dominates(ap.blk, blk)) {
						guarded = true
						break
					}
				}
				if !guarded {
					out = append(out, m)
				}
			}
		}
	}
	return out
}

// walWrapperStrength classifies wf as a guard wrapper: 2 if a checked
// durable append runs on every entry-to-exit path, 1 if any append does,
// 0 otherwise.
func walWrapperStrength(pkg *Package, wf *walFunc, ws map[*types.Func]int) int {
	if mustOnEveryPath(wf.c, func(n ast.Node) bool { return walAppendStrength(pkg, n, ws) >= 2 }) {
		return 2
	}
	if mustOnEveryPath(wf.c, func(n ast.Node) bool { return walAppendStrength(pkg, n, ws) >= 1 }) {
		return 1
	}
	return 0
}

// walAppendStrength returns the strongest append event inside one CFG
// node: 2 for a checked logFragmentDurable / Journal.Append (or a call to
// a strength-2 wrapper, itself checked), 1 for best-effort appends and
// unchecked strength-2 calls, 0 for none. Appends inside defer/go run
// after (or concurrently with) the surrounding statements, so they guard
// nothing; function literals are their own units.
func walAppendStrength(pkg *Package, n ast.Node, ws map[*types.Func]int) int {
	best := 0
	walInspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			s := walCallAppendStrength(pkg, v, ws)
			if s >= 2 && !walCallChecked(pkg, n, v) {
				s = 1
			}
			if s > best {
				best = s
			}
		}
		return true
	})
	return best
}

func walCallAppendStrength(pkg *Package, call *ast.CallExpr, ws map[*types.Func]int) int {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch name := sel.Sel.Name; name {
		case "logFragmentDurable":
			return 2
		case "logEvent", "logEventDurable", "logEventAdvisory":
			return 1
		case "Append", "AppendNoSync", "Compact":
			if isJournalWrite(pkg, sel) {
				if name == "Append" {
					return 2
				}
				return 1
			}
		}
	}
	if fn := calleeFunc(pkg, call); fn != nil {
		return ws[fn]
	}
	return 0
}

// walCallChecked reports whether call's result is consumed within node n.
// A bare expression statement or an all-blank assignment discards the
// error, demoting a durable append to best-effort; a callee with no
// results has nothing to check.
func walCallChecked(pkg *Package, n ast.Node, call *ast.CallExpr) bool {
	if fn := calleeFunc(pkg, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() == 0 {
			return true
		}
	}
	switch st := n.(type) {
	case *ast.ExprStmt:
		if unparen(st.X) == call {
			return false
		}
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 && unparen(st.Rhs[0]) == call {
			allBlank := true
			for _, lhs := range st.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
					break
				}
			}
			if allBlank {
				return false
			}
		}
	}
	return true
}

// walMutsInNode extracts the durable mutations inside one CFG node:
// assignments and inc/dec through durable fields, `delete` on durable
// maps, and calls to helpers with unguarded-mutation summaries (injected
// at the call position, tagged with the helper chain).
func walMutsInNode(pkg *Package, n ast.Node, sums map[*types.Func][]walMut) []walMut {
	var out []walMut
	walInspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if need, desc, ok := walDurableTarget(pkg, lhs); ok {
					out = append(out, walMut{need: need, desc: desc, pos: lhs.Pos()})
				}
			}
		case *ast.IncDecStmt:
			if need, desc, ok := walDurableTarget(pkg, v.X); ok {
				out = append(out, walMut{need: need, desc: desc, pos: v.X.Pos()})
			}
		case *ast.CallExpr:
			if id, ok := unparen(v.Fun).(*ast.Ident); ok && id.Name == "delete" && len(v.Args) == 2 {
				if _, desc, ok := walDurableTarget(pkg, v.Args[0]); ok {
					out = append(out, walMut{need: 1, desc: "delete from " + desc, pos: v.Pos()})
				}
				return true
			}
			if fn := calleeFunc(pkg, v); fn != nil {
				for _, m := range sums[fn] {
					out = append(out, walMut{need: m.need, desc: m.desc + " (via " + fn.Name() + ")", pos: v.Pos()})
				}
			}
		}
		return true
	})
	return out
}

// walInspect is ast.Inspect restricted to the parts of a CFG node that
// execute AT that node: a RangeStmt lives in its loop-head block but
// carries its whole Body subtree, which the CFG already splits into body
// blocks — visiting it here would misattribute every body event to the
// head (and double-count it).
func walInspect(n ast.Node, visit func(ast.Node) bool) {
	if rng, ok := n.(*ast.RangeStmt); ok {
		ast.Inspect(rng.X, visit)
		if rng.Tok == token.ASSIGN {
			if rng.Key != nil {
				ast.Inspect(rng.Key, visit)
			}
			if rng.Value != nil {
				ast.Inspect(rng.Value, visit)
			}
		}
		return
	}
	ast.Inspect(n, visit)
}

// walDurableTarget resolves an lvalue (or delete target) to a durable
// field, walking through index/deref wrappers: `a.rounds[r] = rs` and
// `rs.fragments[p] = f` both land on their owning field selection.
func walDurableTarget(pkg *Package, e ast.Expr) (need int, desc string, ok bool) {
	for {
		switch x := unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			s, selOK := pkg.Info.Selections[x]
			if !selOK {
				return 0, "", false
			}
			named, namedOK := derefType(s.Recv()).(*types.Named)
			if !namedOK {
				return 0, "", false
			}
			fields, tOK := walDurableFields[named.Obj().Name()]
			if !tOK {
				return 0, "", false
			}
			n, fOK := fields[x.Sel.Name]
			if !fOK {
				return 0, "", false
			}
			return n, named.Obj().Name() + "." + x.Sel.Name, true
		default:
			return 0, "", false
		}
	}
}

func walIntMapEqual(a, b map[*types.Func]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func walMutMapEqual(a, b map[*types.Func][]walMut) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}
