package lint

import (
	"go/ast"
	"path/filepath"
)

// ClockDisc enforces the clock-injection discipline that keeps the
// aggregator testable and recoverable: all time flows through the
// injectable core.Clock (FakeClock in tests, restamping during
// recovery), so any direct call into package time's clock surface inside
// internal/core or the cmd binaries bypasses the seam — a FakeClock test
// would silently run on wall time, and recovery restamping would race the
// real clock. clock.go is the one sanctioned implementation file (the
// systemClock behind core.SystemClock) and is exempt.
//
// Purely syntactic, complementing the deeper analyzers: replaypure scopes
// wall-clock reads to replay-reachable code module-wide; clockdisc covers
// the whole core/cmd surface including timers and sleeps that never reach
// replay. Constructors like time.Date and conversions like time.Unix are
// allowed — they compute with time values rather than reading the clock.
type ClockDisc struct{}

func (ClockDisc) Name() string { return "clockdisc" }
func (ClockDisc) Doc() string {
	return "flag direct wall-clock and timer calls in internal/core and cmd that bypass the injectable core.Clock"
}

// clockSurface is package time's ambient-clock API: readings, sleeps, and
// timer constructors.
var clockSurface = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

func (ClockDisc) Run(pkg *Package, r *Reporter) {
	if pkg.Path != "deta/internal/core" && !pathIn(pkg.Path, "deta/cmd") {
		return
	}
	for _, file := range pkg.Files {
		pos := pkg.Fset.Position(file.Pos())
		if filepath.Base(pos.Filename) == "clock.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockSurface[fn.Name()] {
				return true
			}
			r.Reportf(call.Pos(),
				"direct wall-clock call time.%s bypasses the injectable core.Clock (FakeClock tests and recovery restamping break)",
				fn.Name())
			return true
		})
	}
}
