package lint

// sarif.go: SARIF 2.1.0 output for CI code-scanning integration
// (GitHub's upload-sarif action and any SARIF-aware viewer). Only the
// subset of the schema the findings need is modeled — one run, one tool,
// rules from the analyzer suite, one result per finding — and only the
// standard library is used.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
)

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// MarshalSARIF renders findings as an indented SARIF 2.1.0 document. The
// rule table is the union of the supplied analyzer suite and any analyzer
// names appearing in the findings (so pseudo-analyzers like "lintignore"
// always have a rule to reference), sorted by ID. File paths become
// root-relative forward-slash URIs; absolute paths outside root pass
// through unchanged rather than lying about the layout.
func MarshalSARIF(root string, analyzers []Analyzer, findings []Finding) ([]byte, error) {
	docs := map[string]string{}
	for _, a := range analyzers {
		docs[a.Name()] = a.Doc()
	}
	for _, f := range findings {
		if _, ok := docs[f.Analyzer]; !ok {
			docs[f.Analyzer] = "finding reported by " + f.Analyzer
		}
	}
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rules := make([]sarifRule, 0, len(ids))
	for _, id := range ids {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: docs[id]}})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.File
		if rel, err := filepath.Rel(root, f.File); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}

	doc := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "deta-lint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&doc, "", "  ")
}

// WriteSARIF marshals and writes the document to path.
func WriteSARIF(path, root string, analyzers []Analyzer, findings []Finding) error {
	data, err := MarshalSARIF(root, analyzers, findings)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// hasDotDotPrefix reports whether a relative path escapes its base.
func hasDotDotPrefix(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
