package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags loop bodies that make map iteration order observable in
// packages where bit-identical results are a protocol requirement: the
// aggregators must fuse identically across parties, and crash-recovery
// replay must reproduce the exact pre-crash state (PR 3's chaos test
// asserts bit-identical models). Go randomizes map iteration order per
// run, so any of the following inside `for ... range m` over a map is a
// nondeterminism bug unless proven otherwise:
//
//   - appending to a slice declared outside the loop (unless the slice is
//     passed to a sort.* / slices.* call later in the same function — the
//     collect-then-sort idiom is the blessed fix);
//   - compound accumulation (+= -= *= /=) into a float declared outside
//     the loop (float addition is not associative, so the sum's bits
//     depend on visit order);
//   - writing journal records (Journal.Append/AppendNoSync/Compact or the
//     aggregator's logEvent* helpers) — the WAL's record order would then
//     differ between the original run and any re-execution.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }
func (MapOrder) Doc() string {
	return "flag order-dependent accumulation or journal writes inside map iteration"
}

// mapOrderScope lists the packages whose outputs must be bit-deterministic.
var mapOrderScope = []string{
	"deta/internal/core",
	"deta/internal/agg",
	"deta/internal/journal",
	"deta/internal/tensor",
	"deta/internal/fl",
	"deta/internal/rng",
}

// journalWriteMethods are order-sensitive sinks: appending to the WAL.
var journalWriteMethods = map[string]bool{
	"Append": true, "AppendNoSync": true, "Compact": true,
	"logEvent": true, "logEventDurable": true, "logEventAdvisory": true,
	"logFragmentDurable": true,
}

func (MapOrder) Run(pkg *Package, r *Reporter) {
	if !pathIn(pkg.Path, mapOrderScope...) {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkMapOrderFunc(pkg, r, fn)
			return true
		})
	}
}

func checkMapOrderFunc(pkg *Package, r *Reporter, fn *ast.FuncDecl) {
	sorted := sortedExprs(pkg, fn)
	ast.Inspect(fn, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pkg, rng) {
			return true
		}
		checkMapRangeBody(pkg, r, rng, sorted)
		return true
	})
}

// sortedExprs collects the (printed) first arguments of every sort.* and
// slices.* call in fn: slices that get sorted somewhere in the function
// are exempt from the append rule.
func sortedExprs(pkg *Package, fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
			out[types.ExprString(call.Args[0])] = true
		}
		return true
	})
	return out
}

func isMapRange(pkg *Package, rng *ast.RangeStmt) bool {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkMapRangeBody(pkg *Package, r *Reporter, rng *ast.RangeStmt, sorted map[string]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			if st != rng && isMapRange(pkg, st) {
				return false // nested map range reports its own findings
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pkg, r, rng, st, sorted)
		case *ast.CallExpr:
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok && journalWriteMethods[sel.Sel.Name] {
				if isJournalWrite(pkg, sel) {
					r.Reportf(st.Pos(),
						"journal write %s.%s inside map iteration: WAL record order becomes nondeterministic, breaking replay",
						types.ExprString(sel.X), sel.Sel.Name)
				}
			}
		}
		return true
	})
}

func checkMapRangeAssign(pkg *Package, r *Reporter, rng *ast.RangeStmt, st *ast.AssignStmt, sorted map[string]bool) {
	// x = append(x, ...) with x from outside the loop.
	if st.Tok == token.ASSIGN && len(st.Rhs) == 1 {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
				target := types.ExprString(call.Args[0])
				if target == types.ExprString(st.Lhs[0]) && declaredOutside(pkg, st.Lhs[0], rng) && !sorted[target] {
					r.Reportf(st.Pos(),
						"append to %s inside map iteration: element order is nondeterministic (collect then sort, or iterate sorted keys)",
						target)
				}
			}
		}
	}
	// Float compound accumulation: sum += v and friends.
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := st.Lhs[0]
		tv, ok := pkg.Info.Types[lhs]
		if !ok || tv.Type == nil {
			return
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			if declaredOutside(pkg, lhs, rng) {
				r.Reportf(st.Pos(),
					"float accumulation into %s inside map iteration: float addition is order-dependent, so the result is not bit-deterministic",
					types.ExprString(lhs))
			}
		}
	}
}

// declaredOutside reports whether the assignment target lives outside the
// range statement (a selector or index rooted outside, or an ident whose
// declaration precedes the loop). Targets created inside the loop body are
// per-iteration and harmless.
func declaredOutside(pkg *Package, expr ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch x := expr.(type) {
		case *ast.SelectorExpr:
			expr = x.X
			continue
		case *ast.IndexExpr:
			expr = x.X
			continue
		case *ast.StarExpr:
			expr = x.X
			continue
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			if obj == nil {
				return true
			}
			return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		default:
			return true
		}
	}
}

// isJournalWrite reports whether sel is a WAL write: a method on a type
// named Journal, or one of the aggregator's logEvent* helpers (matched by
// name so fixtures and future wrappers are covered without importing the
// journal package here).
func isJournalWrite(pkg *Package, sel *ast.SelectorExpr) bool {
	name := sel.Sel.Name
	if name == "logEvent" || name == "logEventDurable" || name == "logEventAdvisory" || name == "logFragmentDurable" {
		return true
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Journal"
}
