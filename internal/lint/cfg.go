package lint

// cfg.go builds a per-function control-flow graph over go/ast: the
// statement-level skeleton the dataflow analyzers (keytaint, lockregion)
// solve over. Precision goals are modest and explicit — blocks are
// sequences of statements/conditions in execution order, with edges for
// if/else, for/range, switch/type-switch/select (including fallthrough),
// break/continue (labeled or not), goto, return, and panic-style
// terminators. Deferred calls are collected separately: they run at
// function exit, so they never end a region mid-function.
//
// Function literals are opaque to the enclosing function's graph; each
// literal gets its own CFG (see funcUnits in summary.go).

import (
	"go/ast"
)

// cfgBlock is one straight-line run of nodes. nodes holds statements and,
// for branch heads, the condition expressions, in execution order.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// cfg is the graph for one function body.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock // virtual: every return/panic/fall-off-end edges here
	blocks []*cfgBlock
	defers []*ast.CallExpr // deferred calls, in registration order
}

type gotoFix struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	c *cfg

	breaks    []*cfgBlock          // innermost-last break targets
	continues []*cfgBlock          // innermost-last continue targets
	labelBrk  map[string]*cfgBlock // label -> break target
	labelCont map[string]*cfgBlock // label -> continue target
	labels    map[string]*cfgBlock // label -> labeled statement's block (goto)
	gotos     []gotoFix
	pending   string // label awaiting the loop/switch it names
}

// buildCFG constructs the graph for a function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{
		c:         &cfg{},
		labelBrk:  make(map[string]*cfgBlock),
		labelCont: make(map[string]*cfgBlock),
		labels:    make(map[string]*cfgBlock),
	}
	b.c.entry = b.newBlock()
	b.c.exit = b.newBlock()
	end := b.stmtList(body.List, b.c.entry)
	edge(end, b.c.exit) // implicit return at the end of the body
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			edge(g.from, target)
		} else {
			edge(g.from, b.c.exit) // unresolvable goto: be conservative
		}
	}
	return b.c
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt wires one statement into the graph starting at cur and returns the
// block where control continues afterwards.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	// Any statement other than a labeled loop/switch consumes a pending
	// label as a plain goto target.
	switch s.(type) {
	case *ast.LabeledStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
	default:
		b.pending = ""
	}

	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(st.List, cur)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		edge(cur, lb)
		b.labels[st.Label.Name] = lb
		b.pending = st.Label.Name
		out := b.stmt(st.Stmt, lb)
		b.pending = ""
		return out

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, st)
		edge(cur, b.c.exit)
		return b.newBlock() // dead continuation

	case *ast.BranchStmt:
		switch st.Tok.String() {
		case "break":
			if target := b.branchTarget(st, b.breaks, b.labelBrk); target != nil {
				edge(cur, target)
			} else {
				edge(cur, b.c.exit)
			}
			return b.newBlock()
		case "continue":
			if target := b.branchTarget(st, b.continues, b.labelCont); target != nil {
				edge(cur, target)
			} else {
				edge(cur, b.c.exit)
			}
			return b.newBlock()
		case "goto":
			b.gotos = append(b.gotos, gotoFix{from: cur, label: st.Label.Name})
			return b.newBlock()
		default: // fallthrough: handled by the switch builder
			return cur
		}

	case *ast.IfStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		cur.nodes = append(cur.nodes, st.Cond)
		then := b.newBlock()
		edge(cur, then)
		thenEnd := b.stmt(st.Body, then)
		join := b.newBlock()
		edge(thenEnd, join)
		if st.Else != nil {
			els := b.newBlock()
			edge(cur, els)
			elseEnd := b.stmt(st.Else, els)
			edge(elseEnd, join)
		} else {
			edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		label := b.pending
		b.pending = ""
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		head := b.newBlock()
		edge(cur, head)
		if st.Cond != nil {
			head.nodes = append(head.nodes, st.Cond)
		}
		body := b.newBlock()
		edge(head, body)
		exitB := b.newBlock()
		if st.Cond != nil {
			edge(head, exitB)
		}
		post := b.newBlock()
		b.pushLoop(label, exitB, post)
		bodyEnd := b.stmt(st.Body, body)
		b.popLoop(label)
		edge(bodyEnd, post)
		if st.Post != nil {
			post.nodes = append(post.nodes, st.Post)
		}
		edge(post, head)
		return exitB

	case *ast.RangeStmt:
		label := b.pending
		b.pending = ""
		head := b.newBlock()
		edge(cur, head)
		head.nodes = append(head.nodes, st) // carries X and Key/Value binding
		body := b.newBlock()
		edge(head, body)
		exitB := b.newBlock()
		edge(head, exitB)
		b.pushLoop(label, exitB, head)
		bodyEnd := b.stmt(st.Body, body)
		b.popLoop(label)
		edge(bodyEnd, head)
		return exitB

	case *ast.SwitchStmt:
		label := b.pending
		b.pending = ""
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		if st.Tag != nil {
			cur.nodes = append(cur.nodes, st.Tag)
		}
		return b.caseClauses(label, st.Body.List, cur, nil)

	case *ast.TypeSwitchStmt:
		label := b.pending
		b.pending = ""
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		return b.caseClauses(label, st.Body.List, cur, st.Assign)

	case *ast.SelectStmt:
		label := b.pending
		b.pending = ""
		join := b.newBlock()
		b.pushSwitch(label, join)
		for _, cc := range st.Body.List {
			comm := cc.(*ast.CommClause)
			blk := b.newBlock()
			edge(cur, blk)
			if comm.Comm != nil {
				blk = b.stmt(comm.Comm, blk)
			}
			end := b.stmtList(comm.Body, blk)
			edge(end, join)
		}
		if len(st.Body.List) == 0 {
			edge(cur, join)
		}
		b.popSwitch(label)
		return join

	case *ast.DeferStmt:
		cur.nodes = append(cur.nodes, st)
		b.c.defers = append(b.c.defers, st.Call)
		return cur

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, st)
		if isTerminatorCall(st.X) {
			edge(cur, b.c.exit)
			return b.newBlock()
		}
		return cur

	default:
		// Assignments, declarations, sends, inc/dec, go, empty: straight-line.
		cur.nodes = append(cur.nodes, st)
		return cur
	}
}

// caseClauses wires a (type-)switch: every case head is reachable from
// cur; fallthrough chains a case's end into the next case's body.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, cur *cfgBlock, assign ast.Stmt) *cfgBlock {
	join := b.newBlock()
	b.pushSwitch(label, join)
	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		head := b.newBlock()
		edge(cur, head)
		if assign != nil {
			head.nodes = append(head.nodes, assign)
		}
		for _, e := range cc.List {
			head.nodes = append(head.nodes, e)
		}
		edge(head, bodies[i])
		end := b.stmtList(cc.Body, bodies[i])
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			edge(end, bodies[i+1])
		} else {
			edge(end, join)
		}
	}
	if !hasDefault {
		edge(cur, join)
	}
	b.popSwitch(label)
	return join
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		b.labelBrk[label] = brk
		b.labelCont[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if label != "" {
		delete(b.labelBrk, label)
		delete(b.labelCont, label)
	}
}

func (b *cfgBuilder) pushSwitch(label string, brk *cfgBlock) {
	b.breaks = append(b.breaks, brk)
	if label != "" {
		b.labelBrk[label] = brk
	}
}

func (b *cfgBuilder) popSwitch(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if label != "" {
		delete(b.labelBrk, label)
	}
}

func (b *cfgBuilder) branchTarget(st *ast.BranchStmt, stack []*cfgBlock, byLabel map[string]*cfgBlock) *cfgBlock {
	if st.Label != nil {
		return byLabel[st.Label.Name]
	}
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// isTerminatorCall recognizes calls that never return: panic and the
// conventional process-exit family. Syntactic on purpose — the builder has
// no type info, and a shadowed `panic` in this tree would itself be a bug.
func isTerminatorCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkg, ok := fun.X.(*ast.Ident); ok {
			if pkg.Name == "os" && name == "Exit" {
				return true
			}
			if pkg.Name == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
				name == "Panic" || name == "Panicf" || name == "Panicln") {
				return true
			}
		}
	}
	return false
}
