package lint

import (
	"go/ast"
	"go/types"
)

// ErrDiscipline flags silently discarded errors from the durability
// surface in internal/journal and internal/core: Sync, Close, and Commit
// on anything, plus Write on *os.File. The WAL's commit-before-ack
// guarantee is only as strong as its error handling — a dropped fsync or
// Close error acknowledges state the disk never accepted, which a crash
// then quietly loses.
//
// Deliberate discards must be explicit: assign to blank (`_ = f.Close()`)
// or annotate with //lint:ignore errdiscipline <reason>. Bare expression
// statements and bare `defer f.Close()` are findings.
type ErrDiscipline struct{}

func (ErrDiscipline) Name() string { return "errdiscipline" }
func (ErrDiscipline) Doc() string {
	return "flag discarded Sync/Close/Write/Commit errors on the journal/recovery path"
}

var errDisciplineScope = []string{
	"deta/internal/journal",
	"deta/internal/core",
}

// errDisciplineAlways are method names whose error result must never be
// dropped regardless of receiver.
var errDisciplineAlways = map[string]bool{
	"Sync": true, "Close": true, "Commit": true,
}

// errDisciplineFileOnly are method names checked only on *os.File (an
// io.Writer wrapper like bytes.Buffer or hash.Hash documents its Write as
// infallible, so flagging every Write would drown the signal).
var errDisciplineFileOnly = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true,
}

func (ErrDiscipline) Run(pkg *Package, r *Reporter) {
	if !pathIn(pkg.Path, errDisciplineScope...) {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := "discarded"
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
				kind = "deferred and discarded"
			case *ast.GoStmt:
				call = st.Call
				kind = "discarded in goroutine"
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if !errDisciplineAlways[name] && !errDisciplineFileOnly[name] {
				return true
			}
			if !returnsError(pkg, call) {
				return true
			}
			if errDisciplineFileOnly[name] && !errDisciplineAlways[name] && !isOSFileRecv(pkg, sel) {
				return true
			}
			r.Reportf(call.Pos(),
				"%s error from %s.%s: a dropped durability error acknowledges state the disk may not hold (check it, or assign to _ with a reason)",
				kind, types.ExprString(sel.X), name)
			return true
		})
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	return typeHasError(tv.Type)
}

func typeHasError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// isOSFileRecv reports whether the selector's receiver is an *os.File.
func isOSFileRecv(pkg *Package, sel *ast.SelectorExpr) bool {
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
