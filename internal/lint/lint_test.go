package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture packages under testdata/src/<name>/ pose as scoped deta import
// paths so the path-gated analyzers apply to them. Expected findings are
// `// want <analyzer>` markers on the offending lines; the test fails in
// both directions (missing finding, unexpected finding).

var wantRe = regexp.MustCompile(`// want ([a-z]+)`)

type mark struct {
	file     string // base name
	line     int
	analyzer string
}

// wantMarks scans a fixture directory for `// want <analyzer>` markers.
func wantMarks(t *testing.T, dir string) map[mark]bool {
	t.Helper()
	out := map[mark]bool{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				out[mark{e.Name(), line, m[1]}] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(out) == 0 {
		t.Fatalf("fixture %s has no want markers", dir)
	}
	return out
}

func fixturePkg(t *testing.T, l *Loader, name, pose string) *Package {
	t.Helper()
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), pose)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func TestAnalyzerFixtures(t *testing.T) {
	loader := NewLoader()
	cases := []struct {
		fixture  string
		pose     string
		analyzer Analyzer
	}{
		{"cryptorand", "deta/internal/rng", CryptoRand{}},
		{"maporder", "deta/internal/core", MapOrder{}},
		{"errdiscipline", "deta/internal/journal", ErrDiscipline{}},
		{"ctxplumb", "deta/internal/core", CtxPlumb{}},
		{"mutexcopy", "deta/internal/core", MutexCopy{}},
		{"keytaint", "deta/internal/core", &KeyTaint{}},
		{"lockregion", "deta/internal/core", &LockRegion{}},
		{"ctxflow", "deta/internal/core", &CtxFlow{}},
		{"lockorder", "deta/internal/core", &LockOrder{}},
		{"goleak", "deta/internal/core", &GoLeak{}},
		{"allocfree", "deta/internal/core", &AllocFree{}},
		{"waldisc", "deta/internal/core", WalDisc{}},
		{"replaypure", "deta/internal/core", &ReplayPure{}},
		{"clockdisc", "deta/internal/core", ClockDisc{}},
		{"suppress", "deta/internal/journal", ErrDiscipline{}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.fixture, func(t *testing.T) {
			t.Parallel() // the shared loader must be race-clean
			pkg := fixturePkg(t, loader, tc.fixture, tc.pose)
			got := map[mark]bool{}
			for _, f := range Run([]*Package{pkg}, []Analyzer{tc.analyzer}) {
				if f.Analyzer == "lintignore" {
					continue // asserted by TestSuppressionDirectives
				}
				got[mark{filepath.Base(f.File), f.Line, f.Analyzer}] = true
			}
			want := wantMarks(t, filepath.Join("testdata", "src", tc.fixture))
			for m := range want {
				if !got[m] {
					t.Errorf("missing finding: %s:%d [%s]", m.file, m.line, m.analyzer)
				}
			}
			for m := range got {
				if !want[m] {
					t.Errorf("unexpected finding: %s:%d [%s]", m.file, m.line, m.analyzer)
				}
			}
		})
	}
}

// TestSuppressionDirectives pins the two directive behaviors the fixture
// markers cannot express: the well-formed ignore actually removes its
// finding, and the malformed ignore (no reason) is reported as a
// "lintignore" finding at the directive's own line.
func TestSuppressionDirectives(t *testing.T) {
	loader := NewLoader()
	pkg := fixturePkg(t, loader, "suppress", "deta/internal/journal")
	findings := Run([]*Package{pkg}, []Analyzer{ErrDiscipline{}})

	src, err := os.ReadFile(filepath.Join("testdata", "src", "suppress", "suppress.go"))
	if err != nil {
		t.Fatal(err)
	}
	wellFormed, malformed := 0, 0
	for i, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "//lint:ignore errdiscipline" {
			malformed = i + 1
		} else if strings.HasPrefix(trimmed, "//lint:ignore errdiscipline ") {
			wellFormed = i + 1
		}
	}
	if wellFormed == 0 || malformed == 0 {
		t.Fatalf("fixture lost its directives (well-formed at %d, malformed at %d)", wellFormed, malformed)
	}

	var lintignore []Finding
	for _, f := range findings {
		switch f.Analyzer {
		case "lintignore":
			lintignore = append(lintignore, f)
		case "errdiscipline":
			if f.Line == wellFormed+1 {
				t.Errorf("finding at line %d survived the well-formed ignore above it", f.Line)
			}
		}
	}
	if len(lintignore) != 1 {
		t.Fatalf("got %d lintignore findings, want exactly 1: %v", len(lintignore), lintignore)
	}
	if lintignore[0].Line != malformed {
		t.Errorf("lintignore finding at line %d, want %d (the malformed directive)", lintignore[0].Line, malformed)
	}
}

// TestMapOrderReplayPureDedup pins the one-defect-one-finding rule: the
// replaypure fixture's accumulate loop is an order-dependent float fold
// inside a replay-reachable function, so syntactic maporder and
// reachability-scoped replaypure both hit the same line — the driver must
// keep only the replaypure finding there, while maporder findings on
// lines replaypure does not cover (the unreachable function) survive.
func TestMapOrderReplayPureDedup(t *testing.T) {
	loader := NewLoader()
	pkg := fixturePkg(t, loader, "replaypure", "deta/internal/core")
	findings := Run([]*Package{pkg}, []Analyzer{MapOrder{}, &ReplayPure{}})

	byLine := map[int][]string{}
	for _, f := range findings {
		if filepath.Base(f.File) == "replaypure.go" || filepath.Base(f.File) == "replaypure_clean.go" {
			byLine[f.Line] = append(byLine[f.Line], f.Analyzer)
		}
	}
	// Locate the accumulate-loop line (want replaypure, inside the map
	// range) and the unreachable fold in the clean file.
	accLine := fixtureLine(t, "replaypure", "replaypure.go", "n.sum += v")
	cleanLine := fixtureLine(t, "replaypure", "replaypure_clean.go", "n.sum += v")
	if got := byLine[accLine]; len(got) != 1 || got[0] != "replaypure" {
		t.Errorf("line %d: got analyzers %v, want exactly [replaypure] (maporder duplicate must be dropped)", accLine, got)
	}
	if got := byLine[cleanLine]; len(got) != 1 || got[0] != "maporder" {
		t.Errorf("clean-file line %d: got analyzers %v, want exactly [maporder] (replaypure does not reach it)", cleanLine, got)
	}
}

// fixtureLine returns the first line of the fixture file containing
// needle.
func fixtureLine(t *testing.T, fixture, file, needle string) int {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "src", fixture, file))
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, needle) {
			return i + 1
		}
	}
	t.Fatalf("%s/%s: %q not found", fixture, file, needle)
	return 0
}

// TestLoadSelf exercises the go-list Load path end to end: this package
// must load, type-check, and come back clean under the full suite.
func TestLoadSelf(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().Load(wd, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "deta/internal/lint" {
		t.Fatalf("loaded %+v, want exactly deta/internal/lint", pkgs)
	}
	if findings := Run(pkgs, All()); len(findings) != 0 {
		t.Fatalf("lint package is not lint-clean: %v", findings)
	}
}

// TestLockOrderRealTreeEdge pins the class machinery to the real tree:
// the aggregator calls into the journal while holding its own mutex, and
// journal methods take the journal mutex, so the order graph must contain
// the edge core.AggregatorNode.mu -> journal.Journal.mu. The edge is
// legitimate (it is the sanctioned WAL-commit order) — the analyzer's job
// is to guarantee the reverse order never appears and closes a cycle.
func TestLockOrderRealTreeEdge(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().Load(filepath.Join(wd, "..", ".."),
		"deta/internal/core", "deta/internal/journal")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	lo := &LockOrder{}
	lo.Prepare(pkgs)
	var got []string
	for _, e := range lo.edges {
		got = append(got, e.from+" -> "+e.to)
		if e.from == "core.AggregatorNode.mu" && e.to == "journal.Journal.mu" {
			return
		}
	}
	t.Fatalf("edge core.AggregatorNode.mu -> journal.Journal.mu not in graph; have %v", got)
}
