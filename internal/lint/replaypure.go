package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// replaypure guards the other half of the crash-safety contract: recovery
// must rebuild the exact pre-crash aggregator state from the journal, and
// fusion must produce bit-identical tensors on every party — so the code
// transitively reachable from the replay roots (RecoverAggregatorNode and
// the WAL record handlers) and from the fusion kernels must be a pure
// function of its inputs. Prepare computes that reachable set once over
// the whole module via the call graph; Run then flags every
// nondeterminism source inside it:
//
//   - wall-clock reads (time.Now / time.Since / time.Until) outside
//     clock.go, the one file allowed to touch the real clock behind the
//     injectable core.Clock;
//   - the unseeded global math/rand source (package-level rand.Intn and
//     friends; a locally seeded *rand.Rand is fine and is how the
//     deterministic shuffle works);
//   - goroutine spawns, whose completion order the replayed run cannot
//     reproduce;
//   - map iteration whose order can reach output — the syntactic maporder
//     checks, rerun here under reachability scoping (the driver then
//     aliases overlapping maporder findings to replaypure so one defect
//     yields one finding).
//
// Call edges stop at deta/internal/parallel (deterministic by
// construction: For joins all workers and the index partition is fixed)
// and deta/internal/journal (the thing being replayed, not a replay
// consumer). Edges through function literals and `go` statements are
// followed — a closure spawned during replay is still replay code.
type ReplayPure struct {
	reach map[*types.Func]string // reachable function -> root it was reached from
}

func (*ReplayPure) Name() string { return "replaypure" }
func (*ReplayPure) Doc() string {
	return "flag nondeterminism (wall clock, global rand, goroutines, map order) reachable from replay roots and fusion kernels"
}

// replayRootNames keys the roots by package: the recovery entry points in
// core, and every fusion kernel (the Aggregate methods) in agg.
var replayRootNames = map[string]map[string]bool{
	"deta/internal/core": {
		"RecoverAggregatorNode": true,
		"applyRecord":           true,
		"restoreSnapshot":       true,
	},
	"deta/internal/agg": {
		"Aggregate": true,
	},
}

// replayEdgeInto reports whether the call graph follows edges into the
// package at path.
func replayEdgeInto(path string) bool {
	return pathIn(path, "deta") &&
		path != "deta/internal/parallel" &&
		path != "deta/internal/journal"
}

// Prepare builds the module call graph restricted to deta packages and
// BFS-marks everything reachable from the roots. Roots are discovered in
// package/file/declaration order and the queue preserves it, so the
// root-provenance recorded for each function is deterministic.
func (a *ReplayPure) Prepare(pkgs []*Package) {
	a.reach = map[*types.Func]string{}
	adj := map[*types.Func][]*types.Func{}
	var queue []*types.Func
	for _, pkg := range pkgs {
		rootSet := replayRootNames[pkg.Path]
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				if rootSet[fd.Name.Name] {
					if _, seen := a.reach[obj]; !seen {
						a.reach[obj] = fd.Name.Name
						queue = append(queue, obj)
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(pkg, call)
					if callee == nil || callee.Pkg() == nil || !replayEdgeInto(callee.Pkg().Path()) {
						return true
					}
					adj[obj] = append(adj[obj], callee)
					return true
				})
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range adj[fn] {
			if _, seen := a.reach[callee]; seen {
				continue
			}
			a.reach[callee] = a.reach[fn]
			queue = append(queue, callee)
		}
	}
}

// Run checks each replay-reachable declaration in pkg. a.reach is written
// only by Prepare (sequential, before the fan-out) and read here, so
// concurrent per-package Runs are safe.
func (a *ReplayPure) Run(pkg *Package, r *Reporter) {
	if !pathIn(pkg.Path, "deta") {
		return
	}
	for _, file := range pkg.Files {
		pos := pkg.Fset.Position(file.Pos())
		inClockFile := filepath.Base(pos.Filename) == "clock.go"
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			root, reachable := a.reach[obj]
			if obj == nil || !reachable {
				continue
			}
			a.checkFunc(pkg, r, fd, root, inClockFile)
		}
	}
}

func (a *ReplayPure) checkFunc(pkg *Package, r *Reporter, fd *ast.FuncDecl, root string, inClockFile bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			r.Reportf(v.Pos(),
				"goroutine spawned in %s (replay-reachable from %s): completion order is not reproducible on replay",
				fd.Name.Name, root)
		case *ast.CallExpr:
			fn := calleeFunc(pkg, v)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if inClockFile {
					return true
				}
				switch fn.Name() {
				case "Now", "Since", "Until":
					r.Reportf(v.Pos(),
						"wall-clock read time.%s in %s (replay-reachable from %s): replay cannot reproduce it — plumb core.Clock instead",
						fn.Name(), fd.Name.Name, root)
				}
			case "math/rand", "math/rand/v2":
				// Package-level calls draw from the shared global source;
				// constructing a seeded local source is the sanctioned path.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					switch fn.Name() {
					case "New", "NewSource", "NewZipf":
					default:
						r.Reportf(v.Pos(),
							"global math/rand call rand.%s in %s (replay-reachable from %s): unseeded source breaks bit-identical replay — use a seeded *rand.Rand",
							fn.Name(), fd.Name.Name, root)
					}
				}
			}
		}
		return true
	})
	// Map-iteration order reaching output is the same defect maporder
	// catches syntactically; rerun those checks under this analyzer's
	// name so the finding carries replay provenance.
	checkMapOrderFunc(pkg, r, fd)
}
