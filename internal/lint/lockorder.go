package lint

// LockOrder lifts the per-function lock-effect machinery into a
// module-wide lock-acquisition-ORDER graph and reports cycles as
// potential deadlocks. Nodes are lock *classes* — a mutex identified by
// its owning named type and field path ("core.AggregatorNode.mu") or, for
// package-level mutexes, by "pkg.var" — so ordering is tracked across
// instances, which is exactly the granularity deadlock discipline needs:
// two goroutines locking two *instances* of the same class pair in
// opposite orders deadlock just as surely as two instances of different
// classes. Locals have no class and are invisible here (their ordering is
// not observable across functions).
//
// Edges mean "class B was acquired while some lock of class A was held on
// at least one CFG path". They come from two sources, both built on the
// PR 8 fixpoint plumbing:
//
//   - direct: a Lock/RLock statement executed with a non-empty may-held
//     set (held sets propagate through the CFG like lockregion's, but
//     keyed by class, with helper effects applied via a class-level net
//     lock-effect summary — computeClassFX);
//   - transitive: a call to a function whose may-acquire summary
//     (computeLockAcq, a fixpoint over sync call edges at any depth) says
//     it can take class B — the edge anchors at the call site with the
//     callee recorded as provenance.
//
// Cycles (Tarjan SCCs with an internal edge, including self-loops: Go
// mutexes are not reentrant) are reported once each, anchored at the
// earliest edge in source order, with every edge's acquisition site,
// enclosing function, and held-since provenance in the message. A mere
// edge is NOT a finding — consistent A-then-B ordering everywhere is the
// discipline this analyzer exists to protect.
import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

type LockOrder struct {
	once    sync.Once
	classFX map[*types.Func][]classFX
	acq     map[*types.Func]map[string]acqWitness

	// edges is the deduped module-wide order graph in deterministic
	// (source) order; reports maps each cycle finding to the package of
	// its anchor edge. Both are written once in Prepare and read-only
	// afterwards, so the per-package Run fan-out needs no locking.
	edges   []lockEdge
	reports map[*Package][]lockReport
}

// lockEdge records one "to acquired while from held" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos // acquisition site of `to` (or the call reaching it)
	heldPos  token.Pos // acquisition site that put `from` in the held set
	fn       string    // enclosing function, for the message
	via      string    // callee name for transitive edges, "" for direct
	pkg      *Package
}

type lockReport struct {
	pos token.Pos
	msg string
}

func (*LockOrder) Name() string { return "lockorder" }
func (*LockOrder) Doc() string {
	return "build the module-wide lock-acquisition-order graph and flag cycles as potential deadlocks"
}

// Prepare computes the class-level summaries, collects the order graph
// over every function body in the module, and precomputes the cycle
// reports. Run falls back to single-package preparation when the
// framework did not call it (fixture tests).
func (a *LockOrder) Prepare(pkgs []*Package) {
	a.once.Do(func() {
		var units []*funcUnit
		for _, pkg := range pkgs {
			units = append(units, funcUnits(pkg)...)
		}
		a.classFX = computeClassFX(units)
		a.acq = computeLockAcq(units)
		seen := make(map[[2]string]bool)
		for _, u := range units {
			a.collectEdges(u, seen)
		}
		a.buildReports()
	})
}

func (a *LockOrder) Run(pkg *Package, r *Reporter) {
	a.Prepare([]*Package{pkg})
	for _, rep := range a.reports[pkg] {
		r.Reportf(rep.pos, "%s", rep.msg)
	}
}

// collectEdges runs the may-held class propagation over one function body
// and appends the (from, to) pairs observed at acquisition points. Edge
// dedup keeps the first witness in source order — units arrive in load
// order and blocks in allocation order, so the result is deterministic.
func (a *LockOrder) collectEdges(u *funcUnit, seen map[[2]string]bool) {
	body := u.body()
	if body == nil {
		return
	}
	c := buildCFG(body)
	transfer := func(f lockFact, n ast.Node) { a.classTransfer(u.pkg, f, n) }
	in := solveForward(c, lockFact{}, transfer)
	add := func(f lockFact, to string, pos token.Pos, via string) {
		for _, from := range sortedFactKeys(f) {
			key := [2]string{from, to}
			if seen[key] {
				continue
			}
			seen[key] = true
			a.edges = append(a.edges, lockEdge{
				from: from, to: to, pos: pos, heldPos: f[from],
				fn: fnDisplayName(u), via: via, pkg: u.pkg,
			})
		}
	}
	for _, blk := range reachableBlocks(c, in) {
		f := cloneFact(in[blk])
		for _, n := range blk.nodes {
			if len(f) > 0 {
				a.edgesAtNode(u.pkg, f, n, add)
			}
			transfer(f, n)
		}
	}
}

// edgesAtNode emits order edges for one CFG node given the current held
// set: direct Lock/RLock statements, and calls to functions whose
// may-acquire summary is non-empty. Goroutine spawns run on their own
// stack (lock order is a per-goroutine property) and deferred calls run
// at exit, where the inline held set no longer applies — both skipped,
// mirroring lockregion.
func (a *LockOrder) edgesAtNode(pkg *Package, f lockFact, n ast.Node, add func(f lockFact, to string, pos token.Pos, via string)) {
	if st, ok := n.(*ast.ExprStmt); ok {
		if class, op, ok := mutexClassOp(pkg, st.X); ok {
			if op == "Lock" || op == "RLock" {
				add(f, class, st.X.Pos(), "")
			}
			return
		}
	}
	switch n.(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		return
	}
	inspectSyncCalls(n, func(call *ast.CallExpr) {
		callee := calleeFunc(pkg, call)
		if callee == nil {
			return
		}
		set := a.acq[callee]
		if len(set) == 0 {
			return
		}
		name := callee.Name()
		if callee.Pkg() != nil && callee.Pkg() != pkg.Types {
			name = callee.Pkg().Name() + "." + name
		}
		for _, class := range sortedAcqKeys(set) {
			w := set[class]
			wp := pkg.Fset.Position(w.pos)
			via := fmt.Sprintf("%s (locks in %s at %s:%d)", name, w.fn, filepath.Base(wp.Filename), wp.Line)
			add(f, class, call.Pos(), via)
		}
	})
}

// classTransfer updates the class-keyed may-held set for one CFG node:
// direct mutex operations and net class effects of callees.
func (a *LockOrder) classTransfer(pkg *Package, f lockFact, n ast.Node) {
	if st, ok := n.(*ast.ExprStmt); ok {
		if class, op, ok := mutexClassOp(pkg, st.X); ok {
			if op == "Lock" || op == "RLock" {
				if _, held := f[class]; !held {
					f[class] = st.Pos()
				}
			} else {
				delete(f, class)
			}
			return
		}
	}
	if _, ok := n.(*ast.DeferStmt); ok {
		return // deferred releases happen at exit, not mid-function
	}
	inspectSyncCalls(n, func(call *ast.CallExpr) {
		callee := calleeFunc(pkg, call)
		if callee == nil {
			return
		}
		for _, e := range a.classFX[callee] {
			if e.acquire {
				if _, held := f[e.class]; !held {
					f[e.class] = call.Pos()
				}
			} else {
				delete(f, e.class)
			}
		}
	})
}

// buildReports finds strongly connected components of the order graph and
// renders one finding per cycle, anchored at its earliest edge.
func (a *LockOrder) buildReports() {
	a.reports = make(map[*Package][]lockReport)
	adj := make(map[string][]*lockEdge)
	nodeSet := make(map[string]bool)
	for i := range a.edges {
		e := &a.edges[i]
		adj[e.from] = append(adj[e.from], e)
		nodeSet[e.from] = true
		nodeSet[e.to] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, comp := range lockSCCs(nodes, adj) {
		inSCC := make(map[string]bool, len(comp))
		for _, n := range comp {
			inSCC[n] = true
		}
		var internal []*lockEdge
		for i := range a.edges {
			e := &a.edges[i]
			if inSCC[e.from] && inSCC[e.to] && (len(comp) > 1 || e.from == e.to) {
				internal = append(internal, e)
			}
		}
		if len(internal) == 0 {
			continue
		}
		sort.Slice(internal, func(i, j int) bool {
			pi := internal[i].pkg.Fset.Position(internal[i].pos)
			pj := internal[j].pkg.Fset.Position(internal[j].pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
		anchor := internal[0]
		cycle := lockCyclePath(anchor, adj, inSCC)
		a.reports[anchor.pkg] = append(a.reports[anchor.pkg], lockReport{
			pos: anchor.pos,
			msg: lockCycleMsg(cycle),
		})
	}
}

// lockCyclePath reconstructs one concrete cycle through the SCC starting
// with the anchor edge: a BFS (deterministic: adjacency lists are in edge
// insertion order) finds the shortest way back from anchor.to to
// anchor.from.
func lockCyclePath(anchor *lockEdge, adj map[string][]*lockEdge, inSCC map[string]bool) []*lockEdge {
	if anchor.from == anchor.to {
		return []*lockEdge{anchor}
	}
	prev := map[string]*lockEdge{anchor.to: nil}
	queue := []string{anchor.to}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == anchor.from {
			break
		}
		for _, e := range adj[n] {
			if !inSCC[e.to] {
				continue
			}
			if _, seen := prev[e.to]; seen {
				continue
			}
			prev[e.to] = e
			queue = append(queue, e.to)
		}
	}
	var back []*lockEdge
	for n := anchor.from; ; {
		e := prev[n]
		if e == nil {
			break
		}
		back = append(back, e)
		n = e.from
	}
	for i, j := 0, len(back)-1; i < j; i, j = i+1, j-1 {
		back[i], back[j] = back[j], back[i]
	}
	return append([]*lockEdge{anchor}, back...)
}

// lockCycleMsg renders a cycle with full held-set provenance per edge.
func lockCycleMsg(cycle []*lockEdge) string {
	var b strings.Builder
	b.WriteString("potential deadlock: lock-order cycle ")
	b.WriteString(cycle[0].from)
	for _, e := range cycle {
		b.WriteString(" -> ")
		b.WriteString(e.to)
	}
	for _, e := range cycle {
		b.WriteString("; ")
		b.WriteString(e.to)
		if e.via != "" {
			fmt.Fprintf(&b, " acquired via %s at %s in %s", e.via, edgePos(e, e.pos), e.fn)
		} else {
			fmt.Fprintf(&b, " acquired at %s in %s", edgePos(e, e.pos), e.fn)
		}
		fmt.Fprintf(&b, " while holding %s (held since %s)", e.from, edgePos(e, e.heldPos))
	}
	return b.String()
}

func edgePos(e *lockEdge, p token.Pos) string {
	pos := e.pkg.Fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

func sortedFactKeys(f lockFact) []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedAcqKeys(set map[string]acqWitness) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockSCCs is Tarjan's algorithm over the class graph, iterative to keep
// stack use bounded, deterministic given sorted nodes and insertion-order
// adjacency.
func lockSCCs(nodes []string, adj map[string][]*lockEdge) [][]string {
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var comps [][]string
	next := 0

	type frame struct {
		node string
		edge int // next adjacency index to explore
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{node: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			edges := adj[fr.node]
			if fr.edge < len(edges) {
				to := edges[fr.edge].to
				fr.edge++
				if _, seen := index[to]; !seen {
					index[to], low[to] = next, next
					next++
					stack = append(stack, to)
					onStack[to] = true
					work = append(work, frame{node: to})
				} else if onStack[to] && index[to] < low[fr.node] {
					low[fr.node] = index[to]
				}
				continue
			}
			// Node finished: pop, propagate lowlink, emit component.
			n := fr.node
			work = work[:len(work)-1]
			if len(work) > 0 {
				if low[n] < low[work[len(work)-1].node] {
					low[work[len(work)-1].node] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == n {
						break
					}
				}
				sort.Strings(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
