package lint

import (
	"path/filepath"
	"strings"
)

// CryptoRand forbids math/rand (v1 and v2) wherever randomness is
// security-relevant: the keyed permutation/partition derivations, the
// Paillier cryptosystem, attestation nonces and tokens, and the SEV/TDX
// platform models. The paper's privacy argument (§4.2) holds only if the
// mapper and shuffler keys and every attestation nonce come from a CSPRNG
// or the keyed HMAC stream in internal/rng — a Mersenne-Twister-style
// generator there is key recovery waiting to happen.
//
// math/rand stays legal in the transport's fault/latency *simulation*
// files and backoff jitter, where predictability is harmless and
// reproducibility under a fixed seed is the point.
type CryptoRand struct{}

func (CryptoRand) Name() string { return "cryptorand" }
func (CryptoRand) Doc() string {
	return "forbid math/rand in key-handling and attestation packages (use internal/rng or crypto/rand)"
}

// cryptoRandForbidden lists packages where any math/rand import is a
// finding.
var cryptoRandForbidden = []string{
	"deta/internal/rng",
	"deta/internal/paillier",
	"deta/internal/attest",
	"deta/internal/sev",
	"deta/internal/tdx",
	"deta/internal/core",
}

// cryptoRandSimFiles are the transport files implementing fault/latency
// simulation and jittered backoff, where seeded math/rand is deliberate.
var cryptoRandSimFiles = map[string]bool{
	"fault.go":   true,
	"latency.go": true,
	"dial.go":    true,
}

func (CryptoRand) Run(pkg *Package, r *Reporter) {
	forbidden := pathIn(pkg.Path, cryptoRandForbidden...)
	transport := pathIn(pkg.Path, "deta/internal/transport")
	if !forbidden && !transport {
		return
	}
	for _, file := range pkg.Files {
		base := filepath.Base(pkg.Fset.Position(file.Pos()).Filename)
		if transport && cryptoRandSimFiles[base] {
			continue
		}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			r.Reportf(imp.Pos(),
				"%s imports %s: security-relevant randomness must come from internal/rng (keyed HMAC stream) or crypto/rand",
				pkg.Path, path)
		}
	}
}
