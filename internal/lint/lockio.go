package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockIO flags network or disk I/O performed while a mutex is held in
// internal/core. A round's critical sections guard in-memory maps and
// must stay microsecond-scale; a dial, RPC, or file write under the lock
// couples every other party's request to one peer's disk or network
// latency — the exact convoy the fan-out layer exists to avoid. The
// analysis is per-function: a `mu.Lock()` opens a region that ends at the
// matching inline `mu.Unlock()` or, with `defer mu.Unlock()`, at the end
// of the function; calls landing in the region whose callee is an I/O
// method (net, os, internal/transport, internal/journal receivers) or a
// Dial/Redial function are reported.
//
// The deliberate exception — the WAL's commit-before-ack, which *must*
// write under the round lock — is acknowledged where it happens with
// //lint:ignore lockio and a reason.
type LockIO struct{}

func (LockIO) Name() string { return "lockio" }
func (LockIO) Doc() string {
	return "flag network/disk I/O while holding a mutex in internal/core"
}

// lockIOPkgs are the packages whose method receivers count as I/O.
var lockIOPkgs = map[string]bool{
	"net":                     true,
	"os":                      true,
	"deta/internal/journal":   true,
	"deta/internal/transport": true,
}

// lockIOVerbs are the receiver methods that perform I/O (Close excluded:
// closing a dead descriptor under a lock is cheap and common).
var lockIOVerbs = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Sync": true, "Append": true, "AppendNoSync": true, "Compact": true,
	"Call": true, "CallContext": true, "Ping": true, "Accept": true,
}

func (LockIO) Run(pkg *Package, r *Reporter) {
	if !pathIn(pkg.Path, "deta/internal/core") {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkLockIOFunc(pkg, r, fn)
			return true
		})
	}
}

type lockRegion struct {
	key        string // printed mutex expr, e.g. "a.mu"
	start, end token.Pos
}

func checkLockIOFunc(pkg *Package, r *Reporter, fn *ast.FuncDecl) {
	type unlock struct {
		key      string
		pos      token.Pos
		deferred bool
	}
	var locks []lockRegion
	var unlocks []unlock
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if key, name, ok := mutexOp(pkg, st.X); ok {
				if name == "Lock" || name == "RLock" {
					locks = append(locks, lockRegion{key: key, start: st.End(), end: fn.Body.End()})
				} else {
					unlocks = append(unlocks, unlock{key: key, pos: st.Pos()})
				}
			}
		case *ast.DeferStmt:
			if key, name, ok := mutexOp(pkg, st.Call); ok && (name == "Unlock" || name == "RUnlock") {
				unlocks = append(unlocks, unlock{key: key, pos: st.Pos(), deferred: true})
			}
		}
		return true
	})
	if len(locks) == 0 {
		return
	}
	// Close each region at the first inline unlock of the same mutex after
	// it; a deferred unlock (or none) keeps it open to the function end.
	for i := range locks {
		for _, u := range unlocks {
			if !u.deferred && u.key == locks[i].key && u.pos > locks[i].start && u.pos < locks[i].end {
				locks[i].end = u.pos
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		desc, isIO := ioCallee(pkg, call)
		if !isIO {
			return true
		}
		for _, lr := range locks {
			if call.Pos() > lr.start && call.Pos() < lr.end {
				r.Reportf(call.Pos(),
					"%s while holding %s: I/O under a core mutex convoys every concurrent caller behind one peer's disk/network latency",
					desc, lr.key)
				return true
			}
		}
		return true
	})
}

// mutexOp matches `<expr>.Lock()/RLock()/Unlock()/RUnlock()` where the
// receiver is a sync.Mutex or sync.RWMutex, returning the printed
// receiver expression as the region key.
func mutexOp(pkg *Package, e ast.Expr) (key, name string, ok bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return "", "", false
	}
	t := s.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// ioCallee classifies a call as I/O: a method whose receiver type lives in
// net/os/journal/transport and whose name is an I/O verb, or a call
// through a Dial*/Redial function (field, variable, or package function).
func ioCallee(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if s, ok := pkg.Info.Selections[sel]; ok {
		if s.Kind() == types.FieldVal {
			// Func-typed field, e.g. AggregatorClient.Redial.
			if name == "Redial" || strings.HasPrefix(name, "Dial") {
				return "call through " + types.ExprString(sel.X) + "." + name, true
			}
			return "", false
		}
		if !lockIOVerbs[name] {
			return "", false
		}
		t := s.Recv()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed || named.Obj().Pkg() == nil || !lockIOPkgs[named.Obj().Pkg().Path()] {
			return "", false
		}
		return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + name + " I/O", true
	}
	// Package-qualified function: net.Dial, transport.DialBackoff, ...
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	p := obj.Pkg().Path()
	if (p == "net" || p == "deta/internal/transport") && strings.HasPrefix(name, "Dial") {
		return obj.Pkg().Name() + "." + name + " dial", true
	}
	return "", false
}
