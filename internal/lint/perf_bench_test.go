package lint_test

import (
	"testing"

	"deta/internal/perf"
)

// BenchmarkPerfSuite runs the lint area of the tracked perf suite
// (internal/perf) under `go test -bench`, emitting the same stable bench
// names the BENCH_lint.json baseline records. External test package: the
// suite itself imports deta/internal/lint to drive the analyzers.
func BenchmarkPerfSuite(b *testing.B) { perf.RunAreaBenchmarks(b, "lint") }
