// Package core poses as deta/internal/core for the lockio fixture:
// network or disk I/O inside a mutex region convoys every concurrent
// caller; I/O after the unlock is fine.
package core

import (
	"net"
	"sync"
)

type peer struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
}

// badInline reads from the network inside the lock's inline region.
func (p *peer) badInline(b []byte) (int, error) {
	p.mu.Lock()
	n, err := p.conn.Read(b) // want lockio
	p.mu.Unlock()
	return n, err
}

// badDeferred holds the lock (deferred unlock) across a network write.
func (p *peer) badDeferred(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn.Write(b) // want lockio
}

// goodAfterUnlock copies state under the lock and does I/O outside it —
// the pattern the analyzer exists to push code toward.
func (p *peer) goodAfterUnlock() (int, error) {
	p.mu.Lock()
	out := append([]byte(nil), p.buf...)
	p.mu.Unlock()
	return p.conn.Write(out)
}

// badDial blocks every other caller behind one peer's connect latency.
func (p *peer) badDial(addr string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn, err := net.Dial("tcp", addr) // want lockio
	if err != nil {
		return err
	}
	p.conn = conn
	return nil
}
