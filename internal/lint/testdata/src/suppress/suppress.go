// Package journal poses as deta/internal/journal for the suppression
// fixture: a well-formed //lint:ignore with a reason suppresses the next
// line, a malformed one (no reason) suppresses nothing and is itself a
// finding.
package journal

import "os"

// closeQuiet demonstrates both directive forms.
func closeQuiet(f *os.File) {
	//lint:ignore errdiscipline fixture: this discard is deliberate and documented
	f.Sync()
	f.Close() // want errdiscipline
	//lint:ignore errdiscipline
	f.Sync() // want errdiscipline
}
