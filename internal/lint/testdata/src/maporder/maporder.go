// Package core poses as deta/internal/core for the maporder fixture:
// map-order-dependent accumulation and journal writes are findings, the
// collect-then-sort idiom and per-iteration state are not.
package core

import (
	"sort"

	"deta/internal/journal"
)

// keysUnsorted leaks map iteration order into the returned slice.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// keysSorted uses the blessed collect-then-sort idiom; no finding.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sumFloats makes the sum's bits depend on visit order.
func sumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want maporder
	}
	return sum
}

// sumInts is associative, so visit order cannot change the result.
func sumInts(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// perIteration accumulators are born inside the loop body; no finding.
func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}

type node struct {
	j *journal.Journal
}

func (n *node) logEvent(typ uint8, data []byte) {}

// flushAll writes WAL records in map order, so replay order differs.
func (n *node) flushAll(m map[string][]byte) {
	for _, v := range m {
		n.j.Append(1, v) // want maporder
	}
}

// drain reaches the WAL through the aggregator helper, matched by name.
func (n *node) drain(m map[int][]byte) {
	for r, b := range m {
		n.logEvent(uint8(r), b) // want maporder
	}
}
