// Package core poses as deta/internal/core for the replaypure fixture:
// nondeterminism sources are findings only inside functions transitively
// reachable from the replay roots (RecoverAggregatorNode here); the same
// constructs in unreachable functions are fine (see replaypure_clean.go).
package core

import (
	"math/rand"
	"time"
)

type node struct {
	sum  float64
	vals map[string]float64
	tick int64
}

// RecoverAggregatorNode is a replay root: everything it reaches must be a
// pure function of the journal.
func RecoverAggregatorNode(n *node) {
	replayTail(n)
	helperDeep(n)
	n.accumulate()
}

func replayTail(n *node) {
	t := time.Now() // want replaypure
	_ = t
	go background(n) // want replaypure
	n.tick = nowFromClock()
}

func background(n *node) {}

// helperDeep only matters as a call edge: the defect is two hops from the
// root.
func helperDeep(n *node) {
	jitter(n)
}

func jitter(n *node) {
	n.sum += rand.Float64() // want replaypure
	r := rand.New(rand.NewSource(1))
	n.sum += r.Float64()
}

// accumulate folds map values in iteration order: the maporder checks
// rerun under replaypure's name inside the reachable set.
func (n *node) accumulate() {
	for _, v := range n.vals {
		n.sum += v // want replaypure
	}
}
