// Unreachable functions may use the clock, the global rand, goroutines,
// and raw map iteration freely: replaypure scopes its checks to the
// replay-reachable set. No want markers in this file.
package core

import (
	"math/rand"
	"time"
)

func notReachable(n *node) {
	_ = time.Now()
	_ = time.Since(time.Time{})
	n.sum += rand.Float64()
	go background(n)
	for _, v := range n.vals {
		n.sum += v
	}
}
