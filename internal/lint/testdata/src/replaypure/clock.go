// clock.go is the sanctioned wall-clock implementation file: reachable or
// not, its time.Now stays exempt — this is where the injectable clock
// bottoms out.
package core

import "time"

func nowFromClock() int64 {
	return time.Now().UnixNano()
}
