// clock.go may touch the real clock: it implements the injectable Clock
// everything else must go through.
package core

import "time"

// Clock is the injection seam (mirrors core.Clock).
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
