// Package core poses as deta/internal/core for the clockdisc fixture:
// direct calls into package time's clock surface (readings, sleeps, timer
// constructors) bypass the injectable Clock and are findings everywhere
// except clock.go.
package core

import "time"

var start time.Time

func deadlines(d time.Duration) {
	_ = time.Now()   // want clockdisc
	time.Sleep(d)    // want clockdisc
	<-time.After(d)  // want clockdisc
	_ = time.Since(start) // want clockdisc
	tk := time.NewTicker(d) // want clockdisc
	tk.Stop()
	tm := time.NewTimer(d) // want clockdisc
	tm.Stop()
	time.AfterFunc(d, func() {}) // want clockdisc
}
