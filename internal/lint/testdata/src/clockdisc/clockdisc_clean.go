// Clean shapes: time flows through the injected Clock, and computing WITH
// time values (conversions, arithmetic, formatting) is not a clock read.
// No want markers in this file.
package core

import "time"

func viaClock(c Clock, d time.Duration) time.Time {
	<-c.After(d)
	return c.Now()
}

func arithmetic(t time.Time, d time.Duration) time.Time {
	u := time.Unix(42, 0)
	_ = u.Add(d).Format(time.RFC3339)
	return t.Add(d)
}
