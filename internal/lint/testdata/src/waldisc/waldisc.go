// Package core poses as deta/internal/core for the waldisc fixture: every
// durable AggregatorNode/roundState mutation must be dominated by a
// journal append of sufficient strength. Each want marker is an
// ack-before-durability defect; the clean shapes live in waldisc_clean.go.
package core

// Journal mirrors the WAL surface waldisc recognizes by receiver type.
type Journal struct{ synced bool }

func (j *Journal) Append(typ byte, data []byte) error { return nil }
func (j *Journal) AppendNoSync(typ byte, data []byte) error {
	j.synced = false
	return nil
}
func (j *Journal) Compact() error { return nil }

type roundState struct {
	fragments  map[string][]float64
	weights    map[string]float64
	aggregated []float64
	openedAt   int64 // ephemeral: recovery restamps it
}

type AggregatorNode struct {
	parties        map[string]bool
	rounds         map[int]*roundState
	evicted        map[string]bool
	quorum         int
	retention      int
	lastAggregated int

	journal *Journal
	clock   int64 // ephemeral
}

func newRoundState() *roundState {
	return &roundState{fragments: map[string][]float64{}, weights: map[string]float64{}}
}

func (a *AggregatorNode) logFragmentDurable(typ byte, party string, round int, frag []float64, weight float64) error {
	return a.journal.Append(typ, nil)
}

func (a *AggregatorNode) logEvent(typ byte, party string) {
	_ = a.journal.AppendNoSync(typ, []byte(party))
}

// Upload is the acceptance-criterion case: the round-creation insert has
// been deliberately reordered ahead of the durable append, so a crash
// after the ack would leave a round the journal never heard of.
func (a *AggregatorNode) Upload(party string, round int, frag []float64, weight float64) error {
	rs, ok := a.rounds[round]
	if !ok {
		rs = newRoundState()
		a.rounds[round] = rs // want waldisc
	}
	if err := a.logFragmentDurable(1, party, round, frag, weight); err != nil {
		return err
	}
	rs.fragments[party] = frag
	rs.weights[party] = weight
	return nil
}

// StoreUnchecked discards the durable append's error, demoting it to
// best-effort — not enough for the payload maps.
func (a *AggregatorNode) StoreUnchecked(party string, round int, frag []float64) {
	rs := a.rounds[round]
	a.logFragmentDurable(1, party, round, frag, 1)
	rs.fragments[party] = frag // want waldisc
}

// SetQuorumFlaky only appends on one branch: the branch head does not
// dominate the mutation.
func (a *AggregatorNode) SetQuorumFlaky(n int, loud bool) {
	if loud {
		a.logEvent(2, "")
	}
	a.quorum = n // want waldisc
}

// BumpRetention mutates through IncDecStmt with no append anywhere.
func (a *AggregatorNode) BumpRetention() {
	a.retention++ // want waldisc
}

// admit is an unexported helper: its unguarded membership write becomes a
// summary that surfaces at call sites, not here.
func (a *AggregatorNode) admit(party string) {
	a.parties[party] = true
}

// RegisterLoose calls the helper with no append in sight: the summary
// mutation is reported at the call.
func (a *AggregatorNode) RegisterLoose(party string) {
	a.admit(party) // want waldisc
}

// RegisterJournaled guards the same helper call with a same-block append.
func (a *AggregatorNode) RegisterJournaled(party string) {
	a.logEvent(1, party)
	a.admit(party)
}

// journalChecked appends (checked) on every path through its body: the
// backward must-solver classifies it a strength-2 guard wrapper.
func (a *AggregatorNode) journalChecked(typ byte, data []byte) error {
	if len(data) > 1024 {
		if err := a.journal.Append(typ, data[:1024]); err != nil {
			return err
		}
		return nil
	}
	if err := a.journal.Append(typ, data); err != nil {
		return err
	}
	return nil
}

// AggregateVia relies on the wrapper: checked call to journalChecked
// dominates the aggregate write, so this is clean.
func (a *AggregatorNode) AggregateVia(round int, out []float64) error {
	rs := a.rounds[round]
	if err := a.journalChecked(9, nil); err != nil {
		return err
	}
	rs.aggregated = out
	return nil
}

// journalMaybe skips the append when journaling is off: some path through
// the body appends nothing, so it is NOT a guard wrapper.
func (a *AggregatorNode) journalMaybe(typ byte, data []byte) error {
	if a.journal == nil {
		return nil
	}
	return a.journal.Append(typ, data)
}

// DropRoundMaybe trusts the non-wrapper: the delete stays unguarded.
func (a *AggregatorNode) DropRoundMaybe(round int) error {
	if err := a.journalMaybe(7, nil); err != nil {
		return err
	}
	delete(a.rounds, round) // want waldisc
	return nil
}
