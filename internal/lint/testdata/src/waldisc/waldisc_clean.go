// Clean shapes for the waldisc fixture: appends that genuinely dominate
// their mutations, ephemeral writes, guarded deletes, and the exempt
// replay functions. No want markers in this file.
package core

// SetQuorum is the canonical discipline: append first, mutate in the same
// block.
func (a *AggregatorNode) SetQuorum(n int) {
	a.logEvent(2, "")
	a.quorum = n
}

// ReapIdle mirrors the real reap loop: the per-iteration append precedes
// the deletes and the eviction flag inside the same loop-body block.
func (a *AggregatorNode) ReapIdle(idle []string) {
	for _, p := range idle {
		a.logEvent(3, p)
		delete(a.parties, p)
		a.evicted[p] = true
	}
}

// SealRounds appends once before the loop: the append block dominates
// every iteration.
func (a *AggregatorNode) SealRounds(last int) error {
	if err := a.logFragmentDurable(9, "", last, nil, 0); err != nil {
		return err
	}
	for r := range a.rounds {
		if r < last {
			delete(a.rounds, r)
		}
	}
	a.lastAggregated = last
	return nil
}

// Touch writes only ephemeral fields: no journal append required.
func (a *AggregatorNode) Touch(round int, now int64) {
	a.clock = now
	if rs := a.rounds[round]; rs != nil {
		rs.openedAt = now
	}
}

// UploadGuarded keeps the required order: the checked durable append
// dominates the round insert, the payload writes, and the rollback delete
// on the error branch (a guarded delete needs only strength 1).
func (a *AggregatorNode) UploadGuarded(party string, round int, frag []float64, weight float64) error {
	if err := a.logFragmentDurable(1, party, round, frag, weight); err != nil {
		delete(a.rounds, round)
		return err
	}
	rs, ok := a.rounds[round]
	if !ok {
		rs = newRoundState()
		a.rounds[round] = rs
	}
	rs.fragments[party] = frag
	rs.weights[party] = weight
	return nil
}

// restoreSnapshot is the replay side of the protocol: it rebuilds state
// FROM the journal and is exempt by name.
func (a *AggregatorNode) restoreSnapshot(parties []string, quorum int) {
	for _, p := range parties {
		a.parties[p] = true
	}
	a.quorum = quorum
}

// applyRecord likewise replays one WAL record.
func (a *AggregatorNode) applyRecord(typ byte, party string, round int) {
	switch typ {
	case 3:
		delete(a.parties, party)
		a.evicted[party] = true
	case 7:
		delete(a.rounds, round)
	}
}
