// Package journal poses as deta/internal/journal for the errdiscipline
// fixture: dropped Sync/Close/Write errors on the durability surface are
// findings; checked errors, explicit blanks, and infallible writers are
// not.
package journal

import (
	"hash/crc32"
	"os"
)

// flushBad drops durability errors four different ways.
func flushBad(f *os.File) {
	f.Sync()                 // want errdiscipline
	defer f.Close()          // want errdiscipline
	go f.Sync()              // want errdiscipline
	f.Write([]byte("frame")) // want errdiscipline
}

// flushGood checks or explicitly blanks every error; no finding.
func flushGood(f *os.File) error {
	if _, err := f.Write([]byte("frame")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	_ = f.Close()
	return nil
}

// checksum writes into a hash.Hash, which documents Write as infallible;
// flagging it would drown the real signal, so no finding.
func checksum(b []byte) uint32 {
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	h.Write(b)
	return h.Sum32()
}
