// Package rng poses as deta/internal/rng for the cryptorand fixture:
// math/rand in a key-handling package is always a finding.
package rng

import (
	"math/rand" // want cryptorand

	mrv2 "math/rand/v2" // want cryptorand
)

// Perm leaks key-derivation randomness through a seedable PRNG.
func Perm(n int) []int { return rand.Perm(n) }

// Jitter is just as illegal here: v2 is still not a CSPRNG.
func Jitter() float64 { return mrv2.Float64() }
