package rng

import (
	"crypto/rand"
	"io"
)

// Nonce draws from the CSPRNG; no finding.
func Nonce() ([]byte, error) {
	b := make([]byte, 16)
	_, err := io.ReadFull(rand.Reader, b)
	return b, err
}
