// Package core poses as deta/internal/core for the goleak fixture:
// goroutines that can block forever on channel operations with no escape
// edge are leaks; bodies with a ctx-done/close-signal escape, and
// close-driven worker ranges, are clean.
package core

import (
	"context"
	"time"
)

// A named function that ranges over a ticker channel with no way out:
// ticker channels are never closed, so the goroutine can never exit.
func spawnTickerLeak(interval time.Duration) *time.Ticker {
	t := time.NewTicker(interval)
	go tickLoop(t) // want goleak
	return t
}

func tickLoop(t *time.Ticker) {
	for range t.C {
		work()
	}
}

// A ctx-less select inside an infinite for: nothing ever returns or
// breaks, so once the channel goes quiet the goroutine is pinned forever.
func spawnSelectLeak(ch chan int) {
	go func() { // want goleak
		for {
			select {
			case v := <-ch:
				sink(v)
			}
		}
	}()
}

// A wrapper that unconditionally runs a blocker blocks too (summary
// propagation through the call edge).
func spawnWrapped(t *time.Ticker) {
	go runForever(t) // want goleak
}

func runForever(t *time.Ticker) {
	runtimeSetup()
	tickLoop(t)
}

func runtimeSetup() {}

// Clean: the select has a ctx.Done escape that returns.
func spawnClean(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				sink(v)
			}
		}
	}()
}

// Clean: a close-driven worker range over an ordinary channel — the
// sender closing the channel IS the exit, the idiomatic pool-worker shape.
func spawnWorkerClean(tasks chan func()) {
	go func() {
		for f := range tasks {
			f()
		}
	}()
}

// Clean: ticker loop with a done-channel escape.
func spawnTickerClean(done chan struct{}, interval time.Duration) {
	t := time.NewTicker(interval)
	go func() {
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				work()
			}
		}
	}()
}

// Clean: the blocker is only reached conditionally — may-block is too
// noisy to report as a certain leak.
func spawnMaybe(t *time.Ticker, debug bool) {
	go func() {
		if debug {
			tickLoop(t)
		}
	}()
}

// Clean: a break at the loop's own level escapes, even from inside the
// select's case body (break there targets the select, but the loop-level
// one below it counts).
func spawnBreakClean(ch chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				break
			}
			sink(v)
		}
	}()
}

func work()    {}
func sink(int) {}
