// Package core poses as deta/internal/core for the keytaint fixture. Key
// material (here: rng.DeriveSeed output and values derived from it) must
// never reach formatting, logging, error strings, the journal, or any
// wire message except the AP PermKey exchange. The fixture exercises
// intraprocedural flow with strong updates, interprocedural parameter /
// return / field propagation, sanitizers, and the wire-type exemption.
package core

import (
	"errors"
	"fmt"
	"log"

	"deta/internal/journal"
	"deta/internal/rng"
)

// UploadReq is a module wire message: carrying key bytes in it is a leak.
type UploadReq struct {
	Party   string
	Payload []byte
}

// PermKeyResp is the one sanctioned key-carrying message.
type PermKeyResp struct {
	Key []byte
}

// badDirectLog formats a freshly derived subkey.
func badDirectLog(master []byte, round []byte) {
	seed := rng.DeriveSeed(master, round)
	log.Printf("derived seed %x", seed) // want keytaint
}

// badErrorString wraps key bytes into an error a caller will log.
func badErrorString(master []byte) error {
	seed := rng.DeriveSeed(master)
	return fmt.Errorf("bad seed %x", seed) // want keytaint
}

// badErrorsNew is the errors.New flavor of the same leak.
func badErrorsNew(master []byte) error {
	seed := rng.DeriveSeed(master)
	return errors.New(string(seed)) // want keytaint
}

// goodFingerprint logs the sanctioned digest: rng.Fingerprint is a
// sanitizer, so the result is clean.
func goodFingerprint(master []byte) {
	seed := rng.DeriveSeed(master)
	log.Printf("derived seed fp=%s", rng.Fingerprint(seed))
}

// goodLen: the length of a key is not the key.
func goodLen(master []byte) error {
	seed := rng.DeriveSeed(master)
	if len(seed) != 32 {
		return fmt.Errorf("seed has %d bytes, want 32", len(seed))
	}
	return nil
}

// goodStrongUpdate overwrites the tainted variable with a clean digest;
// the reassignment kills the taint on every path that reaches the log.
func goodStrongUpdate(master []byte) {
	s := string(rng.DeriveSeed(master))
	s = rng.Fingerprint([]byte("clean"))
	log.Printf("state %s", s)
}

// badBranchJoin taints s on only one branch; the may-analysis keeps the
// fact alive through the join.
func badBranchJoin(cond bool, master []byte) {
	s := "clean"
	if cond {
		s = string(rng.DeriveSeed(master))
	}
	log.Printf("state %s", s) // want keytaint
}

// logBytes is an unexported helper: taint enters through its parameter
// from badViaHelper below, so the sink inside it fires.
func logBytes(b []byte) {
	fmt.Printf("bytes: %x\n", b) // want keytaint
}

// badViaHelper leaks through a helper call (parameter summary).
func badViaHelper(master []byte) {
	logBytes(rng.DeriveSeed(master))
}

// derive returns key material; callers inherit the taint (return summary).
func derive(master []byte) []byte {
	return rng.DeriveSeed(master, []byte("round"))
}

// badViaReturn leaks a key obtained through a module function's return.
func badViaReturn(master []byte) {
	k := derive(master)
	log.Printf("key %x", k) // want keytaint
}

// holder stores key material in a field; the store taints the field for
// every later read, module-wide.
type holder struct {
	k []byte
}

func (h *holder) set(master []byte) {
	h.k = rng.DeriveSeed(master)
}

// badViaField reads the tainted field.
func (h *holder) badViaField() error {
	return fmt.Errorf("holder state %x", h.k) // want keytaint
}

// badJournal writes key bytes into the plaintext WAL.
func badJournal(j *journal.Journal, master []byte) error {
	seed := rng.DeriveSeed(master)
	return j.Append(1, seed) // want keytaint
}

// badWireComposite builds a non-exempt wire message around key bytes.
func badWireComposite(master []byte) UploadReq {
	seed := rng.DeriveSeed(master)
	return UploadReq{Party: "p1", Payload: seed} // want keytaint
}

// badWireFieldStore smuggles the key in after construction.
func badWireFieldStore(master []byte) UploadReq {
	var req UploadReq
	req.Payload = rng.DeriveSeed(master) // want keytaint
	return req
}

// goodPermKeyResp is the sanctioned exchange: the AP's PermKey response
// exists to carry the key.
func goodPermKeyResp(master []byte) PermKeyResp {
	return PermKeyResp{Key: rng.DeriveSeed(master)}
}

// goodCleanWire: no key material anywhere near the message.
func goodCleanWire(update []byte) UploadReq {
	return UploadReq{Party: "p2", Payload: update}
}

// keyed holds key material next to plain metadata.
type keyed struct {
	n int
	k []byte
}

func newKeyed(master []byte) *keyed {
	return &keyed{n: 32, k: rng.DeriveSeed(master)}
}

// goodNonCarrierField: a numeric field of a key-derived struct is a
// length, not the key — base taint must not bleed through it.
func goodNonCarrierField(master []byte) error {
	d := newKeyed(master)
	return fmt.Errorf("keyed holds %d bytes", d.n)
}

// badCarrierField: the byte-slice field of the same struct IS the key.
func badCarrierField(master []byte) error {
	d := newKeyed(master)
	return fmt.Errorf("keyed state %x", d.k) // want keytaint
}

// badClosureLaunder launders the key through a returned closure: the
// literal captures the tainted seed, so the sink inside its body fires
// even though the enclosing function never touches a sink itself.
func badClosureLaunder(master []byte) func() {
	seed := rng.DeriveSeed(master)
	return func() {
		log.Printf("deferred seed %x", seed) // want keytaint
	}
}

// badClosureGo leaks through a goroutine body — the classic fire-and-
// forget logging closure.
func badClosureGo(master []byte) {
	seed := rng.DeriveSeed(master)
	go func() {
		fmt.Printf("worker seed %x\n", seed) // want keytaint
	}()
}

// badClosureNested: two literals deep; the recursion carries the captured
// fact through both.
func badClosureNested(master []byte) func() func() error {
	seed := rng.DeriveSeed(master)
	return func() func() error {
		return func() error {
			return errors.New(string(seed)) // want keytaint
		}
	}
}

// goodClosureClean: the closure captures nothing tainted and logs a
// sanitized digest; no report.
func goodClosureClean(master []byte) func() {
	fp := rng.Fingerprint(rng.DeriveSeed(master))
	return func() {
		log.Printf("seed fp=%s", fp)
	}
}

// goodClosureSanitized: the tainted variable is strongly updated to a
// clean value BEFORE the literal is created, so the closure captures the
// sanitized state — the creation-point fact, not a whole-function union,
// seeds the closure body.
func goodClosureSanitized(master []byte) func() {
	s := string(rng.DeriveSeed(master))
	s = rng.Fingerprint([]byte("clean"))
	return func() {
		log.Printf("state %s", s)
	}
}
