// Package core poses as deta/internal/core for the ctxplumb fixture:
// exported functions must take their context first, and library code
// must never mint its own root context.
package core

import "context"

// Client is a fake RPC surface.
type Client struct{}

// Fetch takes its context in the wrong position.
func (c *Client) Fetch(id string, ctx context.Context) error { // want ctxplumb
	return ctx.Err()
}

// Get threads the caller's context correctly; no finding.
func (c *Client) Get(ctx context.Context, id string) error {
	return ctx.Err()
}

// detach mints a root context inside library code, cutting the operation
// loose from the caller's deadline.
func detach() context.Context {
	return context.Background() // want ctxplumb
}

// todo is no better than detach.
func todo() context.Context {
	return context.TODO() // want ctxplumb
}
