// Package core poses as deta/internal/core for the lockorder fixture:
// opposite acquisition orders between two mutex classes form a cycle in
// the order graph; consistent orders and independent locks do not.
package core

import "sync"

type Alpha struct {
	mu sync.Mutex
	n  int
}

type Beta struct {
	mu sync.Mutex
	n  int
}

// lockAB acquires Alpha.mu then Beta.mu. The Beta acquisition is the
// cycle's earliest edge in source order, so the finding anchors here.
func lockAB(a *Alpha, b *Beta) {
	a.mu.Lock()
	b.mu.Lock() // want lockorder
	b.n++
	b.mu.Unlock()
	a.n++
	a.mu.Unlock()
}

// lockBA closes the cycle: Beta.mu then Alpha.mu.
func lockBA(a *Alpha, b *Beta) {
	b.mu.Lock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.n++
	b.mu.Unlock()
}

// Consistent ordering between two other classes: edges exist, but the
// graph stays acyclic — no finding.
type Gamma struct{ mu sync.Mutex }
type Delta struct{ mu sync.Mutex }

func consistentOne(g *Gamma, d *Delta) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

func consistentTwo(g *Gamma, d *Delta) {
	g.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	g.mu.Unlock()
}

// Recursive acquisition through a helper: a self-loop in the class
// graph. Go mutexes are not reentrant, so this deadlocks outright.
type Rec struct {
	mu sync.Mutex
	n  int
}

func (r *Rec) outer() {
	r.mu.Lock()
	r.relock() // want lockorder
	r.mu.Unlock()
}

func (r *Rec) relock() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// Sequential (non-nested) acquisitions: the first lock is released
// before the second is taken, so no edge and no cycle with lockBA2.
type Eps struct{ mu sync.Mutex }
type Zeta struct{ mu sync.Mutex }

func sequentialEZ(e *Eps, z *Zeta) {
	e.mu.Lock()
	e.mu.Unlock()
	z.mu.Lock()
	z.mu.Unlock()
}

func sequentialZE(e *Eps, z *Zeta) {
	z.mu.Lock()
	z.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}
