package core

import "sync"

// depth2.go: a lock-order cycle visible only through two levels of
// helpers — the held set comes from a helper-of-a-helper (class-level
// net lock effects to a fixpoint) and the acquisition comes from a
// different helper chain (the may-acquire fixpoint). No function in this
// file touches both mutexes directly.

type Outer struct {
	mu sync.Mutex
	n  int
}

type Inner struct {
	mu sync.Mutex
	n  int
}

// cycleOI holds Outer.mu (via two helper levels) while grabInner — which
// only locks Inner.mu two calls down — runs: edge Outer.mu -> Inner.mu.
// This file sorts before lockorder.go, so this cycle's anchor is here.
func cycleOI(o *Outer, in *Inner) {
	o.hold()
	defer o.release()
	grabInner(in) // want lockorder
}

// cycleIO closes it: Inner.mu held directly while Outer.mu is acquired
// through the helper chain.
func cycleIO(o *Outer, in *Inner) {
	in.mu.Lock()
	defer in.mu.Unlock()
	o.hold()
	o.release()
}

func (o *Outer) hold() { o.lockDeep() }
func (o *Outer) lockDeep() {
	o.mu.Lock()
	o.n++
}
func (o *Outer) release() { o.mu.Unlock() }

func grabInner(in *Inner) { grabInner2(in) }
func grabInner2(in *Inner) {
	in.mu.Lock()
	in.n++
	in.mu.Unlock()
}
