// Package core poses as deta/internal/core for the ctxflow fixture.
// Exported functions that transitively perform network I/O on their
// synchronous path must take a context.Context so callers can bound the
// operation; goroutine bodies, interface-pinned method names, and
// I/O-free functions are exempt.
package core

import (
	"context"
	"net"
)

type Endpoint struct {
	conn net.Conn
}

// Connect dials with no way for the caller to bound it.
func (e *Endpoint) Connect(addr string) error { // want ctxflow
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	e.conn = c
	return nil
}

// ConnectCtx is the same dial with a context; no finding.
func (e *Endpoint) ConnectCtx(ctx context.Context, addr string) error {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	e.conn = c
	return nil
}

// send is unexported network I/O — not flagged itself (callers in this
// package decide the surface), but it makes exported callers I/O-bearing.
func (e *Endpoint) send(b []byte) error {
	_, err := e.conn.Write(b)
	return err
}

// Broadcast transitively writes to the network through send.
func (e *Endpoint) Broadcast(b []byte) error { // want ctxflow
	return e.send(b)
}

// Spawn only does I/O in a goroutine the caller does not wait for.
func (e *Endpoint) Spawn(b []byte) {
	go func() { _ = e.send(b) }()
}

// Read is pinned by the io.Reader contract; bounded by Close.
func (e *Endpoint) Read(p []byte) (int, error) {
	return e.conn.Read(p)
}

// Checksum performs no I/O at all.
func Checksum(b []byte) byte {
	var x byte
	for _, c := range b {
		x ^= c
	}
	return x
}
