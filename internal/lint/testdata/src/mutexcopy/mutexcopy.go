// Package core poses as deta/internal/core for the mutexcopy fixture:
// every by-value copy of a lock-bearing struct forks its lock state.
package core

import "sync"

// Counter guards n with a by-value mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Bad copies the receiver — and its lock state — on every call.
func (c Counter) Bad() int { // want mutexcopy
	return c.n
}

// Good takes a pointer; no finding.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Sum passes a Counter by value; the pointer slice is fine.
func Sum(cs []*Counter, c Counter) int { // want mutexcopy
	total := c.n
	for _, p := range cs {
		total += p.n
	}
	return total
}

// Drain copies each element out of the slice as it ranges.
func Drain(cs []Counter) int {
	total := 0
	for _, c := range cs { // want mutexcopy
		total += c.n
	}
	return total
}

// Snapshot copies the whole struct through a dereference.
func Snapshot(c *Counter) int {
	snap := *c // want mutexcopy
	return snap.n
}
