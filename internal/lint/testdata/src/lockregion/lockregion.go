// Package core poses as deta/internal/core for the lockregion fixture.
// The CFG analysis must catch what the old syntactic lockio could not:
// may-held locks after a conditional unlock, helper-held locks, and
// transitive I/O through module calls — while staying quiet about I/O
// after a real release, goroutine spawns, and the sanctioned WAL path.
package core

import (
	"net"
	"os"
	"sync"

	"deta/internal/journal"
)

type peer struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
	path string
	j    *journal.Journal
}

// badInline reads from the network inside the lock's inline region.
func (p *peer) badInline(b []byte) (int, error) {
	p.mu.Lock()
	n, err := p.conn.Read(b) // want lockregion
	p.mu.Unlock()
	return n, err
}

// badDeferred holds the lock (deferred unlock) across a network write.
func (p *peer) badDeferred(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn.Write(b) // want lockregion
}

// goodAfterUnlock copies state under the lock and does I/O outside it —
// the pattern the analyzer exists to push code toward.
func (p *peer) goodAfterUnlock() (int, error) {
	p.mu.Lock()
	out := append([]byte(nil), p.buf...)
	p.mu.Unlock()
	return p.conn.Write(out)
}

// badDial blocks every other caller behind one peer's connect latency.
func (p *peer) badDial(addr string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn, err := net.Dial("tcp", addr) // want lockregion
	if err != nil {
		return err
	}
	p.conn = conn
	return nil
}

// badBranchMayHold unlocks on only one branch: the write still executes
// with the lock held whenever cond is false. The syntactic analyzer
// closed the region at the first inline Unlock and missed this; the CFG
// join keeps the may-held fact alive.
func (p *peer) badBranchMayHold(cond bool, b []byte) (int, error) {
	p.mu.Lock()
	if cond {
		p.mu.Unlock()
	}
	n, err := p.conn.Write(b) // want lockregion
	if !cond {
		p.mu.Unlock()
	}
	return n, err
}

// goodLoopScoped locks and unlocks inside each iteration; the write after
// the loop runs with the lock released on every path.
func (p *peer) goodLoopScoped(chunks [][]byte) (int, error) {
	for _, c := range chunks {
		p.mu.Lock()
		p.buf = append(p.buf, c...)
		p.mu.Unlock()
	}
	return p.conn.Write(p.buf)
}

// hold acquires the peer lock on behalf of its caller.
func (p *peer) hold() { p.mu.Lock() }

// release drops it.
func (p *peer) release() { p.mu.Unlock() }

// badHelperHeld does I/O inside a lock acquired by a helper — invisible
// to syntactic matching, visible through the lock-effect summary.
func (p *peer) badHelperHeld(b []byte) (int, error) {
	p.hold()
	n, err := p.conn.Write(b) // want lockregion
	p.release()
	return n, err
}

// goodHelperReleased mutates under the helper-held lock and only touches
// the network after the helper releases it.
func (p *peer) goodHelperReleased(b []byte) (int, error) {
	p.hold()
	p.buf = append(p.buf[:0], b...)
	p.release()
	return p.conn.Write(b)
}

// hold2 acquires the peer lock through another helper: the lock-effect
// fixpoint must propagate the acquisition two call levels up.
func (p *peer) hold2() { p.hold() }

// release2 releases it through a helper.
func (p *peer) release2() { p.release() }

// badDeepHelperHeld does I/O inside a lock acquired two helper levels
// down — invisible to a depth-1 summary, visible to the fixpoint.
func (p *peer) badDeepHelperHeld(b []byte) (int, error) {
	p.hold2()
	n, err := p.conn.Write(b) // want lockregion
	p.release2()
	return n, err
}

// goodDeepHelperReleased touches the network only after the deep helper
// chain released the lock.
func (p *peer) goodDeepHelperReleased(b []byte) (int, error) {
	p.hold2()
	p.buf = append(p.buf[:0], b...)
	p.release2()
	return p.conn.Write(b)
}

// badDeferredDeepRelease holds a deep-helper lock with the matching deep
// release deferred; the write still runs with the lock held.
func (p *peer) badDeferredDeepRelease(b []byte) (int, error) {
	p.hold2()
	defer p.release2()
	return p.conn.Write(b) // want lockregion
}

// lockedAppend acquires and releases via helpers internally: its net
// effect is nil at every depth, so callers never inherit a held lock.
func (p *peer) lockedAppend(b []byte) {
	p.hold()
	p.buf = append(p.buf, b...)
	p.release()
}

// goodBalancedDeep calls a helper whose nested lock/unlock cancel; the
// write afterwards runs lock-free.
func (p *peer) goodBalancedDeep(b []byte) (int, error) {
	p.lockedAppend(b)
	return p.conn.Write(p.buf)
}

// flush performs network I/O on its synchronous path.
func (p *peer) flush() (int, error) {
	return p.conn.Write(p.buf)
}

// badTransitive calls a module function that does I/O while holding the
// lock; the I/O summary makes the call site itself the sink.
func (p *peer) badTransitive() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flush() // want lockregion
}

// badDiskUnderLock couples every caller to local disk latency.
func (p *peer) badDiskUnderLock(data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return os.WriteFile(p.path, data, 0o644) // want lockregion
}

// goodJournalUnderLock is the sanctioned exception: the WAL's
// commit-before-ack MUST append under the round lock (DESIGN.md §9), so
// journal writes never count as I/O here.
func (p *peer) goodJournalUnderLock(rec []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.j.Append(1, rec)
}

// goodGoroutine spawns under the lock; the goroutine runs without it.
func (p *peer) goodGoroutine(b []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		_, _ = p.conn.Write(b)
	}()
}

// goodEarlyReturn releases on both the early and the fallthrough path
// before any I/O happens.
func (p *peer) goodEarlyReturn(cond bool, b []byte) (int, error) {
	p.mu.Lock()
	if cond {
		p.mu.Unlock()
		return 0, nil
	}
	p.mu.Unlock()
	return p.conn.Write(b)
}
