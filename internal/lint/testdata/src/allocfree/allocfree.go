// Package core poses as deta/internal/core for the allocfree fixture:
// functions annotated //perf:hotpath must not allocate — make/new/append,
// map writes, defer-in-loop, interface boxing, and calls into allocating
// module helpers are all findings; exempt and trusted shapes are not.
package core

import (
	"errors"
	"fmt"
)

// hotDirect exercises every direct allocation form in one region.
//
//perf:hotpath
func hotDirect(dst []byte, m map[string]int, keys []string) []byte {
	buf := make([]byte, 8)    // want allocfree
	dst = append(dst, buf...) // want allocfree
	p := new(int)             // want allocfree
	_ = p
	for _, k := range keys {
		m[k] = len(k)    // want allocfree
		defer release(k) // want allocfree
	}
	return dst
}

// hotBoxing passes a concrete scalar to an interface parameter: the
// argument is boxed and escapes.
//
//perf:hotpath
func hotBoxing(n int) {
	consume(n) // want allocfree
}

func consume(v any) { _ = v }

// hotCallee calls an unannotated module function whose body allocates:
// the allocation effect propagates to the call site.
//
//perf:hotpath
func hotCallee(n int) []int {
	return slowPath(n) // want allocfree
}

func slowPath(n int) []int {
	out := make([]int, n)
	return out
}

// hotTrusted calls another annotated function: hot callees are trusted
// at the call site — their own bodies are checked where they live.
//
//perf:hotpath
func hotTrusted(dst []byte) []byte {
	return trusted(dst)
}

//perf:hotpath
func trusted(dst []byte) []byte {
	return append(dst, 0) // want allocfree
}

// hotErr hits the exempt error constructors: error paths are cold by
// definition and fmt.Errorf/errors.New stay allowed.
//
//perf:hotpath
func hotErr(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n)
	}
	if n > 1<<20 {
		return errors.New("count too large")
	}
	return nil
}

// hotClean reuses caller-provided storage only: index assignments into an
// existing slice, pointer args, integer arithmetic — nothing allocates.
//
//perf:hotpath
func hotClean(dst, src []float64, scale float64) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] = src[i] * scale
	}
}

// A floating directive that is not a function's doc comment is malformed:
// the annotation would silently check nothing.
//
//lint:example
var hotTableSize = 64

//perf:hotpath // want allocfree
const hotBatch = 32

// An annotated declaration with no body (assembly or linkname stub) is
// also malformed — there is nothing to check here.
//
//perf:hotpath // want allocfree
func hotAsmStub(dst, src []byte) int

func release(string) {}
