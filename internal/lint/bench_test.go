package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"deta/internal/parallel"
)

// TestRunDeterministic pins the parallel fan-out's ordering contract:
// the same package set must produce byte-identical findings across
// repeated runs and across worker counts (serial vs pooled). Fresh
// analyzer instances each run — the summaries are recomputed, so any
// map-iteration nondeterminism in the fixpoints would surface here too.
func TestRunDeterministic(t *testing.T) {
	loader := NewLoader()
	pkgs := []*Package{
		fixturePkg(t, loader, "lockorder", "deta/internal/core"),
		fixturePkg(t, loader, "goleak", "deta/internal/core"),
		fixturePkg(t, loader, "allocfree", "deta/internal/core"),
		fixturePkg(t, loader, "lockregion", "deta/internal/core"),
	}
	ref := Run(pkgs, All())
	if len(ref) == 0 {
		t.Fatal("fixture set produced no findings; the determinism check is vacuous")
	}
	for i := 0; i < 3; i++ {
		if got := Run(pkgs, All()); !reflect.DeepEqual(got, ref) {
			t.Fatalf("run %d diverged:\n got %v\nwant %v", i, got, ref)
		}
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	if got := Run(pkgs, All()); !reflect.DeepEqual(got, ref) {
		t.Fatalf("serial run diverged:\n got %v\nwant %v", got, ref)
	}
}

// BenchmarkLintSuite measures the full linter pass — fresh analyzer
// suite per iteration, so Prepare's module-wide fixpoint summaries are
// recomputed each time, exactly as a CLI invocation pays them. Loading
// is excluded: parse+typecheck cost belongs to the loader benchmark
// story, not the analyzers. Run with -bench over this package; see
// EXPERIMENTS.md for the serial-vs-parallel numbers.
func BenchmarkLintSuite(b *testing.B) {
	wd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := NewLoader().Load(filepath.Join(wd, "..", ".."), "./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(pkgs, All())
	}
}

// BenchmarkLintSuiteSerial is the same pass pinned to one worker, so the
// speedup from the per-package fan-out is directly readable from the
// pair.
func BenchmarkLintSuiteSerial(b *testing.B) {
	wd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := NewLoader().Load(filepath.Join(wd, "..", ".."), "./...")
	if err != nil {
		b.Fatal(err)
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(pkgs, All())
	}
}
