package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	t.Parallel()
	root := t.TempDir()
	findings := []Finding{
		{Analyzer: "keytaint", File: filepath.Join(root, "a", "x.go"), Line: 10, Col: 3, Message: "key leak"},
		{Analyzer: "keytaint", File: filepath.Join(root, "a", "x.go"), Line: 40, Col: 7, Message: "key leak"},
		{Analyzer: "lockregion", File: filepath.Join(root, "b", "y.go"), Line: 5, Col: 1, Message: "I/O under lock"},
	}
	path := filepath.Join(root, "baseline.json")
	if err := WriteBaseline(path, root, findings); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}

	// Every recorded finding is absorbed, even at different lines: the
	// baseline matches on (analyzer, file, message) only.
	moved := make([]Finding, len(findings))
	copy(moved, findings)
	for i := range moved {
		moved[i].Line += 100
	}
	if kept := FilterBaseline(moved, base, root); len(kept) != 0 {
		t.Fatalf("baselined findings survived the filter: %v", kept)
	}

	// A new finding passes through.
	novel := Finding{Analyzer: "ctxflow", File: filepath.Join(root, "c", "z.go"), Line: 1, Message: "missing ctx"}
	kept := FilterBaseline(append(findings, novel), base, root)
	if len(kept) != 1 || kept[0].Analyzer != "ctxflow" {
		t.Fatalf("want only the novel finding, got %v", kept)
	}

	// Multiset semantics: a duplicated occurrence beyond the recorded
	// count is surfaced.
	dup := append(findings, findings[0])
	if kept := FilterBaseline(dup, base, root); len(kept) != 1 {
		t.Fatalf("extra occurrence should survive the filter, got %v", kept)
	}
}

func TestReadBaselineRejectsBadInput(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if _, err := ReadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(bad); err == nil {
		t.Fatal("want error for malformed JSON")
	}
	wrongVer := filepath.Join(dir, "v9.json")
	if err := os.WriteFile(wrongVer, []byte(`{"version":9,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(wrongVer); err == nil {
		t.Fatal("want error for unsupported version")
	}
}
