package lint

// GoLeak flags `go` statements that spawn goroutines which can never
// exit: bodies that block forever on channel operations with no escape
// edge. A leaked goroutine on an aggregator is a slow liveness hole — it
// pins its stack, its ticker, and whatever the closure captures, forever.
//
// Two body shapes are recognized, chosen for near-zero false positives on
// real code rather than completeness:
//
//   - an infinite `for` (no condition) that performs a blocking channel
//     operation — a select with no default, a send, a receive, a range
//     over a channel — with no way out of the loop: no return, no
//     `break`/`goto` targeting it, no panic/os.Exit-style terminator.
//     The canonical leak is `for { select { ... } }` with no
//     `<-ctx.Done(): return` case;
//   - a `for range` over a time.Ticker channel (or time.Tick result)
//     with no escape: ticker channels are never closed, so the range can
//     never end.
//
// A plain `for x := range ch` over an ordinary channel is deliberately
// NOT flagged: the close-driven worker loop (internal/parallel's pool
// workers) is a correct, idiomatic shape whose exit is the channel close.
//
// Blocking is a property of the spawned function, so it propagates: a
// wrapper whose body unconditionally (top-level, not nested in a branch)
// calls a forever-blocking function blocks forever itself, to a fixpoint.
// Spawns through bare function values (e.g. a worker pool invoking a
// func() parameter) are unresolvable and skipped.
import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

type GoLeak struct {
	once    sync.Once
	nodeWhy map[ast.Node]string // unit node (decl or literal) -> why it blocks forever
	objWhy  map[*types.Func]string
}

func (*GoLeak) Name() string { return "goleak" }
func (*GoLeak) Doc() string {
	return "flag goroutines that can block forever on channel operations with no escape edge (goroutine leaks)"
}

// Prepare computes the blocks-forever summary over every function body in
// the module. Run falls back to single-package preparation when the
// framework did not call it.
func (a *GoLeak) Prepare(pkgs []*Package) {
	a.once.Do(func() {
		a.nodeWhy = make(map[ast.Node]string)
		a.objWhy = make(map[*types.Func]string)
		var units []*funcUnit
		for _, pkg := range pkgs {
			units = append(units, funcUnits(pkg)...)
		}
		for _, u := range units {
			if why := directBlocksForever(u); why != "" {
				a.mark(u, why)
			}
		}
		// Propagate through unconditional top-level calls: a wrapper that
		// just runs a blocker blocks too. Conditional calls stay unflagged
		// (may-block is too noisy for a leak report).
		for changed := true; changed; {
			changed = false
			for _, u := range units {
				if a.nodeWhy[u.node()] != "" || u.body() == nil {
					continue
				}
				for _, st := range u.body().List {
					es, ok := st.(*ast.ExprStmt)
					if !ok {
						continue
					}
					call, ok := unparen(es.X).(*ast.CallExpr)
					if !ok {
						continue
					}
					f := calleeFunc(u.pkg, call)
					if f == nil {
						continue
					}
					if why := a.objWhy[f]; why != "" {
						a.mark(u, "calls "+f.Name()+", which "+why)
						changed = true
						break
					}
				}
			}
		}
	})
}

func (a *GoLeak) mark(u *funcUnit, why string) {
	a.nodeWhy[u.node()] = why
	if u.obj != nil {
		a.objWhy[u.obj] = why
	}
}

func (a *GoLeak) Run(pkg *Package, r *Reporter) {
	a.Prepare([]*Package{pkg})
	for _, u := range funcUnits(pkg) {
		body := u.body()
		if body == nil {
			continue
		}
		// Visit this unit's own go statements. Nested literals are their
		// own units (including the literal a GoStmt spawns), so pruning
		// here still covers every spawn exactly once.
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				a.checkGo(u.pkg, x, r)
				return false
			}
			return true
		})
	}
}

func (a *GoLeak) checkGo(pkg *Package, g *ast.GoStmt, r *Reporter) {
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if why := a.nodeWhy[lit]; why != "" {
			r.Reportf(g.Pos(), "goroutine leak: this goroutine %s, so it can never exit; add a ctx.Done()/close-signal escape", why)
		}
		return
	}
	if f := calleeFunc(pkg, g.Call); f != nil {
		if why := a.objWhy[f]; why != "" {
			r.Reportf(g.Pos(), "goroutine leak: %s %s, so the goroutine can never exit; add a ctx.Done()/close-signal escape", f.Name(), why)
		}
	}
}

// directBlocksForever reports why a function body blocks forever on its
// own (no propagation), or "".
func directBlocksForever(u *funcUnit) string {
	body := u.body()
	if body == nil {
		return ""
	}
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if st.Cond == nil && hasBlockingOp(u.pkg, st.Body) && !loopEscapes(st.Body) {
				why = "loops forever over channel operations with no return, break, or terminating call"
				return false
			}
		case *ast.RangeStmt:
			if tickerChan(u.pkg, st.X) && !loopEscapes(st.Body) {
				why = "ranges over a time.Ticker channel, which is never closed"
				return false
			}
		}
		return true
	})
	return why
}

// hasBlockingOp reports whether the loop body contains a channel
// operation that can block: a select with no default clause, a send, a
// receive, or a range over a channel. Goroutine bodies and nested
// literals do not count — they block on their own stack.
func hasBlockingOp(pkg *Package, body *ast.BlockStmt) bool {
	blocking := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blocking = true
			}
		case *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				blocking = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isCh := tv.Type.Underlying().(*types.Chan); isCh {
					blocking = true
				}
			}
		}
		return !blocking
	})
	return blocking
}

// loopEscapes reports whether the loop body has a lexical way out of the
// loop: a return, a goto or labeled break (conservatively assumed to
// escape), an unlabeled break at the loop's own nesting level, or a
// terminator call. Breaks inside nested loops/switches/selects target
// those, not this loop.
func loopEscapes(body *ast.BlockStmt) bool {
	escape := false
	depth := 0
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if isBreakTarget(top) {
				depth--
			}
			return true
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // not pushed: Inspect sends no pop for pruned nodes
		case *ast.ReturnStmt:
			escape = true
		case *ast.BranchStmt:
			switch x.Tok {
			case token.GOTO:
				escape = true
			case token.BREAK:
				if x.Label != nil || depth == 0 {
					escape = true
				}
			}
		case *ast.ExprStmt:
			if isTerminatorCall(x.X) {
				escape = true
			}
		}
		stack = append(stack, n)
		if isBreakTarget(n) {
			depth++
		}
		return true
	})
	return escape
}

func isBreakTarget(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return true
	}
	return false
}

// tickerChan matches expressions that yield a never-closed ticker
// channel: a time.Ticker's C field or a time.Tick call.
func tickerChan(pkg *Package, e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name != "C" {
			return false
		}
		s, ok := pkg.Info.Selections[x]
		if !ok {
			return false
		}
		named, ok := derefType(s.Recv()).(*types.Named)
		return ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Ticker"
	case *ast.CallExpr:
		f := calleeFunc(pkg, x)
		return f != nil && f.Pkg() != nil && f.Pkg().Path() == "time" && f.Name() == "Tick"
	}
	return false
}
