package lint

// LockRegion flags network or disk I/O performed while a mutex is held in
// internal/core. It replaces the old syntactic lockio analyzer with real
// CFG reachability: held-lock sets are propagated through the
// control-flow graph (may-analysis — a lock held on SOME path into a
// statement counts), so conditional unlocks, early returns, and loops are
// modeled instead of approximated. Two interprocedural refinements come
// from the call-graph summaries:
//
//   - helper-held locks: a call to a method whose net effect is acquiring
//     (or releasing) a receiver/parameter mutex updates the held set at
//     the call site;
//   - transitive I/O: a call to a module function that performs network
//     or disk I/O anywhere on its synchronous path is itself a sink.
//
// The WAL's commit-before-ack is the sanctioned exception: writes through
// deta/internal/journal — direct or transitive — never count as I/O here
// (DESIGN.md §9 requires the journal append to happen under the round
// lock, before the ack is sent). Everything else that blocks on a peer's
// disk or network while holding a core mutex convoys every concurrent
// caller and is reported.
import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

type LockRegion struct {
	once   sync.Once
	io     map[*types.Func]ioInfo
	lockFX map[*types.Func][]lockEffect
}

func (*LockRegion) Name() string { return "lockregion" }
func (*LockRegion) Doc() string {
	return "flag network/disk I/O on any CFG path holding a mutex in internal/core (WAL journal exempt)"
}

// Prepare computes module-wide I/O and lock-effect summaries. Run falls
// back to single-package summaries if the framework did not call it.
func (a *LockRegion) Prepare(pkgs []*Package) {
	a.once.Do(func() {
		var units []*funcUnit
		for _, pkg := range pkgs {
			units = append(units, funcUnits(pkg)...)
		}
		a.io = computeIO(units)
		a.lockFX = computeLockFX(units)
	})
}

func (a *LockRegion) Run(pkg *Package, r *Reporter) {
	a.Prepare([]*Package{pkg})
	if !pathIn(pkg.Path, "deta/internal/core") {
		return
	}
	for _, u := range funcUnits(pkg) {
		a.checkUnit(u, r)
	}
}

// lockFact is the dataflow fact: printed mutex expression -> position of
// the acquisition that put it in the held set.
type lockFact = fact[string, token.Pos]

func (a *LockRegion) checkUnit(u *funcUnit, r *Reporter) {
	body := u.body()
	if body == nil {
		return
	}
	c := buildCFG(body)
	transfer := func(f lockFact, n ast.Node) { a.lockTransfer(u.pkg, f, n) }
	in := solveForward(c, lockFact{}, transfer)
	for _, blk := range reachableBlocks(c, in) {
		f := cloneFact(in[blk])
		for _, n := range blk.nodes {
			if len(f) > 0 {
				a.checkNode(u.pkg, f, n, r)
			}
			transfer(f, n)
		}
	}
}

// lockTransfer updates the held-lock set for one CFG node: direct
// Lock/Unlock statements and calls to helpers with net lock effects.
func (a *LockRegion) lockTransfer(pkg *Package, f lockFact, n ast.Node) {
	if st, ok := n.(*ast.ExprStmt); ok {
		if key, name, ok := mutexOp(pkg, st.X); ok {
			if name == "Lock" || name == "RLock" {
				f[key] = st.Pos()
			} else {
				delete(f, key)
			}
			return
		}
	}
	// Deferred unlocks run at function exit; they never release a lock
	// mid-function, so a DeferStmt has no transfer effect.
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	inspectSyncCalls(n, func(call *ast.CallExpr) {
		callee := calleeFunc(pkg, call)
		if callee == nil {
			return
		}
		for _, e := range callLockEffects(pkg, call, a.lockFX[callee]) {
			if e.acquire {
				f[e.key] = e.pos
			} else {
				delete(f, e.key)
			}
		}
	})
}

// checkNode reports I/O calls in n that execute with a non-empty held
// set. Goroutine spawns and deferred calls are skipped: the former run
// without the caller's lock, the latter at exit where inline analysis of
// the held set no longer applies.
func (a *LockRegion) checkNode(pkg *Package, f lockFact, n ast.Node, r *Reporter) {
	switch n.(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		return
	}
	inspectSyncCalls(n, func(call *ast.CallExpr) {
		desc := a.ioCallDesc(pkg, call)
		if desc == "" {
			return
		}
		r.Reportf(call.Pos(),
			"%s while holding %s: I/O under a core mutex convoys every concurrent caller behind one peer's disk/network latency",
			desc, heldKeys(f))
	})
}

// ioCallDesc classifies a call as an I/O sink: a direct primitive or a
// module function whose summary says it performs I/O on its sync path.
func (a *LockRegion) ioCallDesc(pkg *Package, call *ast.CallExpr) string {
	if k, via := ioPrimitive(pkg, call); k != 0 {
		return via + " " + k.String() + " I/O"
	}
	callee := calleeFunc(pkg, call)
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	if callee.Pkg().Path() == journalPath {
		return "" // WAL barrier: commit-before-ack is sanctioned under the lock
	}
	if info := a.io[callee]; info.kind != 0 {
		return "call to " + callee.Name() + " (" + info.kind.String() + " I/O via " + info.via + ")"
	}
	return ""
}

// inspectSyncCalls visits the call expressions under n that execute
// synchronously at this program point: nested goroutine spawns, deferred
// calls, and function-literal bodies are skipped.
func inspectSyncCalls(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch c := x.(type) {
		case *ast.GoStmt, *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(c)
		}
		return true
	})
}

// heldKeys renders the held-lock set deterministically for messages.
func heldKeys(f lockFact) string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	if len(keys) == 1 {
		return keys[0]
	}
	// Rare multi-lock case: stable order for reproducible output.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return strings.Join(keys, ", ")
}

// mutexOp matches `<expr>.Lock()/RLock()/Unlock()/RUnlock()` where the
// receiver is a sync.Mutex or sync.RWMutex, returning the printed
// receiver expression as the lock key.
func mutexOp(pkg *Package, e ast.Expr) (key, name string, ok bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return "", "", false
	}
	t := s.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}
