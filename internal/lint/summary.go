package lint

// summary.go is the call-graph summary pass: module-wide facts computed
// once over all loaded packages (via the Preparer hook) so the dataflow
// analyzers can reason across function boundaries.
//
// Three summaries are computed:
//
//   - transitive I/O: which module functions perform network or disk I/O
//     on their synchronous path (goroutine bodies and function literals do
//     not count — the caller does not wait on them). Calls into
//     deta/internal/journal are a deliberate barrier: the WAL's
//     commit-before-ack write is the sanctioned, documented exception to
//     both the lock-region and context rules (DESIGN.md §9).
//   - lock effects: the net mutexes a function acquires or releases on
//     behalf of its caller (receiver- or parameter-rooted), so
//     helper-held locks are visible at call sites.
//   - key taint (see keytaint.go): which fields, parameters, and returns
//     carry key material, by flow-insensitive fixpoint.
//
// All summaries key on *types.Func object identity, which is stable
// across packages because one Loader run shares a single dependency
// cache: the object a caller's Info.Uses resolves to is the same object
// the callee's package defined.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// funcUnit is one analyzable function body: a declared function/method
// (obj non-nil) or a function literal (obj nil).
type funcUnit struct {
	pkg  *Package
	decl *ast.FuncDecl // non-nil iff a declaration
	lit  *ast.FuncLit  // non-nil iff a literal
	obj  *types.Func   // nil for literals

	// parent is the innermost enclosing unit of a function literal (nil
	// for declarations and free-standing literals, e.g. package-level var
	// initializers). Analyzers that recurse into literals from the
	// enclosing body — keytaint checks closures with the captured-variable
	// taint that holds at their creation point — skip parented units to
	// avoid analyzing the same body twice.
	parent *funcUnit
}

func (u *funcUnit) body() *ast.BlockStmt {
	if u.decl != nil {
		return u.decl.Body
	}
	return u.lit.Body
}

func (u *funcUnit) node() ast.Node {
	if u.decl != nil {
		return u.decl
	}
	return u.lit
}

func (u *funcUnit) ftype() *ast.FuncType {
	if u.decl != nil {
		return u.decl.Type
	}
	return u.lit.Type
}

// funcUnits returns every function body in the package in source order.
// Literals are their own units — they are opaque in the enclosing
// function's CFG — but carry a parent link to the unit that lexically
// encloses them, maintained with a traversal stack (ast.Inspect calls the
// callback with nil after a node's children, which is when the stack
// pops).
func funcUnits(pkg *Package) []*funcUnit {
	var units []*funcUnit
	for _, file := range pkg.Files {
		var nodes []ast.Node // traversal stack
		var open []*funcUnit // enclosing units, innermost last
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				top := nodes[len(nodes)-1]
				nodes = nodes[:len(nodes)-1]
				if len(open) > 0 && open[len(open)-1].node() == top {
					open = open[:len(open)-1]
				}
				return true
			}
			nodes = append(nodes, n)
			var u *funcUnit
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					obj, _ := pkg.Info.Defs[x.Name].(*types.Func)
					u = &funcUnit{pkg: pkg, decl: x, obj: obj}
				}
			case *ast.FuncLit:
				u = &funcUnit{pkg: pkg, lit: x}
				if len(open) > 0 {
					u.parent = open[len(open)-1]
				}
			}
			if u != nil {
				units = append(units, u)
				open = append(open, u)
			}
			return true
		})
	}
	return units
}

// ---------------------------------------------------------------------------
// Transitive I/O summaries.

type ioKind uint8

const (
	ioNet ioKind = 1 << iota
	ioDisk
)

func (k ioKind) String() string {
	switch {
	case k&ioNet != 0 && k&ioDisk != 0:
		return "network/disk"
	case k&ioNet != 0:
		return "network"
	case k&ioDisk != 0:
		return "disk"
	}
	return "no"
}

// ioInfo records what kind of I/O a function performs on its sync path
// and a human-readable witness for the report message.
type ioInfo struct {
	kind ioKind
	via  string // first primitive or callee that contributed
}

const journalPath = "deta/internal/journal"

// netVerbsByPkg names the I/O primitives outside the module, keyed by the
// defining package of the resolved callee object (so interface methods
// like net.Conn.Read match without receiver gymnastics).
var netVerbs = map[string]map[string]bool{
	"net":        {"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true, "Accept": true},
	"crypto/tls": {"Read": true, "Write": true, "Handshake": true, "HandshakeContext": true},
	"io":         {"ReadFull": true, "ReadAtLeast": true, "Copy": true, "CopyN": true, "CopyBuffer": true},
	"bufio":      {"Flush": true, "Read": true},
	// Hardcoded so fixture packages (which see transport api-only) and
	// single-package runs still classify transport calls correctly.
	"deta/internal/transport": {
		"Call": true, "CallContext": true, "CallTypedContext": true,
		"Ping": true, "Serve": true, "Accept": true, "Redial": true,
	},
}

var diskFuncs = map[string]bool{
	"Create": true, "Open": true, "OpenFile": true, "ReadFile": true,
	"WriteFile": true, "Rename": true, "Remove": true, "RemoveAll": true,
	"Mkdir": true, "MkdirAll": true, "ReadDir": true, "Truncate": true,
}

var diskVerbs = map[string]bool{
	"Read": true, "Write": true, "ReadAt": true, "WriteAt": true,
	"Sync": true, "Truncate": true, "Seek": true, "ReadFrom": true, "WriteTo": true,
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves a call to the *types.Func it invokes (declared
// function, method, or interface method), or nil for builtins,
// conversions, and calls through plain function values.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // generic instantiation: transport.CallTypedContext[Req, Resp](...)
		return calleeFunc(pkg, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return calleeFunc(pkg, &ast.CallExpr{Fun: fun.X})
	}
	return nil
}

// ioPrimitive classifies a call as a direct I/O primitive. Calls into
// deta/internal/journal never count (WAL barrier, see package comment).
func ioPrimitive(pkg *Package, call *ast.CallExpr) (ioKind, string) {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		// Calls through func-typed fields or variables named like dialers.
		obj := pkg.Info.Uses[sel.Sel]
		if v, ok := obj.(*types.Var); ok {
			if _, isSig := v.Type().Underlying().(*types.Signature); isSig &&
				(name == "Redial" || strings.HasPrefix(name, "Dial")) {
				return ioNet, types.ExprString(sel.X) + "." + name
			}
		}
	}
	f := calleeFunc(pkg, call)
	if f == nil || f.Pkg() == nil {
		// A call through a bare func value named like a dialer.
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
				if _, isSig := v.Type().Underlying().(*types.Signature); isSig &&
					(id.Name == "redial" || strings.HasPrefix(id.Name, "dial") || strings.HasPrefix(id.Name, "Dial")) {
					return ioNet, id.Name
				}
			}
		}
		return 0, ""
	}
	path, name := f.Pkg().Path(), f.Name()
	if path == journalPath {
		return 0, ""
	}
	if verbs, ok := netVerbs[path]; ok {
		if verbs[name] || strings.HasPrefix(name, "Dial") {
			return ioNet, f.Pkg().Name() + "." + name
		}
	}
	if path == "net" && strings.HasPrefix(name, "Dial") {
		return ioNet, "net." + name
	}
	if path == "os" {
		if f.Type().(*types.Signature).Recv() == nil {
			if diskFuncs[name] {
				return ioDisk, "os." + name
			}
		} else if diskVerbs[name] {
			return ioDisk, "os.File." + name
		}
	}
	return 0, ""
}

// computeIO builds the transitive I/O summary over all declared module
// functions: direct primitives first, then a fixpoint over call edges.
// Goroutine bodies and function literals are excluded (async path); calls
// into deta/internal/journal are excluded (WAL barrier).
func computeIO(units []*funcUnit) map[*types.Func]ioInfo {
	io := make(map[*types.Func]ioInfo)
	edges := make(map[*types.Func][]*types.Func)
	for _, u := range units {
		if u.obj == nil {
			continue
		}
		info := io[u.obj]
		syncWalk(u.body(), func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if k, via := ioPrimitive(u.pkg, call); k != 0 {
				if info.kind&k != k {
					info.kind |= k
					if info.via == "" {
						info.via = via
					}
				}
				return
			}
			if f := calleeFunc(u.pkg, call); f != nil && f.Pkg() != nil &&
				strings.HasPrefix(f.Pkg().Path(), "deta/") && f.Pkg().Path() != journalPath {
				edges[u.obj] = append(edges[u.obj], f)
			}
		})
		io[u.obj] = info
	}
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			if u.obj == nil {
				continue
			}
			info := io[u.obj]
			for _, callee := range edges[u.obj] {
				ci := io[callee]
				if add := ci.kind &^ info.kind; add != 0 {
					info.kind |= add
					if info.via == "" {
						info.via = callee.Name()
					}
					changed = true
				}
			}
			io[u.obj] = info
		}
	}
	return io
}

// syncWalk visits the nodes of body that execute on the caller's
// synchronous path: it skips goroutine bodies and function literals
// entirely (including the spawned call expression itself).
func syncWalk(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Lock-effect summaries.

// lockEffect is one net mutex acquisition (or release) a function
// performs on behalf of its caller, rooted at the receiver (root == -1)
// or a parameter (root == index).
type lockEffect struct {
	root    int
	path    string // printed selector path below the root, e.g. ".mu"
	acquire bool
}

// computeLockFX summarizes, per declared function, the net locks it
// leaves held (or releases) for its caller, rooted at the receiver or a
// parameter. Effects propagate through call edges to a fixpoint (the
// same shape as computeIO): a helper that locks via another helper still
// surfaces at the outermost call site. Balanced Lock/Unlock — direct,
// through calls, or Lock with a deferred Unlock — cancel out. Effects
// rooted at a callee's locals never propagate; they are invisible in the
// caller's frame.
func computeLockFX(units []*funcUnit) map[*types.Func][]lockEffect {
	out := make(map[*types.Func][]lockEffect)
	// The cap bounds recursive call cycles; real helper chains stabilize
	// after one pass per call depth.
	for iter := 0; iter < 10; iter++ {
		next := make(map[*types.Func][]lockEffect)
		for _, u := range units {
			if u.obj == nil {
				continue
			}
			if fx := unitLockFX(u, out); len(fx) > 0 {
				next[u.obj] = fx
			}
		}
		if lockFXStable(out, next) {
			return next
		}
		out = next
	}
	return out
}

// unitLockFX computes one function's net lock effects given the current
// summaries of every other function.
func unitLockFX(u *funcUnit, summaries map[*types.Func][]lockEffect) []lockEffect {
	roots := unitRoots(u)
	var fx []lockEffect
	apply := func(root int, path string, acquire bool) {
		// A release cancels the latest matching acquire (and vice
		// versa); otherwise it is a net effect of its own.
		for i := len(fx) - 1; i >= 0; i-- {
			if fx[i].root == root && fx[i].path == path && fx[i].acquire != acquire {
				fx = append(fx[:i], fx[i+1:]...)
				return
			}
		}
		fx = append(fx, lockEffect{root: root, path: path, acquire: acquire})
	}
	// callFX maps a callee's summarized effects through the call site
	// into this function's frame. releasesOnly models deferred calls,
	// which (like deferred Unlocks) only ever discharge a held lock.
	callFX := func(call *ast.CallExpr, releasesOnly bool) {
		callee := calleeFunc(u.pkg, call)
		if callee == nil {
			return
		}
		for _, e := range summaries[callee] {
			if releasesOnly && e.acquire {
				continue
			}
			var base ast.Expr
			if e.root == -1 {
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				base = sel.X
			} else {
				if e.root >= len(call.Args) {
					continue
				}
				base = call.Args[e.root]
			}
			if root, path, ok := exprRoot(u.pkg, base, roots); ok {
				apply(root, path+e.path, e.acquire)
			}
		}
	}
	syncWalk(u.body(), func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if _, name, ok := mutexOp(u.pkg, st.X); ok {
				if root, path, ok := splitRoot(u.pkg, st.X, roots); ok {
					apply(root, path, name == "Lock" || name == "RLock")
				}
				return
			}
			if call, ok := unparen(st.X).(*ast.CallExpr); ok {
				callFX(call, false)
			}
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if call, ok := unparen(rhs).(*ast.CallExpr); ok {
					callFX(call, false)
				}
			}
		case *ast.DeferStmt:
			if _, name, ok := mutexOp(u.pkg, st.Call); ok {
				if name == "Unlock" || name == "RUnlock" {
					if root, path, ok := splitRoot(u.pkg, st.Call, roots); ok {
						apply(root, path, false)
					}
				}
				return
			}
			callFX(st.Call, true)
		}
	})
	return fx
}

// lockFXStable reports whether two summary generations are identical, so
// the fixpoint can stop iterating.
func lockFXStable(a, b map[*types.Func][]lockEffect) bool {
	if len(a) != len(b) {
		return false
	}
	for f, afx := range a {
		bfx, ok := b[f]
		if !ok || len(afx) != len(bfx) {
			return false
		}
		for i := range afx {
			if afx[i] != bfx[i] {
				return false
			}
		}
	}
	return true
}

// unitRoots maps the receiver (-1) and parameter objects (by index) of a
// function so lock effects can be rooted relative to the caller's
// arguments.
func unitRoots(u *funcUnit) map[types.Object]int {
	roots := make(map[types.Object]int)
	if u.decl != nil && u.decl.Recv != nil && len(u.decl.Recv.List) > 0 && len(u.decl.Recv.List[0].Names) > 0 {
		if obj := u.pkg.Info.Defs[u.decl.Recv.List[0].Names[0]]; obj != nil {
			roots[obj] = -1
		}
	}
	i := 0
	for _, field := range u.ftype().Params.List {
		for _, name := range field.Names {
			if obj := u.pkg.Info.Defs[name]; obj != nil {
				roots[obj] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return roots
}

// splitRoot decomposes the mutex expression of a Lock/Unlock call
// (`recv.mu.Lock()`) into a root (receiver/parameter index) and the
// selector path below it ("" if the root IS the mutex).
func splitRoot(pkg *Package, call ast.Expr, roots map[types.Object]int) (int, string, bool) {
	ce, ok := unparen(call).(*ast.CallExpr)
	if !ok {
		return 0, "", false
	}
	sel, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, "", false
	}
	return exprRoot(pkg, sel.X, roots)
}

// exprRoot decomposes a selector chain (possibly through & and *) into a
// root (receiver/parameter index) and the printed path below it ("" if
// the root IS the expression).
func exprRoot(pkg *Package, e ast.Expr, roots map[types.Object]int) (int, string, bool) {
	full := types.ExprString(unparen(e))
	base := unparen(e)
	for {
		switch x := base.(type) {
		case *ast.SelectorExpr:
			base = unparen(x.X)
		case *ast.StarExpr:
			base = unparen(x.X)
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return 0, "", false
			}
			base = unparen(x.X)
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			root, ok := roots[obj]
			if !ok {
				return 0, "", false
			}
			path := strings.TrimLeft(full, "&*")
			return root, strings.TrimPrefix(path, x.Name), true
		default:
			return 0, "", false
		}
	}
}

// callLockEffects maps a callee's lock effects through a call site,
// returning (lock key, acquire, position) triples in the caller's frame.
func callLockEffects(pkg *Package, call *ast.CallExpr, fx []lockEffect) []appliedLockFX {
	var recvStr string
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvStr = types.ExprString(sel.X)
	}
	var out []appliedLockFX
	for _, e := range fx {
		var root string
		if e.root == -1 {
			if recvStr == "" {
				continue // receiver effect on a non-method call form
			}
			root = recvStr
		} else {
			if e.root >= len(call.Args) {
				continue
			}
			root = types.ExprString(call.Args[e.root])
		}
		out = append(out, appliedLockFX{key: root + e.path, acquire: e.acquire, pos: call.Pos()})
	}
	return out
}

type appliedLockFX struct {
	key     string
	acquire bool
	pos     token.Pos
}

// ---------------------------------------------------------------------------
// Lock-class summaries (lockorder).
//
// Lock identity here is a *class*, not an instance: a struct-field mutex
// is named by its owning named type plus the field ("core.AggregatorNode.mu",
// embedded owners resolved through the selection's index path), a
// package-level mutex by "pkg.var". Classes are global strings, so —
// unlike the root/path lockEffect form above, which exists to map
// instances through call sites — class effects propagate through call
// edges with no argument mapping at all. Local mutexes have no class and
// are invisible to the order graph.

// lockClass names the lock class of a mutex-valued expression, or "" if
// the expression has no class (locals, unresolvable chains).
func lockClass(pkg *Package, e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[x]; ok {
			return fieldClass(s)
		}
		// Package-qualified selector: otherpkg.GlobalMu.
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}

// fieldClass names the owning named type of a selected field:
// "pkg.Type.field". The selection's index path is walked so the owner is
// the struct that actually declares the field, even through embedding.
func fieldClass(s *types.Selection) string {
	t := s.Recv()
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		st, ok := derefType(t).Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		t = st.Field(i).Type()
	}
	named, ok := derefType(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + s.Obj().Name()
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// mutexClassOp matches a mutex Lock/RLock/Unlock/RUnlock call whose lock
// has a resolvable class.
func mutexClassOp(pkg *Package, e ast.Expr) (class, name string, ok bool) {
	if _, n, isOp := mutexOp(pkg, e); isOp {
		call := unparen(e).(*ast.CallExpr)
		sel := call.Fun.(*ast.SelectorExpr)
		if c := lockClass(pkg, sel.X); c != "" {
			return c, n, true
		}
	}
	return "", "", false
}

// classFX is one net class-level lock effect a function performs for its
// caller. The same cancellation discipline as lockEffect applies, but no
// call-site mapping is needed: classes are instance-independent.
type classFX struct {
	class   string
	acquire bool
}

// computeClassFX mirrors computeLockFX at class granularity: the net lock
// classes a function leaves held (or releases), to a fixpoint over call
// edges.
func computeClassFX(units []*funcUnit) map[*types.Func][]classFX {
	out := make(map[*types.Func][]classFX)
	for iter := 0; iter < 10; iter++ {
		next := make(map[*types.Func][]classFX)
		for _, u := range units {
			if u.obj == nil {
				continue
			}
			if fx := unitClassFX(u, out); len(fx) > 0 {
				next[u.obj] = fx
			}
		}
		if classFXStable(out, next) {
			return next
		}
		out = next
	}
	return out
}

func unitClassFX(u *funcUnit, summaries map[*types.Func][]classFX) []classFX {
	var fx []classFX
	apply := func(class string, acquire bool) {
		for i := len(fx) - 1; i >= 0; i-- {
			if fx[i].class == class && fx[i].acquire != acquire {
				fx = append(fx[:i], fx[i+1:]...)
				return
			}
		}
		fx = append(fx, classFX{class: class, acquire: acquire})
	}
	callFX := func(call *ast.CallExpr, releasesOnly bool) {
		callee := calleeFunc(u.pkg, call)
		if callee == nil {
			return
		}
		for _, e := range summaries[callee] {
			if releasesOnly && e.acquire {
				continue
			}
			apply(e.class, e.acquire)
		}
	}
	syncWalk(u.body(), func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if class, name, ok := mutexClassOp(u.pkg, st.X); ok {
				apply(class, name == "Lock" || name == "RLock")
				return
			}
			if call, ok := unparen(st.X).(*ast.CallExpr); ok {
				callFX(call, false)
			}
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if call, ok := unparen(rhs).(*ast.CallExpr); ok {
					callFX(call, false)
				}
			}
		case *ast.DeferStmt:
			if class, name, ok := mutexClassOp(u.pkg, st.Call); ok {
				if name == "Unlock" || name == "RUnlock" {
					apply(class, false)
				}
				return
			}
			callFX(st.Call, true)
		}
	})
	return fx
}

func classFXStable(a, b map[*types.Func][]classFX) bool {
	if len(a) != len(b) {
		return false
	}
	for f, afx := range a {
		bfx, ok := b[f]
		if !ok || len(afx) != len(bfx) {
			return false
		}
		for i := range afx {
			if afx[i] != bfx[i] {
				return false
			}
		}
	}
	return true
}

// acqWitness records where a summarized acquisition actually happens, for
// report provenance.
type acqWitness struct {
	pos token.Pos
	fn  string
}

// computeLockAcq summarizes, per declared function, every lock class it
// MAY acquire on its synchronous path — directly or through module
// callees at any depth (a may-union fixpoint, unlike the net effects
// above: an acquire-then-release still establishes lock order). The
// journal is NOT exempt here: its mutex participates in ordering like any
// other.
func computeLockAcq(units []*funcUnit) map[*types.Func]map[string]acqWitness {
	acq := make(map[*types.Func]map[string]acqWitness)
	edges := make(map[*types.Func][]*types.Func)
	for _, u := range units {
		if u.obj == nil {
			continue
		}
		set := make(map[string]acqWitness)
		syncWalk(u.body(), func(n ast.Node) {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if class, name, ok := mutexClassOp(u.pkg, st.X); ok && (name == "Lock" || name == "RLock") {
					if _, seen := set[class]; !seen {
						set[class] = acqWitness{pos: st.Pos(), fn: fnDisplayName(u)}
					}
				}
			case *ast.CallExpr:
				if f := calleeFunc(u.pkg, st); f != nil && f.Pkg() != nil &&
					strings.HasPrefix(f.Pkg().Path(), "deta/") {
					edges[u.obj] = append(edges[u.obj], f)
				}
			}
		})
		if len(set) > 0 {
			acq[u.obj] = set
		}
	}
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			if u.obj == nil {
				continue
			}
			for _, callee := range edges[u.obj] {
				for class, w := range acq[callee] {
					set := acq[u.obj]
					if set == nil {
						set = make(map[string]acqWitness)
						acq[u.obj] = set
					}
					if _, ok := set[class]; !ok {
						set[class] = w
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// fnDisplayName names a function unit for report messages.
func fnDisplayName(u *funcUnit) string {
	if u.decl != nil {
		if u.decl.Recv != nil && len(u.decl.Recv.List) > 0 {
			return fmt.Sprintf("(%s).%s", types.ExprString(u.decl.Recv.List[0].Type), u.decl.Name.Name)
		}
		return u.decl.Name.Name
	}
	return "func literal"
}
