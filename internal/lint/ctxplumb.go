package lint

import (
	"go/ast"
	"go/types"
)

// CtxPlumb enforces context plumbing on the RPC/fleet surface
// (internal/transport and internal/core): exported functions that take a
// context.Context must take it as the first parameter, and library code
// must never mint its own root context — context.Background() (or TODO())
// inside the transport or core silently detaches an operation from the
// caller's deadline and cancellation, which is exactly how a dead
// aggregator turns into a hung party. Entry points (cmd/*) own the root
// context; everything below them threads it.
type CtxPlumb struct{}

func (CtxPlumb) Name() string { return "ctxplumb" }
func (CtxPlumb) Doc() string {
	return "exported RPC/fleet functions take ctx first and never call context.Background()"
}

var ctxPlumbScope = []string{
	"deta/internal/transport",
	"deta/internal/core",
}

func (CtxPlumb) Run(pkg *Package, r *Reporter) {
	if !pathIn(pkg.Path, ctxPlumbScope...) {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if exported(x) {
					checkCtxFirst(pkg, r, x)
				}
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && isContextRoot(pkg, sel) {
					r.Reportf(x.Pos(),
						"context.%s() in library code detaches the call from the caller's deadline and cancellation; accept a ctx parameter instead",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// checkCtxFirst reports an exported function whose context.Context
// parameter is not in first position.
func checkCtxFirst(pkg *Package, r *Reporter, fn *ast.FuncDecl) {
	if fn.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pkg, field.Type) && pos > 0 {
			r.Reportf(field.Pos(),
				"%s: context.Context must be the first parameter", fn.Name.Name)
			return
		}
		pos += n
	}
}

func isContextType(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isContextRoot matches context.Background / context.TODO by resolved
// object, not by name, so a local variable called `context` cannot
// confuse it.
func isContextRoot(pkg *Package, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "context"
}
