package lint

// CtxFlow is interprocedural ctxplumb: ctxplumb checks that a context
// parameter, where present, is first and never minted internally;
// CtxFlow checks that functions which NEED one have one. An exported
// transport/core function that transitively performs network I/O on its
// synchronous path but takes no context.Context cannot be cancelled or
// deadlined by its caller — the exact hung-party failure ctx plumbing
// exists to prevent.
//
// Deliberate exclusions:
//   - goroutine bodies and function literals (the caller does not wait);
//   - interface- and lifecycle-pinned method names (Read, Write, Close,
//     Accept, Serve, ReadFrom, WriteTo): their signatures are fixed by
//     io/net contracts and they are bounded by Close, mirroring
//     net/http.Server.Serve;
//   - the WAL (deta/internal/journal): local fsync is not cancellable in
//     Go, and the commit-before-ack path must not be (DESIGN.md §9).
import (
	"go/ast"
	"go/types"
	"sync"
)

type CtxFlow struct {
	once sync.Once
	io   map[*types.Func]ioInfo
}

func (*CtxFlow) Name() string { return "ctxflow" }
func (*CtxFlow) Doc() string {
	return "exported transport/core functions that transitively do network I/O must take a context.Context"
}

var ctxFlowScope = []string{
	"deta/internal/transport",
	"deta/internal/core",
}

// ctxFlowExemptNames are signature-pinned by io/net interface contracts.
var ctxFlowExemptNames = map[string]bool{
	"Read": true, "Write": true, "Close": true, "Accept": true,
	"Serve": true, "ReadFrom": true, "WriteTo": true,
}

// Prepare computes the module-wide transitive I/O summary. Run falls
// back to a single-package summary if the framework did not call it.
func (a *CtxFlow) Prepare(pkgs []*Package) {
	a.once.Do(func() {
		var units []*funcUnit
		for _, pkg := range pkgs {
			units = append(units, funcUnits(pkg)...)
		}
		a.io = computeIO(units)
	})
}

func (a *CtxFlow) Run(pkg *Package, r *Reporter) {
	a.Prepare([]*Package{pkg})
	if !pathIn(pkg.Path, ctxFlowScope...) {
		return
	}
	for _, u := range funcUnits(pkg) {
		if u.decl == nil || u.obj == nil || !exported(u.decl) {
			continue
		}
		if ctxFlowExemptNames[u.decl.Name.Name] {
			continue
		}
		if hasCtxParam(pkg, u.decl) {
			continue
		}
		info := a.io[u.obj]
		if info.kind&ioNet == 0 {
			continue
		}
		r.Reportf(u.decl.Name.Pos(),
			"%s transitively performs network I/O (via %s) but takes no context.Context: callers cannot bound or cancel it",
			fnDisplayName(u), info.via)
	}
}

// hasCtxParam reports whether any parameter is a context.Context
// (position is ctxplumb's business, presence is ours).
func hasCtxParam(pkg *Package, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if isContextType(pkg, field.Type) {
			return true
		}
	}
	return false
}
