package lint

// baseline.go lets a new analyzer land warn-only: `deta-lint
// -baseline-write findings.json` records the current findings, and a
// later `deta-lint -baseline findings.json` fails only on findings NOT in
// the baseline. Entries match on (analyzer, repo-relative file, message)
// as a multiset — line and column are deliberately ignored so unrelated
// edits above a known finding do not invalidate the baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineEntry is one recorded finding, line-independent.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // relative to the baseline root
	Message  string `json:"message"`
}

// baselineFile is the on-disk format, versioned for forward evolution.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// baselineRel makes a finding's file path relative to root for stable
// baselines across checkouts; absolute paths outside root stay absolute.
func baselineRel(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil {
		return filepath.ToSlash(rel)
	}
	return file
}

// WriteBaseline records findings (relative to root) at path, sorted and
// deterministic.
func WriteBaseline(path, root string, findings []Finding) error {
	entries := make([]BaselineEntry, 0, len(findings))
	for _, f := range findings {
		entries = append(entries, BaselineEntry{
			Analyzer: f.Analyzer,
			File:     baselineRel(root, f.File),
			Message:  f.Message,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(baselineFile{Version: 1, Findings: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a baseline as a multiset of entries.
func ReadBaseline(path string) (map[BaselineEntry]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if bf.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has version %d, want 1", path, bf.Version)
	}
	out := make(map[BaselineEntry]int, len(bf.Findings))
	for _, e := range bf.Findings {
		out[e]++
	}
	return out, nil
}

// FilterBaseline returns the findings NOT covered by the baseline
// multiset. Each baseline entry absorbs at most as many findings as it
// was recorded times, so a finding that multiplies is still surfaced.
func FilterBaseline(findings []Finding, base map[BaselineEntry]int, root string) []Finding {
	remaining := make(map[BaselineEntry]int, len(base))
	for k, v := range base {
		remaining[k] = v
	}
	var kept []Finding
	for _, f := range findings {
		e := BaselineEntry{Analyzer: f.Analyzer, File: baselineRel(root, f.File), Message: f.Message}
		if remaining[e] > 0 {
			remaining[e]--
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
