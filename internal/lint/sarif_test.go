package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSARIFRoundTrip marshals a representative finding set, unmarshals it
// back through the same structs, and checks every field the CI viewer
// depends on: schema/version, the sorted rule table (including the
// pseudo-analyzer synthesized from a finding), root-relative
// forward-slash URIs, and line/column regions.
func TestSARIFRoundTrip(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("work", "repo")
	findings := []Finding{
		{
			Analyzer: "lockorder",
			File:     filepath.Join(root, "internal", "core", "a.go"),
			Line:     12, Col: 3,
			Message: "potential deadlock: lock-order cycle",
		},
		{
			Analyzer: "lintignore",
			File:     filepath.Join(root, "internal", "core", "b.go"),
			Line:     4, Col: 1,
			Message: "malformed directive",
		},
	}
	data, err := MarshalSARIF(root, All(), findings)
	if err != nil {
		t.Fatal(err)
	}

	var doc sarifLog
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if doc.Schema != sarifSchema || doc.Version != sarifVersion {
		t.Fatalf("schema/version = %q/%q", doc.Schema, doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "deta-lint" {
		t.Fatalf("driver name %q", run.Tool.Driver.Name)
	}

	// Rule table: every suite analyzer plus the synthesized lintignore
	// rule, sorted by ID.
	byID := map[string]bool{}
	for i, r := range run.Tool.Driver.Rules {
		byID[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
		if i > 0 && run.Tool.Driver.Rules[i-1].ID >= r.ID {
			t.Errorf("rules not sorted: %s >= %s", run.Tool.Driver.Rules[i-1].ID, r.ID)
		}
	}
	for _, a := range All() {
		if !byID[a.Name()] {
			t.Errorf("rule table missing analyzer %s", a.Name())
		}
	}
	if !byID["lintignore"] {
		t.Error("rule table missing synthesized lintignore rule")
	}

	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "lockorder" || r0.Level != "error" {
		t.Fatalf("result 0 ruleId/level = %q/%q", r0.RuleID, r0.Level)
	}
	if r0.Message.Text != findings[0].Message {
		t.Fatalf("result 0 message %q", r0.Message.Text)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/a.go" {
		t.Fatalf("URI %q, want root-relative forward-slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 3 {
		t.Fatalf("region %+v", loc.Region)
	}
}

// TestSARIFWriteEmpty pins the no-findings shape: results must serialize
// as an empty array (not null — some viewers reject null), and the file
// lands on disk with a trailing newline.
func TestSARIFWriteEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.sarif")
	if err := WriteSARIF(path, t.TempDir(), All(), nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("missing trailing newline")
	}
	var raw struct {
		Runs []struct {
			Results json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw.Runs[0].Results) != "[]" {
		t.Fatalf("empty results serialized as %s, want []", raw.Runs[0].Results)
	}
}
