package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module so loader failure modes can be
// exercised without polluting the real tree. Returns the module root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module brokentest\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// A package whose files are all excluded by build constraints must be a
// loader error, not a panic or a silently-skipped package: a lint run
// that quietly drops a package would report "clean" for code it never saw.
func TestLoadBuildTagExcludedPackageErrors(t *testing.T) {
	t.Parallel()
	root := writeModule(t, map[string]string{
		"excluded/excluded.go": "//go:build never\n\npackage excluded\n",
	})
	pkgs, err := NewLoader().Load(root, "./excluded")
	if err == nil {
		t.Fatalf("want load error for build-tag-excluded package, got %d package(s)", len(pkgs))
	}
	if !strings.Contains(err.Error(), "brokentest/excluded") {
		t.Fatalf("error should name the package, got: %v", err)
	}
}

// Type errors in a module package are fatal: the linter must not report
// findings (or their absence) against a half-checked tree.
func TestLoadTypeErrorFails(t *testing.T) {
	t.Parallel()
	root := writeModule(t, map[string]string{
		"typeerr/typeerr.go": "package typeerr\n\nvar x int = \"not an int\"\n",
	})
	pkgs, err := NewLoader().Load(root, "./typeerr")
	if err == nil {
		t.Fatalf("want type-check error, got %d package(s)", len(pkgs))
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("want a type-checking error, got: %v", err)
	}
}

// Syntax errors that go list's import scan does not catch (the body of a
// function) must still fail the load at the parse stage.
func TestLoadParseErrorFails(t *testing.T) {
	t.Parallel()
	root := writeModule(t, map[string]string{
		"parseerr/parseerr.go": "package parseerr\n\nfunc f( {\n",
	})
	_, err := NewLoader().Load(root, "./parseerr")
	if err == nil {
		t.Fatal("want parse error")
	}
	if !strings.Contains(err.Error(), "parseerr") {
		t.Fatalf("error should name the package, got: %v", err)
	}
}

// A healthy sibling package next to a broken one still fails the whole
// load: partial results are worse than an explicit error.
func TestLoadBrokenSiblingFailsWholeLoad(t *testing.T) {
	t.Parallel()
	root := writeModule(t, map[string]string{
		"ok/ok.go":           "package ok\n\nfunc OK() int { return 1 }\n",
		"typeerr/typeerr.go": "package typeerr\n\nvar x int = \"not an int\"\n",
	})
	if _, err := NewLoader().Load(root, "./..."); err == nil {
		t.Fatal("want error when any matched package is broken")
	}
}

func TestLoadDirEmptyDirErrors(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if _, err := NewLoader().LoadDir(dir, "deta/internal/nothing"); err == nil {
		t.Fatal("want error for a directory with no Go files")
	}
}
