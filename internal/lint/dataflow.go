package lint

// dataflow.go is a small forward dataflow solver over the CFGs built in
// cfg.go. Facts are per-variable maps (variable -> lattice value); the
// join at block entry is set union with first-writer-wins on the value,
// which makes every analysis here a may-analysis: a fact holds at a
// program point if it holds on SOME path reaching it. Transfer functions
// may kill facts (sanitizer reassignment, mutex unlock); out-facts remain
// monotone in in-facts, so the worklist terminates.

import "go/ast"

// fact is a per-variable map from an analysis-chosen key to a label
// (e.g. variable object -> taint source, or lock key -> acquire site).
type fact[K comparable, V any] map[K]V

func cloneFact[K comparable, V any](f fact[K, V]) fact[K, V] {
	out := make(fact[K, V], len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// unionInto merges src into dst (first writer wins) and reports whether
// dst changed.
func unionInto[K comparable, V any](dst, src fact[K, V]) bool {
	changed := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			changed = true
		}
	}
	return changed
}

// solveForward runs a worklist iteration from the entry block with
// entryFact and returns the fact at the START of every reachable block.
// transfer is applied to each node of a block in order and mutates the
// fact in place.
func solveForward[K comparable, V any](
	c *cfg,
	entryFact fact[K, V],
	transfer func(f fact[K, V], n ast.Node),
) map[*cfgBlock]fact[K, V] {
	in := map[*cfgBlock]fact[K, V]{c.entry: cloneFact(entryFact)}
	work := []*cfgBlock{c.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		f := cloneFact(in[blk])
		for _, n := range blk.nodes {
			transfer(f, n)
		}
		for _, succ := range blk.succs {
			existing, seen := in[succ]
			if !seen {
				in[succ] = cloneFact(f)
				work = append(work, succ)
				continue
			}
			if unionInto(existing, f) {
				work = append(work, succ)
			}
		}
	}
	return in
}

// reachableBlocks returns the blocks that the solver visited, in
// allocation order (which tracks source order closely enough for
// deterministic reporting).
func reachableBlocks[K comparable, V any](c *cfg, in map[*cfgBlock]fact[K, V]) []*cfgBlock {
	var out []*cfgBlock
	for _, blk := range c.blocks {
		if _, ok := in[blk]; ok {
			out = append(out, blk)
		}
	}
	return out
}
