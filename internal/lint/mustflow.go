package lint

// mustflow.go is the backward must-analysis counterpart to dataflow.go's
// forward may-solver. The single client question today: "does some node
// matching a predicate execute on EVERY path from this point to function
// exit?" — which is how waldisc decides whether an unexported helper is a
// journal-append wrapper (every path through it appends) and therefore
// transfers the guard to its call sites.
//
// The lattice is boolean with AND at block exit: a block's out-fact is
// true only when every successor's in-fact is true, and in = gen ∨ out.
// That is a greatest-fixpoint problem, so facts start at true and only
// lower; blocks with no path to exit (infinite loops) keep vacuous truth,
// which is the conservative answer for "nothing observable escapes".

import "go/ast"

// solveBackwardMust returns, per reachable block, whether a node matching
// hit executes on every path from the START of that block to function
// exit. Iteration order follows c.blocks (allocation order), so results
// are deterministic.
func solveBackwardMust(c *cfg, hit func(ast.Node) bool) map[*cfgBlock]bool {
	// Restrict to blocks reachable from entry: dead continuations have
	// arbitrary facts and must not influence real blocks (they can't —
	// edges only leave them — but excluding them keeps the map honest).
	reach := map[*cfgBlock]bool{}
	stack := []*cfgBlock{c.entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[blk] {
			continue
		}
		reach[blk] = true
		for _, s := range blk.succs {
			stack = append(stack, s)
		}
	}

	gen := make(map[*cfgBlock]bool, len(reach))
	for blk := range reach {
		for _, n := range blk.nodes {
			if hit(n) {
				gen[blk] = true
				break
			}
		}
	}

	in := make(map[*cfgBlock]bool, len(reach))
	for blk := range reach {
		in[blk] = true
	}
	if c.exit != nil && reach[c.exit] {
		in[c.exit] = gen[c.exit]
	}

	for changed := true; changed; {
		changed = false
		for _, blk := range c.blocks {
			if !reach[blk] || blk == c.exit {
				continue
			}
			out := len(blk.succs) > 0
			for _, s := range blk.succs {
				if !in[s] {
					out = false
					break
				}
			}
			v := gen[blk] || out
			if v != in[blk] {
				in[blk] = v
				changed = true
			}
		}
	}
	return in
}

// mustOnEveryPath reports whether a node matching hit executes on every
// path from function entry to exit.
func mustOnEveryPath(c *cfg, hit func(ast.Node) bool) bool {
	return solveBackwardMust(c, hit)[c.entry]
}
