package lint

// AllocFree enforces allocation discipline on functions annotated with a
// `//perf:hotpath` doc-comment line. The zero-copy data plane (pooled
// tensor buffers, the fixed-layout wire codec, the fused transform) won
// its numbers by eliminating per-message allocations; this analyzer pins
// that property statically so a careless edit cannot quietly reintroduce
// them.
//
// Inside an annotated function's body — including function literals (the
// parallel.For closures ARE the hot loops) but excluding goroutine
// spawns — these are findings:
//
//   - make / new / append (append may grow its backing array)
//   - map writes (insertion can allocate buckets)
//   - defer inside a loop (each iteration heap-allocates a defer record)
//   - interface boxing: passing a concrete non-pointer-shaped value
//     (int, string, struct, slice, ...) to an interface-typed parameter
//   - a synchronous call to an unannotated module function whose
//     alloc-effect summary (computeAllocFX, a fixpoint over call edges)
//     says it may allocate
//
// Trust boundaries: a call to another `//perf:hotpath` function is clean
// (its own body is checked); deta/internal/parallel (amortized worker
// pool) and deta/internal/journal (the WAL durability barrier) are exempt
// callees; fmt.Errorf / errors.New are exempt because error construction
// is cold-path by contract — if an error is being built, the fast path
// has already been abandoned.
//
// Sanctioned allocations inside a hot region (a pool-miss fallback, a
// bounded cache insert) are acknowledged with //lint:ignore allocfree and
// a reason, keeping the discipline auditable.
//
// The annotation itself is checked: a `//perf:hotpath` comment that is
// not the doc comment of a function declaration with a body is a finding
// (a floating or misattached annotation silently protects nothing).
import (
	"go/ast"
	"go/types"
	"strings"
	"sync"
)

const hotpathDirective = "//perf:hotpath"

type AllocFree struct {
	once  sync.Once
	hot   map[*types.Func]bool
	alloc map[*types.Func]allocInfo
}

// allocInfo summarizes whether a function may allocate on its synchronous
// path and the first witness for the report message.
type allocInfo struct {
	may bool
	via string
}

func (*AllocFree) Name() string { return "allocfree" }
func (*AllocFree) Doc() string {
	return "flag allocations (make/new/append/map writes/boxing/defer-in-loop) in //perf:hotpath regions and their callees"
}

// isHotpathComment matches the directive, tolerating a trailing comment
// (fixtures put want-markers on the same line).
func isHotpathComment(text string) bool {
	rest, ok := strings.CutPrefix(text, hotpathDirective)
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

// hotpathAnnotated reports whether a function declaration carries the
// directive in its doc comment.
func hotpathAnnotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if isHotpathComment(c.Text) {
			return true
		}
	}
	return false
}

// Prepare collects the module-wide annotated set and the alloc-effect
// summary. Run falls back to single-package preparation when the
// framework did not call it.
func (a *AllocFree) Prepare(pkgs []*Package) {
	a.once.Do(func() {
		a.hot = make(map[*types.Func]bool)
		var units []*funcUnit
		for _, pkg := range pkgs {
			units = append(units, funcUnits(pkg)...)
		}
		for _, u := range units {
			if u.decl != nil && u.obj != nil && hotpathAnnotated(u.decl) {
				a.hot[u.obj] = true
			}
		}
		a.alloc = computeAllocFX(units)
	})
}

func (a *AllocFree) Run(pkg *Package, r *Reporter) {
	a.Prepare([]*Package{pkg})
	a.checkAnnotations(pkg, r)
	for _, u := range funcUnits(pkg) {
		if u.decl != nil && u.obj != nil && a.hot[u.obj] {
			a.checkRegion(u, r)
		}
	}
}

// checkAnnotations flags malformed //perf:hotpath directives: not the doc
// comment of a function declaration, or on a declaration with no body
// (nothing to check, so nothing is protected).
func (a *AllocFree) checkAnnotations(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		valid := make(map[*ast.Comment]bool)
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if !isHotpathComment(c.Text) {
					continue
				}
				if fd.Body == nil {
					r.Reportf(c.Pos(), "malformed //perf:hotpath: %s has no body to check; annotate the implementation instead", fd.Name.Name)
				}
				valid[c] = true
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if isHotpathComment(c.Text) && !valid[c] {
					r.Reportf(c.Pos(), "malformed //perf:hotpath: the directive must be the doc comment of a function declaration")
				}
			}
		}
	}
}

// checkRegion walks one annotated function body and reports every
// allocation construct. Function literals are part of the region (the
// hot loops live in parallel.For closures); goroutine spawns are not.
func (a *AllocFree) checkRegion(u *funcUnit, r *Reporter) {
	pkg := u.pkg
	loopDepth := 0
	var stack []ast.Node
	ast.Inspect(u.decl.Body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth--
			}
			return true
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			return false // not pushed: Inspect sends no pop for pruned nodes
		case *ast.DeferStmt:
			if loopDepth > 0 {
				r.Reportf(x.Pos(), "defer inside a loop on a //perf:hotpath function: each iteration heap-allocates a defer record")
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				a.checkMapWrite(pkg, lhs, r)
			}
		case *ast.IncDecStmt:
			a.checkMapWrite(pkg, x.X, r)
		case *ast.CallExpr:
			a.checkCall(pkg, x, r)
		}
		stack = append(stack, n)
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		}
		return true
	})
}

func (a *AllocFree) checkMapWrite(pkg *Package, lhs ast.Expr, r *Reporter) {
	idx, ok := unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if tv, ok := pkg.Info.Types[idx.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			r.Reportf(lhs.Pos(), "map write on a //perf:hotpath function: insertion can allocate buckets")
		}
	}
}

// checkCall classifies one call inside a hot region: allocating builtins,
// allocating module callees, and interface boxing of arguments.
func (a *AllocFree) checkCall(pkg *Package, call *ast.CallExpr, r *Reporter) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				r.Reportf(call.Pos(), "make on a //perf:hotpath function allocates")
			case "new":
				r.Reportf(call.Pos(), "new on a //perf:hotpath function allocates")
			case "append":
				r.Reportf(call.Pos(), "append on a //perf:hotpath function may grow its backing array")
			}
			return
		}
	}
	callee := calleeFunc(pkg, call)
	if allocExemptCallee(callee) {
		return // cold-path error construction by contract
	}
	if callee != nil && callee.Pkg() != nil && !a.hot[callee] &&
		strings.HasPrefix(callee.Pkg().Path(), "deta/") && !allocExemptPkg(callee.Pkg().Path()) {
		if info := a.alloc[callee]; info.may {
			r.Reportf(call.Pos(), "call to %s on a //perf:hotpath function may allocate (%s)", callee.Name(), info.via)
		}
	}
	a.checkBoxing(pkg, call, r)
}

// checkBoxing flags concrete non-pointer-shaped arguments passed to
// interface-typed parameters: the conversion heap-allocates. Pointers,
// channels, maps, and funcs are pointer-shaped and store directly in the
// interface word; nil and interface-typed arguments convert for free.
func (a *AllocFree) checkBoxing(pkg *Package, call *ast.CallExpr, r *Reporter) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return // builtin, conversion, or type expression
	}
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		t := at.Type
		if b, isBasic := t.Underlying().(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.TypeParam:
			continue
		}
		if b, isBasic := t.Underlying().(*types.Basic); isBasic && b.Kind() == types.UnsafePointer {
			continue
		}
		r.Reportf(arg.Pos(), "interface boxing on a //perf:hotpath function: %s argument converts to %s and allocates",
			types.TypeString(t, types.RelativeTo(pkg.Types)), types.TypeString(pt, types.RelativeTo(pkg.Types)))
	}
}

func allocExemptCallee(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() + "." + f.Name() {
	case "fmt.Errorf", "errors.New":
		return true
	}
	return false
}

// allocExemptPkg names module packages whose calls are trusted on hot
// paths: the parallel worker pool (its bookkeeping is amortized across
// the chunked loop it hosts) and the WAL journal (the durability barrier
// is the sanctioned cost the hot upload path exists to pay).
func allocExemptPkg(path string) bool {
	return path == journalPath || path == "deta/internal/parallel"
}

// computeAllocFX summarizes which module functions may allocate on their
// synchronous path: direct make/new/append/map-write sites, then a
// fixpoint over call edges. Literal bodies count (they run on the
// caller's path); goroutine spawns do not.
func computeAllocFX(units []*funcUnit) map[*types.Func]allocInfo {
	alloc := make(map[*types.Func]allocInfo)
	edges := make(map[*types.Func][]*types.Func)
	for _, u := range units {
		if u.obj == nil || u.decl == nil {
			continue // literals are walked as part of their declaring unit
		}
		info := alloc[u.obj]
		ast.Inspect(u.decl.Body, func(n ast.Node) bool {
			if _, isGo := n.(*ast.GoStmt); isGo {
				return false
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				if id, ok := unparen(x.Fun).(*ast.Ident); ok {
					if b, isBuiltin := u.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						switch b.Name() {
						case "make", "new", "append":
							if !info.may {
								info = allocInfo{may: true, via: b.Name() + " in " + fnDisplayName(u)}
							}
						}
						return true
					}
				}
				if f := calleeFunc(u.pkg, x); f != nil && f.Pkg() != nil &&
					strings.HasPrefix(f.Pkg().Path(), "deta/") && !allocExemptPkg(f.Pkg().Path()) {
					edges[u.obj] = append(edges[u.obj], f)
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if idx, ok := unparen(lhs).(*ast.IndexExpr); ok {
						if tv, ok := u.pkg.Info.Types[idx.X]; ok {
							if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !info.may {
								info = allocInfo{may: true, via: "map write in " + fnDisplayName(u)}
							}
						}
					}
				}
			}
			return true
		})
		alloc[u.obj] = info
	}
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			if u.obj == nil || u.decl == nil {
				continue
			}
			info := alloc[u.obj]
			if info.may {
				continue
			}
			for _, callee := range edges[u.obj] {
				if ci := alloc[callee]; ci.may {
					alloc[u.obj] = allocInfo{may: true, via: "via " + callee.Name()}
					changed = true
					break
				}
			}
		}
	}
	return alloc
}
