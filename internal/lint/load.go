package lint

// Package loading without golang.org/x/tools: `go list -e -json -deps`
// enumerates the requested packages plus every build dependency in
// topological (dependencies-first) order, and each package is parsed with
// go/parser and type-checked with go/types against the packages checked
// before it. Dependency packages are checked with IgnoreFuncBodies — only
// their exported API matters — so a full-module load stays fast.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"deta/internal/parallel"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Loader turns import paths into type-checked Packages. It caches the
// type-checked dependency universe, so loading fixtures after a full-tree
// load reuses the stdlib work. Safe for concurrent use.
type Loader struct {
	Fset *token.FileSet

	mu   sync.Mutex
	deps map[string]*types.Package // type-checked packages by import path
}

// NewLoader returns an empty loader with a fresh FileSet.
func NewLoader() *Loader {
	return &Loader{Fset: token.NewFileSet(), deps: make(map[string]*types.Package)}
}

// Load resolves the go-list patterns (e.g. "./...") relative to dir and
// returns a type-checked Package for every non-dependency match, sorted by
// import path. Dependency packages are type-checked API-only and cached.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, m := range metas {
		pkg, err := l.check(m, m.DepOnly, true)
		if err != nil {
			return nil, err
		}
		if m.DepOnly || pkg == nil {
			continue
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks the single package rooted at dir (every non-test
// .go file in it) under the given import path. Used by analyzer fixture
// tests: a testdata package can pose as e.g. "deta/internal/rng" so
// path-scoped analyzers apply to it. Imports must already be loadable via
// `go list` (stdlib is always fine).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	m := &listPkg{ImportPath: importPath, Dir: dir, GoFiles: files}
	// Parse once to discover imports, then make sure they are all checked.
	fset := token.NewFileSet()
	imports := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, filepath.Join(dir, f), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range af.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	var missing []string
	l.mu.Lock()
	for p := range imports {
		if l.deps[p] == nil && p != "unsafe" {
			missing = append(missing, p)
		}
	}
	l.mu.Unlock()
	if len(missing) > 0 {
		metas, err := goList(dir, missing)
		if err != nil {
			return nil, err
		}
		for _, dep := range metas {
			if _, err := l.check(dep, true, true); err != nil {
				return nil, err
			}
		}
	}
	// The posed package must NOT enter the dependency cache: a fixture
	// posing as "deta/internal/journal" would otherwise shadow the real
	// package for every later import of that path.
	return l.check(m, false, false)
}

// check parses and type-checks one package. apiOnly skips function bodies
// (dependency mode); cache controls whether the result is published for
// import by later packages (false for posed fixture packages).
func (l *Loader) check(m *listPkg, apiOnly, cache bool) (*Package, error) {
	if m.ImportPath == "unsafe" {
		l.mu.Lock()
		l.deps["unsafe"] = types.Unsafe
		l.mu.Unlock()
		return nil, nil
	}
	if m.Error != nil {
		return nil, fmt.Errorf("lint: %s: %s", m.ImportPath, m.Error.Err)
	}
	l.mu.Lock()
	if cached := l.deps[m.ImportPath]; cached != nil && apiOnly {
		l.mu.Unlock()
		return nil, nil
	}
	l.mu.Unlock()

	// Per-file parsing fans out over the worker pool: files are
	// independent and token.FileSet is internally synchronized. Results
	// land by index and the first error in file order wins, so the
	// outcome is deterministic regardless of scheduling.
	files := make([]*ast.File, len(m.GoFiles))
	perr := make([]error, len(m.GoFiles))
	parallel.For(len(m.GoFiles), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			files[i], perr[i] = parser.ParseFile(l.Fset, filepath.Join(m.Dir, m.GoFiles[i]), nil, parser.ParseComments)
		}
	})
	for _, err := range perr {
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", m.ImportPath, err)
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: apiOnly,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error:            func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(m.ImportPath, l.Fset, files, info)
	// Standard-library dependencies occasionally trip go/types on exotic
	// internals; their partial API is still usable. Errors in the module's
	// own packages are fatal — the linter must not report against a
	// half-checked tree.
	if len(typeErrs) > 0 && !m.Standard {
		return nil, fmt.Errorf("lint: type-checking %s: %v", m.ImportPath, typeErrs[0])
	}
	if cache {
		l.mu.Lock()
		l.deps[m.ImportPath] = tpkg
		l.mu.Unlock()
	}
	return &Package{
		Path:  m.ImportPath,
		Dir:   m.Dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Import implements types.Importer against the loader's cache; go list
// -deps order guarantees dependencies are checked before their importers.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l.mu.Lock()
	p := l.deps[path]
	l.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("lint: import %q not loaded", path)
	}
	return p, nil
}

// goList shells out to the go tool for package metadata. CGO_ENABLED=0
// keeps the file lists pure-Go so go/types can check everything from
// source.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v: %s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []*listPkg
	for {
		var m listPkg
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}
