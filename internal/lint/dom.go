package lint

// dom.go computes a dominator tree over the per-function CFGs of cfg.go,
// giving analyzers a *must* primitive to pair with dataflow.go's forward
// may-solver: block A dominates block B when every path from entry to B
// passes through A. waldisc uses this for the WAL-before-ack invariant —
// a journal append guards a durable mutation only when it happens on ALL
// paths to it, i.e. in the same block earlier or in a strictly dominating
// block.
//
// The algorithm is the iterative one of Cooper, Harvey & Kennedy ("A
// Simple, Fast Dominance Algorithm"): number blocks in reverse postorder,
// then repeatedly intersect predecessor idoms until fixpoint. Our CFGs
// are tiny (tens of blocks), so the simple O(n²)-worst-case iteration is
// preferable to Lengauer-Tarjan.

// domTree is the dominator tree of one cfg. Unreachable blocks (dead
// continuations after return/break, unresolved labels) have no entry in
// either map: they dominate nothing and are dominated by nothing.
type domTree struct {
	entry *cfgBlock
	idom  map[*cfgBlock]*cfgBlock // immediate dominator; entry maps to nil
	rpo   map[*cfgBlock]int       // reverse-postorder number of reachable blocks
}

// buildDomTree computes the dominator tree for c. Only blocks reachable
// from c.entry participate.
func buildDomTree(c *cfg) *domTree {
	d := &domTree{
		entry: c.entry,
		idom:  make(map[*cfgBlock]*cfgBlock),
		rpo:   make(map[*cfgBlock]int),
	}

	// Iterative postorder DFS from entry; reversing yields RPO.
	var order []*cfgBlock
	seen := map[*cfgBlock]bool{c.entry: true}
	type frame struct {
		blk *cfgBlock
		i   int // next successor index to visit
	}
	stack := []frame{{blk: c.entry}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.i < len(top.blk.succs) {
			s := top.blk.succs[top.i]
			top.i++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{blk: s})
			}
			continue
		}
		order = append(order, top.blk)
		stack = stack[:len(stack)-1]
	}
	// order is postorder; number in reverse.
	n := len(order)
	rpoBlocks := make([]*cfgBlock, n)
	for i, blk := range order {
		num := n - 1 - i
		d.rpo[blk] = num
		rpoBlocks[num] = blk
	}

	// Predecessor lists restricted to reachable blocks.
	preds := make(map[*cfgBlock][]*cfgBlock, n)
	for _, blk := range rpoBlocks {
		for _, s := range blk.succs {
			if seen[s] {
				preds[s] = append(preds[s], blk)
			}
		}
	}

	// Fixpoint. idom[entry] = entry during iteration (the algorithm's
	// sentinel for "processed"); rewritten to nil afterwards.
	d.idom[c.entry] = c.entry
	for changed := true; changed; {
		changed = false
		for _, blk := range rpoBlocks {
			if blk == c.entry {
				continue
			}
			var newIdom *cfgBlock
			for _, p := range preds[blk] {
				if _, ok := d.idom[p]; !ok {
					continue // predecessor not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[blk] != newIdom {
				d.idom[blk] = newIdom
				changed = true
			}
		}
	}
	d.idom[c.entry] = nil
	return d
}

// intersect walks the two idom chains upward (by RPO number) until they
// meet; the meeting point dominates both arguments.
func (d *domTree) intersect(a, b *cfgBlock) *cfgBlock {
	for a != b {
		for d.rpo[a] > d.rpo[b] {
			a = d.idom[a]
		}
		for d.rpo[b] > d.rpo[a] {
			b = d.idom[b]
		}
	}
	return a
}

// reachable reports whether blk is reachable from the entry block.
func (d *domTree) reachable(blk *cfgBlock) bool {
	_, ok := d.rpo[blk]
	return ok
}

// dominates reports whether a dominates b (reflexively: every block
// dominates itself). Unreachable blocks dominate nothing and are
// dominated by nothing.
func (d *domTree) dominates(a, b *cfgBlock) bool {
	if !d.reachable(a) || !d.reachable(b) {
		return false
	}
	for b != nil {
		if a == b {
			return true
		}
		b = d.idom[b]
	}
	return false
}
