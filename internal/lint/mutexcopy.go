package lint

import (
	"go/ast"
	"go/types"
)

// MutexCopy flags by-value copies of lock-bearing structs: value
// receivers, value parameters, range-value copies, and plain assignments
// whose type (transitively) contains a sync.Mutex, RWMutex, Once,
// WaitGroup, or Cond. A copied mutex is a fork of the lock state — both
// copies think they own it — which turns into silent data corruption
// under -race-invisible schedules. `go vet -copylocks` catches many of
// these; this analyzer keeps the invariant enforced inside deta-lint's
// single gate and extends it to value receivers.
type MutexCopy struct{}

func (MutexCopy) Name() string { return "mutexcopy" }
func (MutexCopy) Doc() string {
	return "flag by-value copies (receiver, param, range, assignment) of lock-bearing structs"
}

func (MutexCopy) Run(pkg *Package, r *Reporter) {
	if !pathIn(pkg.Path, "deta") {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkLockRecvParams(pkg, r, x)
			case *ast.RangeStmt:
				checkLockRangeCopy(pkg, r, x)
			case *ast.AssignStmt:
				checkLockAssignCopy(pkg, r, x)
			}
			return true
		})
	}
}

func checkLockRecvParams(pkg *Package, r *Reporter, fn *ast.FuncDecl) {
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			if t := exprLockType(pkg, f.Type); t != "" {
				r.Reportf(f.Pos(),
					"%s: value receiver copies %s (which holds a %s); use a pointer receiver",
					fn.Name.Name, types.ExprString(f.Type), t)
			}
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			if t := exprLockType(pkg, f.Type); t != "" {
				r.Reportf(f.Pos(),
					"%s: parameter passes %s by value (which holds a %s); pass a pointer",
					fn.Name.Name, types.ExprString(f.Type), t)
			}
		}
	}
}

func checkLockRangeCopy(pkg *Package, r *Reporter, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	// A `:=` range defines its value ident (recorded in Defs); an `=`
	// range assigns to an existing expression (recorded in Types).
	var vt types.Type
	if id, ok := rng.Value.(*ast.Ident); ok {
		if obj := pkg.Info.Defs[id]; obj != nil {
			vt = obj.Type()
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			vt = obj.Type()
		}
	}
	if vt == nil {
		tv, ok := pkg.Info.Types[rng.Value]
		if !ok || tv.Type == nil {
			return
		}
		vt = tv.Type
	}
	if t := lockIn(vt, nil); t != "" {
		r.Reportf(rng.Value.Pos(),
			"range value copies a struct holding a %s; iterate by index or store pointers", t)
	}
}

func checkLockAssignCopy(pkg *Package, r *Reporter, st *ast.AssignStmt) {
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) {
			break
		}
		// Only flag copies of *existing* values: an ident, selector, index,
		// or dereference. Composite literals and calls construct fresh
		// values, which is how zero-valued mutexes are born legitimately.
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		tv, ok := pkg.Info.Types[rhs]
		if !ok || tv.Type == nil {
			continue
		}
		if t := lockIn(tv.Type, nil); t != "" {
			r.Reportf(st.Pos(),
				"assignment copies %s (which holds a %s); copy a pointer instead",
				types.ExprString(rhs), t)
		}
	}
}

// exprLockType resolves a (possibly pointer) type expression and returns
// the lock type it carries by value, or "" — pointers don't copy.
func exprLockType(pkg *Package, expr ast.Expr) string {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return ""
	}
	return lockIn(tv.Type, nil)
}

// lockIn reports the sync primitive a type transitively contains by value
// ("" if none). seen guards recursive types.
func lockIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond":
				return "sync." + obj.Name()
			}
		}
		return lockIn(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if l := lockIn(u.Field(i).Type(), seen); l != "" {
				return l
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return ""
}
