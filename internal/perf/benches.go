package perf

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"testing"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/core"
	"deta/internal/journal"
	"deta/internal/lint"
	"deta/internal/paillier"
	"deta/internal/rng"
	"deta/internal/sev"
	"deta/internal/tensor"
	"deta/internal/transport"
)

// benches.go defines the tracked suite: a handful of deterministic,
// sub-second benches per area covering the paths ROADMAP items 1-3 intend
// to speed up. Names are stable identifiers — the BENCH_<area>.json
// baselines key on them, so renaming one is a deliberate re-baselining
// event, not a cosmetic edit.

// benchVector builds a deterministic pseudo-random update vector.
func benchVector(label string, n int) tensor.Vector {
	s := rng.NewStream([]byte("perf-suite"), label)
	v := make(tensor.Vector, n)
	for i := range v {
		v[i] = s.NormFloat64()
	}
	return v
}

// benchUpdates builds one update vector per party.
func benchUpdates(parties, n int) []tensor.Vector {
	out := make([]tensor.Vector, parties)
	for p := range out {
		out[p] = benchVector(fmt.Sprintf("party-%d", p), n)
	}
	return out
}

// ---- agg: the aggregation kernels -------------------------------------

func aggAlgorithmBench(alg agg.Algorithm, parties, n int) func(b *testing.B) {
	return func(b *testing.B) {
		updates := benchUpdates(parties, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := alg.Aggregate(updates, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func aggBenches() []Bench {
	return []Bench{
		{Name: "agg/IterativeAverage/p8,n16384", F: aggAlgorithmBench(agg.IterativeAverage{}, 8, 1<<14)},
		{Name: "agg/CoordinateMedian/p8,n16384", F: aggAlgorithmBench(agg.CoordinateMedian{}, 8, 1<<14)},
		{Name: "agg/TrimmedMean/p8,n16384", F: aggAlgorithmBench(agg.TrimmedMean{Trim: 1}, 8, 1<<14)},
		{Name: "agg/Krum/p8,n4096", F: aggAlgorithmBench(agg.Krum{F: 1}, 8, 1<<12)},
		{Name: "agg/FLAMELite/p8,n4096", F: aggAlgorithmBench(agg.FLAMELite{}, 8, 1<<12)},
	}
}

// ---- core: party-side transform and aggregator upload -----------------

func coreTransformSetup(b *testing.B, n int) (*core.Mapper, *core.Shuffler, tensor.Vector) {
	b.Helper()
	m, err := core.NewMapper(n, core.EqualProportions(3), []byte("perf-mapper"))
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.NewShuffler([]byte("perf-permutation-key-32-bytes-ok"))
	if err != nil {
		b.Fatal(err)
	}
	return m, s, benchVector("transform", n)
}

func coreBenches() []Bench {
	const n = 1 << 14
	roundID := []byte("perf-round")
	return []Bench{
		{Name: "core/Transform/k3,n16384", F: func(b *testing.B) {
			m, s, update := coreTransformSetup(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Transform(m, s, update, roundID, true); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "core/InverseTransform/k3,n16384", F: func(b *testing.B) {
			m, s, update := coreTransformSetup(b, n)
			frags, err := core.Transform(m, s, update, roundID, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.InverseTransform(m, s, frags, roundID, true); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "core/Upload/no-journal,n4096", F: func(b *testing.B) {
			node := perfUploadNode(b)
			frag := benchVector("upload", 1<<12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh round per iteration keeps each Upload on the
				// commit path instead of the idempotent fast path.
				if err := node.Upload(i+1, "P1", frag, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// perfUploadNode builds a provisioned in-memory aggregator with bounded
// retention so long benchmark runs do not accumulate per-round state.
func perfUploadNode(b *testing.B) *core.AggregatorNode {
	b.Helper()
	vendor, err := sev.NewVendor()
	if err != nil {
		b.Fatal(err)
	}
	proxy := attest.NewProxy(vendor.RAS(), core.OVMF)
	platform, err := sev.NewPlatform("host/perf-suite", vendor)
	if err != nil {
		b.Fatal(err)
	}
	cvm, err := platform.LaunchCVM(core.OVMF)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := proxy.Provision("perf-suite", platform, cvm); err != nil {
		b.Fatal(err)
	}
	node, err := core.NewAggregatorNode("perf-suite", agg.IterativeAverage{}, cvm)
	if err != nil {
		b.Fatal(err)
	}
	node.Register("P1")
	node.SetRetention(8)
	return node
}

// ---- journal: WAL append and recovery replay --------------------------

func journalAppendBench(noSync bool, size int) func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "perf-journal")
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = os.RemoveAll(dir) }()
		j, _, err := journal.Open(dir, journal.Options{NoSync: noSync})
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = j.Close() }()
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i)
		}
		b.SetBytes(int64(size))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := j.Append(1, data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func journalBenches() []Bench {
	return []Bench{
		{Name: "journal/Append/nosync,256B", F: journalAppendBench(true, 256)},
		{
			Name: "journal/Append/nosync,32KiB", F: journalAppendBench(true, 32<<10),
			Ignore:       true,
			IgnoreReason: "32KiB appends are dominated by page-cache writeback, which is host state, not code (observed >2x swings between identical runs)",
		},
		{
			Name: "journal/Append/fsync,256B", F: journalAppendBench(false, 256),
			Ignore:       true,
			IgnoreReason: "per-record fsync latency is storage-environment dependent, not code-determined",
		},
		{Name: "journal/Replay/1000x256B", F: func(b *testing.B) {
			dir, err := os.MkdirTemp("", "perf-journal")
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = os.RemoveAll(dir) }()
			j, _, err := journal.Open(dir, journal.Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, 256)
			for i := 0; i < 1000; i++ {
				if err := j.Append(1, data); err != nil {
					b.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j, _, err := journal.Open(dir, journal.Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				if err := j.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// ---- lint: the static-analysis suite over the module itself -----------

// lintBenchState caches the loaded, type-checked module tree across
// iterations and runs: go-list + type-checking is one-time setup cost,
// while the baseline tracks the analysis cost — the part the
// protocol-invariant tier (CFG + dominators + must-flow + call-graph
// summaries) made meaningfully more expensive and worth pinning.
var lintBenchState struct {
	once sync.Once
	pkgs []*lint.Package
	err  error
}

func lintBenches() []Bench {
	return []Bench{
		{
			Name: "lint/Suite/module",
			F: func(b *testing.B) {
				lintBenchState.once.Do(func() {
					root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
					if err != nil {
						lintBenchState.err = fmt.Errorf("perf: locating module root: %w", err)
						return
					}
					lintBenchState.pkgs, lintBenchState.err = lint.NewLoader().Load(
						strings.TrimSpace(string(root)), "./...")
				})
				if lintBenchState.err != nil {
					b.Fatal(lintBenchState.err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Fresh analyzer instances each iteration: Prepare-phase
					// work (call graphs, alloc summaries, lock classes) is
					// part of what a real deta-lint run pays.
					lint.Run(lintBenchState.pkgs, lint.All())
				}
			},
			// Analysis time necessarily grows with the tree being linted,
			// so this area belongs on the advisory (warn-only) list in
			// check.sh/CI, not the hard gate: the baseline exists to make
			// an accidental superlinear blowup visible, not to tax every
			// PR that adds code.
			Cleanup: func() {
				// Drop the type-checked module tree and collect it NOW:
				// left alive, its scan work alone slows every allocating
				// bench in the areas measured after this one.
				lintBenchState.pkgs, lintBenchState.err = nil, nil
				lintBenchState.once = sync.Once{}
				runtime.GC()
			},
		},
	}
}

// ---- paillier: the vector crypto kernels ------------------------------

func paillierKey(b *testing.B) *paillier.PrivateKey {
	b.Helper()
	sk, err := paillier.GenerateKey(256)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

func paillierVec(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%23)*0.5 - 5
	}
	return xs
}

func paillierBenches() []Bench {
	return []Bench{
		{Name: "paillier/EncryptVector/bits256,n32", F: func(b *testing.B) {
			sk := paillierKey(b)
			xs := paillierVec(32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sk.EncryptVector(xs); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "paillier/DecryptVector/bits256,n32", F: func(b *testing.B) {
			sk := paillierKey(b)
			cts, err := sk.EncryptVector(paillierVec(32))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sk.DecryptVector(cts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "paillier/AddVectors/bits256,p4,n64", F: func(b *testing.B) {
			sk := paillierKey(b)
			xs := paillierVec(64)
			var vecs [][]*paillier.Ciphertext
			for p := 0; p < 4; p++ {
				cts, err := sk.EncryptVector(xs)
				if err != nil {
					b.Fatal(err)
				}
				vecs = append(vecs, cts)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sk.AddVectors(vecs...); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// ---- transport: RPC round trip and wire codec -------------------------

type perfEchoReq struct{ Payload []byte }
type perfEchoResp struct{ Payload []byte }

// perfTransportClient starts an in-memory echo server (no injected
// latency: these benches track CPU cost of framing + gob, not simulated
// WAN delay) and returns a connected client.
func perfTransportClient(b *testing.B) *transport.Client {
	b.Helper()
	s := transport.NewServer()
	transport.HandleTyped(s, "echo", func(r perfEchoReq) (perfEchoResp, error) {
		return perfEchoResp{Payload: r.Payload}, nil
	})
	ln := transport.NewMemListener()
	go func() { _ = s.Serve(ln) }()
	conn, err := ln.Dial()
	if err != nil {
		b.Fatal(err)
	}
	c := transport.NewClient(conn)
	b.Cleanup(func() {
		_ = c.Close()
		s.Close()
	})
	return c
}

func transportBenches() []Bench {
	payload := make([]byte, 1<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	wireVec := benchVector("wire", 1<<12)
	return []Bench{
		{Name: "transport/Call/seq,1KiB", F: func(b *testing.B) {
			c := perfTransportClient(b)
			req := perfEchoReq{Payload: payload}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := transport.CallTypedContext[perfEchoReq, perfEchoResp](context.Background(), c, "echo", req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "transport/Call/conc8,1KiB", F: func(b *testing.B) {
			c := perfTransportClient(b)
			req := perfEchoReq{Payload: payload}
			const conc = 8
			b.SetBytes(int64(len(payload) * conc))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, conc)
				for j := 0; j < conc; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						_, errs[j] = transport.CallTypedContext[perfEchoReq, perfEchoResp](context.Background(), c, "echo", req)
					}(j)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		// The Encode/Decode benches track the data-plane body codec on the
		// message the upload path actually sends. They were re-baselined
		// when the fragment path moved from gob to the fixed-layout binary
		// codec (same names, deliberately: the baseline refresh is the
		// recorded evidence of the switch).
		{Name: "transport/Encode/vec4096", F: func(b *testing.B) {
			req := core.UploadReq{Round: 7, PartyID: "P1", Frag: 2, Fragment: wireVec, Weight: 0.25}
			b.SetBytes(int64(len(wireVec) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := transport.Encode(req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "transport/Decode/vec4096", F: func(b *testing.B) {
			body, err := transport.Encode(core.UploadReq{Round: 7, PartyID: "P1", Frag: 2, Fragment: wireVec, Weight: 0.25})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(wireVec) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var req core.UploadReq
				if err := transport.Decode(body, &req); err != nil {
					b.Fatal(err)
				}
				tensor.PutVector(tensor.Vector(req.Fragment))
			}
		}},
	}
}
