package perf

import (
	"flag"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// suite.go drives the curated benchmark suite programmatically via
// testing.Benchmark, so cmd/deta-bench -perf can measure the hot paths
// without shelling out to the go tool. Each area's benches also run under
// plain `go test -bench PerfSuite` through the per-package
// BenchmarkPerfSuite wrappers, which emit the same stable names.

// Bench is one suite entry: a stable name (recorded in the baselines —
// renaming one is a deliberate re-baselining event) and the body.
type Bench struct {
	Name string
	F    func(b *testing.B)
	// Ignore exempts the bench from regression gating (tracked, never
	// failing); IgnoreReason says why.
	Ignore       bool
	IgnoreReason string
	// Cleanup, when set, runs once after the suite finishes measuring
	// this bench (after all best-of-N runs). A bench that caches
	// heavyweight state across iterations — the lint suite keeps the
	// whole type-checked module tree alive — must release it here, or
	// every later area is measured under its GC shadow (observed: +400%
	// ns/op on the transport codec purely from scan work on the retained
	// graph).
	Cleanup func()
}

// Areas lists the tracked baseline areas in sorted order.
func Areas() []string {
	return []string{"agg", "core", "journal", "lint", "paillier", "transport"}
}

// SuiteBenches returns an area's benches.
func SuiteBenches(area string) ([]Bench, error) {
	switch area {
	case "agg":
		return aggBenches(), nil
	case "core":
		return coreBenches(), nil
	case "journal":
		return journalBenches(), nil
	case "lint":
		return lintBenches(), nil
	case "paillier":
		return paillierBenches(), nil
	case "transport":
		return transportBenches(), nil
	}
	return nil, fmt.Errorf("perf: unknown area %q (have %v)", area, Areas())
}

// withBenchtime temporarily overrides the testing package's benchtime so
// testing.Benchmark runs are bounded. Outside a test binary the testing
// flags do not exist yet; testing.Init registers them.
func withBenchtime(d time.Duration, f func()) error {
	if flag.Lookup("test.benchtime") == nil {
		testing.Init()
	}
	fl := flag.Lookup("test.benchtime")
	old := fl.Value.String()
	if err := fl.Value.Set(d.String()); err != nil {
		return fmt.Errorf("perf: setting benchtime: %w", err)
	}
	defer func() { _ = fl.Value.Set(old) }()
	f()
	return nil
}

// RunArea executes one area's suite best-of-runs times at the given
// benchtime per run and returns a baseline-shaped File. logf (optional)
// receives one progress line per completed measurement, so a watchdog
// abort still leaves partial results visible.
func RunArea(area string, runs int, benchtime time.Duration, logf func(format string, args ...any)) (*File, error) {
	benches, err := SuiteBenches(area)
	if err != nil {
		return nil, err
	}
	if runs < 1 {
		runs = 1
	}
	if benchtime <= 0 {
		benchtime = 100 * time.Millisecond
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	allRuns := make([][]Result, runs)
	// Release cached bench state whichever way the runs end, so a failed
	// area cannot poison the measurements of the areas after it.
	defer func() {
		for _, bench := range benches {
			if bench.Cleanup != nil {
				bench.Cleanup()
			}
		}
	}()
	var benchErr error
	err = withBenchtime(benchtime, func() {
		for i := 0; i < runs && benchErr == nil; i++ {
			for _, bench := range benches {
				bm := bench
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					bm.F(b)
				})
				if r.N == 0 {
					benchErr = fmt.Errorf("perf: bench %s failed (zero iterations)", bm.Name)
					break
				}
				res := Result{
					Bench:        bm.Name,
					NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
					AllocsPerOp:  r.AllocsPerOp(),
					BytesPerOp:   r.AllocedBytesPerOp(),
					Iterations:   int64(r.N),
					Ignore:       bm.Ignore,
					IgnoreReason: bm.IgnoreReason,
				}
				allRuns[i] = append(allRuns[i], res)
				logf("perf: %s run %d/%d: %s %.0f ns/op %d allocs/op %d B/op (%d iters)",
					area, i+1, runs, res.Bench, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.Iterations)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if benchErr != nil {
		return nil, benchErr
	}
	return &File{
		Version: Version,
		Area:    area,
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		Scale:   fmt.Sprintf("best-of-%d@%s", runs, benchtime),
		Results: MergeBest(allRuns...),
	}, nil
}

// RunAreaBenchmarks runs an area's suite under a regular `go test -bench`
// parent benchmark, giving each entry its stable baseline name as the
// sub-benchmark path.
func RunAreaBenchmarks(b *testing.B, area string) {
	benches, err := SuiteBenches(area)
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range benches {
		bm := bench
		b.Run(bm.Name, func(b *testing.B) {
			b.ReportAllocs()
			bm.F(b)
		})
	}
	for _, bench := range benches {
		if bench.Cleanup != nil {
			bench.Cleanup()
		}
	}
}
