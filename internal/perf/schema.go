// Package perf tracks the repository's performance trajectory: it runs a
// curated benchmark suite over the hot paths (transport, journal, agg
// kernels, paillier, core transforms), records the results in versioned
// per-area baseline files (BENCH_<area>.json, checked into the repo
// root), and compares fresh runs against those baselines with
// noise-tolerant rules so a regression on any kernel fails loudly instead
// of landing invisibly in EXPERIMENTS.md prose.
//
// Two front doors feed the same comparator:
//
//   - cmd/deta-bench -perf drives the suite programmatically via
//     testing.Benchmark (best-of-N runs, bounded benchtime), mirroring the
//     deta-lint -baseline/-baseline-write workflow; and
//   - Parse ingests ordinary `go test -bench -benchmem` output, whose
//     BenchmarkPerfSuite wrappers in each area package emit the same
//     stable names the baselines record.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Result is one benchmark measurement with the schema the baselines pin:
// bench name, ns/op, allocs/op, B/op, and the iteration count behind the
// numbers.
type Result struct {
	Bench       string  `json:"bench"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int64   `json:"iterations"`
	// Ignore exempts this bench from regression gating (the perf
	// equivalent of //lint:ignore): the number is still tracked and
	// reported, but never fails the gate. Used for benches dominated by
	// environment effects (e.g. per-record fsync latency).
	Ignore       bool   `json:"ignore,omitempty"`
	IgnoreReason string `json:"ignore_reason,omitempty"`
}

// File is the on-disk baseline format, versioned for forward evolution.
// Go/OS/Arch record the environment the numbers were taken on; Scale
// describes the run shape (runs × benchtime) so a baseline regenerated
// under different settings is visibly different.
type File struct {
	Version int      `json:"version"`
	Area    string   `json:"area"`
	Go      string   `json:"go"`
	OS      string   `json:"os"`
	Arch    string   `json:"arch"`
	Scale   string   `json:"scale"`
	Results []Result `json:"results"`
}

// Version is the current baseline schema version.
const Version = 1

// BaselineName returns the conventional file name for an area's checked-in
// baseline, e.g. "BENCH_transport.json".
func BaselineName(area string) string {
	return "BENCH_" + area + ".json"
}

// WriteFile records a baseline at path, results sorted by bench name so
// regenerated baselines diff cleanly.
func WriteFile(path string, f *File) error {
	out := *f
	out.Version = Version
	out.Results = append([]Result(nil), f.Results...)
	sort.Slice(out.Results, func(i, j int) bool {
		return out.Results[i].Bench < out.Results[j].Bench
	})
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a baseline, rejecting unknown schema versions.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("perf: parsing baseline %s: %w", path, err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("perf: baseline %s has version %d, want %d", path, f.Version, Version)
	}
	return &f, nil
}

// MergeBest folds multiple runs of the same suite into a best-of-N result
// set: minimum ns/op (the least-noisy estimate of the true cost), minimum
// allocs/op and B/op, and the iteration count of the fastest run. Benches
// appearing in only some runs are kept.
func MergeBest(runs ...[]Result) []Result {
	best := make(map[string]Result)
	var order []string
	for _, run := range runs {
		for _, r := range run {
			b, ok := best[r.Bench]
			if !ok {
				best[r.Bench] = r
				order = append(order, r.Bench)
				continue
			}
			if r.NsPerOp < b.NsPerOp {
				b.NsPerOp = r.NsPerOp
				b.Iterations = r.Iterations
			}
			if r.AllocsPerOp < b.AllocsPerOp {
				b.AllocsPerOp = r.AllocsPerOp
			}
			if r.BytesPerOp < b.BytesPerOp {
				b.BytesPerOp = r.BytesPerOp
			}
			b.Ignore = b.Ignore || r.Ignore
			if b.IgnoreReason == "" {
				b.IgnoreReason = r.IgnoreReason
			}
			best[r.Bench] = b
		}
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, best[name])
	}
	return out
}
