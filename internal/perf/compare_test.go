package perf

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture reads the golden baseline the comparator self-tests run
// against.
func loadFixture(t *testing.T) *File {
	t.Helper()
	f, err := ReadFile(filepath.Join("testdata", "BENCH_fixture.json"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// scaleNs returns a copy of results with every ns/op multiplied by factor
// — the synthetic slowdown injector.
func scaleNs(results []Result, factor float64) []Result {
	out := append([]Result(nil), results...)
	for i := range out {
		out[i].NsPerOp *= factor
	}
	return out
}

func findDelta(t *testing.T, deltas []Delta, bench string) Delta {
	t.Helper()
	for _, d := range deltas {
		if d.Bench == bench {
			return d
		}
	}
	t.Fatalf("no delta for %s in %+v", bench, deltas)
	return Delta{}
}

// TestCompareUnchangedPasses is the pass direction: an identical rerun
// must not regress.
func TestCompareUnchangedPasses(t *testing.T) {
	base := loadFixture(t)
	deltas := Compare(base.Results, base.Results, DefaultThresholds())
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("identical rerun produced %d regressions: %+v", n, deltas)
	}
}

// TestCompareWithinThresholdPasses: +10% everywhere is inside the +30%
// noise band.
func TestCompareWithinThresholdPasses(t *testing.T) {
	base := loadFixture(t)
	fresh := scaleNs(base.Results, 1.10)
	deltas := Compare(base.Results, fresh, DefaultThresholds())
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("+10%% run produced %d regressions: %+v", n, deltas)
	}
}

// TestCompareSlowdownFails is the fail direction the acceptance criteria
// name: a 50% ns/op slowdown must trip the gate on every non-exempt
// bench above the absolute noise floor.
func TestCompareSlowdownFails(t *testing.T) {
	base := loadFixture(t)
	fresh := scaleNs(base.Results, 1.5)
	deltas := Compare(base.Results, fresh, DefaultThresholds())
	// fix/Fast and fix/Slow regress; fix/Fsync is ignored; fix/Tiny's
	// +30ns is under the 50ns absolute floor.
	if n := Regressions(deltas); n != 2 {
		t.Fatalf("50%% slowdown produced %d regressions, want 2: %+v", n, deltas)
	}
	slow := findDelta(t, deltas, "fix/Slow")
	if !slow.Regressed || !strings.Contains(slow.Reason, "ns/op") {
		t.Errorf("fix/Slow = %+v", slow)
	}
	if fsync := findDelta(t, deltas, "fix/Fsync"); fsync.Regressed || !fsync.Ignored {
		t.Errorf("exempt bench gated: %+v", fsync)
	}
	if tiny := findDelta(t, deltas, "fix/Tiny"); tiny.Regressed {
		t.Errorf("sub-floor bench gated: %+v", tiny)
	}
}

func TestCompareAllocsRegression(t *testing.T) {
	base := loadFixture(t)
	fresh := append([]Result(nil), base.Results...)
	for i := range fresh {
		if fresh[i].Bench == "fix/Fast" {
			fresh[i].AllocsPerOp += 3 // over the +2 allowance
		}
	}
	deltas := Compare(base.Results, fresh, DefaultThresholds())
	fast := findDelta(t, deltas, "fix/Fast")
	if !fast.Regressed || !strings.Contains(fast.Reason, "allocs/op") {
		t.Errorf("allocs regression missed: %+v", fast)
	}
	// +2 exactly stays within the allowance.
	for i := range fresh {
		if fresh[i].Bench == "fix/Fast" {
			fresh[i].AllocsPerOp--
		}
	}
	deltas = Compare(base.Results, fresh, DefaultThresholds())
	if n := Regressions(deltas); n != 0 {
		t.Errorf("+2 allocs gated: %+v", deltas)
	}
}

// TestCompareAllocsRelativeBackstop pins the scale-aware half of the
// allocs rule: on a bench doing hundreds of thousands of allocations per
// op (the lint suite), a wobble of dozens clears the absolute allowance
// but is far under the relative backstop and must not gate — while real
// growth past both thresholds still does.
func TestCompareAllocsRelativeBackstop(t *testing.T) {
	base := []Result{{Bench: "fix/Huge", NsPerOp: 1e8, AllocsPerOp: 400000, Iterations: 3}}
	jitter := []Result{{Bench: "fix/Huge", NsPerOp: 1e8, AllocsPerOp: 400070, Iterations: 3}}
	if deltas := Compare(base, jitter, DefaultThresholds()); Regressions(deltas) != 0 {
		t.Errorf("+70 allocs on a 400k-alloc bench gated: %+v", deltas)
	}
	grown := []Result{{Bench: "fix/Huge", NsPerOp: 1e8, AllocsPerOp: 440000, Iterations: 3}}
	deltas := Compare(base, grown, DefaultThresholds())
	d := findDelta(t, deltas, "fix/Huge")
	if !d.Regressed || !strings.Contains(d.Reason, "allocs/op") {
		t.Errorf("+10%% allocs growth not gated: %+v", d)
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := loadFixture(t)
	var fresh []Result
	for _, r := range base.Results {
		if r.Bench != "fix/Slow" {
			fresh = append(fresh, r)
		}
	}
	fresh = append(fresh, Result{Bench: "fix/Brand", NsPerOp: 5, Iterations: 1})
	deltas := Compare(base.Results, fresh, DefaultThresholds())
	missing := findDelta(t, deltas, "fix/Slow")
	if !missing.Missing || !missing.Regressed {
		t.Errorf("deleted bench not gated: %+v", missing)
	}
	brand := findDelta(t, deltas, "fix/Brand")
	if !brand.New || brand.Regressed {
		t.Errorf("new bench gated: %+v", brand)
	}
}

// TestCompareCallerExemption: a th.Ignore entry works like a baseline
// Ignore flag, including for missing benches.
func TestCompareCallerExemption(t *testing.T) {
	base := loadFixture(t)
	fresh := scaleNs(base.Results, 2)
	th := DefaultThresholds()
	th.Ignore = map[string]bool{"fix/Slow": true, "fix/Fast": true, "fix/Tiny": true}
	deltas := Compare(base.Results, fresh, th)
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("exempted benches still gated: %+v", deltas)
	}
	// Missing + exempt: reported, not gating. (fix/Coarse needs an explicit
	// entry here: a zero-ns baseline is only auto-ignored when the bench is
	// present — a missing bench still demands a deliberate re-baseline.)
	deltas = Compare(base.Results, nil, Thresholds{MaxNsPct: 30, MinNsDelta: 50,
		Ignore: map[string]bool{"fix/Fast": true, "fix/Slow": true, "fix/Fsync": true, "fix/Tiny": true, "fix/Coarse": true}})
	if n := Regressions(deltas); n != 0 {
		t.Fatalf("exempt missing benches gated: %+v", deltas)
	}
}

// TestCompareZeroBaseline: a 0 ns/op baseline entry (coarse-clock CI
// host) must neither gate nor emit a NaN/Inf percentage — it is surfaced
// as ignored with an explanatory warning, and the fix is re-baselining.
// Regression test: the comparator used to divide by the baseline ns/op
// unconditionally.
func TestCompareZeroBaseline(t *testing.T) {
	base := loadFixture(t)
	// Even a wild fresh value must not gate against a zero baseline.
	fresh := append([]Result(nil), base.Results...)
	for i := range fresh {
		if fresh[i].Bench == "fix/Coarse" {
			fresh[i].NsPerOp = 1e9
		}
	}
	deltas := Compare(base.Results, fresh, DefaultThresholds())
	coarse := findDelta(t, deltas, "fix/Coarse")
	if coarse.Regressed {
		t.Fatalf("zero-ns baseline gated: %+v", coarse)
	}
	if !coarse.Ignored || !strings.Contains(coarse.Reason, "0 ns/op") {
		t.Fatalf("zero-ns baseline not surfaced as ignored-with-warning: %+v", coarse)
	}
	if math.IsNaN(coarse.NsPct) || math.IsInf(coarse.NsPct, 0) {
		t.Fatalf("zero-ns baseline produced non-finite percentage: %v", coarse.NsPct)
	}
	// The rendered table must carry the warning so a CI reader sees why the
	// bench never gates.
	var buf bytes.Buffer
	RenderDeltas(&buf, "fixture", deltas)
	if !strings.Contains(buf.String(), "ignored (baseline records 0 ns/op") {
		t.Fatalf("delta table hides the zero-baseline warning:\n%s", buf.String())
	}
	// An allocs regression on a zero-ns bench stays ungated too: without a
	// trustworthy baseline, any verdict is noise.
	for i := range fresh {
		if fresh[i].Bench == "fix/Coarse" {
			fresh[i].AllocsPerOp += 50
		}
	}
	deltas = Compare(base.Results, fresh, DefaultThresholds())
	if d := findDelta(t, deltas, "fix/Coarse"); d.Regressed {
		t.Fatalf("zero-ns baseline gated on allocs: %+v", d)
	}
}

func TestRenderDeltas(t *testing.T) {
	base := loadFixture(t)
	fresh := scaleNs(base.Results, 1.5)
	deltas := Compare(base.Results, fresh, DefaultThresholds())
	var buf bytes.Buffer
	RenderDeltas(&buf, "fixture", deltas)
	out := buf.String()
	for _, want := range []string{"area fixture", "fix/Slow", "REGRESSED", "ignored", "+50.0%", "old ns/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}
}
