package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkPerfSuite/agg/Krum/p8,n4096-8":  "agg/Krum/p8,n4096",
		"BenchmarkPerfSuite/journal/Append/256B":  "journal/Append/256B",
		"BenchmarkAppend/sync/256B-8":             "Append/sync/256B",
		"BenchmarkUpload-16":                      "Upload",
		"BenchmarkFanOutParallel/K=3-8":           "FanOutParallel/K=3",
		"BenchmarkNoProcsSuffix":                  "NoProcsSuffix",
		"BenchmarkTrailingDash/x-y":               "TrailingDash/x-y",
		"BenchmarkPerfSuite/core/Upload/n4096-32": "core/Upload/n4096",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchOutput(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "benchout.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.OS != "linux" || parsed.Arch != "amd64" {
		t.Errorf("env = %s/%s, want linux/amd64", parsed.OS, parsed.Arch)
	}
	if len(parsed.Results) != 4 {
		t.Fatalf("%d results, want 4: %+v", len(parsed.Results), parsed.Results)
	}
	byName := map[string]Result{}
	for _, r := range parsed.Results {
		byName[r.Bench] = r
	}
	krum, ok := byName["agg/Krum/p8,n4096"]
	if !ok {
		t.Fatalf("PerfSuite wrapper name not canonicalized: %v", byName)
	}
	if krum.NsPerOp != 18231002 || krum.AllocsPerOp != 24 || krum.BytesPerOp != 393216 || krum.Iterations != 64 {
		t.Errorf("krum = %+v", krum)
	}
	// The MB/s column must be skipped without corrupting B/op parsing.
	app := byName["Append/sync/256B"]
	if app.BytesPerOp != 12 || app.AllocsPerOp != 0 {
		t.Errorf("append = %+v", app)
	}
	// A line without -benchmem columns still yields ns/op.
	up := byName["Upload/no-journal"]
	if up.NsPerOp != 231456 || up.Iterations != 5000 {
		t.Errorf("upload = %+v", up)
	}
}

func TestParseMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX notanumber 5 ns/op",
		"BenchmarkX 100 xyz ns/op",
		"BenchmarkX 100 5",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("malformed line %q accepted", bad)
		}
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, BaselineName("agg"))
	in := &File{
		Area: "agg", Go: "go1.24.0", OS: "linux", Arch: "amd64", Scale: "best-of-3@100ms",
		Results: []Result{
			{Bench: "z/Last", NsPerOp: 2, AllocsPerOp: 1, BytesPerOp: 8, Iterations: 10},
			{Bench: "a/First", NsPerOp: 1.5, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 99,
				Ignore: true, IgnoreReason: "why"},
		},
	}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != Version || out.Area != "agg" || out.Scale != in.Scale {
		t.Errorf("metadata = %+v", out)
	}
	// WriteFile sorts by bench name for stable diffs.
	if out.Results[0].Bench != "a/First" || out.Results[1].Bench != "z/Last" {
		t.Errorf("results not sorted: %+v", out.Results)
	}
	if !out.Results[0].Ignore || out.Results[0].IgnoreReason != "why" {
		t.Errorf("ignore flags lost: %+v", out.Results[0])
	}
}

func TestReadFileRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 99, "results": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
	if err := os.WriteFile(bad, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMergeBest(t *testing.T) {
	run1 := []Result{
		{Bench: "a", NsPerOp: 100, AllocsPerOp: 5, BytesPerOp: 64, Iterations: 10},
		{Bench: "b", NsPerOp: 50, AllocsPerOp: 2, BytesPerOp: 32, Iterations: 20},
	}
	run2 := []Result{
		{Bench: "a", NsPerOp: 80, AllocsPerOp: 6, BytesPerOp: 60, Iterations: 12},
		{Bench: "c", NsPerOp: 7, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 1000, Ignore: true, IgnoreReason: "r"},
	}
	out := MergeBest(run1, run2)
	if len(out) != 3 {
		t.Fatalf("%d results", len(out))
	}
	a := out[0]
	if a.Bench != "a" || a.NsPerOp != 80 || a.AllocsPerOp != 5 || a.BytesPerOp != 60 || a.Iterations != 12 {
		t.Errorf("best-of merge wrong: %+v", a)
	}
	if out[2].Bench != "c" || !out[2].Ignore || out[2].IgnoreReason != "r" {
		t.Errorf("single-run bench lost flags: %+v", out[2])
	}
}
