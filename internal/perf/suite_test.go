package perf

import (
	"sort"
	"strings"
	"testing"
	"time"
)

func TestAreasSortedAndResolvable(t *testing.T) {
	areas := Areas()
	if !sort.StringsAreSorted(areas) {
		t.Errorf("areas not sorted: %v", areas)
	}
	if len(areas) != 6 {
		t.Errorf("%d areas, want 6: %v", len(areas), areas)
	}
	seen := map[string]string{}
	for _, area := range areas {
		benches, err := SuiteBenches(area)
		if err != nil {
			t.Fatal(err)
		}
		if len(benches) == 0 {
			t.Errorf("area %s has no benches", area)
		}
		for _, bench := range benches {
			// Stable names: area-prefixed, no spaces (b.Run would mangle
			// them), unique across the whole suite.
			if !strings.HasPrefix(bench.Name, area+"/") {
				t.Errorf("bench %q not prefixed with its area %q", bench.Name, area)
			}
			if strings.ContainsAny(bench.Name, " \t") {
				t.Errorf("bench %q contains whitespace", bench.Name)
			}
			if prev, dup := seen[bench.Name]; dup {
				t.Errorf("bench name %q duplicated (%s and %s)", bench.Name, prev, area)
			}
			seen[bench.Name] = area
			if bench.Ignore && bench.IgnoreReason == "" {
				t.Errorf("bench %q is exempt without a reason", bench.Name)
			}
			if bench.F == nil {
				t.Errorf("bench %q has no body", bench.Name)
			}
		}
	}
	if _, err := SuiteBenches("nope"); err == nil {
		t.Error("unknown area accepted")
	}
}

// TestRunAreaAgg executes the agg area end to end at a tiny benchtime and
// checks the File it produces is baseline-shaped.
func TestRunAreaAgg(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	var lines int
	f, err := RunArea("agg", 2, time.Millisecond, func(string, ...any) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	benches, _ := SuiteBenches("agg")
	if len(f.Results) != len(benches) {
		t.Fatalf("%d results, want %d", len(f.Results), len(benches))
	}
	if lines != 2*len(benches) {
		t.Errorf("%d progress lines, want %d", lines, 2*len(benches))
	}
	if f.Area != "agg" || f.Version != Version || f.Go == "" || f.OS == "" || f.Arch == "" {
		t.Errorf("metadata = %+v", f)
	}
	if !strings.Contains(f.Scale, "best-of-2") {
		t.Errorf("scale = %q", f.Scale)
	}
	for _, r := range f.Results {
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Errorf("implausible result %+v", r)
		}
	}
	// An unchanged rerun of itself passes the default gate trivially.
	if n := Regressions(Compare(f.Results, f.Results, DefaultThresholds())); n != 0 {
		t.Errorf("self-compare regressed: %d", n)
	}
}

func TestRunAreaUnknown(t *testing.T) {
	if _, err := RunArea("nope", 1, time.Millisecond, nil); err == nil {
		t.Error("unknown area accepted")
	}
}
