package perf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// parse.go ingests standard `go test -bench -benchmem` output so CI can
// feed an ordinary benchmark run into the same comparator the programmatic
// suite uses. Bench names are canonicalized (Benchmark prefix, GOMAXPROCS
// suffix, and the per-package PerfSuite wrapper level stripped) so they
// match the names recorded in BENCH_<area>.json.

// CanonicalName maps a raw `go test -bench` benchmark name to the stable
// name the baselines use: "BenchmarkPerfSuite/agg/Krum/p8,n4096-8" →
// "agg/Krum/p8,n4096".
func CanonicalName(raw string) string {
	name := strings.TrimPrefix(raw, "Benchmark")
	// The trailing -N is the GOMAXPROCS the run used, not part of the
	// bench identity.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "PerfSuite/")
	return name
}

// Parse reads `go test -bench -benchmem` output into a File. The
// goos/goarch header lines populate OS/Arch when present; Area, Go, and
// Scale are left for the caller. Non-benchmark lines (PASS, ok, cpu:,
// pkg:) are skipped.
func Parse(r io.Reader) (*File, error) {
	f := &File{Version: Version}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.OS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			f.Arch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		res, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		f.Results = append(f.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// parseBenchLine decodes one "BenchmarkName   N   v unit   v unit ..."
// line.
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, fmt.Errorf("perf: malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("perf: bad iteration count in %q: %w", line, err)
	}
	res := Result{Bench: CanonicalName(fields[0]), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if res.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, fmt.Errorf("perf: bad ns/op in %q: %w", line, err)
			}
		case "B/op":
			if res.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("perf: bad B/op in %q: %w", line, err)
			}
		case "allocs/op":
			if res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("perf: bad allocs/op in %q: %w", line, err)
			}
		default:
			// MB/s and custom metrics are informational; the baselines
			// track only the three core units.
		}
	}
	return res, nil
}
