package perf

import (
	"fmt"
	"io"
	"sort"
)

// compare.go is the regression gate: it pairs a fresh suite run against a
// checked-in baseline and applies noise-tolerant rules — a relative ns/op
// threshold backed by an absolute floor (so a 5ns wiggle on a 15ns bench
// is not a "regression"), an allocs/op allowance backed by a relative
// backstop (so a few-allocation wobble on a 400k-alloc bench is not one
// either), and per-bench exemptions carried in the baseline
// (Result.Ignore) or supplied by the caller.

// Thresholds configures the gate. The zero value is unusable; start from
// DefaultThresholds.
type Thresholds struct {
	// MaxNsPct is the allowed ns/op growth in percent (e.g. 30 = +30%).
	MaxNsPct float64
	// MinNsDelta is the absolute ns/op growth a regression must also
	// exceed, filtering relative noise on nanosecond-scale benches.
	MinNsDelta float64
	// MaxAllocsDelta is the allowed absolute allocs/op growth.
	MaxAllocsDelta int64
	// MaxAllocsPct is the relative allocs/op growth a regression must
	// ALSO exceed — the mirror of MinNsDelta: on a bench doing hundreds
	// of thousands of allocations per op (the lint suite), a
	// few-allocation wobble trips any useful absolute allowance while
	// meaning nothing. A zero-alloc baseline skips the relative rule
	// (any growth is infinite percent).
	MaxAllocsPct float64
	// Ignore exempts bench names supplied at compare time, on top of the
	// Ignore flags recorded in the baseline itself.
	Ignore map[string]bool
}

// DefaultThresholds returns the gate used by deta-bench and CI: +30%
// ns/op (and at least +50ns), +2 allocs/op (and at least +1%).
func DefaultThresholds() Thresholds {
	return Thresholds{MaxNsPct: 30, MinNsDelta: 50, MaxAllocsDelta: 2, MaxAllocsPct: 1}
}

// Delta is one bench's baseline-vs-fresh comparison.
type Delta struct {
	Bench string
	Base  Result
	Fresh Result
	// NsPct is the ns/op change in percent (positive = slower).
	NsPct       float64
	AllocsDelta int64
	// Missing: in the baseline but absent from the fresh run (a renamed
	// or deleted bench must be re-baselined deliberately). New: in the
	// fresh run only (lands warn-free until the next baseline write).
	Missing bool
	New     bool
	// Ignored marks exempt benches: tracked and printed, never gating.
	Ignored bool
	// Regressed is the gate verdict; Reason says which rule fired.
	Regressed bool
	Reason    string
}

// Compare pairs baseline and fresh results by bench name and applies th.
// Deltas come back sorted by bench name.
func Compare(base, fresh []Result, th Thresholds) []Delta {
	freshBy := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		freshBy[r.Bench] = r
	}
	seen := make(map[string]bool, len(base))
	var out []Delta
	for _, b := range base {
		seen[b.Bench] = true
		d := Delta{Bench: b.Bench, Base: b}
		f, ok := freshBy[b.Bench]
		if !ok {
			d.Missing = true
			d.Regressed = true
			d.Reason = "bench missing from fresh run (rename or deletion needs -perf-baseline-write)"
			if b.Ignore || th.Ignore[b.Bench] {
				d.Ignored, d.Regressed = true, false
			}
			out = append(out, d)
			continue
		}
		d.Fresh = f
		if b.NsPerOp > 0 {
			d.NsPct = (f.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		d.AllocsDelta = f.AllocsPerOp - b.AllocsPerOp
		switch {
		case b.Ignore || f.Ignore || th.Ignore[b.Bench]:
			d.Ignored = true
		case b.NsPerOp <= 0:
			// A coarse-clock CI host can record a 0 ns/op baseline; a
			// percentage against it is garbage (division by zero), so the
			// bench is surfaced as ignored-with-warning instead of either
			// NaN output or a silent never-gates pass.
			d.Ignored = true
			d.Reason = "baseline records 0 ns/op (coarse clock?); not gated — re-baseline to track"
		case d.NsPct > th.MaxNsPct && f.NsPerOp-b.NsPerOp >= th.MinNsDelta:
			d.Regressed = true
			d.Reason = fmt.Sprintf("ns/op +%.1f%% exceeds +%.0f%%", d.NsPct, th.MaxNsPct)
		case d.AllocsDelta > th.MaxAllocsDelta &&
			(b.AllocsPerOp <= 0 || float64(d.AllocsDelta)/float64(b.AllocsPerOp)*100 > th.MaxAllocsPct):
			d.Regressed = true
			d.Reason = fmt.Sprintf("allocs/op +%d exceeds +%d", d.AllocsDelta, th.MaxAllocsDelta)
		}
		out = append(out, d)
	}
	for _, f := range fresh {
		if !seen[f.Bench] {
			out = append(out, Delta{Bench: f.Bench, Fresh: f, New: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bench < out[j].Bench })
	return out
}

// Regressions counts gating deltas.
func Regressions(deltas []Delta) int {
	n := 0
	for _, d := range deltas {
		if d.Regressed {
			n++
		}
	}
	return n
}

// RenderDeltas prints a benchstat-style table for one area.
func RenderDeltas(w io.Writer, area string, deltas []Delta) {
	fmt.Fprintf(w, "perf: area %s (%d bench(es))\n", area, len(deltas))
	fmt.Fprintf(w, "  %-44s %14s %14s %9s %8s  %s\n",
		"bench", "old ns/op", "new ns/op", "delta", "allocs", "verdict")
	for _, d := range deltas {
		verdict := "ok"
		switch {
		case d.Regressed:
			verdict = "REGRESSED: " + d.Reason
		case d.Ignored && d.Missing:
			verdict = "ignored (missing)"
		case d.Ignored && d.Reason != "":
			verdict = "ignored (" + d.Reason + ")"
		case d.Ignored:
			verdict = "ignored"
		case d.New:
			verdict = "new (unbaselined)"
		}
		oldNs, newNs, delta, allocs := "-", "-", "-", "-"
		if !d.New {
			oldNs = fmt.Sprintf("%.0f", d.Base.NsPerOp)
		}
		if !d.Missing {
			newNs = fmt.Sprintf("%.0f", d.Fresh.NsPerOp)
		}
		if !d.New && !d.Missing {
			delta = fmt.Sprintf("%+.1f%%", d.NsPct)
			allocs = fmt.Sprintf("%+d", d.AllocsDelta)
		}
		fmt.Fprintf(w, "  %-44s %14s %14s %9s %8s  %s\n",
			d.Bench, oldNs, newNs, delta, allocs, verdict)
	}
}
