package attack

import (
	"testing"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/core"
	"deta/internal/dataset"
	"deta/internal/nn"
	"deta/internal/sev"
)

// TestEndToEndAggregatorBreach plays the paper's worst-case §6 scenario
// against the real system: a party computes a FedSGD gradient for one
// training sample, transforms it with a production Mapper+Shuffler, and
// uploads it to attested aggregator nodes. The adversary then breaches an
// aggregator (LeakRoundFragments), obtains exactly what that aggregator
// holds, and runs DLG with black-box model access. The reconstruction must
// fail — while the same attack against the raw (untransformed) gradient
// succeeds.
func TestEndToEndAggregatorBreach(t *testing.T) {
	if testing.Short() {
		t.Skip("reconstruction attack is slow")
	}
	// Victim setup: one sample, small LeNet, single-sample gradient (the
	// FedSGD upload the attacks target).
	spec := dataset.Spec{Name: "breach", C: 1, H: 8, W: 8, Classes: 4}
	sample := dataset.Make(spec, 1, []byte("breach-data")).At(0)
	net := nn.LeNetDLG(1, 8, 8, 4)
	net.Init([]byte("breach-model"))
	oracle := NewOracle(net)
	grad, err := oracle.VictimGradient(sample.X, sample.Label)
	if err != nil {
		t.Fatal(err)
	}

	// Real trust bootstrap: two attested aggregators.
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	ap := attest.NewProxy(vendor.RAS(), core.OVMF)
	nodes := make([]*core.AggregatorNode, 2)
	for j := range nodes {
		platform, err := sev.NewPlatform("host", vendor)
		if err != nil {
			t.Fatal(err)
		}
		cvm, err := platform.LaunchCVM(core.OVMF)
		if err != nil {
			t.Fatal(err)
		}
		id := []string{"agg-1", "agg-2"}[j]
		if _, err := ap.Provision(id, platform, cvm); err != nil {
			t.Fatal(err)
		}
		nodes[j], err = core.NewAggregatorNode(id, agg.IterativeAverage{}, cvm)
		if err != nil {
			t.Fatal(err)
		}
		nodes[j].Register("victim")
	}

	// Party-side transform and upload: 60/40 split, shuffling on.
	mapper, err := core.NewMapper(len(grad), []float64{0.6, 0.4}, []byte("breach-mapper"))
	if err != nil {
		t.Fatal(err)
	}
	broker, err := attest.NewKeyBroker(32)
	if err != nil {
		t.Fatal(err)
	}
	broker.RegisterParty("victim")
	permKey, err := broker.PermutationKey("victim")
	if err != nil {
		t.Fatal(err)
	}
	shuffler, err := core.NewShuffler(permKey)
	if err != nil {
		t.Fatal(err)
	}
	roundID, err := broker.RoundID(1)
	if err != nil {
		t.Fatal(err)
	}
	frags, err := core.Transform(mapper, shuffler, grad, roundID, true)
	if err != nil {
		t.Fatal(err)
	}
	for j, node := range nodes {
		if err := node.Upload(1, "victim", frags[j], 1); err != nil {
			t.Fatal(err)
		}
	}

	// Breach aggregator 1 (holding the 60% partition) and attack.
	leak := nodes[0].LeakRoundFragments(1)
	stolen := leak["victim"]
	if stolen == nil {
		t.Fatal("breach yielded nothing")
	}
	obs := &Observation{Scenario: ScenarioP06Shuffle, Observed: stolen}
	cfg := DLGConfig{Iterations: 150, LR: 0.3}
	breached, err := DLG(oracle, obs, sample.X, sample.Label, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: same attack with the untransformed gradient.
	full := &Observation{Scenario: ScenarioFull, Observed: grad}
	baseline, err := DLG(oracle, full, sample.X, sample.Label, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if baseline.MSE > 1e-2 {
		t.Fatalf("baseline attack failed (MSE %v); breach comparison meaningless", baseline.MSE)
	}
	if breached.MSE < 100*baseline.MSE {
		t.Fatalf("breached-aggregator attack too successful: MSE %v vs baseline %v",
			breached.MSE, baseline.MSE)
	}
	if breached.MSE < 1e-1 {
		t.Fatalf("breached-aggregator reconstruction recognizable: MSE %v", breached.MSE)
	}

	// Sanity: the leaked fragment really is what traveled on the wire —
	// the shuffled 60% partition, not the raw gradient prefix.
	plain, err := mapper.Partition(grad)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range plain[0] {
		if plain[0][i] != stolen[i] {
			diff++
		}
	}
	if diff < len(plain[0])/2 {
		t.Fatal("leaked fragment was not shuffled")
	}
}
