package attack

import (
	"math"
	"testing"

	"deta/internal/nn"
	"deta/internal/rng"
	"deta/internal/tensor"
)

// tinyModel returns a small MLP and an oracle over it, with enough
// parameters relative to the input for gradient matching to be
// well-determined (first-layer weight gradients are rank-one outer
// products delta x^T, which pin down x).
func tinyModel(t testing.TB) (*nn.Network, *Oracle) {
	t.Helper()
	net := nn.MLP("attack-mlp", 16, 12, 4)
	net.Init([]byte("attack-model"))
	return net, NewOracle(net)
}

func tinyInput(seed string, n int) []float64 {
	st := rng.NewStream([]byte(seed), "victim")
	x := make([]float64, n)
	for i := range x {
		x[i] = st.Float64()
	}
	return x
}

func fullObservation(t testing.TB, o *Oracle, x []float64, label int) *Observation {
	t.Helper()
	grad, err := o.VictimGradient(x, label)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := Observe(grad, ScenarioFull, []byte("obs-seed"), []byte("round-1"))
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

// The finite-difference JTv machinery must match full numerical
// differentiation of the gradient-matching cost.
func TestJTvMatchesNumericalCostGradient(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("jtv", 16)
	target := []float64{0.1, 0.2, 0.3, 0.4}
	obs := fullObservation(t, o, tinyInput("victim-x", 16), 2)

	costAt := func(xe []float64) float64 {
		g, _, err := o.DummyGradient(xe, target)
		if err != nil {
			t.Fatal(err)
		}
		_, c := obs.AlignedDiff(g)
		return c
	}

	g, _, err := o.DummyGradient(x, target)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := obs.AlignedDiff(g)
	dx, _, err := o.JTv(x, target, v)
	if err != nil {
		t.Fatal(err)
	}

	const eps = 1e-5
	for _, i := range []int{0, 5, 11, 15} {
		orig := x[i]
		x[i] = orig + eps
		cp := costAt(x)
		x[i] = orig - eps
		cm := costAt(x)
		x[i] = orig
		num := (cp - cm) / (2 * eps)
		analytic := 2 * dx[i]
		if math.Abs(num-analytic) > 1e-3*(1+math.Abs(num)) {
			t.Errorf("coord %d: analytic %v, numerical %v", i, analytic, num)
		}
	}
}

func TestJTvZeroDirection(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("z", 16)
	target := []float64{1, 0, 0, 0}
	dx, dt, err := o.JTv(x, target, make(tensor.Vector, o.Net.NumParams()))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dx {
		if v != 0 {
			t.Fatal("zero direction produced nonzero dx")
		}
	}
	for _, v := range dt {
		if v != 0 {
			t.Fatal("zero direction produced nonzero dt")
		}
	}
}

func TestObserveValidation(t *testing.T) {
	g := make(tensor.Vector, 10)
	if _, err := Observe(g, Scenario{PartitionFactor: 0}, nil, nil); err == nil {
		t.Error("zero partition factor accepted")
	}
	if _, err := Observe(g, Scenario{PartitionFactor: 1.5}, nil, nil); err == nil {
		t.Error("partition factor > 1 accepted")
	}
}

func TestObserveSizes(t *testing.T) {
	g := make(tensor.Vector, 1000)
	for i := range g {
		g[i] = float64(i)
	}
	for _, sc := range TableScenarios {
		obs, err := Observe(g, sc, []byte("s"), []byte("r"))
		if err != nil {
			t.Fatal(err)
		}
		want := int(1000*sc.PartitionFactor + 0.5)
		if sc.PartitionFactor == 1 {
			want = 1000
		}
		if len(obs.Observed) != want {
			t.Errorf("%s: observed %d values, want %d", sc.Name, len(obs.Observed), want)
		}
	}
}

func TestObserveShuffleChangesOrder(t *testing.T) {
	g := make(tensor.Vector, 256)
	for i := range g {
		g[i] = float64(i)
	}
	plain, _ := Observe(g, ScenarioFull, []byte("s"), []byte("r"))
	shuf, _ := Observe(g, ScenarioFullShuffle, []byte("s"), []byte("r"))
	diff := 0
	for i := range plain.Observed {
		if plain.Observed[i] != shuf.Observed[i] {
			diff++
		}
	}
	if diff < 128 {
		t.Fatalf("shuffled observation too similar: %d/256 differ", diff)
	}
}

func TestInferLabeliDLGFullObservation(t *testing.T) {
	_, o := tinyModel(t)
	// The sign rule must recover the label for several labels and inputs.
	for label := 0; label < 4; label++ {
		x := tinyInput("label-test", 16)
		obs := fullObservation(t, o, x, label)
		if got := InferLabeliDLG(o, obs); got != label {
			t.Errorf("inferred %d, want %d", got, label)
		}
	}
}

func TestDLGReconstructsWithFullObservation(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("dlg-victim", 16)
	obs := fullObservation(t, o, x, 1)
	res, err := DLG(o, obs, x, 1, DLGConfig{Iterations: 200, LR: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MSE > 1e-2 {
		t.Fatalf("DLG with full observation failed: MSE %v", res.MSE)
	}
}

func TestDLGFailsUnderShuffle(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("dlg-victim-2", 16)
	grad, err := o.VictimGradient(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := Observe(grad, ScenarioFullShuffle, []byte("s"), []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := DLG(o, obs, x, 2, DLGConfig{Iterations: 200, LR: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	full := fullObservation(t, o, x, 2)
	base, err := DLG(o, full, x, 2, DLGConfig{Iterations: 200, LR: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MSE < 10*base.MSE {
		t.Fatalf("shuffle did not degrade DLG: shuffled MSE %v vs full MSE %v", res.MSE, base.MSE)
	}
}

func TestIDLGReconstructsWithFullObservation(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("idlg-victim", 16)
	obs := fullObservation(t, o, x, 3)
	res, err := IDLG(o, obs, x, 3, DLGConfig{Iterations: 200, LR: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.InferredLabel != 3 {
		t.Errorf("inferred label %d, want 3", res.InferredLabel)
	}
	if res.MSE > 1e-2 {
		t.Fatalf("iDLG with full observation failed: MSE %v", res.MSE)
	}
}

func TestIGConvergesWithFullObservation(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("ig-victim", 16)
	obs := fullObservation(t, o, x, 0)
	res, err := IG(o, obs, x, 0, IGConfig{
		Iterations: 300, Restarts: 1, LR: 0.05, TVWeight: 1e-4,
		Channels: 1, Height: 4, Width: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CosineDist > 0.05 {
		t.Fatalf("IG with full observation did not converge: cosine distance %v", res.CosineDist)
	}
}

func TestIGStuckUnderShuffle(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("ig-victim-2", 16)
	grad, err := o.VictimGradient(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := Observe(grad, ScenarioFullShuffle, []byte("s"), []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := IG(o, obs, x, 1, IGConfig{
		Iterations: 150, Restarts: 1, LR: 0.05, TVWeight: 1e-4,
		Channels: 1, Height: 4, Width: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CosineDist < 0.2 {
		t.Fatalf("IG converged despite shuffling: cosine distance %v", res.CosineDist)
	}
}

func TestIGValidation(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("v", 16)
	obs := fullObservation(t, o, x, 0)
	if _, err := IG(o, obs, x, 0, IGConfig{Channels: 1, Height: 3, Width: 3}); err == nil {
		t.Error("mismatched TV geometry accepted")
	}
	if _, err := IG(o, obs, x, 99, IGConfig{Channels: 1, Height: 4, Width: 4}); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := IG(o, obs, x[:3], 0, IGConfig{Channels: 1, Height: 4, Width: 4}); err == nil {
		t.Error("short input accepted")
	}
}

func TestDLGValidation(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("v", 16)
	obs := fullObservation(t, o, x, 0)
	if _, err := DLG(o, obs, x[:4], 0, DLGConfig{Iterations: 1}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := IDLG(o, obs, x[:4], 0, DLGConfig{Iterations: 1}); err == nil {
		t.Error("short input accepted by iDLG")
	}
	if _, err := o.VictimGradient(x, 99); err == nil {
		t.Error("out-of-range victim label accepted")
	}
}

func TestTV(t *testing.T) {
	flat := make(tensor.Vector, 16)
	if TV(flat, 1, 4, 4) != 0 {
		t.Error("flat image has nonzero TV")
	}
	img := make(tensor.Vector, 16)
	img[5] = 1 // one bright pixel => TV = 4 (two horizontal + two vertical edges)
	if got := TV(img, 1, 4, 4); math.Abs(got-4) > 1e-12 {
		t.Errorf("TV = %v, want 4", got)
	}
}

func TestCosineAlignmentZeroVectors(t *testing.T) {
	obs := &Observation{Scenario: ScenarioFull, Observed: make(tensor.Vector, 4)}
	w, d := obs.CosineAlignment(tensor.Vector{1, 2, 3, 4})
	if d != 1 {
		t.Errorf("zero observation: distance %v, want 1", d)
	}
	for _, v := range w {
		if v != 0 {
			t.Error("zero observation: nonzero direction")
		}
	}
}
