// Package attack implements the three FL data-reconstruction attacks the
// paper evaluates DeTA against (§6): Deep Leakage from Gradients (DLG),
// Improved DLG (iDLG), and Inverting Gradients (IG), together with the
// breached-aggregator observation model (partitioned and/or shuffled
// gradient fragments) and the fidelity metrics of Tables 1-3.
//
// The attacks optimize a dummy input (and for DLG a dummy label) so that
// its loss gradient matches the observed gradient. That requires
// differentiating *through* the gradient — a second-order quantity. Instead
// of building full double-backprop into internal/nn, we compute the needed
// vector-Jacobian products with symmetric finite differences over a weight
// perturbation (Pearlmutter's trick):
//
//	grad_x <g(x), v> = d/de grad_x L(theta + e*v; x) |_{e=0}
//	               ~= [grad_x L(theta+e*v) - grad_x L(theta-e*v)] / (2e)
//
// which costs two extra ordinary backward passes per optimization step and
// is exact up to O(e^2). DESIGN.md §2 records this substitution; the test
// suite validates it against full numerical differentiation.
package attack

import (
	"fmt"
	"math"

	"deta/internal/nn"
	"deta/internal/tensor"
)

// Oracle wraps the attacked model in the paper's relaxed §6 setting: the
// adversary may query the complete, unperturbed model as a black box
// (compute loss gradients for dummy inputs), while the *victim's* gradient
// it observed has been transformed by DeTA.
type Oracle struct {
	Net   *nn.Network
	Theta tensor.Vector // the model weights the gradients are taken at
}

// NewOracle captures the model's current parameters.
func NewOracle(net *nn.Network) *Oracle {
	return &Oracle{Net: net, Theta: net.Params()}
}

// grads runs one forward/backward at the given weights and returns
// (paramGrad, inputGrad, targetGrad, loss) for input x and soft target t.
func (o *Oracle) grads(theta tensor.Vector, x, target []float64) (pg tensor.Vector, xg, tg []float64, loss float64, err error) {
	if err := o.Net.SetParams(theta); err != nil {
		return nil, nil, nil, 0, err
	}
	o.Net.ZeroGrads()
	out := o.Net.Forward(x, true)
	loss, gLogits, gTarget, err := nn.SoftCrossEntropy(out, target)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	xg = o.Net.Backward(gLogits)
	pg = o.Net.Grads()
	return pg, xg, gTarget, loss, nil
}

// VictimGradient computes the loss gradient a victim party would upload for
// a single training example with a hard label — the quantity FedSGD shares
// and the attacks exploit.
func (o *Oracle) VictimGradient(x []float64, label int) (tensor.Vector, error) {
	target := make([]float64, o.Net.OutDim())
	if label < 0 || label >= len(target) {
		return nil, fmt.Errorf("attack: label %d out of range", label)
	}
	target[label] = 1
	pg, _, _, _, err := o.grads(o.Theta, x, target)
	if err != nil {
		return nil, err
	}
	return pg.Clone(), nil
}

// DummyGradient computes the dummy pair's parameter gradient and loss at
// the original weights.
func (o *Oracle) DummyGradient(x, target []float64) (tensor.Vector, float64, error) {
	pg, _, _, loss, err := o.grads(o.Theta, x, target)
	if err != nil {
		return nil, 0, err
	}
	return pg.Clone(), loss, nil
}

// JTv computes the vector-Jacobian products the gradient-matching attacks
// need: for direction v over parameter space, it returns
// (grad_x <g(x,t), v>, grad_t <g(x,t), v>) via symmetric weight
// perturbation. The returned slices are freshly allocated.
func (o *Oracle) JTv(x, target []float64, v tensor.Vector) (dx, dt []float64, err error) {
	vn := tensor.Norm(v)
	if vn == 0 || math.IsNaN(vn) || math.IsInf(vn, 0) {
		return make([]float64, len(x)), make([]float64, len(target)), nil
	}
	eps := 1e-4 / vn
	thetaP := o.Theta.Clone()
	if err := tensor.AXPY(eps, thetaP, v); err != nil {
		return nil, nil, err
	}
	thetaM := o.Theta.Clone()
	if err := tensor.AXPY(-eps, thetaM, v); err != nil {
		return nil, nil, err
	}
	_, xgP, tgP, _, err := o.grads(thetaP, x, target)
	if err != nil {
		return nil, nil, err
	}
	_, xgM, tgM, _, err := o.grads(thetaM, x, target)
	if err != nil {
		return nil, nil, err
	}
	dx = make([]float64, len(x))
	for i := range dx {
		dx[i] = (xgP[i] - xgM[i]) / (2 * eps)
	}
	dt = make([]float64, len(target))
	for i := range dt {
		dt[i] = (tgP[i] - tgM[i]) / (2 * eps)
	}
	// Restore the oracle's canonical weights for subsequent callers.
	if err := o.Net.SetParams(o.Theta); err != nil {
		return nil, nil, err
	}
	return dx, dt, nil
}
