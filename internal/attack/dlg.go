package attack

import (
	"fmt"

	"deta/internal/nn"
	"deta/internal/optim"
	"deta/internal/rng"
	"deta/internal/tensor"
)

// DLGConfig configures the DLG and iDLG attacks.
type DLGConfig struct {
	Iterations int
	LR         float64
	History    int // L-BFGS history
	Seed       []byte
}

// Defaults mirror the reference implementations: 300 L-BFGS iterations.
func (c *DLGConfig) defaults() {
	if c.Iterations == 0 {
		c.Iterations = 300
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.History == 0 {
		c.History = 10
	}
	if c.Seed == nil {
		c.Seed = []byte("dlg-seed")
	}
}

// Result reports one reconstruction attempt.
type Result struct {
	Recon         tensor.Vector // reconstructed input
	MSE           float64       // vs. the true input (Tables 1-2 metric)
	FinalCost     float64       // final gradient-matching cost
	CosineDist    float64       // final cosine distance (Table 3 metric)
	InferredLabel int           // iDLG's label inference (-1 if not used)
	TrueLabel     int
}

// DLG runs Deep Leakage from Gradients (Zhu et al.): jointly optimize a
// dummy input and a dummy soft label with L-BFGS so the dummy pair's loss
// gradient matches the observed (possibly DeTA-transformed) gradient.
func DLG(o *Oracle, obs *Observation, trueX []float64, trueLabel int, cfg DLGConfig) (*Result, error) {
	cfg.defaults()
	inDim := o.Net.InDim()
	classes := o.Net.OutDim()
	if len(trueX) != inDim {
		return nil, fmt.Errorf("attack: input length %d, model expects %d", len(trueX), inDim)
	}

	// Dummy input ~ U[0,1], dummy label logits ~ N(0,1).
	st := rng.NewStream(cfg.Seed, "dlg-init")
	x := make(tensor.Vector, inDim)
	for i := range x {
		x[i] = st.Float64()
	}
	labelLogits := make(tensor.Vector, classes)
	for i := range labelLogits {
		labelLogits[i] = st.NormFloat64()
	}

	// One joint variable vector [x ; labelLogits] for L-BFGS.
	joint := append(x.Clone(), labelLogits...)
	opt := optim.NewLBFGS(cfg.LR, cfg.History)

	var finalCost float64
	for iter := 0; iter < cfg.Iterations; iter++ {
		xCur := joint[:inDim]
		target := nn.Softmax(joint[inDim:])

		dummyGrad, _, err := o.DummyGradient(xCur, target)
		if err != nil {
			return nil, err
		}
		v, cost := obs.AlignedDiff(dummyGrad)
		finalCost = cost

		// grad_x cost = 2 * grad_x <g, v>; same for the label variable.
		dx, dt, err := o.JTv(xCur, target, v)
		if err != nil {
			return nil, err
		}
		grad := make(tensor.Vector, len(joint))
		for i := 0; i < inDim; i++ {
			grad[i] = 2 * dx[i]
		}
		// Chain through softmax: d/dlogit_j = t_j*(dt_j - sum_c dt_c t_c).
		var dot float64
		for c := range dt {
			dot += dt[c] * target[c]
		}
		for j := range dt {
			grad[inDim+j] = 2 * target[j] * (dt[j] - dot)
		}
		if err := opt.Step(joint, grad); err != nil {
			return nil, err
		}
		if err := optim.CheckFinite(joint); err != nil {
			break // diverged: keep last finite state implicitly via result below
		}
	}
	// DLG's search is unconstrained (unlike IG); report the raw dummy
	// input, whose divergence under misaligned observations is what drives
	// MSE into the paper's top buckets.
	recon := joint[:inDim].Clone()
	mse, err := tensor.MSE(recon, tensor.Vector(trueX))
	if err != nil {
		return nil, err
	}
	finalGrad, _, err := o.DummyGradient(recon, nn.Softmax(joint[inDim:]))
	if err != nil {
		return nil, err
	}
	_, cosDist := obs.CosineAlignment(finalGrad)
	return &Result{
		Recon:         recon,
		MSE:           mse,
		FinalCost:     finalCost,
		CosineDist:    cosDist,
		InferredLabel: -1,
		TrueLabel:     trueLabel,
	}, nil
}

// InferLabeliDLG implements iDLG's label-inference rule (Zhao et al.): for
// softmax cross-entropy on a single example, the gradient row of the final
// classifier weights corresponding to the true label is the only one with
// negative dot products — so the row whose summed gradient is minimal
// identifies the label.
//
// The adversary must locate the final layer inside the observed gradient.
// With a full, in-order observation this is the trailing block; under
// DeTA's partition/shuffle the block cannot be located and the naive
// trailing-block guess yields garbage — degrading iDLG exactly as Table 2
// shows.
func InferLabeliDLG(o *Oracle, obs *Observation) int {
	layout := o.Net.Layout()
	classes := o.Net.OutDim()
	// Find the final weight block: second-to-last entry (weights, then
	// bias) in the layout.
	if len(layout) < 2 {
		return 0
	}
	wShape := layout[len(layout)-2]
	bSize := layout[len(layout)-1].Size()
	wSize := wShape.Size()
	rows := classes
	cols := wSize / rows

	// Naive location: assume the observation preserves the layout tail.
	end := len(obs.Observed) - bSize
	start := end - wSize
	if start < 0 || cols == 0 {
		return 0
	}
	block := obs.Observed[start:end]
	best, bestSum := 0, 0.0
	for r := 0; r < rows; r++ {
		var s float64
		for c := 0; c < cols; c++ {
			s += block[r*cols+c]
		}
		if r == 0 || s < bestSum {
			best, bestSum = r, s
		}
	}
	return best
}

// IDLG runs Improved DLG: infer the label analytically, then optimize only
// the dummy input against the observed gradient with L-BFGS.
func IDLG(o *Oracle, obs *Observation, trueX []float64, trueLabel int, cfg DLGConfig) (*Result, error) {
	cfg.defaults()
	inDim := o.Net.InDim()
	classes := o.Net.OutDim()
	if len(trueX) != inDim {
		return nil, fmt.Errorf("attack: input length %d, model expects %d", len(trueX), inDim)
	}
	inferred := InferLabeliDLG(o, obs)
	target := make([]float64, classes)
	target[inferred] = 1

	st := rng.NewStream(cfg.Seed, "idlg-init")
	x := make(tensor.Vector, inDim)
	for i := range x {
		x[i] = st.Float64()
	}
	opt := optim.NewLBFGS(cfg.LR, cfg.History)

	var finalCost float64
	for iter := 0; iter < cfg.Iterations; iter++ {
		dummyGrad, _, err := o.DummyGradient(x, target)
		if err != nil {
			return nil, err
		}
		v, cost := obs.AlignedDiff(dummyGrad)
		finalCost = cost
		dx, _, err := o.JTv(x, target, v)
		if err != nil {
			return nil, err
		}
		grad := make(tensor.Vector, inDim)
		for i := range grad {
			grad[i] = 2 * dx[i]
		}
		if err := opt.Step(x, grad); err != nil {
			return nil, err
		}
		if err := optim.CheckFinite(x); err != nil {
			break
		}
	}
	recon := x.Clone()
	mse, err := tensor.MSE(recon, tensor.Vector(trueX))
	if err != nil {
		return nil, err
	}
	finalGrad, _, err := o.DummyGradient(recon, target)
	if err != nil {
		return nil, err
	}
	_, cosDist := obs.CosineAlignment(finalGrad)
	return &Result{
		Recon:         recon,
		MSE:           mse,
		FinalCost:     finalCost,
		CosineDist:    cosDist,
		InferredLabel: inferred,
		TrueLabel:     trueLabel,
	}, nil
}
