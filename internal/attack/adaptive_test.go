package attack

import (
	"testing"
)

// Adaptive adversary (leaked model mapper) tests: the defense-in-depth
// claim is that partitioning alone relies on mapper secrecy, while
// shuffling protects even when the mapper leaks (the permutation key never
// leaves the broker).

func TestKnownMapperRestoresPartitionOnlyAttack(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("adaptive-victim", 16)
	grad, err := o.VictimGradient(x, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Without the mapper, the 0.6 partition defeats DLG.
	blind, err := Observe(grad, ScenarioP06, []byte("s"), []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DLGConfig{Iterations: 250, LR: 0.3}
	blindRes, err := DLG(o, blind, x, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// With the mapper, the adversary aligns its 60% of coordinates
	// correctly and reconstruction quality improves dramatically.
	known, err := ObserveWithMapper(grad, ScenarioP06, []byte("s"), []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	knownRes, err := DLG(o, known, x, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if knownRes.MSE > blindRes.MSE/10 {
		t.Fatalf("known mapper did not restore the attack: known MSE %v vs blind MSE %v",
			knownRes.MSE, blindRes.MSE)
	}
	if knownRes.MSE > 0.05 {
		t.Fatalf("known-mapper partition-only attack should approach reconstruction: MSE %v", knownRes.MSE)
	}
}

func TestKnownMapperDoesNotDefeatShuffling(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("adaptive-victim-2", 16)
	grad, err := o.VictimGradient(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	known, err := ObserveWithMapper(grad, ScenarioP06Shuffle, []byte("s"), []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DLGConfig{Iterations: 200, LR: 0.3}
	res, err := DLG(o, known, x, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MSE < 0.05 {
		t.Fatalf("shuffled fragment reconstructed despite unknown permutation key: MSE %v", res.MSE)
	}
}

func TestObserveWithMapperFullIsIdentityAlignment(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("adaptive-full", 16)
	grad, err := o.VictimGradient(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ObserveWithMapper(grad, ScenarioFull, []byte("s"), []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.KnownIndices) != len(grad) {
		t.Fatalf("full observation indices = %d, want %d", len(obs.KnownIndices), len(grad))
	}
	for i, idx := range obs.KnownIndices {
		if idx != i {
			t.Fatalf("full observation index %d maps to %d", i, idx)
		}
	}
	// Cost against the victim's own gradient must be exactly zero.
	v, cost := obs.AlignedDiff(grad)
	if cost != 0 {
		t.Fatalf("self-cost = %v", cost)
	}
	for _, d := range v {
		if d != 0 {
			t.Fatal("nonzero residual against own gradient")
		}
	}
}

func TestCosineAlignmentKnownIndices(t *testing.T) {
	_, o := tinyModel(t)
	x := tinyInput("adaptive-cos", 16)
	grad, err := o.VictimGradient(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ObserveWithMapper(grad, ScenarioP06, []byte("s"), []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	// Against the victim's own gradient, the correctly aligned cosine
	// distance is exactly 0.
	_, dist := obs.CosineAlignment(grad)
	if dist > 1e-12 {
		t.Fatalf("aligned self cosine distance = %v", dist)
	}
	// Blind alignment of the same fragment is far from 0.
	blind, err := Observe(grad, ScenarioP06, []byte("s"), []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	_, blindDist := blind.CosineAlignment(grad)
	if blindDist < 0.1 {
		t.Fatalf("blind alignment suspiciously good: %v", blindDist)
	}
}
