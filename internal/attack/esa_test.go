package attack

import (
	"testing"

	"deta/internal/core"
	"deta/internal/tensor"
)

// The paper's §4.2 comparison: ESA-style shuffling permutes whole updates
// across parties (anonymity), so a breached aggregator still holds
// complete, in-order model updates — and reconstruction succeeds against
// every one of them. DeTA's parameter-level shuffling protects the
// content itself.
func TestESAShufflingDoesNotStopReconstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("runs multiple reconstructions")
	}
	_, o := tinyModel(t)

	// Three victims' gradients.
	victims := make([][]float64, 3)
	grads := make([]tensor.Vector, 3)
	for i := range victims {
		victims[i] = tinyInput("esa-victim-"+string(rune('0'+i)), 16)
		g, err := o.VictimGradient(victims[i], i%4)
		if err != nil {
			t.Fatal(err)
		}
		grads[i] = g
	}

	// ESA: the aggregator sees the batch in randomized owner order.
	shuffled := core.ESAShuffleUpdates(grads, []byte("esa-key-0123456789abcdef012345"), []byte("round-1"))

	// The adversary attacks each anonymous update; every one reconstructs
	// *some* victim's input even though ownership is hidden.
	reconstructed := 0
	for i, g := range shuffled {
		obs := &Observation{Scenario: ScenarioFull, Observed: g}
		// The adversary does not know the label either; try each victim's
		// data only for MSE scoring — the reconstruction itself uses DLG's
		// joint label optimization.
		res, err := DLG(o, obs, victims[0], 0, DLGConfig{
			Iterations: 200, LR: 0.3, Seed: []byte{byte(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Score against every victim; a hit against any of them is a leak.
		best := res.MSE
		for _, v := range victims {
			if m, err := tensor.MSE(res.Recon, tensor.Vector(v)); err == nil && m < best {
				best = m
			}
		}
		if best < 1e-2 {
			reconstructed++
		}
	}
	if reconstructed == 0 {
		t.Fatal("ESA-shuffled updates resisted reconstruction; expected them to leak (anonymity != content protection)")
	}

	// Contrast: DeTA parameter-level shuffling on the same gradient
	// defeats the identical attack.
	sh, err := core.NewShuffler([]byte("deta-key-0123456789abcdef012345"))
	if err != nil {
		t.Fatal(err)
	}
	protected := sh.Shuffle(grads[0], []byte("round-1"), 0)
	obs := &Observation{Scenario: ScenarioFullShuffle, Observed: protected}
	res, err := DLG(o, obs, victims[0], 0, DLGConfig{Iterations: 200, LR: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MSE < 1e-1 {
		t.Fatalf("DeTA-shuffled update reconstructed: MSE %v", res.MSE)
	}
}

func TestESAShufflePreservesMultiset(t *testing.T) {
	updates := []tensor.Vector{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	out := core.ESAShuffleUpdates(updates, []byte("key-0123456789abcdef"), []byte("r"))
	if len(out) != len(updates) {
		t.Fatalf("len = %d", len(out))
	}
	seen := map[float64]bool{}
	for _, u := range out {
		if u[0] != u[1] {
			t.Fatal("update content modified")
		}
		seen[u[0]] = true
	}
	for _, u := range updates {
		if !seen[u[0]] {
			t.Fatalf("update %v lost in shuffle", u)
		}
	}
	// Copies, not aliases.
	out[0][0] = 99
	for _, u := range updates {
		if u[0] == 99 {
			t.Fatal("ESA shuffle aliased input storage")
		}
	}
}
