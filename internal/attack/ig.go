package attack

import (
	"fmt"

	"deta/internal/optim"
	"deta/internal/rng"
	"deta/internal/tensor"
)

// IGConfig configures the Inverting Gradients attack.
type IGConfig struct {
	Iterations int
	Restarts   int
	LR         float64
	TVWeight   float64
	// Image geometry for the total-variation prior.
	Channels, Height, Width int
	Seed                    []byte
}

func (c *IGConfig) defaults() {
	if c.Iterations == 0 {
		c.Iterations = 1000
	}
	if c.Restarts == 0 {
		c.Restarts = 2
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.TVWeight == 0 {
		c.TVWeight = 1e-2
	}
	if c.Seed == nil {
		c.Seed = []byte("ig-seed")
	}
}

// IG runs Inverting Gradients (Geiping et al.): minimize the cosine
// distance between the dummy input's loss gradient and the observation,
// regularized by total variation, searching over [0,1]^n with Adam steps
// on gradient *signs* — the configuration of the original attack. The label
// is assumed known (IG pairs with iDLG-style inference; the paper's
// experiments grant it).
func IG(o *Oracle, obs *Observation, trueX []float64, label int, cfg IGConfig) (*Result, error) {
	cfg.defaults()
	inDim := o.Net.InDim()
	if len(trueX) != inDim {
		return nil, fmt.Errorf("attack: input length %d, model expects %d", len(trueX), inDim)
	}
	if cfg.Channels*cfg.Height*cfg.Width != inDim {
		return nil, fmt.Errorf("attack: TV geometry %dx%dx%d does not match input dim %d",
			cfg.Channels, cfg.Height, cfg.Width, inDim)
	}
	classes := o.Net.OutDim()
	if label < 0 || label >= classes {
		return nil, fmt.Errorf("attack: label %d out of range [0,%d)", label, classes)
	}
	target := make([]float64, classes)
	target[label] = 1

	bestDist := 2.0
	var bestX tensor.Vector
	for restart := 0; restart < cfg.Restarts; restart++ {
		st := rng.NewStream(cfg.Seed, fmt.Sprintf("ig-init-%d", restart))
		x := make(tensor.Vector, inDim)
		for i := range x {
			x[i] = st.Float64()
		}
		opt := optim.NewAdam(cfg.LR)
		dist := 2.0
		for iter := 0; iter < cfg.Iterations; iter++ {
			dummyGrad, _, err := o.DummyGradient(x, target)
			if err != nil {
				return nil, err
			}
			w, d := obs.CosineAlignment(dummyGrad)
			dist = d
			dx, _, err := o.JTv(x, target, w)
			if err != nil {
				return nil, err
			}
			grad := tensor.Vector(dx)
			addTVGrad(grad, x, cfg)
			// IG steps on the sign of the gradient.
			if err := opt.Step(x, tensor.Sign(grad)); err != nil {
				return nil, err
			}
			tensor.ClampRange(x, 0, 1) // the attack's [0,1] search-space constraint
		}
		if dist < bestDist {
			bestDist = dist
			bestX = x.Clone()
		}
	}
	mse, err := tensor.MSE(bestX, tensor.Vector(trueX))
	if err != nil {
		return nil, err
	}
	return &Result{
		Recon:         bestX,
		MSE:           mse,
		FinalCost:     bestDist,
		CosineDist:    bestDist,
		InferredLabel: label,
		TrueLabel:     label,
	}, nil
}

// addTVGrad accumulates the subgradient of the anisotropic total-variation
// prior alpha * TV(x) into grad.
func addTVGrad(grad, x tensor.Vector, cfg IGConfig) {
	c, h, w := cfg.Channels, cfg.Height, cfg.Width
	alpha := cfg.TVWeight
	at := func(ci, y, xi int) int { return (ci*h+y)*w + xi }
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for xi := 0; xi < w; xi++ {
				i := at(ci, y, xi)
				if xi+1 < w {
					d := sign(x[i] - x[at(ci, y, xi+1)])
					grad[i] += alpha * d
					grad[at(ci, y, xi+1)] -= alpha * d
				}
				if y+1 < h {
					d := sign(x[i] - x[at(ci, y+1, xi)])
					grad[i] += alpha * d
					grad[at(ci, y+1, xi)] -= alpha * d
				}
			}
		}
	}
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// TV computes the anisotropic total variation of an image (for tests and
// reporting).
func TV(x tensor.Vector, channels, height, width int) float64 {
	at := func(ci, y, xi int) int { return (ci*height+y)*width + xi }
	var tv float64
	for ci := 0; ci < channels; ci++ {
		for y := 0; y < height; y++ {
			for xi := 0; xi < width; xi++ {
				i := at(ci, y, xi)
				if xi+1 < width {
					tv += abs(x[i] - x[at(ci, y, xi+1)])
				}
				if y+1 < height {
					tv += abs(x[i] - x[at(ci, y+1, xi)])
				}
			}
		}
	}
	return tv
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
