package attack

import (
	"fmt"
	"math"

	"deta/internal/core"
	"deta/internal/tensor"
)

// Scenario describes what a breached aggregator holds, mirroring the two
// evaluation configurations of §6: a partition factor (the fraction of each
// model update this aggregator receives) with shuffling off or on.
type Scenario struct {
	Name            string
	PartitionFactor float64 // in (0, 1]; 1.0 = "Full"
	Shuffle         bool
}

// Standard scenarios of Tables 1-3.
var (
	ScenarioFull        = Scenario{Name: "Full", PartitionFactor: 1.0}
	ScenarioP06         = Scenario{Name: "0.6", PartitionFactor: 0.6}
	ScenarioP02         = Scenario{Name: "0.2", PartitionFactor: 0.2}
	ScenarioFullShuffle = Scenario{Name: "Full+Shuffle", PartitionFactor: 1.0, Shuffle: true}
	ScenarioP06Shuffle  = Scenario{Name: "0.6+Shuffle", PartitionFactor: 0.6, Shuffle: true}
	ScenarioP02Shuffle  = Scenario{Name: "0.2+Shuffle", PartitionFactor: 0.2, Shuffle: true}
)

// TableScenarios is the six-column grid of Tables 1-3: partition-only at
// {Full, 0.6, 0.2}, then partition+shuffle at the same factors.
var TableScenarios = []Scenario{
	ScenarioFull, ScenarioP06, ScenarioP02,
	ScenarioFullShuffle, ScenarioP06Shuffle, ScenarioP02Shuffle,
}

// Observation is the evidence the adversary extracted from the breached
// aggregator: an anonymous flat fragment of the victim's gradient. The
// aggregator (and hence the adversary) does not know the model mapper or
// the permutation key, so the fragment's coordinates cannot be aligned to
// model positions — the adversary's best move is the naive alignment the
// attacks below use.
type Observation struct {
	Scenario Scenario
	Observed tensor.Vector

	// KnownIndices models a stronger, adaptive adversary who has also
	// obtained the model mapper (e.g. by compromising a party's
	// configuration): KnownIndices[i] is the original parameter index of
	// Observed[i]. With it, a partition-only fragment aligns perfectly;
	// a shuffled fragment still does not (the permutation key remains in
	// the broker), demonstrating the defense-in-depth layering.
	KnownIndices []int
}

// Observe applies a scenario's DeTA transformation to the victim's
// gradient, producing what the breached aggregator holds. seed
// deterministically derives the mapper and the permutation key; roundID is
// the training identifier of the observed round.
func Observe(grad tensor.Vector, sc Scenario, seed, roundID []byte) (*Observation, error) {
	obs, _, err := observe(grad, sc, seed, roundID)
	return obs, err
}

// ObserveWithMapper is Observe for the adaptive adversary of
// DESIGN.md §6 who also stole the model mapper: the returned observation
// carries the fragment's original index list.
func ObserveWithMapper(grad tensor.Vector, sc Scenario, seed, roundID []byte) (*Observation, error) {
	obs, indices, err := observe(grad, sc, seed, roundID)
	if err != nil {
		return nil, err
	}
	obs.KnownIndices = indices
	return obs, nil
}

func observe(grad tensor.Vector, sc Scenario, seed, roundID []byte) (*Observation, []int, error) {
	if sc.PartitionFactor <= 0 || sc.PartitionFactor > 1 {
		return nil, nil, fmt.Errorf("attack: partition factor %v out of (0,1]", sc.PartitionFactor)
	}
	frag := grad.Clone()
	indices := make([]int, len(grad))
	for i := range indices {
		indices[i] = i
	}
	if sc.PartitionFactor < 1 {
		// The breached aggregator is one of several; it holds the
		// partition with the scenario's share of parameters.
		props := []float64{sc.PartitionFactor, 1 - sc.PartitionFactor}
		m, err := core.NewMapper(len(grad), props, seed)
		if err != nil {
			return nil, nil, err
		}
		frags, err := m.Partition(grad)
		if err != nil {
			return nil, nil, err
		}
		frag = frags[0]
		indices, err = m.PartitionIndices(0)
		if err != nil {
			return nil, nil, err
		}
	}
	if sc.Shuffle {
		sh, err := core.NewShuffler(append([]byte("attack-perm-key/"), seed...))
		if err != nil {
			return nil, nil, err
		}
		frag = sh.Shuffle(frag, roundID, 0)
		// The mapper does not reveal the permutation: the index list
		// still describes the *unshuffled* fragment order, so a
		// known-mapper adversary aligns shuffled values to the wrong
		// indices — exactly the residual protection shuffling provides.
	}
	return &Observation{Scenario: sc, Observed: frag}, indices, nil
}

// AlignedDiff computes the adversary's naive residual v = g_dummy[:m] - obs
// zero-padded to full parameter length, together with the squared residual
// (the DLG cost). Without the mapper, the adversary aligns the anonymous
// fragment against the leading coordinates of its dummy gradient; when the
// observation is in fact partitioned or shuffled, this alignment is wrong,
// which is exactly why the attacks fail (§6).
func (o *Observation) AlignedDiff(dummyGrad tensor.Vector) (v tensor.Vector, cost float64) {
	v = make(tensor.Vector, len(dummyGrad))
	if o.KnownIndices != nil {
		// Adaptive adversary: align each observed value to its true
		// original index (correct for partition-only observations; still
		// wrong under shuffling, whose permutation the mapper does not
		// reveal).
		for i, idx := range o.KnownIndices {
			if i >= len(o.Observed) || idx >= len(dummyGrad) {
				break
			}
			d := dummyGrad[idx] - o.Observed[i]
			v[idx] = d
			cost += d * d
		}
		return v, cost
	}
	m := len(o.Observed)
	if m > len(dummyGrad) {
		m = len(dummyGrad)
	}
	for i := 0; i < m; i++ {
		d := dummyGrad[i] - o.Observed[i]
		v[i] = d
		cost += d * d
	}
	return v, cost
}

// CosineAlignment returns the cosine distance between the adversary's
// aligned dummy gradient slice and the observation (the IG cost term), plus
// the direction vector for its gradient (see IG).
func (o *Observation) CosineAlignment(dummyGrad tensor.Vector) (w tensor.Vector, dist float64) {
	m := len(o.Observed)
	if m > len(dummyGrad) {
		m = len(dummyGrad)
	}
	// position i of the observation aligns to original index align(i).
	align := func(i int) int { return i }
	if o.KnownIndices != nil {
		align = func(i int) int { return o.KnownIndices[i] }
		if m > len(o.KnownIndices) {
			m = len(o.KnownIndices)
		}
	}
	var dot, gg, oo float64
	for i := 0; i < m; i++ {
		gi := dummyGrad[align(i)]
		dot += gi * o.Observed[i]
		gg += gi * gi
		oo += o.Observed[i] * o.Observed[i]
	}
	if gg == 0 || oo == 0 {
		return make(tensor.Vector, len(dummyGrad)), 1
	}
	a := math.Sqrt(gg)
	b := math.Sqrt(oo)
	dist = 1 - dot/(a*b)
	// d(dist)/dg = -obs/(a*b) + dot*g/(a^3*b), zero elsewhere.
	w = make(tensor.Vector, len(dummyGrad))
	for i := 0; i < m; i++ {
		idx := align(i)
		w[idx] = -o.Observed[i]/(a*b) + dot*dummyGrad[idx]/(a*a*a*b)
	}
	return w, dist
}
