package core

import (
	"deta/internal/rng"
	"deta/internal/tensor"
)

// ESAShuffleUpdates implements the Encode-Shuffle-Analyze style shuffler
// the paper contrasts with DeTA in §4.2: it permutes the ORDER OF WHOLE
// MODEL UPDATES across parties (breaking the linkage between an update and
// its owner, i.e. anonymity) but leaves every update's internal content
// pristine. DeTA's shuffler instead permutes parameters WITHIN each
// update. The two serve different security goals: an ESA-shuffled batch
// still hands an adversary complete, in-order model updates to invert —
// see the comparison test in internal/attack.
func ESAShuffleUpdates(updates []tensor.Vector, key, roundID []byte) []tensor.Vector {
	seed := rng.DeriveSeed(key, roundID, []byte("esa-update-shuffle"))
	perm := rng.NewStream(seed, "esa").Perm(len(updates))
	out := make([]tensor.Vector, len(updates))
	for i, src := range perm {
		out[i] = updates[src].Clone()
	}
	return out
}
