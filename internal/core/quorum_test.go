package core

import (
	"errors"
	"math"
	"testing"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/sev"
	"deta/internal/tensor"
)

func quorumNode(t *testing.T) *AggregatorNode {
	t.Helper()
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sev.NewPlatform("h", vendor)
	if err != nil {
		t.Fatal(err)
	}
	ap := attest.NewProxy(vendor.RAS(), OVMF)
	cvm, err := platform.LaunchCVM(OVMF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Provision("agg-q", platform, cvm); err != nil {
		t.Fatal(err)
	}
	node, err := NewAggregatorNode("agg-q", agg.IterativeAverage{}, cvm)
	if err != nil {
		t.Fatal(err)
	}
	return node
}

// Partial participation: with a quorum of 2 out of 3 registered parties,
// a round fuses without the straggler (the paper's §8.2 asynchrony
// argument against SMC-style cohort formation).
func TestQuorumAggregatesWithoutStraggler(t *testing.T) {
	node := quorumNode(t)
	for _, p := range []string{"P1", "P2", "P3-straggler"} {
		node.Register(p)
	}
	node.SetQuorum(2)

	if err := node.Upload(1, "P1", tensor.Vector{2}, 1); err != nil {
		t.Fatal(err)
	}
	if node.Complete(1) {
		t.Fatal("complete below quorum")
	}
	if err := node.Upload(1, "P2", tensor.Vector{4}, 1); err != nil {
		t.Fatal(err)
	}
	if !node.Complete(1) {
		t.Fatal("quorum reached but round not complete")
	}
	if err := node.Aggregate(1); err != nil {
		t.Fatal(err)
	}
	got, err := node.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-3) > 1e-12 {
		t.Fatalf("quorum aggregate = %v, want 3", got)
	}
}

func TestQuorumResetToAllParties(t *testing.T) {
	node := quorumNode(t)
	node.Register("P1")
	node.Register("P2")
	node.SetQuorum(1)
	if err := node.Upload(1, "P1", tensor.Vector{1}, 1); err != nil {
		t.Fatal(err)
	}
	if !node.Complete(1) {
		t.Fatal("quorum of 1 not honored")
	}
	node.SetQuorum(0) // back to all-parties semantics
	if node.Complete(1) {
		t.Fatal("round complete with 1/2 uploads after quorum reset")
	}
	if err := node.Aggregate(1); !errors.Is(err, ErrRoundIncomplete) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuorumLargerThanPartiesBehavesAsAll(t *testing.T) {
	node := quorumNode(t)
	node.Register("P1")
	node.SetQuorum(9)
	if err := node.Upload(1, "P1", tensor.Vector{1}, 1); err != nil {
		t.Fatal(err)
	}
	if !node.Complete(1) {
		t.Fatal("all parties uploaded; round should be complete regardless of oversize quorum")
	}
}
