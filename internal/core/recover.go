package core

// Crash recovery for aggregator nodes: the event/snapshot encoding written
// to the internal/journal write-ahead log, and the replay path that
// rehydrates an AggregatorNode after a restart.
//
// Replay is idempotent by construction — registering twice, re-applying an
// identical upload, or re-setting an aggregated vector all converge to the
// same state — so a log whose records partially overlap the compaction
// snapshot (the window a crash between snapshot-rename and log-truncate
// leaves behind) replays safely on top of it.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"sort"

	"deta/internal/agg"
	"deta/internal/journal"
	"deta/internal/sev"
	"deta/internal/tensor"
	"deta/internal/transport"
)

// Journal record types (journal.Record.Type).
const (
	recRegister  uint8 = 1 // a party was admitted
	recUpload    uint8 = 2 // legacy: accepted fragment, gob walEvent payload
	recAggregate uint8 = 3 // legacy: fused round, gob walEvent payload
	recDrop      uint8 = 4 // a round's state was explicitly dropped
	recQuorum    uint8 = 5 // the party quorum changed
	recRetention uint8 = 6 // the round-retention bound changed
	recFetch     uint8 = 7 // advisory: an aggregated fragment was served

	// Fragment-carrying records written since the fixed-layout wire codec:
	// their payload is a transport fragment encoding, not a gob walEvent,
	// so the hot upload path journals without gob's reflection cost. The
	// legacy types above are still replayed, so pre-codec journals recover.
	recUpload2    uint8 = 8 // an accepted fragment (fsynced before ack)
	recAggregate2 uint8 = 9 // a fused round; carries the fused vector

	// Party-churn records (lifecycle.go). Suspicion is derived state and
	// never journaled; only the membership *decisions* are, so a crash
	// between suspect and evict replays to the pre-evict membership — the
	// same state an uncrashed node would be in.
	recEvict  uint8 = 10 // a silent party was evicted from membership
	recRejoin uint8 = 11 // an evicted party was readmitted
)

// walEvent is the single gob-encoded payload shape shared by all record
// types; unused fields stay at their zero values.
type walEvent struct {
	Party  string
	Round  int
	Frag   []float64
	Weight float64
	N      int
}

// walRound is one round's state inside a compaction snapshot.
type walRound struct {
	Fragments  map[string][]float64
	Weights    map[string]float64
	Aggregated []float64
}

// walSnapshot is the full-node compaction snapshot. Evicted was added with
// the churn records; gob keeps old snapshots decodable (missing field
// stays empty) and old binaries tolerant of new ones.
type walSnapshot struct {
	Parties        []string
	Quorum         int
	Retention      int
	LastAggregated int
	Rounds         map[int]walRound
	Evicted        []string
}

func encodeWAL(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeWAL(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// RecoveryInfo summarizes what a journal replay restored, for boot logging.
type RecoveryInfo struct {
	Parties        int  // registered parties restored
	Evicted        int  // parties evicted for silence and not readmitted
	Rounds         int  // rounds held in memory after replay
	Aggregated     int  // of those, rounds with a fused vector
	LastAggregated int  // highest fused round (resume initiator sync here)
	FetchesServed  int  // advisory fetch records seen in the log
	TornTail       bool // a torn/corrupt log tail was discarded
}

// RecoverAggregatorNode starts an aggregation service with a durable round
// journal under dir, replaying any existing journal first so a restarted
// aggregator resumes with every registration, uploaded fragment, and fused
// round it had acknowledged before the crash. The CVM must be provisioned
// and running (a restarted deployment re-runs Phase I attestation; the
// journal restores round state, not trust state).
func RecoverAggregatorNode(id string, algorithm agg.Algorithm, cvm *sev.CVM, dir string, opts journal.Options) (*AggregatorNode, *RecoveryInfo, error) {
	node, err := NewAggregatorNode(id, algorithm, cvm)
	if err != nil {
		return nil, nil, err
	}
	j, rec, err := journal.Open(dir, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: aggregator %s: %w", id, err)
	}
	info := &RecoveryInfo{TornTail: rec.Truncated}
	if rec.Snapshot != nil {
		var snap walSnapshot
		if err := decodeWAL(rec.Snapshot, &snap); err != nil {
			_ = j.Close() // recovery already failed; report the decode error
			return nil, nil, fmt.Errorf("core: aggregator %s: decoding snapshot: %w", id, err)
		}
		node.restoreSnapshot(snap)
	}
	for _, r := range rec.Records {
		if err := node.applyRecord(r, info); err != nil {
			_ = j.Close() // recovery already failed; report the replay error
			return nil, nil, fmt.Errorf("core: aggregator %s: replaying journal: %w", id, err)
		}
	}
	node.mu.Lock()
	node.journal = j
	info.Parties = len(node.parties)
	info.Evicted = len(node.evicted)
	info.Rounds = len(node.rounds)
	info.LastAggregated = node.lastAggregated
	for _, rs := range node.rounds {
		if rs.aggregated != nil {
			info.Aggregated++
		}
	}
	node.mu.Unlock()
	return node, info, nil
}

// CloseJournal flushes and closes the attached journal (no-op without
// one); the node keeps serving from memory afterwards.
func (a *AggregatorNode) CloseJournal() error {
	a.mu.Lock()
	j := a.journal
	a.journal = nil
	a.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}

// JournalDir returns the attached journal's directory ("" without one).
func (a *AggregatorNode) JournalDir() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.journal == nil {
		return ""
	}
	return a.journal.Dir()
}

// StateDirFor is the per-aggregator journal directory convention shared by
// Session.Setup and cmd/deta-aggregator: <stateDir>/<aggregatorID>.
func StateDirFor(stateDir, aggregatorID string) string {
	return filepath.Join(stateDir, aggregatorID)
}

// restoreSnapshot loads a compaction snapshot into a fresh node.
func (a *AggregatorNode) restoreSnapshot(snap walSnapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, p := range snap.Parties {
		a.parties[p] = true
	}
	for _, p := range snap.Evicted {
		a.evicted[p] = true
	}
	a.quorum = snap.Quorum
	a.retention = snap.Retention
	a.lastAggregated = snap.LastAggregated
	for round, wr := range snap.Rounds {
		rs := newRoundState()
		for id, f := range wr.Fragments {
			rs.fragments[id] = tensor.Vector(f)
		}
		for id, w := range wr.Weights {
			rs.weights[id] = w
		}
		if wr.Aggregated != nil {
			rs.aggregated = tensor.Vector(wr.Aggregated)
		}
		a.rounds[round] = rs
	}
}

// applyRecord replays one journal record. Application is idempotent, so
// records that overlap the snapshot re-apply harmlessly.
func (a *AggregatorNode) applyRecord(r journal.Record, info *RecoveryInfo) error {
	if r.Type == recUpload2 || r.Type == recAggregate2 {
		var f transport.Fragment
		if err := transport.DecodeFragment(r.Data, &f); err != nil {
			return fmt.Errorf("record type %d: %w", r.Type, err)
		}
		a.mu.Lock()
		defer a.mu.Unlock()
		if r.Type == recUpload2 {
			// An accepted upload implies registration even if the register
			// record itself was lost — and implies the party is not evicted
			// (the live path journals recRejoin first; that record is
			// best-effort, so self-heal here if it was lost).
			a.parties[f.PartyID] = true
			delete(a.evicted, f.PartyID)
			rs, ok := a.rounds[f.Round]
			if !ok {
				rs = newRoundState()
				a.rounds[f.Round] = rs
			}
			rs.fragments[f.PartyID] = f.Values
			rs.weights[f.PartyID] = f.Weight
		} else {
			a.applyAggregated(f.Round, f.Values)
		}
		return nil
	}
	var ev walEvent
	if err := decodeWAL(r.Data, &ev); err != nil {
		return fmt.Errorf("record type %d: %w", r.Type, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch r.Type {
	case recRegister:
		a.parties[ev.Party] = true
		delete(a.evicted, ev.Party)
	case recUpload:
		// An accepted upload implies registration even if the register
		// record itself was lost.
		a.parties[ev.Party] = true
		delete(a.evicted, ev.Party)
		rs, ok := a.rounds[ev.Round]
		if !ok {
			rs = newRoundState()
			a.rounds[ev.Round] = rs
		}
		rs.fragments[ev.Party] = tensor.Vector(ev.Frag)
		rs.weights[ev.Party] = ev.Weight
	case recAggregate:
		a.applyAggregated(ev.Round, tensor.Vector(ev.Frag))
	case recDrop:
		delete(a.rounds, ev.Round)
	case recQuorum:
		a.quorum = ev.N
	case recRetention:
		a.retention = ev.N
		a.evictLocked(a.lastAggregated)
	case recFetch:
		if info != nil {
			info.FetchesServed++
		}
	case recEvict:
		delete(a.parties, ev.Party)
		delete(a.lastSeen, ev.Party)
		a.evicted[ev.Party] = true
	case recRejoin:
		delete(a.evicted, ev.Party)
		a.parties[ev.Party] = true
	default:
		return fmt.Errorf("unknown record type %d", r.Type)
	}
	return nil
}

// applyAggregated installs a fused vector for a round and runs the
// retention eviction — shared by the live Aggregate path and replay so
// both produce identical state. Callers must hold a.mu.
func (a *AggregatorNode) applyAggregated(round int, fused tensor.Vector) {
	rs, ok := a.rounds[round]
	if !ok {
		rs = newRoundState()
		a.rounds[round] = rs
	}
	rs.aggregated = fused
	if round > a.lastAggregated {
		a.lastAggregated = round
	}
	a.evictLocked(a.lastAggregated)
}

// logFragmentDurable commits a fragment-carrying record (fsync) before
// the caller acknowledges the mutation, encoding the payload with the
// fixed-layout wire codec — the same encoding the fragment arrived in —
// instead of gob. The encoding reuses a.walBuf, so steady-state uploads
// journal without allocating; the journal copies the record out before
// Append returns, which is what makes the reuse safe. With no journal
// attached it is a no-op. Callers must hold a.mu.
//
//perf:hotpath
func (a *AggregatorNode) logFragmentDurable(typ uint8, party string, round int, frag tensor.Vector, weight float64) error {
	if a.journal == nil {
		return nil
	}
	data, err := transport.AppendFragment(a.walBuf[:0], &transport.Fragment{
		Round: round, PartyID: party, Weight: weight, Values: frag,
	})
	if err != nil {
		return err
	}
	a.walBuf = data
	return a.journal.Append(typ, data)
}

// logEvent journals best-effort for mutations that are self-healing after
// a crash (registration, config); errors are ignored by design. Callers
// must hold a.mu.
func (a *AggregatorNode) logEvent(typ uint8, ev walEvent) {
	if a.journal == nil {
		return
	}
	if data, err := encodeWAL(ev); err == nil {
		a.journal.Append(typ, data)
	}
}

// logEventAdvisory journals without fsync, for records whose loss is
// harmless (fetch-served audit trail). Callers must hold a.mu.
func (a *AggregatorNode) logEventAdvisory(typ uint8, ev walEvent) {
	if a.journal == nil {
		return
	}
	if data, err := encodeWAL(ev); err == nil {
		a.journal.AppendNoSync(typ, data)
	}
}

// maybeCompactLocked snapshots and truncates the journal once its tail
// exceeds the compaction threshold, bounding disk usage and restart replay
// time. Compaction failure is non-fatal (the WAL itself is intact; the
// next mutation past the threshold retries). Callers must hold a.mu.
func (a *AggregatorNode) maybeCompactLocked() {
	if a.journal == nil {
		return
	}
	threshold := a.compactEvery
	if threshold <= 0 {
		threshold = 1024
	}
	if a.journal.TailLen() < threshold {
		return
	}
	data, err := encodeWAL(a.snapshotLocked())
	if err != nil {
		return
	}
	a.journal.Compact(data)
}

// snapshotLocked captures the node's full state as a compaction snapshot.
// Slice-valued fields are built in sorted order so the snapshot content
// is deterministic for a given state — map iteration order must never
// leak into what gets written to disk. Callers must hold a.mu.
func (a *AggregatorNode) snapshotLocked() walSnapshot {
	snap := walSnapshot{
		Quorum:         a.quorum,
		Retention:      a.retention,
		LastAggregated: a.lastAggregated,
		Rounds:         make(map[int]walRound, len(a.rounds)),
	}
	for p := range a.parties {
		snap.Parties = append(snap.Parties, p)
	}
	sort.Strings(snap.Parties)
	for p := range a.evicted {
		snap.Evicted = append(snap.Evicted, p)
	}
	sort.Strings(snap.Evicted)
	for round, rs := range a.rounds {
		wr := walRound{
			Fragments: make(map[string][]float64, len(rs.fragments)),
			Weights:   make(map[string]float64, len(rs.weights)),
		}
		for id, f := range rs.fragments {
			wr.Fragments[id] = f
		}
		for id, w := range rs.weights {
			wr.Weights[id] = w
		}
		if rs.aggregated != nil {
			wr.Aggregated = rs.aggregated
		}
		snap.Rounds[round] = wr
	}
	return snap
}
