// Package core implements DeTA itself (paper §4): randomized model
// partitioning across multiple aggregators, dynamic parameter-level
// shuffling keyed by a broker-held permutation key and per-round training
// identifiers, the transform pipeline parties apply to local updates
// (Trans and its inverse), the decentralized aggregator nodes with
// initiator/follower round synchronization, and the end-to-end DeTA
// training session used by the experiments.
package core

import (
	"errors"
	"fmt"
	"sort"

	"deta/internal/parallel"
	"deta/internal/rng"
	"deta/internal/tensor"
)

// Mapper is the model mapper of §4.1: a randomized, parameter-granularity
// assignment of each flat-vector index to one of K aggregators. It is
// generated once per model before training, agreed by all parties, and
// never shared with aggregators. Within each partition parameters keep
// their original relative order ("squeezed to occupy all empty slots in
// sequence"); the per-round shuffle then permutes them.
type Mapper struct {
	n      int
	assign []int   // index -> aggregator
	parts  [][]int // aggregator -> ordered original indices
}

// NewMapper builds a mapper for a model of n parameters split across
// len(proportions) aggregators, where proportions[j] is the fraction of
// parameters destined for aggregator j (must sum to ~1). The assignment is
// a deterministic function of seed, so all parties derive the same mapper
// from the shared seed.
func NewMapper(n int, proportions []float64, seed []byte) (*Mapper, error) {
	if n <= 0 {
		return nil, errors.New("core: mapper needs a positive parameter count")
	}
	k := len(proportions)
	if k == 0 {
		return nil, errors.New("core: mapper needs at least one aggregator")
	}
	var sum float64
	for j, p := range proportions {
		if p < 0 {
			return nil, fmt.Errorf("core: proportion %d is negative", j)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("core: proportions sum to %v, want 1", sum)
	}
	// Random permutation of indices; carve consecutive runs per aggregator
	// sized by the proportions.
	perm := rng.NewStream(rng.DeriveSeed(seed, []byte("model-mapper")), "perm").Perm(n)
	counts := apportion(n, proportions)

	assign := make([]int, n)
	at := 0
	for j, c := range counts {
		for i := 0; i < c; i++ {
			assign[perm[at]] = j
			at++
		}
	}
	parts := make([][]int, k)
	for j := range parts {
		parts[j] = make([]int, 0, counts[j])
	}
	// Ascending index order preserves original relative order within each
	// partition.
	for idx := 0; idx < n; idx++ {
		j := assign[idx]
		parts[j] = append(parts[j], idx)
	}
	return &Mapper{n: n, assign: assign, parts: parts}, nil
}

// apportion splits n seats across proportions by the largest-remainder
// method: each aggregator gets floor(n*p) seats, and the leftover seats go
// to the largest fractional remainders (ties broken by lower index, so the
// split is deterministic). Unlike independent per-partition rounding, no
// aggregator with a positive proportion can be starved by earlier
// partitions rounding up — e.g. n=4 with proportions [0.4, 0.4, 0.2] yields
// [2, 1, 1], not [2, 2, 0].
func apportion(n int, proportions []float64) []int {
	k := len(proportions)
	counts := make([]int, k)
	order := make([]int, k)
	rem := make([]float64, k)
	used := 0
	for j, p := range proportions {
		exact := float64(n) * p
		counts[j] = int(exact)
		rem[j] = exact - float64(counts[j])
		order[j] = j
		used += counts[j]
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	// Distribute leftovers by descending remainder (cycling if proportions
	// sum slightly under 1); reclaim overshoot from ascending remainder
	// (possible only when they sum slightly over 1).
	for i := 0; used < n; i = (i + 1) % k {
		counts[order[i]]++
		used++
	}
	for i := k - 1; used > n; i = (i - 1 + k) % k {
		if counts[order[i]] > 0 {
			counts[order[i]]--
			used--
		}
	}
	return counts
}

// EqualProportions returns a uniform proportion vector for k aggregators.
func EqualProportions(k int) []float64 {
	p := make([]float64, k)
	for i := range p {
		p[i] = 1 / float64(k)
	}
	return p
}

// NumParams returns the model size the mapper was built for.
func (m *Mapper) NumParams() int { return m.n }

// NumAggregators returns the partition count.
func (m *Mapper) NumAggregators() int { return len(m.parts) }

// Counts returns the partition sizes.
func (m *Mapper) Counts() []int {
	out := make([]int, len(m.parts))
	for j, p := range m.parts {
		out[j] = len(p)
	}
	return out
}

// Partition disassembles a model update into one fragment per aggregator.
// Fragments carry no architecture information: they are anonymous flat
// vectors.
func (m *Mapper) Partition(v tensor.Vector) ([]tensor.Vector, error) {
	if len(v) != m.n {
		return nil, fmt.Errorf("core: update length %d, mapper built for %d", len(v), m.n)
	}
	// Fragments are independent gathers, built concurrently.
	out := make([]tensor.Vector, len(m.parts))
	parallel.For(len(m.parts), 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			idxs := m.parts[j]
			frag := make(tensor.Vector, len(idxs))
			for i, idx := range idxs {
				frag[i] = v[idx]
			}
			out[j] = frag
		}
	})
	return out, nil
}

// Merge reassembles fragments into a full model update, inverting
// Partition.
func (m *Mapper) Merge(frags []tensor.Vector) (tensor.Vector, error) {
	if len(frags) != len(m.parts) {
		return nil, fmt.Errorf("core: %d fragments, mapper has %d partitions", len(frags), len(m.parts))
	}
	for j, idxs := range m.parts {
		if len(frags[j]) != len(idxs) {
			return nil, fmt.Errorf("core: fragment %d has %d values, want %d", j, len(frags[j]), len(idxs))
		}
	}
	// Partitions are disjoint (Validate invariant), so the scatters write
	// disjoint index sets and can run concurrently.
	out := make(tensor.Vector, m.n)
	parallel.For(len(m.parts), 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			for i, idx := range m.parts[j] {
				out[idx] = frags[j][i]
			}
		}
	})
	return out, nil
}

// PartitionIndices returns a copy of aggregator j's original-index list
// (for analysis and the attack experiments, which need to know what a
// breached aggregator holds).
func (m *Mapper) PartitionIndices(j int) ([]int, error) {
	if j < 0 || j >= len(m.parts) {
		return nil, fmt.Errorf("core: aggregator %d out of range [0,%d)", j, len(m.parts))
	}
	out := make([]int, len(m.parts[j]))
	copy(out, m.parts[j])
	return out, nil
}

// Validate checks internal consistency: every index appears in exactly one
// partition, in ascending order.
func (m *Mapper) Validate() error {
	seen := make([]bool, m.n)
	total := 0
	for j, idxs := range m.parts {
		if !sort.IntsAreSorted(idxs) {
			return fmt.Errorf("core: partition %d not in ascending order", j)
		}
		for _, idx := range idxs {
			if idx < 0 || idx >= m.n {
				return fmt.Errorf("core: partition %d holds out-of-range index %d", j, idx)
			}
			if seen[idx] {
				return fmt.Errorf("core: index %d appears in multiple partitions", idx)
			}
			seen[idx] = true
			total++
		}
	}
	if total != m.n {
		return fmt.Errorf("core: partitions cover %d of %d indices", total, m.n)
	}
	return nil
}
