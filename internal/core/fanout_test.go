package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/sev"
	"deta/internal/tensor"
	"deta/internal/transport"
)

// newProvisionedNode builds one attested aggregator node the way
// session.Setup does: fresh platform under the shared vendor, CVM launch,
// AP provisioning (which seals the token into encrypted memory).
func newProvisionedNode(t *testing.T, proxy *attest.Proxy, vendor *sev.Vendor, id string) *AggregatorNode {
	t.Helper()
	platform, err := sev.NewPlatform("host/"+id, vendor)
	if err != nil {
		t.Fatal(err)
	}
	cvm, err := platform.LaunchCVM(OVMF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Provision(id, platform, cvm); err != nil {
		t.Fatal(err)
	}
	node, err := NewAggregatorNode(id, agg.IterativeAverage{}, cvm)
	if err != nil {
		t.Fatal(err)
	}
	return node
}

// serveNode exposes a node over an in-memory listener and returns a dialed
// client. The server is shut down on test cleanup.
func serveNode(t *testing.T, node *AggregatorNode) *AggregatorClient {
	t.Helper()
	srv := transport.NewServer()
	ServeAggregator(node, srv)
	ln := transport.NewMemListener()
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return dialClient(t, ln, node.ID)
}

// stalledClient returns a client whose server accepts every aggregator
// method but never answers until the returned release channel closes —
// the "aggregator process wedged mid-round" fault. Cleanup closes release
// before the server so Server.Close (which waits for handlers) returns.
func stalledClient(t *testing.T, id string) (*AggregatorClient, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	srv := transport.NewServer()
	stall := func([]byte) ([]byte, error) {
		<-release
		return nil, errors.New("stalled aggregator released")
	}
	for _, m := range []string{MethodChallenge, MethodRegister, MethodUpload,
		MethodComplete, MethodAggregate, MethodDownload} {
		srv.Handle(m, stall)
	}
	ln := transport.NewMemListener()
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	t.Cleanup(func() { close(release) }) // LIFO: runs before srv.Close
	return dialClient(t, ln, id), release
}

// deadClient returns a client whose connection is already severed — the
// "aggregator process killed" fault. Every call fails fast with the sticky
// connection error.
func deadClient(t *testing.T, id string) *AggregatorClient {
	t.Helper()
	srv := transport.NewServer()
	ln := transport.NewMemListener()
	go srv.Serve(ln)
	c := dialClient(t, ln, id)
	srv.Close() // severs the accepted conn; the client fails on first use
	return c
}

func dialClient(t *testing.T, ln *transport.MemListener, id string) *AggregatorClient {
	t.Helper()
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := &AggregatorClient{ID: id, C: transport.NewClient(conn)}
	t.Cleanup(func() { c.C.Close() })
	return c
}

// testFrags fabricates one distinct fragment per aggregator.
func testFrags(k int) []tensor.Vector {
	frags := make([]tensor.Vector, k)
	for j := range frags {
		frags[j] = tensor.Vector{float64(j + 1), float64(j+1) * 10}
	}
	return frags
}

// TestFleetDegradesWhenAggregatorStalls wedges 1 of K=3 aggregators
// mid-round: uploads and downloads to the healthy pair succeed, the
// stalled one times out per-call, and under Quorum=2 the party still
// completes the round — with the stalled aggregator's partition degraded
// to the party's own fragment — well inside the round deadline.
func TestFleetDegradesWhenAggregatorStalls(t *testing.T) {
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	proxy := attest.NewProxy(vendor.RAS(), OVMF)

	healthy := make([]*AggregatorNode, 2)
	clients := make([]*AggregatorClient, 3)
	for j := 0; j < 2; j++ {
		healthy[j] = newProvisionedNode(t, proxy, vendor, fmt.Sprintf("agg-%d", j+1))
		healthy[j].Register("P1")
		clients[j] = serveNode(t, healthy[j])
	}
	stalled, _ := stalledClient(t, "agg-3")
	clients[2] = stalled

	fleet := &Fleet{Clients: clients, Quorum: 2, Timeout: 150 * time.Millisecond}
	ctx := context.Background()
	frags := testFrags(3)
	start := time.Now()

	if err := fleet.UploadAll(ctx, 1, "P1", frags, 1); err != nil {
		t.Fatalf("upload under quorum: %v", err)
	}
	// Initiator-side fusion on the healthy pair (the wedged process never
	// gets there).
	for _, n := range healthy {
		if err := n.Aggregate(1); err != nil {
			t.Fatal(err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	merged, err := fleet.DownloadAll(dctx, 1, "P1", frags)
	if err != nil {
		t.Fatalf("download under quorum: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("degraded round took %v; a stalled aggregator must not hang the party", elapsed)
	}

	// Healthy partitions carry the fused (single-party: identical) values;
	// the stalled partition fell back to the party's own fragment.
	for j := 0; j < 2; j++ {
		for i := range merged[j] {
			if merged[j][i] != frags[j][i] {
				t.Fatalf("aggregator %d fragment mismatch: %v vs %v", j, merged[j], frags[j])
			}
		}
	}
	if merged[2][0] != frags[2][0] || merged[2][1] != frags[2][1] {
		t.Fatalf("stalled partition did not fall back: %v vs %v", merged[2], frags[2])
	}

	// The per-call deadline classified the stall as timeouts, visible in
	// the per-aggregator stats surface.
	st := fleet.Stats()["agg-3"]
	if st.Timeouts == 0 {
		t.Fatalf("expected timeouts against the stalled aggregator, got %+v", st)
	}
}

// TestFleetDegradesWhenAggregatorDies kills 1 of K=3 after the upload
// phase: the dead link fails fast (sticky connection error, no timeout
// wait), and the download degrades to the fallback fragment under quorum.
func TestFleetDegradesWhenAggregatorDies(t *testing.T) {
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	proxy := attest.NewProxy(vendor.RAS(), OVMF)

	nodes := make([]*AggregatorNode, 3)
	clients := make([]*AggregatorClient, 3)
	srvs := make([]*transport.Server, 3)
	for j := range nodes {
		nodes[j] = newProvisionedNode(t, proxy, vendor, fmt.Sprintf("agg-%d", j+1))
		nodes[j].Register("P1")
		srv := transport.NewServer()
		ServeAggregator(nodes[j], srv)
		ln := transport.NewMemListener()
		go srv.Serve(ln)
		srvs[j] = srv
		t.Cleanup(func() { srv.Close() })
		clients[j] = dialClient(t, ln, nodes[j].ID)
	}

	fleet := &Fleet{Clients: clients, Quorum: 2, Timeout: time.Second}
	ctx := context.Background()
	frags := testFrags(3)

	// Full-strength upload, then the crash.
	if err := fleet.UploadAll(ctx, 1, "P1", frags, 1); err != nil {
		t.Fatal(err)
	}
	srvs[2].Close()
	for j := 0; j < 2; j++ {
		if err := nodes[j].Aggregate(1); err != nil {
			t.Fatal(err)
		}
	}

	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	start := time.Now()
	merged, err := fleet.DownloadAll(dctx, 1, "P1", frags)
	if err != nil {
		t.Fatalf("download with dead aggregator: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dead link took %v to fail; sticky errors should fail fast", elapsed)
	}
	if merged[2][0] != frags[2][0] {
		t.Fatalf("dead partition did not fall back: %v vs %v", merged[2], frags[2])
	}
}

// TestFleetQuorumUnmet: with Quorum=3 (all required), one dead aggregator
// must fail the fan-out with a quorum error rather than degrade.
func TestFleetQuorumUnmet(t *testing.T) {
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	proxy := attest.NewProxy(vendor.RAS(), OVMF)
	node := newProvisionedNode(t, proxy, vendor, "agg-1")
	node.Register("P1")

	clients := []*AggregatorClient{
		serveNode(t, node),
		deadClient(t, "agg-2"),
		deadClient(t, "agg-3"),
	}
	fleet := &Fleet{Clients: clients, Quorum: 3, Timeout: time.Second}
	err = fleet.UploadAll(context.Background(), 1, "P1", testFrags(3), 1)
	if err == nil {
		t.Fatal("upload succeeded with 2 of 3 aggregators dead and quorum 3")
	}
	if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("expected quorum error, got: %v", err)
	}
}

// TestVerifyAndRegisterFailsFast: Phase II against dead and stalled
// endpoints must return promptly under a context deadline, not hang the
// party's trust bootstrap.
func TestVerifyAndRegisterFailsFast(t *testing.T) {
	newNonce := attest.NewNonce
	verify := func(pub, nonce, sig []byte) error { return nil }

	t.Run("dead", func(t *testing.T) {
		c := deadClient(t, "agg-dead")
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		start := time.Now()
		if err := VerifyAndRegister(ctx, c, []byte("pub"), "P1", newNonce, verify); err == nil {
			t.Fatal("Phase II succeeded against a dead endpoint")
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("dead endpoint took %v to fail", elapsed)
		}
	})
	t.Run("stalled", func(t *testing.T) {
		c, _ := stalledClient(t, "agg-stalled")
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		start := time.Now()
		err := VerifyAndRegister(ctx, c, []byte("pub"), "P1", newNonce, verify)
		if err == nil {
			t.Fatal("Phase II succeeded against a stalled endpoint")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("expected deadline error, got: %v", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("stalled endpoint took %v to fail", elapsed)
		}
	})
}

// TestVerifyAndRegisterAllRejectsUnverifiableAggregator: quorum tolerance
// covers availability, never cryptography — an aggregator that answers its
// challenge with an unverifiable token aborts the whole bootstrap even
// when the quorum would otherwise be met.
func TestVerifyAndRegisterAllRejectsUnverifiableAggregator(t *testing.T) {
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	proxy := attest.NewProxy(vendor.RAS(), OVMF)

	clients := make([]*AggregatorClient, 3)
	for j := 0; j < 3; j++ {
		clients[j] = serveNode(t, newProvisionedNode(t, proxy, vendor, fmt.Sprintf("agg-%d", j+1)))
	}
	fleet := &Fleet{Clients: clients, Quorum: 2, Timeout: time.Second}

	// agg-3's token key is swapped for garbage: its signature verifies
	// against nothing, as if the CVM were impersonated.
	tokenPubKey := func(id string) ([]byte, error) {
		if id == "agg-3" {
			return []byte("not-the-provisioned-key"), nil
		}
		return proxy.TokenPubKey(id)
	}
	err = fleet.VerifyAndRegisterAll(context.Background(), "P1", tokenPubKey,
		attest.NewNonce, attest.VerifyChallenge)
	if err == nil {
		t.Fatal("bootstrap accepted an unverifiable aggregator under quorum")
	}
	if !errors.Is(err, ErrVerificationFailed) {
		t.Fatalf("expected ErrVerificationFailed, got: %v", err)
	}

	// The same fleet with an honest key surface bootstraps fine.
	if err := fleet.VerifyAndRegisterAll(context.Background(), "P1",
		proxy.TokenPubKey, attest.NewNonce, attest.VerifyChallenge); err != nil {
		t.Fatalf("honest bootstrap failed: %v", err)
	}
}
