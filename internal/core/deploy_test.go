package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/sev"
	"deta/internal/transport"
)

// startAPService serves the control plane over an in-memory listener.
func startAPService(t *testing.T) (*APService, *APClient) {
	t.Helper()
	svc, err := NewAPService(OVMF, 32)
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer()
	svc.Serve(srv)
	ln := transport.NewMemListener()
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	client := &APClient{C: transport.NewClient(conn)}
	t.Cleanup(func() { client.C.Close() })
	return svc, client
}

// remotePlatform builds a platform whose VCEK is endorsed over RPC, the
// way cmd/deta-aggregator does.
func remotePlatform(t *testing.T, ap *APClient, name string) *sev.Platform {
	t.Helper()
	key, pub, err := sev.GenerateVCEK()
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ap.Endorse(context.Background(), name, pub)
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sev.NewEndorsedPlatform(name, chain, key)
	if err != nil {
		t.Fatal(err)
	}
	return platform
}

func TestRemoteEndorsementChainVerifies(t *testing.T) {
	svc, ap := startAPService(t)
	platform := remotePlatform(t, ap, "remote-host")
	if err := platform.Chain().Verify(svc.Vendor().RAS().RootCert()); err != nil {
		t.Fatalf("endorsed chain rejected: %v", err)
	}
}

func TestEndorseEmptyKey(t *testing.T) {
	_, ap := startAPService(t)
	if _, err := ap.Endorse(context.Background(), "x", nil); err == nil {
		t.Fatal("empty key endorsed")
	}
}

func TestEndorsedPlatformKeyMismatch(t *testing.T) {
	_, ap := startAPService(t)
	_, pub, err := sev.GenerateVCEK()
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ap.Endorse(context.Background(), "host", pub)
	if err != nil {
		t.Fatal(err)
	}
	otherKey, _, _ := sev.GenerateVCEK()
	if _, err := sev.NewEndorsedPlatform("host", chain, otherKey); err == nil {
		t.Fatal("mismatched VCEK accepted")
	}
}

func TestRemoteAttestationFlow(t *testing.T) {
	_, ap := startAPService(t)
	platform := remotePlatform(t, ap, "remote-host")
	cvm, err := platform.LaunchCVM(OVMF)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.AttestCVM(context.Background(), "agg-remote", platform, cvm); err != nil {
		t.Fatal(err)
	}
	if cvm.State() != sev.StateRunning {
		t.Fatalf("CVM state %v", cvm.State())
	}
	// The node can load the injected token and answer Phase II.
	node, err := NewAggregatorNode("agg-remote", agg.IterativeAverage{}, cvm)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ap.TokenPubKey(context.Background(), "agg-remote")
	if err != nil {
		t.Fatal(err)
	}
	nonce, _ := attest.NewNonce()
	sig, err := node.SignChallenge(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := attest.VerifyChallenge(pub, nonce, sig); err != nil {
		t.Fatalf("Phase II failed after remote Phase I: %v", err)
	}
	ids, err := ap.Aggregators(context.Background())
	if err != nil || len(ids) != 1 || ids[0] != "agg-remote" {
		t.Fatalf("aggregators = %v, %v", ids, err)
	}
}

func TestRemoteAttestationRejectsEvilFirmware(t *testing.T) {
	_, ap := startAPService(t)
	platform := remotePlatform(t, ap, "remote-host")
	evil := append([]byte(nil), OVMF...)
	evil[0] ^= 1
	cvm, _ := platform.LaunchCVM(evil)
	err := ap.AttestCVM(context.Background(), "agg-evil", platform, cvm)
	if err == nil {
		t.Fatal("evil firmware attested")
	}
	if !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("unexpected error: %v", err)
	}
	if cvm.State() != sev.StateLaunchPaused {
		t.Fatalf("evil CVM state %v", cvm.State())
	}
}

func TestRemoteAttestationRequiresNonce(t *testing.T) {
	_, ap := startAPService(t)
	platform := remotePlatform(t, ap, "remote-host")
	cvm, _ := platform.LaunchCVM(OVMF)
	report, err := platform.AttestCVM(cvm, 0, []byte("self-chosen-nonce-not-from-ap"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = transport.CallTypedContext[AttestReq, AttestResp](context.Background(), ap.C, MethodAPAttest,
		AttestReq{AggregatorID: "agg-x", Report: report})
	if err == nil {
		t.Fatal("attestation without AP nonce accepted")
	}
}

func TestBrokerOverRPC(t *testing.T) {
	_, ap := startAPService(t)
	if _, err := ap.PermKey(context.Background(), "ghost"); err == nil {
		t.Fatal("unregistered party served")
	}
	if err := ap.RegisterParty(context.Background(), "P1"); err != nil {
		t.Fatal(err)
	}
	if err := ap.RegisterParty(context.Background(), ""); err == nil {
		t.Fatal("empty party ID accepted")
	}
	k1, err := ap.PermKey(context.Background(), "P1")
	if err != nil || len(k1) != 32 {
		t.Fatalf("perm key: %v, %v", k1, err)
	}
	r1, err := ap.RoundID(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r1again, _ := ap.RoundID(context.Background(), 1)
	if !bytes.Equal(r1, r1again) {
		t.Fatal("round ID unstable")
	}
}

func TestTLSMaterialsSaveLoad(t *testing.T) {
	dir := t.TempDir()
	if err := transport.SaveTLSMaterials(dir, "agg", []string{"127.0.0.1"}); err != nil {
		t.Fatal(err)
	}
	m, err := transport.LoadTLSMaterials(dir)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := m.ListenTLS("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	srv := transport.NewServer()
	transport.HandleTyped(srv, "ping", func(s string) (string, error) { return s, nil })
	go srv.Serve(ln)
	defer srv.Close()
	c, err := m.DialTLSContext(context.Background(), ln.Addr().String(), "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := transport.CallTypedContext[string, string](context.Background(), c, "ping", "ok")
	if err != nil || got != "ok" {
		t.Fatalf("ping over loaded TLS: %v, %v", got, err)
	}
	if _, err := transport.LoadTLSMaterials(t.TempDir()); err == nil {
		t.Fatal("empty dir loaded")
	}
}
