package core_test

import (
	"testing"

	"deta/internal/perf"
)

// BenchmarkPerfSuite runs the core area of the tracked perf suite
// (internal/perf) under `go test -bench`, emitting the same stable bench
// names the BENCH_core.json baseline records.
func BenchmarkPerfSuite(b *testing.B) { perf.RunAreaBenchmarks(b, "core") }
