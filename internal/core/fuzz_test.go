package core

import (
	"testing"

	"deta/internal/tensor"
)

// FuzzShuffleRoundTrip drives the shuffle/unshuffle pair with arbitrary
// keys, round identifiers, and vector contents: the round trip must always
// be the identity and never panic.
func FuzzShuffleRoundTrip(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef"), []byte("round-1"), 16, int64(42))
	f.Add([]byte("another-32-byte-permutation-key!"), []byte{0}, 1, int64(-7))
	f.Add([]byte("0123456789abcdefXYZ"), []byte("r"), 100, int64(0))
	f.Fuzz(func(t *testing.T, key, roundID []byte, n int, fill int64) {
		if len(key) < 16 || n < 0 || n > 4096 {
			t.Skip()
		}
		s, err := NewShuffler(key)
		if err != nil {
			t.Skip()
		}
		v := make(tensor.Vector, n)
		for i := range v {
			v[i] = float64(fill) + float64(i)*0.5
		}
		for partition := 0; partition < 3; partition++ {
			sh := s.Shuffle(v, roundID, partition)
			back := s.Unshuffle(sh, roundID, partition)
			for i := range v {
				if back[i] != v[i] {
					t.Fatalf("round trip failed at %d (partition %d)", i, partition)
				}
			}
		}
	})
}

// FuzzMapperRoundTrip drives Partition/Merge with arbitrary seeds, sizes,
// and proportion splits.
func FuzzMapperRoundTrip(f *testing.F) {
	f.Add([]byte("seed"), 10, uint8(128))
	f.Add([]byte{}, 1, uint8(0))
	f.Add([]byte("x"), 999, uint8(255))
	f.Fuzz(func(t *testing.T, seed []byte, n int, splitRaw uint8) {
		if n <= 0 || n > 4096 {
			t.Skip()
		}
		// A two-way split with an arbitrary proportion in (0,1).
		p := (float64(splitRaw) + 1) / 257
		m, err := NewMapper(n, []float64{p, 1 - p}, seed)
		if err != nil {
			t.Fatalf("mapper rejected valid inputs: %v", err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid mapper: %v", err)
		}
		v := make(tensor.Vector, n)
		for i := range v {
			v[i] = float64(i)
		}
		frags, err := m.Partition(v)
		if err != nil {
			t.Fatal(err)
		}
		back, err := m.Merge(frags)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v {
			if back[i] != v[i] {
				t.Fatalf("merge mismatch at %d", i)
			}
		}
	})
}
