package core

// Churn chaos test: a party dies mid-round (after a partial upload), is
// evicted by the liveness tracker, the survivors fuse degraded rounds, an
// aggregator is killed and restarted with the eviction on its WAL, and the
// dead party rejoins and catches up — all parties end bit-identical.
//
// All lifecycle time is fake-clock-driven (the test advances every
// aggregator's clock explicitly); the orchestration is sequential, so
// there are no sleeps and no timing-dependent assertions.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"deta/internal/attest"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
	"deta/internal/sev"
	"deta/internal/tensor"
)

func TestChaosChurnEvictRejoinBitIdentical(t *testing.T) {
	const (
		churnParties = 3
		churnAggs    = 3
		churnRounds  = 4
	)
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	proxy := attest.NewProxy(vendor.RAS(), OVMF)

	// Every aggregator gets its own fake clock, surviving restarts: the
	// configure hook re-arms clock + lifecycle + liveness on recovery,
	// exactly like the daemon's boot flags would.
	clks := make([]*FakeClock, churnAggs)
	procs := make([]*chaosAgg, churnAggs)
	for j := range procs {
		clk := NewFakeClock(time.Unix(1_000_000, 0))
		clks[j] = clk
		procs[j] = &chaosAgg{
			id: fmt.Sprintf("agg-%d", j+1), dir: t.TempDir(),
			proxy: proxy, vendor: vendor,
			configure: func(n *AggregatorNode) {
				n.SetClock(clk)
				n.SetLifecycle(30*time.Second, time.Second)
				n.SetLiveness(3*time.Second, 8*time.Second)
			},
		}
		if err := procs[j].start(); err != nil {
			t.Fatal(err)
		}
		defer procs[j].stop()
	}
	advance := func(d time.Duration) {
		for _, clk := range clks {
			clk.Advance(d)
		}
	}

	broker, err := attest.NewKeyBroker(32)
	if err != nil {
		t.Fatal(err)
	}
	spec := dataset.Spec{Name: "churn", C: 1, H: 12, W: 12, Classes: 4}
	train, _ := dataset.TrainTest(spec, churnParties*16, 8, []byte("churn-data"))
	shards := dataset.SplitIID(train, churnParties, []byte("churn-split"))
	build := func() *nn.Network { return nn.ConvNet8(1, 12, 12, 4) }
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: churnRounds, LocalEpochs: 1, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, Seed: []byte("churn-cfg"),
	}
	mapper, err := NewMapper(build().NumParams(), EqualProportions(churnAggs), []byte("churn-mapper"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type churnParty struct {
		id       string
		fl       *fl.Party
		fleet    *Fleet
		shuffler *Shuffler
		global   tensor.Vector
		weight   float64
	}
	ps := make([]*churnParty, churnParties)
	for i := range ps {
		id := fmt.Sprintf("P%d", i+1)
		broker.RegisterParty(id)
		clients := make([]*AggregatorClient, churnAggs)
		for j, c := range procs {
			dial := c.dialCurrent
			clients[j] = &AggregatorClient{
				ID:     c.id,
				Redial: func(context.Context) (net.Conn, error) { return dial() },
			}
		}
		fleet := &Fleet{Clients: clients, Timeout: 5 * time.Second}
		if err := fleet.VerifyAndRegisterAll(ctx, id, proxy.TokenPubKey, attest.NewNonce, attest.VerifyChallenge); err != nil {
			t.Fatal(err)
		}
		permKey, err := broker.PermutationKey(id)
		if err != nil {
			t.Fatal(err)
		}
		shuffler, err := NewShuffler(permKey)
		if err != nil {
			t.Fatal(err)
		}
		netw := build()
		netw.Init([]byte("churn-init"))
		ps[i] = &churnParty{
			id: id, fl: fl.NewParty(id, build, shards[i], cfg),
			fleet: fleet, shuffler: shuffler,
			global: netw.Params(), weight: float64(shards[i].Len()),
		}
	}

	frags := func(p *churnParty, round int) []tensor.Vector {
		roundID, err := broker.RoundID(round)
		if err != nil {
			t.Fatal(err)
		}
		update, _, err := p.fl.LocalUpdate(p.global, round)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := Transform(mapper, p.shuffler, update, roundID, true)
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	upload := func(p *churnParty, round int) {
		if err := p.fleet.UploadAll(ctx, round, p.id, frags(p, round), p.weight); err != nil {
			t.Fatalf("%s upload round %d: %v", p.id, round, err)
		}
	}
	fuse := func(round int) {
		for _, c := range procs {
			node := c.getNode()
			done, abandoned := node.RoundStatus(round)
			if !done || abandoned {
				t.Fatalf("%s round %d: RoundStatus = (%v, %v), want complete", c.id, round, done, abandoned)
			}
			if err := node.Aggregate(round); err != nil {
				t.Fatalf("%s aggregate round %d: %v", c.id, round, err)
			}
		}
	}
	download := func(p *churnParty, round int) {
		roundID, err := broker.RoundID(round)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := p.fleet.DownloadAll(ctx, round, p.id, nil)
		if err != nil {
			t.Fatalf("%s download round %d: %v", p.id, round, err)
		}
		p.global, err = InverseTransform(mapper, p.shuffler, merged, roundID, true)
		if err != nil {
			t.Fatal(err)
		}
	}
	heartbeat := func(p *churnParty) []string {
		acked, rejoinedAt := p.fleet.HeartbeatAll(ctx, p.id)
		if acked != churnAggs {
			t.Fatalf("%s heartbeat acked by %d/%d aggregators", p.id, acked, churnAggs)
		}
		return rejoinedAt
	}

	// Round 1: everyone participates.
	for _, p := range ps {
		upload(p, 1)
	}
	fuse(1)
	for _, p := range ps {
		download(p, 1)
	}

	// Round 2: P1 and P2 upload everywhere; P3 gets its fragment to agg-1
	// only, then dies mid-round.
	upload(ps[0], 2)
	upload(ps[1], 2)
	p3frags := frags(ps[2], 2)
	if err := ps[2].fleet.Clients[0].UploadFrag(ctx, 2, ps[2].id, p3frags[0], 0, ps[2].weight); err != nil {
		t.Fatalf("P3 partial upload: %v", err)
	}
	// P3 is now silent. The survivors keep heartbeating while the clocks
	// cross the evict threshold; the per-node reaper evicts P3 everywhere.
	advance(5 * time.Second)
	heartbeat(ps[0])
	heartbeat(ps[1])
	advance(5 * time.Second) // P3 silent ≥ 8s on every node now
	heartbeat(ps[0])
	heartbeat(ps[1])
	for _, c := range procs {
		node := c.getNode()
		if got := node.EvictedParties(); len(got) != 1 || got[0] != "P3" {
			t.Fatalf("%s evicted = %v, want [P3]", c.id, got)
		}
		if node.NumParties() != churnParties-1 {
			t.Fatalf("%s has %d parties after evict", c.id, node.NumParties())
		}
	}
	// Membership shrank to {P1, P2}: round 2 seals — degraded on agg-2 and
	// agg-3 (two fragments), full on agg-1 (P3's fragment landed pre-death).
	fuse(2)
	download(ps[0], 2)
	download(ps[1], 2)

	// Kill and restart agg-2 between the evict and the rejoin: the
	// recovered node must replay recEvict to the same membership.
	if err := procs[1].restart(); err != nil {
		t.Fatal(err)
	}
	if node := procs[1].getNode(); node.NumParties() != churnParties-1 ||
		len(node.EvictedParties()) != 1 || node.EvictedParties()[0] != "P3" {
		t.Fatalf("restarted agg-2 lost the eviction: %d parties, evicted %v",
			node.NumParties(), node.EvictedParties())
	}

	// Round 3: survivors only.
	upload(ps[0], 3)
	upload(ps[1], 3)
	fuse(3)
	download(ps[0], 3)
	download(ps[1], 3)

	// P3 comes back: its heartbeat rejoins it at every aggregator
	// (including the restarted one), and it catches up by downloading the
	// latest fused round before training again.
	rejoinedAt := heartbeat(ps[2])
	if len(rejoinedAt) != churnAggs {
		t.Fatalf("P3 rejoined at %v, want all %d aggregators", rejoinedAt, churnAggs)
	}
	for _, c := range procs {
		if node := c.getNode(); node.NumParties() != churnParties {
			t.Fatalf("%s has %d parties after rejoin", c.id, node.NumParties())
		}
	}
	download(ps[2], 3) // catch-up: adopt the round-3 global the survivors hold

	// Round 4: full membership again.
	for _, p := range ps {
		upload(p, 4)
	}
	fuse(4)
	for _, p := range ps {
		download(p, 4)
	}

	// One more crash after the rejoin: the replayed node must remember P3
	// as a member in good standing.
	if err := procs[2].restart(); err != nil {
		t.Fatal(err)
	}
	if node := procs[2].getNode(); node.NumParties() != churnParties || len(node.EvictedParties()) != 0 {
		t.Fatalf("restarted agg-3 lost the rejoin: %d parties, evicted %v",
			node.NumParties(), node.EvictedParties())
	}

	// Survivors and the rejoined party converge to a bit-identical model.
	for i := 1; i < churnParties; i++ {
		if len(ps[i].global) != len(ps[0].global) {
			t.Fatalf("model sizes differ: %d vs %d", len(ps[i].global), len(ps[0].global))
		}
		for k := range ps[0].global {
			if ps[i].global[k] != ps[0].global[k] {
				t.Fatalf("P1 and %s diverge at coordinate %d: %v vs %v",
					ps[i].id, k, ps[0].global[k], ps[i].global[k])
			}
		}
	}
}
