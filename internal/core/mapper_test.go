package core

import (
	"testing"
	"testing/quick"

	"deta/internal/rng"
	"deta/internal/tensor"
)

func TestMapperValidation(t *testing.T) {
	if _, err := NewMapper(0, EqualProportions(3), nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewMapper(10, nil, nil); err == nil {
		t.Error("no aggregators accepted")
	}
	if _, err := NewMapper(10, []float64{0.5, 0.4}, nil); err == nil {
		t.Error("proportions not summing to 1 accepted")
	}
	if _, err := NewMapper(10, []float64{1.5, -0.5}, nil); err == nil {
		t.Error("negative proportion accepted")
	}
}

func TestMapperPartitionsDisjointAndComplete(t *testing.T) {
	m, err := NewMapper(101, EqualProportions(3), []byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := m.Counts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 101 {
		t.Fatalf("counts %v cover %d of 101", counts, total)
	}
	// Equal proportions over 101: sizes within 1 of each other... the
	// rounding scheme gives first two ~34, last the remainder.
	for _, c := range counts {
		if c < 30 || c > 40 {
			t.Fatalf("unbalanced counts %v", counts)
		}
	}
}

func TestMapperProportions(t *testing.T) {
	m, err := NewMapper(1000, []float64{0.6, 0.2, 0.2}, []byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	counts := m.Counts()
	if counts[0] != 600 || counts[1] != 200 || counts[2] != 200 {
		t.Fatalf("counts %v, want [600 200 200]", counts)
	}
}

func TestMapperDeterministicPerSeed(t *testing.T) {
	a, _ := NewMapper(50, EqualProportions(2), []byte("s1"))
	b, _ := NewMapper(50, EqualProportions(2), []byte("s1"))
	c, _ := NewMapper(50, EqualProportions(2), []byte("s2"))
	pa, _ := a.PartitionIndices(0)
	pb, _ := b.PartitionIndices(0)
	pc, _ := c.PartitionIndices(0)
	if len(pa) != len(pb) {
		t.Fatal("same seed produced different partition sizes")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
	diff := false
	if len(pa) == len(pc) {
		for i := range pa {
			if pa[i] != pc[i] {
				diff = true
				break
			}
		}
	} else {
		diff = true
	}
	if !diff {
		t.Fatal("different seeds produced identical assignments")
	}
}

func TestPartitionMergeRoundTrip(t *testing.T) {
	f := func(seed uint16, kRaw, nRaw uint8) bool {
		k := int(kRaw%4) + 1
		n := int(nRaw) + k // ensure n >= k
		m, err := NewMapper(n, EqualProportions(k), []byte{byte(seed), byte(seed >> 8)})
		if err != nil {
			return false
		}
		if m.Validate() != nil {
			return false
		}
		v := make(tensor.Vector, n)
		s := rng.NewStream([]byte{byte(seed)}, "values")
		for i := range v {
			v[i] = s.NormFloat64()
		}
		frags, err := m.Partition(v)
		if err != nil {
			return false
		}
		back, err := m.Merge(frags)
		if err != nil {
			return false
		}
		for i := range v {
			if back[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPartitionErrors(t *testing.T) {
	m, _ := NewMapper(10, EqualProportions(2), []byte("s"))
	if _, err := m.Partition(make(tensor.Vector, 5)); err == nil {
		t.Error("wrong-length update accepted")
	}
	if _, err := m.Merge([]tensor.Vector{{1}}); err == nil {
		t.Error("wrong fragment count accepted")
	}
	frags, _ := m.Partition(make(tensor.Vector, 10))
	frags[0] = frags[0][:1]
	if _, err := m.Merge(frags); err == nil {
		t.Error("wrong fragment length accepted")
	}
	if _, err := m.PartitionIndices(5); err == nil {
		t.Error("out-of-range partition index accepted")
	}
}

// Regression (satellite): independent per-partition rounding used to give
// n=4 with proportions [0.4, 0.4, 0.2] the counts [2, 2, 0] — an empty
// fragment for an aggregator with a positive proportion, because the two
// 0.4s each rounded up and starved the tail. Largest-remainder
// apportionment yields [2, 1, 1].
func TestMapperApportionmentNoStarvation(t *testing.T) {
	m, err := NewMapper(4, []float64{0.4, 0.4, 0.2}, []byte("apportion"))
	if err != nil {
		t.Fatal(err)
	}
	counts := m.Counts()
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts %v, want [2 1 1]", counts)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// More generally: with n >= k, every aggregator with a positive
	// proportion of at least 1/n gets at least one parameter.
	for n := 3; n <= 40; n++ {
		props := []float64{0.4, 0.4, 0.2}
		m, err := NewMapper(n, props, []byte("apportion-sweep"))
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for j, c := range m.Counts() {
			total += c
			if float64(n)*props[j] >= 1 && c == 0 {
				t.Fatalf("n=%d: aggregator %d starved: counts %v", n, j, m.Counts())
			}
		}
		if total != n {
			t.Fatalf("n=%d: counts %v cover %d", n, m.Counts(), total)
		}
	}
}

// Largest-remainder apportionment is exact when proportions divide evenly
// and never drifts by more than one seat from n*p otherwise.
func TestMapperApportionmentWithinOneSeat(t *testing.T) {
	f := func(nRaw uint16, kRaw uint8) bool {
		n := int(nRaw%2000) + 1
		k := int(kRaw%6) + 1
		m, err := NewMapper(n, EqualProportions(k), []byte{byte(nRaw), byte(kRaw)})
		if err != nil {
			return false
		}
		for _, c := range m.Counts() {
			exact := float64(n) / float64(k)
			if float64(c) < exact-1 || float64(c) > exact+1 {
				return false
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFragmentsHideArchitecture(t *testing.T) {
	// A fragment must be a dense flat vector with no gaps: its length is
	// less than the model's, and adjacent fragment entries come from
	// non-adjacent original indices with high probability.
	m, _ := NewMapper(1000, EqualProportions(3), []byte("arch"))
	idxs, _ := m.PartitionIndices(0)
	adjacent := 0
	for i := 1; i < len(idxs); i++ {
		if idxs[i] == idxs[i-1]+1 {
			adjacent++
		}
	}
	// Random 1/3 sampling: expect ~len/3 adjacency, far below len-1.
	if adjacent > len(idxs)/2 {
		t.Fatalf("partition suspiciously contiguous: %d adjacent of %d", adjacent, len(idxs))
	}
}
