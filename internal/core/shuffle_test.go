package core

import (
	"testing"
	"testing/quick"

	"deta/internal/rng"
	"deta/internal/tensor"
)

func testShuffler(t testing.TB) *Shuffler {
	s, err := NewShuffler([]byte("0123456789abcdef0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewShufflerKeyLength(t *testing.T) {
	if _, err := NewShuffler([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

// Property (DESIGN.md §5): Unshuffle(Shuffle(v)) == v for every key, round,
// partition and length.
func TestShuffleInverseProperty(t *testing.T) {
	s := testShuffler(t)
	f := func(round uint16, part uint8, nRaw uint8) bool {
		n := int(nRaw) + 1
		roundID := []byte{byte(round), byte(round >> 8)}
		v := make(tensor.Vector, n)
		st := rng.NewStream([]byte{byte(round)}, "vals")
		for i := range v {
			v[i] = st.NormFloat64()
		}
		sh := s.Shuffle(v, roundID, int(part%5))
		back := s.Unshuffle(sh, roundID, int(part%5))
		for i := range v {
			if back[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShuffleChangesAcrossRounds(t *testing.T) {
	s := testShuffler(t)
	v := make(tensor.Vector, 64)
	for i := range v {
		v[i] = float64(i)
	}
	r1 := s.Shuffle(v, []byte("round-1"), 0)
	r2 := s.Shuffle(v, []byte("round-2"), 0)
	diff := 0
	for i := range r1 {
		if r1[i] != r2[i] {
			diff++
		}
	}
	if diff < 32 {
		t.Fatalf("permutations across rounds too similar: %d/64 differ", diff)
	}
}

func TestShuffleDiffersAcrossPartitions(t *testing.T) {
	s := testShuffler(t)
	v := make(tensor.Vector, 64)
	for i := range v {
		v[i] = float64(i)
	}
	p0 := s.Shuffle(v, []byte("r"), 0)
	p1 := s.Shuffle(v, []byte("r"), 1)
	same := true
	for i := range p0 {
		if p0[i] != p1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("partitions share one permutation")
	}
}

func TestShuffleIsKeyed(t *testing.T) {
	a := testShuffler(t)
	b, err := NewShuffler([]byte("another-key-entirely-0123456789!"))
	if err != nil {
		t.Fatal(err)
	}
	v := make(tensor.Vector, 64)
	for i := range v {
		v[i] = float64(i)
	}
	sa := a.Shuffle(v, []byte("r"), 0)
	sb := b.Shuffle(v, []byte("r"), 0)
	same := true
	for i := range sa {
		if sa[i] != sb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different keys produced identical shuffles")
	}
	// An adversary with the wrong key cannot unshuffle.
	wrong := b.Unshuffle(sa, []byte("r"), 0)
	recovered := true
	for i := range v {
		if wrong[i] != v[i] {
			recovered = false
			break
		}
	}
	if recovered {
		t.Fatal("wrong key recovered the original order")
	}
}

func TestShuffleSameForAllParties(t *testing.T) {
	// Two parties holding the same key and round ID must produce the same
	// permutation — the requirement for aggregation to work.
	a := testShuffler(t)
	b := testShuffler(t)
	v := make(tensor.Vector, 32)
	for i := range v {
		v[i] = float64(i) * 1.5
	}
	sa := a.Shuffle(v, []byte("r9"), 2)
	sb := b.Shuffle(v, []byte("r9"), 2)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("parties with same key+round derived different permutations")
		}
	}
}

func TestTransformInverseRoundTrip(t *testing.T) {
	m, err := NewMapper(97, []float64{0.5, 0.3, 0.2}, []byte("t"))
	if err != nil {
		t.Fatal(err)
	}
	s := testShuffler(t)
	v := make(tensor.Vector, 97)
	st := rng.NewStream([]byte("tv"), "v")
	for i := range v {
		v[i] = st.NormFloat64()
	}
	for _, shuffle := range []bool{false, true} {
		frags, err := Transform(m, s, v, []byte("round-3"), shuffle)
		if err != nil {
			t.Fatal(err)
		}
		back, err := InverseTransform(m, s, frags, []byte("round-3"), shuffle)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v {
			if back[i] != v[i] {
				t.Fatalf("shuffle=%v: round trip failed at %d", shuffle, i)
			}
		}
	}
}

func TestTransformNeedsShuffler(t *testing.T) {
	m, _ := NewMapper(10, EqualProportions(2), []byte("t"))
	v := make(tensor.Vector, 10)
	if _, err := Transform(m, nil, v, []byte("r"), true); err == nil {
		t.Fatal("shuffle without shuffler accepted")
	}
	frags, _ := m.Partition(v)
	if _, err := InverseTransform(m, nil, frags, []byte("r"), true); err == nil {
		t.Fatal("unshuffle without shuffler accepted")
	}
}

// Identical updates at different rounds must produce different wire images
// (DESIGN.md §5: no positional leakage across rounds).
func TestWireImageVariesAcrossRounds(t *testing.T) {
	m, _ := NewMapper(128, EqualProportions(2), []byte("w"))
	s := testShuffler(t)
	v := make(tensor.Vector, 128)
	for i := range v {
		v[i] = float64(i)
	}
	f1, _ := Transform(m, s, v, []byte("round-1"), true)
	f2, _ := Transform(m, s, v, []byte("round-2"), true)
	diff := 0
	for i := range f1[0] {
		if f1[0][i] != f2[0][i] {
			diff++
		}
	}
	if diff < len(f1[0])/2 {
		t.Fatalf("wire image too stable across rounds: %d/%d positions differ", diff, len(f1[0]))
	}
}
