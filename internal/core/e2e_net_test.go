package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
	"deta/internal/sev"
	"deta/internal/tensor"
	"deta/internal/transport"
)

// TestNetworkedTrainingEndToEnd replicates the full cmd/ deployment inside
// one test over in-memory transports: an AP control plane, three
// aggregator servers on remotely endorsed platforms (the initiator driving
// follower sync), and two party loops performing Phase II, transformed
// uploads, and merges — then checks the resulting model matches an
// in-process FFL baseline bit for bit.
func TestNetworkedTrainingEndToEnd(t *testing.T) {
	const (
		parties = 2
		aggs    = 3
		rounds  = 2
	)

	// --- Control plane --------------------------------------------------
	apSvc, err := NewAPService(OVMF, 32)
	if err != nil {
		t.Fatal(err)
	}
	apSrv := transport.NewServer()
	apSvc.Serve(apSrv)
	apLn := transport.NewMemListener()
	go apSrv.Serve(apLn)
	defer apSrv.Close()

	dialAP := func() *APClient {
		conn, err := apLn.Dial()
		if err != nil {
			t.Fatal(err)
		}
		return &APClient{C: transport.NewClient(conn)}
	}

	// --- Aggregator processes -------------------------------------------
	aggLns := make([]*transport.MemListener, aggs)
	nodes := make([]*AggregatorNode, aggs)
	for j := 0; j < aggs; j++ {
		ap := dialAP()
		key, pub, err := sev.GenerateVCEK()
		if err != nil {
			t.Fatal(err)
		}
		chain, err := ap.Endorse(context.Background(), fmt.Sprintf("host-%d", j), pub)
		if err != nil {
			t.Fatal(err)
		}
		platform, err := sev.NewEndorsedPlatform(fmt.Sprintf("host-%d", j), chain, key)
		if err != nil {
			t.Fatal(err)
		}
		cvm, err := platform.LaunchCVM(OVMF)
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("agg-%d", j+1)
		if err := ap.AttestCVM(context.Background(), id, platform, cvm); err != nil {
			t.Fatal(err)
		}
		node, err := NewAggregatorNode(id, agg.IterativeAverage{}, cvm)
		if err != nil {
			t.Fatal(err)
		}
		nodes[j] = node
		srv := transport.NewServer()
		ServeAggregator(node, srv)
		ln := transport.NewMemListener()
		go srv.Serve(ln)
		defer srv.Close()
		aggLns[j] = ln
	}

	// Initiator sync: node 0 watches completeness and fuses all nodes
	// (in-process handles; the cmd binary does this over RPC).
	stopSync := make(chan struct{})
	defer close(stopSync)
	go func() {
		round := 1
		for {
			select {
			case <-stopSync:
				return
			default:
			}
			allDone := true
			for _, n := range nodes {
				if !n.Complete(round) {
					allDone = false
					break
				}
			}
			if allDone {
				for _, n := range nodes {
					if err := n.Aggregate(round); err != nil {
						return
					}
				}
				round++
				continue
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// --- Party processes -------------------------------------------------
	spec := dataset.Spec{Name: "e2e", C: 1, H: 12, W: 12, Classes: 4}
	train, _ := dataset.TrainTest(spec, parties*16, 8, []byte("e2e-data"))
	shards := dataset.SplitIID(train, parties, []byte("e2e-split"))
	build := func() *nn.Network { return nn.ConvNet8(1, 12, 12, 4) }
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: rounds, LocalEpochs: 1, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, Seed: []byte("e2e-cfg"),
	}

	runParty := func(idx int) (tensor.Vector, error) {
		id := fmt.Sprintf("P%d", idx+1)
		ap := dialAP()
		// Dial aggregators, then run the whole Phase II fan-out in
		// parallel through the Fleet (token-key fetches share the
		// multiplexed AP connection).
		clients := make([]*AggregatorClient, aggs)
		for j, ln := range aggLns {
			conn, err := ln.Dial()
			if err != nil {
				return nil, err
			}
			clients[j] = &AggregatorClient{ID: fmt.Sprintf("agg-%d", j+1), C: transport.NewClient(conn)}
		}
		fleet := &Fleet{Clients: clients, Timeout: 30 * time.Second}
		ctx := context.Background()
		if err := fleet.VerifyAndRegisterAll(ctx, id, func(aggID string) ([]byte, error) { return ap.TokenPubKey(ctx, aggID) }, attest.NewNonce, attest.VerifyChallenge); err != nil {
			return nil, err
		}
		if err := ap.RegisterParty(context.Background(), id); err != nil {
			return nil, err
		}
		permKey, err := ap.PermKey(context.Background(), id)
		if err != nil {
			return nil, err
		}
		shuffler, err := NewShuffler(permKey)
		if err != nil {
			return nil, err
		}
		party := fl.NewParty(id, build, shards[idx], cfg)
		model := build()
		mapper, err := NewMapper(model.NumParams(), EqualProportions(aggs), []byte("e2e-mapper"))
		if err != nil {
			return nil, err
		}
		net := build()
		net.Init([]byte("e2e-init"))
		global := net.Params()
		for round := 1; round <= rounds; round++ {
			roundID, err := ap.RoundID(context.Background(), round)
			if err != nil {
				return nil, err
			}
			update, _, err := party.LocalUpdate(global, round)
			if err != nil {
				return nil, err
			}
			frags, err := Transform(mapper, shuffler, update, roundID, true)
			if err != nil {
				return nil, err
			}
			if err := fleet.UploadAll(ctx, round, id, frags, float64(shards[idx].Len())); err != nil {
				return nil, err
			}
			dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			merged, err := fleet.DownloadAll(dctx, round, id, nil)
			cancel()
			if err != nil {
				return nil, err
			}
			global, err = InverseTransform(mapper, shuffler, merged, roundID, true)
			if err != nil {
				return nil, err
			}
		}
		return global, nil
	}

	// Wait for all registrations before uploads begin: run parties
	// concurrently but synchronize registration by running Phase II
	// serially first. Simpler: run both parties concurrently; the quorum
	// logic requires both registered before Complete fires, but P1 may
	// upload round 1 before P2 registers, making the node fuse with
	// parties=1. Guard: pre-register both parties on all nodes.
	for j := range nodes {
		for p := 0; p < parties; p++ {
			nodes[j].Register(fmt.Sprintf("P%d", p+1))
		}
	}

	var wg sync.WaitGroup
	finals := make([]tensor.Vector, parties)
	errs := make([]error, parties)
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			finals[p], errs[p] = runParty(p)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", p+1, err)
		}
	}

	// Both parties computed the same global model.
	for i := range finals[0] {
		if finals[0][i] != finals[1][i] {
			t.Fatalf("parties disagree on the global model at %d", i)
		}
	}

	// And it equals the centralized FFL baseline exactly.
	baselineParties := make([]*fl.Party, parties)
	for i := range baselineParties {
		baselineParties[i] = fl.NewParty(fmt.Sprintf("P%d", i+1), build, shards[i], cfg)
	}
	ffl := &fl.Session{
		Cfg: cfg, Algorithm: agg.IterativeAverage{}, Build: build,
		Parties: baselineParties, InitSeed: []byte("e2e-init"),
	}
	// Replay the baseline manually to capture the final params.
	net := build()
	net.Init([]byte("e2e-init"))
	global := net.Params()
	for round := 1; round <= rounds; round++ {
		updates := make([]tensor.Vector, parties)
		weights := make([]float64, parties)
		for i, p := range baselineParties {
			u, _, err := p.LocalUpdate(global, round)
			if err != nil {
				t.Fatal(err)
			}
			updates[i] = u
			weights[i] = float64(shards[i].Len())
		}
		global, err = ffl.Algorithm.Aggregate(updates, weights)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range global {
		if diff := global[i] - finals[0][i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("networked DeTA differs from centralized baseline at %d: %v vs %v",
				i, finals[0][i], global[i])
		}
	}
}
