package core

// Round lifecycle and party liveness for AggregatorNode.
//
// Each round moves through open → (quorum-reached) grace → sealed → fused,
// or to abandoned if its deadline passes below quorum. The phase is a pure
// function of the round's recorded timestamps (openedAt, quorumAt), the
// lifecycle configuration, and the injected Clock — evaluated lazily on
// every query rather than driven by timers, so it is deterministic under a
// FakeClock and needs no goroutines or journaled timestamps. WAL records
// carry no wall-clock times at all: a recovered round is re-stamped with a
// fresh deadline at recovery (restampLocked), which keeps replay
// bit-identical regardless of when it runs.
//
// Liveness is layered on top: every upload, registration, and heartbeat
// refreshes a party's lastSeen. A party silent past suspectAfter is
// *suspect* — a derived, ephemeral state that is never journaled. A party
// silent past evictAfter is *evicted*: an explicit membership decision
// journaled as recEvict before the change takes effect, so churn survives
// crash-recovery. A heartbeat, upload, or registration from an evicted
// party readmits it, journaled as recRejoin. An aggregator killed between
// suspect and evict therefore replays to exactly the membership it would
// have reached uncrashed: no record was written, so nothing changed.

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// RoundPhase is one round's position in the lifecycle state machine.
type RoundPhase int

const (
	// PhaseOpen: accepting uploads, quorum not yet reached.
	PhaseOpen RoundPhase = iota
	// PhaseGrace: quorum reached; stragglers are still accepted until the
	// grace window (or the round deadline, whichever is earlier) expires.
	PhaseGrace
	// PhaseSealed: ready to fuse; straggler uploads are cut.
	PhaseSealed
	// PhaseFused: the round has an aggregated vector.
	PhaseFused
	// PhaseAbandoned: the deadline passed below quorum; the round will
	// never fuse.
	PhaseAbandoned
)

func (p RoundPhase) String() string {
	switch p {
	case PhaseOpen:
		return "open"
	case PhaseGrace:
		return "grace"
	case PhaseSealed:
		return "sealed"
	case PhaseFused:
		return "fused"
	case PhaseAbandoned:
		return "abandoned"
	}
	return fmt.Sprintf("RoundPhase(%d)", int(p))
}

// Lifecycle errors. ErrRoundAbandoned's message is matched by substring
// across the RPC boundary (see isAbandoned), like ErrNotAggregated.
var (
	ErrRoundAbandoned = errors.New("core: round abandoned below quorum at deadline")
	ErrStragglerCut   = errors.New("core: round sealed; straggler upload cut")
)

// SetClock injects the node's time source (default SystemClock) and stamps
// any recovered-but-unstamped rounds and parties with the new clock's now.
// Call it right after recovery, before serving.
func (a *AggregatorNode) SetClock(c Clock) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.clock = c
	a.restampLocked(a.nowLocked())
}

// nowLocked reads the injected clock (SystemClock when none). Callers must
// hold a.mu.
func (a *AggregatorNode) nowLocked() time.Time {
	if a.clock == nil {
		return SystemClock.Now()
	}
	return a.clock.Now()
}

// SetLifecycle configures the per-round deadline and the post-quorum grace
// window. A round seals (stops accepting stragglers) at
// min(openedAt+deadline, quorumAt+grace), or immediately once every
// registered party has uploaded; a round still below quorum at
// openedAt+deadline is abandoned. deadline <= 0 disables the state machine
// and restores pure count-based completion. Lifecycle knobs are boot-time
// configuration re-applied from daemon flags, not journaled: deadlines are
// relative to a recovery-time epoch, so persisting them would be
// meaningless after a crash.
func (a *AggregatorNode) SetLifecycle(deadline, grace time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if grace < 0 {
		grace = 0
	}
	a.deadline = deadline
	a.grace = grace
	a.restampLocked(a.nowLocked())
}

// SetLiveness configures the liveness thresholds: a party silent for
// suspectAfter is reported by Suspects (ephemeral), and one silent for
// evictAfter is evicted from membership (journaled as recEvict).
// evictAfter <= 0 disables eviction. Like SetLifecycle, not journaled.
func (a *AggregatorNode) SetLiveness(suspectAfter, evictAfter time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.suspectAfter = suspectAfter
	a.evictAfter = evictAfter
	a.restampLocked(a.nowLocked())
}

// restampLocked gives recovered (or pre-lifecycle) state a fresh epoch:
// rounds without an openedAt get one now, and parties without a liveness
// signal are treated as seen now. Callers must hold a.mu.
func (a *AggregatorNode) restampLocked(now time.Time) {
	for _, rs := range a.rounds {
		if rs.aggregated == nil && rs.openedAt.IsZero() {
			rs.openedAt = now
		}
	}
	for p := range a.parties {
		if _, ok := a.lastSeen[p]; !ok {
			a.lastSeen[p] = now
		}
	}
}

// phaseLocked evaluates the lifecycle state machine for one round at the
// given instant. With the state machine disabled (no deadline, or a round
// that predates lifecycle configuration), it degrades to the legacy
// count-based rule: sealed iff enough uploads arrived. Callers must hold
// a.mu.
func (a *AggregatorNode) phaseLocked(rs *roundState, now time.Time) RoundPhase {
	if rs == nil {
		return PhaseOpen
	}
	if rs.aggregated != nil {
		return PhaseFused
	}
	if a.deadline <= 0 || rs.openedAt.IsZero() {
		if len(rs.fragments) >= a.required() {
			return PhaseSealed
		}
		return PhaseOpen
	}
	deadline := rs.openedAt.Add(a.deadline)
	if rs.quorumAt.IsZero() {
		if !now.Before(deadline) {
			return PhaseAbandoned
		}
		return PhaseOpen
	}
	if len(rs.fragments) >= len(a.parties) {
		return PhaseSealed // nobody left to wait for
	}
	seal := deadline
	if g := rs.quorumAt.Add(a.grace); g.Before(seal) {
		seal = g
	}
	if !now.Before(seal) {
		return PhaseSealed
	}
	return PhaseGrace
}

// lifecycleOnLocked reports whether the time-driven state machine governs
// this round (vs. the legacy count-based rule). Callers must hold a.mu.
func (a *AggregatorNode) lifecycleOnLocked(rs *roundState) bool {
	return a.deadline > 0 && rs != nil && !rs.openedAt.IsZero()
}

// refreshQuorumLocked records the quorum-reached instant the first time a
// round's upload count meets the requirement. Edge-triggered: evictions
// that shrink the denominator also call this for in-flight rounds, so a
// round can reach quorum by membership shrinking as well as by uploads
// arriving. Callers must hold a.mu.
func (a *AggregatorNode) refreshQuorumLocked(rs *roundState, now time.Time) {
	if rs == nil || !rs.quorumAt.IsZero() || len(rs.fragments) == 0 {
		return
	}
	if len(rs.fragments) >= a.required() {
		rs.quorumAt = now
	}
}

// Phase reports a round's current lifecycle phase.
func (a *AggregatorNode) Phase(round int) RoundPhase {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.phaseLocked(a.rounds[round], a.nowLocked())
}

// Abandoned reports whether the round passed its deadline below quorum and
// will never fuse.
func (a *AggregatorNode) Abandoned(round int) bool {
	return a.Phase(round) == PhaseAbandoned
}

// RoundStatus reports completion and abandonment in one lock acquisition —
// the poll the initiator's sync loop drives. It also advances liveness
// reaping, so a deployment polling RoundStatus evicts dead parties even
// between heartbeat ticks.
func (a *AggregatorNode) RoundStatus(round int) (complete, abandoned bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.nowLocked()
	a.reapLocked(now)
	rs := a.rounds[round]
	a.refreshQuorumLocked(rs, now)
	switch a.phaseLocked(rs, now) {
	case PhaseSealed, PhaseFused:
		return true, false
	case PhaseAbandoned:
		return false, true
	}
	return false, false
}

// Heartbeat records a liveness signal from a party. A heartbeat from an
// evicted party readmits it (journaled as recRejoin) and reports
// rejoined=true; one from a never-registered party is rejected.
func (a *AggregatorNode) Heartbeat(partyID string) (rejoined bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.nowLocked()
	if a.evicted[partyID] {
		a.rejoinLocked(partyID)
		rejoined = true
	} else if !a.parties[partyID] {
		return false, fmt.Errorf("%w: %q", ErrNotRegistered, partyID)
	}
	a.lastSeen[partyID] = now
	a.reapLocked(now)
	a.maybeCompactLocked()
	return rejoined, nil
}

// Tick advances liveness reaping against the injected clock and returns
// the parties evicted by this tick (sorted). The daemon calls it from a
// timer; fake-clock tests call it after Advance.
func (a *AggregatorNode) Tick() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reapLocked(a.nowLocked())
}

// reapLocked evicts every registered party whose last liveness signal is
// at least evictAfter old, returning the evicted IDs. Candidates are
// sorted before journaling so the WAL content is deterministic for a given
// state — map iteration order must never leak to disk. Callers must hold
// a.mu.
func (a *AggregatorNode) reapLocked(now time.Time) []string {
	if a.evictAfter <= 0 {
		return nil
	}
	var stale []string
	for p := range a.parties {
		if seen, ok := a.lastSeen[p]; ok && now.Sub(seen) >= a.evictAfter {
			stale = append(stale, p)
		}
	}
	if len(stale) == 0 {
		return nil
	}
	sort.Strings(stale)
	for _, p := range stale {
		a.logEvent(recEvict, walEvent{Party: p})
		delete(a.parties, p)
		delete(a.lastSeen, p)
		a.evicted[p] = true
	}
	// Evictions shrink the quorum denominator: an in-flight round may have
	// just reached quorum by membership change rather than a new upload.
	for _, rs := range a.rounds {
		if rs.aggregated == nil {
			a.refreshQuorumLocked(rs, now)
		}
	}
	return stale
}

// rejoinLocked readmits an evicted party, journaling recRejoin before the
// membership change so replay reproduces the decision. Callers must hold
// a.mu.
func (a *AggregatorNode) rejoinLocked(partyID string) {
	a.logEvent(recRejoin, walEvent{Party: partyID})
	delete(a.evicted, partyID)
	a.parties[partyID] = true
}

// Suspects lists registered parties whose last signal is at least
// suspectAfter old but that are not yet evicted (sorted). Suspicion is
// derived state — never journaled — so a crash while a party is merely
// suspect replays to the same membership as no crash at all.
func (a *AggregatorNode) Suspects() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.suspectAfter <= 0 {
		return nil
	}
	now := a.nowLocked()
	var out []string
	for p := range a.parties {
		if seen, ok := a.lastSeen[p]; ok && now.Sub(seen) >= a.suspectAfter {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// EvictedParties lists parties evicted and not readmitted (sorted).
func (a *AggregatorNode) EvictedParties() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.evicted))
	for p := range a.evicted {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
