package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"deta/internal/tensor"
	"deta/internal/transport"
)

// Group is a minimal errgroup-style helper (stdlib-only): run goroutines,
// wait for all of them, and get every error back joined. Unlike
// x/sync/errgroup it does not cancel siblings — DeTA fan-outs want every
// aggregator's outcome so quorum logic can count successes.
type Group struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
}

// Go runs f on its own goroutine, capturing its error.
func (g *Group) Go(f func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(); err != nil {
			g.mu.Lock()
			g.errs = append(g.errs, err)
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every Go-launched function returns, then reports their
// errors joined (nil if all succeeded).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return errors.Join(g.errs...)
}

// Fleet is the party-side handle to all K aggregators of a deployment. It
// fans every protocol step out to the whole fleet concurrently — the round
// cost is the slowest aggregator, not the sum — and applies per-call
// deadlines and quorum degradation so one stalled or dead aggregator
// degrades a round instead of hanging it (the paper's §8.2 straggler
// argument, applied to aggregators).
type Fleet struct {
	Clients []*AggregatorClient

	// Quorum is the minimum number of aggregators whose fan-out RPCs must
	// succeed for the round to proceed; 0 (or >= K) requires all of them.
	// Missing download fragments degrade to the caller-provided fallback.
	Quorum int

	// Timeout bounds each RPC attempt (0 = only the caller's context
	// bounds it). A per-call timeout classifies a stalled aggregator as
	// down for this fan-out without waiting out the whole round deadline.
	Timeout time.Duration

	// Poll schedules DownloadAll's not-yet-aggregated retries: jittered
	// capped-exponential backoff instead of a fixed busy-poll, so a slow
	// round costs a handful of RPCs, not thousands, while an about-to-
	// finish one is picked up within milliseconds. Zero-value fields
	// default to 2ms initial delay, 250ms cap, factor 2, ±20% jitter.
	Poll transport.Backoff

	// Clock schedules the poll waits (nil = SystemClock); tests inject a
	// FakeClock so polling is deterministic.
	Clock Clock
}

// NewFleet bundles clients with the deployment's Options: AggQuorum and
// CallTimeout map onto the fleet's degradation knobs.
func NewFleet(clients []*AggregatorClient, opts Options) *Fleet {
	return &Fleet{Clients: clients, Quorum: opts.AggQuorum, Timeout: opts.CallTimeout}
}

// K is the fleet size.
func (f *Fleet) K() int { return len(f.Clients) }

func (f *Fleet) required() int {
	if f.Quorum > 0 && f.Quorum < len(f.Clients) {
		return f.Quorum
	}
	return len(f.Clients)
}

func (f *Fleet) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(ctx, f.Timeout)
	}
	return context.WithCancel(ctx)
}

func (f *Fleet) clk() Clock {
	if f.Clock != nil {
		return f.Clock
	}
	return SystemClock
}

func (f *Fleet) pollBackoff() transport.Backoff {
	b := f.Poll
	if b.Initial <= 0 {
		b.Initial = 2 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 250 * time.Millisecond
	}
	return b
}

// fanOut runs op for every aggregator concurrently and applies quorum
// accounting: err is nil when at least required() succeeded, otherwise
// every failure joined. ok[j] and errs[j] report aggregator j's outcome
// either way, so callers can refuse to tolerate specific failure classes
// even under a met quorum.
func (f *Fleet) fanOut(op func(j int, a *AggregatorClient) error) (ok []bool, errs []error, err error) {
	ok = make([]bool, len(f.Clients))
	errs = make([]error, len(f.Clients))
	var g Group
	for j, a := range f.Clients {
		j, a := j, a
		g.Go(func() error {
			if e := op(j, a); e != nil {
				errs[j] = fmt.Errorf("core: aggregator %s: %w", a.ID, e)
				return nil // quorum accounting below, not Group error
			}
			ok[j] = true
			return nil
		})
	}
	g.Wait()
	succeeded := 0
	for _, o := range ok {
		if o {
			succeeded++
		}
	}
	if succeeded < f.required() {
		return ok, errs, fmt.Errorf("core: fan-out reached %d/%d aggregators (quorum %d): %w",
			succeeded, len(f.Clients), f.required(), errors.Join(errs...))
	}
	return ok, errs, nil
}

// VerifyAndRegisterAll runs Phase II against every aggregator in parallel.
// tokenPubKey fetches the AP-attested token key for an aggregator ID (the
// fetches also run concurrently — the AP client is multiplexed).
// Connectivity failures are tolerated down to the quorum, but a
// cryptographic verification failure (ErrVerificationFailed) always aborts:
// an unverifiable aggregator that is up is an adversary, not a straggler.
func (f *Fleet) VerifyAndRegisterAll(ctx context.Context, partyID string,
	tokenPubKey func(aggID string) ([]byte, error),
	newNonce func() ([]byte, error), verify func(pub, nonce, sig []byte) error) error {
	_, errs, err := f.fanOut(func(j int, a *AggregatorClient) error {
		pub, err := tokenPubKey(a.ID)
		if err != nil {
			return err
		}
		cctx, cancel := f.callCtx(ctx)
		defer cancel()
		return VerifyAndRegister(cctx, a, pub, partyID, newNonce, verify)
	})
	// Even with the quorum met, a failed *verification* is never a mere
	// availability problem.
	for _, e := range errs {
		if e != nil && errors.Is(e, ErrVerificationFailed) {
			return fmt.Errorf("core: refusing to train: %w", e)
		}
	}
	return err
}

// UploadAll sends fragment j to aggregator j for all j concurrently.
// len(frags) must equal K. Under quorum, a subset of failed uploads is
// tolerated; the corresponding aggregators simply miss this party's
// contribution for the round.
func (f *Fleet) UploadAll(ctx context.Context, round int, partyID string, frags []tensor.Vector, weight float64) error {
	if len(frags) != len(f.Clients) {
		return fmt.Errorf("core: %d fragments for %d aggregators", len(frags), len(f.Clients))
	}
	_, errs, err := f.fanOut(func(j int, a *AggregatorClient) error {
		cctx, cancel := f.callCtx(ctx)
		defer cancel()
		return a.UploadFrag(cctx, round, partyID, frags[j], j, weight)
	})
	return classifyAbandoned(err, errs)
}

// CompleteAll polls every aggregator's round completeness concurrently and
// returns how many report complete.
func (f *Fleet) CompleteAll(ctx context.Context, round int) (int, error) {
	var mu sync.Mutex
	complete := 0
	_, _, err := f.fanOut(func(j int, a *AggregatorClient) error {
		cctx, cancel := f.callCtx(ctx)
		defer cancel()
		done, err := a.Complete(cctx, round)
		if err != nil {
			return err
		}
		if done {
			mu.Lock()
			complete++
			mu.Unlock()
		}
		return nil
	})
	return complete, err
}

// DownloadAll fetches every aggregator's fused fragment for the round
// concurrently, polling while a healthy aggregator has not aggregated yet
// and giving up on an aggregator whose RPC fails or times out. If at least
// the quorum delivered and fallback is non-nil, missing entries degrade to
// fallback[j] — conventionally the party's own uploaded fragment, so the
// merged model falls back to the local update on the partition a dead
// aggregator owned. The caller's ctx bounds the total wait.
func (f *Fleet) DownloadAll(ctx context.Context, round int, partyID string, fallback []tensor.Vector) ([]tensor.Vector, error) {
	if fallback != nil && len(fallback) != len(f.Clients) {
		return nil, fmt.Errorf("core: %d fallback fragments for %d aggregators", len(fallback), len(f.Clients))
	}
	frags := make([]tensor.Vector, len(f.Clients))
	backoff := f.pollBackoff()
	clk := f.clk()
	ok, errs, err := f.fanOut(func(j int, a *AggregatorClient) error {
		for attempt := 0; ; attempt++ {
			cctx, cancel := f.callCtx(ctx)
			frag, err := a.Download(cctx, round, partyID)
			cancel()
			if err == nil {
				frags[j] = frag
				return nil
			}
			if !isNotAggregated(err) {
				// Connection failure, per-call timeout, an abandoned
				// round, or a remote rejection: this aggregator is down
				// for the round.
				return err
			}
			// Not aggregated yet: back off (jittered, capped) and poll
			// again, aborting promptly if the caller cancels.
			select {
			case <-ctx.Done():
				return fmt.Errorf("waiting for round %d fragment: %w", round, ctx.Err())
			case <-clk.After(backoff.Delay(attempt)):
			}
		}
	})
	if err != nil {
		return nil, classifyAbandoned(err, errs)
	}
	for j := range frags {
		if !ok[j] {
			if fallback == nil {
				return nil, fmt.Errorf("core: aggregator %s missing from round %d and no fallback", f.Clients[j].ID, round)
			}
			frags[j] = fallback[j]
		}
	}
	return frags, nil
}

// Stats snapshots every aggregator link's transport counters, keyed by
// aggregator ID — the per-aggregator latency/retry surface the round loop
// logs.
func (f *Fleet) Stats() map[string]transport.StatsSnapshot {
	out := make(map[string]transport.StatsSnapshot, len(f.Clients))
	for _, a := range f.Clients {
		out[a.ID] = a.Stats()
	}
	return out
}

// HeartbeatAll sends a liveness heartbeat to every aggregator
// concurrently. Best-effort by design — a missed heartbeat is exactly the
// signal the liveness tracker exists to notice — so unlike the round
// fan-outs it never fails on quorum; it reports how many aggregators
// acknowledged and which of them readmitted the party (sorted).
func (f *Fleet) HeartbeatAll(ctx context.Context, partyID string) (acked int, rejoinedAt []string) {
	var mu sync.Mutex
	var g Group
	for _, a := range f.Clients {
		a := a
		g.Go(func() error {
			cctx, cancel := f.callCtx(ctx)
			defer cancel()
			rejoined, err := a.Heartbeat(cctx, partyID)
			if err != nil {
				return nil // best-effort: silence is the signal
			}
			mu.Lock()
			acked++
			if rejoined {
				rejoinedAt = append(rejoinedAt, a.ID)
			}
			mu.Unlock()
			return nil
		})
	}
	g.Wait()
	sort.Strings(rejoinedAt)
	return acked, rejoinedAt
}

// isNotAggregated matches the aggregator's "round not aggregated yet"
// rejection across the RPC boundary (remote errors travel as strings).
func isNotAggregated(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNotAggregated) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "not aggregated")
}

// isAbandoned matches the aggregator's round-abandoned rejection across
// the RPC boundary.
func isAbandoned(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrRoundAbandoned) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "round abandoned")
}

// classifyAbandoned upgrades a below-quorum fan-out failure to
// ErrRoundAbandoned when any aggregator rejected the round as abandoned:
// the party should skip the round (survivors already fused or gave up
// without it), not burn its round deadline retrying.
func classifyAbandoned(err error, errs []error) error {
	if err == nil {
		return nil
	}
	for _, e := range errs {
		if isAbandoned(e) {
			return fmt.Errorf("%w: %w", ErrRoundAbandoned, err)
		}
	}
	return err
}
