package core

import (
	"fmt"
	"testing"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/rng"
	"deta/internal/sev"
	"deta/internal/tensor"
)

// The paper's §4.2 FLAME argument: shuffling preserves pairwise distances
// and partitioning turns one clustering problem into independent
// per-aggregator clustering problems — poisoned updates are still
// eliminated. This test drives the claim through real DeTA machinery.
func TestFLAMEFiltersPoisonAcrossPartitions(t *testing.T) {
	const n = 600
	st := rng.NewStream([]byte("flame-core"), "updates")
	updates := map[string]tensor.Vector{}
	for i := 0; i < 6; i++ {
		v := make(tensor.Vector, n)
		for j := range v {
			v[j] = 1 + 0.05*st.NormFloat64()
		}
		updates[fmt.Sprintf("P%d", i+1)] = v
	}
	poison := make(tensor.Vector, n)
	for j := range poison {
		poison[j] = -8 + 0.05*st.NormFloat64()
	}
	updates["P7-poison"] = poison

	// Trust bootstrap with FLAME as every aggregator's algorithm.
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	ap := attest.NewProxy(vendor.RAS(), OVMF)
	nodes := make([]*AggregatorNode, 3)
	for j := range nodes {
		platform, err := sev.NewPlatform("h", vendor)
		if err != nil {
			t.Fatal(err)
		}
		cvm, err := platform.LaunchCVM(OVMF)
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("agg-%d", j+1)
		if _, err := ap.Provision(id, platform, cvm); err != nil {
			t.Fatal(err)
		}
		nodes[j], err = NewAggregatorNode(id, agg.FLAMELite{}, cvm)
		if err != nil {
			t.Fatal(err)
		}
	}
	mapper, err := NewMapper(n, EqualProportions(3), []byte("flame-mapper"))
	if err != nil {
		t.Fatal(err)
	}
	shuffler, err := NewShuffler([]byte("flame-permutation-key-0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	roundID := []byte("flame-round")

	for id := range updates {
		for _, node := range nodes {
			node.Register(id)
		}
	}
	for id, u := range updates {
		frags, err := Transform(mapper, shuffler, u, roundID, true)
		if err != nil {
			t.Fatal(err)
		}
		for j, node := range nodes {
			if err := node.Upload(1, id, frags[j], 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	merged := make([]tensor.Vector, 3)
	for j, node := range nodes {
		if err := node.Aggregate(1); err != nil {
			t.Fatal(err)
		}
		merged[j], err = node.Download(1, "P1")
		if err != nil {
			t.Fatal(err)
		}
	}
	out, err := InverseTransform(mapper, shuffler, merged, roundID, true)
	if err != nil {
		t.Fatal(err)
	}
	// With the poison admitted, the mean would drop toward
	// (6*1 + (-8))/7 ≈ -0.29; with FLAME filtering it stays near 1.
	if mean := tensor.Mean(out); mean < 0.8 {
		t.Fatalf("FLAME-in-DeTA admitted the poisoned update: mean %v", mean)
	}
}
