package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"deta/internal/agg"
	"deta/internal/rng"
	"deta/internal/tensor"
)

// The central correctness property of the whole system, tested over random
// configurations: for coordinate-wise algorithms, transforming each
// party's update, aggregating fragments independently per aggregator, and
// inverse-transforming the results equals aggregating the raw updates
// centrally — for any party count, aggregator count, proportions, update
// contents, round identifier, and shuffle setting.
func TestDeTAPipelineEqualsCentralProperty(t *testing.T) {
	algorithms := []agg.Algorithm{
		agg.IterativeAverage{}, agg.CoordinateMedian{}, agg.TrimmedMean{Trim: 1},
	}
	sh, err := NewShuffler([]byte("property-permutation-key-0123456"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint32, kRaw, pRaw, shuffleRaw uint8) bool {
		k := int(kRaw%4) + 1       // 1-4 aggregators
		parties := int(pRaw%4) + 4 // 4-7 parties (TrimmedMean needs >2)
		shuffle := shuffleRaw%2 == 0
		const n = 150

		st := rng.NewStream([]byte{byte(seed), byte(seed >> 8), byte(seed >> 16)}, "prop-updates")

		// Random proportions, normalized.
		props := make([]float64, k)
		var sum float64
		for j := range props {
			props[j] = 0.2 + st.Float64()
			sum += props[j]
		}
		for j := range props {
			props[j] /= sum
		}
		mapper, err := NewMapper(n, props, []byte{byte(seed)})
		if err != nil {
			return false
		}

		updates := make([]tensor.Vector, parties)
		weights := make([]float64, parties)
		for p := range updates {
			v := make(tensor.Vector, n)
			for i := range v {
				v[i] = st.NormFloat64()
			}
			updates[p] = v
			weights[p] = 1 + st.Float64()*9
		}
		roundID := []byte(fmt.Sprintf("round-%d", seed%97))

		for _, alg := range algorithms {
			var w []float64
			if alg.Name() == "iterative-averaging" {
				w = weights
			}
			central, err := alg.Aggregate(updates, w)
			if err != nil {
				return false
			}
			// DeTA path.
			frags := make([][]tensor.Vector, k) // [aggregator][party]
			for j := range frags {
				frags[j] = make([]tensor.Vector, parties)
			}
			for p, u := range updates {
				fs, err := Transform(mapper, sh, u, roundID, shuffle)
				if err != nil {
					return false
				}
				for j := range fs {
					frags[j][p] = fs[j]
				}
			}
			fused := make([]tensor.Vector, k)
			for j := range fused {
				fused[j], err = alg.Aggregate(frags[j], w)
				if err != nil {
					return false
				}
			}
			merged, err := InverseTransform(mapper, sh, fused, roundID, shuffle)
			if err != nil {
				return false
			}
			for i := range central {
				if math.Abs(merged[i]-central[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
