package core

import (
	"testing"

	"deta/internal/agg"
)

// The paper's §4.2 fallback: algorithms that need global model access
// (e.g. FLTrust) can run DeTA with a single aggregator in a CVM and
// partitioning/shuffling disabled — trading the defense-in-depth layers
// for algorithm compatibility while keeping CC protection and two-phase
// authentication.
func TestSingleAggregatorFallbackMode(t *testing.T) {
	s := newTinySession(t, 2, false)
	s.Opts = Options{NumAggregators: 1, Shuffle: false, MapperSeed: []byte("fallback")}
	hist, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != s.Cfg.Rounds {
		t.Fatalf("rounds = %d", len(hist.Rounds))
	}
	// A single partition must carry the whole model.
	if got := s.Mapper.NumAggregators(); got != 1 {
		t.Fatalf("aggregators = %d", got)
	}
	if counts := s.Mapper.Counts(); counts[0] != s.Mapper.NumParams() {
		t.Fatalf("single partition holds %d of %d params", counts[0], s.Mapper.NumParams())
	}
	// The two-phase authentication still ran: the node has a token (it
	// signed Phase II challenges during Setup) and parties registered.
	if s.Nodes[0].NumParties() != 2 {
		t.Fatalf("parties registered = %d", s.Nodes[0].NumParties())
	}
}

// Unequal proportions (the paper lets parties choose the per-aggregator
// share) must flow through the whole session.
func TestUnequalProportionsSession(t *testing.T) {
	s := newTinySession(t, 2, true)
	s.Opts.Proportions = []float64{0.7, 0.2, 0.1}
	hist, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != s.Cfg.Rounds {
		t.Fatalf("rounds = %d", len(hist.Rounds))
	}
	counts := s.Mapper.Counts()
	n := s.Mapper.NumParams()
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Fatalf("counts %v do not follow proportions", counts)
	}
	if counts[0]+counts[1]+counts[2] != n {
		t.Fatalf("counts %v do not cover %d", counts, n)
	}
}

// Krum as the per-aggregator algorithm: each aggregator independently
// selects a fragment; the session must still run (the paper notes
// Byzantine-robust algorithms compose, with per-partition selection).
func TestKrumSession(t *testing.T) {
	s := newTinySession(t, 4, true)
	s.NewAlgorithm = func() agg.Algorithm { return agg.Krum{F: 1} }
	hist, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != s.Cfg.Rounds {
		t.Fatalf("rounds = %d", len(hist.Rounds))
	}
}
