package core

import (
	"math"
	"sync"
	"testing"

	"deta/internal/rng"
	"deta/internal/tensor"
)

// transform_fused_test.go proves the fused Transform/InverseTransform
// gather/scatter passes are bit-identical to the unfused composition they
// replaced (Partition∘Shuffle and Unshuffle∘Merge), including non-finite
// values, and that the permutation cache is safe under concurrent rounds.

// unfusedTransform is the reference composition the fused path must match.
func unfusedTransform(t *testing.T, m *Mapper, s *Shuffler, update tensor.Vector, roundID []byte) []tensor.Vector {
	t.Helper()
	frags, err := m.Partition(update)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]tensor.Vector, len(frags))
	for j, frag := range frags {
		out[j] = s.Shuffle(frag, roundID, j)
	}
	return out
}

// unfusedInverse is the reference Unshuffle-then-Merge composition.
func unfusedInverse(t *testing.T, m *Mapper, s *Shuffler, frags []tensor.Vector, roundID []byte) tensor.Vector {
	t.Helper()
	plain := make([]tensor.Vector, len(frags))
	for j, frag := range frags {
		plain[j] = s.Unshuffle(frag, roundID, j)
	}
	merged, err := m.Merge(plain)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

// TestTransformFusedEquivalence: for a spread of model sizes and partition
// counts, the fused single-pass Transform must produce bit-identical
// fragments to Partition followed by Shuffle, and the fused scatter
// InverseTransform must match Unshuffle followed by Merge. Values include
// NaN, ±Inf and -0.0 so the comparison is on bits, not float equality.
func TestTransformFusedEquivalence(t *testing.T) {
	s := testShuffler(t)
	for _, tc := range []struct {
		n int
		k int
	}{
		{1, 1}, {7, 3}, {97, 3}, {256, 2}, {1024, 5}, {4097, 4},
	} {
		m, err := NewMapper(tc.n, EqualProportions(tc.k), []byte("fused"))
		if err != nil {
			t.Fatal(err)
		}
		v := make(tensor.Vector, tc.n)
		st := rng.NewStream([]byte("fused-vals"), "v")
		for i := range v {
			v[i] = st.NormFloat64()
		}
		// Seed awkward values where the vector is big enough to hold them.
		for i, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)} {
			if i < len(v) {
				v[i] = x
			}
		}
		roundID := []byte("round-eq")

		want := unfusedTransform(t, m, s, v, roundID)
		got, err := Transform(m, s, v, roundID, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d k=%d: fused produced %d fragments, want %d", tc.n, tc.k, len(got), len(want))
		}
		for j := range want {
			if len(got[j]) != len(want[j]) {
				t.Fatalf("n=%d k=%d: fragment %d length %d, want %d", tc.n, tc.k, j, len(got[j]), len(want[j]))
			}
			for i := range want[j] {
				if math.Float64bits(got[j][i]) != math.Float64bits(want[j][i]) {
					t.Fatalf("n=%d k=%d: fragment %d diverges at %d: %x vs %x",
						tc.n, tc.k, j, i, math.Float64bits(got[j][i]), math.Float64bits(want[j][i]))
				}
			}
		}

		wantBack := unfusedInverse(t, m, s, want, roundID)
		gotBack, err := InverseTransform(m, s, got, roundID, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantBack {
			if math.Float64bits(gotBack[i]) != math.Float64bits(wantBack[i]) {
				t.Fatalf("n=%d k=%d: inverse diverges at %d", tc.n, tc.k, i)
			}
		}
		// And the full round trip restores the input bit-for-bit.
		for i := range v {
			if math.Float64bits(gotBack[i]) != math.Float64bits(v[i]) {
				t.Fatalf("n=%d k=%d: round trip diverges at %d", tc.n, tc.k, i)
			}
		}
		for _, frag := range got {
			tensor.PutVector(frag)
		}
	}
}

// TestTransformConcurrentRounds hammers one shuffler from many goroutines
// across overlapping rounds — the permutation cache's fill, hit, and
// clear-at-capacity paths all race here. Run under -race; correctness is
// checked by round-tripping every transform.
func TestTransformConcurrentRounds(t *testing.T) {
	m, err := NewMapper(512, EqualProportions(4), []byte("conc"))
	if err != nil {
		t.Fatal(err)
	}
	s := testShuffler(t)
	v := make(tensor.Vector, 512)
	st := rng.NewStream([]byte("conc-vals"), "v")
	for i := range v {
		v[i] = st.NormFloat64()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 24; r++ {
				// More distinct (round, partition) keys than permCacheCap, so
				// wholesale clears interleave with hits.
				roundID := []byte{byte(r)}
				frags, err := Transform(m, s, v, roundID, true)
				if err != nil {
					errs <- err
					return
				}
				back, err := InverseTransform(m, s, frags, roundID, true)
				if err != nil {
					errs <- err
					return
				}
				for i := range v {
					if math.Float64bits(back[i]) != math.Float64bits(v[i]) {
						t.Errorf("goroutine %d round %d: round trip diverged at %d", g, r, i)
						return
					}
				}
				for _, frag := range frags {
					tensor.PutVector(frag)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTransformLengthMismatch pins the fused path's validation errors,
// which must match the unfused path's behavior.
func TestTransformLengthMismatch(t *testing.T) {
	m, _ := NewMapper(10, EqualProportions(2), []byte("t"))
	s := testShuffler(t)
	if _, err := Transform(m, s, make(tensor.Vector, 9), []byte("r"), true); err == nil {
		t.Fatal("fused transform accepted a short update")
	}
	frags, err := Transform(m, s, make(tensor.Vector, 10), []byte("r"), true)
	if err != nil {
		t.Fatal(err)
	}
	frags[0] = frags[0][:len(frags[0])-1]
	if _, err := InverseTransform(m, s, frags, []byte("r"), true); err == nil {
		t.Fatal("fused inverse accepted a short fragment")
	}
	if _, err := InverseTransform(m, s, frags[:1], []byte("r"), true); err == nil {
		t.Fatal("fused inverse accepted missing fragments")
	}
}
