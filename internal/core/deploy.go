package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"deta/internal/attest"
	"deta/internal/sev"
	"deta/internal/transport"
)

// This file is the control plane for multi-process deployments
// (cmd/deta-ap, cmd/deta-aggregator, cmd/deta-party): an RPC service that
// bundles the vendor's endorsement/RAS role, the attestation proxy, and
// the key broker, plus the aggregator-side flow that attests a locally
// hosted CVM against a remote AP.
//
// In real SEV the launch blob is encrypted to the platform's transport
// keys; here it travels inside the (TLS-protected) RPC response — a
// documented simulation shortcut that preserves the protocol's structure.

// AP control-plane RPC method names.
const (
	MethodAPEndorse     = "ap.Endorse"
	MethodAPNonce       = "ap.Nonce"
	MethodAPAttest      = "ap.Attest"
	MethodAPTokenPubKey = "ap.TokenPubKey"
	MethodAPRegister    = "ap.RegisterParty"
	MethodAPPermKey     = "ap.PermKey"
	MethodAPRoundID     = "ap.RoundID"
	MethodAPAggregators = "ap.Aggregators"
)

// Control-plane wire messages.
type (
	// EndorseReq asks the vendor role to endorse a platform VCEK.
	EndorseReq struct {
		PlatformName string
		VCEKPub      []byte
	}
	// EndorseResp carries the endorsed chain.
	EndorseResp struct{ Chain sev.CertChain }

	// NonceReq starts an attestation exchange for an aggregator.
	NonceReq struct{ AggregatorID string }
	// NonceResp carries the AP's challenge nonce.
	NonceResp struct{ Nonce []byte }

	// AttestReq submits the attestation report for verification.
	AttestReq struct {
		AggregatorID string
		Report       *sev.AttestationReport
	}
	// AttestResp carries the launch blob (the serialized ECDSA token) on
	// success.
	AttestResp struct{ LaunchBlob []byte }

	// TokenPubKeyReq fetches an aggregator's provisioned token key.
	TokenPubKeyReq struct{ AggregatorID string }
	// TokenPubKeyResp carries it.
	TokenPubKeyResp struct{ PubKey []byte }

	// RegisterPartyReq registers a party with the key broker.
	RegisterPartyReq struct{ PartyID string }
	// RegisterPartyResp acknowledges.
	RegisterPartyResp struct{ OK bool }

	// PermKeyReq fetches the shared permutation key.
	PermKeyReq struct{ PartyID string }
	// PermKeyResp carries it.
	PermKeyResp struct{ Key []byte }

	// RoundIDReq fetches a round's training identifier.
	RoundIDReq struct{ Round int }
	// RoundIDResp carries it.
	RoundIDResp struct{ ID []byte }

	// AggregatorsReq lists provisioned aggregators.
	AggregatorsReq struct{}
	// AggregatorsResp carries their IDs.
	AggregatorsResp struct{ IDs []string }
)

// APService is the deployable control plane: vendor + attestation proxy +
// key broker.
type APService struct {
	vendor *sev.Vendor
	proxy  *attest.Proxy
	broker *attest.KeyBroker

	mu     sync.Mutex
	nonces map[string][]byte // pending attestation nonces per aggregator
}

// NewAPService builds the control plane expecting aggregators to boot the
// given firmware.
func NewAPService(ovmf []byte, permKeyBytes int) (*APService, error) {
	vendor, err := sev.NewVendor()
	if err != nil {
		return nil, err
	}
	broker, err := attest.NewKeyBroker(permKeyBytes)
	if err != nil {
		return nil, err
	}
	return &APService{
		vendor: vendor,
		proxy:  attest.NewProxy(vendor.RAS(), ovmf),
		broker: broker,
		nonces: make(map[string][]byte),
	}, nil
}

// Vendor exposes the underlying vendor (for in-process tests).
func (s *APService) Vendor() *sev.Vendor { return s.vendor }

// Serve registers the control-plane methods on an RPC server.
func (s *APService) Serve(srv *transport.Server) {
	transport.HandleTyped(srv, MethodAPEndorse, func(r EndorseReq) (EndorseResp, error) {
		chain, err := s.vendor.Endorse(r.PlatformName, r.VCEKPub)
		if err != nil {
			return EndorseResp{}, err
		}
		return EndorseResp{Chain: chain}, nil
	})
	transport.HandleTyped(srv, MethodAPNonce, func(r NonceReq) (NonceResp, error) {
		if r.AggregatorID == "" {
			return NonceResp{}, errors.New("empty aggregator ID")
		}
		nonce, err := attest.NewNonce()
		if err != nil {
			return NonceResp{}, err
		}
		s.mu.Lock()
		s.nonces[r.AggregatorID] = nonce
		s.mu.Unlock()
		return NonceResp{Nonce: nonce}, nil
	})
	transport.HandleTyped(srv, MethodAPAttest, func(r AttestReq) (AttestResp, error) {
		s.mu.Lock()
		nonce, ok := s.nonces[r.AggregatorID]
		delete(s.nonces, r.AggregatorID)
		s.mu.Unlock()
		if !ok {
			return AttestResp{}, fmt.Errorf("no pending nonce for %q; call %s first", r.AggregatorID, MethodAPNonce)
		}
		blob, err := s.proxy.VerifyAndIssueToken(r.AggregatorID, r.Report, nonce)
		if err != nil {
			return AttestResp{}, err
		}
		//lint:ignore keytaint the launch blob rides the TLS-protected attestation response by design — in real SEV it would be encrypted to the platform's transport keys (see file header)
		return AttestResp{LaunchBlob: blob}, nil
	})
	transport.HandleTyped(srv, MethodAPTokenPubKey, func(r TokenPubKeyReq) (TokenPubKeyResp, error) {
		pub, err := s.proxy.TokenPubKey(r.AggregatorID)
		if err != nil {
			return TokenPubKeyResp{}, err
		}
		return TokenPubKeyResp{PubKey: pub}, nil
	})
	transport.HandleTyped(srv, MethodAPRegister, func(r RegisterPartyReq) (RegisterPartyResp, error) {
		if r.PartyID == "" {
			return RegisterPartyResp{}, errors.New("empty party ID")
		}
		s.broker.RegisterParty(r.PartyID)
		return RegisterPartyResp{OK: true}, nil
	})
	transport.HandleTyped(srv, MethodAPPermKey, func(r PermKeyReq) (PermKeyResp, error) {
		key, err := s.broker.PermutationKey(r.PartyID)
		if err != nil {
			return PermKeyResp{}, err
		}
		return PermKeyResp{Key: key}, nil
	})
	transport.HandleTyped(srv, MethodAPRoundID, func(r RoundIDReq) (RoundIDResp, error) {
		id, err := s.broker.RoundID(r.Round)
		if err != nil {
			return RoundIDResp{}, err
		}
		return RoundIDResp{ID: id}, nil
	})
	transport.HandleTyped(srv, MethodAPAggregators, func(AggregatorsReq) (AggregatorsResp, error) {
		return AggregatorsResp{IDs: s.proxy.AggregatorIDs()}, nil
	})
}

// APClient is the remote handle to the AP control plane.
type APClient struct{ C *transport.Client }

// Endorse asks the vendor role to endorse a platform key.
func (a *APClient) Endorse(ctx context.Context, platformName string, vcekPub []byte) (sev.CertChain, error) {
	resp, err := transport.CallTypedContext[EndorseReq, EndorseResp](ctx, a.C, MethodAPEndorse,
		EndorseReq{PlatformName: platformName, VCEKPub: vcekPub})
	if err != nil {
		return sev.CertChain{}, err
	}
	return resp.Chain, nil
}

// AttestCVM runs the aggregator-side Phase I against the remote AP: fetch a
// nonce, produce the report, submit it, and inject the returned launch blob
// into the paused CVM before resuming.
func (a *APClient) AttestCVM(ctx context.Context, aggregatorID string, platform *sev.Platform, cvm *sev.CVM) error {
	nresp, err := transport.CallTypedContext[NonceReq, NonceResp](ctx, a.C, MethodAPNonce, NonceReq{AggregatorID: aggregatorID})
	if err != nil {
		return err
	}
	report, err := platform.AttestCVM(cvm, 0, nresp.Nonce)
	if err != nil {
		return err
	}
	aresp, err := transport.CallTypedContext[AttestReq, AttestResp](ctx, a.C, MethodAPAttest,
		AttestReq{AggregatorID: aggregatorID, Report: report})
	if err != nil {
		return err
	}
	if err := cvm.InjectLaunchSecret(aresp.LaunchBlob); err != nil {
		return err
	}
	return cvm.Resume()
}

// TokenPubKey fetches the provisioned token key for an aggregator.
func (a *APClient) TokenPubKey(ctx context.Context, aggregatorID string) ([]byte, error) {
	resp, err := transport.CallTypedContext[TokenPubKeyReq, TokenPubKeyResp](ctx, a.C, MethodAPTokenPubKey,
		TokenPubKeyReq{AggregatorID: aggregatorID})
	if err != nil {
		return nil, err
	}
	return resp.PubKey, nil
}

// RegisterParty registers with the key broker.
func (a *APClient) RegisterParty(ctx context.Context, partyID string) error {
	_, err := transport.CallTypedContext[RegisterPartyReq, RegisterPartyResp](ctx, a.C, MethodAPRegister,
		RegisterPartyReq{PartyID: partyID})
	return err
}

// PermKey fetches the shared permutation key.
func (a *APClient) PermKey(ctx context.Context, partyID string) ([]byte, error) {
	resp, err := transport.CallTypedContext[PermKeyReq, PermKeyResp](ctx, a.C, MethodAPPermKey, PermKeyReq{PartyID: partyID})
	if err != nil {
		return nil, err
	}
	return resp.Key, nil
}

// RoundID fetches a round's training identifier.
func (a *APClient) RoundID(ctx context.Context, round int) ([]byte, error) {
	resp, err := transport.CallTypedContext[RoundIDReq, RoundIDResp](ctx, a.C, MethodAPRoundID, RoundIDReq{Round: round})
	if err != nil {
		return nil, err
	}
	return resp.ID, nil
}

// Aggregators lists provisioned aggregator IDs.
func (a *APClient) Aggregators(ctx context.Context) ([]string, error) {
	resp, err := transport.CallTypedContext[AggregatorsReq, AggregatorsResp](ctx, a.C, MethodAPAggregators, AggregatorsReq{})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}
