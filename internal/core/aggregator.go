package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/sev"
	"deta/internal/tensor"
)

// AggregatorNode is the aggregation service running inside one SEV CVM. It
// holds only fragmentary, shuffled views of model updates: it never learns
// the model architecture, the mapper, or the permutation key.
type AggregatorNode struct {
	ID        string
	Algorithm agg.Algorithm

	cvm   *sev.CVM
	token *attest.Token

	mu      sync.Mutex
	parties map[string]bool
	rounds  map[int]*roundState

	// quorum, when positive, lets a round aggregate once that many
	// parties have uploaded instead of requiring all registered parties —
	// the asynchronous-training tolerance the paper contrasts with SMC
	// protocols (§8.2): parties with competing workloads or slow hardware
	// may miss rounds without stalling the federation.
	quorum int
}

type roundState struct {
	fragments  map[string]tensor.Vector
	weights    map[string]float64
	aggregated tensor.Vector
}

// Aggregator-node errors.
var (
	ErrNotRegistered   = errors.New("core: party not registered with aggregator")
	ErrRoundIncomplete = errors.New("core: round is missing uploads")
	ErrNotAggregated   = errors.New("core: round not aggregated yet")
	ErrDuplicateUpload = errors.New("core: duplicate upload for round")
)

// NewAggregatorNode launches the aggregation service inside the given CVM:
// it reads the launch secret (the AP-provisioned ECDSA token) from the
// CVM's encrypted memory. The CVM must already be provisioned and running.
func NewAggregatorNode(id string, algorithm agg.Algorithm, cvm *sev.CVM) (*AggregatorNode, error) {
	secret, err := cvm.GuestReadSecret()
	if err != nil {
		return nil, fmt.Errorf("core: aggregator %s reading launch secret: %w", id, err)
	}
	token, err := attest.LoadToken(secret)
	if err != nil {
		return nil, fmt.Errorf("core: aggregator %s: %w", id, err)
	}
	return &AggregatorNode{
		ID:        id,
		Algorithm: algorithm,
		cvm:       cvm,
		token:     token,
		parties:   make(map[string]bool),
		rounds:    make(map[int]*roundState),
	}, nil
}

// SignChallenge answers a party's Phase II challenge with the provisioned
// token.
func (a *AggregatorNode) SignChallenge(nonce []byte) ([]byte, error) {
	return a.token.SignChallenge(nonce)
}

// Register admits a party to the training.
func (a *AggregatorNode) Register(partyID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.parties[partyID] = true
}

// NumParties returns the registered-party count.
func (a *AggregatorNode) NumParties() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.parties)
}

// Upload receives one party's transformed fragment for a round, weighted by
// the party's local dataset size.
func (a *AggregatorNode) Upload(round int, partyID string, frag tensor.Vector, weight float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.parties[partyID] {
		return fmt.Errorf("%w: %q", ErrNotRegistered, partyID)
	}
	rs, ok := a.rounds[round]
	if !ok {
		rs = &roundState{
			fragments: make(map[string]tensor.Vector),
			weights:   make(map[string]float64),
		}
		a.rounds[round] = rs
	}
	if _, dup := rs.fragments[partyID]; dup {
		return fmt.Errorf("%w %d from %q", ErrDuplicateUpload, round, partyID)
	}
	rs.fragments[partyID] = frag.Clone()
	rs.weights[partyID] = weight
	return nil
}

// SetQuorum configures partial participation: rounds may aggregate once n
// parties have uploaded (n <= 0 restores the all-parties default).
func (a *AggregatorNode) SetQuorum(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.quorum = n
}

// required returns the upload count a round needs before aggregation.
// Callers must hold a.mu.
func (a *AggregatorNode) required() int {
	if a.quorum > 0 && a.quorum < len(a.parties) {
		return a.quorum
	}
	return len(a.parties)
}

// Complete reports whether enough parties have uploaded for round (all
// registered parties, or the configured quorum).
func (a *AggregatorNode) Complete(round int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	rs, ok := a.rounds[round]
	return ok && len(rs.fragments) >= a.required()
}

// Aggregate fuses the round's fragments with the node's algorithm. Called
// by the initiator's sync protocol once all parties have uploaded.
func (a *AggregatorNode) Aggregate(round int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rs, ok := a.rounds[round]
	if !ok || len(rs.fragments) < a.required() {
		return fmt.Errorf("%w: round %d has %d/%d uploads", ErrRoundIncomplete, round, uploadCount(rs), a.required())
	}
	// Deterministic party order: sort IDs.
	ids := make([]string, 0, len(rs.fragments))
	for id := range rs.fragments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	updates := make([]tensor.Vector, len(ids))
	weights := make([]float64, len(ids))
	for i, id := range ids {
		updates[i] = rs.fragments[id]
		weights[i] = rs.weights[id]
	}
	fused, err := a.Algorithm.Aggregate(updates, weights)
	if err != nil {
		return fmt.Errorf("core: aggregator %s round %d: %w", a.ID, round, err)
	}
	rs.aggregated = fused
	return nil
}

func uploadCount(rs *roundState) int {
	if rs == nil {
		return 0
	}
	return len(rs.fragments)
}

// Download returns the aggregated fragment for a round.
func (a *AggregatorNode) Download(round int, partyID string) (tensor.Vector, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.parties[partyID] {
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, partyID)
	}
	rs, ok := a.rounds[round]
	if !ok || rs.aggregated == nil {
		return nil, fmt.Errorf("%w: round %d", ErrNotAggregated, round)
	}
	return rs.aggregated.Clone(), nil
}

// DropRound frees a completed round's state.
func (a *AggregatorNode) DropRound(round int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.rounds, round)
}

// LeakRoundFragments models an aggregator breach for the security analysis
// (§6): it exposes everything this aggregator holds for a round — the
// per-party fragments exactly as uploaded. A real deployment has no such
// API; the attack experiments call it to play the worst-case adversary.
func (a *AggregatorNode) LeakRoundFragments(round int) map[string]tensor.Vector {
	a.mu.Lock()
	defer a.mu.Unlock()
	rs, ok := a.rounds[round]
	if !ok {
		return nil
	}
	out := make(map[string]tensor.Vector, len(rs.fragments))
	for id, f := range rs.fragments {
		out[id] = f.Clone()
	}
	return out
}
