package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/journal"
	"deta/internal/sev"
	"deta/internal/tensor"
)

// AggregatorNode is the aggregation service running inside one SEV CVM. It
// holds only fragmentary, shuffled views of model updates: it never learns
// the model architecture, the mapper, or the permutation key.
//
// With a Journal attached (RecoverAggregatorNode, or Session's StateDir),
// every state mutation is committed to the write-ahead log before it is
// acknowledged, so a crashed-and-restarted aggregator resumes the round
// exactly where it left off instead of stalling the federation.
type AggregatorNode struct {
	ID        string
	Algorithm agg.Algorithm

	cvm   *sev.CVM
	token *attest.Token

	mu      sync.Mutex
	parties map[string]bool
	rounds  map[int]*roundState

	// quorum, when positive, lets a round aggregate once that many
	// parties have uploaded instead of requiring all registered parties —
	// the asynchronous-training tolerance the paper contrasts with SMC
	// protocols (§8.2): parties with competing workloads or slow hardware
	// may miss rounds without stalling the federation.
	quorum int

	// retention, when positive, evicts aggregated rounds older than
	// (latest aggregated - retention) from memory; the journal remains
	// the durable copy, so the rounds map stays bounded over long runs.
	retention int

	// lastAggregated is the highest round this node has fused; it
	// survives recovery so a restarted initiator resumes sync at the
	// right round instead of round 1.
	lastAggregated int

	// journal, when non-nil, is the durable round-state log. Mutations
	// append to it (fsync-on-commit) before acknowledging.
	journal *journal.Journal
	// walBuf is the reused encode scratch for fragment WAL records:
	// journal.Append copies the frame out synchronously, so the buffer is
	// free again when logFragmentDurable returns. Guarded by mu like
	// every caller; ephemeral, never journaled or recovered.
	walBuf []byte
	// compactEvery bounds the journal tail before a snapshot+truncate
	// compaction (0 = default).
	compactEvery int

	// clock is the injected time source for the round lifecycle and
	// liveness tracker (nil = SystemClock); see lifecycle.go.
	clock Clock
	// deadline/grace drive the per-round state machine (SetLifecycle);
	// deadline <= 0 disables it.
	deadline time.Duration
	grace    time.Duration
	// suspectAfter/evictAfter are the liveness thresholds (SetLiveness);
	// evictAfter <= 0 disables eviction.
	suspectAfter time.Duration
	evictAfter   time.Duration
	// lastSeen records each registered party's latest liveness signal
	// (upload, register, heartbeat). Ephemeral: never journaled, reset to
	// the recovery instant after a restart.
	lastSeen map[string]time.Time
	// evicted marks parties removed for silence (recEvict) and not yet
	// readmitted (recRejoin); it survives recovery via the journal.
	evicted map[string]bool
}

type roundState struct {
	fragments  map[string]tensor.Vector
	weights    map[string]float64
	aggregated tensor.Vector

	// openedAt is when this node first saw the round (zero for rounds that
	// predate lifecycle configuration — restampLocked stamps them);
	// quorumAt is when the upload count first met the requirement. Both
	// are in-memory only: the WAL stays timestamp-free so replay is
	// bit-identical whenever it runs.
	openedAt time.Time
	quorumAt time.Time
}

// Aggregator-node errors.
var (
	ErrNotRegistered   = errors.New("core: party not registered with aggregator")
	ErrRoundIncomplete = errors.New("core: round is missing uploads")
	ErrNotAggregated   = errors.New("core: round not aggregated yet")
	ErrDuplicateUpload = errors.New("core: conflicting duplicate upload for round")
)

// NewAggregatorNode launches the aggregation service inside the given CVM:
// it reads the launch secret (the AP-provisioned ECDSA token) from the
// CVM's encrypted memory. The CVM must already be provisioned and running.
// The node keeps all round state in memory; use RecoverAggregatorNode to
// attach a durable journal and survive restarts.
func NewAggregatorNode(id string, algorithm agg.Algorithm, cvm *sev.CVM) (*AggregatorNode, error) {
	secret, err := cvm.GuestReadSecret()
	if err != nil {
		return nil, fmt.Errorf("core: aggregator %s reading launch secret: %w", id, err)
	}
	token, err := attest.LoadToken(secret)
	if err != nil {
		return nil, fmt.Errorf("core: aggregator %s: %w", id, err)
	}
	return &AggregatorNode{
		ID:        id,
		Algorithm: algorithm,
		cvm:       cvm,
		token:     token,
		parties:   make(map[string]bool),
		rounds:    make(map[int]*roundState),
		lastSeen:  make(map[string]time.Time),
		evicted:   make(map[string]bool),
	}, nil
}

// SignChallenge answers a party's Phase II challenge with the provisioned
// token.
func (a *AggregatorNode) SignChallenge(nonce []byte) ([]byte, error) {
	return a.token.SignChallenge(nonce)
}

// Register admits a party to the training. Registering an already-admitted
// party is a no-op, so parties may safely re-register after reconnecting
// to a restarted aggregator. A previously evicted party re-registering is
// readmitted (journaled as recRejoin).
func (a *AggregatorNode) Register(partyID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.parties[partyID] {
		a.lastSeen[partyID] = a.nowLocked()
		return
	}
	if a.evicted[partyID] {
		a.rejoinLocked(partyID)
	} else {
		// Best-effort journaling: a lost register record is self-healing
		// (uploads imply registration on replay, and parties re-register on
		// reconnect), so registration does not fail on journal errors.
		a.logEvent(recRegister, walEvent{Party: partyID})
		a.parties[partyID] = true
	}
	a.lastSeen[partyID] = a.nowLocked()
	a.maybeCompactLocked()
}

// NumParties returns the registered-party count.
func (a *AggregatorNode) NumParties() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.parties)
}

// RoundsHeld returns how many rounds the node currently holds in memory
// (bounded by SetRetention over long runs).
func (a *AggregatorNode) RoundsHeld() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.rounds)
}

// LastAggregatedRound returns the highest round this node has fused (0 if
// none); it survives crash recovery, so a restarted initiator can resume
// round synchronization past already-completed rounds.
func (a *AggregatorNode) LastAggregatedRound() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastAggregated
}

// Upload receives one party's transformed fragment for a round, weighted by
// the party's local dataset size. Uploads are idempotent: re-sending the
// identical (fragment, weight) for the same (party, round) succeeds
// silently, so a party that hit an ambiguous network failure can safely
// retry; only a *conflicting* re-upload returns ErrDuplicateUpload. The
// fragment is journaled (fsynced) before the upload is acknowledged.
//
// The node clones frag before storing it, so the caller may keep using its
// buffer. Callers that hand over ownership should use UploadOwned.
//
//perf:hotpath
func (a *AggregatorNode) Upload(round int, partyID string, frag tensor.Vector, weight float64) error {
	return a.upload(round, partyID, frag, weight, false)
}

// UploadOwned is Upload for callers relinquishing frag — the RPC handler,
// whose fragment was decoded into a buffer that exists only for this
// request. The node stores frag without the defensive clone; the caller
// must not touch it afterwards.
//
//perf:hotpath
func (a *AggregatorNode) UploadOwned(round int, partyID string, frag tensor.Vector, weight float64) error {
	return a.upload(round, partyID, frag, weight, true)
}

// upload is the steady-state ingest path, hence //perf:hotpath; its
// remaining acknowledged allocations (round-state map writes, the
// defensive Clone, the durability helpers) are tracked in
// lint-baseline.json rather than ignored in place — they are burn-down
// candidates, not sanctioned forever.
//
//perf:hotpath
func (a *AggregatorNode) upload(round int, partyID string, frag tensor.Vector, weight float64, owned bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.nowLocked()
	if a.evicted[partyID] {
		// A returning party's first upload readmits it — the same
		// journaled transition a heartbeat or re-registration takes.
		a.rejoinLocked(partyID)
	}
	if !a.parties[partyID] {
		return fmt.Errorf("%w: %q", ErrNotRegistered, partyID)
	}
	a.lastSeen[partyID] = now
	rs, ok := a.rounds[round]
	if ok {
		if prev, dup := rs.fragments[partyID]; dup {
			// Identical retries stay idempotent even after the round seals, so
			// a party that hit an ambiguous failure pre-seal can still confirm.
			if fragEqual(prev, frag) && rs.weights[partyID] == weight {
				return nil // identical retry: already committed
			}
			return fmt.Errorf("%w %d from %q", ErrDuplicateUpload, round, partyID)
		}
		if a.lifecycleOnLocked(rs) {
			switch ph := a.phaseLocked(rs, now); ph {
			case PhaseAbandoned:
				return fmt.Errorf("%w: round %d", ErrRoundAbandoned, round)
			case PhaseSealed, PhaseFused:
				return fmt.Errorf("%w: round %d is %s", ErrStragglerCut, round, ph)
			}
		}
	}
	// WAL before ack — and before any durable mutation: the round is
	// created only after its first fragment is safely journaled, so a
	// failed append leaves no phantom round to roll back. A brand-new
	// round needs no duplicate or lifecycle check: its maps are empty and
	// a round opening right now is by definition in PhaseOpen.
	if err := a.logFragmentDurable(recUpload2, partyID, round, frag, weight); err != nil {
		return fmt.Errorf("core: aggregator %s journaling upload: %w", a.ID, err)
	}
	if !ok {
		rs = newRoundState()
		rs.openedAt = now
		a.rounds[round] = rs
	}
	if !owned {
		// Defensive copy into pooled storage: GetVector reuses retired
		// fragment buffers, where Clone allocated a fresh slab per upload.
		buf := tensor.GetVector(len(frag))
		copy(buf, frag)
		frag = buf
	}
	rs.fragments[partyID] = frag
	rs.weights[partyID] = weight
	a.refreshQuorumLocked(rs, now)
	a.maybeCompactLocked()
	return nil
}

// SetQuorum configures partial participation: rounds may aggregate once n
// parties have uploaded (n <= 0 restores the all-parties default).
func (a *AggregatorNode) SetQuorum(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.quorum == n {
		return
	}
	a.logEvent(recQuorum, walEvent{N: n})
	a.quorum = n
}

// SetRetention bounds memory over long runs: once set to n > 0, rounds
// older than (latest aggregated round - n) are evicted after each fusion.
// The journal (when attached) remains the durable copy of evicted rounds;
// n <= 0 disables eviction.
func (a *AggregatorNode) SetRetention(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.retention == n {
		return
	}
	a.logEvent(recRetention, walEvent{N: n})
	a.retention = n
	a.evictLocked(a.lastAggregated)
}

// SetCompactEvery tunes how many journal records accumulate before a
// snapshot+truncate compaction (default 1024; no-op without a journal).
func (a *AggregatorNode) SetCompactEvery(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.compactEvery = n
}

// required returns the upload count a round needs before aggregation.
// Callers must hold a.mu.
func (a *AggregatorNode) required() int {
	if a.quorum > 0 && a.quorum < len(a.parties) {
		return a.quorum
	}
	return len(a.parties)
}

// Complete reports whether the round is ready to fuse: with a lifecycle
// configured (SetLifecycle), that means the round has sealed — quorum met
// and the grace window (or deadline, or full participation) reached;
// without one, simply that enough parties have uploaded (all registered
// parties, or the configured quorum).
func (a *AggregatorNode) Complete(round int) bool {
	done, _ := a.RoundStatus(round)
	return done
}

// Aggregate fuses the round's fragments with the node's algorithm. Called
// by the initiator's sync protocol once all parties have uploaded.
// Aggregating an already-fused round is a no-op, so an initiator that
// restarted mid-sync can safely re-drive it. The fused vector is journaled
// before Aggregate returns, so parties can still download it from a
// recovered aggregator.
func (a *AggregatorNode) Aggregate(round int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rs, ok := a.rounds[round]
	if ok && rs.aggregated != nil {
		return nil // idempotent re-sync after an initiator or node restart
	}
	// Aggregate fuses as soon as the quorum *count* is met — it does not
	// wait out the grace window (Complete/RoundStatus is where grace
	// gates): the explicit call is the initiator's decision to cut
	// stragglers now, and the in-process Session drives it directly.
	if ok && a.phaseLocked(rs, a.nowLocked()) == PhaseAbandoned {
		return fmt.Errorf("%w: round %d has %d/%d uploads", ErrRoundAbandoned, round, len(rs.fragments), a.required())
	}
	if !ok || len(rs.fragments) < a.required() {
		return fmt.Errorf("%w: round %d has %d/%d uploads", ErrRoundIncomplete, round, uploadCount(rs), a.required())
	}
	// Deterministic party order: sort IDs.
	ids := make([]string, 0, len(rs.fragments))
	for id := range rs.fragments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	updates := make([]tensor.Vector, len(ids))
	weights := make([]float64, len(ids))
	for i, id := range ids {
		updates[i] = rs.fragments[id]
		weights[i] = rs.weights[id]
	}
	fused, err := a.Algorithm.Aggregate(updates, weights)
	if err != nil {
		return fmt.Errorf("core: aggregator %s round %d: %w", a.ID, round, err)
	}
	// Journal the *result*, not just the trigger: stateful algorithms
	// (e.g. Paillier fusion) cannot be re-run deterministically on
	// replay, and parties must be able to re-download after a crash.
	if err := a.logFragmentDurable(recAggregate2, "", round, fused, 0); err != nil {
		return fmt.Errorf("core: aggregator %s journaling round %d: %w", a.ID, round, err)
	}
	a.applyAggregated(round, fused)
	a.maybeCompactLocked()
	return nil
}

func uploadCount(rs *roundState) int {
	if rs == nil {
		return 0
	}
	return len(rs.fragments)
}

// Download returns the aggregated fragment for a round.
func (a *AggregatorNode) Download(round int, partyID string) (tensor.Vector, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.parties[partyID] {
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, partyID)
	}
	rs, ok := a.rounds[round]
	if !ok || rs.aggregated == nil {
		// Distinguish "not yet" from "never": pollers stop waiting on an
		// abandoned round instead of burning their whole deadline.
		if ok && a.phaseLocked(rs, a.nowLocked()) == PhaseAbandoned {
			return nil, fmt.Errorf("%w: round %d", ErrRoundAbandoned, round)
		}
		return nil, fmt.Errorf("%w: round %d", ErrNotAggregated, round)
	}
	// Advisory fetch-served record (no fsync: its loss is harmless); it
	// lets operators audit which rounds were actually delivered.
	a.logEventAdvisory(recFetch, walEvent{Party: partyID, Round: round})
	return rs.aggregated.Clone(), nil
}

// DropRound frees a completed round's state.
func (a *AggregatorNode) DropRound(round int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.rounds[round]; !ok {
		return
	}
	a.logEvent(recDrop, walEvent{Round: round})
	delete(a.rounds, round)
	a.maybeCompactLocked()
}

// evictLocked applies the retention policy after round `latest` fused.
// Pure function of (rounds, retention, latest), so journal replay — which
// re-runs it from the recAggregate records — reproduces the same bounded
// map without eviction records of its own. Callers must hold a.mu.
func (a *AggregatorNode) evictLocked(latest int) {
	if a.retention <= 0 {
		return
	}
	for r := range a.rounds {
		if r <= latest-a.retention {
			delete(a.rounds, r)
		}
	}
}

// LeakRoundFragments models an aggregator breach for the security analysis
// (§6): it exposes everything this aggregator holds for a round — the
// per-party fragments exactly as uploaded. A real deployment has no such
// API; the attack experiments call it to play the worst-case adversary.
func (a *AggregatorNode) LeakRoundFragments(round int) map[string]tensor.Vector {
	a.mu.Lock()
	defer a.mu.Unlock()
	rs, ok := a.rounds[round]
	if !ok {
		return nil
	}
	out := make(map[string]tensor.Vector, len(rs.fragments))
	for id, f := range rs.fragments {
		out[id] = f.Clone()
	}
	return out
}

func newRoundState() *roundState {
	return &roundState{
		fragments: make(map[string]tensor.Vector),
		weights:   make(map[string]float64),
	}
}

// fragEqual reports exact (bitwise, per-coordinate) equality — the test
// for an idempotent re-upload.
func fragEqual(a, b tensor.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
