package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"deta/internal/tensor"
	"deta/internal/transport"
)

// RPC method names exposed by an aggregator server. Parties speak this
// protocol over TLS after Phase II registration.
const (
	MethodChallenge = "deta.Challenge"
	MethodRegister  = "deta.Register"
	MethodUpload    = "deta.Upload"
	MethodComplete  = "deta.Complete"
	MethodAggregate = "deta.Aggregate"
	MethodDownload  = "deta.Download"
	MethodHeartbeat = "deta.Heartbeat"
)

// Wire messages. Fields are exported for gob.
type (
	// ChallengeReq asks the aggregator to prove token possession.
	ChallengeReq struct{ Nonce []byte }
	// ChallengeResp carries the token signature over the nonce.
	ChallengeResp struct{ Sig []byte }

	// RegisterReq admits a party.
	RegisterReq struct{ PartyID string }
	// RegisterResp acknowledges registration.
	RegisterResp struct{ OK bool }

	// UploadReq carries one transformed fragment.
	UploadReq struct {
		Round    int
		PartyID  string
		Frag     int // fragment (partition) index at this aggregator
		Fragment []float64
		Weight   float64
	}
	// UploadResp acknowledges an upload.
	UploadResp struct{ OK bool }

	// CompleteReq polls round completeness.
	CompleteReq struct{ Round int }
	// CompleteResp reports it. Abandoned (added with the round lifecycle;
	// gob keeps old peers compatible) flags a round past its deadline
	// below quorum, so pollers skip it instead of waiting forever.
	CompleteResp struct {
		Complete  bool
		Abandoned bool
	}

	// HeartbeatReq is a party's lightweight liveness signal.
	HeartbeatReq struct{ PartyID string }
	// HeartbeatResp acknowledges it; Rejoined reports that the heartbeat
	// readmitted a previously evicted party.
	HeartbeatResp struct {
		OK       bool
		Rejoined bool
	}

	// AggregateReq instructs a follower to fuse a round (sent by the
	// initiator's sync protocol).
	AggregateReq struct{ Round int }
	// AggregateResp acknowledges fusion.
	AggregateResp struct{ OK bool }

	// DownloadReq fetches the aggregated fragment.
	DownloadReq struct {
		Round   int
		PartyID string
	}
	// DownloadResp carries it.
	DownloadResp struct{ Fragment []float64 }
)

// The fragment-bearing messages ride transport's fixed-layout binary
// codec instead of gob: they are the data plane, exchanged by every party
// on every round. All other messages above (the control plane) stay gob.

// AppendWire implements transport.WireAppender.
func (r UploadReq) AppendWire(dst []byte) ([]byte, error) {
	return transport.AppendFragment(dst, &transport.Fragment{
		Round: r.Round, Index: r.Frag, PartyID: r.PartyID,
		Weight: r.Weight, Values: tensor.Vector(r.Fragment),
	})
}

// DecodeWire implements transport.WireDecoder. The fragment lands in a
// pooled tensor buffer (see transport.DecodeFragment).
func (r *UploadReq) DecodeWire(data []byte) error {
	var f transport.Fragment
	if err := transport.DecodeFragment(data, &f); err != nil {
		return err
	}
	r.Round, r.Frag, r.PartyID, r.Weight, r.Fragment = f.Round, f.Index, f.PartyID, f.Weight, f.Values
	return nil
}

// AppendWire implements transport.WireAppender.
func (r DownloadResp) AppendWire(dst []byte) ([]byte, error) {
	return transport.AppendFragment(dst, &transport.Fragment{Values: tensor.Vector(r.Fragment)})
}

// DecodeWire implements transport.WireDecoder.
func (r *DownloadResp) DecodeWire(data []byte) error {
	var f transport.Fragment
	if err := transport.DecodeFragment(data, &f); err != nil {
		return err
	}
	r.Fragment = f.Values
	return nil
}

// ServeAggregator binds an AggregatorNode's protocol onto an RPC server.
func ServeAggregator(node *AggregatorNode, srv *transport.Server) {
	transport.HandleTyped(srv, MethodChallenge, func(r ChallengeReq) (ChallengeResp, error) {
		sig, err := node.SignChallenge(r.Nonce)
		if err != nil {
			return ChallengeResp{}, err
		}
		return ChallengeResp{Sig: sig}, nil
	})
	transport.HandleTyped(srv, MethodRegister, func(r RegisterReq) (RegisterResp, error) {
		if r.PartyID == "" {
			return RegisterResp{}, errors.New("empty party ID")
		}
		node.Register(r.PartyID)
		return RegisterResp{OK: true}, nil
	})
	transport.HandleTyped(srv, MethodUpload, func(r UploadReq) (UploadResp, error) {
		// The decoded fragment was materialized for this request, so the
		// node takes ownership instead of paying a defensive clone.
		if err := node.UploadOwned(r.Round, r.PartyID, tensor.Vector(r.Fragment), r.Weight); err != nil {
			return UploadResp{}, err
		}
		return UploadResp{OK: true}, nil
	})
	transport.HandleTyped(srv, MethodComplete, func(r CompleteReq) (CompleteResp, error) {
		done, abandoned := node.RoundStatus(r.Round)
		return CompleteResp{Complete: done, Abandoned: abandoned}, nil
	})
	transport.HandleTyped(srv, MethodHeartbeat, func(r HeartbeatReq) (HeartbeatResp, error) {
		rejoined, err := node.Heartbeat(r.PartyID)
		if err != nil {
			return HeartbeatResp{}, err
		}
		return HeartbeatResp{OK: true, Rejoined: rejoined}, nil
	})
	transport.HandleTyped(srv, MethodAggregate, func(r AggregateReq) (AggregateResp, error) {
		if err := node.Aggregate(r.Round); err != nil {
			return AggregateResp{}, err
		}
		return AggregateResp{OK: true}, nil
	})
	transport.HandleTyped(srv, MethodDownload, func(r DownloadReq) (DownloadResp, error) {
		frag, err := node.Download(r.Round, r.PartyID)
		if err != nil {
			return DownloadResp{}, err
		}
		return DownloadResp{Fragment: frag}, nil
	})
}

// AggregatorClient is the party-side handle to one remote aggregator. All
// methods take a context whose deadline bounds the RPC; the underlying
// transport.Client multiplexes concurrent calls, so one AggregatorClient
// is safe to share across the fan-out goroutines of a Fleet.
//
// With Redial set, a connection-level failure (crashed/restarted
// aggregator, severed link) is repaired transparently: the next call
// re-dials and proceeds on a fresh connection. Application-level retries
// stay with the caller — combined with idempotent uploads they make a
// party's round loop safe to re-drive after any ambiguous failure.
type AggregatorClient struct {
	ID string
	C  *transport.Client

	// Redial, when non-nil, re-establishes the connection after the
	// current one fails (or when C starts nil). It is called with the
	// in-flight call's context.
	Redial func(ctx context.Context) (net.Conn, error)

	mu sync.Mutex // guards C swaps during redial
}

// client returns a healthy transport client, re-dialing if the previous
// connection died and a Redial function is configured.
func (a *AggregatorClient) client(ctx context.Context) (*transport.Client, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.C != nil && a.C.Err() == nil {
		return a.C, nil
	}
	if a.Redial == nil {
		if a.C == nil {
			return nil, fmt.Errorf("core: aggregator %s: no connection", a.ID)
		}
		return a.C, nil // sticky error surfaces in the call
	}
	//lint:ignore lockregion redial deliberately serializes callers: the shared connection is dead, so every concurrent call needs the one fresh conn this dial produces
	conn, err := a.Redial(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: redialing %s: %w", a.ID, err)
	}
	if a.C != nil {
		_ = a.C.Close() // the old connection already failed; its close error is noise
	}
	a.C = transport.NewClient(conn)
	return a.C, nil
}

func callAgg[Req, Resp any](ctx context.Context, a *AggregatorClient, method string, req Req) (Resp, error) {
	c, err := a.client(ctx)
	if err != nil {
		var zero Resp
		return zero, err
	}
	return transport.CallTypedContext[Req, Resp](ctx, c, method, req)
}

// Stats exposes the current connection's transport counters.
func (a *AggregatorClient) Stats() transport.StatsSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.C == nil {
		return transport.StatsSnapshot{}
	}
	return a.C.Stats().Snapshot()
}

// Challenge runs the Phase II nonce exchange.
func (a *AggregatorClient) Challenge(ctx context.Context, nonce []byte) ([]byte, error) {
	resp, err := callAgg[ChallengeReq, ChallengeResp](ctx, a, MethodChallenge, ChallengeReq{Nonce: nonce})
	if err != nil {
		return nil, fmt.Errorf("core: challenge %s: %w", a.ID, err)
	}
	return resp.Sig, nil
}

// Register admits the party at this aggregator.
func (a *AggregatorClient) Register(ctx context.Context, partyID string) error {
	_, err := callAgg[RegisterReq, RegisterResp](ctx, a, MethodRegister, RegisterReq{PartyID: partyID})
	if err != nil {
		return fmt.Errorf("core: register at %s: %w", a.ID, err)
	}
	return nil
}

// Upload sends a transformed fragment. The server side is idempotent for
// identical retries, so re-sending after an ambiguous failure is safe.
func (a *AggregatorClient) Upload(ctx context.Context, round int, partyID string, frag tensor.Vector, weight float64) error {
	return a.UploadFrag(ctx, round, partyID, frag, 0, weight)
}

// UploadFrag is Upload carrying the fragment (partition) index in the
// wire header — Fleet.UploadAll uses it so journals and traces can tell
// which partition a payload belongs to.
func (a *AggregatorClient) UploadFrag(ctx context.Context, round int, partyID string, frag tensor.Vector, index int, weight float64) error {
	_, err := callAgg[UploadReq, UploadResp](ctx, a, MethodUpload, UploadReq{
		Round: round, PartyID: partyID, Frag: index, Fragment: frag, Weight: weight,
	})
	if err != nil {
		return fmt.Errorf("core: upload to %s: %w", a.ID, err)
	}
	return nil
}

// Complete polls whether the round is ready to fuse.
func (a *AggregatorClient) Complete(ctx context.Context, round int) (bool, error) {
	done, _, err := a.CompleteStatus(ctx, round)
	return done, err
}

// CompleteStatus is Complete plus the round's abandoned flag, so sync
// loops can skip a round the aggregator gave up on instead of polling it
// until their deadline.
func (a *AggregatorClient) CompleteStatus(ctx context.Context, round int) (complete, abandoned bool, err error) {
	resp, err := callAgg[CompleteReq, CompleteResp](ctx, a, MethodComplete, CompleteReq{Round: round})
	if err != nil {
		return false, false, err
	}
	return resp.Complete, resp.Abandoned, nil
}

// Heartbeat sends a liveness signal; rejoined reports that this heartbeat
// readmitted the (previously evicted) party.
func (a *AggregatorClient) Heartbeat(ctx context.Context, partyID string) (rejoined bool, err error) {
	resp, err := callAgg[HeartbeatReq, HeartbeatResp](ctx, a, MethodHeartbeat, HeartbeatReq{PartyID: partyID})
	if err != nil {
		return false, fmt.Errorf("core: heartbeat to %s: %w", a.ID, err)
	}
	return resp.Rejoined, nil
}

// Aggregate instructs the aggregator to fuse a round (idempotent on the
// server, so re-driving sync after a restart is safe).
func (a *AggregatorClient) Aggregate(ctx context.Context, round int) error {
	_, err := callAgg[AggregateReq, AggregateResp](ctx, a, MethodAggregate, AggregateReq{Round: round})
	if err != nil {
		return fmt.Errorf("core: aggregate at %s: %w", a.ID, err)
	}
	return nil
}

// Download fetches the aggregated fragment.
func (a *AggregatorClient) Download(ctx context.Context, round int, partyID string) (tensor.Vector, error) {
	resp, err := callAgg[DownloadReq, DownloadResp](ctx, a, MethodDownload, DownloadReq{
		Round: round, PartyID: partyID,
	})
	if err != nil {
		return nil, fmt.Errorf("core: download from %s: %w", a.ID, err)
	}
	return resp.Fragment, nil
}

// ErrVerificationFailed marks a Phase II *cryptographic* rejection — an
// aggregator that answered but could not prove token possession. Fan-out
// layers must never tolerate it under quorum: a connectivity failure is an
// availability problem, a verification failure is an adversary.
var ErrVerificationFailed = errors.New("core: aggregator failed Phase II verification")

// VerifyAndRegister performs the party-side Phase II against one remote
// aggregator: nonce challenge, signature verification against the AP's
// token public key, then registration. The context deadline bounds each
// RPC, so a dead or stalled endpoint fails fast instead of hanging the
// party.
func VerifyAndRegister(ctx context.Context, a *AggregatorClient, tokenPubKey []byte, partyID string,
	newNonce func() ([]byte, error), verify func(pub, nonce, sig []byte) error) error {
	nonce, err := newNonce()
	if err != nil {
		return err
	}
	sig, err := a.Challenge(ctx, nonce)
	if err != nil {
		return err
	}
	if err := verify(tokenPubKey, nonce, sig); err != nil {
		return fmt.Errorf("%w: %s: %w", ErrVerificationFailed, a.ID, err)
	}
	return a.Register(ctx, partyID)
}
