package core

import (
	"testing"
)

// Session-level dropout: with quorum 1 of 2, one party missing every odd
// round must not stall training.
func TestSessionWithFlakyParty(t *testing.T) {
	s := newTinySession(t, 2, true)
	s.Opts.Quorum = 1
	s.Availability = func(partyID string, round int) bool {
		return partyID != "B" || round%2 == 0
	}
	hist, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != s.Cfg.Rounds {
		t.Fatalf("rounds = %d", len(hist.Rounds))
	}
}

// All parties absent in a round is an error, not a hang.
func TestSessionAllPartiesAbsent(t *testing.T) {
	s := newTinySession(t, 2, true)
	s.Opts.Quorum = 1
	s.Availability = func(string, int) bool { return false }
	if _, err := s.Run(); err == nil {
		t.Fatal("round with zero parties accepted")
	}
}
