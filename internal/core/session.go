package core

import (
	"errors"
	"fmt"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/journal"
	"deta/internal/nn"
	"deta/internal/sev"
	"deta/internal/tensor"
)

// OVMF is the firmware image all genuine aggregator CVMs boot in this
// reproduction; the AP expects its measurement.
var OVMF = []byte("deta-aggregator-firmware-v1: attested aggregation service build")

// Options configures a DeTA deployment.
type Options struct {
	// NumAggregators is K, the decentralization factor (the paper deploys
	// three).
	NumAggregators int
	// Proportions[j] is the fraction of parameters mapped to aggregator j;
	// nil means equal split.
	Proportions []float64
	// Shuffle enables dynamic parameter-level shuffling (on in a full DeTA
	// deployment; the security analysis also evaluates partition-only).
	Shuffle bool
	// MapperSeed seeds the shared model mapper; all parties must agree.
	MapperSeed []byte
	// PermKeyBytes sizes the broker's permutation key (default 32).
	PermKeyBytes int
	// Quorum, when positive, lets each aggregator fuse a round once that
	// many parties have uploaded, tolerating stragglers and dropouts
	// (paper §8.2 contrasts this flexibility with SMC cohort formation).
	Quorum int
	// AggQuorum, when positive, is the minimum number of *aggregators* a
	// networked party's fan-out must reach for a round to proceed; a dead
	// or stalled aggregator beyond the quorum degrades the round (missing
	// fragments fall back to the party's own update) instead of hanging
	// it. 0 requires all K. Consumed by Fleet (NewFleet); in-process
	// sessions have no failing aggregators.
	AggQuorum int
	// CallTimeout bounds each party→aggregator RPC in networked
	// deployments (0 = no per-call deadline). Consumed by Fleet.
	CallTimeout time.Duration
	// StateDir, when non-empty, gives every aggregator a durable round
	// journal under StateDir/<agg-id>: each accepted mutation is
	// committed to the write-ahead log before it is acknowledged, and
	// Setup recovers any existing journal so a restarted deployment
	// resumes its rounds instead of losing them.
	StateDir string
	// JournalNoSync skips the per-record fsync (process-crash durability
	// only; for tests and benchmarks).
	JournalNoSync bool
	// RetainRounds, when positive, evicts aggregated rounds older than N
	// from each aggregator's memory (the journal stays the durable
	// copy), and Run skips its explicit per-round DropRound in favor of
	// that policy.
	RetainRounds int
	// RoundDeadline, when positive, arms the per-round lifecycle state
	// machine on every aggregator: a round still below quorum after this
	// long is abandoned (typed ErrRoundAbandoned) instead of waiting
	// forever, and a round with quorum seals at the deadline without its
	// stragglers. See AggregatorNode.SetLifecycle.
	RoundDeadline time.Duration
	// RoundGrace is the post-quorum straggler window: once quorum is
	// reached, the round seals after min(RoundGrace, remaining deadline),
	// or immediately when every registered party has uploaded. Only
	// meaningful with RoundDeadline set.
	RoundGrace time.Duration
}

func (o *Options) defaults() {
	if o.NumAggregators == 0 {
		o.NumAggregators = 3
	}
	if o.Proportions == nil {
		o.Proportions = EqualProportions(o.NumAggregators)
	}
	if o.PermKeyBytes == 0 {
		o.PermKeyBytes = 32
	}
	if o.MapperSeed == nil {
		o.MapperSeed = []byte("deta-default-mapper-seed")
	}
}

// Session is the end-to-end in-process DeTA deployment: SEV-protected
// aggregator nodes, the attestation proxy, the key broker, and the party
// fleet. It mirrors fl.Session so experiments can compare the two directly.
type Session struct {
	Cfg      fl.Config
	Opts     Options
	Build    func() *nn.Network
	Parties  []*fl.Party
	Test     *dataset.Dataset
	InitSeed []byte
	// NewAlgorithm constructs one algorithm instance per aggregator (some
	// algorithms, like Paillier fusion, carry per-instance state).
	NewAlgorithm func() agg.Algorithm

	// Populated by Setup.
	Nodes    []*AggregatorNode
	Mapper   *Mapper
	Shuffler *Shuffler
	Broker   *attest.KeyBroker
	Proxy    *attest.Proxy

	// Clock is the session's time source (nil = SystemClock). It is
	// injected into every aggregator node and used for the session's own
	// latency accounting, so deadline behavior and timing metrics are
	// testable under a FakeClock without sleeping.
	Clock Clock

	// Availability, when non-nil, reports whether a party participates in
	// a round; absent parties neither train nor upload that round (they
	// still receive the aggregated model). Requires Opts.Quorum low
	// enough for the remaining parties to complete rounds.
	Availability func(partyID string, round int) bool

	// SetupLatency records the one-time trust-bootstrap cost (Phase I +
	// Phase II + registration), reported separately from training latency.
	SetupLatency time.Duration

	// FinalParams holds the global model parameters after Run completes.
	FinalParams tensor.Vector
}

// Setup performs the full trust bootstrap of Figure 1 steps 1-4:
//
//  1. launch one SEV CVM per aggregator and attest each via the AP,
//  2. provision authentication tokens into the CVMs,
//  3. have every party verify every aggregator (challenge-response) and
//     register,
//  4. distribute the permutation key and build the shared model mapper.
//
// clk returns the session's time source (SystemClock when none injected).
func (s *Session) clk() Clock {
	if s.Clock != nil {
		return s.Clock
	}
	return SystemClock
}

func (s *Session) Setup() error {
	start := s.clk().Now()
	s.Opts.defaults()
	if err := s.Cfg.Validate(); err != nil {
		return err
	}
	if len(s.Parties) == 0 {
		return errors.New("core: no parties")
	}
	if s.NewAlgorithm == nil {
		return errors.New("core: NewAlgorithm is required")
	}

	// Vendor infrastructure and the party-controlled AP.
	vendor, err := sev.NewVendor()
	if err != nil {
		return err
	}
	s.Proxy = attest.NewProxy(vendor.RAS(), OVMF)

	// Phase I: launch and provision every aggregator.
	s.Nodes = make([]*AggregatorNode, s.Opts.NumAggregators)
	for j := 0; j < s.Opts.NumAggregators; j++ {
		// Each aggregator may run on its own physical platform
		// (geo-distributed per §4.1).
		platform, err := sev.NewPlatform(fmt.Sprintf("host-%d", j+1), vendor)
		if err != nil {
			return err
		}
		cvm, err := platform.LaunchCVM(OVMF)
		if err != nil {
			return err
		}
		id := fmt.Sprintf("agg-%d", j+1)
		if _, err := s.Proxy.Provision(id, platform, cvm); err != nil {
			return fmt.Errorf("core: provisioning %s: %w", id, err)
		}
		var node *AggregatorNode
		if s.Opts.StateDir != "" {
			node, _, err = RecoverAggregatorNode(id, s.NewAlgorithm(), cvm,
				StateDirFor(s.Opts.StateDir, id), journal.Options{NoSync: s.Opts.JournalNoSync})
		} else {
			node, err = NewAggregatorNode(id, s.NewAlgorithm(), cvm)
		}
		if err != nil {
			return err
		}
		if s.Opts.RetainRounds > 0 {
			node.SetRetention(s.Opts.RetainRounds)
		}
		if s.Clock != nil {
			node.SetClock(s.Clock)
		}
		if s.Opts.RoundDeadline > 0 {
			node.SetLifecycle(s.Opts.RoundDeadline, s.Opts.RoundGrace)
		}
		s.Nodes[j] = node
	}

	// Phase II: every party verifies every aggregator, then registers.
	for _, p := range s.Parties {
		for _, node := range s.Nodes {
			pub, err := s.Proxy.TokenPubKey(node.ID)
			if err != nil {
				return err
			}
			nonce, err := attest.NewNonce()
			if err != nil {
				return err
			}
			sig, err := node.SignChallenge(nonce)
			if err != nil {
				return err
			}
			if err := attest.VerifyChallenge(pub, nonce, sig); err != nil {
				return fmt.Errorf("core: party %s rejects %s: %w", p.ID, node.ID, err)
			}
			node.Register(p.ID)
		}
	}

	// Key broker: permutation key for all parties.
	s.Broker, err = attest.NewKeyBroker(s.Opts.PermKeyBytes)
	if err != nil {
		return err
	}
	for _, p := range s.Parties {
		s.Broker.RegisterParty(p.ID)
	}
	permKey, err := s.Broker.PermutationKey(s.Parties[0].ID)
	if err != nil {
		return err
	}
	s.Shuffler, err = NewShuffler(permKey)
	if err != nil {
		return err
	}

	if s.Opts.Quorum > 0 {
		for _, node := range s.Nodes {
			node.SetQuorum(s.Opts.Quorum)
		}
	}

	// Shared model mapper, agreed by all parties before training.
	model := s.Build()
	s.Mapper, err = NewMapper(model.NumParams(), s.Opts.Proportions, s.Opts.MapperSeed)
	if err != nil {
		return err
	}
	s.SetupLatency = s.clk().Now().Sub(start)
	return nil
}

// Run executes training with the DeTA life cycle and returns the history.
// Setup is invoked automatically if it has not been run.
func (s *Session) Run() (*fl.History, error) {
	if s.Nodes == nil {
		if err := s.Setup(); err != nil {
			return nil, err
		}
	}
	net := s.Build()
	net.Init(s.InitSeed)
	global := net.Params()

	hist := &fl.History{System: "DETA"}
	var cum time.Duration
	for round := 1; round <= s.Cfg.Rounds; round++ {
		start := s.clk().Now()
		roundID, err := s.Broker.RoundID(round)
		if err != nil {
			return nil, err
		}
		// Initiator notifies parties to start local training; each party
		// transforms its update and uploads fragments to all aggregators.
		var trainLoss float64
		participants := 0
		for _, p := range s.Parties {
			if s.Availability != nil && !s.Availability(p.ID, round) {
				continue // dropped out this round
			}
			participants++
			update, loss, err := p.LocalUpdate(global, round)
			if err != nil {
				return nil, err
			}
			trainLoss += loss
			frags, err := Transform(s.Mapper, s.Shuffler, update, roundID, s.Opts.Shuffle)
			if err != nil {
				return nil, err
			}
			// Fan the K fragment uploads out concurrently, as a
			// networked party would (the aggregators are independent
			// services).
			var ug Group
			for j, node := range s.Nodes {
				j, node := j, node
				ug.Go(func() error {
					return node.Upload(round, p.ID, frags[j], float64(p.NumExamples()))
				})
			}
			if err := ug.Wait(); err != nil {
				return nil, err
			}
		}
		if participants == 0 {
			return nil, fmt.Errorf("core: round %d has no available parties", round)
		}
		trainLoss /= float64(participants)

		// Initiator tells followers to aggregate their fragments. The
		// aggregators are independent; run them concurrently as the
		// deployment would.
		if err := s.aggregateAll(round); err != nil {
			return nil, err
		}

		// Parties download the aggregated fragments (in parallel — one
		// per aggregator), reverse the transformation, and merge.
		frags := make([]tensor.Vector, len(s.Nodes))
		var dg Group
		for j, node := range s.Nodes {
			j, node := j, node
			dg.Go(func() error {
				var derr error
				frags[j], derr = node.Download(round, s.Parties[0].ID)
				return derr
			})
		}
		if err := dg.Wait(); err != nil {
			return nil, err
		}
		fused, err := InverseTransform(s.Mapper, s.Shuffler, frags, roundID, s.Opts.Shuffle)
		if err != nil {
			return nil, err
		}
		global = s.applyUpdate(global, fused)
		if s.Opts.RetainRounds <= 0 {
			// No retention policy: free each round eagerly as before.
			for _, node := range s.Nodes {
				node.DropRound(round)
			}
		}
		cum += s.clk().Now().Sub(start)

		m := fl.RoundMetrics{Round: round, TrainLoss: trainLoss, Cumulative: cum}
		if s.Test != nil {
			m.TestLoss, m.Accuracy, err = fl.Evaluate(s.Build, global, s.Test)
			if err != nil {
				return nil, err
			}
		}
		hist.Rounds = append(hist.Rounds, m)
	}
	s.FinalParams = global
	return hist, nil
}

// aggregateAll runs the initiator/follower synchronization: the initiator
// (node 0) and the followers aggregate their rounds concurrently.
func (s *Session) aggregateAll(round int) error {
	var g Group
	for _, node := range s.Nodes {
		node := node
		g.Go(func() error { return node.Aggregate(round) })
	}
	return g.Wait()
}

func (s *Session) applyUpdate(global, fused tensor.Vector) tensor.Vector {
	if s.Cfg.Mode == fl.FedSGD {
		out := global.Clone()
		if err := tensor.AXPY(-s.Cfg.LR, out, fused); err != nil {
			panic(err) // lengths validated by the mapper
		}
		return out
	}
	return fused
}
