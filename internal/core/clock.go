package core

import (
	"sync"
	"time"
)

// Clock abstracts time for the round-lifecycle subsystem. Production code
// runs on SystemClock; tests inject a FakeClock so every deadline, grace
// window, and liveness threshold is exercised deterministically — no
// time.Sleep-driven assertions anywhere.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock is the wall-clock Clock every component defaults to when no
// clock is injected.
var SystemClock Clock = systemClock{}

// FakeClock is a deterministic Clock for tests: time moves only when
// Advance is called (or, with SetAutoAdvance, by a fixed step on every Now
// read, which makes latency accounting observable without sleeping).
// Safe for concurrent use.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	step    time.Duration
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a FakeClock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake time, first applying the auto-advance step if one
// is configured.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.step > 0 {
		c.advanceLocked(c.step)
	}
	return c.now
}

// After returns a channel that fires when the fake time passes now+d via
// Advance (immediately for d <= 0).
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the fake time forward by d, firing any After waiters whose
// deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(d)
}

// SetAutoAdvance makes every Now call advance the clock by step first
// (0 disables). Latency accounting measured as Now()-Now() then reads as
// exactly step per interval — deterministic, sleep-free.
func (c *FakeClock) SetAutoAdvance(step time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.step = step
}

func (c *FakeClock) advanceLocked(d time.Duration) {
	c.now = c.now.Add(d)
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now // buffered; never blocks
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}
