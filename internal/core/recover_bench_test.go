package core

import (
	"testing"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/journal"
	"deta/internal/sev"
	"deta/internal/tensor"
)

// benchUploadNode builds a provisioned aggregator with the given journal
// mode: "none" (in-memory only), "nosync" (WAL without per-record fsync),
// or "sync" (full fsync-on-commit, the -state-dir default).
func benchUploadNode(b *testing.B, mode string) *AggregatorNode {
	b.Helper()
	vendor, err := sev.NewVendor()
	if err != nil {
		b.Fatal(err)
	}
	proxy := attest.NewProxy(vendor.RAS(), OVMF)
	platform, err := sev.NewPlatform("host/agg-bench", vendor)
	if err != nil {
		b.Fatal(err)
	}
	cvm, err := platform.LaunchCVM(OVMF)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := proxy.Provision("agg-bench", platform, cvm); err != nil {
		b.Fatal(err)
	}
	var node *AggregatorNode
	switch mode {
	case "none":
		node, err = NewAggregatorNode("agg-bench", agg.IterativeAverage{}, cvm)
	case "nosync":
		node, _, err = RecoverAggregatorNode("agg-bench", agg.IterativeAverage{}, cvm, b.TempDir(), journal.Options{NoSync: true})
	case "sync":
		node, _, err = RecoverAggregatorNode("agg-bench", agg.IterativeAverage{}, cvm, b.TempDir(), journal.Options{})
	default:
		b.Fatalf("unknown mode %q", mode)
	}
	if err != nil {
		b.Fatal(err)
	}
	node.Register("P1")
	return node
}

func benchUpload(b *testing.B, mode string) {
	node := benchUploadNode(b, mode)
	defer node.CloseJournal()
	frag := make(tensor.Vector, 4096)
	for i := range frag {
		frag[i] = float64(i) * 0.001
	}
	b.SetBytes(int64(len(frag) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh round per iteration: re-uploading the same round would
		// hit the idempotent fast path instead of the commit path.
		if err := node.Upload(i+1, "P1", frag, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpload quantifies the durability tax on the hot path: the same
// 4096-parameter fragment upload with no journal, a no-fsync journal, and
// the fsync-on-commit journal. EXPERIMENTS.md records the numbers.
func BenchmarkUpload(b *testing.B) {
	b.Run("no-journal", func(b *testing.B) { benchUpload(b, "none") })
	b.Run("journal-nosync", func(b *testing.B) { benchUpload(b, "nosync") })
	b.Run("journal-fsync", func(b *testing.B) { benchUpload(b, "sync") })
}
