package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/journal"
	"deta/internal/sev"
	"deta/internal/tensor"
	"deta/internal/transport"
)

// provisionCVM launches and provisions one CVM the way Session.Setup does,
// returning it so a "restarted process" can build a fresh node against the
// same journal.
func provisionCVM(t *testing.T, proxy *attest.Proxy, vendor *sev.Vendor, id string) *sev.CVM {
	t.Helper()
	platform, err := sev.NewPlatform("host/"+id, vendor)
	if err != nil {
		t.Fatal(err)
	}
	cvm, err := platform.LaunchCVM(OVMF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Provision(id, platform, cvm); err != nil {
		t.Fatal(err)
	}
	return cvm
}

func testTrust(t *testing.T) (*attest.Proxy, *sev.Vendor) {
	t.Helper()
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	return attest.NewProxy(vendor.RAS(), OVMF), vendor
}

// Satellite regression: an identical re-upload (the retry after an
// ambiguous RPC failure) succeeds silently; only a conflicting fragment —
// or the same fragment with a different weight — is a duplicate error.
func TestUploadIdempotentRetry(t *testing.T) {
	proxy, vendor := testTrust(t)
	cvm := provisionCVM(t, proxy, vendor, "agg-idem")
	node, err := NewAggregatorNode("agg-idem", agg.IterativeAverage{}, cvm)
	if err != nil {
		t.Fatal(err)
	}
	node.Register("P1")
	frag := tensor.Vector{1.5, -2.25, 3}
	if err := node.Upload(1, "P1", frag, 4); err != nil {
		t.Fatal(err)
	}
	// Identical retry: success, and the stored fragment is unchanged.
	if err := node.Upload(1, "P1", frag.Clone(), 4); err != nil {
		t.Fatalf("identical re-upload rejected: %v", err)
	}
	if got := node.LeakRoundFragments(1)["P1"]; !fragEqual(got, frag) {
		t.Fatalf("retry mutated stored fragment: %v", got)
	}
	// Conflicting fragment: rejected.
	if err := node.Upload(1, "P1", tensor.Vector{9, 9, 9}, 4); !errors.Is(err, ErrDuplicateUpload) {
		t.Fatalf("conflicting re-upload = %v, want ErrDuplicateUpload", err)
	}
	// Same fragment, different weight: also a conflict.
	if err := node.Upload(1, "P1", frag, 5); !errors.Is(err, ErrDuplicateUpload) {
		t.Fatalf("weight-conflicting re-upload = %v, want ErrDuplicateUpload", err)
	}
}

func TestAggregateIdempotent(t *testing.T) {
	proxy, vendor := testTrust(t)
	cvm := provisionCVM(t, proxy, vendor, "agg-re")
	node, err := NewAggregatorNode("agg-re", agg.IterativeAverage{}, cvm)
	if err != nil {
		t.Fatal(err)
	}
	node.Register("P1")
	if err := node.Upload(1, "P1", tensor.Vector{2, 4}, 1); err != nil {
		t.Fatal(err)
	}
	if err := node.Aggregate(1); err != nil {
		t.Fatal(err)
	}
	first, err := node.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	// A re-driven sync (initiator restarted) must be a no-op.
	if err := node.Aggregate(1); err != nil {
		t.Fatalf("re-aggregate: %v", err)
	}
	second, err := node.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if !fragEqual(first, second) {
		t.Fatalf("re-aggregate changed the fused vector: %v vs %v", first, second)
	}
}

// The tentpole invariant: everything an aggregator acknowledged —
// registrations, fragments, the fused vector — survives a crash/restart
// via the journal, so parties can re-download after recovery.
func TestRecoverAggregatorNode(t *testing.T) {
	proxy, vendor := testTrust(t)
	dir := t.TempDir()

	cvm := provisionCVM(t, proxy, vendor, "agg-r")
	node, info, err := RecoverAggregatorNode("agg-r", agg.IterativeAverage{}, cvm, dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Parties != 0 || info.Rounds != 0 {
		t.Fatalf("fresh journal recovered state: %+v", info)
	}
	node.Register("P1")
	node.Register("P2")
	node.SetQuorum(2)
	if err := node.Upload(1, "P1", tensor.Vector{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	if err := node.Upload(1, "P2", tensor.Vector{3, 4}, 3); err != nil {
		t.Fatal(err)
	}
	if err := node.Aggregate(1); err != nil {
		t.Fatal(err)
	}
	wantFused, err := node.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	// Round 2 in flight: one of two uploads when the crash hits.
	if err := node.Upload(2, "P1", tensor.Vector{5, 6}, 1); err != nil {
		t.Fatal(err)
	}

	// "Crash": drop the node, restart from the journal with a freshly
	// attested CVM (trust state is re-established by Phase I, round state
	// by the journal).
	node.CloseJournal()
	cvm2 := provisionCVM(t, proxy, vendor, "agg-r2")
	node2, info, err := RecoverAggregatorNode("agg-r", agg.IterativeAverage{}, cvm2, dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Parties != 2 || info.Rounds != 2 || info.Aggregated != 1 || info.LastAggregated != 1 {
		t.Fatalf("recovery info = %+v", info)
	}
	if got := node2.NumParties(); got != 2 {
		t.Fatalf("recovered %d parties", got)
	}
	// The aggregated round is re-downloadable, bit-identical.
	got, err := node2.Download(1, "P2")
	if err != nil {
		t.Fatalf("download after recovery: %v", err)
	}
	if !fragEqual(got, wantFused) {
		t.Fatalf("recovered fused vector %v, want %v", got, wantFused)
	}
	// The in-flight round resumes: P1's fragment survived, P2 completes it.
	if node2.Complete(2) {
		t.Fatal("half-uploaded round reported complete after recovery")
	}
	if err := node2.Upload(2, "P1", tensor.Vector{5, 6}, 1); err != nil {
		t.Fatalf("identical re-upload after recovery: %v", err)
	}
	if err := node2.Upload(2, "P2", tensor.Vector{7, 8}, 1); err != nil {
		t.Fatal(err)
	}
	if err := node2.Aggregate(2); err != nil {
		t.Fatal(err)
	}
	if node2.LastAggregatedRound() != 2 {
		t.Fatalf("last aggregated = %d, want 2", node2.LastAggregatedRound())
	}
	node2.CloseJournal()
}

// Compaction must preserve recoverability while keeping the log short: a
// node that compacted (snapshot+truncate) recovers the same state, and the
// crash window between snapshot rename and log truncation (old records
// replayed on top of the snapshot that contains them) is harmless.
func TestRecoverAfterCompaction(t *testing.T) {
	proxy, vendor := testTrust(t)
	dir := t.TempDir()
	cvm := provisionCVM(t, proxy, vendor, "agg-c")
	node, _, err := RecoverAggregatorNode("agg-c", agg.IterativeAverage{}, cvm, dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	node.SetCompactEvery(8) // force frequent compaction
	node.Register("P1")
	const rounds = 20
	for r := 1; r <= rounds; r++ {
		if err := node.Upload(r, "P1", tensor.Vector{float64(r), float64(2 * r)}, 1); err != nil {
			t.Fatal(err)
		}
		if err := node.Aggregate(r); err != nil {
			t.Fatal(err)
		}
	}
	node.CloseJournal()

	// The log must have been truncated along the way.
	if fi, err := os.Stat(filepath.Join(dir, "snapshot.bin")); err != nil || fi.Size() == 0 {
		t.Fatalf("no compaction snapshot written: %v", err)
	}

	cvm2 := provisionCVM(t, proxy, vendor, "agg-c2")
	node2, info, err := RecoverAggregatorNode("agg-c", agg.IterativeAverage{}, cvm2, dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Rounds != rounds || info.Aggregated != rounds {
		t.Fatalf("recovered %d rounds (%d aggregated), want %d", info.Rounds, info.Aggregated, rounds)
	}
	for r := 1; r <= rounds; r++ {
		got, err := node2.Download(r, "P1")
		if err != nil {
			t.Fatalf("round %d after compacted recovery: %v", r, err)
		}
		if want := (tensor.Vector{float64(r), float64(2 * r)}); !fragEqual(got, want) {
			t.Fatalf("round %d = %v, want %v", r, got, want)
		}
	}
	node2.CloseJournal()
}

// A crash mid-append leaves a torn journal tail; the node must recover to
// the last committed record, flag it, and keep serving.
func TestRecoverTornJournalTail(t *testing.T) {
	proxy, vendor := testTrust(t)
	dir := t.TempDir()
	cvm := provisionCVM(t, proxy, vendor, "agg-t")
	node, _, err := RecoverAggregatorNode("agg-t", agg.IterativeAverage{}, cvm, dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	node.Register("P1")
	if err := node.Upload(1, "P1", tensor.Vector{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	node.CloseJournal()

	// Tear the tail: append half a garbage frame.
	logPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x02, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cvm2 := provisionCVM(t, proxy, vendor, "agg-t2")
	node2, info, err := RecoverAggregatorNode("agg-t", agg.IterativeAverage{}, cvm2, dir, journal.Options{})
	if err != nil {
		t.Fatalf("torn tail made recovery fail: %v", err)
	}
	if !info.TornTail {
		t.Fatal("torn tail not reported")
	}
	if got := node2.LeakRoundFragments(1)["P1"]; !fragEqual(got, tensor.Vector{1, 2}) {
		t.Fatalf("committed upload lost under torn tail: %v", got)
	}
	if err := node2.Upload(1, "P2", tensor.Vector{9, 9}, 1); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unexpected: %v", err) // P2 never registered; sanity that serving continues
	}
	node2.CloseJournal()
}

// Satellite: with a retention bound, the rounds map does not grow without
// bound over 100 rounds — and evicted rounds are still in the journal.
func TestRetentionBoundsMemoryOver100Rounds(t *testing.T) {
	proxy, vendor := testTrust(t)
	dir := t.TempDir()
	cvm := provisionCVM(t, proxy, vendor, "agg-m")
	node, _, err := RecoverAggregatorNode("agg-m", agg.IterativeAverage{}, cvm, dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const retain = 5
	node.SetRetention(retain)
	node.Register("P1")
	for r := 1; r <= 100; r++ {
		if err := node.Upload(r, "P1", tensor.Vector{float64(r)}, 1); err != nil {
			t.Fatal(err)
		}
		if err := node.Aggregate(r); err != nil {
			t.Fatal(err)
		}
		if held := node.RoundsHeld(); held > retain {
			t.Fatalf("round %d: %d rounds in memory, retention %d", r, held, retain)
		}
	}
	// Old rounds are gone from memory...
	if _, err := node.Download(1, "P1"); !errors.Is(err, ErrNotAggregated) {
		t.Fatalf("evicted round still in memory: %v", err)
	}
	// ...recent ones are not.
	if got, err := node.Download(100, "P1"); err != nil || !fragEqual(got, tensor.Vector{100}) {
		t.Fatalf("retained round: %v, %v", got, err)
	}
	node.CloseJournal()

	// Recovery replays to the same bounded state, not 100 rounds.
	cvm2 := provisionCVM(t, proxy, vendor, "agg-m2")
	node2, info, err := RecoverAggregatorNode("agg-m", agg.IterativeAverage{}, cvm2, dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Rounds > retain {
		t.Fatalf("recovery rebuilt %d rounds despite retention %d", info.Rounds, retain)
	}
	if node2.LastAggregatedRound() != 100 {
		t.Fatalf("last aggregated after recovery = %d", node2.LastAggregatedRound())
	}
	node2.CloseJournal()
}

// Session-level wiring: a StateDir session journals every aggregator and a
// retention bound keeps their memory flat across the run.
func TestSessionStateDirAndRetention(t *testing.T) {
	s := newTinySession(t, 2, true)
	s.Opts.StateDir = t.TempDir()
	s.Opts.JournalNoSync = true
	s.Opts.RetainRounds = 2
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, node := range s.Nodes {
		if node.JournalDir() == "" {
			t.Fatalf("aggregator %s has no journal", node.ID)
		}
		if held := node.RoundsHeld(); held > 2 {
			t.Fatalf("aggregator %s holds %d rounds, retention 2", node.ID, held)
		}
		if _, err := os.Stat(filepath.Join(node.JournalDir(), "wal.log")); err != nil {
			t.Fatalf("aggregator %s journal missing: %v", node.ID, err)
		}
	}
}

// Satellite: DownloadAll's backoff poll honors context cancellation — a
// cancelled party returns promptly instead of sleeping out its schedule.
func TestDownloadAllCancellationPrompt(t *testing.T) {
	proxy, vendor := testTrust(t)
	node := newProvisionedNode(t, proxy, vendor, "agg-cancel")
	node.Register("P1")
	// Never aggregated: DownloadAll will poll until cancelled.
	client := serveNode(t, node)
	fleet := &Fleet{
		Clients: []*AggregatorClient{client},
		Poll:    transport.Backoff{Initial: 50 * time.Millisecond, Max: 10 * time.Second},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := fleet.DownloadAll(ctx, 1, "P1", nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled DownloadAll succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v — poll not honoring ctx", elapsed)
	}
}

// DownloadAll's backoff must still deliver promptly once the round fuses.
func TestDownloadAllBackoffDelivers(t *testing.T) {
	proxy, vendor := testTrust(t)
	node := newProvisionedNode(t, proxy, vendor, "agg-bk")
	node.Register("P1")
	client := serveNode(t, node)
	fleet := &Fleet{Clients: []*AggregatorClient{client}}
	go func() {
		time.Sleep(20 * time.Millisecond)
		node.Upload(1, "P1", tensor.Vector{4, 8}, 1)
		node.Aggregate(1)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	frags, err := fleet.DownloadAll(ctx, 1, "P1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fragEqual(frags[0], tensor.Vector{4, 8}) {
		t.Fatalf("downloaded %v", frags[0])
	}
}

// A client with Redial configured survives its aggregator being killed and
// restarted on a fresh listener: the next call transparently reconnects.
func TestAggregatorClientRedial(t *testing.T) {
	proxy, vendor := testTrust(t)
	node := newProvisionedNode(t, proxy, vendor, "agg-rd")
	node.Register("P1")

	serve := func() (*transport.Server, *transport.MemListener) {
		srv := transport.NewServer()
		ServeAggregator(node, srv)
		ln := transport.NewMemListener()
		go srv.Serve(ln)
		return srv, ln
	}
	srv, ln := serve()
	var mu sync.Mutex
	currentLn := ln

	client := &AggregatorClient{
		ID: "agg-rd",
		Redial: func(context.Context) (net.Conn, error) {
			mu.Lock()
			defer mu.Unlock()
			return currentLn.Dial()
		},
	}
	ctx := context.Background()
	// First call dials lazily.
	if err := client.Upload(ctx, 1, "P1", tensor.Vector{1}, 1); err != nil {
		t.Fatal(err)
	}
	// Kill and restart the aggregator server.
	srv.Close()
	srv2, ln2 := serve()
	defer srv2.Close()
	mu.Lock()
	currentLn = ln2
	mu.Unlock()

	// The old connection is dead; the call may fail once while the sticky
	// error is discovered, then the redial path must succeed.
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = client.Upload(ctx, 1, "P1", tensor.Vector{1}, 1); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("upload after restart (with redial): %v", err)
	}
	client.C.Close()
}

// Regression: the compaction snapshot's slice-valued fields must not
// inherit Go's randomized map iteration order. Parties is built by ranging
// over the parties map; snapshotLocked must sort it so the bytes that
// reach the WAL are a pure function of node state.
func TestSnapshotPartiesSorted(t *testing.T) {
	proxy, vendor := testTrust(t)
	cvm := provisionCVM(t, proxy, vendor, "agg-snap")
	node, err := NewAggregatorNode("agg-snap", agg.IterativeAverage{}, cvm)
	if err != nil {
		t.Fatal(err)
	}
	// Enough parties that an unsorted map range is effectively guaranteed
	// to betray itself across repeated snapshots.
	for i := 0; i < 40; i++ {
		node.Register(fmt.Sprintf("P%02d", i))
	}
	node.mu.Lock()
	defer node.mu.Unlock()
	for trial := 0; trial < 5; trial++ {
		snap := node.snapshotLocked()
		if !sort.StringsAreSorted(snap.Parties) {
			t.Fatalf("trial %d: snapshot parties unsorted: %v", trial, snap.Parties)
		}
		if len(snap.Parties) != 40 {
			t.Fatalf("trial %d: %d parties, want 40", trial, len(snap.Parties))
		}
	}
}

// Regression for the WAL-before-ack ordering in upload (pinned by the
// waldisc analyzer): a failed durable append must leave no trace in
// memory. In particular the first upload of a new round must not create
// the round ahead of the journal write — the old code inserted it first
// and rolled it back on error, exactly the mutate-before-append shape
// waldisc rejects.
func TestUploadJournalFailureLeavesNoPhantomRound(t *testing.T) {
	proxy, vendor := testTrust(t)
	cvm := provisionCVM(t, proxy, vendor, "agg-wal")
	dir := t.TempDir()
	node, _, err := RecoverAggregatorNode("agg-wal", agg.IterativeAverage{}, cvm, dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	node.Register("P1")
	node.Register("P2")
	if err := node.Upload(1, "P1", tensor.Vector{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	// Kill the journal out from under the node: every later durable
	// append fails with journal.ErrClosed, as a full disk or torn-away
	// volume would fail it.
	node.mu.Lock()
	j := node.journal
	node.mu.Unlock()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// First upload of a NEW round: the error must surface and no phantom
	// round may appear.
	if err := node.Upload(2, "P1", tensor.Vector{3, 4}, 1); !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("upload to new round with dead journal: err = %v, want journal.ErrClosed", err)
	}
	node.mu.Lock()
	_, phantom := node.rounds[2]
	node.mu.Unlock()
	if phantom {
		t.Fatal("failed journal append left a phantom round 2 in memory")
	}

	// Upload into the EXISTING round: the fragment must not be stored —
	// an acknowledged-in-memory fragment the journal never saw would
	// vanish on recovery.
	if err := node.Upload(1, "P2", tensor.Vector{9, 9}, 1); !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("upload to existing round with dead journal: err = %v, want journal.ErrClosed", err)
	}
	node.mu.Lock()
	_, stored := node.rounds[1].fragments["P2"]
	node.mu.Unlock()
	if stored {
		t.Fatal("failed journal append left P2's fragment in memory")
	}
}
