package core

import (
	"fmt"
	"sync"

	"deta/internal/parallel"
	"deta/internal/rng"
	"deta/internal/tensor"
)

// Shuffler implements the dynamic parameter-level shuffling of §4.2. Each
// partitioned fragment is permuted with a permutation seeded by the
// combination of the broker-held permutation key and the per-round training
// identifier, plus the partition index for domain separation. The
// permutation therefore changes every round but is identical across
// parties, and unrecoverable without the key.
type Shuffler struct {
	permKey []byte

	// Permutation cache: deriving a permutation costs a full keyed-stream
	// Fisher–Yates pass, and a party needs the identical permutation twice
	// per round (Transform on upload, InverseTransform on download).
	// Cached perms are shared read-only slices — holders must never write
	// through them. The map is bounded: at capacity it is cleared
	// wholesale, which is correct because rounds advance monotonically and
	// stale entries would never be hit again.
	mu    sync.Mutex
	cache map[permCacheKey][]int
}

// permCacheKey includes the fragment length so a caller shuffling a
// different-sized vector under the same (round, partition) can never be
// served a mismatched permutation.
type permCacheKey struct {
	round     string
	partition int
	n         int
}

// permCacheCap bounds the cache; K partitions × a few in-flight rounds
// fits comfortably.
const permCacheCap = 64

// NewShuffler wraps the shared permutation key dispatched by the key
// broker.
func NewShuffler(permKey []byte) (*Shuffler, error) {
	if len(permKey) < 16 {
		return nil, fmt.Errorf("core: permutation key of %d bytes is below the 16-byte minimum", len(permKey))
	}
	return &Shuffler{
		permKey: append([]byte(nil), permKey...),
		cache:   make(map[permCacheKey][]int, permCacheCap),
	}, nil
}

// perm derives the round- and partition-specific permutation of length n,
// serving repeats from the cache. The returned slice is shared: callers
// must treat it as read-only.
func (s *Shuffler) perm(roundID []byte, partition, n int) []int {
	key := permCacheKey{round: string(roundID), partition: partition, n: n}
	s.mu.Lock()
	if p, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return p
	}
	s.mu.Unlock()
	// Derive outside the lock; a concurrent duplicate derivation is
	// harmless (both produce the identical permutation) and cheaper than
	// serializing every partition's derivation behind one mutex.
	seed := rng.DeriveSeed(s.permKey, roundID, []byte(fmt.Sprintf("partition-%d", partition)))
	p := rng.NewStream(seed, "param-shuffle").Perm(n)
	s.mu.Lock()
	if len(s.cache) >= permCacheCap {
		clear(s.cache)
	}
	s.cache[key] = p
	s.mu.Unlock()
	return p
}

// Shuffle permutes a fragment for upload: out[i] = frag[perm[i]].
func (s *Shuffler) Shuffle(frag tensor.Vector, roundID []byte, partition int) tensor.Vector {
	p := s.perm(roundID, partition, len(frag))
	out := make(tensor.Vector, len(frag))
	for i, src := range p {
		out[i] = frag[src]
	}
	return out
}

// Unshuffle restores a downloaded (aggregated) fragment to its original
// order, inverting Shuffle for the same round and partition.
func (s *Shuffler) Unshuffle(frag tensor.Vector, roundID []byte, partition int) tensor.Vector {
	p := s.perm(roundID, partition, len(frag))
	out := make(tensor.Vector, len(frag))
	for i, src := range p {
		out[src] = frag[i]
	}
	return out
}

// Transform is the full party-side Trans() of Figure 1: partition the local
// update with the mapper, then shuffle each fragment for the round.
// Shuffling can be disabled (partition-only mode) to reproduce the paper's
// first attack configuration.
//
// The shuffled path fuses both steps into a single gather per fragment:
// shuffling a partition-gathered fragment composes to
//
//	frag[i] = update[idxs[p[i]]]
//
// so no intermediate partition buffer is built, and fragments land in
// pooled tensor buffers (hand them to tensor.PutVector after upload). The
// result is bit-identical to Partition followed by Shuffle.
//
//perf:hotpath
func Transform(m *Mapper, s *Shuffler, update tensor.Vector, roundID []byte, shuffle bool) ([]tensor.Vector, error) {
	if !shuffle {
		//lint:ignore allocfree partition-only mode builds fresh fragment buffers by contract
		return m.Partition(update)
	}
	if len(update) != m.n {
		return nil, fmt.Errorf("core: update length %d, mapper built for %d", len(update), m.n)
	}
	if s == nil {
		return nil, fmt.Errorf("core: shuffle requested without a shuffler")
	}
	// Each fragment's permutation is derived and applied independently
	// (domain-separated by partition index), so fragments build
	// concurrently.
	//
	//lint:ignore allocfree one slice-header array per call; the fragment payloads come from the pool
	out := make([]tensor.Vector, len(m.parts))
	parallel.For(len(m.parts), 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			idxs := m.parts[j]
			//lint:ignore allocfree permutation derivation is cached per (round, partition)
			p := s.perm(roundID, j, len(idxs))
			frag := tensor.GetVector(len(idxs))
			for i, src := range p {
				frag[i] = update[idxs[src]]
			}
			out[j] = frag
		}
	})
	return out, nil
}

// InverseTransform is Trans^-1: reverse-shuffle each aggregated fragment
// and merge them back into a full model update.
//
// The shuffled path fuses unshuffle and merge into a single scatter:
//
//	out[idxs[p[i]]] = frag[i]
//
// with no intermediate unshuffled fragment. Partitions write disjoint
// index sets (Mapper.Validate invariant), so the scatters run
// concurrently; the result is bit-identical to Unshuffle followed by
// Merge.
//
//perf:hotpath
func InverseTransform(m *Mapper, s *Shuffler, frags []tensor.Vector, roundID []byte, shuffle bool) (tensor.Vector, error) {
	if !shuffle {
		//lint:ignore allocfree partition-only mode merges into a fresh model buffer by contract
		return m.Merge(frags)
	}
	if s == nil {
		return nil, fmt.Errorf("core: unshuffle requested without a shuffler")
	}
	if len(frags) != len(m.parts) {
		return nil, fmt.Errorf("core: %d fragments, mapper has %d partitions", len(frags), len(m.parts))
	}
	for j, idxs := range m.parts {
		if len(frags[j]) != len(idxs) {
			return nil, fmt.Errorf("core: fragment %d has %d values, want %d", j, len(frags[j]), len(idxs))
		}
	}
	//lint:ignore allocfree the merged model is the result and outlives any pool window
	out := make(tensor.Vector, m.n)
	parallel.For(len(m.parts), 1, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			idxs := m.parts[j]
			//lint:ignore allocfree permutation derivation is cached per (round, partition)
			p := s.perm(roundID, j, len(idxs))
			for i, v := range frags[j] {
				out[idxs[p[i]]] = v
			}
		}
	})
	return out, nil
}
