package core

import (
	"fmt"

	"deta/internal/parallel"
	"deta/internal/rng"
	"deta/internal/tensor"
)

// Shuffler implements the dynamic parameter-level shuffling of §4.2. Each
// partitioned fragment is permuted with a permutation seeded by the
// combination of the broker-held permutation key and the per-round training
// identifier, plus the partition index for domain separation. The
// permutation therefore changes every round but is identical across
// parties, and unrecoverable without the key.
type Shuffler struct {
	permKey []byte
}

// NewShuffler wraps the shared permutation key dispatched by the key
// broker.
func NewShuffler(permKey []byte) (*Shuffler, error) {
	if len(permKey) < 16 {
		return nil, fmt.Errorf("core: permutation key of %d bytes is below the 16-byte minimum", len(permKey))
	}
	return &Shuffler{permKey: append([]byte(nil), permKey...)}, nil
}

// perm derives the round- and partition-specific permutation of length n.
func (s *Shuffler) perm(roundID []byte, partition, n int) []int {
	seed := rng.DeriveSeed(s.permKey, roundID, []byte(fmt.Sprintf("partition-%d", partition)))
	return rng.NewStream(seed, "param-shuffle").Perm(n)
}

// Shuffle permutes a fragment for upload: out[i] = frag[perm[i]].
func (s *Shuffler) Shuffle(frag tensor.Vector, roundID []byte, partition int) tensor.Vector {
	p := s.perm(roundID, partition, len(frag))
	out := make(tensor.Vector, len(frag))
	for i, src := range p {
		out[i] = frag[src]
	}
	return out
}

// Unshuffle restores a downloaded (aggregated) fragment to its original
// order, inverting Shuffle for the same round and partition.
func (s *Shuffler) Unshuffle(frag tensor.Vector, roundID []byte, partition int) tensor.Vector {
	p := s.perm(roundID, partition, len(frag))
	out := make(tensor.Vector, len(frag))
	for i, src := range p {
		out[src] = frag[i]
	}
	return out
}

// Transform is the full party-side Trans() of Figure 1: partition the local
// update with the mapper, then shuffle each fragment for the round.
// Shuffling can be disabled (partition-only mode) to reproduce the paper's
// first attack configuration.
func Transform(m *Mapper, s *Shuffler, update tensor.Vector, roundID []byte, shuffle bool) ([]tensor.Vector, error) {
	frags, err := m.Partition(update)
	if err != nil {
		return nil, err
	}
	if shuffle {
		if s == nil {
			return nil, fmt.Errorf("core: shuffle requested without a shuffler")
		}
		// Each fragment's permutation is derived and applied independently
		// (domain-separated by partition index), so fragments shuffle
		// concurrently.
		parallel.For(len(frags), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				frags[j] = s.Shuffle(frags[j], roundID, j)
			}
		})
	}
	return frags, nil
}

// InverseTransform is Trans^-1: reverse-shuffle each aggregated fragment
// and merge them back into a full model update.
func InverseTransform(m *Mapper, s *Shuffler, frags []tensor.Vector, roundID []byte, shuffle bool) (tensor.Vector, error) {
	if shuffle {
		if s == nil {
			return nil, fmt.Errorf("core: unshuffle requested without a shuffler")
		}
		unshuffled := make([]tensor.Vector, len(frags))
		parallel.For(len(frags), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				unshuffled[j] = s.Unshuffle(frags[j], roundID, j)
			}
		})
		frags = unshuffled
	}
	return m.Merge(frags)
}
