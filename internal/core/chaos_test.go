package core

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/journal"
	"deta/internal/nn"
	"deta/internal/sev"
	"deta/internal/tensor"
	"deta/internal/transport"
)

// Chaos harness parameters. The seed keys every fault plan, so a failing
// run replays the same fault schedule.
const (
	chaosParties       = 2
	chaosAggs          = 3
	chaosRounds        = 3
	chaosSeed    int64 = 0xDE7A
)

// chaosAgg is one journaled aggregator "process" that can be killed and
// restarted mid-test: restart drops the in-memory node, closes its server,
// and recovers a fresh node (fresh CVM, re-attested under the same ID)
// from the same journal directory — exactly what a crashed deployment does.
type chaosAgg struct {
	id     string
	dir    string
	proxy  *attest.Proxy
	vendor *sev.Vendor

	// configure, when non-nil, is re-applied to every recovered node —
	// lifecycle/liveness settings and clocks are boot flags, not journal
	// state, so a restarted process must re-arm them.
	configure func(*AggregatorNode)

	mu   sync.Mutex
	gen  int
	node *AggregatorNode
	srv  *transport.Server
	ln   *transport.MemListener
}

func (c *chaosAgg) start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	platform, err := sev.NewPlatform(fmt.Sprintf("host/%s/gen%d", c.id, c.gen), c.vendor)
	if err != nil {
		return err
	}
	cvm, err := platform.LaunchCVM(OVMF)
	if err != nil {
		return err
	}
	if _, err := c.proxy.Provision(c.id, platform, cvm); err != nil {
		return err
	}
	node, _, err := RecoverAggregatorNode(c.id, agg.IterativeAverage{}, cvm, c.dir, journal.Options{})
	if err != nil {
		return err
	}
	if c.configure != nil {
		c.configure(node)
	}
	srv := transport.NewServer()
	ServeAggregator(node, srv)
	ln := transport.NewMemListener()
	go srv.Serve(ln)
	c.node, c.srv, c.ln = node, srv, ln
	return nil
}

// restart kills the running aggregator (server and journal handle closed,
// node discarded) and boots a replacement from the journal.
func (c *chaosAgg) restart() error {
	c.mu.Lock()
	c.srv.Close()
	c.node.CloseJournal()
	c.mu.Unlock()
	return c.start()
}

func (c *chaosAgg) getNode() *AggregatorNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node
}

func (c *chaosAgg) dialCurrent() (net.Conn, error) {
	c.mu.Lock()
	ln := c.ln
	c.mu.Unlock()
	return ln.Dial()
}

func (c *chaosAgg) stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.srv.Close()
	c.node.CloseJournal()
}

// runChaosFederation runs a full 2-party/3-aggregator/3-round federation
// over in-memory transports and returns the final global model. With
// faulty=true, every party↔aggregator connection injects drops, delays,
// and severs from a deterministic seed, and two aggregators are killed and
// restarted mid-round; the journal plus idempotent retries must make the
// result indistinguishable from the clean run.
func runChaosFederation(t *testing.T, faulty bool) tensor.Vector {
	t.Helper()

	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	proxy := attest.NewProxy(vendor.RAS(), OVMF)

	procs := make([]*chaosAgg, chaosAggs)
	for j := range procs {
		procs[j] = &chaosAgg{
			id: fmt.Sprintf("agg-%d", j+1), dir: t.TempDir(),
			proxy: proxy, vendor: vendor,
		}
		if err := procs[j].start(); err != nil {
			t.Fatal(err)
		}
		defer procs[j].stop()
	}

	// Pre-register every party on every node so the first round's quorum
	// is all parties regardless of upload interleaving (mirrors the e2e
	// test's guard).
	for _, c := range procs {
		for p := 0; p < chaosParties; p++ {
			c.getNode().Register(fmt.Sprintf("P%d", p+1))
		}
	}

	// Initiator sync loop over the *current* nodes: a restarted aggregator
	// is picked up on the next poll, and Aggregate is idempotent, so a
	// round interrupted by a restart is simply re-driven.
	stopSync := make(chan struct{})
	defer close(stopSync)
	go func() {
		round := 1
		for round <= chaosRounds {
			select {
			case <-stopSync:
				return
			default:
			}
			nodes := make([]*AggregatorNode, chaosAggs)
			all := true
			for j, c := range procs {
				nodes[j] = c.getNode()
				if !nodes[j].Complete(round) {
					all = false
					break
				}
			}
			if all {
				fusedAll := true
				for _, n := range nodes {
					if err := n.Aggregate(round); err != nil {
						fusedAll = false // e.g. node replaced mid-pass; retry
						break
					}
				}
				if fusedAll {
					round++
					continue
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	broker, err := attest.NewKeyBroker(32)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < chaosParties; p++ {
		broker.RegisterParty(fmt.Sprintf("P%d", p+1))
	}

	spec := dataset.Spec{Name: "chaos", C: 1, H: 12, W: 12, Classes: 4}
	train, _ := dataset.TrainTest(spec, chaosParties*16, 8, []byte("chaos-data"))
	shards := dataset.SplitIID(train, chaosParties, []byte("chaos-split"))
	build := func() *nn.Network { return nn.ConvNet8(1, 12, 12, 4) }
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: chaosRounds, LocalEpochs: 1, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, Seed: []byte("chaos-cfg"),
	}

	// retry re-drives a whole fan-out step until it succeeds or the party
	// deadline expires — safe because uploads are idempotent and Aggregate/
	// Download are read-or-no-op on re-delivery.
	retry := func(ctx context.Context, what string, op func(context.Context) error) error {
		b := transport.Backoff{Initial: 2 * time.Millisecond, Max: 100 * time.Millisecond}
		var last error
		for i := 0; ; i++ {
			if last = op(ctx); last == nil {
				return nil
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("%s: %w (last error: %v)", what, ctx.Err(), last)
			case <-time.After(b.Delay(i)):
			}
		}
	}

	runParty := func(idx int) (tensor.Vector, error) {
		id := fmt.Sprintf("P%d", idx+1)
		clients := make([]*AggregatorClient, chaosAggs)
		for j, c := range procs {
			dial := c.dialCurrent
			if faulty {
				// Deterministic per-(party, aggregator) fault plan; each
				// redial draws the next per-connection schedule from it.
				dial = transport.FaultDialer(c.dialCurrent, transport.Faults{
					Seed:      chaosSeed + int64(idx*16+j),
					DelayProb: 0.2, Delay: time.Millisecond,
					DropProb: 0.02, SeverProb: 0.02,
				})
			}
			clients[j] = &AggregatorClient{
				ID:     c.id,
				Redial: func(context.Context) (net.Conn, error) { return dial() },
			}
		}
		// A short per-call timeout classifies dropped writes (request sent,
		// connection silently dead) as failures quickly so retries re-drive
		// them.
		fleet := &Fleet{Clients: clients, Timeout: 2 * time.Second}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()

		if err := retry(ctx, "phase II", func(ctx context.Context) error {
			return fleet.VerifyAndRegisterAll(ctx, id, proxy.TokenPubKey, attest.NewNonce, attest.VerifyChallenge)
		}); err != nil {
			return nil, err
		}
		permKey, err := broker.PermutationKey(id)
		if err != nil {
			return nil, err
		}
		shuffler, err := NewShuffler(permKey)
		if err != nil {
			return nil, err
		}
		party := fl.NewParty(id, build, shards[idx], cfg)
		mapper, err := NewMapper(build().NumParams(), EqualProportions(chaosAggs), []byte("chaos-mapper"))
		if err != nil {
			return nil, err
		}
		net := build()
		net.Init([]byte("chaos-init"))
		global := net.Params()

		for round := 1; round <= chaosRounds; round++ {
			roundID, err := broker.RoundID(round)
			if err != nil {
				return nil, err
			}
			update, _, err := party.LocalUpdate(global, round)
			if err != nil {
				return nil, err
			}
			frags, err := Transform(mapper, shuffler, update, roundID, true)
			if err != nil {
				return nil, err
			}
			if err := retry(ctx, fmt.Sprintf("round %d upload", round), func(ctx context.Context) error {
				return fleet.UploadAll(ctx, round, id, frags, float64(shards[idx].Len()))
			}); err != nil {
				return nil, err
			}
			if faulty && idx == 0 && round == 2 {
				// Kill+restart aggregator 1 mid-round: this party's round-2
				// fragments are journaled but not yet fused (the other
				// party may still be uploading). The recovered node must
				// resume the round from its WAL.
				if err := procs[0].restart(); err != nil {
					return nil, fmt.Errorf("restarting agg-1: %w", err)
				}
			}
			var merged []tensor.Vector
			if err := retry(ctx, fmt.Sprintf("round %d download", round), func(ctx context.Context) error {
				dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
				defer cancel()
				var derr error
				merged, derr = fleet.DownloadAll(dctx, round, id, nil)
				return derr
			}); err != nil {
				return nil, err
			}
			if faulty && idx == 0 && round == 2 {
				// Kill+restart aggregator 2 after fusion: the other party
				// has yet to download round 2 from it, so the recovered
				// node must serve the journaled aggregated vector
				// bit-identically.
				if err := procs[1].restart(); err != nil {
					return nil, fmt.Errorf("restarting agg-2: %w", err)
				}
			}
			global, err = InverseTransform(mapper, shuffler, merged, roundID, true)
			if err != nil {
				return nil, err
			}
		}
		return global, nil
	}

	var wg sync.WaitGroup
	finals := make([]tensor.Vector, chaosParties)
	errs := make([]error, chaosParties)
	for p := 0; p < chaosParties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			finals[p], errs[p] = runParty(p)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("party %d (faulty=%v): %v", p+1, faulty, err)
		}
	}
	for i := range finals[0] {
		if finals[0][i] != finals[1][i] {
			t.Fatalf("parties disagree on the global model at coordinate %d (faulty=%v)", i, faulty)
		}
	}
	return finals[0]
}

// TestChaosRestartBitIdenticalModel is the acceptance test for the crash-
// recovery work: a federation suffering injected connection drops, delays,
// and severs plus two aggregator kill+restarts mid-round must complete all
// rounds and produce a global model bit-identical to a fault-free run.
func TestChaosRestartBitIdenticalModel(t *testing.T) {
	clean := runChaosFederation(t, false)
	chaotic := runChaosFederation(t, true)
	if len(clean) != len(chaotic) {
		t.Fatalf("model sizes differ: %d vs %d", len(clean), len(chaotic))
	}
	for i := range clean {
		if clean[i] != chaotic[i] {
			t.Fatalf("chaos run diverged from fault-free run at coordinate %d: %v vs %v",
				i, chaotic[i], clean[i])
		}
	}
}
