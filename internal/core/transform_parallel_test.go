package core

import (
	"testing"
	"testing/quick"

	"deta/internal/parallel"
	"deta/internal/rng"
	"deta/internal/tensor"
)

// Property: the transform pipeline (Partition + Shuffle, and the inverse)
// is bit-identical under any worker count — each fragment is a pure gather
// through mapper indices and a keyed permutation, so per-fragment
// concurrency cannot change a single bit.
func TestTransformParallelMatchesSerial(t *testing.T) {
	shuffler, err := NewShuffler([]byte("transform-parallel-key-0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint16, kRaw, workersRaw uint8, nRaw uint16) bool {
		k := int(kRaw%5) + 1
		n := int(nRaw%800) + k
		workers := int(workersRaw%10) + 1
		m, err := NewMapper(n, EqualProportions(k), []byte{byte(seed), byte(seed >> 8)})
		if err != nil {
			return false
		}
		v := make(tensor.Vector, n)
		s := rng.NewStream([]byte{byte(seed)}, "transform-values")
		for i := range v {
			v[i] = s.NormFloat64()
		}
		roundID := []byte{byte(seed >> 8), 0x42}

		// Serial ground truth.
		prev := parallel.SetWorkers(1)
		serialFrags, err := Transform(m, shuffler, v.Clone(), roundID, true)
		if err != nil {
			parallel.SetWorkers(prev)
			return false
		}
		serialBack, err := InverseTransform(m, shuffler, serialFrags, roundID, true)
		if err != nil {
			parallel.SetWorkers(prev)
			return false
		}

		// Parallel run.
		parallel.SetWorkers(workers)
		frags, err := Transform(m, shuffler, v.Clone(), roundID, true)
		if err != nil {
			parallel.SetWorkers(prev)
			return false
		}
		back, err := InverseTransform(m, shuffler, frags, roundID, true)
		parallel.SetWorkers(prev)
		if err != nil {
			return false
		}

		if len(frags) != len(serialFrags) {
			return false
		}
		for j := range frags {
			if len(frags[j]) != len(serialFrags[j]) {
				return false
			}
			for i := range frags[j] {
				if frags[j][i] != serialFrags[j][i] {
					return false
				}
			}
		}
		for i := range v {
			if back[i] != serialBack[i] || back[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Partition and Merge alone (shuffle off) under oversubscribed workers:
// round-trips exactly and matches the serial gather/scatter.
func TestPartitionMergeParallelRoundTrip(t *testing.T) {
	prev := parallel.SetWorkers(8)
	defer parallel.SetWorkers(prev)
	m, err := NewMapper(1001, []float64{0.5, 0.3, 0.2}, []byte("pm-parallel"))
	if err != nil {
		t.Fatal(err)
	}
	v := make(tensor.Vector, 1001)
	s := rng.NewStream([]byte("pm-values"), "x")
	for i := range v {
		v[i] = s.NormFloat64()
	}
	frags, err := m.Partition(v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := m.Merge(frags)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("index %d: %v != %v", i, back[i], v[i])
		}
	}
}
