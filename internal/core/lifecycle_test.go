package core

// Fake-clock tests for the round lifecycle state machine and the liveness
// tracker. Every deadline, grace window, and liveness threshold here is
// driven by FakeClock.Advance — zero time.Sleep-driven assertions.

import (
	"errors"
	"math"
	"testing"
	"time"

	"deta/internal/agg"
	"deta/internal/journal"
	"deta/internal/tensor"
)

var lifecycleEpoch = time.Unix(1_000_000, 0)

// lifecycleNode builds an in-memory node on a fake clock.
func lifecycleNode(t *testing.T, id string) (*AggregatorNode, *FakeClock) {
	t.Helper()
	proxy, vendor := testTrust(t)
	cvm := provisionCVM(t, proxy, vendor, id)
	node, err := NewAggregatorNode(id, agg.IterativeAverage{}, cvm)
	if err != nil {
		t.Fatal(err)
	}
	clk := NewFakeClock(lifecycleEpoch)
	node.SetClock(clk)
	return node, clk
}

// recoverLifecycleNode opens (or re-opens) a journaled node under dir and
// pins it to a fake clock.
func recoverLifecycleNode(t *testing.T, id, dir string, clk *FakeClock) (*AggregatorNode, *RecoveryInfo) {
	t.Helper()
	proxy, vendor := testTrust(t)
	cvm := provisionCVM(t, proxy, vendor, id)
	node, info, err := RecoverAggregatorNode(id, agg.IterativeAverage{}, cvm, dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClock(clk)
	return node, info
}

func mustUpload(t *testing.T, node *AggregatorNode, round int, party string, v float64) {
	t.Helper()
	if err := node.Upload(round, party, tensor.Vector{v}, 1); err != nil {
		t.Fatalf("upload round %d party %s: %v", round, party, err)
	}
}

// A round still below quorum at its deadline is abandoned: it reports the
// typed error from every entry point instead of hanging the federation.
func TestLifecycleAbandonBelowQuorum(t *testing.T) {
	node, clk := lifecycleNode(t, "agg-lc1")
	for _, p := range []string{"P1", "P2", "P3"} {
		node.Register(p)
	}
	node.SetQuorum(2)
	node.SetLifecycle(10*time.Second, time.Second)

	mustUpload(t, node, 1, "P1", 2)
	if ph := node.Phase(1); ph != PhaseOpen {
		t.Fatalf("phase = %v, want open", ph)
	}
	if node.Complete(1) || node.Abandoned(1) {
		t.Fatal("round neither complete nor abandoned yet")
	}

	clk.Advance(10 * time.Second)
	if ph := node.Phase(1); ph != PhaseAbandoned {
		t.Fatalf("phase after deadline = %v, want abandoned", ph)
	}
	if done, abandoned := node.RoundStatus(1); done || !abandoned {
		t.Fatalf("RoundStatus = (%v, %v), want (false, true)", done, abandoned)
	}
	if err := node.Upload(1, "P2", tensor.Vector{4}, 1); !errors.Is(err, ErrRoundAbandoned) {
		t.Fatalf("late upload err = %v, want ErrRoundAbandoned", err)
	}
	if err := node.Aggregate(1); !errors.Is(err, ErrRoundAbandoned) {
		t.Fatalf("aggregate err = %v, want ErrRoundAbandoned", err)
	}
	if _, err := node.Download(1, "P1"); !errors.Is(err, ErrRoundAbandoned) {
		t.Fatalf("download err = %v, want ErrRoundAbandoned", err)
	}
	// Abandonment is terminal: even a later upload cannot resurrect it.
	clk.Advance(time.Hour)
	if err := node.Upload(1, "P3", tensor.Vector{6}, 1); !errors.Is(err, ErrRoundAbandoned) {
		t.Fatalf("much later upload err = %v, want ErrRoundAbandoned", err)
	}
}

// During the post-quorum grace window stragglers are still accepted, and a
// round that reaches full participation seals immediately.
func TestLifecycleGraceAcceptsStragglerThenSealsFull(t *testing.T) {
	node, clk := lifecycleNode(t, "agg-lc2")
	for _, p := range []string{"P1", "P2", "P3"} {
		node.Register(p)
	}
	node.SetQuorum(2)
	node.SetLifecycle(10*time.Second, 2*time.Second)

	mustUpload(t, node, 1, "P1", 1)
	mustUpload(t, node, 1, "P2", 3)
	if ph := node.Phase(1); ph != PhaseGrace {
		t.Fatalf("phase at quorum = %v, want grace", ph)
	}
	if node.Complete(1) {
		t.Fatal("round complete during grace; stragglers should still be welcome")
	}
	clk.Advance(time.Second) // inside the grace window
	mustUpload(t, node, 1, "P3", 5)
	if ph := node.Phase(1); ph != PhaseSealed {
		t.Fatalf("phase at full participation = %v, want sealed", ph)
	}
	if !node.Complete(1) {
		t.Fatal("fully-uploaded round should be complete without waiting out grace")
	}
	if err := node.Aggregate(1); err != nil {
		t.Fatal(err)
	}
	got, err := node.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-3) > 1e-12 {
		t.Fatalf("fused = %v, want 3 (mean of 1,3,5)", got)
	}
}

// Once the grace window expires the round seals: stragglers are cut with a
// typed error, but identical retries of committed uploads stay idempotent.
func TestLifecycleStragglerCutAfterGrace(t *testing.T) {
	node, clk := lifecycleNode(t, "agg-lc3")
	for _, p := range []string{"P1", "P2", "P3"} {
		node.Register(p)
	}
	node.SetQuorum(2)
	node.SetLifecycle(10*time.Second, time.Second)

	mustUpload(t, node, 1, "P1", 2)
	mustUpload(t, node, 1, "P2", 4)
	clk.Advance(time.Second) // grace expires
	if ph := node.Phase(1); ph != PhaseSealed {
		t.Fatalf("phase after grace = %v, want sealed", ph)
	}
	if !node.Complete(1) {
		t.Fatal("sealed round should report complete")
	}
	if err := node.Upload(1, "P3", tensor.Vector{9}, 1); !errors.Is(err, ErrStragglerCut) {
		t.Fatalf("straggler err = %v, want ErrStragglerCut", err)
	}
	// A party retrying its committed upload after an ambiguous failure is
	// still fine post-seal.
	if err := node.Upload(1, "P1", tensor.Vector{2}, 1); err != nil {
		t.Fatalf("idempotent retry post-seal: %v", err)
	}
	if err := node.Aggregate(1); err != nil {
		t.Fatal(err)
	}
	got, err := node.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-3) > 1e-12 {
		t.Fatalf("fused = %v, want 3 (mean of 2,4 — straggler cut)", got)
	}
}

// With grace longer than the deadline, a round with quorum fuses at the
// deadline — the hard cut — without its stragglers.
func TestLifecycleSealsAtDeadlineWithQuorum(t *testing.T) {
	node, clk := lifecycleNode(t, "agg-lc4")
	for _, p := range []string{"P1", "P2", "P3"} {
		node.Register(p)
	}
	node.SetQuorum(2)
	node.SetLifecycle(10*time.Second, time.Minute)

	clk.Advance(9 * time.Second) // round opens at first upload below
	mustUpload(t, node, 1, "P1", 2)
	mustUpload(t, node, 1, "P2", 4)
	if ph := node.Phase(1); ph != PhaseGrace {
		t.Fatalf("phase = %v, want grace", ph)
	}
	// openedAt is the first upload (t=9s), so the deadline lands at t=19s.
	clk.Advance(10 * time.Second)
	if ph := node.Phase(1); ph != PhaseSealed {
		t.Fatalf("phase at deadline = %v, want sealed (quorum was met)", ph)
	}
	if !node.Complete(1) {
		t.Fatal("round with quorum should complete at the deadline")
	}
}

// Zero grace seals at the instant quorum is reached.
func TestLifecycleZeroGraceSealsAtQuorum(t *testing.T) {
	node, _ := lifecycleNode(t, "agg-lc5")
	for _, p := range []string{"P1", "P2", "P3"} {
		node.Register(p)
	}
	node.SetQuorum(2)
	node.SetLifecycle(10*time.Second, 0)

	mustUpload(t, node, 1, "P1", 2)
	mustUpload(t, node, 1, "P2", 4)
	if ph := node.Phase(1); ph != PhaseSealed {
		t.Fatalf("phase = %v, want sealed immediately at quorum", ph)
	}
	if err := node.Upload(1, "P3", tensor.Vector{9}, 1); !errors.Is(err, ErrStragglerCut) {
		t.Fatalf("err = %v, want ErrStragglerCut", err)
	}
}

// Without SetLifecycle the node keeps the legacy count-based semantics: no
// amount of elapsed time abandons or seals anything.
func TestLifecycleDisabledKeepsLegacyBehavior(t *testing.T) {
	node, clk := lifecycleNode(t, "agg-lc6")
	node.Register("P1")
	node.Register("P2")
	mustUpload(t, node, 1, "P1", 2)
	clk.Advance(240 * time.Hour)
	if node.Abandoned(1) {
		t.Fatal("no deadline configured; round must never abandon")
	}
	if node.Complete(1) {
		t.Fatal("1/2 uploads; round must not be complete")
	}
	mustUpload(t, node, 1, "P2", 4)
	if !node.Complete(1) {
		t.Fatal("all uploaded; round complete under legacy semantics")
	}
}

// Suspect is derived and ephemeral; evict is a journaled decision; a
// liveness signal readmits the party.
func TestLivenessSuspectEvictRejoin(t *testing.T) {
	node, clk := lifecycleNode(t, "agg-lv1")
	for _, p := range []string{"P1", "P2", "P3"} {
		node.Register(p)
	}
	node.SetLiveness(3*time.Second, 8*time.Second)

	clk.Advance(2 * time.Second)
	for _, p := range []string{"P1", "P2"} {
		if _, err := node.Heartbeat(p); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second) // P3 silent for 3s now
	if got := node.Suspects(); len(got) != 1 || got[0] != "P3" {
		t.Fatalf("suspects = %v, want [P3]", got)
	}
	if node.NumParties() != 3 {
		t.Fatal("suspicion must not change membership")
	}

	clk.Advance(5 * time.Second) // P3 silent for 8s
	if evicted := node.Tick(); len(evicted) != 1 || evicted[0] != "P3" {
		t.Fatalf("Tick evicted %v, want [P3]", evicted)
	}
	if node.NumParties() != 3-1 {
		t.Fatalf("parties after evict = %d, want 2", node.NumParties())
	}
	if got := node.EvictedParties(); len(got) != 1 || got[0] != "P3" {
		t.Fatalf("evicted = %v, want [P3]", got)
	}
	// P1/P2 heartbeated at t=2s, so they are 6s silent — suspect but safe.
	if got := node.Suspects(); len(got) != 2 {
		t.Fatalf("suspects = %v, want [P1 P2]", got)
	}

	rejoined, err := node.Heartbeat("P3")
	if err != nil {
		t.Fatal(err)
	}
	if !rejoined {
		t.Fatal("heartbeat from an evicted party must report rejoin")
	}
	if node.NumParties() != 3 || len(node.EvictedParties()) != 0 {
		t.Fatal("rejoin must restore membership")
	}
	// A heartbeat from a never-registered party is still rejected.
	if _, err := node.Heartbeat("P9"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("unknown-party heartbeat = %v, want ErrNotRegistered", err)
	}
}

// An upload from an evicted party readmits it the same way a heartbeat
// does (the rejoin is journaled before the upload record).
func TestLivenessUploadRejoinsEvicted(t *testing.T) {
	node, clk := lifecycleNode(t, "agg-lv2")
	node.Register("P1")
	node.Register("P2")
	node.SetLiveness(time.Second, 2*time.Second)
	if _, err := node.Heartbeat("P1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if _, err := node.Heartbeat("P1"); err != nil { // also reaps P2
		t.Fatal(err)
	}
	if got := node.EvictedParties(); len(got) != 1 || got[0] != "P2" {
		t.Fatalf("evicted = %v, want [P2]", got)
	}
	mustUpload(t, node, 1, "P2", 4)
	if node.NumParties() != 2 || len(node.EvictedParties()) != 0 {
		t.Fatal("upload from evicted party must rejoin it")
	}
}

// Eviction shrinks the quorum denominator: a round stalled at 2/3 with an
// all-parties quorum reaches quorum the moment the dead third is evicted,
// and fuses instead of hanging.
func TestLivenessEvictionUnblocksRound(t *testing.T) {
	node, clk := lifecycleNode(t, "agg-lv3")
	for _, p := range []string{"P1", "P2", "P3"} {
		node.Register(p)
	}
	node.SetLifecycle(time.Minute, time.Second)
	node.SetLiveness(3*time.Second, 8*time.Second)

	mustUpload(t, node, 1, "P1", 2)
	mustUpload(t, node, 1, "P2", 4)
	if node.Complete(1) {
		t.Fatal("2/3 with all-parties quorum: not complete")
	}
	// Keep P1/P2 alive just before the evict threshold, then cross it so
	// only P3 is stale when the reaper runs.
	clk.Advance(7 * time.Second)
	for _, p := range []string{"P1", "P2"} {
		if _, err := node.Heartbeat(p); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	if evicted := node.Tick(); len(evicted) != 1 || evicted[0] != "P3" {
		t.Fatalf("Tick evicted %v, want [P3]", evicted)
	}
	// Membership is now {P1, P2}, both uploaded: sealed, ready to fuse.
	if done, abandoned := node.RoundStatus(1); !done || abandoned {
		t.Fatalf("RoundStatus after evict = (%v, %v), want (true, false)", done, abandoned)
	}
	if err := node.Aggregate(1); err != nil {
		t.Fatal(err)
	}
}

// Churn decisions survive crash-recovery: an evicted party stays evicted
// across a restart, a rejoin stays rejoined, and the fused rounds replay
// bit-identically alongside them.
func TestEvictRejoinSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := NewFakeClock(lifecycleEpoch)
	node, _ := recoverLifecycleNode(t, "agg-lvr", dir, clk)
	node.SetLiveness(3*time.Second, 8*time.Second)
	for _, p := range []string{"P1", "P2", "P3"} {
		node.Register(p)
	}
	node.SetQuorum(2)
	mustUpload(t, node, 1, "P1", 2)
	mustUpload(t, node, 1, "P2", 4)
	if err := node.Aggregate(1); err != nil {
		t.Fatal(err)
	}
	want, err := node.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(7 * time.Second)
	for _, p := range []string{"P1", "P2"} {
		if _, err := node.Heartbeat(p); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	if evicted := node.Tick(); len(evicted) != 1 || evicted[0] != "P3" {
		t.Fatalf("Tick evicted %v, want [P3]", evicted)
	}
	if err := node.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// Restart 1: the eviction survived; the fused round replays bit-identically.
	node2, info := recoverLifecycleNode(t, "agg-lvr", dir, NewFakeClock(lifecycleEpoch))
	if node2.NumParties() != 2 || info.Evicted != 1 {
		t.Fatalf("recovered %d parties / %d evicted, want 2 / 1", node2.NumParties(), info.Evicted)
	}
	if got := node2.EvictedParties(); len(got) != 1 || got[0] != "P3" {
		t.Fatalf("recovered evicted = %v, want [P3]", got)
	}
	got, err := node2.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if !fragEqual(got, want) {
		t.Fatalf("recovered fused vector %v != pre-crash %v", got, want)
	}
	// P3 comes back: the rejoin is journaled too.
	if rejoined, err := node2.Heartbeat("P3"); err != nil || !rejoined {
		t.Fatalf("rejoin = (%v, %v)", rejoined, err)
	}
	if err := node2.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// Restart 2: the rejoin survived.
	node3, info := recoverLifecycleNode(t, "agg-lvr", dir, NewFakeClock(lifecycleEpoch))
	if node3.NumParties() != 3 || info.Evicted != 0 {
		t.Fatalf("recovered %d parties / %d evicted, want 3 / 0", node3.NumParties(), info.Evicted)
	}
	if err := node3.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// The acceptance criterion: an aggregator killed between suspect and evict
// replays its WAL to the same membership and round state it would have
// reached uncrashed — suspicion is never journaled, so the crash changes
// nothing.
func TestCrashBetweenSuspectAndEvictReplaysSameState(t *testing.T) {
	dir := t.TempDir()
	clk := NewFakeClock(lifecycleEpoch)
	node, _ := recoverLifecycleNode(t, "agg-sus", dir, clk)
	control, controlClk := lifecycleNode(t, "agg-sus-control") // identical run, no crash

	drive := func(n *AggregatorNode, c *FakeClock) {
		n.SetLifecycle(time.Minute, time.Second)
		n.SetLiveness(3*time.Second, 8*time.Second)
		for _, p := range []string{"P1", "P2", "P3"} {
			n.Register(p)
		}
		n.SetQuorum(2)
		mustUpload(t, n, 1, "P1", 2)
		mustUpload(t, n, 1, "P2", 4)
		if err := n.Aggregate(1); err != nil {
			t.Fatal(err)
		}
		// Push P3 into suspect territory — but not past evictAfter.
		c.Advance(5 * time.Second)
		for _, p := range []string{"P1", "P2"} {
			if _, err := n.Heartbeat(p); err != nil {
				t.Fatal(err)
			}
		}
		if got := n.Suspects(); len(got) != 1 || got[0] != "P3" {
			t.Fatalf("suspects = %v, want [P3]", got)
		}
		if evicted := n.Tick(); len(evicted) != 0 {
			t.Fatalf("Tick evicted %v before evictAfter", evicted)
		}
	}
	drive(node, clk)
	drive(control, controlClk)
	if err := node.CloseJournal(); err != nil { // kill between suspect and evict
		t.Fatal(err)
	}

	recovered, info := recoverLifecycleNode(t, "agg-sus", dir, NewFakeClock(lifecycleEpoch))
	if recovered.NumParties() != control.NumParties() {
		t.Fatalf("recovered %d parties, uncrashed has %d", recovered.NumParties(), control.NumParties())
	}
	if info.Evicted != 0 || len(recovered.EvictedParties()) != 0 {
		t.Fatalf("suspicion leaked into the WAL: recovered evicted=%v", recovered.EvictedParties())
	}
	wantFrag, err := control.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	gotFrag, err := recovered.Download(1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if !fragEqual(gotFrag, wantFrag) {
		t.Fatalf("round state diverged: %v vs %v", gotFrag, wantFrag)
	}
	if recovered.LastAggregatedRound() != control.LastAggregatedRound() {
		t.Fatal("lastAggregated diverged")
	}
	// And the suspect itself is still a full member on both.
	mustUpload(t, recovered, 2, "P3", 9)
	mustUpload(t, control, 2, "P3", 9)
	if err := recovered.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// recEvict/recRejoin interleaved with recQuorum and retention eviction:
// replay reproduces the live node's observable state exactly.
func TestReplayEvictRejoinInterleavedWithQuorumRetention(t *testing.T) {
	dir := t.TempDir()
	clk := NewFakeClock(lifecycleEpoch)
	node, _ := recoverLifecycleNode(t, "agg-ilv", dir, clk)
	node.SetLiveness(3*time.Second, 8*time.Second)
	for _, p := range []string{"P1", "P2", "P3"} {
		node.Register(p)
	}
	node.SetQuorum(2)

	// Round 1: all three, fused. Round 2: P3 already silent, fused at quorum.
	for _, p := range []string{"P1", "P2", "P3"} {
		mustUpload(t, node, 1, p, 1)
	}
	if err := node.Aggregate(1); err != nil {
		t.Fatal(err)
	}
	mustUpload(t, node, 2, "P1", 2)
	mustUpload(t, node, 2, "P2", 4)
	if err := node.Aggregate(2); err != nil {
		t.Fatal(err)
	}
	// Evict P3 (silent 8s), then tighten quorum and retention afterwards —
	// the replay must apply these in log order to converge.
	clk.Advance(7 * time.Second)
	for _, p := range []string{"P1", "P2"} {
		if _, err := node.Heartbeat(p); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	if evicted := node.Tick(); len(evicted) != 1 {
		t.Fatalf("evicted %v", evicted)
	}
	node.SetQuorum(0)    // all (remaining) parties
	node.SetRetention(1) // evicts round 1 from memory
	mustUpload(t, node, 3, "P1", 3)
	mustUpload(t, node, 3, "P2", 5)
	if err := node.Aggregate(3); err != nil {
		t.Fatal(err)
	}
	// P3 rejoins via upload and participates in round 4.
	mustUpload(t, node, 4, "P3", 7)
	mustUpload(t, node, 4, "P1", 1)
	mustUpload(t, node, 4, "P2", 1)
	if err := node.Aggregate(4); err != nil {
		t.Fatal(err)
	}
	if err := node.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	recovered, info := recoverLifecycleNode(t, "agg-ilv", dir, NewFakeClock(lifecycleEpoch))
	if recovered.NumParties() != node.NumParties() {
		t.Fatalf("parties: recovered %d, live %d", recovered.NumParties(), node.NumParties())
	}
	if info.Evicted != 0 {
		t.Fatalf("info.Evicted = %d, want 0 (P3 rejoined)", info.Evicted)
	}
	if recovered.RoundsHeld() != node.RoundsHeld() {
		t.Fatalf("rounds held: recovered %d, live %d (retention must replay)", recovered.RoundsHeld(), node.RoundsHeld())
	}
	if recovered.LastAggregatedRound() != node.LastAggregatedRound() {
		t.Fatal("lastAggregated diverged")
	}
	// Retention 1 means only round 4 is still held; its fused vector must
	// replay bit-identically.
	want, err := node.Download(4, "P1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := recovered.Download(4, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if !fragEqual(got, want) {
		t.Fatalf("round 4 fused vector diverged: %v vs %v", got, want)
	}
	if err := recovered.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// Rejoin after snapshot compaction: the eviction rides the snapshot, the
// rejoin rides the post-snapshot log tail, and both survive a restart.
func TestRejoinAfterSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	clk := NewFakeClock(lifecycleEpoch)
	node, _ := recoverLifecycleNode(t, "agg-cmp", dir, clk)
	node.SetCompactEvery(1) // compact on every mutation: evict lands in a snapshot
	node.SetLiveness(time.Second, 2*time.Second)
	node.Register("P1")
	node.Register("P2")
	clk.Advance(time.Second)
	if _, err := node.Heartbeat("P1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if evicted := node.Tick(); len(evicted) != 1 || evicted[0] != "P2" {
		t.Fatalf("evicted %v, want [P2]", evicted)
	}
	mustUpload(t, node, 1, "P1", 2) // forces a compaction cycle post-evict
	if err := node.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	node2, info := recoverLifecycleNode(t, "agg-cmp", dir, NewFakeClock(lifecycleEpoch))
	if info.Evicted != 1 || len(node2.EvictedParties()) != 1 {
		t.Fatalf("eviction lost in compaction: info=%d evicted=%v", info.Evicted, node2.EvictedParties())
	}
	// Rejoin lands after the snapshot; another compaction folds it in.
	if rejoined, err := node2.Heartbeat("P2"); err != nil || !rejoined {
		t.Fatalf("rejoin = (%v, %v)", rejoined, err)
	}
	mustUpload(t, node2, 1, "P2", 4)
	if err := node2.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	node3, info := recoverLifecycleNode(t, "agg-cmp", dir, NewFakeClock(lifecycleEpoch))
	if node3.NumParties() != 2 || info.Evicted != 0 {
		t.Fatalf("rejoin lost: %d parties, %d evicted", node3.NumParties(), info.Evicted)
	}
	if err := node3.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// Recovered rounds get a fresh deadline epoch: a round that was mid-flight
// at the crash is not instantly abandoned on restart, but the deadline
// still applies from the recovery instant.
func TestRecoveredRoundGetsFreshDeadline(t *testing.T) {
	dir := t.TempDir()
	clk := NewFakeClock(lifecycleEpoch)
	node, _ := recoverLifecycleNode(t, "agg-fresh", dir, clk)
	node.SetLifecycle(10*time.Second, time.Second)
	node.Register("P1")
	node.Register("P2")
	mustUpload(t, node, 1, "P1", 2) // 1/2: below quorum
	clk.Advance(9 * time.Second)    // one second from abandonment
	if err := node.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// Restart far in the future (wall-clock-wise the journal is old, but
	// it carries no timestamps).
	clk2 := NewFakeClock(lifecycleEpoch.Add(time.Hour))
	node2, _ := recoverLifecycleNode(t, "agg-fresh", dir, clk2)
	node2.SetLifecycle(10*time.Second, time.Second)
	if node2.Abandoned(1) {
		t.Fatal("recovered round abandoned instantly; wanted a fresh deadline")
	}
	clk2.Advance(5 * time.Second)
	mustUpload(t, node2, 1, "P2", 4) // completes within the fresh window
	if !node2.Complete(1) {
		t.Fatal("round should complete after recovery")
	}
	clk2.Advance(10 * time.Second)
	mustUpload(t, node2, 2, "P1", 1)
	clk2.Advance(10 * time.Second) // fresh deadline still enforced
	if !node2.Abandoned(2) {
		t.Fatal("post-recovery rounds must still abandon at the deadline")
	}
	if err := node2.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}
