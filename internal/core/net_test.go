package core

import (
	"context"
	"strings"
	"testing"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/sev"
	"deta/internal/tensor"
	"deta/internal/transport"
)

// startNetAggregator provisions an aggregator CVM, serves its protocol on
// an in-memory listener, and returns a connected client plus the proxy.
func startNetAggregator(t *testing.T) (*AggregatorClient, *attest.Proxy) {
	t.Helper()
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sev.NewPlatform("net-host", vendor)
	if err != nil {
		t.Fatal(err)
	}
	ap := attest.NewProxy(vendor.RAS(), OVMF)
	cvm, err := platform.LaunchCVM(OVMF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Provision("agg-net", platform, cvm); err != nil {
		t.Fatal(err)
	}
	node, err := NewAggregatorNode("agg-net", agg.IterativeAverage{}, cvm)
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer()
	ServeAggregator(node, srv)
	ln := transport.NewMemListener()
	go srv.Serve(ln)
	t.Cleanup(srv.Close)

	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	client := &AggregatorClient{ID: "agg-net", C: transport.NewClient(conn)}
	t.Cleanup(func() { client.C.Close() })
	return client, ap
}

func TestNetPhaseIIAndRound(t *testing.T) {
	client, ap := startNetAggregator(t)
	pub, err := ap.TokenPubKey("agg-net")
	if err != nil {
		t.Fatal(err)
	}
	// Phase II over the wire.
	if err := VerifyAndRegister(context.Background(), client, pub, "P1", attest.NewNonce, attest.VerifyChallenge); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAndRegister(context.Background(), client, pub, "P2", attest.NewNonce, attest.VerifyChallenge); err != nil {
		t.Fatal(err)
	}

	// One full round over RPC.
	if err := client.Upload(context.Background(), 1, "P1", tensor.Vector{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
	done, err := client.Complete(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("round complete with one of two uploads")
	}
	if err := client.Upload(context.Background(), 1, "P2", tensor.Vector{3, 4, 5}, 1); err != nil {
		t.Fatal(err)
	}
	done, err = client.Complete(context.Background(), 1)
	if err != nil || !done {
		t.Fatalf("complete = %v, %v", done, err)
	}
	if err := client.Aggregate(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	frag, err := client.Download(context.Background(), 1, "P1")
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Vector{2, 3, 4}
	for i := range want {
		if frag[i] != want[i] {
			t.Fatalf("fragment %v, want %v", frag, want)
		}
	}
}

func TestNetPhaseIIRejectsWrongKey(t *testing.T) {
	client, _ := startNetAggregator(t)
	// A second, unrelated provisioning yields a different token key.
	vendor, _ := sev.NewVendor()
	platform, _ := sev.NewPlatform("other", vendor)
	otherAP := attest.NewProxy(vendor.RAS(), OVMF)
	cvm, _ := platform.LaunchCVM(OVMF)
	if _, err := otherAP.Provision("agg-other", platform, cvm); err != nil {
		t.Fatal(err)
	}
	wrongPub, _ := otherAP.TokenPubKey("agg-other")
	err := VerifyAndRegister(context.Background(), client, wrongPub, "P1", attest.NewNonce, attest.VerifyChallenge)
	if err == nil || !strings.Contains(err.Error(), "Phase II") {
		t.Fatalf("wrong token accepted: %v", err)
	}
}

func TestNetErrorsPropagate(t *testing.T) {
	client, _ := startNetAggregator(t)
	// Unregistered party upload must surface the remote error.
	if err := client.Upload(context.Background(), 1, "ghost", tensor.Vector{1}, 1); err == nil {
		t.Fatal("remote rejection not propagated")
	}
	if _, err := client.Download(context.Background(), 9, "ghost"); err == nil {
		t.Fatal("remote download rejection not propagated")
	}
	if err := client.Register(context.Background(), ""); err == nil {
		t.Fatal("empty party ID accepted")
	}
	if err := client.Aggregate(context.Background(), 42); err == nil {
		t.Fatal("aggregate of empty round accepted")
	}
}
