package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
	"deta/internal/rng"
	"deta/internal/sev"
	"deta/internal/tensor"
)

var tinySpec = dataset.Spec{Name: "core-tiny", C: 1, H: 12, W: 12, Classes: 4}

func tinyBuild() *nn.Network { return nn.ConvNet8(1, 12, 12, 4) }

func tinyConfig() fl.Config {
	return fl.Config{
		Mode: fl.FedAvg, Rounds: 3, LocalEpochs: 1, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, Seed: []byte("core-cfg"),
	}
}

func tinyParties(t *testing.T, n int, cfg fl.Config) ([]*fl.Party, *dataset.Dataset) {
	t.Helper()
	train, test := dataset.TrainTest(tinySpec, 24*n, 24, []byte("core-data"))
	shards := dataset.SplitIID(train, n, []byte("core-split"))
	ps := make([]*fl.Party, n)
	for i := range ps {
		ps[i] = fl.NewParty(string(rune('A'+i)), tinyBuild, shards[i], cfg)
	}
	return ps, test
}

func newTinySession(t *testing.T, parties int, shuffle bool) *Session {
	t.Helper()
	cfg := tinyConfig()
	ps, test := tinyParties(t, parties, cfg)
	return &Session{
		Cfg:          cfg,
		Opts:         Options{NumAggregators: 3, Shuffle: shuffle, MapperSeed: []byte("core-map")},
		Build:        tinyBuild,
		Parties:      ps,
		Test:         test,
		InitSeed:     []byte("core-init"),
		NewAlgorithm: func() agg.Algorithm { return agg.IterativeAverage{} },
	}
}

func TestSetupBootstrapsTrust(t *testing.T) {
	s := newTinySession(t, 2, true)
	if err := s.Setup(); err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 3 {
		t.Fatalf("%d nodes", len(s.Nodes))
	}
	for _, n := range s.Nodes {
		if n.NumParties() != 2 {
			t.Fatalf("node %s has %d parties", n.ID, n.NumParties())
		}
	}
	if s.Mapper == nil || s.Shuffler == nil || s.Broker == nil {
		t.Fatal("setup left nil components")
	}
	if s.SetupLatency <= 0 {
		t.Fatal("setup latency not recorded")
	}
	if err := s.Mapper.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupValidation(t *testing.T) {
	s := newTinySession(t, 2, true)
	s.Parties = nil
	if err := s.Setup(); err == nil {
		t.Fatal("no-party session accepted")
	}
	s = newTinySession(t, 2, true)
	s.NewAlgorithm = nil
	if err := s.Setup(); err == nil {
		t.Fatal("missing algorithm accepted")
	}
	s = newTinySession(t, 2, true)
	s.Cfg.Rounds = 0
	if err := s.Setup(); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// The headline correctness claim: DeTA training (partition + shuffle +
// decentralized aggregation) produces *identical* models to the
// centralized FFL baseline, round for round — the paper's "no utility
// loss" (Figures 5-7 show identical loss/accuracy curves).
func TestDeTAMatchesCentralizedExactly(t *testing.T) {
	cfg := tinyConfig()
	cfg.Rounds = 3

	psFFL, test := tinyParties(t, 4, cfg)
	ffl := &fl.Session{
		Cfg: cfg, Algorithm: agg.IterativeAverage{}, Build: tinyBuild,
		Parties: psFFL, Test: test, InitSeed: []byte("shared-init"),
	}
	histFFL, err := ffl.Run()
	if err != nil {
		t.Fatal(err)
	}

	psDeTA, test2 := tinyParties(t, 4, cfg)
	deta := &Session{
		Cfg:          cfg,
		Opts:         Options{NumAggregators: 3, Shuffle: true},
		Build:        tinyBuild,
		Parties:      psDeTA,
		Test:         test2,
		InitSeed:     []byte("shared-init"),
		NewAlgorithm: func() agg.Algorithm { return agg.IterativeAverage{} },
	}
	histDeTA, err := deta.Run()
	if err != nil {
		t.Fatal(err)
	}

	for i := range histFFL.Rounds {
		a, b := histFFL.Rounds[i], histDeTA.Rounds[i]
		if math.Abs(a.TrainLoss-b.TrainLoss) > 1e-9 {
			t.Errorf("round %d train loss differs: FFL %v DeTA %v", i+1, a.TrainLoss, b.TrainLoss)
		}
		if math.Abs(a.TestLoss-b.TestLoss) > 1e-9 {
			t.Errorf("round %d test loss differs: FFL %v DeTA %v", i+1, a.TestLoss, b.TestLoss)
		}
		if a.Accuracy != b.Accuracy {
			t.Errorf("round %d accuracy differs: FFL %v DeTA %v", i+1, a.Accuracy, b.Accuracy)
		}
	}
}

// Same equivalence for the coordinate-median algorithm (also exactly
// coordinate-wise).
func TestDeTAMedianMatchesCentralized(t *testing.T) {
	cfg := tinyConfig()
	cfg.Rounds = 2

	psFFL, test := tinyParties(t, 4, cfg)
	ffl := &fl.Session{
		Cfg: cfg, Algorithm: agg.CoordinateMedian{}, Build: tinyBuild,
		Parties: psFFL, Test: test, InitSeed: []byte("shared-init"),
	}
	histFFL, err := ffl.Run()
	if err != nil {
		t.Fatal(err)
	}
	psDeTA, test2 := tinyParties(t, 4, cfg)
	deta := &Session{
		Cfg:          cfg,
		Opts:         Options{NumAggregators: 3, Shuffle: true},
		Build:        tinyBuild,
		Parties:      psDeTA,
		Test:         test2,
		InitSeed:     []byte("shared-init"),
		NewAlgorithm: func() agg.Algorithm { return agg.CoordinateMedian{} },
	}
	histDeTA, err := deta.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range histFFL.Rounds {
		if math.Abs(histFFL.Rounds[i].TestLoss-histDeTA.Rounds[i].TestLoss) > 1e-9 {
			t.Errorf("round %d: median test loss differs", i+1)
		}
	}
}

func TestDeTAFedSGD(t *testing.T) {
	cfg := tinyConfig()
	cfg.Mode = fl.FedSGD
	cfg.Rounds = 5
	cfg.LR = 0.1
	ps, test := tinyParties(t, 2, cfg)
	s := &Session{
		Cfg: cfg, Opts: Options{NumAggregators: 2, Shuffle: true},
		Build: tinyBuild, Parties: ps, Test: test,
		InitSeed:     []byte("sgd-init"),
		NewAlgorithm: func() agg.Algorithm { return agg.IterativeAverage{} },
	}
	hist, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.Final().TrainLoss >= hist.Rounds[0].TrainLoss {
		t.Errorf("FedSGD loss did not decrease: %v -> %v",
			hist.Rounds[0].TrainLoss, hist.Final().TrainLoss)
	}
}

func TestAggregatorNodeProtocolErrors(t *testing.T) {
	vendor, err := sev.NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sev.NewPlatform("h", vendor)
	if err != nil {
		t.Fatal(err)
	}
	ap := attest.NewProxy(vendor.RAS(), OVMF)
	cvm, _ := platform.LaunchCVM(OVMF)
	if _, err := ap.Provision("agg-x", platform, cvm); err != nil {
		t.Fatal(err)
	}
	node, err := NewAggregatorNode("agg-x", agg.IterativeAverage{}, cvm)
	if err != nil {
		t.Fatal(err)
	}

	// Unregistered upload/download.
	if err := node.Upload(1, "ghost", tensor.Vector{1}, 1); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("upload: %v", err)
	}
	if _, err := node.Download(1, "ghost"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("download: %v", err)
	}

	node.Register("P1")
	node.Register("P2")
	if node.Complete(1) {
		t.Fatal("round complete before any upload")
	}
	if err := node.Upload(1, "P1", tensor.Vector{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	// Duplicate upload.
	if err := node.Upload(1, "P1", tensor.Vector{9, 9}, 1); !errors.Is(err, ErrDuplicateUpload) {
		t.Fatalf("dup upload: %v", err)
	}
	// Aggregate before complete.
	if err := node.Aggregate(1); !errors.Is(err, ErrRoundIncomplete) {
		t.Fatalf("early aggregate: %v", err)
	}
	// Download before aggregated.
	if _, err := node.Download(1, "P1"); !errors.Is(err, ErrNotAggregated) {
		t.Fatalf("early download: %v", err)
	}
	if err := node.Upload(1, "P2", tensor.Vector{3, 4}, 1); err != nil {
		t.Fatal(err)
	}
	if !node.Complete(1) {
		t.Fatal("round should be complete")
	}
	if err := node.Aggregate(1); err != nil {
		t.Fatal(err)
	}
	got, err := node.Download(1, "P2")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2) > 1e-12 || math.Abs(got[1]-3) > 1e-12 {
		t.Fatalf("aggregated fragment %v", got)
	}
	// Leak API exposes uploads (used by the security analysis).
	leak := node.LeakRoundFragments(1)
	if len(leak) != 2 || leak["P1"][0] != 1 {
		t.Fatalf("leak = %v", leak)
	}
	node.DropRound(1)
	if node.LeakRoundFragments(1) != nil {
		t.Fatal("round state survived DropRound")
	}
}

func TestNodeRequiresProvisionedCVM(t *testing.T) {
	vendor, _ := sev.NewVendor()
	platform, _ := sev.NewPlatform("h", vendor)
	cvm, _ := platform.LaunchCVM(OVMF)
	// No provisioning: still paused, no secret.
	if _, err := NewAggregatorNode("agg", agg.IterativeAverage{}, cvm); err == nil {
		t.Fatal("node started without provisioned token")
	}
}

// What a breached aggregator sees must not reveal the original update: with
// shuffling on, the fragment differs from the plain partition.
func TestBreachedAggregatorSeesShuffledFragment(t *testing.T) {
	s := newTinySession(t, 2, true)
	if err := s.Setup(); err != nil {
		t.Fatal(err)
	}
	update := make(tensor.Vector, s.Mapper.NumParams())
	st := rng.NewStream([]byte("upd"), "v")
	for i := range update {
		update[i] = st.NormFloat64()
	}
	roundID, _ := s.Broker.RoundID(1)
	plainFrags, _ := s.Mapper.Partition(update)
	wireFrags, _ := Transform(s.Mapper, s.Shuffler, update, roundID, true)
	diff := 0
	for i := range plainFrags[0] {
		if plainFrags[0][i] != wireFrags[0][i] {
			diff++
		}
	}
	if diff < len(plainFrags[0])/2 {
		t.Fatalf("wire fragment barely differs from plain partition: %d/%d", diff, len(plainFrags[0]))
	}
}

// All session timing flows through the injected Clock: with a fake clock
// auto-advancing a fixed step per reading, two identical runs report
// identical (and nonzero) latencies — no wall-clock jitter, no sleeps.
func TestSessionLatencyDeterministicUnderFakeClock(t *testing.T) {
	runOnce := func() (*Session, *fl.History) {
		s := newTinySession(t, 2, true)
		clk := NewFakeClock(time.Unix(1_000_000, 0))
		clk.SetAutoAdvance(time.Millisecond)
		s.Clock = clk
		hist, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s, hist
	}
	s1, h1 := runOnce()
	s2, h2 := runOnce()
	if s1.SetupLatency <= 0 {
		t.Fatal("fake-clock setup latency not recorded")
	}
	if s1.SetupLatency != s2.SetupLatency {
		t.Fatalf("setup latency nondeterministic: %v vs %v", s1.SetupLatency, s2.SetupLatency)
	}
	last1 := h1.Rounds[len(h1.Rounds)-1].Cumulative
	last2 := h2.Rounds[len(h2.Rounds)-1].Cumulative
	if last1 <= 0 {
		t.Fatal("fake-clock cumulative latency not recorded")
	}
	if last1 != last2 {
		t.Fatalf("cumulative latency nondeterministic: %v vs %v", last1, last2)
	}
}

// A session configured with a round deadline threads it into every node.
func TestSessionThreadsLifecycleIntoNodes(t *testing.T) {
	s := newTinySession(t, 2, true)
	clk := NewFakeClock(time.Unix(1_000_000, 0))
	s.Clock = clk
	s.Opts.RoundDeadline = 30 * time.Second
	s.Opts.RoundGrace = time.Second
	if err := s.Setup(); err != nil {
		t.Fatal(err)
	}
	for _, n := range s.Nodes {
		n.Register("ghost") // only ghost uploads; others never show up
		if err := n.Upload(1, "ghost", tensor.Vector{1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(30 * time.Second)
	for _, n := range s.Nodes {
		if !n.Abandoned(1) {
			t.Fatalf("node %s ignored the session round deadline", n.ID)
		}
	}
}
