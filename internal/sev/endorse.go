package sev

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"errors"
)

// This file supports multi-process deployments: a platform's VCEK key pair
// is generated where the platform runs, and the vendor (reachable over RPC
// in cmd/deta-ap) endorses the public half — simulating the
// manufacturing-time key provisioning of real SEV hardware.

// GenerateVCEK creates a fresh platform endorsement key pair, returning the
// private key and its PKIX-marshaled public half to send to the vendor.
func GenerateVCEK() (*ecdsa.PrivateKey, []byte, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	pub, err := x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, nil, err
	}
	return key, pub, nil
}

// Endorse signs a platform's VCEK public key into a full certificate chain,
// playing AMD's manufacturing/endorsement role.
func (v *Vendor) Endorse(platformName string, vcekPub []byte) (CertChain, error) {
	if len(vcekPub) == 0 {
		return CertChain{}, errors.New("sev: empty VCEK public key")
	}
	vcek := Cert{Subject: "VCEK/" + platformName, PubKey: vcekPub}
	sig, err := ecdsa.SignASN1(rand.Reader, v.askKey, vcek.digest())
	if err != nil {
		return CertChain{}, err
	}
	vcek.Sig = sig
	return CertChain{ARK: v.ark, ASK: v.ask, VCEK: vcek}, nil
}

// NewEndorsedPlatform assembles a platform from a locally generated VCEK
// private key and the vendor-endorsed chain for its public half.
func NewEndorsedPlatform(name string, chain CertChain, vcekKey *ecdsa.PrivateKey) (*Platform, error) {
	pub, err := x509.MarshalPKIXPublicKey(&vcekKey.PublicKey)
	if err != nil {
		return nil, err
	}
	if string(pub) != string(chain.VCEK.PubKey) {
		return nil, errors.New("sev: chain does not endorse this VCEK key")
	}
	return &Platform{
		Name:    name,
		chain:   chain,
		vcekKey: vcekKey,
		cvms:    make(map[int]*CVM),
	}, nil
}
