// Package sev is a software simulation of the AMD SEV confidential-
// computing platform, faithful to the interfaces DeTA's protocol consumes
// (DESIGN.md §2): an AMD-rooted certificate chain (ARK -> ASK -> VCEK), an
// OVMF launch measurement, a pausable CVM launch flow with secret injection
// into encrypted guest memory, signed attestation reports, and a remote
// attestation service (RAS) that distributes the vendor root certificate.
//
// The simulation deliberately reproduces SEV's failure modes too: reports
// from tampered firmware carry the wrong measurement, chains not rooted in
// the RAS root fail verification, and secrets injected into a CVM are
// visible to the "hypervisor" only as ciphertext.
package sev

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"sync"
)

// Cert is a minimal certificate: a subject, a marshaled ECDSA public key,
// and the parent's signature over both. (A deliberate reduction of the SEV
// cert format; the verification logic is the same chain walk.)
type Cert struct {
	Subject string
	PubKey  []byte // PKIX-marshaled ECDSA P-256 public key
	Sig     []byte // ASN.1 ECDSA signature by the parent key
}

func (c Cert) digest() []byte {
	h := sha256.New()
	h.Write([]byte(c.Subject))
	h.Write([]byte{0})
	h.Write(c.PubKey)
	return h.Sum(nil)
}

// PublicKey unmarshals the certificate's key.
func (c Cert) PublicKey() (*ecdsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(c.PubKey)
	if err != nil {
		return nil, fmt.Errorf("sev: parse %s key: %w", c.Subject, err)
	}
	pk, ok := k.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("sev: %s key is not ECDSA", c.Subject)
	}
	return pk, nil
}

// CertChain is the SEV endorsement chain: the AMD Root Key signs the AMD
// SEV Signing Key, which signs the chip's Versioned Chip Endorsement Key.
type CertChain struct {
	ARK  Cert
	ASK  Cert
	VCEK Cert
}

// Verify walks the chain and confirms it is rooted in trustedRoot (the ARK
// distributed by the RAS).
func (ch CertChain) Verify(trustedRoot Cert) error {
	if string(ch.ARK.PubKey) != string(trustedRoot.PubKey) {
		return errors.New("sev: ARK does not match trusted AMD root")
	}
	arkKey, err := ch.ARK.PublicKey()
	if err != nil {
		return err
	}
	// ARK is self-signed.
	if !ecdsa.VerifyASN1(arkKey, ch.ARK.digest(), ch.ARK.Sig) {
		return errors.New("sev: ARK self-signature invalid")
	}
	if !ecdsa.VerifyASN1(arkKey, ch.ASK.digest(), ch.ASK.Sig) {
		return errors.New("sev: ASK not signed by ARK")
	}
	askKey, err := ch.ASK.PublicKey()
	if err != nil {
		return err
	}
	if !ecdsa.VerifyASN1(askKey, ch.VCEK.digest(), ch.VCEK.Sig) {
		return errors.New("sev: VCEK not signed by ASK")
	}
	return nil
}

// Platform simulates one SEV-capable host: its secure processor holds the
// endorsement chain's private VCEK and manages CVMs and their memory
// encryption keys.
type Platform struct {
	Name string

	chain   CertChain
	vcekKey *ecdsa.PrivateKey

	mu     sync.Mutex
	nextID int
	cvms   map[int]*CVM
}

// NewPlatform manufactures a platform whose chain is rooted at the given
// vendor. In production the ARK/ASK live at AMD; here the Vendor value
// plays that role.
func NewPlatform(name string, vendor *Vendor) (*Platform, error) {
	vcekKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	vcekPub, err := x509.MarshalPKIXPublicKey(&vcekKey.PublicKey)
	if err != nil {
		return nil, err
	}
	vcek := Cert{Subject: "VCEK/" + name, PubKey: vcekPub}
	sig, err := ecdsa.SignASN1(rand.Reader, vendor.askKey, vcek.digest())
	if err != nil {
		return nil, err
	}
	vcek.Sig = sig
	return &Platform{
		Name:    name,
		chain:   CertChain{ARK: vendor.ark, ASK: vendor.ask, VCEK: vcek},
		vcekKey: vcekKey,
		cvms:    make(map[int]*CVM),
	}, nil
}

// Chain returns the platform's endorsement certificate chain.
func (p *Platform) Chain() CertChain { return p.chain }

// Vendor simulates the CPU vendor's key infrastructure (AMD): the root ARK
// and intermediate ASK used to endorse platforms, and the RAS that
// distributes the root certificate.
type Vendor struct {
	ark    Cert
	ask    Cert
	arkKey *ecdsa.PrivateKey
	askKey *ecdsa.PrivateKey
}

// NewVendor generates a fresh vendor key hierarchy.
func NewVendor() (*Vendor, error) {
	arkKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	arkPub, err := x509.MarshalPKIXPublicKey(&arkKey.PublicKey)
	if err != nil {
		return nil, err
	}
	ark := Cert{Subject: "ARK", PubKey: arkPub}
	arkSig, err := ecdsa.SignASN1(rand.Reader, arkKey, ark.digest())
	if err != nil {
		return nil, err
	}
	ark.Sig = arkSig

	askKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	askPub, err := x509.MarshalPKIXPublicKey(&askKey.PublicKey)
	if err != nil {
		return nil, err
	}
	ask := Cert{Subject: "ASK", PubKey: askPub}
	askSig, err := ecdsa.SignASN1(rand.Reader, arkKey, ask.digest())
	if err != nil {
		return nil, err
	}
	ask.Sig = askSig

	return &Vendor{ark: ark, ask: ask, arkKey: arkKey, askKey: askKey}, nil
}

// RAS is the vendor's remote attestation service: the trusted distribution
// point for the root certificate (step 1 of the paper's Figure 1).
type RAS struct {
	root Cert
}

// RAS returns the vendor's attestation service.
func (v *Vendor) RAS() *RAS { return &RAS{root: v.ark} }

// RootCert returns the trusted AMD root certificate.
func (r *RAS) RootCert() Cert { return r.root }

// newVEK generates a fresh VM encryption key and AEAD for a CVM's memory.
func newVEK() (cipher.AEAD, []byte, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, nil, err
	}
	return aead, key, nil
}
