package sev

import "testing"

func benchPlatform(b *testing.B) (*Vendor, *Platform) {
	b.Helper()
	v, err := NewVendor()
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPlatform("bench-host", v)
	if err != nil {
		b.Fatal(err)
	}
	return v, p
}

func BenchmarkAttestCVM(b *testing.B) {
	_, p := benchPlatform(b)
	cvm, err := p.LaunchCVM(goodOVMF)
	if err != nil {
		b.Fatal(err)
	}
	nonce := []byte("bench-nonce-0123456789abcdef0123")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.AttestCVM(cvm, 0, nonce); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyReport(b *testing.B) {
	v, p := benchPlatform(b)
	cvm, _ := p.LaunchCVM(goodOVMF)
	nonce := []byte("bench-nonce-0123456789abcdef0123")
	r, err := p.AttestCVM(cvm, 0, nonce)
	if err != nil {
		b.Fatal(err)
	}
	root := v.RAS().RootCert()
	want := Measure(goodOVMF)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyReport(r, root, want, nonce); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainVerify(b *testing.B) {
	v, p := benchPlatform(b)
	chain := p.Chain()
	root := v.RAS().RootCert()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chain.Verify(root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaunchAndInject(b *testing.B) {
	_, p := benchPlatform(b)
	secret := []byte("ecdsa-token-material-placeholder")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cvm, err := p.LaunchCVM(goodOVMF)
		if err != nil {
			b.Fatal(err)
		}
		if err := cvm.InjectLaunchSecret(secret); err != nil {
			b.Fatal(err)
		}
		if err := cvm.Resume(); err != nil {
			b.Fatal(err)
		}
	}
}
