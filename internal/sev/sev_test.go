package sev

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"testing"
)

var goodOVMF = []byte("OVMF firmware image v1.0 -- trusted aggregator build")

func testVendorPlatform(t *testing.T) (*Vendor, *Platform) {
	t.Helper()
	v, err := NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlatform("epyc-7642-host1", v)
	if err != nil {
		t.Fatal(err)
	}
	return v, p
}

func TestChainVerifies(t *testing.T) {
	v, p := testVendorPlatform(t)
	if err := p.Chain().Verify(v.RAS().RootCert()); err != nil {
		t.Fatalf("genuine chain rejected: %v", err)
	}
}

func TestChainRejectsForeignRoot(t *testing.T) {
	_, p := testVendorPlatform(t)
	other, err := NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Chain().Verify(other.RAS().RootCert()); err == nil {
		t.Fatal("chain accepted under foreign root")
	}
}

func TestChainRejectsTamperedVCEK(t *testing.T) {
	v, p := testVendorPlatform(t)
	ch := p.Chain()
	// Swap in an attacker-generated VCEK key without a valid ASK signature.
	attacker, _ := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	pub, _ := x509.MarshalPKIXPublicKey(&attacker.PublicKey)
	ch.VCEK.PubKey = pub
	if err := ch.Verify(v.RAS().RootCert()); err == nil {
		t.Fatal("tampered VCEK accepted")
	}
}

func TestChainRejectsTamperedASK(t *testing.T) {
	v, p := testVendorPlatform(t)
	ch := p.Chain()
	ch.ASK.Subject = "ASK-evil"
	if err := ch.Verify(v.RAS().RootCert()); err == nil {
		t.Fatal("tampered ASK accepted")
	}
}

func TestCVMLifecycle(t *testing.T) {
	_, p := testVendorPlatform(t)
	cvm, err := p.LaunchCVM(goodOVMF)
	if err != nil {
		t.Fatal(err)
	}
	if cvm.State() != StateLaunchPaused {
		t.Fatalf("state after launch = %v", cvm.State())
	}
	if cvm.Measurement() != Measure(goodOVMF) {
		t.Fatal("measurement mismatch")
	}
	// Guest cannot read secrets before running.
	if _, err := cvm.GuestReadSecret(); err == nil {
		t.Fatal("guest read allowed while paused")
	}
	secret := []byte("ecdsa-auth-token")
	if err := cvm.InjectLaunchSecret(secret); err != nil {
		t.Fatal(err)
	}
	if err := cvm.Resume(); err != nil {
		t.Fatal(err)
	}
	if cvm.State() != StateRunning {
		t.Fatalf("state after resume = %v", cvm.State())
	}
	got, err := cvm.GuestReadSecret()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("guest secret corrupted")
	}
	// Cannot inject after resume.
	if err := cvm.InjectLaunchSecret([]byte("x")); !errors.Is(err, ErrBadState) {
		t.Fatalf("late injection: err = %v, want ErrBadState", err)
	}
	// Cannot resume twice.
	if err := cvm.Resume(); !errors.Is(err, ErrBadState) {
		t.Fatalf("double resume: err = %v", err)
	}
	cvm.Terminate()
	if _, err := cvm.GuestReadSecret(); !errors.Is(err, ErrTerminated) {
		t.Fatalf("read after terminate: err = %v", err)
	}
}

func TestGuestReadWithoutSecret(t *testing.T) {
	_, p := testVendorPlatform(t)
	cvm, _ := p.LaunchCVM(goodOVMF)
	_ = cvm.Resume()
	if _, err := cvm.GuestReadSecret(); !errors.Is(err, ErrNoSecret) {
		t.Fatalf("err = %v, want ErrNoSecret", err)
	}
}

func TestHypervisorSeesOnlyCiphertext(t *testing.T) {
	_, p := testVendorPlatform(t)
	cvm, _ := p.LaunchCVM(goodOVMF)
	secret := []byte("super-secret-ecdsa-key-material")
	if err := cvm.InjectLaunchSecret(secret); err != nil {
		t.Fatal(err)
	}
	hostView := cvm.HostReadMemory()
	if bytes.Contains(hostView, secret) {
		t.Fatal("plaintext secret visible to hypervisor")
	}
	if len(hostView) == 0 {
		t.Fatal("host view empty; secret not stored")
	}
}

func TestVEKsDifferAcrossCVMs(t *testing.T) {
	_, p := testVendorPlatform(t)
	a, _ := p.LaunchCVM(goodOVMF)
	b, _ := p.LaunchCVM(goodOVMF)
	secret := []byte("same-secret")
	_ = a.InjectLaunchSecret(secret)
	_ = b.InjectLaunchSecret(secret)
	if a.ASID == b.ASID {
		t.Fatal("ASIDs must be unique")
	}
	if bytes.Equal(a.HostReadMemory(), b.HostReadMemory()) {
		t.Fatal("two CVMs encrypted identical secret to identical ciphertext; VEK reuse")
	}
}

func TestAttestationReportVerifies(t *testing.T) {
	v, p := testVendorPlatform(t)
	cvm, _ := p.LaunchCVM(goodOVMF)
	nonce := []byte("ap-nonce-123")
	r, err := p.AttestCVM(cvm, 0x1, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReport(r, v.RAS().RootCert(), Measure(goodOVMF), nonce); err != nil {
		t.Fatalf("genuine report rejected: %v", err)
	}
}

func TestAttestationDetectsWrongFirmware(t *testing.T) {
	v, p := testVendorPlatform(t)
	evil := append([]byte(nil), goodOVMF...)
	evil[0] ^= 0xFF // tampered firmware (e.g. collusion code)
	cvm, _ := p.LaunchCVM(evil)
	nonce := []byte("n")
	r, _ := p.AttestCVM(cvm, 0, nonce)
	err := VerifyReport(r, v.RAS().RootCert(), Measure(goodOVMF), nonce)
	if !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("err = %v, want ErrBadMeasurement", err)
	}
}

func TestAttestationDetectsTamperedReport(t *testing.T) {
	v, p := testVendorPlatform(t)
	cvm, _ := p.LaunchCVM(goodOVMF)
	nonce := []byte("n")
	r, _ := p.AttestCVM(cvm, 0, nonce)
	// Adversary rewrites the measurement to impersonate good firmware.
	r.Measurement = Measure(goodOVMF)
	r.PlatformName = "spoofed"
	err := VerifyReport(r, v.RAS().RootCert(), Measure(goodOVMF), nonce)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestAttestationDetectsNonceReplay(t *testing.T) {
	v, p := testVendorPlatform(t)
	cvm, _ := p.LaunchCVM(goodOVMF)
	r, _ := p.AttestCVM(cvm, 0, []byte("old-nonce"))
	err := VerifyReport(r, v.RAS().RootCert(), Measure(goodOVMF), []byte("fresh-nonce"))
	if !errors.Is(err, ErrBadNonce) {
		t.Fatalf("err = %v, want ErrBadNonce", err)
	}
}

func TestAttestationRejectsForeignPlatform(t *testing.T) {
	v, _ := testVendorPlatform(t)
	otherVendor, _ := NewVendor()
	foreignPlatform, _ := NewPlatform("foreign", otherVendor)
	cvm, _ := foreignPlatform.LaunchCVM(goodOVMF)
	nonce := []byte("n")
	r, _ := foreignPlatform.AttestCVM(cvm, 0, nonce)
	if err := VerifyReport(r, v.RAS().RootCert(), Measure(goodOVMF), nonce); err == nil {
		t.Fatal("report from foreign vendor accepted")
	}
}

func TestAttestAfterTerminate(t *testing.T) {
	_, p := testVendorPlatform(t)
	cvm, _ := p.LaunchCVM(goodOVMF)
	cvm.Terminate()
	if _, err := p.AttestCVM(cvm, 0, nil); !errors.Is(err, ErrBadState) {
		t.Fatalf("err = %v, want ErrBadState", err)
	}
}

func TestVerifyNilReport(t *testing.T) {
	v, _ := testVendorPlatform(t)
	if err := VerifyReport(nil, v.RAS().RootCert(), [32]byte{}, nil); err == nil {
		t.Fatal("nil report accepted")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[CVMState]string{
		StateCreated: "created", StateLaunchPaused: "launch-paused",
		StateRunning: "running", StateTerminated: "terminated",
		CVMState(99): "state(99)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
