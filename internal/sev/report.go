package sev

import (
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// AttestationReport is the signed evidence a CVM's platform produces: the
// launch measurement, a caller-chosen nonce binding (ReportData), a policy
// word, and the endorsement chain, all signed by the platform's VCEK.
type AttestationReport struct {
	PlatformName string
	ASID         int
	Measurement  [32]byte
	Policy       uint64
	ReportData   []byte // verifier-supplied nonce, replay protection
	Chain        CertChain
	Signature    []byte
}

func (r *AttestationReport) digest() []byte {
	h := sha256.New()
	h.Write([]byte(r.PlatformName))
	h.Write([]byte{0})
	var asid [8]byte
	binary.BigEndian.PutUint64(asid[:], uint64(r.ASID))
	h.Write(asid[:])
	h.Write(r.Measurement[:])
	var pol [8]byte
	binary.BigEndian.PutUint64(pol[:], r.Policy)
	h.Write(pol[:])
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(r.ReportData)))
	h.Write(n[:])
	h.Write(r.ReportData)
	// The chain is bound by hashing the VCEK cert (its parents are
	// validated separately during chain verification).
	h.Write(r.Chain.VCEK.digest())
	return h.Sum(nil)
}

// AttestCVM asks the platform's secure processor to produce a signed
// attestation report for the given CVM, binding reportData (the verifier's
// nonce). Legal in the paused and running states.
func (p *Platform) AttestCVM(cvm *CVM, policy uint64, reportData []byte) (*AttestationReport, error) {
	cvm.mu.Lock()
	state := cvm.state
	meas := cvm.measurement
	cvm.mu.Unlock()
	if state != StateLaunchPaused && state != StateRunning {
		return nil, ErrBadState
	}
	r := &AttestationReport{
		PlatformName: p.Name,
		ASID:         cvm.ASID,
		Measurement:  meas,
		Policy:       policy,
		ReportData:   append([]byte(nil), reportData...),
		Chain:        p.chain,
	}
	sig, err := ecdsa.SignASN1(rand.Reader, p.vcekKey, r.digest())
	if err != nil {
		return nil, err
	}
	r.Signature = sig
	return r, nil
}

// Report verification errors.
var (
	ErrBadSignature   = errors.New("sev: attestation report signature invalid")
	ErrBadMeasurement = errors.New("sev: launch measurement mismatch")
	ErrBadNonce       = errors.New("sev: report data does not match expected nonce")
)

// VerifyReport checks a report end to end: certificate chain rooted in the
// trusted ARK, VCEK signature over the report body, expected launch
// measurement, and nonce binding. This is the verification the paper's
// attestation proxy performs in Phase I.
func VerifyReport(r *AttestationReport, trustedRoot Cert, wantMeasurement [32]byte, wantNonce []byte) error {
	if r == nil {
		return errors.New("sev: nil report")
	}
	if err := r.Chain.Verify(trustedRoot); err != nil {
		return err
	}
	vcekKey, err := r.Chain.VCEK.PublicKey()
	if err != nil {
		return err
	}
	if !ecdsa.VerifyASN1(vcekKey, r.digest(), r.Signature) {
		return ErrBadSignature
	}
	if r.Measurement != wantMeasurement {
		return ErrBadMeasurement
	}
	if string(r.ReportData) != string(wantNonce) {
		return ErrBadNonce
	}
	return nil
}
