package sev

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// CVMState tracks the confidential VM launch lifecycle. The paused state is
// the point where SEV's LAUNCH_SECRET flow injects owner secrets before the
// guest runs (paper §4.3, Phase I).
type CVMState int

// CVM lifecycle states.
const (
	StateCreated CVMState = iota
	StateLaunchPaused
	StateRunning
	StateTerminated
)

func (s CVMState) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateLaunchPaused:
		return "launch-paused"
	case StateRunning:
		return "running"
	case StateTerminated:
		return "terminated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Lifecycle errors.
var (
	ErrBadState   = errors.New("sev: operation invalid in current CVM state")
	ErrNoSecret   = errors.New("sev: no secret injected")
	ErrTerminated = errors.New("sev: CVM terminated")
)

// CVM is one confidential VM: an ASID, a memory encryption key (VEK) held
// by the secure processor, the launch measurement of its firmware, and an
// encrypted secret region.
type CVM struct {
	ASID     int
	platform *Platform

	mu          sync.Mutex
	state       CVMState
	measurement [32]byte

	aead interface {
		Seal(dst, nonce, plaintext, additionalData []byte) []byte
		Open(dst, nonce, ciphertext, additionalData []byte) ([]byte, error)
	}
	secretCT []byte // nonce || AES-GCM ciphertext of the injected secret
}

// Measure computes the launch measurement of a firmware image, as the
// secure processor would during LAUNCH_MEASURE.
func Measure(ovmf []byte) [32]byte { return sha256.Sum256(ovmf) }

// LaunchCVM starts the launch of a CVM running the given OVMF firmware
// image and pauses it awaiting secret injection. This models
// LAUNCH_START/LAUNCH_UPDATE/LAUNCH_MEASURE with the pause described in
// the paper's Phase I.
func (p *Platform) LaunchCVM(ovmf []byte) (*CVM, error) {
	aead, _, err := newVEK()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	cvm := &CVM{
		ASID:        p.nextID,
		platform:    p,
		state:       StateLaunchPaused,
		measurement: Measure(ovmf),
		aead:        aead,
	}
	p.cvms[cvm.ASID] = cvm
	return cvm, nil
}

// State returns the CVM's lifecycle state.
func (c *CVM) State() CVMState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Measurement returns the launch measurement.
func (c *CVM) Measurement() [32]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.measurement
}

// InjectLaunchSecret encrypts the secret into the CVM's memory with its
// VEK. Only legal while the launch is paused — exactly the
// sev-inject-launch-secret flow the paper patches QEMU for.
func (c *CVM) InjectLaunchSecret(secret []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateLaunchPaused {
		return fmt.Errorf("%w: inject in %s", ErrBadState, c.state)
	}
	nonce := make([]byte, 12)
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	ct := c.aead.Seal(nil, nonce, secret, []byte("launch-secret"))
	c.secretCT = append(nonce, ct...)
	return nil
}

// Resume completes the launch; the guest starts running.
func (c *CVM) Resume() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateLaunchPaused {
		return fmt.Errorf("%w: resume in %s", ErrBadState, c.state)
	}
	c.state = StateRunning
	return nil
}

// Terminate stops the CVM and destroys its VEK-protected contents.
func (c *CVM) Terminate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state = StateTerminated
	c.secretCT = nil
}

// GuestReadSecret is what code running *inside* the CVM sees: the secure
// processor transparently decrypts the secret region. Only available while
// running.
func (c *CVM) GuestReadSecret() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateTerminated {
		return nil, ErrTerminated
	}
	if c.state != StateRunning {
		return nil, fmt.Errorf("%w: guest read in %s", ErrBadState, c.state)
	}
	if c.secretCT == nil {
		return nil, ErrNoSecret
	}
	nonce, ct := c.secretCT[:12], c.secretCT[12:]
	pt, err := c.aead.Open(nil, nonce, ct, []byte("launch-secret"))
	if err != nil {
		return nil, fmt.Errorf("sev: guest decrypt: %w", err)
	}
	return pt, nil
}

// HostReadMemory is what the *hypervisor* sees when it reads the secret
// region: ciphertext only. This models SEV's defense against privileged
// host administrators.
func (c *CVM) HostReadMemory() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.secretCT...)
}
