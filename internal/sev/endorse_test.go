package sev

import "testing"

func TestEndorseFlow(t *testing.T) {
	v, err := NewVendor()
	if err != nil {
		t.Fatal(err)
	}
	key, pub, err := GenerateVCEK()
	if err != nil {
		t.Fatal(err)
	}
	chain, err := v.Endorse("factory-host", pub)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.Verify(v.RAS().RootCert()); err != nil {
		t.Fatalf("endorsed chain invalid: %v", err)
	}
	p, err := NewEndorsedPlatform("factory-host", chain, key)
	if err != nil {
		t.Fatal(err)
	}
	// The endorsed platform must produce verifiable reports.
	cvm, err := p.LaunchCVM(goodOVMF)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("endorse-nonce")
	r, err := p.AttestCVM(cvm, 0, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReport(r, v.RAS().RootCert(), Measure(goodOVMF), nonce); err != nil {
		t.Fatalf("report from endorsed platform rejected: %v", err)
	}
}

func TestEndorseEmptyKeyRejected(t *testing.T) {
	v, _ := NewVendor()
	if _, err := v.Endorse("x", nil); err == nil {
		t.Fatal("empty key endorsed")
	}
}

func TestNewEndorsedPlatformKeyMismatch(t *testing.T) {
	v, _ := NewVendor()
	_, pub, _ := GenerateVCEK()
	chain, err := v.Endorse("h", pub)
	if err != nil {
		t.Fatal(err)
	}
	other, _, _ := GenerateVCEK()
	if _, err := NewEndorsedPlatform("h", chain, other); err == nil {
		t.Fatal("mismatched key accepted")
	}
}

func TestEndorsedChainFromForeignVendorRejected(t *testing.T) {
	v1, _ := NewVendor()
	v2, _ := NewVendor()
	_, pub, _ := GenerateVCEK()
	chain, err := v2.Endorse("h", pub)
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.Verify(v1.RAS().RootCert()); err == nil {
		t.Fatal("foreign-vendor endorsement accepted")
	}
}
