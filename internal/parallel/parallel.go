// Package parallel provides the chunked data-parallel substrate for the
// compute-heavy kernels in this repository: coordinate-wise aggregation,
// Paillier vector crypto, the partition/shuffle transform pipeline, and
// convolution lowering. It mirrors, for the compute plane, what the
// multiplexed transport does for the wire plane (DESIGN.md §7): work is
// split into independent chunks that run on a small reusable worker pool,
// and the cost of a kernel approaches the slowest chunk rather than the sum.
//
// Every helper here preserves bit-identical results with respect to the
// serial loop it replaces: chunks never split a single element's
// computation, and no floating-point accumulation order crosses a chunk
// boundary. That is the same structural property (coordinate independence)
// DeTA itself relies on to make decentralized aggregation exact, so kernels
// parallelized through this package stay exactly equivalent to their serial
// forms — enforced by the serial-vs-parallel property tests in each package.
//
// Scheduling model: For splits [0,n) into at most Workers() contiguous
// chunks of at least grain elements. The calling goroutine always claims
// chunks itself (so nested For calls can never deadlock: the innermost
// caller drains its own job even if every pool worker is busy), while idle
// pool workers steal the remaining chunks. Below the grain threshold, or
// with Workers() == 1, the loop runs serially inline with zero overhead.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is a reasonable minimum chunk size for cheap per-element
// work (a few arithmetic ops per element). Kernels with expensive elements
// (a sort, a big-int Exp) should pass a much smaller grain, down to 1.
const DefaultGrain = 2048

var (
	// maxWorkers caps how many goroutines (caller included) participate in
	// one For call. Defaults to GOMAXPROCS at package init; SetWorkers
	// overrides it (tests use this to force serial and oversubscribed runs).
	maxWorkers atomic.Int64

	poolMu  sync.Mutex
	spawned int         // pool goroutines started so far (they never exit)
	tasks   chan func() // pending helper invitations
)

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
	tasks = make(chan func(), 256)
}

// Workers returns the current worker cap (including the caller).
func Workers() int { return int(maxWorkers.Load()) }

// SetWorkers sets the worker cap and returns the previous value. n < 1 is
// clamped to 1 (fully serial). Intended for tests and tuning; the default
// of GOMAXPROCS is right for production use.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// poolWorker runs helper invitations forever. Workers are spawned lazily up
// to the cap and then reused for the life of the process; an idle worker
// parks on the channel and costs nothing.
func poolWorker() {
	for f := range tasks {
		f()
	}
}

// invite asks up to k pool workers to help run f. Invitations are
// best-effort: if the queue is full the caller simply proceeds with fewer
// helpers, and a helper that arrives after the job is drained returns
// immediately.
func invite(k int, f func()) {
	w := Workers()
	poolMu.Lock()
	for spawned < w-1 { // the caller itself is one worker
		spawned++
		go poolWorker()
	}
	poolMu.Unlock()
	for i := 0; i < k; i++ {
		select {
		case tasks <- f:
		default:
			return
		}
	}
}

// job is one For invocation: an atomically claimed sequence of chunks.
type job struct {
	fn   func(lo, hi int)
	n    int
	size int
	next atomic.Int64
	wg   sync.WaitGroup

	panicMu  sync.Mutex
	panicked bool
	panicVal any // first recovered panic, re-raised by the caller
}

// run claims and executes chunks until the job is drained. Executed by the
// caller and by any pool workers that accepted the invitation.
func (j *job) run() {
	for {
		lo := int(j.next.Add(int64(j.size))) - j.size
		if lo >= j.n {
			return
		}
		hi := lo + j.size
		if hi > j.n {
			hi = j.n
		}
		j.runChunk(lo, hi)
	}
}

func (j *job) runChunk(lo, hi int) {
	defer j.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			j.panicMu.Lock()
			if !j.panicked {
				j.panicked, j.panicVal = true, r
			}
			j.panicMu.Unlock()
		}
	}()
	j.fn(lo, hi)
}

// For runs fn over contiguous index ranges covering [0, n) exactly once,
// in parallel across at most Workers() goroutines. fn must be safe to call
// concurrently on disjoint ranges. If n <= grain (or only one worker is
// configured) the whole range runs inline on the caller. grain < 1 is
// treated as 1. A panic in fn is re-raised on the calling goroutine after
// all chunks finish.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	chunks := (n + grain - 1) / grain
	if w <= 1 || chunks <= 1 {
		fn(0, n)
		return
	}
	if chunks > w {
		chunks = w
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size // final chunk count at this size
	j := &job{fn: fn, n: n, size: size}
	j.wg.Add(chunks)
	invite(chunks-1, j.run)
	j.run()
	j.wg.Wait()
	if j.panicked {
		panic(j.panicVal)
	}
}

// ForErr is For with an error-returning body. The error returned is the one
// from the lowest-indexed failing range (deterministic regardless of
// scheduling); other chunks still run to completion.
func ForErr(n, grain int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	type slot struct {
		lo  int
		err error
	}
	var (
		mu    sync.Mutex
		first *slot
	)
	For(n, grain, func(lo, hi int) {
		if err := fn(lo, hi); err != nil {
			mu.Lock()
			if first == nil || lo < first.lo {
				first = &slot{lo: lo, err: err}
			}
			mu.Unlock()
		}
	})
	if first != nil {
		return first.err
	}
	return nil
}

// Map applies fn to every element of xs in parallel and returns the
// results in order. fn receives the element index and value.
func Map[T, R any](xs []T, grain int, fn func(i int, x T) R) []R {
	out := make([]R, len(xs))
	For(len(xs), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i, xs[i])
		}
	})
	return out
}

// MapErr is Map with an error-returning body; on error it returns the
// error from the lowest-indexed failing element.
func MapErr[T, R any](xs []T, grain int, fn func(i int, x T) (R, error)) ([]R, error) {
	out := make([]R, len(xs))
	err := ForErr(len(xs), grain, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			r, err := fn(i, xs[i])
			if err != nil {
				return err
			}
			out[i] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
