package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// withWorkers runs f under a temporary worker cap, restoring the old one.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, grain := range []int{0, 1, 3, 100, 1 << 20} {
			for _, n := range []int{0, 1, 2, 7, 100, 1023} {
				withWorkers(t, workers, func() {
					hits := make([]int32, n)
					For(n, grain, func(lo, hi int) {
						if lo < 0 || hi > n || lo >= hi {
							t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
					for i, h := range hits {
						if h != 1 {
							t.Fatalf("workers=%d grain=%d n=%d: index %d visited %d times",
								workers, grain, n, i, h)
						}
					}
				})
			}
		}
	}
}

func TestForMatchesSerialSum(t *testing.T) {
	// Chunked parallel accumulation into per-index slots must reproduce the
	// serial result bit-for-bit for any worker count and grain.
	f := func(seed uint16, workersRaw, grainRaw uint8) bool {
		n := int(seed%500) + 1
		workers := int(workersRaw%8) + 1
		grain := int(grainRaw % 64) // includes 0
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i%17) * 0.25
		}
		want := make([]float64, n)
		for i := range xs {
			want[i] = xs[i] * 3
		}
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		got := make([]float64, n)
		For(n, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = xs[i] * 3
			}
		})
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	withWorkers(t, 4, func() {
		var total atomic.Int64
		For(8, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				For(16, 1, func(lo2, hi2 int) {
					total.Add(int64(hi2 - lo2))
				})
			}
		})
		if total.Load() != 8*16 {
			t.Fatalf("nested For covered %d of %d", total.Load(), 8*16)
		}
	})
}

func TestForPanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		For(32, 1, func(lo, hi int) {
			if lo == 0 {
				panic("boom")
			}
		})
		t.Fatal("For returned despite panic")
	})
}

func TestForErrReturnsLowestIndexedError(t *testing.T) {
	withWorkers(t, 4, func() {
		err := ForErr(100, 1, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if i >= 40 {
					return fmt.Errorf("element %d failed", i)
				}
			}
			return nil
		})
		if err == nil {
			t.Fatal("ForErr swallowed the error")
		}
		// Element 40 is the first failure, so whichever chunk holds it is the
		// lowest-indexed failing range regardless of chunk layout/scheduling.
		if got := err.Error(); got != "element 40 failed" {
			t.Fatalf("err = %q, want the lowest-indexed chunk's error", got)
		}
	})
	if err := ForErr(10, 1, func(lo, hi int) error { return nil }); err != nil {
		t.Fatalf("ForErr on success = %v", err)
	}
}

func TestMap(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		withWorkers(t, workers, func() {
			xs := make([]int, 257)
			for i := range xs {
				xs[i] = i
			}
			out := Map(xs, 1, func(i, x int) int { return x * x })
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
				}
			}
		})
	}
}

func TestMapErr(t *testing.T) {
	sentinel := errors.New("bad element")
	withWorkers(t, 4, func() {
		xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
		if _, err := MapErr(xs, 1, func(i, x int) (int, error) {
			if x >= 5 {
				return 0, sentinel
			}
			return x + 1, nil
		}); !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want sentinel", err)
		}
		out, err := MapErr(xs, 3, func(i, x int) (int, error) { return x * 2, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != xs[i]*2 {
				t.Fatalf("out[%d] = %d", i, v)
			}
		}
	})
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(0) // clamped to 1
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0)", Workers())
	}
	SetWorkers(prev)
	if Workers() != prev {
		t.Fatalf("Workers() = %d, want restored %d", Workers(), prev)
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("For invoked fn for n <= 0")
	}
	if err := ForErr(0, 1, func(lo, hi int) error { return errors.New("x") }); err != nil {
		t.Fatal("ForErr invoked fn for n = 0")
	}
}
