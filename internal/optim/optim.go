// Package optim provides the optimizers the reproduction needs: plain and
// momentum SGD for local training, Adam for the Inverting Gradients attack,
// and L-BFGS (two-loop recursion) for the DLG/iDLG attacks — matching the
// optimizers the respective papers use.
package optim

import (
	"errors"
	"fmt"
	"math"

	"deta/internal/tensor"
)

// Optimizer updates a parameter vector in place given its gradient.
type Optimizer interface {
	// Step applies one update. params and grad must have the length the
	// optimizer was constructed with.
	Step(params, grad tensor.Vector) error
	// Reset clears internal state (moments, history).
	Reset()
}

// SGD is plain stochastic gradient descent with optional momentum and
// weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity tensor.Vector
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// NewMomentumSGD returns SGD with classical momentum.
func NewMomentumSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(params, grad tensor.Vector) error {
	if len(params) != len(grad) {
		return fmt.Errorf("optim: params/grad length mismatch: %d vs %d", len(params), len(grad))
	}
	if s.Momentum == 0 {
		for i := range params {
			g := grad[i] + s.WeightDecay*params[i]
			params[i] -= s.LR * g
		}
		return nil
	}
	if len(s.velocity) != len(params) {
		s.velocity = make(tensor.Vector, len(params))
	}
	for i := range params {
		g := grad[i] + s.WeightDecay*params[i]
		s.velocity[i] = s.Momentum*s.velocity[i] + g
		params[i] -= s.LR * s.velocity[i]
	}
	return nil
}

// Reset implements Optimizer.
func (s *SGD) Reset() { s.velocity = nil }

// Adam is the Adam optimizer (Kingma & Ba), used by the IG attack.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t    int
	m, v tensor.Vector
}

// NewAdam returns Adam with standard hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grad tensor.Vector) error {
	if len(params) != len(grad) {
		return fmt.Errorf("optim: params/grad length mismatch: %d vs %d", len(params), len(grad))
	}
	if len(a.m) != len(params) {
		a.m = make(tensor.Vector, len(params))
		a.v = make(tensor.Vector, len(params))
		a.t = 0
	}
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range params {
		g := grad[i]
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mHat := a.m[i] / b1c
		vHat := a.v[i] / b2c
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
	}
	return nil
}

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// LBFGS implements the limited-memory BFGS direction via the standard
// two-loop recursion, with a fixed step size and curvature-pair history.
// DLG drives its dummy-input optimization with L-BFGS; we reproduce that.
//
// This is a steplength-free variant (no Wolfe line search): the caller
// supplies a step size, which matches how the attack reference
// implementations configure torch.optim.LBFGS with a fixed lr.
type LBFGS struct {
	LR      float64
	History int

	sHist, yHist []tensor.Vector
	rhoHist      []float64
	prevX        tensor.Vector
	prevG        tensor.Vector
}

// NewLBFGS returns an L-BFGS optimizer with history m (typically 5-20).
func NewLBFGS(lr float64, history int) *LBFGS {
	if history < 1 {
		history = 10
	}
	return &LBFGS{LR: lr, History: history}
}

// Step implements Optimizer.
func (l *LBFGS) Step(params, grad tensor.Vector) error {
	if len(params) != len(grad) {
		return fmt.Errorf("optim: params/grad length mismatch: %d vs %d", len(params), len(grad))
	}
	if l.prevX != nil {
		s, err := tensor.Sub(params, l.prevX)
		if err != nil {
			return err
		}
		y, err := tensor.Sub(grad, l.prevG)
		if err != nil {
			return err
		}
		sy, _ := tensor.Dot(s, y)
		if sy > 1e-10 {
			l.sHist = append(l.sHist, s)
			l.yHist = append(l.yHist, y)
			l.rhoHist = append(l.rhoHist, 1/sy)
			if len(l.sHist) > l.History {
				l.sHist = l.sHist[1:]
				l.yHist = l.yHist[1:]
				l.rhoHist = l.rhoHist[1:]
			}
		}
	}
	l.prevX = params.Clone()
	l.prevG = grad.Clone()

	// Two-loop recursion computes H*grad.
	q := grad.Clone()
	k := len(l.sHist)
	alpha := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		d, _ := tensor.Dot(l.sHist[i], q)
		alpha[i] = l.rhoHist[i] * d
		if err := tensor.AXPY(-alpha[i], q, l.yHist[i]); err != nil {
			return err
		}
	}
	// Initial Hessian scaling gamma = s.y / y.y from the newest pair.
	if k > 0 {
		sy, _ := tensor.Dot(l.sHist[k-1], l.yHist[k-1])
		yy, _ := tensor.Dot(l.yHist[k-1], l.yHist[k-1])
		if yy > 0 {
			tensor.ScaleInPlace(sy/yy, q)
		}
	}
	for i := 0; i < k; i++ {
		d, _ := tensor.Dot(l.yHist[i], q)
		beta := l.rhoHist[i] * d
		if err := tensor.AXPY(alpha[i]-beta, q, l.sHist[i]); err != nil {
			return err
		}
	}
	// Descend along the quasi-Newton direction.
	return tensor.AXPY(-l.LR, params, q)
}

// Reset implements Optimizer.
func (l *LBFGS) Reset() {
	l.sHist, l.yHist, l.rhoHist = nil, nil, nil
	l.prevX, l.prevG = nil, nil
}

// ErrDiverged signals that an optimization produced non-finite parameters.
var ErrDiverged = errors.New("optim: optimization diverged to non-finite values")

// CheckFinite returns ErrDiverged if params contain NaN or Inf.
func CheckFinite(params tensor.Vector) error {
	if !tensor.IsFinite(params) {
		return ErrDiverged
	}
	return nil
}
