package optim

import (
	"math"
	"testing"

	"deta/internal/tensor"
)

// quadratic is f(x) = 0.5 * sum(c_i * x_i^2) with gradient c_i * x_i — a
// convex test function with known minimum at the origin.
func quadGrad(c, x tensor.Vector) tensor.Vector {
	g := make(tensor.Vector, len(x))
	for i := range x {
		g[i] = c[i] * x[i]
	}
	return g
}

func quadVal(c, x tensor.Vector) float64 {
	var s float64
	for i := range x {
		s += 0.5 * c[i] * x[i] * x[i]
	}
	return s
}

func runOpt(t *testing.T, opt Optimizer, iters int, lossBound float64) {
	t.Helper()
	c := tensor.Vector{1, 4, 0.5, 2}
	x := tensor.Vector{3, -2, 5, 1}
	for i := 0; i < iters; i++ {
		if err := opt.Step(x, quadGrad(c, x)); err != nil {
			t.Fatal(err)
		}
	}
	if v := quadVal(c, x); v > lossBound {
		t.Fatalf("loss after %d iters = %v, want < %v (x=%v)", iters, v, lossBound, x)
	}
}

func TestSGDConverges(t *testing.T)      { runOpt(t, NewSGD(0.1), 300, 1e-6) }
func TestMomentumConverges(t *testing.T) { runOpt(t, NewMomentumSGD(0.05, 0.9), 300, 1e-6) }
func TestAdamConverges(t *testing.T)     { runOpt(t, NewAdam(0.1), 500, 1e-6) }
func TestLBFGSConverges(t *testing.T)    { runOpt(t, NewLBFGS(0.5, 10), 100, 1e-8) }

func TestLBFGSBeatsSGDOnIllConditioned(t *testing.T) {
	// Condition number 1e4: L-BFGS should converge far faster than SGD at
	// a stable learning rate.
	c := tensor.Vector{1e4, 1}
	run := func(opt Optimizer, iters int) float64 {
		x := tensor.Vector{1, 1}
		for i := 0; i < iters; i++ {
			if err := opt.Step(x, quadGrad(c, x)); err != nil {
				t.Fatal(err)
			}
		}
		return quadVal(c, x)
	}
	// SGD stable lr must be < 2/1e4.
	sgdLoss := run(NewSGD(1e-4), 200)
	lbfgsLoss := run(NewLBFGS(1.0, 10), 200)
	if lbfgsLoss >= sgdLoss {
		t.Fatalf("L-BFGS (%v) should beat SGD (%v) on ill-conditioned problem", lbfgsLoss, sgdLoss)
	}
}

func TestStepLengthMismatch(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1), NewMomentumSGD(0.1, 0.9), NewAdam(0.1), NewLBFGS(0.1, 5)} {
		if err := opt.Step(tensor.Vector{1, 2}, tensor.Vector{1}); err == nil {
			t.Errorf("%T: want length-mismatch error", opt)
		}
	}
}

func TestReset(t *testing.T) {
	c := tensor.Vector{1, 1}
	x := tensor.Vector{2, 2}
	a := NewAdam(0.1)
	_ = a.Step(x, quadGrad(c, x))
	a.Reset()
	if a.m != nil || a.t != 0 {
		t.Fatal("Adam.Reset did not clear state")
	}
	l := NewLBFGS(0.1, 5)
	_ = l.Step(x, quadGrad(c, x))
	_ = l.Step(x, quadGrad(c, x))
	l.Reset()
	if l.sHist != nil || l.prevX != nil {
		t.Fatal("LBFGS.Reset did not clear state")
	}
}

func TestLBFGSHistoryBound(t *testing.T) {
	l := NewLBFGS(0.1, 3)
	c := tensor.Vector{1, 2, 3}
	x := tensor.Vector{5, 5, 5}
	for i := 0; i < 20; i++ {
		if err := l.Step(x, quadGrad(c, x)); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.sHist) > 3 {
		t.Fatalf("history grew to %d, bound is 3", len(l.sHist))
	}
}

func TestSGDWeightDecay(t *testing.T) {
	s := NewSGD(0.1)
	s.WeightDecay = 0.5
	x := tensor.Vector{1}
	zeroGrad := tensor.Vector{0}
	_ = s.Step(x, zeroGrad)
	// x <- x - lr*wd*x = 1 - 0.05 = 0.95
	if math.Abs(x[0]-0.95) > 1e-12 {
		t.Fatalf("weight decay step: x = %v", x[0])
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite(tensor.Vector{1, 2}); err != nil {
		t.Fatal("finite vector rejected")
	}
	if err := CheckFinite(tensor.Vector{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestNewLBFGSDefaultHistory(t *testing.T) {
	l := NewLBFGS(0.1, 0)
	if l.History != 10 {
		t.Fatalf("default history = %d, want 10", l.History)
	}
}
