// Package dataset provides deterministic synthetic stand-ins for the
// datasets the paper evaluates on (MNIST, CIFAR-10, CIFAR-100, ImageNet,
// RVL-CDIP). Each synthetic dataset preserves what the experiments consume:
// class count, channel count, and image geometry, with class-conditional
// procedural patterns (smooth Gaussian bumps plus class-specific gratings)
// that convolutional networks genuinely learn. See DESIGN.md §2 for why this
// substitution preserves the paper's results.
//
// Everything is seeded: the same (spec, n, seed) always yields the same
// samples, so experiments are reproducible byte-for-byte.
package dataset

import (
	"fmt"
	"math"

	"deta/internal/rng"
)

// Spec describes a dataset family.
type Spec struct {
	Name    string
	C, H, W int
	Classes int
}

// Dim returns the flattened input dimension.
func (s Spec) Dim() int { return s.C * s.H * s.W }

// Canonical specs mirroring the paper's datasets at reproduction scale.
var (
	// MNIST: 28x28 grayscale, 10 digit classes.
	MNIST = Spec{Name: "mnist-syn", C: 1, H: 28, W: 28, Classes: 10}
	// CIFAR10: 32x32 RGB, 10 classes.
	CIFAR10 = Spec{Name: "cifar10-syn", C: 3, H: 32, W: 32, Classes: 10}
	// CIFAR100: 32x32 RGB, 100 classes (DLG/iDLG attack inputs).
	CIFAR100 = Spec{Name: "cifar100-syn", C: 3, H: 32, W: 32, Classes: 100}
	// TinyImageNet: reduced-resolution ImageNet stand-in for the IG attack.
	TinyImageNet = Spec{Name: "imagenet-syn", C: 3, H: 16, W: 16, Classes: 100}
	// RVLCDIP: 32x32 grayscale document-like images, 16 classes.
	RVLCDIP = Spec{Name: "rvlcdip-syn", C: 1, H: 32, W: 32, Classes: 16}
)

// Sample is one training example: a flattened CHW image in [0,1] and its
// class label.
type Sample struct {
	X     []float64
	Label int
}

// Dataset is a materialized list of samples drawn from one Spec.
type Dataset struct {
	Spec    Spec
	Samples []Sample
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// At returns sample i.
func (d *Dataset) At(i int) Sample { return d.Samples[i] }

// classTemplate builds the deterministic prototype image for one class:
// a smooth field of Gaussian bumps plus a class-frequency grating.
func classTemplate(spec Spec, class int, seed []byte) []float64 {
	s := rng.NewStream(rng.DeriveSeed(seed, []byte(spec.Name), []byte{byte(class), byte(class >> 8)}), "template")
	t := make([]float64, spec.Dim())
	for c := 0; c < spec.C; c++ {
		// Gaussian bumps.
		const bumps = 4
		type bump struct{ cy, cx, sigma, amp float64 }
		bs := make([]bump, bumps)
		for i := range bs {
			bs[i] = bump{
				cy:    s.Float64() * float64(spec.H),
				cx:    s.Float64() * float64(spec.W),
				sigma: 1.5 + s.Float64()*float64(spec.H)/4,
				amp:   0.4 + s.Float64()*0.6,
			}
		}
		// Class grating: frequency and phase derived from class identity.
		fy := 0.2 + s.Float64()*0.8
		fx := 0.2 + s.Float64()*0.8
		ph := s.Float64() * 2 * math.Pi
		for y := 0; y < spec.H; y++ {
			for x := 0; x < spec.W; x++ {
				var v float64
				for _, b := range bs {
					dy := float64(y) - b.cy
					dx := float64(x) - b.cx
					v += b.amp * math.Exp(-(dy*dy+dx*dx)/(2*b.sigma*b.sigma))
				}
				v += 0.3 * math.Sin(fy*float64(y)+ph) * math.Sin(fx*float64(x)+ph)
				t[(c*spec.H+y)*spec.W+x] = v
			}
		}
	}
	// Normalize template into [0.1, 0.9].
	lo, hi := t[0], t[0]
	for _, v := range t {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := hi - lo
	if scale == 0 {
		scale = 1
	}
	for i := range t {
		t[i] = 0.1 + 0.8*(t[i]-lo)/scale
	}
	return t
}

// Make generates n samples of spec, balanced across classes, deterministic
// in seed. Each sample is its class template with a small random
// translation and additive noise, clamped to [0,1].
func Make(spec Spec, n int, seed []byte) *Dataset {
	templates := make([][]float64, spec.Classes)
	for c := range templates {
		templates[c] = classTemplate(spec, c, seed)
	}
	samples := make([]Sample, n)
	for i := range samples {
		class := i % spec.Classes
		s := rng.NewStream(rng.DeriveSeed(seed, []byte("sample"), []byte(fmt.Sprint(i))), "noise")
		dy := s.Intn(5) - 2
		dx := s.Intn(5) - 2
		x := make([]float64, spec.Dim())
		tpl := templates[class]
		for c := 0; c < spec.C; c++ {
			for y := 0; y < spec.H; y++ {
				sy := y + dy
				if sy < 0 {
					sy = 0
				} else if sy >= spec.H {
					sy = spec.H - 1
				}
				for xx := 0; xx < spec.W; xx++ {
					sx := xx + dx
					if sx < 0 {
						sx = 0
					} else if sx >= spec.W {
						sx = spec.W - 1
					}
					v := tpl[(c*spec.H+sy)*spec.W+sx] + 0.12*s.NormFloat64()
					if v < 0 {
						v = 0
					} else if v > 1 {
						v = 1
					}
					x[(c*spec.H+y)*spec.W+xx] = v
				}
			}
		}
		samples[i] = Sample{X: x, Label: class}
	}
	return &Dataset{Spec: spec, Samples: samples}
}

// TrainTest generates a training set and a held-out test set that share
// class templates (the same "world") but contain disjoint samples.
func TrainTest(spec Spec, nTrain, nTest int, seed []byte) (train, test *Dataset) {
	all := Make(spec, nTrain+nTest, seed)
	return &Dataset{Spec: spec, Samples: all.Samples[:nTrain]},
		&Dataset{Spec: spec, Samples: all.Samples[nTrain:]}
}

// SplitIID partitions d into equal IID shards, one per party, after a
// deterministic shuffle. Trailing remainder samples are dropped so shards
// are equal-sized (matching the paper's equal random partition).
func SplitIID(d *Dataset, parties int, seed []byte) []*Dataset {
	if parties <= 0 {
		panic("dataset: parties must be positive")
	}
	idx := rng.NewStream(rng.DeriveSeed(seed, []byte("iid-split")), "perm").Perm(d.Len())
	per := d.Len() / parties
	out := make([]*Dataset, parties)
	for p := 0; p < parties; p++ {
		shard := make([]Sample, per)
		for i := 0; i < per; i++ {
			shard[i] = d.Samples[idx[p*per+i]]
		}
		out[p] = &Dataset{Spec: d.Spec, Samples: shard}
	}
	return out
}

// SplitSkew partitions d with the paper's non-IID "90-10" scheme: each
// party receives dominantFrac of its shard from `dominant` classes assigned
// to it, and the remaining (1-dominantFrac) spread over the other classes.
func SplitSkew(d *Dataset, parties, dominant int, dominantFrac float64, seed []byte) []*Dataset {
	if parties <= 0 || dominant <= 0 || dominantFrac < 0 || dominantFrac > 1 {
		panic("dataset: invalid skew-split parameters")
	}
	classes := d.Spec.Classes
	// Bucket sample indices by class.
	byClass := make([][]int, classes)
	for i, s := range d.Samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	st := rng.NewStream(rng.DeriveSeed(seed, []byte("skew-split")), "perm")
	for c := range byClass {
		b := byClass[c]
		st.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	}
	cursor := make([]int, classes) // next unconsumed index per class

	take := func(class, n int) []int {
		b := byClass[class]
		have := len(b) - cursor[class]
		if n > have {
			n = have
		}
		out := b[cursor[class] : cursor[class]+n]
		cursor[class] += n
		return out
	}

	per := d.Len() / parties
	out := make([]*Dataset, parties)
	for p := 0; p < parties; p++ {
		var ids []int
		domN := int(float64(per) * dominantFrac)
		// Dominant classes rotate across parties.
		for k := 0; k < dominant; k++ {
			class := (p*dominant + k) % classes
			ids = append(ids, take(class, domN/dominant)...)
		}
		// Spread the rest across all remaining classes.
		rest := per - len(ids)
		for rest > 0 {
			progressed := false
			for c := 0; c < classes && rest > 0; c++ {
				got := take(c, 1)
				if len(got) > 0 {
					ids = append(ids, got...)
					rest--
					progressed = true
				}
			}
			if !progressed {
				break // dataset exhausted
			}
		}
		shard := make([]Sample, len(ids))
		for i, id := range ids {
			shard[i] = d.Samples[id]
		}
		out[p] = &Dataset{Spec: d.Spec, Samples: shard}
	}
	return out
}

// Batches yields index batches of the given size over n samples, shuffled
// deterministically by seed. The final short batch is included.
func Batches(n, batchSize int, seed []byte) [][]int {
	if batchSize <= 0 {
		panic("dataset: batch size must be positive")
	}
	idx := rng.NewStream(rng.DeriveSeed(seed, []byte("batches")), "perm").Perm(n)
	var out [][]int
	for at := 0; at < n; at += batchSize {
		end := at + batchSize
		if end > n {
			end = n
		}
		out = append(out, idx[at:end])
	}
	return out
}

// ClassHistogram counts samples per class.
func ClassHistogram(d *Dataset) []int {
	h := make([]int, d.Spec.Classes)
	for _, s := range d.Samples {
		h[s.Label]++
	}
	return h
}
