package dataset

import (
	"testing"

	"deta/internal/nn"
	"deta/internal/optim"
)

func TestMakeDeterministic(t *testing.T) {
	a := Make(MNIST, 20, []byte("seed"))
	b := Make(MNIST, 20, []byte("seed"))
	if a.Len() != 20 || b.Len() != 20 {
		t.Fatalf("lengths %d, %d", a.Len(), b.Len())
	}
	for i := 0; i < 20; i++ {
		sa, sb := a.At(i), b.At(i)
		if sa.Label != sb.Label {
			t.Fatal("labels differ under same seed")
		}
		for j := range sa.X {
			if sa.X[j] != sb.X[j] {
				t.Fatal("pixels differ under same seed")
			}
		}
	}
	c := Make(MNIST, 20, []byte("other"))
	same := true
	for j := range a.At(0).X {
		if a.At(0).X[j] != c.At(0).X[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sample")
	}
}

func TestSamplesInRangeAndBalanced(t *testing.T) {
	d := Make(CIFAR10, 100, []byte("s"))
	for i := 0; i < d.Len(); i++ {
		s := d.At(i)
		if len(s.X) != CIFAR10.Dim() {
			t.Fatalf("sample %d has dim %d, want %d", i, len(s.X), CIFAR10.Dim())
		}
		if s.Label != i%10 {
			t.Fatalf("sample %d label %d, want balanced %d", i, s.Label, i%10)
		}
		for _, v := range s.X {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v out of [0,1]", v)
			}
		}
	}
	h := ClassHistogram(d)
	for c, n := range h {
		if n != 10 {
			t.Fatalf("class %d has %d samples, want 10", c, n)
		}
	}
}

func TestSpecDims(t *testing.T) {
	cases := []struct {
		s   Spec
		dim int
	}{
		{MNIST, 784}, {CIFAR10, 3072}, {CIFAR100, 3072},
		{TinyImageNet, 768}, {RVLCDIP, 1024},
	}
	for _, c := range cases {
		if c.s.Dim() != c.dim {
			t.Errorf("%s: Dim = %d, want %d", c.s.Name, c.s.Dim(), c.dim)
		}
	}
}

func TestTrainTestSharedWorld(t *testing.T) {
	train, test := TrainTest(MNIST, 40, 20, []byte("tt"))
	if train.Len() != 40 || test.Len() != 20 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	// Same-seed Make must reproduce both halves (shared templates).
	all := Make(MNIST, 60, []byte("tt"))
	for i := 0; i < 40; i++ {
		if train.At(i).X[0] != all.At(i).X[0] {
			t.Fatal("train half diverges from shared world")
		}
	}
	for i := 0; i < 20; i++ {
		if test.At(i).X[0] != all.At(40 + i).X[0] {
			t.Fatal("test half diverges from shared world")
		}
	}
}

func TestSplitIID(t *testing.T) {
	d := Make(MNIST, 103, []byte("s"))
	shards := SplitIID(d, 4, []byte("split"))
	if len(shards) != 4 {
		t.Fatalf("%d shards", len(shards))
	}
	for _, sh := range shards {
		if sh.Len() != 25 {
			t.Fatalf("shard size %d, want 25", sh.Len())
		}
	}
	// Shards must be disjoint: fingerprint samples by first-pixel value +
	// label (templates + per-sample noise make collisions implausible).
	seen := map[[2]float64]bool{}
	for _, sh := range shards {
		for _, s := range sh.Samples {
			key := [2]float64{s.X[0], float64(s.Label)}
			if seen[key] {
				t.Fatal("duplicate sample across IID shards")
			}
			seen[key] = true
		}
	}
}

func TestSplitSkew(t *testing.T) {
	d := Make(RVLCDIP, 16*40, []byte("s"))
	shards := SplitSkew(d, 8, 2, 0.9, []byte("split"))
	if len(shards) != 8 {
		t.Fatalf("%d shards", len(shards))
	}
	for p, sh := range shards {
		h := ClassHistogram(sh)
		if sh.Len() == 0 {
			t.Fatalf("party %d shard empty", p)
		}
		dom := 0
		for k := 0; k < 2; k++ {
			dom += h[(p*2+k)%16]
		}
		frac := float64(dom) / float64(sh.Len())
		if frac < 0.6 {
			t.Errorf("party %d dominant fraction %.2f, want skewed (>0.6); hist=%v", p, frac, h)
		}
	}
}

func TestSplitSkewPanics(t *testing.T) {
	d := Make(MNIST, 10, []byte("s"))
	for _, f := range []func(){
		func() { SplitSkew(d, 0, 2, 0.9, nil) },
		func() { SplitSkew(d, 2, 0, 0.9, nil) },
		func() { SplitSkew(d, 2, 2, 1.5, nil) },
		func() { SplitIID(d, 0, nil) },
		func() { Batches(10, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic on invalid parameters")
				}
			}()
			f()
		}()
	}
}

func TestBatches(t *testing.T) {
	bs := Batches(10, 3, []byte("b"))
	if len(bs) != 4 {
		t.Fatalf("%d batches, want 4", len(bs))
	}
	total := 0
	seen := make([]bool, 10)
	for _, b := range bs {
		total += len(b)
		for _, i := range b {
			if seen[i] {
				t.Fatal("index repeated across batches")
			}
			seen[i] = true
		}
	}
	if total != 10 {
		t.Fatalf("batches cover %d indices, want 10", total)
	}
	if len(bs[3]) != 1 {
		t.Fatalf("last batch len %d, want 1", len(bs[3]))
	}
}

// The synthetic data must actually be learnable — a small ConvNet should
// reach high train accuracy quickly, otherwise the accuracy/convergence
// experiments are meaningless.
func TestSyntheticDataIsLearnable(t *testing.T) {
	spec := Spec{Name: "tiny", C: 1, H: 12, W: 12, Classes: 4}
	d := Make(spec, 64, []byte("learn"))
	net := nn.ConvNet8(1, 12, 12, 4)
	net.Init([]byte("model"))
	opt := optim.NewMomentumSGD(0.05, 0.9)
	best := 0.0
	for epoch := 0; epoch < 40; epoch++ {
		for _, batch := range Batches(d.Len(), 8, []byte{byte(epoch)}) {
			net.ZeroGrads()
			for _, i := range batch {
				s := d.At(i)
				out := net.Forward(s.X, true)
				_, g, err := nn.CrossEntropy(out, s.Label)
				if err != nil {
					t.Fatal(err)
				}
				net.Backward(g)
			}
			params := net.Params()
			grads := net.Grads()
			for i := range grads {
				grads[i] /= float64(len(batch))
			}
			if err := opt.Step(params, grads); err != nil {
				t.Fatal(err)
			}
			if err := net.SetParams(params); err != nil {
				t.Fatal(err)
			}
		}
		correct := 0
		for i := 0; i < d.Len(); i++ {
			s := d.At(i)
			if net.Predict(s.X) == s.Label {
				correct++
			}
		}
		if acc := float64(correct) / float64(d.Len()); acc > best {
			best = acc
		}
		if best >= 0.95 {
			break
		}
	}
	if best < 0.9 {
		t.Fatalf("best train accuracy %.2f over 40 epochs; synthetic data not learnable", best)
	}
}
