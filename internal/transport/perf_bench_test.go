package transport_test

import (
	"testing"

	"deta/internal/perf"
)

// BenchmarkPerfSuite runs the transport area of the tracked perf suite
// (internal/perf) under `go test -bench`, emitting the same stable bench
// names the BENCH_transport.json baseline records, so
//
//	go test -bench PerfSuite -benchmem ./internal/transport
//
// output feeds perf.Parse and the regression comparator directly.
func BenchmarkPerfSuite(b *testing.B) { perf.RunAreaBenchmarks(b, "transport") }
