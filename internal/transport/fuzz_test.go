package transport

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip: any request written must read back identically, and
// arbitrary junk must never panic the frame reader.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("method", []byte("body"), uint64(1))
	f.Add("", []byte{}, uint64(0))
	f.Add("deta.Upload", []byte{0xFF, 0x00, 0x01}, uint64(1<<40))
	f.Fuzz(func(t *testing.T, method string, body []byte, id uint64) {
		var buf bytes.Buffer
		in := request{ID: id, Method: method, Body: body}
		if err := writeFrame(&buf, &in); err != nil {
			t.Fatal(err)
		}
		var out request
		if err := readFrame(&buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.ID != in.ID || out.Method != in.Method || !bytes.Equal(out.Body, in.Body) {
			t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
		}
	})
}

// FuzzFrameGarbage: arbitrary bytes on the wire must error cleanly.
func FuzzFrameGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 42})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var req request
		_ = readFrame(bytes.NewReader(raw), &req) // must not panic
	})
}
