package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

// FuzzFrameRoundTrip: any request written must read back identically, and
// arbitrary junk must never panic the frame reader.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("method", []byte("body"), uint64(1))
	f.Add("", []byte{}, uint64(0))
	f.Add("deta.Upload", []byte{0xFF, 0x00, 0x01}, uint64(1<<40))
	f.Fuzz(func(t *testing.T, method string, body []byte, id uint64) {
		var buf bytes.Buffer
		in := request{ID: id, Method: method, Body: body}
		if err := writeFrame(&buf, &in); err != nil {
			t.Fatal(err)
		}
		var out request
		if err := readFrame(&buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.ID != in.ID || out.Method != in.Method || !bytes.Equal(out.Body, in.Body) {
			t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
		}
	})
}

// frameWithLength prefixes payload with an arbitrary (possibly lying)
// length header — the building block for truncation/oversize seeds.
func frameWithLength(n uint32, payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], n)
	return append(hdr[:], payload...)
}

// validFrame gob-encodes a request into a well-formed frame.
func validFrame(tb testing.TB, req request) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, &req); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFrameGarbage: arbitrary bytes on the wire must error cleanly. Seeds
// cover the three malformed-frame families: truncated bodies (header
// promises more than arrives), oversized length prefixes (beyond
// MaxFrame), and well-framed garbage gob payloads.
func FuzzFrameGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 42})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})                           // oversized length prefix
	f.Add(frameWithLength(100, []byte("short")))                    // truncated body
	f.Add(frameWithLength(1<<28+1, nil))                            // just over MaxFrame
	f.Add(frameWithLength(5, []byte{0x01, 0x02, 0x03, 0x04, 0x05})) // garbage gob, honest length
	f.Add([]byte{0, 0, 0, 0})                                       // empty body: gob EOF
	// Hostile-but-legal length prefixes: within MaxFrame, so the reader
	// enters the chunked body path, but the body never arrives. The
	// chunked allocator must pay at most its 64KiB seed before the read
	// starves — a 256MiB up-front make here would be a trivial memory DoS.
	f.Add(frameWithLength(1<<28, nil))                             // exactly MaxFrame, zero bytes follow
	f.Add(frameWithLength(1<<27, []byte("tiny")))                  // huge promise, 4 bytes arrive
	f.Add(frameWithLength(1<<20, bytes.Repeat([]byte{0xAA}, 100))) // 1MiB promise, 100 arrive
	f.Fuzz(func(t *testing.T, raw []byte) {
		var req request
		err := readFrame(bytes.NewReader(raw), &req) // must not panic
		// A frame that decodes must re-encode; a frame that errors must
		// not have consumed more than the announced bytes (no runaway
		// allocation past MaxFrame is observable as an OOM/panic).
		if err == nil {
			var buf bytes.Buffer
			if werr := writeFrame(&buf, &req); werr != nil {
				t.Fatalf("decoded frame failed to re-encode: %v", werr)
			}
		}
	})
}

// FuzzServerConnGarbage feeds raw fuzzed bytes to a live server connection
// and asserts the server neither panics nor leaks the connection: a
// malformed frame makes the server drop the connection, and Server.Close
// (which waits for every connection goroutine) always returns.
func FuzzServerConnGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	f.Add(frameWithLength(1000, []byte("truncated")))
	f.Add(frameWithLength(6, []byte("garbage gob")))
	f.Add(append([]byte(nil), 0, 0, 0, 2, 0xFF, 0xFF))
	// A valid echo request followed by garbage: the server must answer the
	// first and then close on the second.
	valid := validFrame(f, request{ID: 1, Method: "echo", Body: []byte("x")})
	f.Add(append(append([]byte(nil), valid...), 0xFF, 0xFF, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, raw []byte) {
		s := NewServer()
		s.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
		ln := NewMemListener()
		done := make(chan struct{})
		go func() { s.Serve(ln); close(done) }()

		conn, err := ln.Dial()
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(500 * time.Millisecond))
		go func() {
			conn.Write(raw)
			// Half of the fuzz inputs are valid prefixes of longer frames;
			// closing marks the stream truncated so the server unblocks.
			conn.Close()
		}()
		// Drain whatever the server sends until it closes our connection
		// (clean close) or the deadline proves it wrote nothing.
		io.Copy(io.Discard, conn)
		conn.Close()

		// Close must reap every connection goroutine; a hang here means a
		// handler or serveConn leaked on malformed input.
		s.Close()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("server accept loop did not exit after Close")
		}
	})
}
