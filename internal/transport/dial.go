package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// UnlimitedAttempts as Backoff.Attempts makes Retry and DialBackoff try
// until the context ends — the right schedule for deployment-start dials
// where the caller's dial budget, not an attempt count, is the limit.
const UnlimitedAttempts = -1

// Backoff is a capped exponential backoff schedule with jitter, shared by
// DialBackoff (connection establishment) and Retry (bounded call retry).
// The zero value is usable: 4 attempts starting at 50ms, doubling to a 2s
// cap, with ±20% jitter.
type Backoff struct {
	// Attempts is the total number of tries (first try included); 0 means
	// 4, negative means unlimited (bounded only by the context).
	Attempts int
	// Initial is the delay after the first failure; <= 0 means 50ms.
	Initial time.Duration
	// Max caps the delay; <= 0 means 2s.
	Max time.Duration
	// Factor is the per-failure growth; < 1 means 2.
	Factor float64
	// Jitter is the fraction of each delay randomized symmetrically
	// around it; <= 0 means 0.2, > 1 is clamped to 1.
	Jitter float64
}

func (b Backoff) attempts() int {
	if b.Attempts == 0 {
		return 4
	}
	return b.Attempts // negative: unlimited
}

// Delay returns the jittered sleep before attempt i+1 (i counts failures
// so far, starting at 0) — exported for callers running their own retry
// loops over the schedule (e.g. Fleet.DownloadAll's poll).
func (b Backoff) Delay(i int) time.Duration { return b.delay(i) }

// delay returns the jittered sleep before attempt i+1 (i counts failures
// so far, starting at 0).
func (b Backoff) delay(i int) time.Duration { return b.delayRand(i, rand.Float64) }

// delayRand is delay with an injectable uniform-[0,1) source, so the
// schedule's bounds and growth are testable under a seeded RNG.
func (b Backoff) delayRand(i int, randFloat func() float64) time.Duration {
	initial, max, factor, jitter := b.Initial, b.Max, b.Factor, b.Jitter
	if initial <= 0 {
		initial = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if factor < 1 {
		factor = 2
	}
	if jitter <= 0 {
		jitter = 0.2
	} else if jitter > 1 {
		jitter = 1
	}
	d := float64(initial)
	for ; i > 0 && d < float64(max); i-- {
		d *= factor
	}
	if d > float64(max) {
		d = float64(max)
	}
	// Symmetric jitter decorrelates fleets of clients reconnecting at once.
	d *= 1 + jitter*(2*randFloat()-1)
	return time.Duration(d)
}

// Retry runs attempt up to b.Attempts times, sleeping the backoff schedule
// between failures. It stops early when attempt succeeds, the context
// ends, or the failure is a *RemoteError (the server answered; retrying a
// rejected application call cannot help). Re-attempts are counted into
// stats when it is non-nil.
func Retry(ctx context.Context, b Backoff, stats *Stats, attempt func(ctx context.Context) error) error {
	n := b.attempts()
	var last error
	for i := 0; n < 0 || i < n; i++ {
		if i > 0 {
			stats.AddRetry()
		}
		if err := ctx.Err(); err != nil {
			return errors.Join(err, last)
		}
		last = attempt(ctx)
		if last == nil {
			return nil
		}
		var re *RemoteError
		if errors.As(last, &re) {
			return last
		}
		if n > 0 && i == n-1 {
			break
		}
		select {
		case <-ctx.Done():
			return errors.Join(ctx.Err(), last)
		case <-time.After(b.delay(i)):
		}
	}
	return fmt.Errorf("transport: %d attempts failed: %w", n, last)
}

// DialBackoff establishes a connection with capped exponential backoff and
// jitter, for peers that may not be up yet (aggregators racing parties at
// deployment start) or that drop transiently.
func DialBackoff(ctx context.Context, b Backoff, stats *Stats, dial func(ctx context.Context) (net.Conn, error)) (net.Conn, error) {
	var conn net.Conn
	err := Retry(ctx, b, stats, func(ctx context.Context) error {
		var err error
		conn, err = dial(ctx)
		return err
	})
	if err != nil {
		return nil, err
	}
	return conn, nil
}
