package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

type echoReq struct{ Msg string }
type echoResp struct{ Msg string }

func startEchoServer(t *testing.T) (*Server, *MemListener) {
	t.Helper()
	s := NewServer()
	HandleTyped(s, "echo", func(r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg}, nil
	})
	HandleTyped(s, "fail", func(r echoReq) (echoResp, error) {
		return echoResp{}, fmt.Errorf("boom: %s", r.Msg)
	})
	ln := NewMemListener()
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln
}

func memClient(t *testing.T, ln *MemListener) *Client {
	t.Helper()
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRoundTrip(t *testing.T) {
	_, ln := startEchoServer(t)
	c := memClient(t, ln)
	resp, err := CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "hello" {
		t.Fatalf("resp = %q", resp.Msg)
	}
}

func TestMultipleSequentialCalls(t *testing.T) {
	_, ln := startEchoServer(t)
	c := memClient(t, ln)
	for i := 0; i < 20; i++ {
		msg := fmt.Sprintf("msg-%d", i)
		resp, err := CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: msg})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Msg != msg {
			t.Fatalf("call %d: resp %q", i, resp.Msg)
		}
	}
}

func TestRemoteError(t *testing.T) {
	_, ln := startEchoServer(t)
	c := memClient(t, ln)
	_, err := CallTypedContext[echoReq, echoResp](context.Background(), c, "fail", echoReq{Msg: "x"})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if !strings.Contains(re.Msg, "boom: x") {
		t.Fatalf("remote error message %q", re.Msg)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, ln := startEchoServer(t)
	c := memClient(t, ln)
	_, err := c.CallContext(context.Background(), "nope", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError for unknown method", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, ln := startEchoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := ln.Dial()
			if err != nil {
				errs <- err
				return
			}
			c := NewClient(conn)
			defer c.Close()
			for i := 0; i < 10; i++ {
				msg := fmt.Sprintf("g%d-i%d", g, i)
				resp, err := CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: msg})
				if err != nil {
					errs <- err
					return
				}
				if resp.Msg != msg {
					errs <- fmt.Errorf("got %q want %q", resp.Msg, msg)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, ln := startEchoServer(t)
	c := memClient(t, ln)
	if _, err := CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: "x"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	done := make(chan struct{})
	go func() {
		c.CallContext(context.Background(), "echo", nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("call did not fail after server close")
	}
}

func TestMemListenerClosed(t *testing.T) {
	ln := NewMemListener()
	ln.Close()
	if _, err := ln.Dial(); err == nil {
		t.Fatal("dial succeeded on closed listener")
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept succeeded on closed listener")
	}
	if err := ln.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
	if ln.Addr().Network() != "mem" {
		t.Fatal("unexpected addr")
	}
}

func TestTLSEndToEnd(t *testing.T) {
	mat, err := NewTLSMaterials("agg-1", []string{"127.0.0.1", "localhost"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := mat.ListenTLS("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	s := NewServer()
	HandleTyped(s, "echo", func(r echoReq) (echoResp, error) { return echoResp{Msg: r.Msg}, nil })
	go s.Serve(ln)
	defer s.Close()

	c, err := mat.DialTLSContext(context.Background(), ln.Addr().String(), "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: "secure"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "secure" {
		t.Fatalf("resp %q", resp.Msg)
	}
}

func TestTLSRejectsUntrustedClientPool(t *testing.T) {
	server, err := NewTLSMaterials("agg-1", []string{"127.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewTLSMaterials("agg-1", []string{"127.0.0.1"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := server.ListenTLS("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	s := NewServer()
	go s.Serve(ln)
	defer s.Close()
	// Client trusting a different CA must fail the handshake. The TLS
	// client error surfaces on first use of the connection.
	c, err := other.DialTLSContext(context.Background(), ln.Addr().String(), "127.0.0.1")
	if err == nil {
		_, err = c.CallContext(context.Background(), "echo", nil)
		c.Close()
	}
	if err == nil {
		t.Fatal("handshake with untrusted CA succeeded")
	}
}

func TestEncodeDecode(t *testing.T) {
	in := echoReq{Msg: "payload"}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out echoReq
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Msg != in.Msg {
		t.Fatalf("round trip %q -> %q", in.Msg, out.Msg)
	}
	if err := Decode([]byte("garbage"), &out); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestFrameLimit(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		// Write a frame header claiming an oversized body.
		hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
		a.Write(hdr)
	}()
	var req request
	if err := readFrame(b, &req); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
