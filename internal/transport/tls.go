package transport

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// TLSMaterials bundles a private certificate authority with a server
// certificate issued under it, ready to build the TLS channels the paper
// uses between parties and aggregators after Phase II registration.
type TLSMaterials struct {
	CAPEMPool  *x509.CertPool
	ServerCert tls.Certificate
}

// NewTLSMaterials mints a fresh CA and a server certificate valid for the
// given DNS names and loopback IPs.
func NewTLSMaterials(commonName string, hosts []string) (*TLSMaterials, error) {
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	caTpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "deta-ca"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour * 365),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTpl, caTpl, &caKey.PublicKey, caKey)
	if err != nil {
		return nil, err
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return nil, err
	}

	srvKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	srvTpl := &x509.Certificate{
		SerialNumber: big.NewInt(2),
		Subject:      pkix.Name{CommonName: commonName},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour * 365),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			srvTpl.IPAddresses = append(srvTpl.IPAddresses, ip)
		} else {
			srvTpl.DNSNames = append(srvTpl.DNSNames, h)
		}
	}
	srvDER, err := x509.CreateCertificate(rand.Reader, srvTpl, caCert, &srvKey.PublicKey, caKey)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(caCert)
	return &TLSMaterials{
		CAPEMPool: pool,
		ServerCert: tls.Certificate{
			Certificate: [][]byte{srvDER},
			PrivateKey:  srvKey,
		},
	}, nil
}

// ServerConfig returns a TLS config for the aggregator side.
func (m *TLSMaterials) ServerConfig() *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{m.ServerCert},
		MinVersion:   tls.VersionTLS13,
	}
}

// ClientConfig returns a TLS config for the party side, trusting only the
// minted CA and pinning the expected server name.
func (m *TLSMaterials) ClientConfig(serverName string) *tls.Config {
	return &tls.Config{
		RootCAs:    m.CAPEMPool,
		ServerName: serverName,
		MinVersion: tls.VersionTLS13,
	}
}

// ListenTLS opens a TLS listener on addr ("127.0.0.1:0" for an ephemeral
// port).
func (m *TLSMaterials) ListenTLS(addr string) (net.Listener, error) {
	return tls.Listen("tcp", addr, m.ServerConfig())
}

// DialTLSContext connects a client to a TLS server at addr, honoring the
// context's deadline for both the TCP connect and the TLS handshake.
func (m *TLSMaterials) DialTLSContext(ctx context.Context, addr, serverName string) (*Client, error) {
	d := &tls.Dialer{Config: m.ClientConfig(serverName)}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// DialTLSBackoff dials with the capped exponential backoff schedule b, for
// peers that may not be listening yet when this process starts.
func (m *TLSMaterials) DialTLSBackoff(ctx context.Context, addr, serverName string, b Backoff) (*Client, error) {
	conn, err := DialBackoff(ctx, b, nil, func(ctx context.Context) (net.Conn, error) {
		d := &tls.Dialer{Config: m.ClientConfig(serverName)}
		return d.DialContext(ctx, "tcp", addr)
	})
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}
