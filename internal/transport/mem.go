package transport

import (
	"errors"
	"net"
	"sync"
)

// MemListener is an in-process net.Listener backed by net.Pipe, so protocol
// code can be exercised without sockets. Dial returns the client half of a
// fresh pipe whose server half is delivered to Accept.
type MemListener struct {
	mu     sync.Mutex
	ch     chan net.Conn
	closed bool
}

// NewMemListener returns an open in-memory listener.
func NewMemListener() *MemListener {
	return &MemListener{ch: make(chan net.Conn, 16)}
}

// Dial creates a connection to the listener.
func (l *MemListener) Dial() (net.Conn, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, errors.New("transport: listener closed")
	}
	l.mu.Unlock()
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	default:
		client.Close()
		server.Close()
		return nil, errors.New("transport: accept queue full")
	}
}

// Accept implements net.Listener.
func (l *MemListener) Accept() (net.Conn, error) {
	conn, ok := <-l.ch
	if !ok {
		return nil, errors.New("transport: listener closed")
	}
	return conn, nil
}

// Close implements net.Listener.
func (l *MemListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.ch)
	}
	return nil
}

// Addr implements net.Listener.
func (l *MemListener) Addr() net.Addr { return memAddr{} }

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }
