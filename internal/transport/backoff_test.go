package transport

import (
	"math/rand"
	"testing"
	"time"
)

// Property tests for Backoff.Delay under seeded RNGs: every jittered
// delay stays inside the schedule's hard envelope, and the expected delay
// grows monotonically with the failure count until the cap.

// envelope returns the hard bounds for attempt i: the un-jittered delay
// scaled by (1 ± jitter).
func envelope(initial, max time.Duration, factor, jitter float64, i int) (lo, hi time.Duration) {
	d := float64(initial)
	for k := 0; k < i && d < float64(max); k++ {
		d *= factor
	}
	if d > float64(max) {
		d = float64(max)
	}
	return time.Duration(d * (1 - jitter)), time.Duration(d * (1 + jitter))
}

func TestDelayStaysWithinEnvelope(t *testing.T) {
	schedules := []Backoff{
		{}, // zero value: 50ms initial, 2s cap, factor 2, jitter 0.2
		{Initial: time.Millisecond, Max: 64 * time.Millisecond},
		{Initial: 10 * time.Millisecond, Max: time.Second, Factor: 3, Jitter: 0.5},
		{Initial: 5 * time.Millisecond, Max: 5 * time.Millisecond},         // cap == base
		{Initial: time.Millisecond, Max: 32 * time.Millisecond, Jitter: 7}, // clamped to 1
	}
	for si, b := range schedules {
		// The effective (defaulted, clamped) parameters delayRand uses.
		initial, max, factor, jitter := b.Initial, b.Max, b.Factor, b.Jitter
		if initial <= 0 {
			initial = 50 * time.Millisecond
		}
		if max <= 0 {
			max = 2 * time.Second
		}
		if factor < 1 {
			factor = 2
		}
		if jitter <= 0 {
			jitter = 0.2
		} else if jitter > 1 {
			jitter = 1
		}
		for seed := int64(1); seed <= 5; seed++ {
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < 24; i++ {
				lo, hi := envelope(initial, max, factor, jitter, i)
				for trial := 0; trial < 64; trial++ {
					d := b.delayRand(i, rnd.Float64)
					if d < lo || d > hi {
						t.Fatalf("schedule %d seed %d attempt %d: delay %v outside [%v, %v]",
							si, seed, i, d, lo, hi)
					}
				}
			}
		}
	}
}

// TestDelayGrowsMonotonicallyInExpectation: averaged over many seeded
// samples, the delay after failure i+1 is no smaller than after failure i
// (strictly larger until the cap absorbs the growth).
func TestDelayGrowsMonotonicallyInExpectation(t *testing.T) {
	b := Backoff{Initial: time.Millisecond, Max: 256 * time.Millisecond, Jitter: 0.2}
	rnd := rand.New(rand.NewSource(0xDE7A))
	const samples = 2000
	mean := func(i int) float64 {
		var sum float64
		for s := 0; s < samples; s++ {
			sum += float64(b.delayRand(i, rnd.Float64))
		}
		return sum / samples
	}
	prev := mean(0)
	for i := 1; i < 12; i++ {
		cur := mean(i)
		// 2% slack: with jitter 0.2 and 2000 samples the mean's noise is
		// far below the 2x growth signal; at the cap growth flattens to 0.
		if cur < prev*0.98 {
			t.Fatalf("expected delay not monotone: E[delay(%d)]=%v < E[delay(%d)]=%v",
				i, time.Duration(cur), i-1, time.Duration(prev))
		}
		prev = cur
	}
	// The first 8 steps double below the cap, so expectation must have
	// grown by far more than jitter noise overall.
	if first, last := mean(0), mean(8); last < 10*first {
		t.Fatalf("growth too weak: E[delay(0)]=%v, E[delay(8)]=%v", time.Duration(first), time.Duration(last))
	}
}

// TestDelayPublicAPI pins the exported Delay against the same envelope —
// it uses the global RNG, so only the hard bounds are assertable.
func TestDelayPublicAPI(t *testing.T) {
	b := Backoff{Initial: 2 * time.Millisecond, Max: 16 * time.Millisecond}
	for i := 0; i < 10; i++ {
		lo, hi := envelope(2*time.Millisecond, 16*time.Millisecond, 2, 0.2, i)
		for trial := 0; trial < 32; trial++ {
			if d := b.Delay(i); d < lo || d > hi {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", i, d, lo, hi)
			}
		}
	}
}
