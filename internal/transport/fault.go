package transport

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedFault is the error surfaced by a FaultConn operation the fault
// plan decided to fail; callers' retry paths treat it like any other
// connection failure.
var ErrInjectedFault = errors.New("transport: injected fault")

// Faults is a probabilistic fault plan for a FaultConn, keyed by a
// deterministic seed so chaos runs are reproducible. Each Read/Write rolls
// independently; probabilities are per operation. The zero value injects
// nothing.
type Faults struct {
	// Seed keys the per-connection PRNG; FaultDialer derives a distinct
	// deterministic seed per connection from it.
	Seed int64

	// DelayProb delays an operation by Delay (default 1ms) — latency and
	// reordering pressure without failing anything.
	DelayProb float64
	Delay     time.Duration

	// DropProb silently discards a write and then severs the connection:
	// the classic ambiguous failure where the caller cannot know whether
	// the peer saw the message. (On a stream, later bytes after a hole
	// would be garbage anyway, so drop implies sever.)
	DropProb float64

	// SeverProb closes the underlying connection mid-operation — a crash
	// or network partition from the peer's point of view.
	SeverProb float64

	// CorruptProb flips one byte of the payload (reads and writes). The
	// framing layer must detect this and fail the connection cleanly.
	CorruptProb float64

	// DupProb writes the operation's bytes twice — duplicated delivery,
	// which mid-stream is framing garbage the peer must survive.
	DupProb float64
}

// FaultConn wraps a net.Conn with deterministic fault injection. Once a
// fault severs the connection every later operation fails, mirroring a real
// broken socket.
type FaultConn struct {
	net.Conn

	mu      sync.Mutex
	rng     *rand.Rand
	f       Faults
	severed bool
}

// NewFaultConn wraps conn with the given fault plan.
func NewFaultConn(conn net.Conn, f Faults) *FaultConn {
	return &FaultConn{Conn: conn, rng: rand.New(rand.NewSource(f.Seed)), f: f}
}

type faultAction int

const (
	actNone faultAction = iota
	actDrop
	actSever
	actCorrupt
	actDup
)

// plan rolls the dice for one operation. The rng and severed flag are
// guarded by mu, but the (possibly blocking) I/O itself runs outside the
// lock so reads never deadlock writes.
func (c *FaultConn) plan(write bool) (faultAction, time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.severed {
		return actNone, 0, ErrInjectedFault
	}
	var delay time.Duration
	if c.f.DelayProb > 0 && c.rng.Float64() < c.f.DelayProb {
		if delay = c.f.Delay; delay <= 0 {
			delay = time.Millisecond
		}
	}
	switch {
	case write && c.f.DropProb > 0 && c.rng.Float64() < c.f.DropProb:
		c.severed = true
		return actDrop, delay, nil
	case c.f.SeverProb > 0 && c.rng.Float64() < c.f.SeverProb:
		c.severed = true
		return actSever, delay, nil
	case c.f.CorruptProb > 0 && c.rng.Float64() < c.f.CorruptProb:
		return actCorrupt, delay, nil
	case write && c.f.DupProb > 0 && c.rng.Float64() < c.f.DupProb:
		return actDup, delay, nil
	}
	return actNone, delay, nil
}

// corruptByte flips one byte of p (position from the connection's PRNG).
func (c *FaultConn) corruptByte(p []byte) {
	if len(p) == 0 {
		return
	}
	c.mu.Lock()
	i := c.rng.Intn(len(p))
	c.mu.Unlock()
	p[i] ^= 0xa5
}

func (c *FaultConn) Write(p []byte) (int, error) {
	act, delay, err := c.plan(true)
	if err != nil {
		return 0, err
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	switch act {
	case actDrop:
		// Pretend success; the peer never sees the bytes and the
		// connection is dead from here on.
		return len(p), nil
	case actSever:
		c.Conn.Close()
		return 0, ErrInjectedFault
	case actCorrupt:
		q := append([]byte{}, p...)
		c.corruptByte(q)
		return c.Conn.Write(q)
	case actDup:
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
		return c.Conn.Write(p)
	}
	return c.Conn.Write(p)
}

func (c *FaultConn) Read(p []byte) (int, error) {
	act, delay, err := c.plan(false)
	if err != nil {
		return 0, err
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if act == actSever {
		c.Conn.Close()
		return 0, ErrInjectedFault
	}
	n, err := c.Conn.Read(p)
	if act == actCorrupt && n > 0 {
		c.corruptByte(p[:n])
	}
	return n, err
}

// FaultDialer wraps a dial function so every connection it returns carries
// the fault plan, each with its own deterministic seed derived from f.Seed
// and the connection's ordinal — run N, connection K always sees the same
// fault schedule.
func FaultDialer(dial func() (net.Conn, error), f Faults) func() (net.Conn, error) {
	var n int64
	return func() (net.Conn, error) {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		cf := f
		cf.Seed = mix64(f.Seed, atomic.AddInt64(&n, 1))
		return NewFaultConn(conn, cf), nil
	}
}

// mix64 is a splitmix64 step combining the plan seed with a counter into a
// well-spread per-connection seed.
func mix64(seed, k int64) int64 {
	z := uint64(seed) + uint64(k)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
