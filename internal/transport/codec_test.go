package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"deta/internal/tensor"
)

// codec_test.go pins the fragment wire format three ways: a property test
// proving the binary codec and the legacy gob path produce bit-identical
// decoded messages (including non-finite floats), a golden byte-layout
// test that freezes the v1 header so it cannot drift silently, and
// hostile-input tests proving lying length fields error before allocating.

// fragMsg mirrors the shape of core.UploadReq without importing core
// (which would cycle): a wire message whose body is one fragment.
type fragMsg struct {
	Round   int
	Index   int
	PartyID string
	Weight  float64
	Values  tensor.Vector
}

func (m fragMsg) AppendWire(dst []byte) ([]byte, error) {
	return AppendFragment(dst, &Fragment{
		Round: m.Round, Index: m.Index, PartyID: m.PartyID,
		Weight: m.Weight, Values: m.Values,
	})
}

func (m *fragMsg) DecodeWire(data []byte) error {
	var f Fragment
	if err := DecodeFragment(data, &f); err != nil {
		return err
	}
	m.Round, m.Index, m.PartyID, m.Weight, m.Values =
		f.Round, f.Index, f.PartyID, f.Weight, f.Values
	return nil
}

// awkwardFloats are the values a naive text or varint encoding mangles;
// bit-pattern comparison below catches any such regression.
var awkwardFloats = []float64{
	0, math.Copysign(0, -1), 1, -1,
	math.Inf(1), math.Inf(-1),
	math.NaN(),
	math.Float64frombits(0x7FF8_0000_0000_0001), // NaN with payload bits
	math.Float64frombits(0xFFF0_0000_0000_0042), // negative NaN payload
	math.SmallestNonzeroFloat64, math.MaxFloat64,
	1e-308, // subnormal territory
}

// randomFragment builds a fragment whose values mix ordinary randoms with
// every awkward float, at a size drawn from r.
func randomFragment(r *rand.Rand) Fragment {
	n := r.Intn(257)
	vals := make(tensor.Vector, n)
	for i := range vals {
		if i < len(awkwardFloats) {
			vals[i] = awkwardFloats[i]
		} else {
			vals[i] = r.NormFloat64()
		}
	}
	return Fragment{
		Round:   r.Intn(1 << 20),
		Index:   r.Intn(64),
		PartyID: fmt.Sprintf("party-%d", r.Intn(1000)),
		Weight:  r.Float64(),
		Values:  vals,
	}
}

// bitsEqual compares float slices by bit pattern, so NaN == NaN when the
// payload matches and +0.0 != -0.0.
func bitsEqual(a, b tensor.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestFragmentCodecGobEquivalence is the tentpole equivalence property:
// for the same message, the binary wire path and the legacy gob path must
// decode to bit-identical results, and each decoder must accept the other
// encoder's output (mixed-fleet compatibility via the magic sniff).
func TestFragmentCodecGobEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		f := randomFragment(r)
		in := fragMsg{Round: f.Round, Index: f.Index, PartyID: f.PartyID, Weight: f.Weight, Values: f.Values}

		binBody, err := Encode(&in)
		if err != nil {
			t.Fatalf("trial %d: binary encode: %v", trial, err)
		}
		if !IsWire(binBody) {
			t.Fatalf("trial %d: Encode of a WireAppender did not produce codec magic", trial)
		}
		gobBody, err := Gob.Encode(&in)
		if err != nil {
			t.Fatalf("trial %d: gob encode: %v", trial, err)
		}
		if IsWire(gobBody) {
			t.Fatalf("trial %d: gob body collides with codec magic — sniff is ambiguous", trial)
		}

		var fromBin, fromGob fragMsg
		if err := Decode(binBody, &fromBin); err != nil {
			t.Fatalf("trial %d: decode binary body: %v", trial, err)
		}
		if err := Decode(gobBody, &fromGob); err != nil {
			t.Fatalf("trial %d: decode gob body (legacy fallback): %v", trial, err)
		}

		for name, got := range map[string]fragMsg{"binary": fromBin, "gob": fromGob} {
			if got.Round != in.Round || got.Index != in.Index ||
				got.PartyID != in.PartyID ||
				math.Float64bits(got.Weight) != math.Float64bits(in.Weight) {
				t.Fatalf("trial %d: %s header mismatch: got %+v want %+v", trial, name, got, in)
			}
			if !bitsEqual(got.Values, in.Values) {
				t.Fatalf("trial %d: %s values not bit-identical", trial, name)
			}
		}
		tensor.PutVector(fromBin.Values)
	}
}

// TestFragmentCodecLegacyWireToggle pins the rollback switch: with
// SetBinaryWire(false) even a WireAppender encodes as gob, and decoders
// still accept both encodings.
func TestFragmentCodecLegacyWireToggle(t *testing.T) {
	in := fragMsg{Round: 3, Index: 1, PartyID: "p", Weight: 0.5, Values: tensor.Vector{1, 2, 3}}

	SetBinaryWire(false)
	defer SetBinaryWire(true)
	body, err := Encode(&in)
	if err != nil {
		t.Fatal(err)
	}
	if IsWire(body) {
		t.Fatal("SetBinaryWire(false) still produced a binary body")
	}
	var out fragMsg
	if err := Decode(body, &out); err != nil {
		t.Fatalf("decode of gob-mode body: %v", err)
	}
	if !bitsEqual(out.Values, in.Values) {
		t.Fatal("gob-mode round trip mangled values")
	}
}

// TestFragmentHeaderLayoutPin freezes the v1 wire bytes. If this test
// breaks, the layout changed: bump FragmentVersion and add a new pin —
// never edit the expected bytes in place.
func TestFragmentHeaderLayoutPin(t *testing.T) {
	f := Fragment{
		Round:   0x01020304,
		Index:   0x0A0B0C0D,
		PartyID: "AB",
		Weight:  1.5, // bits 0x3FF8000000000000
		Values:  tensor.Vector{2.0, math.Float64frombits(0x7FF8000000000001)},
	}
	got, err := AppendFragment(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0xD7, 0xF5, // magic
		0x01,                   // version 1
		0x01,                   // dtype float64
		0x04, 0x03, 0x02, 0x01, // round, LE
		0x0D, 0x0C, 0x0B, 0x0A, // fragment index, LE
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F, // weight 1.5 bits, LE
		0x02, 0x00, // party len, LE
		'A', 'B', // party ID
		0x02, 0x00, 0x00, 0x00, // element count, LE
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x40, // 2.0
		0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x7F, // NaN payload 1
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("v1 fragment layout drifted:\n got %x\nwant %x", got, want)
	}
	// And the frozen bytes must decode back to the same fragment.
	var back Fragment
	if err := DecodeFragment(want, &back); err != nil {
		t.Fatalf("pinned bytes failed to decode: %v", err)
	}
	if back.Round != f.Round || back.Index != f.Index || back.PartyID != f.PartyID ||
		math.Float64bits(back.Weight) != math.Float64bits(f.Weight) ||
		!bitsEqual(back.Values, f.Values) {
		t.Fatalf("pinned bytes decoded to %+v, want %+v", back, f)
	}
}

// TestFragmentAppendReusesDst: encoding into a caller buffer with spare
// capacity must not allocate a fresh backing array.
func TestFragmentAppendReusesDst(t *testing.T) {
	f := Fragment{PartyID: "p", Values: tensor.Vector{1, 2, 3, 4}}
	dst := make([]byte, 0, 4096)
	out, err := AppendFragment(dst, &f)
	if err != nil {
		t.Fatal(err)
	}
	if &out[:1][0] != &dst[:1][0] {
		t.Fatal("AppendFragment reallocated despite sufficient capacity")
	}
}

// hostileBody mutates a valid encoding at a given offset — the helper for
// lying-length tests below.
func hostileBody(t *testing.T, mutate func(b []byte) []byte) []byte {
	t.Helper()
	f := Fragment{Round: 1, Index: 0, PartyID: "p1", Weight: 1, Values: tensor.Vector{1, 2, 3}}
	b, err := AppendFragment(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	return mutate(b)
}

// TestFragmentDecodeHostile: every malformed body must error with a
// diagnostic, never panic, and never allocate for a lying count. The huge
// counts here would be multi-GiB allocations if validation ran after
// make; the AllocsPerRun bound proves it runs before.
func TestFragmentDecodeHostile(t *testing.T) {
	countOff := fragFixedLen + 2 // after the 2-byte party ID "p1"
	cases := []struct {
		name    string
		body    []byte
		wantErr string
	}{
		{"empty", nil, "codec magic"},
		{"bad magic", []byte{0x00, 0x01, 0x02}, "codec magic"},
		{"truncated header", []byte{0xD7, 0xF5, 0x01}, "truncated"},
		{"unknown version", hostileBody(t, func(b []byte) []byte { b[2] = 9; return b }), "wire version"},
		{"unknown dtype", hostileBody(t, func(b []byte) []byte { b[3] = 7; return b }), "dtype"},
		{"party overruns body", hostileBody(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[20:22], 0xFFFF)
			return b
		}), "overruns"},
		{"count exceeds slab", hostileBody(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[countOff:], 0xFFFF_FFFF)
			return b
		}), "disagrees"},
		{"count below slab", hostileBody(t, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[countOff:], 1)
			return b
		}), "disagrees"},
		{"slab truncated", hostileBody(t, func(b []byte) []byte { return b[:len(b)-5] }), "disagrees"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f Fragment
			err := DecodeFragment(tc.body, &f)
			if err == nil {
				t.Fatalf("hostile body decoded: %+v", f)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			allocs := testing.AllocsPerRun(10, func() {
				var g Fragment
				DecodeFragment(tc.body, &g)
			})
			// The error path may allocate the error value itself, but a
			// lying multi-GiB count must not reach make: a handful of
			// allocations, not a slab-sized one, is the ceiling. (A
			// 0xFFFFFFFF count reaching make would be a 32 GiB request —
			// the test completing at all is the other half of the proof.)
			if allocs > 8 {
				t.Fatalf("hostile decode made %.0f allocations", allocs)
			}
		})
	}
}

// TestFragmentAppendRejectsOutOfRange: header fields that cannot be
// represented must fail at encode time, not truncate silently.
func TestFragmentAppendRejectsOutOfRange(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Fragment
	}{
		{"negative round", Fragment{Round: -1}},
		{"round over uint32", Fragment{Round: math.MaxUint32 + 1}},
		{"negative index", Fragment{Index: -1}},
		{"party over uint16", Fragment{PartyID: strings.Repeat("x", math.MaxUint16+1)}},
		{"body over MaxFrame", Fragment{Values: make(tensor.Vector, MaxFrame/8+1)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := AppendFragment(nil, &tc.f); err == nil {
				t.Fatal("out-of-range fragment encoded without error")
			}
		})
	}
}

// FuzzFragmentCodec: arbitrary bytes through DecodeFragment must never
// panic or over-allocate, and any body that decodes must re-encode to the
// exact same bytes (the layout has no redundant representations).
func FuzzFragmentCodec(f *testing.F) {
	valid, err := AppendFragment(nil, &Fragment{
		Round: 42, Index: 3, PartyID: "party-1", Weight: 0.25,
		Values: tensor.Vector{1.5, math.NaN(), math.Inf(-1), math.Copysign(0, -1)},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0xD7, 0xF5})
	f.Add(valid[:fragFixedLen])               // header only, no count
	f.Add(append([]byte(nil), valid[:30]...)) // truncated slab
	f.Add(hostileCount(valid, 0xFFFF_FFFF))   // lying count, huge
	f.Add(hostileCount(valid, 0))             // lying count, zero
	f.Add(func() []byte {                     // lying party length
		b := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint16(b[20:22], 0xFFFF)
		return b
	}())
	f.Fuzz(func(t *testing.T, raw []byte) {
		var frag Fragment
		if err := DecodeFragment(raw, &frag); err != nil {
			return
		}
		re, err := AppendFragment(nil, &frag)
		if err != nil {
			t.Fatalf("decoded fragment failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("re-encode differs from accepted body:\n in %x\nout %x", raw, re)
		}
		tensor.PutVector(frag.Values)
	})
}

// hostileCount rewrites the element count of a valid encoding (party ID
// "party-1", 7 bytes) without fixing up the slab.
func hostileCount(valid []byte, count uint32) []byte {
	b := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(b[fragFixedLen+7:], count)
	return b
}
