package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestResponsesRoutedByID drives the client against a hand-rolled server
// that deliberately answers out of order: two concurrent calls, responses
// written in reverse. Each caller must receive the response carrying its
// own request ID.
func TestResponsesRoutedByID(t *testing.T) {
	clientConn, serverConn := net.Pipe()
	c := NewClient(clientConn)
	defer c.Close()
	defer serverConn.Close()

	served := make(chan error, 1)
	go func() {
		reqs := make([]request, 2)
		for i := range reqs {
			if err := readFrame(serverConn, &reqs[i]); err != nil {
				served <- err
				return
			}
		}
		// Answer in reverse arrival order, tagging each body with the
		// request it answers.
		for i := len(reqs) - 1; i >= 0; i-- {
			resp := response{ID: reqs[i].ID, Body: []byte(fmt.Sprintf("resp-for-%s", reqs[i].Body))}
			if err := writeFrame(serverConn, &resp); err != nil {
				served <- err
				return
			}
		}
		served <- nil
	}()

	var wg sync.WaitGroup
	results := make([]string, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := c.CallContext(context.Background(), "m", []byte(fmt.Sprintf("call-%d", i)))
			results[i], errs[i] = string(body), err
		}(i)
	}
	wg.Wait()
	if err := <-served; err != nil {
		t.Fatalf("fake server: %v", err)
	}
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		want := fmt.Sprintf("resp-for-call-%d", i)
		if results[i] != want {
			t.Fatalf("call %d routed wrong response: got %q want %q", i, results[i], want)
		}
	}
}

// TestOutOfOrderViaSlowHandler exercises the real server path: a slow call
// and a fast call share one client; the fast response overtakes the slow
// one and both land at the right waiter.
func TestOutOfOrderViaSlowHandler(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "sleep", func(ms int) (int, error) {
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return ms, nil
	})
	ln := NewMemListener()
	go s.Serve(ln)
	t.Cleanup(s.Close)
	c := memClient(t, ln)

	slowDone := make(chan error, 1)
	go func() {
		got, err := CallTypedContext[int, int](context.Background(), c, "sleep", 80)
		if err == nil && got != 80 {
			err = fmt.Errorf("slow call got %d", got)
		}
		slowDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the slow request hit the wire first
	start := time.Now()
	got, err := CallTypedContext[int, int](context.Background(), c, "sleep", 1)
	if err != nil || got != 1 {
		t.Fatalf("fast call: %d, %v", got, err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Millisecond {
		t.Fatalf("fast call serialized behind slow call (%v)", elapsed)
	}
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCallsOneClient hammers a single multiplexed client from
// many goroutines against a server with randomized per-write delays
// (latency.go jitter), the scenario the in-flight map must survive under
// the race detector.
func TestConcurrentCallsOneClient(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg}, nil
	})
	ln := NewMemListener()
	go s.Serve(WithListenerJitter(ln, 0, 2*time.Millisecond, 42))
	t.Cleanup(s.Close)

	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithJitter(conn, 0, 2*time.Millisecond, 7))
	t.Cleanup(func() { c.Close() })

	const goroutines, calls = 12, 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < calls; i++ {
				msg := fmt.Sprintf("g%d-i%d", g, i)
				resp, err := CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: msg})
				if err != nil {
					errs <- err
					return
				}
				if resp.Msg != msg {
					errs <- fmt.Errorf("cross-routed response: got %q want %q", resp.Msg, msg)
					return
				}
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := c.Stats().Snapshot()
	if snap.Calls != goroutines*calls {
		t.Fatalf("stats counted %d calls, want %d", snap.Calls, goroutines*calls)
	}
	if snap.Failures != 0 {
		t.Fatalf("stats counted %d failures", snap.Failures)
	}
	if snap.MaxInFlight < 2 {
		t.Fatalf("max in-flight %d; expected genuine concurrency", snap.MaxInFlight)
	}
}

// TestCallContextDeadline: a deadline abandons one call without poisoning
// the connection — the next call on the same client succeeds.
func TestCallContextDeadline(t *testing.T) {
	release := make(chan struct{})
	s := NewServer()
	HandleTyped(s, "stall", func(x int) (int, error) {
		<-release
		return x, nil
	})
	HandleTyped(s, "echo", func(x int) (int, error) { return x, nil })
	ln := NewMemListener()
	go s.Serve(ln)
	t.Cleanup(s.Close)
	t.Cleanup(func() { close(release) }) // unblock handler before server close
	c := memClient(t, ln)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := CallTypedContext[int, int](ctx, c, "stall", 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline fired after %v", elapsed)
	}
	if c.Err() != nil {
		t.Fatalf("client poisoned by per-call deadline: %v", c.Err())
	}
	got, err := CallTypedContext[int, int](context.Background(), c, "echo", 7)
	if err != nil || got != 7 {
		t.Fatalf("follow-up call after timeout: %d, %v", got, err)
	}
	snap := c.Stats().Snapshot()
	if snap.Timeouts != 1 {
		t.Fatalf("stats timeouts = %d, want 1", snap.Timeouts)
	}
}

// TestStickyFailure: once the connection dies, in-flight and future calls
// fail fast with the same error instead of hanging.
func TestStickyFailure(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(x int) (int, error) { return x, nil })
	ln := NewMemListener()
	go s.Serve(ln)
	c := memClient(t, ln)
	if _, err := CallTypedContext[int, int](context.Background(), c, "echo", 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := c.CallContext(context.Background(), "echo", nil); err == nil {
		t.Fatal("call on dead connection succeeded")
	}
	if c.Err() == nil {
		t.Fatal("no sticky error after connection loss")
	}
	start := time.Now()
	if _, err := c.CallContext(context.Background(), "echo", nil); err == nil {
		t.Fatal("second call on dead connection succeeded")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("dead client did not fail fast")
	}
}

func TestPingAndKeepAlive(t *testing.T) {
	s := NewServer() // no handlers at all: ping is built in
	ln := NewMemListener()
	go s.Serve(ln)
	c := memClient(t, ln)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	c.EnableKeepAlive(5*time.Millisecond, 50*time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if c.Err() != nil {
		t.Fatalf("keepalive failed a healthy connection: %v", c.Err())
	}
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for c.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Err() == nil {
		t.Fatal("keepalive did not detect the dead server")
	}
}

func TestDialBackoffRecovers(t *testing.T) {
	ln := NewMemListener()
	defer ln.Close()
	var attempts int
	dial := func(ctx context.Context) (net.Conn, error) {
		attempts++
		if attempts < 3 {
			return nil, errors.New("connection refused")
		}
		return ln.Dial()
	}
	b := Backoff{Attempts: 5, Initial: time.Millisecond, Max: 4 * time.Millisecond}
	var stats Stats
	conn, err := DialBackoff(context.Background(), b, &stats, dial)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if attempts != 3 {
		t.Fatalf("dialed %d times, want 3", attempts)
	}
	if got := stats.Snapshot().Retries; got != 2 {
		t.Fatalf("stats retries = %d, want 2", got)
	}
}

func TestDialBackoffHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := DialBackoff(ctx, Backoff{Attempts: 100, Initial: 5 * time.Millisecond}, nil,
		func(ctx context.Context) (net.Conn, error) { return nil, errors.New("down") })
	if err == nil {
		t.Fatal("dial to dead endpoint succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("backoff ignored the context deadline")
	}
}

func TestRetryStopsOnRemoteError(t *testing.T) {
	var attempts int
	err := Retry(context.Background(), Backoff{Attempts: 5, Initial: time.Millisecond}, nil,
		func(ctx context.Context) error {
			attempts++
			return &RemoteError{Method: "m", Msg: "rejected"}
		})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if attempts != 1 {
		t.Fatalf("retried an application rejection %d times", attempts)
	}
}

func TestRetryBounded(t *testing.T) {
	var attempts int
	err := Retry(context.Background(), Backoff{Attempts: 3, Initial: time.Millisecond}, nil,
		func(ctx context.Context) error {
			attempts++
			return errors.New("transient")
		})
	if err == nil || attempts != 3 {
		t.Fatalf("attempts = %d, err = %v; want 3 bounded attempts", attempts, err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error does not report attempt count: %v", err)
	}
}

// TestRetryUnlimitedRunsUntilContext: UnlimitedAttempts must outlast the
// default 4-attempt cap and stop only when the context ends — the
// deployment-start dial contract (the -dial-timeout budget is the limit).
func TestRetryUnlimitedRunsUntilContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var attempts int
	err := Retry(ctx, Backoff{Attempts: UnlimitedAttempts, Initial: time.Millisecond, Max: time.Millisecond}, nil,
		func(ctx context.Context) error {
			attempts++
			if attempts == 10 {
				cancel()
			}
			return errors.New("still down")
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context cancellation, got: %v", err)
	}
	if attempts < 10 {
		t.Fatalf("attempts = %d; unlimited retry gave up before the context ended", attempts)
	}
}

// TestHandlerPanicIsAnswered: a panicking handler must produce an error
// response, not kill the server or the connection's other requests.
func TestHandlerPanicIsAnswered(t *testing.T) {
	s := NewServer()
	s.Handle("boom", func(body []byte) ([]byte, error) { panic("kaboom") })
	HandleTyped(s, "echo", func(x int) (int, error) { return x, nil })
	ln := NewMemListener()
	go s.Serve(ln)
	t.Cleanup(s.Close)
	c := memClient(t, ln)

	_, err := c.CallContext(context.Background(), "boom", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "panic") {
		t.Fatalf("err = %v, want remote panic error", err)
	}
	got, err := CallTypedContext[int, int](context.Background(), c, "echo", 5)
	if err != nil || got != 5 {
		t.Fatalf("connection unusable after handler panic: %d, %v", got, err)
	}
}
