package transport

import (
	"context"
	"testing"
	"time"
)

func TestLatencyConnDelaysCalls(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(x int) (int, error) { return x, nil })
	ln := NewMemListener()
	go s.Serve(&LatencyListener{Listener: ln, Delay: 2 * time.Millisecond})
	defer s.Close()

	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(WithLatency(conn, 2*time.Millisecond))
	defer c.Close()

	start := time.Now()
	const calls = 5
	for i := 0; i < calls; i++ {
		got, err := CallTypedContext[int, int](context.Background(), c, "echo", i)
		if err != nil || got != i {
			t.Fatalf("call %d: %v, %v", i, got, err)
		}
	}
	elapsed := time.Since(start)
	// Each call pays >= 4ms (client write + server write).
	if min := calls * 4 * time.Millisecond; elapsed < min {
		t.Fatalf("elapsed %v, want >= %v with injected latency", elapsed, min)
	}
}

func TestZeroLatencyPassthrough(t *testing.T) {
	ln := NewMemListener()
	defer ln.Close()
	wrapped := WithListenerLatency(ln, 0)
	go func() {
		conn, _ := ln.Dial()
		if conn != nil {
			conn.Close()
		}
	}()
	conn, err := wrapped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}
