package transport

import (
	"net"
	"time"
)

// LatencyConn wraps a net.Conn and injects a fixed one-way delay before
// every write, simulating WAN round-trip times. DeTA deploys aggregators
// at different geo-locations (paper §4.1); the geo-distribution ablation
// uses this wrapper to measure how inter-site latency scales the round
// cost.
type LatencyConn struct {
	net.Conn
	Delay time.Duration
}

// Write implements net.Conn with the injected delay.
func (c *LatencyConn) Write(p []byte) (int, error) {
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	return c.Conn.Write(p)
}

// WithLatency wraps conn with a one-way write delay.
func WithLatency(conn net.Conn, delay time.Duration) net.Conn {
	return &LatencyConn{Conn: conn, Delay: delay}
}

// LatencyListener wraps a listener so every accepted connection carries
// the delay (server-side sends are delayed symmetrically).
type LatencyListener struct {
	net.Listener
	Delay time.Duration
}

// Accept implements net.Listener.
func (l *LatencyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WithLatency(conn, l.Delay), nil
}

// WithListenerLatency wraps ln so accepted connections delay their writes.
func WithListenerLatency(ln net.Listener, delay time.Duration) net.Listener {
	return &LatencyListener{Listener: ln, Delay: delay}
}
