package transport

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// LatencyConn wraps a net.Conn and injects a fixed one-way delay before
// every write, simulating WAN round-trip times. DeTA deploys aggregators
// at different geo-locations (paper §4.1); the geo-distribution ablation
// uses this wrapper to measure how inter-site latency scales the round
// cost.
type LatencyConn struct {
	net.Conn
	Delay time.Duration
}

// Write implements net.Conn with the injected delay.
func (c *LatencyConn) Write(p []byte) (int, error) {
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	return c.Conn.Write(p)
}

// WithLatency wraps conn with a one-way write delay.
func WithLatency(conn net.Conn, delay time.Duration) net.Conn {
	return &LatencyConn{Conn: conn, Delay: delay}
}

// LatencyListener wraps a listener so every accepted connection carries
// the delay (server-side sends are delayed symmetrically).
type LatencyListener struct {
	net.Listener
	Delay time.Duration
}

// Accept implements net.Listener.
func (l *LatencyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WithLatency(conn, l.Delay), nil
}

// WithListenerLatency wraps ln so accepted connections delay their writes.
func WithListenerLatency(ln net.Listener, delay time.Duration) net.Listener {
	return &LatencyListener{Listener: ln, Delay: delay}
}

// JitterConn injects a uniformly random per-write delay in [Min, Max],
// modeling the variable service times the race and fault-injection tests
// need: with randomized delays, responses on a multiplexed connection
// genuinely come back out of order.
type JitterConn struct {
	net.Conn
	Min, Max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// WithJitter wraps conn with a seeded random write delay in [min, max].
func WithJitter(conn net.Conn, min, max time.Duration, seed int64) net.Conn {
	if max < min {
		min, max = max, min
	}
	return &JitterConn{Conn: conn, Min: min, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Write implements net.Conn with the randomized delay.
func (c *JitterConn) Write(p []byte) (int, error) {
	span := c.Max - c.Min
	d := c.Min
	if span > 0 {
		c.mu.Lock()
		d += time.Duration(c.rng.Int63n(int64(span)))
		c.mu.Unlock()
	}
	if d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

// JitterListener wraps a listener so every accepted connection carries an
// independent randomized write delay (seeded per connection from the
// listener seed, so runs are reproducible).
type JitterListener struct {
	net.Listener
	Min, Max time.Duration
	Seed     int64

	mu sync.Mutex
	n  int64
}

// WithListenerJitter wraps ln so accepted connections randomize their
// write delays in [min, max].
func WithListenerJitter(ln net.Listener, min, max time.Duration, seed int64) net.Listener {
	return &JitterListener{Listener: ln, Min: min, Max: max, Seed: seed}
}

// Accept implements net.Listener.
func (l *JitterListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.n++
	seed := l.Seed + l.n
	l.mu.Unlock()
	return WithJitter(conn, l.Min, l.Max, seed), nil
}
