package transport

// codec.go: the data-plane wire codec. Control-plane RPC bodies
// (registration, challenges, round polls) stay gob — they are small,
// rare, and benefit from gob's schema evolution. Fragment payloads are
// the opposite: large float64 slabs exchanged on every round by every
// party, where gob's reflection and per-element varint encoding
// dominated the upload path. Those travel as a fixed-layout binary
// message instead, decoded straight into pooled tensor buffers.
//
// Fragment wire layout, version 1 (all multi-byte fields little-endian):
//
//	offset  size  field
//	0       2     magic 0xD7 0xF5
//	2       1     version (1)
//	3       1     dtype (1 = float64)
//	4       4     round        uint32
//	8       4     fragment idx uint32
//	12      8     weight       IEEE-754 bits
//	20      2     party ID len uint16
//	22      n     party ID bytes (UTF-8)
//	22+n    4     element count uint32
//	26+n    8*c   float64 slab, IEEE-754 bits little-endian
//
// Versioning/compat rules: the magic pair never collides with a gob
// stream's first bytes, so decoders sniff it and fall back to gob — an
// old peer's gob body still decodes on a new server, and `-wire gob`
// rolls a new sender back wholesale. Any layout change bumps the version
// byte; decoders reject versions they do not know rather than guessing.
// The element count is validated against the bytes actually present
// BEFORE any allocation, so a hostile count cannot force a huge alloc.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"deta/internal/tensor"
)

// Codec turns RPC bodies into bytes and back. The package-level
// Encode/Decode pick per message type: Binary for data-plane messages
// that implement WireAppender/WireDecoder, Gob for everything else.
type Codec interface {
	Name() string
	Encode(v any) ([]byte, error)
	Decode(data []byte, v any) error
}

// Gob is the schema-evolving control-plane codec (the original wire
// format for every message).
var Gob Codec = gobCodec{}

// Binary is the fixed-layout data-plane codec. It only handles messages
// that opt in via WireAppender/WireDecoder.
var Binary Codec = binaryCodec{}

type gobCodec struct{}

func (gobCodec) Name() string { return "gob" }
func (gobCodec) Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
func (gobCodec) Decode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

type binaryCodec struct{}

func (binaryCodec) Name() string { return "binary" }
func (binaryCodec) Encode(v any) ([]byte, error) {
	wa, ok := v.(WireAppender)
	if !ok {
		return nil, fmt.Errorf("transport: %T has no fixed-layout wire encoding", v)
	}
	return wa.AppendWire(nil)
}
func (binaryCodec) Decode(data []byte, v any) error {
	wd, ok := v.(WireDecoder)
	if !ok {
		return fmt.Errorf("transport: %T has no fixed-layout wire decoding", v)
	}
	return wd.DecodeWire(data)
}

// WireAppender is implemented by messages with a fixed-layout binary
// encoding (value receivers, so both values and pointers qualify).
type WireAppender interface {
	AppendWire(dst []byte) ([]byte, error)
}

// WireDecoder is the decoding half, implemented on pointer receivers.
type WireDecoder interface {
	DecodeWire(data []byte) error
}

const (
	fragMagic0 = 0xD7
	fragMagic1 = 0xF5

	// FragmentVersion is the current fragment wire-layout version.
	FragmentVersion = 1

	fragDtypeF64 = 1

	// fragFixedLen is the byte length of the fixed header fields before
	// the variable-length party ID.
	fragFixedLen = 22
	// fragCountLen is the element-count field after the party ID.
	fragCountLen = 4
)

// IsWire reports whether data begins with the fragment codec magic —
// the sniff decoders use to tell a binary body from a legacy gob body.
// (A gob stream opens with a small message-length uvarint; 0xD7 there
// would claim an absurd 41-byte length integer, so the pair is
// unambiguous in practice.)
func IsWire(data []byte) bool {
	return len(data) >= 2 && data[0] == fragMagic0 && data[1] == fragMagic1
}

// Fragment is the data-plane payload: one transformed model fragment
// plus the routing header carried on the wire.
type Fragment struct {
	Round   int
	Index   int // fragment / partition index
	PartyID string
	Weight  float64
	Values  tensor.Vector
}

// AppendFragment appends f's fixed-layout encoding to dst (which may be
// nil) and returns the extended slice. One exact-size allocation when
// dst lacks capacity; float bits are copied verbatim, so NaN payloads,
// ±Inf, and -0.0 survive bit-identically.
//
//perf:hotpath
func AppendFragment(dst []byte, f *Fragment) ([]byte, error) {
	if f.Round < 0 || int64(f.Round) > math.MaxUint32 {
		return nil, fmt.Errorf("transport: fragment round %d outside uint32 range", f.Round)
	}
	if f.Index < 0 || int64(f.Index) > math.MaxUint32 {
		return nil, fmt.Errorf("transport: fragment index %d outside uint32 range", f.Index)
	}
	if len(f.PartyID) > math.MaxUint16 {
		return nil, fmt.Errorf("transport: party ID of %d bytes exceeds uint16 length field", len(f.PartyID))
	}
	need := fragFixedLen + len(f.PartyID) + fragCountLen + 8*len(f.Values)
	if need > MaxFrame {
		return nil, fmt.Errorf("transport: fragment of %d bytes exceeds frame limit", need)
	}
	if cap(dst)-len(dst) < need {
		//lint:ignore allocfree single exact-size grow when the caller's buffer lacks capacity
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	var hdr [fragFixedLen]byte
	hdr[0], hdr[1] = fragMagic0, fragMagic1
	hdr[2] = FragmentVersion
	hdr[3] = fragDtypeF64
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(f.Round))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(f.Index))
	binary.LittleEndian.PutUint64(hdr[12:20], math.Float64bits(f.Weight))
	binary.LittleEndian.PutUint16(hdr[20:22], uint16(len(f.PartyID)))
	//lint:ignore allocfree capacity reserved above; this append cannot grow
	dst = append(dst, hdr[:]...)
	//lint:ignore allocfree capacity reserved above; this append cannot grow
	dst = append(dst, f.PartyID...)
	var cnt [fragCountLen]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(f.Values)))
	//lint:ignore allocfree capacity reserved above; this append cannot grow
	dst = append(dst, cnt[:]...)
	at := len(dst)
	dst = dst[:at+8*len(f.Values)]
	for _, x := range f.Values {
		binary.LittleEndian.PutUint64(dst[at:at+8], math.Float64bits(x))
		at += 8
	}
	return dst, nil
}

// DecodeFragment parses a fixed-layout fragment into f. Every length
// field is validated against the bytes actually present before any
// allocation: a lying element count or party length is an error, never a
// multi-GiB make. Values lands in a pooled tensor buffer — hand it to
// tensor.PutVector when done, or keep it; the pool is best-effort.
//
//perf:hotpath
func DecodeFragment(data []byte, f *Fragment) error {
	if !IsWire(data) {
		return fmt.Errorf("transport: fragment body lacks codec magic")
	}
	if len(data) < fragFixedLen+fragCountLen {
		return fmt.Errorf("transport: fragment header truncated at %d bytes", len(data))
	}
	if v := data[2]; v != FragmentVersion {
		return fmt.Errorf("transport: unknown fragment wire version %d (have %d)", v, FragmentVersion)
	}
	if dt := data[3]; dt != fragDtypeF64 {
		return fmt.Errorf("transport: unknown fragment dtype %d", dt)
	}
	partyLen := int(binary.LittleEndian.Uint16(data[20:22]))
	off := fragFixedLen + partyLen
	if len(data) < off+fragCountLen {
		return fmt.Errorf("transport: fragment party ID of %d bytes overruns %d-byte body", partyLen, len(data))
	}
	count := binary.LittleEndian.Uint32(data[off : off+fragCountLen])
	slab := data[off+fragCountLen:]
	if uint64(count)*8 != uint64(len(slab)) {
		return fmt.Errorf("transport: fragment count %d disagrees with %d slab bytes", count, len(slab))
	}
	f.Round = int(binary.LittleEndian.Uint32(data[4:8]))
	f.Index = int(binary.LittleEndian.Uint32(data[8:12]))
	f.Weight = math.Float64frombits(binary.LittleEndian.Uint64(data[12:20]))
	f.PartyID = string(data[fragFixedLen:off])
	vals := tensor.GetVector(int(count))
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(slab[8*i : 8*i+8]))
	}
	f.Values = vals
	return nil
}
