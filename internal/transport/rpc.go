// Package transport is the wire layer of the reproduction: a small
// request/response RPC protocol (length-prefixed gob frames) over TCP with
// TLS, standing in for the gRPC+TLS channels of the paper's implementation
// (§5). It also provides an in-memory listener so protocol tests need no
// network.
//
// Frame format: 4-byte big-endian length, then a gob-encoded envelope.
// Requests carry a method name and an opaque body; responses carry a body
// or an error string. Bodies themselves are encoded by a Codec (see
// codec.go): fixed-layout binary for data-plane fragment messages, gob
// for the control plane.
//
// Concurrency: one Client multiplexes any number of concurrent Calls over
// its single connection — requests are pipelined by a writer goroutine and
// responses are routed back to their callers by request ID, in whatever
// order the server produces them. The server handles each request on its
// own goroutine, so a slow handler does not block other requests on the
// same connection. Per-call deadlines (CallContext), keepalive health
// checks (EnableKeepAlive), dial/backoff helpers (DialBackoff, Retry), and
// per-connection counters (Stats) make the layer deadline-aware end to
// end: a hung peer costs one timed-out call, never a wedged party.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MaxFrame bounds a single message (guards against corrupt length
// prefixes). Model fragments for the largest zoo models fit comfortably.
const MaxFrame = 1 << 28 // 256 MiB

// MethodPing is the built-in health-check method every Server answers
// without a registered handler; Client.Ping and keepalive use it.
const MethodPing = "transport.Ping"

type request struct {
	ID     uint64
	Method string
	Body   []byte
}

type response struct {
	ID   uint64
	Body []byte
	Err  string
}

// frameBufPool recycles the per-frame encode buffers: a frame is fully
// written to the connection before writeFrame returns, so the buffer's
// lifetime is exactly one call.
var frameBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

//perf:hotpath
func writeFrame(w io.Writer, v any) error {
	buf := frameBufPool.Get().(*bytes.Buffer)
	defer frameBufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return err
	}
	if buf.Len() > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

//perf:hotpath
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("transport: incoming frame of %d bytes exceeds limit", n)
	}
	body, err := readBody(r, int(n))
	if err != nil {
		return err
	}
	// The decode copies every field out of body (gob never aliases its
	// input), so the buffer's lifetime ends here and it can go back to
	// the pool even on decode error.
	err = gob.NewDecoder(bytes.NewReader(body)).Decode(v)
	putBody(body)
	return err
}

// bodySeed is the pooled frame-body buffer size: every body at or under
// it (all control traffic and typical fragment frames) is read into a
// recycled buffer, and it doubles as the trust granularity for oversized
// length prefixes (see readBody).
const bodySeed = 64 << 10

// bodyPool recycles the seed-sized body buffers. Fixed-size array
// pointers rather than slices, so Put never allocates a slice header and
// a shrunk or re-sliced buffer can't poison the pool.
var bodyPool = sync.Pool{New: func() any { return new([bodySeed]byte) }}

// readBody reads an n-byte frame body, growing the buffer geometrically
// as bytes actually arrive instead of trusting the length prefix up
// front. MaxFrame bounds n, but even a prefix just under the bound from
// a hostile or corrupt peer can then cost at most one 64 KiB buffer
// before the read starves and fails — never an up-front multi-hundred-MiB
// allocation. Applies identically whether the body carries a gob envelope
// or a fixed-layout codec payload.
//
// Bodies up to bodySeed come from bodyPool; the caller must hand the
// returned slice to putBody when done with it (oversized bodies are
// allocated fresh and putBody ignores them).
//
//perf:hotpath
func readBody(r io.Reader, n int) ([]byte, error) {
	buf := bodyPool.Get().(*[bodySeed]byte)
	if n <= bodySeed {
		body := buf[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			bodyPool.Put(buf)
			return nil, err
		}
		return body, nil
	}
	body := buf[:bodySeed]
	if _, err := io.ReadFull(r, body); err != nil {
		bodyPool.Put(buf)
		return nil, err
	}
	for len(body) < n {
		next := 2 * len(body)
		if next > n {
			next = n
		}
		//lint:ignore allocfree oversized-frame grow path: >64 KiB bodies are rare, and the doubling is what keeps a hostile length prefix from costing a giant up-front allocation
		grown := make([]byte, next)
		read := copy(grown, body)
		if read == bodySeed {
			// The seed chunk has been copied out; recycle it now so an
			// error mid-grow doesn't strand the pooled buffer.
			bodyPool.Put(buf)
		}
		body = grown
		if _, err := io.ReadFull(r, body[read:]); err != nil {
			return nil, err
		}
	}
	return body, nil
}

// putBody returns a readBody buffer to the pool. Only exactly seed-sized
// backing arrays are pooled: oversized grow-path buffers (and anything
// else) are left to the GC.
//
//perf:hotpath
func putBody(b []byte) {
	if cap(b) != bodySeed {
		return
	}
	bodyPool.Put((*[bodySeed]byte)(b[:bodySeed]))
}

// Handler processes one request body and returns a response body.
type Handler func(body []byte) ([]byte, error)

// Server dispatches RPC requests to registered handlers. Each request runs
// on its own goroutine and responses are written back as handlers finish,
// so responses on one connection may be out of order relative to their
// requests — the multiplexed Client matches them up by ID.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]bool
	closed    bool
	wg        sync.WaitGroup
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]bool)}
}

// Handle registers a handler for a method name, replacing any previous one.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Serve accepts connections from ln until the listener or server closes.
// It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return errors.New("transport: server closed")
	}
	s.listeners = append(s.listeners, ln)
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			conn.Close()
			return errors.New("transport: server closed")
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.lnMu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	var (
		wmu sync.Mutex     // serializes response frames on conn
		hwg sync.WaitGroup // in-flight handler goroutines
	)
	defer func() {
		hwg.Wait()
		conn.Close()
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
		s.wg.Done()
	}()
	write := func(resp *response) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := writeFrame(conn, resp); err != nil {
			// Unblock the read loop; in-flight handlers drain into
			// writes that fail the same way.
			conn.Close()
		}
	}
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			// Malformed frame, peer close, or server close: drop the
			// connection. Handler goroutines finish via the deferred wait.
			return
		}
		if req.Method == MethodPing {
			write(&response{ID: req.ID})
			continue
		}
		s.mu.RLock()
		h, ok := s.handlers[req.Method]
		s.mu.RUnlock()
		if !ok {
			write(&response{ID: req.ID, Err: fmt.Sprintf("transport: unknown method %q", req.Method)})
			continue
		}
		hwg.Add(1)
		go func(req request) {
			defer hwg.Done()
			resp := response{ID: req.ID}
			func() {
				defer func() {
					if r := recover(); r != nil {
						resp.Body, resp.Err = nil, fmt.Sprintf("transport: handler %s panicked: %v", req.Method, r)
					}
				}()
				if body, err := h(req.Body); err != nil {
					resp.Err = err.Error()
				} else {
					resp.Body = body
				}
			}()
			write(&resp)
		}(req)
	}
}

// Close shuts down all listeners and live connections and waits for
// connection goroutines to finish.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	for _, ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.lnMu.Unlock()
	s.wg.Wait()
}

// RemoteError is an error reported by the remote handler.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Msg)
}

// legacyWire forces the gob codec for messages that would otherwise use
// the fixed-layout binary encoding (daemon flag -wire gob, for rollback
// against peers predating the codec). Decoding always sniffs, so a mixed
// fleet interoperates in both modes.
var legacyWire atomic.Bool

// SetBinaryWire enables (default) or disables the fixed-layout binary
// codec on the encode side. Decoders are unaffected: they accept both
// encodings by sniffing the codec magic.
func SetBinaryWire(enabled bool) { legacyWire.Store(!enabled) }

// Encode encodes v for use as a request or response body: fixed-layout
// binary for data-plane messages implementing WireAppender (unless
// disabled via SetBinaryWire), gob for everything else.
func Encode(v any) ([]byte, error) {
	if wa, ok := v.(WireAppender); ok && !legacyWire.Load() {
		return wa.AppendWire(nil)
	}
	return Gob.Encode(v)
}

// Decode decodes body into v. Messages implementing WireDecoder accept
// both encodings: the codec magic selects fixed-layout binary, anything
// else falls back to gob (legacy peers, -wire gob senders).
func Decode(body []byte, v any) error {
	if wd, ok := v.(WireDecoder); ok && IsWire(body) {
		return wd.DecodeWire(body)
	}
	return Gob.Decode(body, v)
}

// HandleTyped registers a handler taking and returning gob-encoded values.
func HandleTyped[Req, Resp any](s *Server, method string, h func(Req) (Resp, error)) {
	s.Handle(method, func(body []byte) ([]byte, error) {
		var req Req
		if err := Decode(body, &req); err != nil {
			return nil, fmt.Errorf("decoding request: %w", err)
		}
		resp, err := h(req)
		if err != nil {
			return nil, err
		}
		return Encode(resp)
	})
}
