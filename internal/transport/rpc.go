// Package transport is the wire layer of the reproduction: a small
// request/response RPC protocol (length-prefixed gob frames) over TCP with
// TLS, standing in for the gRPC+TLS channels of the paper's implementation
// (§5). It also provides an in-memory listener so protocol tests need no
// network.
//
// Frame format: 4-byte big-endian length, then a gob-encoded envelope.
// Requests carry a method name and an opaque body; responses carry a body
// or an error string. Calls on one client are serialized; use one client
// per concurrent caller.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrame bounds a single message (guards against corrupt length
// prefixes). Model fragments for the largest zoo models fit comfortably.
const MaxFrame = 1 << 28 // 256 MiB

type request struct {
	ID     uint64
	Method string
	Body   []byte
}

type response struct {
	ID   uint64
	Body []byte
	Err  string
}

func writeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	if buf.Len() > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("transport: incoming frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}

// Handler processes one request body and returns a response body.
type Handler func(body []byte) ([]byte, error)

// Server dispatches RPC requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]bool
	closed    bool
	wg        sync.WaitGroup
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]bool)}
}

// Handle registers a handler for a method name, replacing any previous one.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Serve accepts connections from ln until the listener or server closes.
// It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return errors.New("transport: server closed")
	}
	s.listeners = append(s.listeners, ln)
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			conn.Close()
			return errors.New("transport: server closed")
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.lnMu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
		s.wg.Done()
	}()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[req.Method]
		s.mu.RUnlock()
		resp := response{ID: req.ID}
		if !ok {
			resp.Err = fmt.Sprintf("transport: unknown method %q", req.Method)
		} else if body, err := h(req.Body); err != nil {
			resp.Err = err.Error()
		} else {
			resp.Body = body
		}
		if err := writeFrame(conn, &resp); err != nil {
			return
		}
	}
}

// Close shuts down all listeners and live connections and waits for
// connection goroutines to finish.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	for _, ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.lnMu.Unlock()
	s.wg.Wait()
}

// Client issues RPC calls over a single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	next uint64
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Call sends a request and waits for its response.
func (c *Client) Call(method string, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req := request{ID: c.next, Method: method, Body: body}
	if err := writeFrame(c.conn, &req); err != nil {
		return nil, fmt.Errorf("transport: send %s: %w", method, err)
	}
	var resp response
	if err := readFrame(c.conn, &resp); err != nil {
		return nil, fmt.Errorf("transport: recv %s: %w", method, err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("transport: response ID %d for request %d", resp.ID, req.ID)
	}
	if resp.Err != "" {
		return nil, &RemoteError{Method: method, Msg: resp.Err}
	}
	return resp.Body, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteError is an error reported by the remote handler.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Msg)
}

// Encode gob-encodes v for use as a request or response body.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes body into v.
func Decode(body []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}

// CallTyped performs a Call with gob-encoded request and response values.
func CallTyped[Req, Resp any](c *Client, method string, req Req) (Resp, error) {
	var zero Resp
	body, err := Encode(req)
	if err != nil {
		return zero, err
	}
	out, err := c.Call(method, body)
	if err != nil {
		return zero, err
	}
	var resp Resp
	if err := Decode(out, &resp); err != nil {
		return zero, err
	}
	return resp, nil
}

// HandleTyped registers a handler taking and returning gob-encoded values.
func HandleTyped[Req, Resp any](s *Server, method string, h func(Req) (Resp, error)) {
	s.Handle(method, func(body []byte) ([]byte, error) {
		var req Req
		if err := Decode(body, &req); err != nil {
			return nil, fmt.Errorf("decoding request: %w", err)
		}
		resp, err := h(req)
		if err != nil {
			return nil, err
		}
		return Encode(resp)
	})
}
