package transport

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats counts per-connection RPC activity. Every Client owns one; fan-out
// layers (core.Fleet, cmd/deta-party) read snapshots to report
// per-aggregator latency and retry behaviour. All methods are safe for
// concurrent use.
type Stats struct {
	calls       atomic.Int64
	failures    atomic.Int64
	timeouts    atomic.Int64
	retries     atomic.Int64
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	latencyNS   atomic.Int64
}

// StatsSnapshot is a point-in-time copy of a Stats.
type StatsSnapshot struct {
	// Calls is the number of RPCs started.
	Calls int64
	// Failures is the number of RPCs that returned an error (timeouts
	// included).
	Failures int64
	// Timeouts is the subset of failures caused by a context deadline or
	// cancellation.
	Timeouts int64
	// Retries counts re-attempts performed by Retry / DialBackoff on top
	// of first tries.
	Retries int64
	// MaxInFlight is the high-water mark of concurrent calls.
	MaxInFlight int64
	// AvgLatency is the mean round-trip of successful calls.
	AvgLatency time.Duration
}

func (s *Stats) callStarted() {
	s.calls.Add(1)
	n := s.inFlight.Add(1)
	for {
		max := s.maxInFlight.Load()
		if n <= max || s.maxInFlight.CompareAndSwap(max, n) {
			return
		}
	}
}

func (s *Stats) callDone(start time.Time, err error, timedOut bool) {
	s.inFlight.Add(-1)
	if err != nil {
		s.failures.Add(1)
		if timedOut {
			s.timeouts.Add(1)
		}
		return
	}
	s.latencyNS.Add(int64(time.Since(start)))
}

// AddRetry records one re-attempt (used by Retry and DialBackoff).
func (s *Stats) AddRetry() {
	if s != nil {
		s.retries.Add(1)
	}
}

// Snapshot returns a consistent-enough copy for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Calls:       s.calls.Load(),
		Failures:    s.failures.Load(),
		Timeouts:    s.timeouts.Load(),
		Retries:     s.retries.Load(),
		MaxInFlight: s.maxInFlight.Load(),
	}
	if ok := snap.Calls - snap.Failures; ok > 0 {
		snap.AvgLatency = time.Duration(s.latencyNS.Load() / ok)
	}
	return snap
}

// String renders a one-line summary, e.g. for per-aggregator logs.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("calls=%d failures=%d timeouts=%d retries=%d max-inflight=%d avg-latency=%v",
		s.Calls, s.Failures, s.Timeouts, s.Retries, s.MaxInFlight, s.AvgLatency)
}
