package transport

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadTLSMaterials(t *testing.T) {
	dir := t.TempDir()
	if err := SaveTLSMaterials(dir, "agg-test", []string{"127.0.0.1", "agg.example"}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"ca.pem", "server-cert.pem", "server-key.pem"} {
		info, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s missing: %v", f, err)
		}
		if info.Mode().Perm() != 0o600 {
			t.Errorf("%s has permissions %v, want 0600", f, info.Mode().Perm())
		}
	}
	m, err := LoadTLSMaterials(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.CAPEMPool == nil || len(m.ServerCert.Certificate) == 0 {
		t.Fatal("loaded materials incomplete")
	}
	// Server and client configs assemble.
	if m.ServerConfig().MinVersion == 0 || m.ClientConfig("agg.example").ServerName != "agg.example" {
		t.Fatal("config assembly broken")
	}
}

func TestLoadTLSMaterialsMissing(t *testing.T) {
	if _, err := LoadTLSMaterials(t.TempDir()); err == nil {
		t.Fatal("empty dir loaded")
	}
}

func TestLoadTLSMaterialsCorruptCA(t *testing.T) {
	dir := t.TempDir()
	if err := SaveTLSMaterials(dir, "x", []string{"127.0.0.1"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ca.pem"), []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTLSMaterials(dir); err == nil {
		t.Fatal("corrupt CA accepted")
	}
}

func TestLoadTLSMaterialsCorruptKey(t *testing.T) {
	dir := t.TempDir()
	if err := SaveTLSMaterials(dir, "x", []string{"127.0.0.1"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "server-key.pem"), []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTLSMaterials(dir); err == nil {
		t.Fatal("corrupt key accepted")
	}
}

func TestRemoteErrorFormat(t *testing.T) {
	e := &RemoteError{Method: "m", Msg: "boom"}
	if !strings.Contains(e.Error(), "m") || !strings.Contains(e.Error(), "boom") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

func TestMemAddr(t *testing.T) {
	ln := NewMemListener()
	defer ln.Close()
	if ln.Addr().String() != "mem" || ln.Addr().Network() != "mem" {
		t.Fatal("unexpected mem address")
	}
}
