package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClientClosed is the sticky error after Close.
var ErrClientClosed = errors.New("transport: client closed")

// Client issues RPC calls over a single multiplexed connection. Any number
// of goroutines may call concurrently: a writer goroutine serializes
// request frames, a reader goroutine routes response frames to their
// waiting callers by request ID, so calls complete in whatever order the
// server answers. A connection-level failure fails every in-flight and
// future call with the same sticky error; a per-call deadline (CallContext)
// abandons only that call and leaves the connection usable.
type Client struct {
	conn net.Conn

	writeq chan *pendingCall
	dead   chan struct{} // closed once the connection is failed

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	err     error // sticky failure

	stats  Stats
	kaOnce sync.Once
}

type pendingCall struct {
	req  request
	done chan callResult // buffered; receives exactly one result
}

type callResult struct {
	body []byte
	err  error
}

// NewClient wraps an established connection and starts its reader and
// writer goroutines. Close releases them.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		writeq:  make(chan *pendingCall, 16),
		dead:    make(chan struct{}),
		pending: make(map[uint64]*pendingCall),
	}
	go c.writeLoop()
	go c.readLoop()
	return c
}

// CallContext sends a request and waits until the response arrives, the
// context ends, or the connection fails. A context timeout abandons the
// call (a late response is discarded) without poisoning the connection.
func (c *Client) CallContext(ctx context.Context, method string, body []byte) ([]byte, error) {
	start := time.Now()
	c.stats.callStarted()
	out, err := c.call(ctx, method, body)
	c.stats.callDone(start, err, errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled))
	return out, err
}

func (c *Client) call(ctx context.Context, method string, body []byte) ([]byte, error) {
	p := &pendingCall{done: make(chan callResult, 1)}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: %s: %w", method, err)
	}
	c.nextID++
	p.req = request{ID: c.nextID, Method: method, Body: body}
	c.pending[p.req.ID] = p
	c.mu.Unlock()

	select {
	case c.writeq <- p:
	case <-c.dead:
		c.forget(p.req.ID)
		return nil, fmt.Errorf("transport: %s: %w", method, c.Err())
	case <-ctx.Done():
		c.forget(p.req.ID)
		return nil, fmt.Errorf("transport: %s: %w", method, ctx.Err())
	}

	select {
	case r := <-p.done:
		if r.err != nil {
			var re *RemoteError
			if errors.As(r.err, &re) {
				return nil, r.err
			}
			return nil, fmt.Errorf("transport: %s: %w", method, r.err)
		}
		return r.body, nil
	case <-ctx.Done():
		c.forget(p.req.ID)
		return nil, fmt.Errorf("transport: %s: %w", method, ctx.Err())
	}
}

// forget abandons an in-flight call; its eventual response (if any) is
// dropped by the read loop.
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *Client) writeLoop() {
	for {
		select {
		case p := <-c.writeq:
			if err := writeFrame(c.conn, &p.req); err != nil {
				c.fail(fmt.Errorf("send: %w", err))
				return
			}
		case <-c.dead:
			return
		}
	}
}

func (c *Client) readLoop() {
	for {
		var resp response
		if err := readFrame(c.conn, &resp); err != nil {
			c.fail(fmt.Errorf("recv: %w", err))
			return
		}
		c.mu.Lock()
		p, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if !ok {
			continue // abandoned (deadline) or stale; discard
		}
		if resp.Err != "" {
			p.done <- callResult{err: &RemoteError{Method: p.req.Method, Msg: resp.Err}}
		} else {
			p.done <- callResult{body: resp.Body}
		}
	}
}

// fail marks the connection broken with a sticky error, closes it, and
// fails every in-flight call. Idempotent; the first error wins.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.dead)
		c.conn.Close()
	}
	sticky := c.err
	calls := make([]*pendingCall, 0, len(c.pending))
	for id, p := range c.pending {
		delete(c.pending, id)
		calls = append(calls, p)
	}
	c.mu.Unlock()
	for _, p := range calls {
		p.done <- callResult{err: sticky}
	}
}

// Err returns the sticky connection error, or nil while the client is
// healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Ping round-trips the server's built-in health method.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.CallContext(ctx, MethodPing, nil)
	return err
}

// EnableKeepAlive starts a background health check that pings the server
// every interval and fails the connection if a ping takes longer than
// timeout. Safe to call once per client; later calls are no-ops.
func (c *Client) EnableKeepAlive(interval, timeout time.Duration) {
	if interval <= 0 {
		return
	}
	if timeout <= 0 {
		timeout = interval
	}
	c.kaOnce.Do(func() {
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-c.dead:
					return
				case <-t.C:
					//lint:ignore ctxplumb the keepalive loop outlives any single caller by design; its pings are bounded by the explicit timeout instead
					ctx, cancel := context.WithTimeout(context.Background(), timeout)
					err := c.Ping(ctx)
					cancel()
					if err != nil && c.Err() == nil {
						c.fail(fmt.Errorf("keepalive: %w", err))
						return
					}
				}
			}
		}()
	})
}

// Stats exposes this connection's call counters.
func (c *Client) Stats() *Stats { return &c.stats }

// Close fails all in-flight calls and closes the underlying connection.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return nil
}

// CallTypedContext performs a CallContext with gob-encoded request and
// response values.
func CallTypedContext[Req, Resp any](ctx context.Context, c *Client, method string, req Req) (Resp, error) {
	var zero Resp
	body, err := Encode(req)
	if err != nil {
		return zero, err
	}
	out, err := c.CallContext(ctx, method, body)
	if err != nil {
		return zero, err
	}
	var resp Resp
	if err := Decode(out, &resp); err != nil {
		return zero, err
	}
	return resp, nil
}
