package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// echoServer serves a method that returns its body unchanged.
func echoServer(t *testing.T) *MemListener {
	t.Helper()
	srv := NewServer()
	srv.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
	ln := NewMemListener()
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln
}

func TestFaultConnCleanPlanPassesThrough(t *testing.T) {
	ln := echoServer(t)
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewFaultConn(conn, Faults{Seed: 1}))
	defer c.Close()
	out, err := c.CallContext(context.Background(), "echo", []byte("hello"))
	if err != nil || string(out) != "hello" {
		t.Fatalf("Call = %q, %v", out, err)
	}
}

func TestFaultConnSeverFailsCalls(t *testing.T) {
	ln := echoServer(t)
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewFaultConn(conn, Faults{Seed: 2, SeverProb: 1}))
	defer c.Close()
	if _, err := c.CallContext(context.Background(), "echo", []byte("x")); err == nil {
		t.Fatal("call over a severed connection succeeded")
	}
	if c.Err() == nil {
		t.Fatal("sever did not stick the client error")
	}
}

// A silently dropped write is the ambiguous failure: the call must fail
// (not hang) once the connection is recognized dead.
func TestFaultConnDropTimesOutCall(t *testing.T) {
	ln := echoServer(t)
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(NewFaultConn(conn, Faults{Seed: 3, DropProb: 1}))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := c.CallContext(ctx, "echo", []byte("x")); err == nil {
		t.Fatal("call whose request was dropped succeeded")
	}
}

// Corrupted and duplicated bytes are framing garbage: the RPC layer must
// fail the affected connection cleanly — an error, never a hang or panic.
func TestFaultConnCorruptAndDupFailCleanly(t *testing.T) {
	for _, f := range []Faults{
		{Seed: 4, CorruptProb: 1},
		{Seed: 5, DupProb: 1},
	} {
		ln := echoServer(t)
		conn, err := ln.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(NewFaultConn(conn, f))
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		var firstErr error
		for i := 0; i < 5 && firstErr == nil; i++ {
			_, firstErr = c.CallContext(ctx, "echo", []byte("payload-to-damage"))
		}
		cancel()
		if firstErr == nil {
			t.Fatalf("faults %+v: damaged frames never surfaced an error", f)
		}
		c.Close()
	}
}

func TestFaultDialerDeterministicPerConnection(t *testing.T) {
	// Two dialers with the same plan must produce identical fault
	// schedules for connection k.
	roll := func() []bool {
		ln := NewMemListener()
		defer ln.Close()
		dial := FaultDialer(func() (net.Conn, error) { return ln.Dial() }, Faults{Seed: 42, SeverProb: 0.5})
		outcomes := make([]bool, 8)
		for i := range outcomes {
			conn, err := dial()
			if err != nil {
				t.Fatal(err)
			}
			go func() { // drain the server half so writes complete
				sc, err := ln.Accept()
				if err != nil {
					return
				}
				buf := make([]byte, 16)
				for {
					if _, err := sc.Read(buf); err != nil {
						return
					}
				}
			}()
			_, werr := conn.Write([]byte("probe"))
			outcomes[i] = werr == nil
			conn.Close()
		}
		return outcomes
	}
	a, b := roll(), roll()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("connection %d: outcome %v vs %v — fault schedule not deterministic", i, a[i], b[i])
		}
	}
	all := true
	for _, ok := range a {
		all = all && ok
	}
	if all {
		t.Fatal("SeverProb=0.5 over 8 connections injected nothing — faults inert")
	}
}

func TestFaultConnDelayDelays(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go func() {
		buf := make([]byte, 8)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	fc := NewFaultConn(client, Faults{Seed: 6, DelayProb: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delayed write took %v, want >= 25ms", d)
	}
	fc.Close()
}

func TestSeveredConnStaysDead(t *testing.T) {
	client, _ := net.Pipe()
	fc := NewFaultConn(client, Faults{Seed: 7, SeverProb: 1})
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("sever did not fail the write")
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("post-sever write = %v, want ErrInjectedFault", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("post-sever read = %v, want ErrInjectedFault", err)
	}
}
