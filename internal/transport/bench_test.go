package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Fan-out benchmarks: one party-side caller issuing the same RPC to K
// aggregator servers, each behind an injected WAN write delay
// (latency.go), comparing the old sequential round loop with the
// multiplexed parallel fan-out core.Fleet uses. Results recorded in
// EXPERIMENTS.md ("Wire concurrency").
const benchDelay = 500 * time.Microsecond

func startBenchFleet(b *testing.B, k int) []*Client {
	b.Helper()
	clients := make([]*Client, k)
	for j := 0; j < k; j++ {
		s := NewServer()
		HandleTyped(s, "echo", func(r echoReq) (echoResp, error) { return echoResp{Msg: r.Msg}, nil })
		ln := NewMemListener()
		go s.Serve(WithListenerLatency(ln, benchDelay))
		b.Cleanup(s.Close)
		conn, err := ln.Dial()
		if err != nil {
			b.Fatal(err)
		}
		c := NewClient(WithLatency(conn, benchDelay))
		b.Cleanup(func() { c.Close() })
		clients[j] = c
	}
	return clients
}

func BenchmarkFanOutSequential(b *testing.B) {
	for _, k := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			clients := startBenchFleet(b, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range clients {
					if _, err := CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: "frag"}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkFanOutParallel(b *testing.B) {
	for _, k := range []int{3, 5, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			clients := startBenchFleet(b, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, len(clients))
				for j, c := range clients {
					wg.Add(1)
					go func(j int, c *Client) {
						defer wg.Done()
						_, errs[j] = CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: "frag"})
					}(j, c)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkPipelinedSingleConn measures multiplexing on ONE connection:
// 16 concurrent callers sharing a client vs. the same 16 calls serialized.
func BenchmarkPipelinedSingleConn(b *testing.B) {
	run := func(b *testing.B, concurrent bool) {
		clients := startBenchFleet(b, 1)
		c := clients[0]
		const batch = 16
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if concurrent {
				var wg sync.WaitGroup
				for j := 0; j < batch; j++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: "m"})
					}()
				}
				wg.Wait()
			} else {
				for j := 0; j < batch; j++ {
					if _, err := CallTypedContext[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: "m"}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("serialized", func(b *testing.B) { run(b, false) })
	b.Run("pipelined", func(b *testing.B) { run(b, true) })
}
