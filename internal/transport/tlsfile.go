package transport

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"time"
)

// On-disk TLS material support for multi-process deployments: the AP mints
// a CA and server credentials once and writes them to a directory; the
// aggregator and party binaries load them at startup.

const (
	caFile   = "ca.pem"
	certFile = "server-cert.pem"
	keyFile  = "server-key.pem"
)

// SaveTLSMaterials mints fresh materials for the given hosts and writes
// ca.pem, server-cert.pem, server-key.pem into dir (created if needed).
// The CA private key is intentionally not persisted.
func SaveTLSMaterials(dir, commonName string, hosts []string) error {
	m, caDER, srvDER, srvKey, err := newMaterialsDER(commonName, hosts)
	if err != nil {
		return err
	}
	_ = m
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	write := func(name, blockType string, der []byte) error {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
		if err != nil {
			return err
		}
		defer f.Close()
		return pem.Encode(f, &pem.Block{Type: blockType, Bytes: der})
	}
	if err := write(caFile, "CERTIFICATE", caDER); err != nil {
		return err
	}
	if err := write(certFile, "CERTIFICATE", srvDER); err != nil {
		return err
	}
	keyDER, err := x509.MarshalECPrivateKey(srvKey)
	if err != nil {
		return err
	}
	return write(keyFile, "EC PRIVATE KEY", keyDER)
}

// LoadTLSMaterials reads materials written by SaveTLSMaterials.
func LoadTLSMaterials(dir string) (*TLSMaterials, error) {
	caPEM, err := os.ReadFile(filepath.Join(dir, caFile))
	if err != nil {
		return nil, fmt.Errorf("transport: reading CA: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(caPEM) {
		return nil, errors.New("transport: no certificates in " + caFile)
	}
	certPEM, err := os.ReadFile(filepath.Join(dir, certFile))
	if err != nil {
		return nil, err
	}
	keyPEM, err := os.ReadFile(filepath.Join(dir, keyFile))
	if err != nil {
		return nil, err
	}
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, fmt.Errorf("transport: parsing server key pair: %w", err)
	}
	return &TLSMaterials{CAPEMPool: pool, ServerCert: cert}, nil
}

// newMaterialsDER mints CA + server credentials and returns the DER forms
// for persistence alongside the assembled TLSMaterials.
func newMaterialsDER(commonName string, hosts []string) (*TLSMaterials, []byte, []byte, *ecdsa.PrivateKey, error) {
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	caTpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "deta-ca"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour * 365),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTpl, caTpl, &caKey.PublicKey, caKey)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	srvKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	srvTpl := &x509.Certificate{
		SerialNumber: big.NewInt(2),
		Subject:      pkix.Name{CommonName: commonName},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour * 365),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			srvTpl.IPAddresses = append(srvTpl.IPAddresses, ip)
		} else {
			srvTpl.DNSNames = append(srvTpl.DNSNames, h)
		}
	}
	srvDER, err := x509.CreateCertificate(rand.Reader, srvTpl, caCert, &srvKey.PublicKey, caKey)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(caCert)
	m := &TLSMaterials{
		CAPEMPool:  pool,
		ServerCert: tls.Certificate{Certificate: [][]byte{srvDER}, PrivateKey: srvKey},
	}
	return m, caDER, srvDER, srvKey, nil
}
