package experiments

import (
	"fmt"
	"io"
	"strings"

	"deta/internal/attack"
	"deta/internal/dataset"
	"deta/internal/nn"
	"deta/internal/tensor"
)

// Figures 3 and 4 of the paper are qualitative grids: ground-truth images
// next to attack reconstructions under each partitioning/shuffling
// configuration. This file reproduces them as ASCII intensity grids —
// recognizable reconstructions visibly echo the ground truth; defeated
// ones are noise.

// asciiImage renders channel 0 of a CHW image as rows of intensity
// characters.
func asciiImage(x tensor.Vector, h, w int) []string {
	const ramp = " .:-=+*#%@"
	rows := make([]string, h)
	for y := 0; y < h; y++ {
		var sb strings.Builder
		for xx := 0; xx < w; xx++ {
			v := x[y*w+xx]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			c := ramp[int(v*float64(len(ramp)-1))]
			sb.WriteByte(c)
			sb.WriteByte(c)
		}
		rows[y] = sb.String()
	}
	return rows
}

// renderPanels writes labeled ASCII images side by side.
func renderPanels(w io.Writer, labels []string, images []tensor.Vector, side int) {
	const gap = "   "
	for i, l := range labels {
		fmt.Fprintf(w, "%-*s", side*2+len(gap), l)
		_ = i
	}
	fmt.Fprintln(w)
	grids := make([][]string, len(images))
	for i, img := range images {
		grids[i] = asciiImage(img, side, side)
	}
	for y := 0; y < side; y++ {
		for i := range grids {
			fmt.Fprint(w, grids[i][y], gap)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// reconScenarios is the column layout of Figures 3 and 4: baseline plus
// the partition/shuffle grid.
var reconScenarios = []attack.Scenario{
	attack.ScenarioFull, attack.ScenarioP06, attack.ScenarioP02,
	attack.ScenarioFullShuffle, attack.ScenarioP06Shuffle, attack.ScenarioP02Shuffle,
}

// Fig3 reproduces Figure 3: DLG and iDLG reconstruction examples across
// the partition/shuffle grid, rendered as ASCII intensity grids.
func Fig3(sc Scale, w io.Writer) error {
	side := sc.AttackSide
	spec := dataset.Spec{Name: "fig3", C: 1, H: side, W: side, Classes: 10}
	data := dataset.Make(spec, 1, []byte("fig3-data"))
	sample := data.At(0)

	net := nn.LeNetDLG(1, side, side, spec.Classes)
	net.Init([]byte("fig3-model"))
	oracle := attack.NewOracle(net)
	grad, err := oracle.VictimGradient(sample.X, sample.Label)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "== Figure 3: Reconstruction Examples of DLG and iDLG with Model Partitioning and Parameter Shuffling ==")
	for _, kind := range []string{"DLG", "iDLG"} {
		labels := []string{"Ground Truth"}
		images := []tensor.Vector{tensor.Vector(sample.X)}
		for _, scenario := range reconScenarios {
			obs, err := attack.Observe(grad, scenario, []byte("fig3-mapper"), []byte("round-1"))
			if err != nil {
				return err
			}
			cfg := attack.DLGConfig{Iterations: sc.AttackIters, LR: 0.3, Seed: []byte("fig3-" + kind)}
			var res *attack.Result
			if kind == "DLG" {
				res, err = attack.DLG(oracle, obs, sample.X, sample.Label, cfg)
			} else {
				res, err = attack.IDLG(oracle, obs, sample.X, sample.Label, cfg)
			}
			if err != nil {
				return err
			}
			labels = append(labels, fmt.Sprintf("%s %s", kind, scenario.Name))
			images = append(images, tensor.ClampRange(res.Recon.Clone(), 0, 1))
		}
		renderPanels(w, labels, images, side)
	}
	fmt.Fprintf(w, "note: %d iterations per reconstruction; only the Full (no-DeTA) column should resemble the ground truth\n\n", sc.AttackIters)
	return nil
}

// Fig4 reproduces Figure 4: IG reconstruction examples.
func Fig4(sc Scale, w io.Writer) error {
	side := sc.IGSide
	spec := dataset.Spec{Name: "fig4", C: 1, H: side, W: side, Classes: 10}
	data := dataset.Make(spec, 1, []byte("fig4-data"))
	sample := data.At(0)

	net := nn.ResNet18Lite(1, side, side, spec.Classes, [4]int{4, 8, 16, 32})
	net.Init([]byte("fig4-model"))
	oracle := attack.NewOracle(net)
	grad, err := oracle.VictimGradient(sample.X, sample.Label)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "== Figure 4: Reconstruction Examples of IG with Model Partitioning and Parameter Shuffling ==")
	labels := []string{"Ground Truth"}
	images := []tensor.Vector{tensor.Vector(sample.X)}
	for _, scenario := range reconScenarios {
		obs, err := attack.Observe(grad, scenario, []byte("fig4-mapper"), []byte("round-1"))
		if err != nil {
			return err
		}
		res, err := attack.IG(oracle, obs, sample.X, sample.Label, attack.IGConfig{
			Iterations: sc.IGIters, Restarts: sc.IGRestarts, LR: 0.05, TVWeight: 1e-3,
			Channels: 1, Height: side, Width: side, Seed: []byte("fig4"),
		})
		if err != nil {
			return err
		}
		labels = append(labels, "IG "+scenario.Name)
		images = append(images, tensor.ClampRange(res.Recon.Clone(), 0, 1))
	}
	renderPanels(w, labels, images, side)
	fmt.Fprintf(w, "note: %d iterations x %d restarts per reconstruction\n\n", sc.IGIters, sc.IGRestarts)
	return nil
}
