package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment at the given scale and renders its
// results.
type Runner func(sc Scale, w io.Writer) error

func tableRunner(f func(Scale) (*Table, error)) Runner {
	return func(sc Scale, w io.Writer) error {
		t, err := f(sc)
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}
}

func figureRunner(f func(Scale) (*Figure, *Figure, error)) Runner {
	return func(sc Scale, w io.Writer) error {
		lossAcc, latency, err := f(sc)
		if err != nil {
			return err
		}
		lossAcc.Render(w)
		latency.Render(w)
		return nil
	}
}

// Registry maps experiment IDs (DESIGN.md §4) to runners.
var Registry = map[string]Runner{
	"table1":               tableRunner(Table1),
	"table2":               tableRunner(Table2),
	"table3":               tableRunner(Table3),
	"fig3":                 Fig3,
	"fig4":                 Fig4,
	"fig5a":                figureRunner(Fig5a),
	"fig5b":                figureRunner(Fig5b),
	"fig5c":                figureRunner(Fig5c),
	"fig6":                 figureRunner(Fig6),
	"fig7":                 figureRunner(Fig7),
	"ablation-shuffle":     tableRunner(AblationShuffleCost),
	"ablation-aggs":        tableRunner(AblationAggregatorCount),
	"ablation-auth":        tableRunner(AblationAuthCost),
	"ablation-keyspace":    tableRunner(AblationKeySpace),
	"ablation-knownmapper": tableRunner(AblationKnownMapper),
	"ablation-dropout":     tableRunner(AblationDropout),
	"ablation-geo":         tableRunner(AblationGeoLatency),
	"ablation-labels":      tableRunner(AblationLabelInference),
	"ablation-ldp":         tableRunner(AblationLDP),
	"churn":                tableRunner(ChurnSweep),
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, sc Scale, w io.Writer) error {
	r, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(sc, w)
}

// RunAll executes every registered experiment.
func RunAll(sc Scale, w io.Writer) error {
	for _, id := range IDs() {
		fmt.Fprintf(w, "### experiment %s\n", id)
		if err := Run(id, sc, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
	}
	return nil
}
