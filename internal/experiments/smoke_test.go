package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smoke_test.go runs EVERY registered experiment end to end at a minimal
// scale and pins the ID ↔ label ↔ CSV-header registry: a new experiment
// cannot ship unrunnable (the smoke run catches panics/errors across the
// whole grid) or unlabeled (an ID without a smokeWant entry fails the
// registry check below).

// tinyScale is the smallest structurally-faithful configuration: one
// round, one image, single-digit iteration counts. It exists only to
// prove every experiment runs; the numbers it produces are meaningless.
func tinyScale() Scale {
	sc := FastScale()
	sc.SamplesPerParty = 8
	sc.TestSamples = 8
	sc.BatchSize = 4
	sc.MNISTRounds = 1
	sc.PaillierRounds = 1
	sc.CIFARRounds = 1
	sc.RVLRounds = 1
	sc.AttackImages = 1
	sc.AttackIters = 8
	sc.IGImages = 1
	sc.IGIters = 8
	sc.IGRestarts = 1
	return sc
}

// smokeWant maps every experiment ID to substrings its rendered output
// must contain — the table CSV header (or figure title/series header)
// that identifies the artifact. Adding an experiment to Registry without
// adding its labels here fails TestSmokeRegistryPinned.
var smokeWant = map[string][]string{
	"table1":               {"DLG MSE,Full*"},
	"table2":               {"iDLG MSE,Full*"},
	"table3":               {"IG Cosine Distance,Full*"},
	"fig3":                 {"Figure 3", "Ground Truth"},
	"fig4":                 {"Figure 4"},
	"fig5a":                {"Figure 5a/5d: MNIST Iterative Averaging", "Round,DETA-Loss"},
	"fig5b":                {"Figure 5b/5e: MNIST Coordinate Median", "Round,DETA-Loss"},
	"fig5c":                {"Figure 5c/5f: MNIST Paillier Fusion", "Round,DETA-Loss"},
	"fig6":                 {"Figure 6a: CIFAR-10 Loss/Accuracy", "Round,"},
	"fig7":                 {"Figure 7: RVL-CDIP VGG-16 transfer", "Round,"},
	"ablation-shuffle":     {"Params,Partition+Shuffle"},
	"ablation-aggs":        {"K,FinalAccuracy"},
	"ablation-auth":        {"Stage,Cost"},
	"ablation-keyspace":    {"KeyBits,KeySpace"},
	"ablation-knownmapper": {"Scenario,Mapper secret,Mapper leaked"},
	"ablation-dropout":     {"Round,Loss (all present)"},
	"ablation-geo":         {"LinkDelay,RoundLatency"},
	"ablation-labels":      {"Scenario,LabelAccuracy"},
	"ablation-ldp":         {"Epsilon,NoiseSigma"},
	"churn":                {"Parties,Dropout,Rounds,FusedFull,FusedDegraded,Abandoned"},
}

// TestSmokeRegistryPinned checks the three registries agree: every
// experiment ID has labels pinned in smokeWant (and vice versa), and
// every format-aware builder corresponds to a registered runner.
func TestSmokeRegistryPinned(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := smokeWant[id]; !ok {
			t.Errorf("experiment %q registered but has no pinned labels in smokeWant — add its CSV header", id)
		}
	}
	for id := range smokeWant {
		if _, ok := Registry[id]; !ok {
			t.Errorf("smokeWant entry %q does not match any registered experiment", id)
		}
	}
	for id := range tableBuilders {
		if _, ok := Registry[id]; !ok {
			t.Errorf("tableBuilders entry %q not in Registry", id)
		}
	}
	for id := range figureBuilders {
		if _, ok := Registry[id]; !ok {
			t.Errorf("figureBuilders entry %q not in Registry", id)
		}
	}
	for id := range tableBuilders {
		if _, ok := figureBuilders[id]; ok {
			t.Errorf("experiment %q is registered as both table and figure", id)
		}
	}
}

// TestSmokeAllExperiments table-drives every experiments.IDs() entry
// through RunFormatted at tinyScale, in both CSV and the text fallback,
// checking the pinned labels appear.
func TestSmokeAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment grid (tiny scale, still seconds per entry)")
	}
	sc := tinyScale()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunFormatted(id, sc, FormatCSV, &buf); err != nil {
				t.Fatalf("experiment %s failed at tiny scale: %v", id, err)
			}
			out := buf.String()
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("experiment %s produced no output", id)
			}
			for _, want := range smokeWant[id] {
				if !strings.Contains(out, want) {
					t.Errorf("experiment %s output missing pinned label %q:\n%s", id, want, out)
				}
			}
		})
	}
}
