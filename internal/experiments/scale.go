package experiments

// Scale sets every knob that trades fidelity to the paper's setup against
// wall-clock time. The paper's experiments ran on GPU clusters for hours;
// the reproduction's defaults are laptop-scale with the same structure
// (same party counts, round counts, and scenario grids), and every knob can
// be raised via cmd/deta-bench flags.
type Scale struct {
	// Federated-learning workloads (Figures 5-7).
	SamplesPerParty int
	TestSamples     int
	BatchSize       int
	LR              float64
	Momentum        float64
	Aggregators     int

	// MNIST/Figure 5.
	MNISTRounds      int
	MNISTLocalEpochs int
	MNISTSide        int // image side length (paper: 28)

	// Paillier/Figure 5c+5f.
	PaillierRounds int
	PaillierBits   int

	// CIFAR-10/Figure 6.
	CIFARRounds int
	CIFARSide   int // paper: 32

	// RVL-CDIP/Figure 7.
	RVLRounds int

	// Attack experiments (Tables 1-3).
	AttackImages int // paper: 1000 (DLG/iDLG), 50 (IG)
	AttackIters  int // paper: 300
	AttackSide   int // CIFAR-100 stand-in side length (paper: 32)
	IGImages     int
	IGIters      int // paper: 24000
	IGRestarts   int // paper: 2
	IGSide       int // ImageNet stand-in side length (paper: 224)
}

// FastScale is the configuration used by `go test` and the benchmarks:
// minutes of total runtime, preserving every structural property.
func FastScale() Scale {
	return Scale{
		SamplesPerParty: 24,
		TestSamples:     24,
		BatchSize:       8,
		LR:              0.05,
		Momentum:        0.9,
		Aggregators:     3,

		MNISTRounds:      4,
		MNISTLocalEpochs: 1,
		MNISTSide:        16,

		PaillierRounds: 1,
		PaillierBits:   256,

		CIFARRounds: 4,
		CIFARSide:   16,

		RVLRounds: 3,

		AttackImages: 6,
		AttackIters:  120,
		AttackSide:   8,
		IGImages:     3,
		IGIters:      150,
		IGRestarts:   1,
		IGSide:       8,
	}
}

// DefaultScale is cmd/deta-bench's default: tens of minutes total,
// matching the paper's round counts.
func DefaultScale() Scale {
	return Scale{
		SamplesPerParty: 64,
		TestSamples:     64,
		BatchSize:       8,
		LR:              0.05,
		Momentum:        0.9,
		Aggregators:     3,

		MNISTRounds:      10,
		MNISTLocalEpochs: 3,
		MNISTSide:        28,

		PaillierRounds: 3,
		PaillierBits:   512,

		CIFARRounds: 30,
		CIFARSide:   16,

		RVLRounds: 30,

		AttackImages: 20,
		AttackIters:  300,
		AttackSide:   12,
		IGImages:     8,
		IGIters:      1000,
		IGRestarts:   2,
		IGSide:       12,
	}
}
