package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV export so results can feed external plotting tools; cmd/deta-bench
// exposes it via -format csv.

// RenderCSV writes the table as CSV rows (header first). Notes become
// trailing comment-style rows prefixed with "#".
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if t.Title != "" {
		if err := cw.Write([]string{"# " + t.Title}); err != nil {
			return err
		}
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCSV writes the figure as CSV: one row per X value, one column per
// series.
func (f *Figure) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if f.Title != "" {
		if err := cw.Write([]string{"# " + f.Title}); err != nil {
			return err
		}
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range f.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Format selects a rendering for the registry runners.
type Format int

// Output formats.
const (
	FormatText Format = iota
	FormatCSV
)

// tableRunnerFmt and figureRunnerFmt build runners honoring a format.
func tableRunnerFmt(f func(Scale) (*Table, error), format Format) Runner {
	return func(sc Scale, w io.Writer) error {
		t, err := f(sc)
		if err != nil {
			return err
		}
		if format == FormatCSV {
			return t.RenderCSV(w)
		}
		t.Render(w)
		return nil
	}
}

func figureRunnerFmt(f func(Scale) (*Figure, *Figure, error), format Format) Runner {
	return func(sc Scale, w io.Writer) error {
		lossAcc, latency, err := f(sc)
		if err != nil {
			return err
		}
		if format == FormatCSV {
			if err := lossAcc.RenderCSV(w); err != nil {
				return err
			}
			return latency.RenderCSV(w)
		}
		lossAcc.Render(w)
		latency.Render(w)
		return nil
	}
}

// RunFormatted executes an experiment with the chosen output format.
// Experiments without a CSV form (the ASCII reconstruction grids) fall
// back to text.
func RunFormatted(id string, sc Scale, format Format, w io.Writer) error {
	if format == FormatText {
		return Run(id, sc, w)
	}
	if t, ok := tableBuilders[id]; ok {
		return tableRunnerFmt(t, format)(sc, w)
	}
	if f, ok := figureBuilders[id]; ok {
		return figureRunnerFmt(f, format)(sc, w)
	}
	return Run(id, sc, w)
}

// Builder registries mirror Registry for format-aware rendering.
var tableBuilders = map[string]func(Scale) (*Table, error){
	"table1":               Table1,
	"table2":               Table2,
	"table3":               Table3,
	"ablation-shuffle":     AblationShuffleCost,
	"ablation-aggs":        AblationAggregatorCount,
	"ablation-auth":        AblationAuthCost,
	"ablation-keyspace":    AblationKeySpace,
	"ablation-knownmapper": AblationKnownMapper,
	"ablation-dropout":     AblationDropout,
	"ablation-geo":         AblationGeoLatency,
	"ablation-labels":      AblationLabelInference,
	"ablation-ldp":         AblationLDP,
	"churn":                ChurnSweep,
}

var figureBuilders = map[string]func(Scale) (*Figure, *Figure, error){
	"fig5a": Fig5a,
	"fig5b": Fig5b,
	"fig5c": Fig5c,
	"fig6":  Fig6,
	"fig7":  Fig7,
}
